# Makefile — the same entry points CI uses, so humans and automation
# invoke identical commands.

GO ?= go

.PHONY: build test test-full race bench bench-cycle bench-baseline bench-gate fmt vet examples crash-test obs-smoke docs docs-check ci

build:
	$(GO) build ./...

# Fast suite: slow qualitative sweeps are gated behind -short equivalents.
test:
	$(GO) test -short ./...

# Full suite, including the full-scale qualitative experiments (~1 min).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Benchmark smoke pass: every benchmark once, no test functions.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Fixed iteration count for the per-cycle micro-benchmark: large enough
# for a stable ns/op, small enough to finish in seconds.
CYCLE_ITERS ?= 200000x

# Per-cycle micro-benchmark at a fixed iteration count (stable ns/op).
bench-cycle:
	$(GO) test -bench='^BenchmarkCycle$$' -benchtime=$(CYCLE_ITERS) -run='^$$' .

# Regenerate the committed benchmark baseline: the Cycle micro-benchmark
# at fixed iterations plus the 1x smoke pass over every benchmark
# (duplicate names keep the higher-iteration measurement).
bench-baseline:
	{ $(GO) test -json -bench='^BenchmarkCycle$$' -benchtime=$(CYCLE_ITERS) -run='^$$' . ; \
	  $(GO) test -json -bench=. -benchtime=1x -run='^$$' ./... ; } | \
	$(GO) run ./cmd/benchgate -extract \
		-note "make bench-baseline (BenchmarkCycle at $(CYCLE_ITERS), others at 1x)" \
		-o BENCH_baseline.json

# Compare a fresh Cycle run against the committed baseline; fails on a
# >25% ns/op regression of any BenchmarkCycle sub-benchmark.
bench-gate:
	$(GO) test -json -bench='^BenchmarkCycle$$' -benchtime=$(CYCLE_ITERS) -run='^$$' . | \
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json

# Regenerate the generated documentation (the experiment catalog) from
# the experiment registry. Commit the result; CI enforces it is current.
docs:
	$(GO) run ./cmd/experiments -docs -o docs/EXPERIMENTS.md

# Fail when committed generated docs drift from the registry (the CI
# docs-drift gate; run `make docs` and commit to fix).
docs-check: docs
	@git diff --exit-code -- docs/EXPERIMENTS.md || \
		{ echo "docs/EXPERIMENTS.md is stale: run 'make docs' and commit"; exit 1; }

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Examples smoke: the published examples must build, vet, and (for the
# quickstart, the pareto-explore search, and the availability-frontier
# recovery sweep, which run in seconds) actually execute. pareto-explore
# writes its resumable store — a directory of segments — to the working
# directory; remove it so repeated smoke runs start fresh.
examples:
	$(GO) vet ./examples/...
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/interval-parallel
	rm -rf pareto-explore.db
	$(GO) run ./examples/pareto-explore
	rm -rf pareto-explore.db
	$(GO) run ./examples/availability-frontier

# Crash-recovery acceptance: SIGKILL a real shrecd mid-campaign and
# assert the restarted server re-adopts the journaled job and finishes
# it with the same results; then the store corruption/chaos suites and
# the in-process kill-rejoin/shedding/watchdog suites under -race.
crash-test:
	$(GO) test -count=1 -run 'TestCrashRecoverySIGKILL' -v ./cmd/shrecd/
	$(GO) test -race -count=1 -run 'TestChaos|TestPutRollback|TestLegacyJSONLMigration|TestReopenPersists|TestCompaction|TestSyncAlways' ./internal/store/
	$(GO) test -race -count=1 -run 'TestCrashRejoin|TestReplay|TestShedding|TestWatchdog' ./internal/shrecd/

# Observability smoke: run the real shrecd binary with -pprof, drive a
# tiny campaign through it, and assert the telemetry surface end to end
# (/metrics passes the exposition lint and carries the request/job/stage
# families, job status exposes its phase breakdown, pprof mounts); then
# the in-process exposition lint suite.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmoke' -v ./cmd/shrecd/
	$(GO) test -count=1 -run 'TestMetrics' ./internal/shrecd/
	$(GO) test -count=1 -run 'TestLint|TestRenderPassesLint' ./internal/telemetry/

ci: build vet fmt test examples docs-check
