# Makefile — the same entry points CI uses, so humans and automation
# invoke identical commands.

GO ?= go

.PHONY: build test test-full race bench fmt vet examples ci

build:
	$(GO) build ./...

# Fast suite: slow qualitative sweeps are gated behind -short equivalents.
test:
	$(GO) test -short ./...

# Full suite, including the full-scale qualitative experiments (~1 min).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Benchmark smoke pass: every benchmark once, no test functions.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Examples smoke: the published examples must build, vet, and (for the
# quickstart, which runs at QuickOptions scale) actually execute.
examples:
	$(GO) vet ./examples/...
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart

ci: build vet fmt test examples
