// Package repro is the public facade of the SHREC reproduction: a
// cycle-level simulator of concurrent error detecting superscalar
// microarchitectures, reproducing Smolens, Kim, Hoe & Falsafi, "Efficient
// Resource Sharing in Concurrent Error Detecting Superscalar
// Microarchitectures" (MICRO-37, 2004).
//
// The facade re-exports the pieces a downstream user needs: machine
// configurations (SS1, SS2 with the paper's X/S/C/B factors, SHREC), the 25
// synthetic SPEC2K-like workloads, the simulation driver, and the
// experiment harness that regenerates every table and figure of the paper.
//
// Quick start:
//
//	res, err := repro.Simulate(repro.SHREC(), "swim", repro.DefaultOptions())
//	fmt.Println(res.IPC())
//
// See examples/ for runnable programs and cmd/experiments for the full
// reproduction.
package repro

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Machine is a complete machine configuration (see config.Machine).
type Machine = config.Machine

// Factors select the paper's Table 2 resource knobs for SS2 machines.
type Factors = config.Factors

// Options controls simulation run lengths.
type Options = sim.Options

// Result is the outcome of one simulation run.
type Result = sim.Result

// Stats holds the detailed performance counters of a run.
type Stats = core.Stats

// Profile describes a synthetic workload.
type Profile = trace.Profile

// SS1 returns the paper's Table 1 baseline superscalar machine.
func SS1() Machine { return config.SS1() }

// SS2 returns the symmetric redundant machine with the given factors.
func SS2(f Factors) Machine { return config.SS2(f) }

// SHREC returns the paper's SHREC machine (Section 4).
func SHREC() Machine { return config.SHREC() }

// O3RS returns the Mendelson & Suri out-of-order reliable superscalar:
// double execution from shared ISQ/ROB entries (the design the paper
// approximates as SS2+C+B).
func O3RS() Machine { return config.O3RS() }

// DIVA returns the DIVA-style comparison machine (Section 4.1): asymmetric
// checking like SHREC but with a dedicated checker pipeline, trading extra
// hardware for freedom from functional-unit contention.
func DIVA() Machine { return config.DIVA() }

// AllFactorCombinations enumerates the sixteen Table 2 configurations.
func AllFactorCombinations() []Factors { return config.AllFactorCombinations() }

// DefaultOptions returns experiment-scale run lengths (500k warmup, 1M
// measured instructions).
func DefaultOptions() Options { return sim.DefaultOptions() }

// QuickOptions returns short smoke-test run lengths.
func QuickOptions() Options { return sim.QuickOptions() }

// Workloads returns the 25 synthetic SPEC2K-like benchmark profiles.
func Workloads() []Profile { return workload.All() }

// IntegerWorkloads returns the 11 SPECint2K-like profiles.
func IntegerWorkloads() []Profile { return workload.Integer() }

// FloatingPointWorkloads returns the 14 SPECfp2K-like profiles.
func FloatingPointWorkloads() []Profile { return workload.FloatingPoint() }

// WorkloadByName looks up one profile ("swim", "gcc-166", ...).
func WorkloadByName(name string) (Profile, error) { return workload.ByName(name) }

// Simulate runs the named benchmark on machine m and returns its result.
func Simulate(m Machine, benchmark string, opt Options) (Result, error) {
	return SimulateContext(context.Background(), m, benchmark, opt)
}

// SimulateContext is Simulate bounded by ctx: cancellation or a deadline
// stops the simulation at the next engine checkpoint.
func SimulateContext(ctx context.Context, m Machine, benchmark string, opt Options) (Result, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx, m, p, opt)
}

// SimulateProfile runs a custom workload profile on machine m.
func SimulateProfile(m Machine, p Profile, opt Options) (Result, error) {
	return sim.Run(m, p, opt)
}

// SimulateProfileContext is SimulateProfile bounded by ctx.
func SimulateProfileContext(ctx context.Context, m Machine, p Profile, opt Options) (Result, error) {
	return sim.RunContext(ctx, m, p, opt)
}

// MachineByName parses a machine specification ("ss1", "ss2+sc",
// "shrec", "diva", "o3rs").
func MachineByName(name string) (Machine, error) { return config.ByName(name) }

// NewEngine builds a bare simulation engine for custom drivers (manual
// warmup, fault injection studies, per-cycle inspection).
func NewEngine(m Machine, p Profile) *core.Engine {
	return core.New(m, trace.New(p))
}

// TraceSource is any instruction stream the engine can consume: a
// synthetic trace.Generator or a replayed trace.Recording.
type TraceSource = trace.Source

// Recording is a captured instruction trace replayed cyclically.
type Recording = trace.Recording

// CaptureTrace records n correct-path and nWrong wrong-path instructions
// of the named benchmark for later replay (see also trace.ReadRecording
// and Recording.WriteTo for the binary format used by cmd/tracetool).
func CaptureTrace(benchmark string, n, nWrong int) (*Recording, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return trace.Capture(trace.New(p), n, nWrong)
}

// NewEngineFromTrace builds an engine replaying a recorded trace.
func NewEngineFromTrace(m Machine, r *Recording) *core.Engine {
	return core.New(m, r)
}

// ExperimentNames lists the paper's reproducible tables and figures.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one table or figure ("fig2", "table2",
// "table3", "fig3", "fig4", "fig5", "fig7", "fig8") and returns its
// rendered text.
func RunExperiment(name string, opt Options) (string, error) {
	return RunExperimentContext(context.Background(), name, opt)
}

// RunExperimentContext is RunExperiment bounded by ctx.
func RunExperimentContext(ctx context.Context, name string, opt Options) (string, error) {
	return experiments.NewSuite(opt).Run(ctx, name)
}

// NewExperimentSuite returns a suite that caches simulation results across
// experiments (the full reproduction shares most configurations).
func NewExperimentSuite(opt Options) *experiments.Suite {
	return experiments.NewSuite(opt)
}
