// Package repro is the public facade of the SHREC reproduction: a
// cycle-level simulator of concurrent error detecting superscalar
// microarchitectures, reproducing Smolens, Kim, Hoe & Falsafi, "Efficient
// Resource Sharing in Concurrent Error Detecting Superscalar
// Microarchitectures" (MICRO-37, 2004).
//
// The facade re-exports the pieces a downstream user needs: machine
// configurations (SS1, SS2 with the paper's X/S/C/B factors, SHREC), the 25
// synthetic SPEC2K-like workloads, the simulation driver, the experiment
// harness that regenerates every table and figure of the paper as typed
// report.Report values, Monte Carlo fault-injection campaigns that
// quantify detection coverage with confidence bounds
// (Client.StartCampaign) — optionally under a checkpoint/rollback
// recovery policy (CampaignSpec.Recovery) that turns the campaign into
// availability and MTTF estimates — and design-space explorations that
// search machine-configuration spaces for Pareto-efficient resource
// sharing (Client.StartExplore). Both long-running operations share one async
// Job API: Start* returns a typed handle to wait on, poll, or cancel,
// with progress delivered through the WithProgress option.
//
// The Client is the recommended entry point — it owns one shared result
// cache, so sweeps and experiments that revisit a configuration reuse
// runs:
//
//	c, _ := repro.NewClient(repro.WithOptions(repro.QuickOptions()))
//	defer c.Close()
//	res, err := c.Simulate(ctx, repro.SHREC(), "swim")
//	fmt.Println(res.IPC())
//	rep, err := c.Experiment(ctx, "fig7")
//	_ = rep.CSV(os.Stdout)
//
// See examples/ for runnable programs and cmd/experiments for the full
// reproduction.
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Machine is a complete machine configuration (see config.Machine).
type Machine = config.Machine

// Factors select the paper's Table 2 resource knobs for SS2 machines.
type Factors = config.Factors

// Options controls simulation run lengths.
type Options = sim.Options

// Result is the outcome of one simulation run.
type Result = sim.Result

// Stats holds the detailed performance counters of a run.
type Stats = core.Stats

// Profile describes a synthetic workload.
type Profile = trace.Profile

// Report is the typed outcome of one experiment: named tables of
// labelled float64 rows with Text, JSON, and CSV renderers.
type Report = report.Report

// ReportTable is one data table of a Report.
type ReportTable = report.Table

// ReportRow is one labelled row of a ReportTable.
type ReportRow = report.Row

// ExperimentInfo names and describes one runnable experiment.
type ExperimentInfo = experiments.Info

// NewReport builds an empty report for callers assembling their own
// result tables (see examples/factor-sweep).
func NewReport(name, title string) *Report { return report.New(name, title) }

// WriteReportsCSV writes any number of reports as one tidy CSV stream
// with a single header row.
func WriteReportsCSV(w io.Writer, reports ...*Report) error {
	return report.WriteCSV(w, reports...)
}

// SS1 returns the paper's Table 1 baseline superscalar machine.
func SS1() Machine { return config.SS1() }

// SS2 returns the symmetric redundant machine with the given factors.
func SS2(f Factors) Machine { return config.SS2(f) }

// SHREC returns the paper's SHREC machine (Section 4).
func SHREC() Machine { return config.SHREC() }

// O3RS returns the Mendelson & Suri out-of-order reliable superscalar:
// double execution from shared ISQ/ROB entries (the design the paper
// approximates as SS2+C+B).
func O3RS() Machine { return config.O3RS() }

// DIVA returns the DIVA-style comparison machine (Section 4.1): asymmetric
// checking like SHREC but with a dedicated checker pipeline, trading extra
// hardware for freedom from functional-unit contention.
func DIVA() Machine { return config.DIVA() }

// AllFactorCombinations enumerates the sixteen Table 2 configurations.
func AllFactorCombinations() []Factors { return config.AllFactorCombinations() }

// DefaultOptions returns experiment-scale run lengths (500k warmup, 1M
// measured instructions).
func DefaultOptions() Options { return sim.DefaultOptions() }

// QuickOptions returns short smoke-test run lengths.
func QuickOptions() Options { return sim.QuickOptions() }

// Workloads returns the 25 synthetic SPEC2K-like benchmark profiles.
func Workloads() []Profile { return workload.All() }

// IntegerWorkloads returns the 11 SPECint2K-like profiles.
func IntegerWorkloads() []Profile { return workload.Integer() }

// FloatingPointWorkloads returns the 14 SPECfp2K-like profiles.
func FloatingPointWorkloads() []Profile { return workload.FloatingPoint() }

// WorkloadByName looks up one profile ("swim", "gcc-166", ...).
func WorkloadByName(name string) (Profile, error) { return workload.ByName(name) }

// MachineByName parses a machine specification ("ss1", "ss2+sc",
// "shrec", "diva", "o3rs").
func MachineByName(name string) (Machine, error) { return config.ByName(name) }

// ---------------------------------------------------------------------------
// Client: the unified entry point.

// clientConfig collects the functional options of NewClient.
type clientConfig struct {
	opt       Options
	storePath string
	cache     bool
	// concurrency overrides opt.Parallelism when positive. Kept apart
	// from opt so WithConcurrency wins regardless of option order.
	concurrency int
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

// WithOptions sets the client's run lengths and parallelism (default:
// DefaultOptions).
func WithOptions(opt Options) ClientOption {
	return func(c *clientConfig) { c.opt = opt }
}

// WithStore attaches a persistent result store at path — a directory of
// checksummed append segments (a legacy JSON-lines file at the path is
// imported once): cache misses consult the store before simulating and
// fresh results are written back, so results survive across processes.
// Close releases it.
func WithStore(path string) ClientOption {
	return func(c *clientConfig) { c.storePath = path }
}

// WithCache toggles the in-memory result cache (default on). With the
// cache off, Simulate and SimulateProfile always run fresh, and Sweep and
// Experiment still deduplicate within one call but retain nothing across
// calls.
func WithCache(enabled bool) ClientOption {
	return func(c *clientConfig) { c.cache = enabled }
}

// WithParallelism bounds concurrently executing simulations (default:
// GOMAXPROCS). It overrides the Parallelism field of WithOptions, in
// any argument order, and also bounds interval-parallel runs (see
// Options.Intervals). It does not affect results.
func WithParallelism(n int) ClientOption {
	return func(c *clientConfig) { c.concurrency = n }
}

// WithConcurrency bounds concurrently executing simulations.
//
// Deprecated: use WithParallelism, which matches the Options.Parallelism
// field it overrides.
func WithConcurrency(n int) ClientOption { return WithParallelism(n) }

// ClientMetrics is a snapshot of a client's cache effectiveness counters.
type ClientMetrics struct {
	// Runs counts simulations actually executed.
	Runs uint64 `json:"runs"`
	// Hits counts requests served without a fresh simulation (memory,
	// store, or a coalesced in-flight duplicate).
	Hits uint64 `json:"hits"`
	// CacheHits counts requests served from the in-memory striped cache.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts requests that found neither a cached result nor
	// an in-flight duplicate.
	CacheMisses uint64 `json:"cache_misses"`
	// DedupWaits counts requests coalesced onto an in-flight duplicate
	// run (singleflight).
	DedupWaits uint64 `json:"dedup_waits"`
	// StoreHits counts cache misses served from the persistent store.
	StoreHits uint64 `json:"store_hits"`
	// StoreErrors counts failed persistent-store writes (results were
	// still computed and served).
	StoreErrors uint64 `json:"store_errors"`
	// WarmupShares counts runs that skipped their warmup by resuming from
	// a shared warmup checkpoint (same machine/benchmark/warmup, differing
	// only in fault or recovery configuration).
	WarmupShares uint64 `json:"warmup_shares"`
	// IntervalRuns counts runs executed interval-parallel (Options.Intervals
	// > 1).
	IntervalRuns uint64 `json:"interval_runs"`
	// RecoveryRuns counts runs executed under a checkpoint/rollback
	// recovery policy (Machine.CkptInterval > 0).
	RecoveryRuns uint64 `json:"recovery_runs"`
	// Rollbacks counts checkpoint rollbacks across all recovery runs.
	Rollbacks uint64 `json:"rollbacks"`
	// Stages summarizes wall-clock time spent in each internal stage of
	// serving simulations (cache_lookup, store_fetch, engine_run, ...),
	// one entry per stage observed so far, in stage-name order.
	Stages []StageSummary `json:"stages,omitempty"`
}

// StageSummary is the timing summary of one internal pipeline stage,
// distilled from the suite's histogram (quantiles are interpolated
// within exponential buckets, so they are estimates, not exact order
// statistics).
type StageSummary struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P90Seconds   float64 `json:"p90_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
}

// Client is the unified facade over the simulation driver and the
// experiment harness. One client owns one result cache (and optional
// persistent store), so every Simulate, Sweep, and Experiment call
// shares runs. All methods are safe for concurrent use.
type Client struct {
	cfg  clientConfig
	sims *sim.Suite
	exp  *experiments.Suite
	st   *store.Store
	reg  *telemetry.Registry
}

// NewClient builds a client. The zero configuration uses DefaultOptions,
// an in-memory cache, and no persistent store.
func NewClient(opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{opt: DefaultOptions(), cache: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.concurrency > 0 {
		cfg.opt.Parallelism = cfg.concurrency
	}
	c := &Client{cfg: cfg, reg: telemetry.NewRegistry()}
	if cfg.storePath != "" {
		st, err := store.Open(cfg.storePath)
		if err != nil {
			return nil, fmt.Errorf("repro: opening store: %w", err)
		}
		c.st = st
	}
	if cfg.cache {
		c.sims = c.newSuite()
		c.exp = experiments.NewSuiteWith(c.sims)
	}
	return c, nil
}

// newSuite builds a simulation suite honoring the client's store. Every
// suite — the shared one and cache-off transients — attaches the
// client's registry, so stage timings accumulate in one place either
// way (registration is idempotent; the suites share one histogram).
func (c *Client) newSuite() *sim.Suite {
	s := sim.NewSuite(c.cfg.opt).WithTelemetry(c.reg)
	if c.st != nil {
		s.WithStore(c.st)
	}
	return s
}

// suite returns the shared suite, or a transient one when caching is off.
func (c *Client) suite() *sim.Suite {
	if c.sims != nil {
		return c.sims
	}
	return c.newSuite()
}

// Close releases the client's persistent store, if any.
func (c *Client) Close() error {
	if c.st == nil {
		return nil
	}
	return c.st.Close()
}

// Options returns the client's run options.
func (c *Client) Options() Options { return c.cfg.opt }

// Simulate runs the named benchmark on machine m.
func (c *Client) Simulate(ctx context.Context, m Machine, benchmark string) (Result, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	return c.SimulateProfile(ctx, m, p)
}

// SimulateProfile runs a custom workload profile on machine m. With the
// cache off it still routes through a transient suite, so an attached
// persistent store is consulted and written back either way.
func (c *Client) SimulateProfile(ctx context.Context, m Machine, p Profile) (Result, error) {
	return c.suite().Get(ctx, m, p)
}

// Sweep fans out every (machine, profile) pair in parallel — duplicate
// and already-cached pairs cost nothing — and returns the results in
// machines-major order: results[i*len(profiles)+j] is machines[i] on
// profiles[j]. Partial failures abort the sweep with every failure
// joined into one error.
func (c *Client) Sweep(ctx context.Context, machines []Machine, profiles []Profile) ([]Result, error) {
	suite := c.suite()
	if err := suite.Batch(ctx, machines, profiles); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(machines)*len(profiles))
	for _, m := range machines {
		for _, p := range profiles {
			// Lookup, not Get: Batch just filled the cache, and counting
			// the readback as hits would misstate cache effectiveness.
			res, ok := suite.Lookup(m, p)
			if !ok {
				var err error
				if res, err = suite.Get(ctx, m, p); err != nil {
					return nil, err
				}
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// Experiment regenerates one of the paper's tables or figures as a typed
// report (see ExperimentNames for the catalog).
func (c *Client) Experiment(ctx context.Context, name string) (*Report, error) {
	exp := c.exp
	if exp == nil {
		exp = experiments.NewSuiteWith(c.newSuite())
	}
	return exp.Run(ctx, name)
}

// Results snapshots every result currently cached by the client, sorted
// by machine then benchmark.
func (c *Client) Results() []Result {
	if c.sims == nil {
		return nil
	}
	return c.sims.Results()
}

// Metrics snapshots the client's cache counters.
func (c *Client) Metrics() ClientMetrics {
	if c.sims == nil {
		return ClientMetrics{}
	}
	return ClientMetrics{
		Runs:         c.sims.Runs(),
		Hits:         c.sims.Hits(),
		CacheHits:    c.sims.CacheHits(),
		CacheMisses:  c.sims.CacheMisses(),
		DedupWaits:   c.sims.DedupWaits(),
		StoreHits:    c.sims.StoreHits(),
		StoreErrors:  c.sims.StoreErrors(),
		WarmupShares: c.sims.WarmupShares(),
		IntervalRuns: c.sims.IntervalRuns(),
		RecoveryRuns: c.sims.RecoveryRuns(),
		Rollbacks:    c.sims.Rollbacks(),
		Stages:       stageSummaries(c.sims.StageSnapshots()),
	}
}

// stageSummaries distills the suite's per-stage histograms into the
// ClientMetrics shape.
func stageSummaries(snaps []telemetry.LabeledHistogram) []StageSummary {
	out := make([]StageSummary, 0, len(snaps))
	for _, lh := range snaps {
		s := lh.Snapshot
		sum := StageSummary{
			Stage:        lh.Labels[0],
			Count:        s.Count,
			TotalSeconds: s.Sum,
			P50Seconds:   s.Quantile(0.5),
			P90Seconds:   s.Quantile(0.9),
			P99Seconds:   s.Quantile(0.99),
		}
		if s.Count > 0 {
			sum.MeanSeconds = s.Sum / float64(s.Count)
		}
		out = append(out, sum)
	}
	return out
}

// ---------------------------------------------------------------------------
// Fault campaigns.

// CampaignSpec describes a Monte Carlo fault-injection campaign: machine,
// workload, trial count, fault rate, master seed, run lengths, injection
// window, hang budget, and optional checkpoint/rollback recovery mode
// (see campaign.Spec for field semantics and defaults).
type CampaignSpec = campaign.Spec

// CampaignResult is one completed campaign: the normalized spec, the
// fault-free golden run, every classified trial, and resume provenance.
// Its Report method renders the outcome classification and the
// Wilson-bounded coverage estimate as a typed *Report.
type CampaignResult = campaign.Result

// CampaignProgress is a running campaign snapshot delivered to the
// progress callback of Client.Campaign.
type CampaignProgress = campaign.Progress

// CampaignTrial is one classified fault-injection trial.
type CampaignTrial = campaign.Trial

// TrialOutcome classifies one campaign trial: detected, squashed, masked,
// sdc, hang, or clean.
type TrialOutcome = campaign.Outcome

// RecoveryPolicy is a checkpoint/rollback recovery policy: checkpoint
// interval, retained depth, and the flush/restore cost assumptions that
// turn campaign observables into availability estimates.
type RecoveryPolicy = recovery.Policy

// RecoveryTrace records what checkpoint recovery did during one run:
// checkpoints captured, rollbacks, overruns, unrecoverable detections,
// lost work, and a bounded per-fault event log.
type RecoveryTrace = recovery.Trace

// RecoverySummary aggregates recovery outcomes across a campaign's
// trials; its Availability method derives the steady-state availability
// and MTTF estimates with confidence bounds.
type RecoverySummary = campaign.RecoverySummary

// AvailabilityEstimate is a campaign-derived steady-state availability
// estimate with Wilson-propagated bounds and the matching MTTF.
type AvailabilityEstimate = campaign.Availability

// DefaultRepairCycles is the repair-time assumption (in cycles) behind
// availability estimates that do not specify their own.
const DefaultRepairCycles = campaign.DefaultRepairCycles

// ParseRecoveryMode parses a recovery mode string — "none" or
// "ckpt@<interval>[+depth<d>][+flush<f>][+restore<r>]" — into a policy,
// the inverse of RecoveryPolicy.String. It is the parser behind
// CampaignSpec.Recovery and cmd/faultstudy's -recover flag.
func ParseRecoveryMode(mode string) (RecoveryPolicy, error) { return recovery.ParseMode(mode) }

// Campaign runs a Monte Carlo fault-injection campaign synchronously.
// The progress callback, when non-nil, receives a serialized snapshot
// after every finished trial.
//
// Deprecated: use StartCampaign, which returns a cancelable CampaignJob
// and takes progress as a WithProgress option. This wrapper is
// StartCampaign followed by Wait.
func (c *Client) Campaign(ctx context.Context, spec CampaignSpec, progress func(CampaignProgress)) (*CampaignResult, error) {
	var opts []JobOption[CampaignProgress]
	if progress != nil {
		opts = append(opts, WithProgress(progress))
	}
	return c.StartCampaign(ctx, spec, opts...).Wait(ctx)
}

// ---------------------------------------------------------------------------
// Design-space exploration.

// ExploreSpace is a typed, enumerable parameter space over Machine: base
// machines crossed with optional modifier axes (X scaling, stagger
// depth, FU pool scaling, MSHR and memory-port geometry, checkpoint
// interval and depth, fault rate).
type ExploreSpace = explore.Space

// ExploreSpec describes a design-space exploration: the space, search
// strategy ("grid" or "halving"), benchmarks, run lengths, seed, budget,
// and per-point coverage trials (see explore.Spec for defaults).
type ExploreSpec = explore.Spec

// ExploreResult is one completed exploration: every full-fidelity
// evaluation, the Pareto frontier indices, and resume provenance. Its
// Report method renders the frontier as a typed *Report.
type ExploreResult = explore.Result

// ExploreEval is one point's scored evaluation (IPC, slowdown vs the
// plain-SS2 baseline, hardware-cost proxy, optional coverage).
type ExploreEval = explore.Eval

// ExploreProgress is a running exploration snapshot delivered to the
// progress callback of Client.Explore.
type ExploreProgress = explore.Progress

// ExploreStrategies lists the selectable search strategies.
func ExploreStrategies() []string { return explore.Strategies() }

// MachineSpec returns m's canonical specification string — parseable by
// MachineByName, so derived machines (WithXScale, WithStagger, ...)
// round-trip through names.
func MachineSpec(m Machine) string { return m.Spec() }

// ExploreCost is the deterministic hardware-cost proxy explorations
// minimize (see explore.Cost).
func ExploreCost(m Machine) float64 { return explore.Cost(m) }

// Explore runs a design-space exploration synchronously. The progress
// callback, when non-nil, receives a serialized snapshot after every
// finished evaluation.
//
// Deprecated: use StartExplore, which returns a cancelable ExploreJob
// and takes progress as a WithProgress option. This wrapper is
// StartExplore followed by Wait.
func (c *Client) Explore(ctx context.Context, spec ExploreSpec, progress func(ExploreProgress)) (*ExploreResult, error) {
	var opts []JobOption[ExploreProgress]
	if progress != nil {
		opts = append(opts, WithProgress(progress))
	}
	return c.StartExplore(ctx, spec, opts...).Wait(ctx)
}

// ---------------------------------------------------------------------------
// Experiments.

// ExperimentNames lists the paper's reproducible tables and figures, in
// paper order.
func ExperimentNames() []string { return experiments.Names() }

// ExperimentCatalog lists every experiment with its title, in paper
// order — the same registry that drives validation everywhere, so the
// docs can never drift from the runnable set again.
func ExperimentCatalog() []ExperimentInfo { return experiments.Catalog() }

// ---------------------------------------------------------------------------
// Deprecated package-level wrappers. They predate Client and remain so
// old call sites keep compiling; each one delegates to the same
// machinery a client uses, but without any shared cache.

// Simulate runs the named benchmark on machine m and returns its result.
//
// Deprecated: use NewClient and Client.Simulate, which share a result
// cache across calls.
func Simulate(m Machine, benchmark string, opt Options) (Result, error) {
	return SimulateContext(context.Background(), m, benchmark, opt)
}

// SimulateContext is Simulate bounded by ctx: cancellation or a deadline
// stops the simulation at the next engine checkpoint.
//
// Deprecated: use NewClient and Client.Simulate.
func SimulateContext(ctx context.Context, m Machine, benchmark string, opt Options) (Result, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx, m, p, opt)
}

// SimulateProfile runs a custom workload profile on machine m.
//
// Deprecated: use NewClient and Client.SimulateProfile.
func SimulateProfile(m Machine, p Profile, opt Options) (Result, error) {
	return sim.Run(m, p, opt)
}

// SimulateProfileContext is SimulateProfile bounded by ctx.
//
// Deprecated: use NewClient and Client.SimulateProfile.
func SimulateProfileContext(ctx context.Context, m Machine, p Profile, opt Options) (Result, error) {
	return sim.RunContext(ctx, m, p, opt)
}

// RunExperiment regenerates one table or figure and returns its rendered
// text. The runnable set is ExperimentNames (one source of truth; see
// also ExperimentCatalog for titles).
//
// Deprecated: use NewClient and Client.Experiment, which return a typed
// *Report (its String method is this function's return value).
func RunExperiment(name string, opt Options) (string, error) {
	return RunExperimentContext(context.Background(), name, opt)
}

// RunExperimentContext is RunExperiment bounded by ctx.
//
// Deprecated: use NewClient and Client.Experiment.
func RunExperimentContext(ctx context.Context, name string, opt Options) (string, error) {
	rep, err := experiments.NewSuite(opt).Run(ctx, name)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// NewExperimentSuite returns a suite that caches simulation results across
// experiments (the full reproduction shares most configurations).
func NewExperimentSuite(opt Options) *experiments.Suite {
	return experiments.NewSuite(opt)
}

// ---------------------------------------------------------------------------
// Engine-level access for custom drivers.

// NewEngine builds a bare simulation engine for custom drivers (manual
// warmup, fault injection studies, per-cycle inspection).
func NewEngine(m Machine, p Profile) *core.Engine {
	return core.New(m, trace.New(p))
}

// TraceSource is any instruction stream the engine can consume: a
// synthetic trace.Generator or a replayed trace.Recording.
type TraceSource = trace.Source

// Recording is a captured instruction trace replayed cyclically.
type Recording = trace.Recording

// CaptureTrace records n correct-path and nWrong wrong-path instructions
// of the named benchmark for later replay (see also trace.ReadRecording
// and Recording.WriteTo for the binary format used by cmd/tracetool).
func CaptureTrace(benchmark string, n, nWrong int) (*Recording, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return trace.Capture(trace.New(p), n, nWrong)
}

// NewEngineFromTrace builds an engine replaying a recorded trace.
func NewEngineFromTrace(m Machine, r *Recording) *core.Engine {
	return core.New(m, r)
}
