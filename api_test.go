package repro

import (
	"strings"
	"testing"
)

func TestFacadeMachines(t *testing.T) {
	if SS1().Name != "SS1" || SHREC().Name != "SHREC" {
		t.Fatal("machine constructors broken")
	}
	if SS2(Factors{S: true, C: true}).Name != "SS2+SC" {
		t.Fatalf("SS2 factor naming: %s", SS2(Factors{S: true, C: true}).Name)
	}
	if len(AllFactorCombinations()) != 16 {
		t.Fatal("factor enumeration broken")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 25 {
		t.Fatalf("workloads = %d", len(Workloads()))
	}
	if len(IntegerWorkloads()) != 11 || len(FloatingPointWorkloads()) != 14 {
		t.Fatal("class splits broken")
	}
	p, err := WorkloadByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatal("lookup broken")
	}
	if _, err := WorkloadByName("mcf"); err == nil {
		t.Fatal("mcf must stay excluded")
	}
}

func TestFacadeSimulate(t *testing.T) {
	opt := QuickOptions()
	opt.MeasureInstrs = 20000
	opt.WarmupInstrs = 10000
	res, err := Simulate(SHREC(), "gzip-graphic", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.Machine != "SHREC" || res.Benchmark != "gzip-graphic" {
		t.Fatalf("result = %+v", res)
	}
	if _, err := Simulate(SS1(), "not-a-benchmark", opt); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeEngine(t *testing.T) {
	p, _ := WorkloadByName("parser")
	e := NewEngine(SS1(), p)
	if err := e.Warmup(5000); err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < 5000 {
		t.Fatal("engine run incomplete")
	}
}

func TestFacadeExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 10 {
		t.Fatalf("experiments = %v", names)
	}
	for _, want := range []string{"fig2", "table2", "table3", "fig5", "fig7", "fig8"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	opt := Options{WarmupInstrs: 5000, MeasureInstrs: 10000}
	out, err := RunExperiment("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Stagger") || !strings.Contains(out, "Integer Low") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
	if _, err := RunExperiment("fig99", opt); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeTraceCapture(t *testing.T) {
	rec, err := CaptureTrace("parser", 5000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 5000 {
		t.Fatalf("captured %d", rec.Len())
	}
	e := NewEngineFromTrace(SHREC(), rec)
	st, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 {
		t.Fatal("replay produced no progress")
	}
	if _, err := CaptureTrace("nope", 10, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
