package repro

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// testClientOptions are tiny run lengths keeping client tests fast.
var testClientOptions = Options{WarmupInstrs: 2000, MeasureInstrs: 5000, Parallelism: 8}

func TestClientSimulate(t *testing.T) {
	c, err := NewClient(WithOptions(testClientOptions))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	res, err := c.Simulate(ctx, SHREC(), "swim")
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine != "SHREC" || res.Benchmark != "swim" || res.IPC() <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := c.Simulate(ctx, SS1(), "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The second identical call must come from the cache.
	if _, err := c.Simulate(ctx, SHREC(), "swim"); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Runs != 1 || m.Hits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestClientSweep(t *testing.T) {
	c, err := NewClient(WithOptions(testClientOptions), WithConcurrency(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	machines := []Machine{SS1(), SHREC()}
	profiles := []Profile{mustProfile(t, "swim"), mustProfile(t, "parser")}
	results, err := c.Sweep(context.Background(), machines, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	// Machines-major order: results[i*len(profiles)+j].
	for i, m := range machines {
		for j, p := range profiles {
			r := results[i*len(profiles)+j]
			if r.Machine != m.Name || r.Benchmark != p.Name {
				t.Fatalf("results[%d] = %s/%s, want %s/%s", i*len(profiles)+j,
					r.Machine, r.Benchmark, m.Name, p.Name)
			}
		}
	}
	if got := len(c.Results()); got != 4 {
		t.Fatalf("cached results = %d", got)
	}
	// The readback must not masquerade as cache hits: a fresh sweep is
	// 4 runs, 0 hits.
	if m := c.Metrics(); m.Runs != 4 || m.Hits != 0 {
		t.Fatalf("metrics after fresh sweep = %+v", m)
	}
}

func TestClientExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs 100 simulations; skipped in short mode")
	}
	c, err := NewClient(WithOptions(testClientOptions))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Experiment(context.Background(), "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "fig5" || len(rep.Tables) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "Stagger") || !strings.Contains(out, "Integer Low") {
		t.Fatalf("fig5 text malformed:\n%s", out)
	}
	if _, err := c.Experiment(context.Background(), "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestClientStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	c, err := NewClient(WithOptions(testClientOptions), WithStore(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(context.Background(), SS1(), "swim"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh client over the same store must serve the run as a hit.
	c2, err := NewClient(WithOptions(testClientOptions), WithStore(path))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Simulate(context.Background(), SS1(), "swim"); err != nil {
		t.Fatal(err)
	}
	if m := c2.Metrics(); m.Runs != 0 || m.Hits != 1 {
		t.Fatalf("store not consulted: %+v", m)
	}
}

func TestClientWithoutCache(t *testing.T) {
	c, err := NewClient(WithOptions(testClientOptions), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Simulate(ctx, SS1(), "swim"); err != nil {
			t.Fatal(err)
		}
	}
	if m := c.Metrics(); m.Runs != 0 || m.Hits != 0 {
		t.Fatalf("cacheless client tracked metrics: %+v", m)
	}
	if c.Results() != nil {
		t.Fatal("cacheless client retained results")
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeMachines(t *testing.T) {
	if SS1().Name != "SS1" || SHREC().Name != "SHREC" {
		t.Fatal("machine constructors broken")
	}
	if SS2(Factors{S: true, C: true}).Name != "SS2+SC" {
		t.Fatalf("SS2 factor naming: %s", SS2(Factors{S: true, C: true}).Name)
	}
	if len(AllFactorCombinations()) != 16 {
		t.Fatal("factor enumeration broken")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 25 {
		t.Fatalf("workloads = %d", len(Workloads()))
	}
	if len(IntegerWorkloads()) != 11 || len(FloatingPointWorkloads()) != 14 {
		t.Fatal("class splits broken")
	}
	p, err := WorkloadByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatal("lookup broken")
	}
	if _, err := WorkloadByName("mcf"); err == nil {
		t.Fatal("mcf must stay excluded")
	}
}

func TestFacadeSimulate(t *testing.T) {
	opt := QuickOptions()
	opt.MeasureInstrs = 20000
	opt.WarmupInstrs = 10000
	res, err := Simulate(SHREC(), "gzip-graphic", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.Machine != "SHREC" || res.Benchmark != "gzip-graphic" {
		t.Fatalf("result = %+v", res)
	}
	if _, err := Simulate(SS1(), "not-a-benchmark", opt); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeEngine(t *testing.T) {
	p, _ := WorkloadByName("parser")
	e := NewEngine(SS1(), p)
	if err := e.Warmup(5000); err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < 5000 {
		t.Fatal("engine run incomplete")
	}
}

func TestFacadeExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 10 {
		t.Fatalf("experiments = %v", names)
	}
	// Catalog and Names derive from one registry and must agree.
	cat := ExperimentCatalog()
	if len(cat) != len(names) {
		t.Fatalf("catalog (%d) and names (%d) disagree", len(cat), len(names))
	}
	for i, info := range cat {
		if info.Name != names[i] || info.Title == "" {
			t.Fatalf("catalog[%d] = %+v, want name %s", i, info, names[i])
		}
	}
	for _, want := range []string{"fig2", "table2", "table3", "fig5", "fig7", "fig8"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	opt := Options{WarmupInstrs: 5000, MeasureInstrs: 10000}
	out, err := RunExperiment("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Stagger") || !strings.Contains(out, "Integer Low") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
	if _, err := RunExperiment("fig99", opt); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeTraceCapture(t *testing.T) {
	rec, err := CaptureTrace("parser", 5000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 5000 {
		t.Fatalf("captured %d", rec.Len())
	}
	e := NewEngineFromTrace(SHREC(), rec)
	st, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 {
		t.Fatal("replay produced no progress")
	}
	if _, err := CaptureTrace("nope", 10, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestClientCampaign(t *testing.T) {
	dir := t.TempDir()
	c, err := NewClient(
		WithOptions(Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}),
		WithStore(filepath.Join(dir, "trials.jsonl")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := CampaignSpec{Machine: "shrec", Benchmark: "crafty", Trials: 6, FaultRate: 2e-4, Seed: 9}
	var snaps int
	res, err := c.Campaign(context.Background(), spec, func(p CampaignProgress) { snaps++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 6 || res.Executed != 6 || snaps == 0 {
		t.Fatalf("campaign: %d trials, %d executed, %d snapshots", len(res.Trials), res.Executed, snaps)
	}
	if c := res.Counts(); c.SDC != 0 {
		t.Fatalf("SHREC produced SDC: %+v", c)
	}
	rep := res.Report()
	if rep.Name != "campaign" || len(rep.Tables) == 0 {
		t.Fatalf("bad report: %+v", rep)
	}

	// A second client over the same store resumes every trial.
	c2, err := NewClient(
		WithOptions(Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}),
		WithStore(filepath.Join(dir, "trials.jsonl")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res2, err := c2.Campaign(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 6 || res2.Executed != 0 {
		t.Fatalf("resume: resumed %d, executed %d", res2.Resumed, res2.Executed)
	}
}

func TestClientExplore(t *testing.T) {
	dir := t.TempDir()
	c, err := NewClient(
		WithOptions(Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}),
		WithStore(filepath.Join(dir, "evals.jsonl")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := ExploreSpec{
		Space: ExploreSpace{
			Bases:   []string{"ss2", "shrec"},
			XScales: []float64{0.5, 1},
		},
		Strategy: "halving",
		Seed:     9,
	}
	var snaps int
	res, err := c.Explore(context.Background(), spec, func(p ExploreProgress) { snaps++ })
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 4 || len(res.Evals) != 2 || snaps == 0 {
		t.Fatalf("explore: %d points, %d evals, %d snapshots", res.Points, len(res.Evals), snaps)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	rep := res.Report()
	if rep.Name != "explore" || len(rep.Tables) != 2 {
		t.Fatalf("bad report: %+v", rep)
	}
	// Every frontier point's spec round-trips through the facade parser.
	for _, ev := range res.FrontierEvals() {
		m, err := MachineByName(ev.Spec)
		if err != nil {
			t.Fatalf("frontier spec %q does not parse: %v", ev.Spec, err)
		}
		if MachineSpec(m) != ev.Spec {
			t.Fatalf("spec not canonical: %q -> %q", ev.Spec, MachineSpec(m))
		}
	}

	// A second client over the same store resumes every evaluation.
	c2, err := NewClient(
		WithOptions(Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}),
		WithStore(filepath.Join(dir, "evals.jsonl")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res2, err := c2.Explore(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res.Resumed+res.Executed || res2.Executed != 0 {
		t.Fatalf("resume: resumed %d, executed %d", res2.Resumed, res2.Executed)
	}
}

// TestClientMetricsStages pins that the client's telemetry registry is
// threaded into its suite: after a simulation, Metrics().Stages reports
// the engine_run stage (and cache_lookup from the request path) with
// plausible timings.
func TestClientMetricsStages(t *testing.T) {
	c, err := NewClient(WithOptions(testClientOptions))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Simulate(context.Background(), SHREC(), "swim"); err != nil {
		t.Fatal(err)
	}
	stages := map[string]StageSummary{}
	for _, s := range c.Metrics().Stages {
		stages[s.Stage] = s
	}
	run, ok := stages["engine_run"]
	if !ok {
		t.Fatalf("no engine_run stage in %+v", stages)
	}
	if run.Count != 1 || run.TotalSeconds <= 0 || run.MeanSeconds != run.TotalSeconds {
		t.Fatalf("engine_run = %+v, want one timed run", run)
	}
	if _, ok := stages["cache_lookup"]; !ok {
		t.Fatalf("no cache_lookup stage in %+v", stages)
	}
}
