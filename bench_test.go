// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark simulates the experiment's machine configurations on
// representative workloads for b.N instructions per machine, so ns/op is
// simulation cost per (machine x instruction). Run the full-scale
// reproduction with cmd/experiments; these benches exercise exactly the
// same code paths at benchmark-friendly sizes.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/factorial"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchWorkloads picks a small representative subset: one low and one high
// IPC benchmark per class.
func benchWorkloads() []trace.Profile {
	names := []string{"parser", "vortex-one", "swim", "apsi"}
	out := make([]trace.Profile, 0, len(names))
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// runMachines simulates b.N instructions on every (machine, workload) pair.
func runMachines(b *testing.B, machines ...config.Machine) {
	b.Helper()
	b.ReportAllocs()
	profiles := benchWorkloads()
	var engines []*core.Engine
	for _, m := range machines {
		for _, p := range profiles {
			engines = append(engines, core.New(m, trace.New(p)))
		}
	}
	b.ResetTimer()
	var cycles int64
	var retired uint64
	for _, e := range engines {
		st, err := e.Run(uint64(b.N))
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
		retired += st.Retired
	}
	b.StopTimer()
	b.ReportMetric(float64(retired)/float64(cycles), "IPC-agg")
}

// BenchmarkFigure2 exercises the SS1-versus-SS2 comparison.
func BenchmarkFigure2(b *testing.B) {
	runMachines(b, config.SS2(config.Factors{}), config.SS1())
}

// BenchmarkTable2 exercises all sixteen factor combinations.
func BenchmarkTable2(b *testing.B) {
	combos := config.AllFactorCombinations()
	machines := make([]config.Machine, len(combos))
	for i, f := range combos {
		machines[i] = config.SS2(f)
	}
	runMachines(b, machines...)
}

// BenchmarkTable3 exercises the factorial analysis on top of the sixteen
// configurations (the analysis itself is microscopic next to simulation).
func BenchmarkTable3(b *testing.B) {
	resp := make([]float64, 16)
	for i := range resp {
		resp[i] = 1 + float64(i)*0.1
	}
	factors := []string{"X", "S", "C", "B"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := factorial.Analyze(factors, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycle is the per-cycle cost microbenchmark: one engine and one
// memory-bound workload (swim streams through a footprint far beyond the
// L2) per execution mode, so ns/op isolates the inner simulation loop the
// cycle-skipping engine optimizes. The tick sub-benchmark runs the same
// SS1 configuration under the reference tick-by-tick loop (core.WithTickLoop)
// so the fast-forward speedup is itself recorded in BENCH_baseline.json.
func BenchmarkCycle(b *testing.B) {
	p, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	machines := []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{S: true}),
		config.SHREC(),
		config.O3RS(),
	}
	// The detection-mode zoo, under benchmark-stable labels (machine names
	// carry '@'/'+' value syntax that would churn the baseline keys if the
	// defaults moved).
	zoo := []struct {
		label string
		m     config.Machine
	}{
		{"MEEK2", config.MEEK(2)},
		{"SHREC-ctx8", config.SHREC().WithContexts(8)},
		{"FLEX", config.FLEX()},
	}
	run := func(b *testing.B, m config.Machine, opts ...core.Option) {
		b.ReportAllocs()
		e := core.New(m, trace.New(p), opts...)
		b.ResetTimer()
		st, err := e.Run(uint64(b.N))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st.Retired > 0 {
			b.ReportMetric(float64(st.Cycles)/float64(st.Retired), "CPI")
		}
		if st.Cycles > 0 {
			b.ReportMetric(float64(e.SkippedCycles())/float64(st.Cycles), "skip-frac")
		}
	}
	for _, m := range machines {
		b.Run(m.Name, func(b *testing.B) { run(b, m) })
	}
	for _, z := range zoo {
		b.Run(z.label, func(b *testing.B) { run(b, z.m) })
	}
	b.Run("SS1-tick", func(b *testing.B) { run(b, config.SS1(), core.WithTickLoop()) })
}

// BenchmarkFigure3 exercises the C-factor study.
func BenchmarkFigure3(b *testing.B) {
	runMachines(b,
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{C: true}),
		config.SS1(),
	)
}

// BenchmarkFigure4 exercises the S-factor study.
func BenchmarkFigure4(b *testing.B) {
	runMachines(b,
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{S: true}),
		config.SS1(),
	)
}

// BenchmarkFigure5 exercises the stagger sweep.
func BenchmarkFigure5(b *testing.B) {
	base := config.SS2(config.Factors{S: true, C: true})
	runMachines(b,
		base.WithStagger(0),
		base.WithStagger(256),
		base.WithStagger(1024),
		base.WithStagger(1<<20),
	)
}

// BenchmarkFigure7 exercises the headline SHREC comparison.
func BenchmarkFigure7(b *testing.B) {
	runMachines(b,
		config.SS2(config.Factors{}),
		config.SHREC(),
		config.SS2(config.Factors{S: true, C: true, B: true}),
		config.SS1(),
	)
}

// BenchmarkFigure8 exercises the X-scaling sweep.
func BenchmarkFigure8(b *testing.B) {
	var machines []config.Machine
	for _, sc := range []float64{0.5, 1, 1.5, 2} {
		machines = append(machines,
			config.SHREC().WithXScale(sc),
			config.SS2(config.Factors{}).WithXScale(sc))
	}
	runMachines(b, machines...)
}

// BenchmarkEnginePerMode reports raw simulation speed per execution model.
func BenchmarkEnginePerMode(b *testing.B) {
	p, _ := workload.ByName("twolf")
	for _, m := range []config.Machine{config.SS1(), config.SS2(config.Factors{S: true}), config.SHREC()} {
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			e := core.New(m, trace.New(p))
			b.ResetTimer()
			if _, err := e.Run(uint64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSuiteCache measures the memoizing suite on tiny runs.
func BenchmarkSuiteCache(b *testing.B) {
	opt := sim.Options{WarmupInstrs: 1000, MeasureInstrs: 2000}
	s := sim.NewSuite(opt)
	ctx := context.Background()
	p, _ := workload.ByName("gzip-graphic")
	m := config.SS1()
	if _, err := s.Get(ctx, m, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(ctx, m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style sanity check keeping the bench file honest about what it
// measures.
func Example() {
	opt := sim.Options{WarmupInstrs: 2000, MeasureInstrs: 4000}
	res, err := Simulate(SS1(), "gzip-graphic", opt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.IPC() > 0)
	// Output: true
}
