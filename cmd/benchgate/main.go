// Command benchgate extracts benchmark results into a stable JSON shape
// and gates CI on ns/op regressions against a committed baseline.
//
// Extract a baseline (input may be plain `go test -bench` text or the
// test2json stream the CI bench-smoke job produces):
//
//	go test -json -bench=. -benchtime=1x -run='^$' ./... | benchgate -extract -o BENCH_baseline.json
//
// Compare a fresh run against the baseline, failing (exit 1) when any
// benchmark matching -gate regressed more than -threshold in ns/op or
// allocated more per op than its baseline (allocations are deterministic,
// so any increase is a regression — this keeps the engine core's
// zero-alloc steady state locked in), and warning (exit 0) for every
// other regression:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_ci.json -gate '^BenchmarkCycle/'
//
// With -warn-only no regression fails the run — used for the noisy 1x
// table/figure smoke benchmarks, where the artifact is informational.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one extracted benchmark result.
type Benchmark struct {
	// Name is the benchmark path without the -GOMAXPROCS suffix, e.g.
	// "BenchmarkCycle/SS1".
	Name string `json:"name"`
	// Iters is the iteration count the timing was averaged over; results
	// from more iterations win when duplicates appear (a fixed-iteration
	// micro pass plus a 1x smoke pass may both report the same name).
	Iters int64 `json:"iters"`
	// NsPerOp is the reported wall-clock cost per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are reported when the benchmark calls
	// b.ReportAllocs (-1 when absent).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the committed BENCH_*.json shape.
type File struct {
	// Note documents how the file was produced.
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// test2json event subset: benchmark results arrive as output lines.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultLine matches a benchmark result line, e.g.
// "BenchmarkCycle/SS1-8   200000   1234 ns/op   71 B/op   1 allocs/op".
var resultLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var (
	gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)
	bytesField       = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsField      = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseStream extracts benchmark results from r, accepting test2json
// events, plain bench output, or an already-extracted File.
func parseStream(r io.Reader) ([]Benchmark, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// An already-extracted File is a single JSON object; test2json output
	// is line-delimited objects and fails this unmarshal, falling through
	// to the line scanner.
	var f File
	if err := json.Unmarshal(data, &f); err == nil && len(f.Benchmarks) > 0 {
		return f.Benchmarks, nil
	}
	// Reconstruct the plain text stream first: test2json splits one
	// benchmark line into several output events (the name is flushed
	// before the benchmark runs, the numbers after), so events must be
	// concatenated before line-matching.
	var text strings.Builder
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	byName := map[string]Benchmark{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		b := Benchmark{
			Name:        gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		b.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if f := bytesField.FindStringSubmatch(m[4]); f != nil {
			b.BytesPerOp, _ = strconv.ParseFloat(f[1], 64)
		}
		if f := allocsField.FindStringSubmatch(m[4]); f != nil {
			b.AllocsPerOp, _ = strconv.ParseFloat(f[1], 64)
		}
		// Duplicate names: keep the measurement with more iterations.
		if prev, ok := byName[b.Name]; !ok || b.Iters > prev.Iters {
			byName[b.Name] = b
		}
	}
	out := make([]Benchmark, 0, len(byName))
	for _, b := range byName {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func readInput(path string) ([]Benchmark, error) {
	if path == "" || path == "-" {
		return parseStream(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseStream(f)
}

func main() {
	var (
		extract   = flag.Bool("extract", false, "parse bench output and write a BENCH JSON file instead of comparing")
		out       = flag.String("o", "-", "output path for -extract (default stdout)")
		note      = flag.String("note", "", "provenance note stored in the extracted file")
		baseline  = flag.String("baseline", "", "committed baseline JSON to compare against")
		current   = flag.String("current", "-", "fresh bench output (test2json, text, or extracted JSON; - for stdin)")
		gate      = flag.String("gate", `^BenchmarkCycle(/|$)`, "regexp of benchmark names whose regression fails the run")
		exclude   = flag.String("exclude", "", "regexp of benchmark names to skip entirely (e.g. benches whose baseline was captured at a different -benchtime)")
		threshold = flag.Float64("threshold", 0.25, "fractional ns/op regression tolerated before failing or warning")
		warnOnly  = flag.Bool("warn-only", false, "report regressions but always exit 0")
	)
	flag.Parse()

	if *extract {
		benchmarks, err := readInput(*current)
		if err != nil {
			fatal(err)
		}
		if len(benchmarks) == 0 {
			fatal(fmt.Errorf("no benchmark results found in input"))
		}
		data, err := json.MarshalIndent(File{Note: *note, Benchmarks: benchmarks}, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "" || *out == "-" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %d benchmarks to %s\n", len(benchmarks), *out)
		return
	}

	if *baseline == "" {
		fatal(fmt.Errorf("-baseline is required (or use -extract)"))
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fatal(fmt.Errorf("bad -gate regexp: %w", err))
	}
	var excludeRE *regexp.Regexp
	if *exclude != "" {
		if excludeRE, err = regexp.Compile(*exclude); err != nil {
			fatal(fmt.Errorf("bad -exclude regexp: %w", err))
		}
	}
	base, err := readInput(*baseline)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	cur, err := readInput(*current)
	if err != nil {
		fatal(fmt.Errorf("reading current results: %w", err))
	}

	baseByName := make(map[string]Benchmark, len(base))
	for _, b := range base {
		baseByName[b.Name] = b
	}
	var failures, warnings, compared int
	for _, c := range cur {
		if excludeRE != nil && excludeRE.MatchString(c.Name) {
			continue
		}
		b, ok := baseByName[c.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := c.NsPerOp / b.NsPerOp
		gated := gateRE.MatchString(c.Name)
		status := "ok"
		if ratio > 1+*threshold {
			if gated && !*warnOnly {
				status = "FAIL"
				failures++
			} else {
				status = "warn"
				warnings++
			}
		}
		// Allocations are deterministic, so gate them exactly: any gated
		// benchmark allocating more per op than its baseline fails. This is
		// what holds the engine core at zero allocs per simulated cycle.
		allocNote := ""
		if c.AllocsPerOp >= 0 && b.AllocsPerOp >= 0 && c.AllocsPerOp > b.AllocsPerOp {
			allocNote = fmt.Sprintf("  allocs %.0f -> %.0f /op", b.AllocsPerOp, c.AllocsPerOp)
			if gated && !*warnOnly {
				status = "FAIL"
				failures++
			} else if status == "ok" {
				status = "warn"
				warnings++
			}
		}
		fmt.Printf("%-6s %-45s %12.1f -> %12.1f ns/op  (%+.1f%%)%s\n",
			status, c.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, allocNote)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks in common between baseline and current results"))
	}
	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%% (warn-only)\n",
			warnings, *threshold*100)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated benchmark(s) regressed more than %.0f%% vs %s\n",
			failures, *threshold*100, *baseline)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
