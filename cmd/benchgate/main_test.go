package main

import (
	"strings"
	"testing"
)

func TestParseStreamText(t *testing.T) {
	in := `
goos: linux
BenchmarkCycle/SS1-8         	  200000	      1234.5 ns/op	         0.91 CPI	      71 B/op	       1 allocs/op
BenchmarkCycle/SS1-tick-8    	  200000	      2000 ns/op	      71 B/op	       1 allocs/op
BenchmarkTable3-8            	       1	      9999 ns/op
PASS
`
	got, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkCycle/SS1" || got[0].NsPerOp != 1234.5 || got[0].AllocsPerOp != 1 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].Name != "BenchmarkCycle/SS1-tick" {
		t.Errorf("tick sub-benchmark name mangled: %+v", got[1])
	}
	if got[2].AllocsPerOp != -1 {
		t.Errorf("missing allocs should be -1: %+v", got[2])
	}
}

// test2json splits one benchmark line across output events (the name
// flushes before the run, the numbers after); the parser must stitch
// them back together.
func TestParseStreamTest2JSON(t *testing.T) {
	in := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkCycle/SS1-8 \t"}
{"Action":"output","Package":"repro","Output":"  200000\t      1234 ns/op\t      71 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
`
	got, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkCycle/SS1" || got[0].NsPerOp != 1234 {
		t.Fatalf("parsed %+v", got)
	}
}

// Extracted files round-trip, and duplicate names keep the
// higher-iteration measurement.
func TestParseStreamDedupAndRoundTrip(t *testing.T) {
	in := `
BenchmarkCycle/SS1-8   1   5000 ns/op
BenchmarkCycle/SS1-8   200000   1234 ns/op
`
	got, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Iters != 200000 {
		t.Fatalf("dedup kept %+v", got)
	}
}
