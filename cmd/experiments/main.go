// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig2,table2,...|all] [-format text|json|csv] [-o file]
//	            [-n instrs] [-warmup instrs] [-par N] [-quick]
//	            [-store results.jsonl]
//
// Each experiment produces a typed report rendered as fixed-width text
// (the default, matching the paper's rows/series; see EXPERIMENTS.md for
// the paper-vs-measured comparison), a JSON array of report objects, or
// one tidy CSV stream. With -store, simulation results persist to a
// JSON-lines file and later runs (of any experiment sharing
// configurations) reuse them instead of resimulating. Ctrl-C cancels
// in-flight simulations promptly.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		runList = flag.String("run", "all",
			fmt.Sprintf("comma-separated experiments to run (%s) or 'all'",
				strings.Join(experiments.Names(), ",")))
		format    = flag.String("format", "text", "output format: text, json, or csv")
		outPath   = flag.String("o", "", "write output to this file instead of stdout")
		n         = flag.Uint64("n", 0, "measured instructions per run (default 1,000,000)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions per run (default 500,000)")
		par       = flag.Int("par", 0, "max parallel simulations (default GOMAXPROCS)")
		quick     = flag.Bool("quick", false, "short runs (100k measured) for a fast smoke pass")
		storePath = flag.String("store", "", "persist simulation results to this JSON-lines file and reuse them across runs")
	)
	flag.Parse()

	if *format != "text" && *format != "json" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q (have text, json, csv)\n", *format)
		os.Exit(2)
	}

	opt := sim.DefaultOptions()
	if *quick {
		opt = sim.QuickOptions()
	}
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	names := experiments.Names()
	if *runList != "all" {
		names = strings.Split(*runList, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sims := sim.NewSuite(opt)
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
	}

	// With -o, render into memory and replace the file atomically at the
	// end: a failed or interrupted run must not truncate an existing
	// results file.
	var out io.Writer = os.Stdout
	var buf *bytes.Buffer
	if *outPath != "" {
		buf = &bytes.Buffer{}
		out = buf
	}

	suite := experiments.NewSuiteWith(sims)
	var reports []*report.Report
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		rep, err := suite.Run(ctx, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "text" {
			// Stream each report as it completes, with the historical
			// framing; structured formats are emitted in one piece below.
			if _, err := fmt.Fprintf(out, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), rep); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			continue
		}
		reports = append(reports, rep)
	}
	var err error
	switch *format {
	case "json":
		err = report.WriteJSONArray(out, reports...)
	case "csv":
		err = report.WriteCSV(out, reports...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if buf != nil {
		if err := writeFileAtomic(*outPath, buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *storePath != "" {
		msg := fmt.Sprintf("(%d simulated, %d cache hits; store %s", sims.Runs(), sims.Hits(), *storePath)
		if n := sims.StoreErrors(); n > 0 {
			msg += fmt.Sprintf(", %d write failures", n)
		}
		fmt.Fprintln(os.Stderr, msg+")")
	}
}

// writeFileAtomic writes data to path via a temp file + rename, so a
// partial write (disk full, interrupt) never clobbers an existing file.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
