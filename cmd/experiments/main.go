// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig2,table2,...,ablation,o3rs|all] [-n instrs] [-warmup instrs]
//	            [-par N] [-quick] [-store results.jsonl]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. With -store,
// simulation results persist to a JSON-lines file and later runs (of any
// experiment sharing configurations) reuse them instead of resimulating.
// Ctrl-C cancels in-flight simulations promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		runList   = flag.String("run", "all", "comma-separated experiments to run (fig2,table2,table3,fig3,fig4,fig5,fig7,fig8,ablation,o3rs) or 'all'")
		n         = flag.Uint64("n", 0, "measured instructions per run (default 1,000,000)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions per run (default 500,000)")
		par       = flag.Int("par", 0, "max parallel simulations (default GOMAXPROCS)")
		quick     = flag.Bool("quick", false, "short runs (100k measured) for a fast smoke pass")
		storePath = flag.String("store", "", "persist simulation results to this JSON-lines file and reuse them across runs")
	)
	flag.Parse()

	opt := sim.DefaultOptions()
	if *quick {
		opt = sim.QuickOptions()
	}
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	names := experiments.Names()
	if *runList != "all" {
		names = strings.Split(*runList, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sims := sim.NewSuite(opt)
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
	}

	suite := experiments.NewSuiteWith(sims)
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		out, err := suite.Run(ctx, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
	if *storePath != "" {
		msg := fmt.Sprintf("(%d simulated, %d cache hits; store %s", sims.Runs(), sims.Hits(), *storePath)
		if n := sims.StoreErrors(); n > 0 {
			msg += fmt.Sprintf(", %d write failures", n)
		}
		fmt.Println(msg + ")")
	}
}
