// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig2,table2,...|all] [-n instrs] [-warmup instrs] [-par N] [-quick]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiments to run (fig2,table2,table3,fig3,fig4,fig5,fig7,fig8) or 'all'")
		n       = flag.Uint64("n", 0, "measured instructions per run (default 1,000,000)")
		warmup  = flag.Uint64("warmup", 0, "warmup instructions per run (default 200,000)")
		par     = flag.Int("par", 0, "max parallel simulations (default GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "short runs (100k measured) for a fast smoke pass")
	)
	flag.Parse()

	opt := sim.DefaultOptions()
	if *quick {
		opt = sim.QuickOptions()
	}
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	names := experiments.Names()
	if *runList != "all" {
		names = strings.Split(*runList, ",")
	}

	suite := experiments.NewSuite(opt)
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		out, err := suite.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
}
