// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig2,table2,...|all] [-format text|json|csv] [-o file]
//	            [-n instrs] [-warmup instrs] [-par N] [-quick]
//	            [-store results.jsonl] [-docs]
//
// Each experiment produces a typed report rendered as fixed-width text
// (the default, matching the paper's rows/series; see docs/EXPERIMENTS.md
// for the generated catalog), a JSON array of report objects, or one tidy
// CSV stream. With -store, simulation results persist to a JSON-lines
// file and later runs (of any experiment sharing configurations) reuse
// them instead of resimulating. Ctrl-C cancels in-flight simulations
// promptly.
//
// -docs runs no simulations: it emits the experiment catalog as Markdown
// (to stdout or -o), generated from the same registry that drives
// dispatch — `make docs` writes docs/EXPERIMENTS.md with it, and CI
// regenerates and diffs the file so the catalog cannot drift.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		runList = flag.String("run", "all",
			fmt.Sprintf("comma-separated experiments to run (%s) or 'all'",
				strings.Join(experiments.Names(), ",")))
		format    = flag.String("format", "text", "output format: text, json, or csv")
		outPath   = flag.String("o", "", "write output to this file instead of stdout")
		n         = flag.Uint64("n", 0, "measured instructions per run (default 1,000,000)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions per run (default 500,000)")
		par       = flag.Int("par", 0, "max parallel simulations (default GOMAXPROCS)")
		quick     = flag.Bool("quick", false, "short runs (100k measured) for a fast smoke pass")
		storePath = flag.String("store", "", "persist simulation results to this JSON-lines file and reuse them across runs")
		docs      = flag.Bool("docs", false, "emit the experiment catalog as Markdown (no simulations) and exit")
	)
	flag.Parse()

	if *docs {
		md := catalogMarkdown()
		if *outPath != "" {
			if err := writeFileAtomic(*outPath, []byte(md)); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(md)
		return
	}

	if *format != "text" && *format != "json" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q (have text, json, csv)\n", *format)
		os.Exit(2)
	}

	opt := sim.DefaultOptions()
	if *quick {
		opt = sim.QuickOptions()
	}
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	names := experiments.Names()
	if *runList != "all" {
		names = strings.Split(*runList, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sims := sim.NewSuite(opt)
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
	}

	// With -o, render into memory and replace the file atomically at the
	// end: a failed or interrupted run must not truncate an existing
	// results file.
	var out io.Writer = os.Stdout
	var buf *bytes.Buffer
	if *outPath != "" {
		buf = &bytes.Buffer{}
		out = buf
	}

	suite := experiments.NewSuiteWith(sims)
	var reports []*report.Report
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		rep, err := suite.Run(ctx, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "text" {
			// Stream each report as it completes, with the historical
			// framing; structured formats are emitted in one piece below.
			if _, err := fmt.Fprintf(out, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), rep); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			continue
		}
		reports = append(reports, rep)
	}
	var err error
	switch *format {
	case "json":
		err = report.WriteJSONArray(out, reports...)
	case "csv":
		err = report.WriteCSV(out, reports...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if buf != nil {
		if err := writeFileAtomic(*outPath, buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *storePath != "" {
		msg := fmt.Sprintf("(%d simulated, %d cache hits; store %s", sims.Runs(), sims.Hits(), *storePath)
		if n := sims.StoreErrors(); n > 0 {
			msg += fmt.Sprintf(", %d write failures", n)
		}
		fmt.Fprintln(os.Stderr, msg+")")
	}
}

// catalogMarkdown renders docs/EXPERIMENTS.md from the experiment
// registry: name, title, prose description, and the flag invocation for
// every runnable experiment. Generated output only — the registry in
// internal/experiments is the single source of truth, and the CI
// docs-drift job fails when the committed file disagrees with it.
func catalogMarkdown() string {
	var b strings.Builder
	b.WriteString("# Experiment catalog\n\n")
	b.WriteString("<!-- Generated by `make docs` (cmd/experiments -docs). Do not edit:\n")
	b.WriteString("     edit the registry in internal/experiments/experiments.go and\n")
	b.WriteString("     regenerate. CI fails when this file drifts from the registry. -->\n\n")
	b.WriteString("Every table and figure of the paper's evaluation (plus two\n")
	b.WriteString("extensions) is a named experiment: runnable from the command line,\n")
	b.WriteString("from Go via `repro.Client.Experiment`, and over HTTP via shrecd's\n")
	b.WriteString("`GET /experiments/{name}`. All three dispatch through the same\n")
	b.WriteString("registry this catalog is generated from.\n\n")
	b.WriteString("| Name | Title |\n| --- | --- |\n")
	for _, e := range experiments.Catalog() {
		fmt.Fprintf(&b, "| [`%s`](#%s) | %s |\n", e.Name, e.Name, e.Title)
	}
	b.WriteString("\n")
	for _, e := range experiments.Catalog() {
		fmt.Fprintf(&b, "## %s\n\n", e.Name)
		fmt.Fprintf(&b, "**%s**\n\n", e.Title)
		fmt.Fprintf(&b, "%s\n\n", e.Doc)
		fmt.Fprintf(&b, "```sh\ngo run ./cmd/experiments -run %s          # full scale\n", e.Name)
		fmt.Fprintf(&b, "go run ./cmd/experiments -run %s -quick   # smoke scale\n", e.Name)
		fmt.Fprintf(&b, "curl -s localhost:8080/experiments/%s     # via shrecd (JSON)\n```\n\n", e.Name)
	}
	b.WriteString("Common flags: `-format text|json|csv`, `-o file`, `-store results.jsonl`\n")
	b.WriteString("(persist and reuse simulation runs), `-n`/`-warmup` (run lengths),\n")
	b.WriteString("`-par` (parallelism). See `go run ./cmd/experiments -h`.\n")
	return b.String()
}

// writeFileAtomic writes data to path via a temp file + rename, so a
// partial write (disk full, interrupt) never clobbers an existing file.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
