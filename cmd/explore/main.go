// Command explore searches a machine-configuration space for
// Pareto-efficient resource sharing: every point is scored on IPC,
// slowdown against the plain SS2 redundant baseline, a deterministic
// hardware-cost proxy, and (with -rates) Monte Carlo detection coverage,
// and the non-dominated configurations are reported.
//
// The space is the cross product of -bases with the optional axes; empty
// axes keep the base machine's value. -strategy grid evaluates every
// point at full fidelity (and refuses spaces over -budget); -strategy
// halving screens the whole space at run lengths divided by -screendiv
// and re-evaluates only the Pareto-ranked surviving half. With -store,
// finished evaluations persist and an interrupted exploration resumes
// where it left off.
//
// Usage:
//
//	explore [-strategy grid|halving] [-bases ss1,ss2,ss2+s,shrec,diva]
//	        [-benchmarks crafty] [-xscales 0.5,1,1.5] [-staggers ...]
//	        [-fuscales ...] [-mshrs ...] [-ports ...] [-rates ...]
//	        [-trials 24] [-n instrs] [-warmup instrs] [-seed N]
//	        [-budget N] [-screendiv 8] [-store evals.db]
//	        [-format text|json|csv] [-o file]
//	        [-log-level info] [-log-format text]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// openStore opens the evaluation store with a short retry: a transiently
// busy path must not kill an exploration about to resume persisted work.
func openStore(path string) (*store.Store, error) {
	var st *store.Store
	p := retry.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Millisecond, MaxDelay: 2 * time.Second}
	err := p.Do(context.Background(), func(context.Context) error {
		var err error
		st, err = store.Open(path)
		return err
	})
	return st, err
}

// splitList parses a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// floatList parses a comma-separated list of floats.
func floatList(name, s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: bad -%s value %q: %v\n", name, p, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// intList parses a comma-separated list of integers.
func intList(name, s string) []int {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: bad -%s value %q: %v\n", name, p, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	var (
		strategy  = flag.String("strategy", explore.StrategyGrid, "search strategy: grid or halving")
		bases     = flag.String("bases", "ss1,ss2,ss2+s,shrec,diva", "comma-separated base machine specs")
		benchs    = flag.String("benchmarks", explore.DefaultBenchmark, "comma-separated benchmarks to score on")
		xscales   = flag.String("xscales", "", "comma-separated issue/FU/port scale axis (e.g. 0.5,1,1.5)")
		staggers  = flag.String("staggers", "", "comma-separated max-stagger axis")
		fuscales  = flag.String("fuscales", "", "comma-separated FU-pool scale axis")
		mshrs     = flag.String("mshrs", "", "comma-separated MSHR-count axis")
		ports     = flag.String("ports", "", "comma-separated memory-port axis")
		rates     = flag.String("rates", "", "comma-separated fault-rate axis (adds a coverage objective)")
		trials    = flag.Int("trials", 0, "coverage campaign trials per faulted point (0 = default)")
		n         = flag.Uint64("n", 50_000, "measured instructions per evaluation")
		warm      = flag.Uint64("warmup", 20_000, "warmup instructions per evaluation")
		seed      = flag.Uint64("seed", 0xF00D, "exploration master seed")
		budget    = flag.Int("budget", 0, "full-fidelity evaluation budget (0 = strategy default)")
		screenDiv = flag.Int("screendiv", 0, "halving screen run-length divisor (0 = default)")
		storeP    = flag.String("store", "", "persist evaluations in this store directory (resumable; a legacy JSON-lines file is imported once)")
		format    = flag.String("format", "text", "output format: text, json, or csv")
		out       = flag.String("o", "", "write output to file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress progress on stderr")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "structured log format: text, json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}

	spec := explore.Spec{
		Space: explore.Space{
			Bases:      splitList(*bases),
			XScales:    floatList("xscales", *xscales),
			Staggers:   intList("staggers", *staggers),
			FUScales:   floatList("fuscales", *fuscales),
			MSHRs:      intList("mshrs", *mshrs),
			MemPorts:   intList("ports", *ports),
			FaultRates: floatList("rates", *rates),
		},
		Strategy:      *strategy,
		Benchmarks:    splitList(*benchs),
		Seed:          *seed,
		WarmupInstrs:  *warm,
		MeasureInstrs: *n,
		ScreenDiv:     *screenDiv,
		Budget:        *budget,
		Trials:        *trials,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.NewRegistry()
	sims := sim.NewSuite(sim.Options{WarmupInstrs: *warm, MeasureInstrs: *n}).WithTelemetry(reg)
	eng := explore.New(sims)
	if *storeP != "" {
		st, err := openStore(*storeP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
		eng.WithStore(st)
	}

	progress := func(p explore.Progress) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d (resumed %d) ", p.Phase, p.Done, p.Total, p.Resumed)
		}
	}
	res, err := eng.Run(ctx, spec, progress)
	for _, st := range sims.StageSnapshots() {
		logger.Debug("sim stage timing", "stage", st.Labels[0],
			"count", st.Snapshot.Count, "total_s", st.Snapshot.Sum,
			"p50_s", st.Snapshot.Quantile(0.5), "p99_s", st.Snapshot.Quantile(0.99))
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		if *storeP != "" {
			fmt.Fprintln(os.Stderr, "explore: finished evaluations are persisted; rerun with the same flags to resume")
		}
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	rep := res.Report()
	switch *format {
	case "text":
		err = rep.Text(w)
	case "json":
		err = rep.JSON(w)
	case "csv":
		err = report.WriteCSV(w, rep)
	default:
		fmt.Fprintf(os.Stderr, "explore: unknown -format %q (have text, json, csv)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
	if *storeP != "" && !*quiet {
		fmt.Fprintf(os.Stderr, "(%d simulated, %d store hits; store %s)\n",
			sims.Runs(), sims.StoreHits(), *storeP)
	}
}
