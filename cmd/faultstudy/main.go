// Command faultstudy sweeps transient-fault injection rates across the
// redundant machines and reports detection coverage, mean detection
// latency, recovery cost, and the throughput overhead of recovery — an
// extension beyond the paper's performance-only evaluation, validating
// that the protection the machines pay for actually works.
//
// Usage:
//
//	faultstudy [-bench crafty] [-n instrs] [-rates 1e-6,1e-5,1e-4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "crafty", "benchmark to inject into")
		n        = flag.Uint64("n", 500_000, "measured instructions")
		warm     = flag.Uint64("warmup", 200_000, "warmup instructions")
		rateList = flag.String("rates", "1e-6,1e-5,1e-4,1e-3", "comma-separated fault rates")
	)
	flag.Parse()

	p, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultstudy:", err)
		os.Exit(1)
	}
	var rates []float64
	for _, s := range strings.Split(*rateList, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultstudy: bad rate:", err)
			os.Exit(1)
		}
		rates = append(rates, r)
	}

	machines := []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{S: true}),
		config.O3RS(),
		config.SHREC(),
		config.DIVA(),
	}

	// Fault-free baselines for overhead computation.
	baseline := map[string]float64{}
	for _, m := range machines {
		res, err := sim.Run(m, p, sim.Options{WarmupInstrs: *warm, MeasureInstrs: *n})
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultstudy:", err)
			os.Exit(1)
		}
		baseline[m.Name] = res.IPC()
	}

	type row struct {
		machine  string
		rate     float64
		st       core.Stats
		overhead float64
	}
	var mu sync.Mutex
	var rows []row
	var wg sync.WaitGroup
	for _, m := range machines {
		for _, r := range rates {
			wg.Add(1)
			go func(m config.Machine, r float64) {
				defer wg.Done()
				mc := m
				mc.FaultRate = r
				mc.FaultSeed = 0xF0_0D
				e := core.New(mc, trace.New(p))
				if err := e.Warmup(*warm); err != nil {
					fmt.Fprintln(os.Stderr, "faultstudy:", err)
					os.Exit(1)
				}
				st, err := e.Run(*n)
				if err != nil {
					fmt.Fprintln(os.Stderr, "faultstudy:", err)
					os.Exit(1)
				}
				mu.Lock()
				rows = append(rows, row{m.Name, r, st, 100 * (baseline[m.Name] - st.IPC()) / baseline[m.Name]})
				mu.Unlock()
			}(m, r)
		}
	}
	wg.Wait()

	tb := stats.NewTable(
		fmt.Sprintf("Transient-fault study on %s (%d instructions per cell)", p.Name, *n),
		"machine", "rate", "IPC", "injected", "detected", "silent", "coverage", "det.lat(cy)", "overhead%")
	for _, m := range machines {
		for _, r := range rates {
			for _, rw := range rows {
				if rw.machine != m.Name || rw.rate != r {
					continue
				}
				st := rw.st
				cov := "n/a"
				// Faults squashed by an unrelated recovery (and those still
				// in flight at run end) never reach a compare; coverage is
				// over faults that did.
				if eligible := st.FaultsInjected - st.FaultsSquashed; eligible > 0 {
					pct := 100 * float64(st.FaultsDetected) / float64(eligible)
					if pct > 100 {
						pct = 100 // in-flight remainder at run end
					}
					cov = fmt.Sprintf("%.0f%%", pct)
				}
				tb.AddRow(m.Name,
					fmt.Sprintf("%.0e", r),
					fmt.Sprintf("%.2f", st.IPC()),
					fmt.Sprintf("%d", st.FaultsInjected),
					fmt.Sprintf("%d", st.FaultsDetected),
					fmt.Sprintf("%d", st.SilentCorruptions),
					cov,
					fmt.Sprintf("%.0f", st.AvgFaultDetectLatency()),
					fmt.Sprintf("%.1f", rw.overhead),
				)
			}
		}
		tb.AddSeparator()
	}
	fmt.Print(tb.String())
	fmt.Println("\nSS1 detects nothing (all faults are silent corruptions); the")
	fmt.Println("redundant machines detect every injected fault. Detection latency is")
	fmt.Println("the injection-to-compare distance; overhead is the IPC lost to")
	fmt.Println("soft-exception recovery relative to the machine's fault-free run.")
}
