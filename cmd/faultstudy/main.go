// Command faultstudy sweeps transient-fault injection rates across the
// redundant machines and reports statistically grounded detection
// coverage — an extension beyond the paper's performance-only evaluation,
// validating that the protection the machines pay for actually works.
//
// It is a thin preset over the Monte Carlo campaign engine
// (internal/campaign): each (machine, rate) cell runs a campaign of
// -trials independent fault-injection trials, classifies every trial
// (detected / squashed / masked / SDC / hang / clean) against a
// fault-free golden run, and reports coverage with Wilson 95% confidence
// bounds. With -store, finished trials persist and an interrupted sweep
// resumes where it left off.
//
// With -recover, every campaign runs under a checkpoint/rollback
// recovery policy ("ckpt@<interval>[+depth<d>][+flush<f>][+restore<r>]"):
// detected faults roll back to the newest preceding architectural
// checkpoint and re-execute, and the report gains per-cell rollback
// counts, mean recovery latency, and the steady-state availability and
// MTTF estimates the campaign implies.
//
// Usage:
//
//	faultstudy [-bench crafty] [-machines ss1,ss2+s,o3rs,shrec,diva]
//	           [-rates 1e-5,1e-4,1e-3] [-trials 40] [-n instrs]
//	           [-warmup instrs] [-seed N] [-recover ckpt@64k+depth2]
//	           [-store trials.db] [-log-level info] [-log-format text]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// openStore opens the trial store with a short retry: a transiently
// busy path must not kill a sweep that is about to resume hours of
// persisted work.
func openStore(path string) (*store.Store, error) {
	var st *store.Store
	p := retry.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Millisecond, MaxDelay: 2 * time.Second}
	err := p.Do(context.Background(), func(context.Context) error {
		var err error
		st, err = store.Open(path)
		return err
	})
	return st, err
}

func main() {
	var (
		bench    = flag.String("bench", "crafty", "benchmark to inject into")
		machines = flag.String("machines", "ss1,ss2+s,o3rs,shrec,diva", "comma-separated machines to sweep")
		n        = flag.Uint64("n", 50_000, "measured instructions per trial")
		warm     = flag.Uint64("warmup", 20_000, "warmup instructions per trial")
		rateList = flag.String("rates", "1e-5,1e-4,1e-3", "comma-separated fault rates")
		trials   = flag.Int("trials", 40, "fault-injection trials per (machine, rate) cell")
		seed     = flag.Uint64("seed", 0xF00D, "campaign master seed")
		recMode  = flag.String("recover", "", `checkpoint/rollback recovery mode, e.g. "ckpt@64k+depth2" (default: none)`)
		storeP   = flag.String("store", "", "persist per-trial results in this store directory (resumable; a legacy JSON-lines file is imported once)")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "structured log format: text, json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultstudy:", err)
		os.Exit(1)
	}

	var rates []float64
	for _, s := range strings.Split(*rateList, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultstudy: bad rate:", err)
			os.Exit(1)
		}
		rates = append(rates, r)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.NewRegistry()
	sims := sim.NewSuite(sim.Options{WarmupInstrs: *warm, MeasureInstrs: *n}).WithTelemetry(reg)
	eng := campaign.New(sims)
	if *storeP != "" {
		st, err := openStore(*storeP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultstudy:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
		eng.WithStore(st)
	}

	rep := report.New("faultstudy",
		fmt.Sprintf("Transient-fault campaigns on %s (%d trials per cell, %d instructions per trial)",
			*bench, *trials, *n))
	tb := rep.AddTable("Coverage by machine and rate",
		"machine@rate", "faulted", "det", "sq", "mask", "sdc", "hang",
		"cov%", "lo%", "hi%", "lat(cy)", "ovh%")
	tb.Verb = "%.4g"
	var rtb *report.Table
	if *recMode != "" {
		rep.SetMeta("recovery", *recMode)
		rtb = rep.AddTable("Recovery and availability by machine and rate",
			"machine@rate", "rollbacks", "fatal", "lost(cy)", "rec-lat(cy)",
			"avail%", "aLo%", "aHi%", "MTTF(cy)")
		rtb.Verb = "%.6g"
	}

	for _, mname := range strings.Split(*machines, ",") {
		mname = strings.TrimSpace(mname)
		for _, rate := range rates {
			res, err := eng.Run(ctx, campaign.Spec{
				Machine:   mname,
				Benchmark: *bench,
				Trials:    *trials,
				FaultRate: rate,
				Seed:      *seed,
				Recovery:  *recMode,
			}, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "faultstudy:", err)
				os.Exit(1)
			}
			c := res.Counts()
			cov := res.Coverage()
			agg := res.Aggregates()
			cell := fmt.Sprintf("%s@%.0e", res.Golden.Machine, rate)
			tb.AddRow(cell,
				float64(cov.N), float64(c.Detected), float64(c.Squashed),
				float64(c.Masked), float64(c.SDC), float64(c.Hang),
				100*cov.Point, 100*cov.Lo, 100*cov.Hi, agg.DetectLatency, agg.Overhead)
			if rtb != nil {
				rs := res.RecoverySummary()
				av, ok := res.Availability(campaign.DefaultRepairCycles)
				if rs == nil || !ok {
					fmt.Fprintln(os.Stderr, "faultstudy: recovery campaign produced no summary for", cell)
					os.Exit(1)
				}
				rtb.AddRow(cell,
					float64(rs.Rollbacks), float64(rs.Overruns+rs.Unrecoverable),
					float64(rs.LostWork), rs.MeanRecoveryLatency,
					100*av.Point, 100*av.Lo, 100*av.Hi, av.MTTFCycles)
			}
		}
		tb.AddRule()
		if rtb != nil {
			rtb.AddRule()
		}
	}

	rep.AddNote("coverage = (detected + squashed + masked) / faulted trials, Wilson 95%% bounds;")
	rep.AddNote("SS1 detects nothing (faults retire as silent corruptions caught by the")
	rep.AddNote("golden-signature oracle); the redundant machines detect or squash every")
	rep.AddNote("fault. lat is mean injection-to-detection distance; ovh is IPC lost to")
	rep.AddNote("soft-exception recovery relative to each machine's fault-free golden run.")
	if *recMode != "" {
		rep.AddNote("recovery: %s; fatal = overruns + unrecoverable detections; availability", *recMode)
		rep.AddNote("assumes a %d-cycle repair after each fatal failure (renewal model,", campaign.DefaultRepairCycles)
		rep.AddNote("Wilson-propagated bounds); MTTF(cy) 0 means no fatal failure was observed.")
	}
	fmt.Print(rep.String())
	if *storeP != "" {
		fmt.Fprintf(os.Stderr, "(%d simulated, %d store hits; store %s)\n",
			sims.Runs(), sims.StoreHits(), *storeP)
	}
	// Stage timing summary at debug: where the sweep's wall-clock went.
	for _, st := range sims.StageSnapshots() {
		logger.Debug("sim stage timing", "stage", st.Labels[0],
			"count", st.Snapshot.Count, "total_s", st.Snapshot.Sum,
			"p50_s", st.Snapshot.Quantile(0.5), "p99_s", st.Snapshot.Quantile(0.99))
	}
}
