// Process-level crash-recovery acceptance test: build the real shrecd
// binary, SIGKILL it mid-campaign, restart it on the same store and
// journal directories, and check that the re-adopted campaign finishes
// with the same outcomes as an uninterrupted run while re-executing
// strictly fewer trials. This is the end-to-end counterpart of the
// in-process kill-and-rejoin test in internal/shrecd.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/campaign"
)

// crashCampaign must run long enough at the tiny run lengths below to
// be killed mid-flight, and deterministically enough that the recovered
// outcome counts match an uninterrupted golden run exactly.
const crashCampaign = `{"machine":"shrec","benchmark":"crafty","trials":256,"fault_rate":2e-4,"seed":11}`

// buildShrecd compiles the server binary into a scratch directory.
func buildShrecd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "shrecd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building shrecd: %v\n%s", err, out)
	}
	return bin
}

// shrecdProc is one running shrecd child process.
type shrecdProc struct {
	cmd     *exec.Cmd
	baseURL string
	stderr  *bytes.Buffer
}

// startShrecd launches the binary on ":0" against the given store and
// journal directories and waits for the printed bound address. Extra
// flags (e.g. -pprof for the observability smoke test) are appended.
func startShrecd(t *testing.T, bin, storeDir, journalDir string, extra ...string) *shrecdProc {
	t.Helper()
	p := &shrecdProc{stderr: &bytes.Buffer{}}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store", storeDir,
		"-journal", journalDir,
		"-warmup", "2000", "-n", "5000",
	}
	args = append(args, extra...)
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stderr = p.stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.kill(t) })

	addrCh := make(chan string, 1)
	go func() {
		// Keep draining stdout past the address line so the child never
		// blocks on a full pipe.
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "shrecd: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.baseURL = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("shrecd never printed its listening address; stderr:\n%s", p.stderr)
	}
	return p
}

// kill SIGKILLs the child and reaps it. Safe to call twice.
func (p *shrecdProc) kill(t *testing.T) {
	t.Helper()
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(syscall.SIGKILL)
	}
	_ = p.cmd.Wait() // second calls error harmlessly
}

// campaignProgress decodes the raw progress of a remote job status.
func campaignProgress(t *testing.T, st repro.RemoteJobStatus) campaign.Progress {
	t.Helper()
	var prog campaign.Progress
	if err := json.Unmarshal(st.Progress, &prog); err != nil {
		t.Fatalf("decoding campaign progress %s: %v", st.Progress, err)
	}
	return prog
}

// remoteFor builds a client for a child process with fast polling.
func remoteFor(t *testing.T, p *shrecdProc) *repro.Remote {
	t.Helper()
	r, err := repro.NewRemote(p.baseURL, repro.WithPollInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real shrecd processes; skipped in -short")
	}
	bin := buildShrecd(t)
	var spec repro.CampaignSpec
	if err := json.Unmarshal([]byte(crashCampaign), &spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Golden: the same campaign on a fresh server, never interrupted.
	goldenDir := t.TempDir()
	gp := startShrecd(t, bin, filepath.Join(goldenDir, "results"), filepath.Join(goldenDir, "journal"))
	gr := remoteFor(t, gp)
	gjob, err := gr.StartCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("starting golden campaign: %v; stderr:\n%s", err, gp.stderr)
	}
	gst, err := gr.WaitCampaign(ctx, gjob.ID)
	if err != nil {
		t.Fatalf("golden campaign: %v; stderr:\n%s", err, gp.stderr)
	}
	golden := campaignProgress(t, gst)
	gp.kill(t)

	// Crash run: same campaign on its own store, killed mid-flight.
	crashDir := t.TempDir()
	storeDir := filepath.Join(crashDir, "results")
	journalDir := filepath.Join(crashDir, "journal")
	p1 := startShrecd(t, bin, storeDir, journalDir)
	r1 := remoteFor(t, p1)
	job, err := r1.StartCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("starting crash campaign: %v; stderr:\n%s", err, p1.stderr)
	}
	if job.ID != gjob.ID {
		t.Fatalf("campaign id %q differs from golden %q; ids must be spec-derived", job.ID, gjob.ID)
	}
	for {
		st, err := r1.CampaignStatus(ctx, job.ID)
		if err != nil {
			t.Fatalf("polling crash campaign: %v; stderr:\n%s", err, p1.stderr)
		}
		if st.Done() {
			t.Fatal("campaign finished before it could be killed; raise trials in crashCampaign")
		}
		if campaignProgress(t, st).Done >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p1.kill(t) // no drain, no goodbye: the case the journal exists for

	// Restart on the same directories: the journal re-adopts the job
	// before the listener comes up, so the first status poll finds it.
	p2 := startShrecd(t, bin, storeDir, journalDir)
	r2 := remoteFor(t, p2)
	st, err := r2.WaitCampaign(ctx, job.ID)
	if err != nil {
		t.Fatalf("waiting for re-adopted campaign: %v; stderr:\n%s", err, p2.stderr)
	}
	prog := campaignProgress(t, st)
	if prog.Resumed < 2 {
		t.Fatalf("resumed %d trials, want >= 2: the killed run's persisted trials were not reused", prog.Resumed)
	}
	if prog.Resumed >= prog.Total {
		t.Fatalf("resumed %d of %d trials: nothing was left to execute, kill came too late", prog.Resumed, prog.Total)
	}
	if prog.Done != prog.Total || prog.Total != golden.Total {
		t.Fatalf("recovered campaign done=%d total=%d, golden total=%d", prog.Done, prog.Total, golden.Total)
	}

	// Recovery must be invisible in the results: outcome counts and the
	// coverage estimate match the uninterrupted run exactly.
	gotCounts, _ := json.Marshal(prog.Counts)
	wantCounts, _ := json.Marshal(golden.Counts)
	if !bytes.Equal(gotCounts, wantCounts) {
		t.Fatalf("recovered counts %s != golden counts %s", gotCounts, wantCounts)
	}
	gotCov, _ := json.Marshal(prog.Coverage)
	wantCov, _ := json.Marshal(golden.Coverage)
	if !bytes.Equal(gotCov, wantCov) {
		t.Fatalf("recovered coverage %s != golden coverage %s", gotCov, wantCov)
	}
	if !strings.Contains(string(st.Report), "resumed") {
		t.Fatalf("recovered report does not note the resume: %s", st.Report)
	}

	// The settled journal leaves nothing pending for a third restart.
	health, err := r2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Journal struct {
			Depth int `json:"depth"`
		} `json:"journal"`
	}
	if err := json.Unmarshal(health, &h); err != nil {
		t.Fatalf("decoding health %s: %v", health, err)
	}
	if h.Journal.Depth != 0 {
		t.Fatalf("journal depth %d after completion, want 0", h.Journal.Depth)
	}
}
