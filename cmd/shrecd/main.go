// Command shrecd serves the SHREC simulation engine over HTTP.
//
// Usage:
//
//	shrecd [-addr :8080] [-n instrs] [-warmup instrs] [-workers N]
//	       [-par N] [-store results.jsonl]
//
// Endpoints:
//
//	POST /simulate            {"machine":"shrec","benchmark":"swim",
//	                           "warmup_instrs":0,"measure_instrs":0}
//	GET  /experiments         the experiment catalog (names and titles)
//	GET  /experiments/{name}  regenerate one paper table/figure as a typed
//	                          report (?format=text|json|csv or Accept)
//	POST /experiments/{name}  deprecated pre-report shape (text wrapped in JSON)
//	POST /campaigns           start an async fault-injection campaign
//	                          {"machine":"shrec","benchmark":"swim","trials":1000}
//	GET  /campaigns           list campaign jobs with progress
//	GET  /campaigns/{id}      one job: progress, coverage, report when done
//	                          (?format=text|csv renders just the report)
//	GET  /results             every cached result plus cache metrics
//	GET  /healthz             liveness, pool configuration, cache counters
//	GET  /metrics             Prometheus text: runs, hits, store errors
//
// Duplicate in-flight requests for the same (machine, benchmark,
// options) key share one simulation; results are cached in memory and,
// with -store, persisted across restarts. SIGINT/SIGTERM drain in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/shrecd"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		n         = flag.Uint64("n", 0, "default measured instructions per run (default 1,000,000)")
		warmup    = flag.Uint64("warmup", 0, "default warmup instructions per run (default 500,000)")
		par       = flag.Int("par", 0, "max parallel simulations in the engine (default GOMAXPROCS)")
		workers   = flag.Int("workers", 16, "max concurrently served simulation requests")
		maxInstrs = flag.Int64("maxinstrs", 0, "cap on per-request warmup+measure instructions (0 = default 10M, negative = uncapped)")
		maxTrials = flag.Int("maxtrials", 0, "cap on per-campaign trial count (0 = default 10000)")
		maxCamps  = flag.Int("maxcampaigns", 0, "bound on tracked campaign jobs (0 = default 64)")
		storePath = flag.String("store", "", "persist results to this JSON-lines file across restarts")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	opt := sim.DefaultOptions()
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	sims := sim.NewSuite(opt)
	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = store.Open(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrecd:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
		fmt.Printf("shrecd: store %s (%d results loaded)\n", *storePath, st.Len())
	}

	srv := shrecd.NewWith(shrecd.Config{
		DefaultOptions: opt,
		MaxConcurrent:  *workers,
		MaxInstrs:      *maxInstrs,
		MaxTrials:      *maxTrials,
		MaxCampaigns:   *maxCamps,
		Store:          st,
	}, sims)
	defer srv.Close() // stop background campaigns; finished trials are persisted

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("shrecd: listening on %s (workers=%d, warmup=%d, measure=%d)\n",
		*addr, *workers, opt.WarmupInstrs, opt.MeasureInstrs)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "shrecd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C force-quits
		fmt.Println("shrecd: draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shrecd: shutdown:", err)
			os.Exit(1)
		}
	}
	fmt.Println("shrecd: bye")
}
