// Command shrecd serves the SHREC simulation engine over HTTP.
//
// Usage:
//
//	shrecd [-addr :8080] [-n instrs] [-warmup instrs] [-workers N]
//	       [-par N] [-store results.db] [-journal jobs.db]
//	       [-watchdog 10m] [-shed 5s] [-log-level info] [-log-format text]
//	       [-pprof]
//
// Endpoints:
//
//	POST /simulate            {"machine":"shrec","benchmark":"swim",
//	                           "warmup_instrs":0,"measure_instrs":0}
//	GET  /experiments         the experiment catalog (names and titles)
//	GET  /experiments/{name}  regenerate one paper table/figure as a typed
//	                          report (?format=text|json|csv or Accept)
//	POST /experiments/{name}  deprecated pre-report shape (text wrapped in JSON)
//	POST /campaigns           start an async fault-injection campaign
//	                          {"machine":"shrec","benchmark":"swim","trials":1000}
//	GET  /campaigns           list campaign jobs with progress
//	GET  /campaigns/{id}      one job: progress, coverage, report when done
//	                          (?format=text|csv renders just the report)
//	GET  /results             every cached result plus cache metrics
//	GET  /healthz             liveness, store integrity, journal depth,
//	                          cache counters
//	GET  /metrics             Prometheus text, rendered from the telemetry
//	                          registry: cache/store/journal counters, HTTP
//	                          route latency histograms, job duration and
//	                          phase histograms, sim stage histograms
//	GET  /debug/pprof/...     net/http/pprof profiles (only with -pprof)
//
// Duplicate in-flight requests for the same (machine, benchmark,
// options) key share one simulation; results are cached in memory and,
// with -store, persisted across restarts in a checksummed segmented
// store (a pre-existing JSON-lines file at the path is imported once).
// With -journal, accepted campaigns and explorations are journaled
// before they run and re-adopted at the next startup, so a crashed or
// killed server resumes its jobs with only in-flight trials re-executed.
// SIGINT/SIGTERM drain in-flight requests before exiting; kill -9 is
// recovered by the journal.
//
// Diagnostics are structured logs on stderr (-log-level debug|info|warn|
// error, -log-format text|json); the "listening on" line stays on stdout
// so scripts that parse it keep working.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/retry"
	"repro/internal/shrecd"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// openStore opens a segmented store with a short retry, so a transiently
// busy path (another process finishing compaction, a slow mount) does
// not kill the server at boot.
func openStore(path string, opt store.Options) (*store.Store, error) {
	var st *store.Store
	p := retry.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Millisecond, MaxDelay: 2 * time.Second}
	err := p.Do(context.Background(), func(context.Context) error {
		var err error
		st, err = store.OpenWith(path, opt)
		return err
	})
	return st, err
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (:0 picks a free port; the bound address is printed)")
		n         = flag.Uint64("n", 0, "default measured instructions per run (default 1,000,000)")
		warmup    = flag.Uint64("warmup", 0, "default warmup instructions per run (default 500,000)")
		par       = flag.Int("par", 0, "max parallel simulations in the engine (default GOMAXPROCS)")
		workers   = flag.Int("workers", 16, "max concurrently served simulation requests")
		maxInstrs = flag.Int64("maxinstrs", 0, "cap on per-request warmup+measure instructions (0 = default 10M, negative = uncapped)")
		maxTrials = flag.Int("maxtrials", 0, "cap on per-campaign trial count (0 = default 10000)")
		maxCamps  = flag.Int("maxcampaigns", 0, "bound on tracked campaign jobs (0 = default 64)")
		storePath = flag.String("store", "", "persist results in this segmented store directory across restarts (a legacy JSON-lines file here is imported once)")
		journalP  = flag.String("journal", "", "write-ahead job journal directory: accepted campaigns/explorations survive crashes and are re-adopted at startup")
		watchdog  = flag.Duration("watchdog", 0, "fail running jobs that report no progress for this long (0 = disabled)")
		shed      = flag.Duration("shed", 0, "shed POSTs queued longer than this with 429+Retry-After (0 = default 5s, negative = queue indefinitely)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "structured log format: text, json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the server mux")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrecd:", err)
		os.Exit(1)
	}

	opt := sim.DefaultOptions()
	if *n > 0 {
		opt.MeasureInstrs = *n
	}
	if *warmup > 0 {
		opt.WarmupInstrs = *warmup
	}
	opt.Parallelism = *par

	sims := sim.NewSuite(opt)
	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = openStore(*storePath, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrecd:", err)
			os.Exit(1)
		}
		defer st.Close()
		sims.WithStore(st)
		logger.Info("result store opened", "path", *storePath, "results", st.Len())
	}
	var journal *store.Store
	if *journalP != "" {
		var err error
		// SyncAlways: a journal entry that can be lost to a power cut is
		// not a journal.
		journal, err = openStore(*journalP, store.Options{Sync: store.SyncAlways})
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrecd:", err)
			os.Exit(1)
		}
		defer journal.Close()
	}

	srv := shrecd.NewWith(shrecd.Config{
		DefaultOptions: opt,
		MaxConcurrent:  *workers,
		MaxInstrs:      *maxInstrs,
		MaxTrials:      *maxTrials,
		MaxCampaigns:   *maxCamps,
		Store:          st,
		Journal:        journal,
		Watchdog:       *watchdog,
		ShedAfter:      *shed,
		Logger:         logger,
		EnablePprof:    *pprofOn,
	}, sims)
	defer srv.Close() // stop background campaigns; finished trials are persisted

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before serving so the actually-bound address (":0" resolves
	// to a real port) is printed for scripts and the crash-recovery tests.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrecd:", err)
		os.Exit(1)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	// Scripts (and the crash-recovery tests) parse this exact stdout line
	// for the bound address; structured diagnostics go to stderr instead.
	fmt.Printf("shrecd: listening on %s (workers=%d, warmup=%d, measure=%d)\n",
		ln.Addr(), *workers, opt.WarmupInstrs, opt.MeasureInstrs)
	if *pprofOn {
		logger.Info("pprof enabled", "url", "/debug/pprof/")
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "shrecd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C force-quits
		logger.Info("draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shrecd: shutdown:", err)
			os.Exit(1)
		}
	}
	logger.Info("bye")
}
