// Observability smoke test: build the real shrecd binary, run a tiny
// campaign against it, and verify the telemetry surface end to end —
// /metrics passes the exposition lint and carries the request/job/stage
// families, the job status exposes its phase breakdown, /healthz
// answers, and the flag-gated pprof endpoints mount. This is the
// process-level counterpart of internal/shrecd's in-process metrics
// lint test: it exercises the actual flag wiring in main.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/telemetry"
)

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildShrecd(t)
	dir := t.TempDir()
	p := startShrecd(t, bin, dir+"/store", dir+"/journal",
		"-pprof", "-log-level", "debug", "-log-format", "json")

	r, err := repro.NewRemote(p.baseURL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()

	job, err := r.StartCampaign(ctx, repro.CampaignSpec{
		Machine: "shrec", Benchmark: "crafty", Trials: 8, FaultRate: 2e-4, Seed: 7,
	})
	if err != nil {
		t.Fatalf("starting campaign: %v", err)
	}
	if _, err := r.WaitCampaign(ctx, job.ID); err != nil {
		t.Fatalf("campaign: %v\nstderr:\n%s", err, p.stderr)
	}

	// The finished job must carry its phase breakdown.
	var status struct {
		Phases []telemetry.PhaseStat `json:"phases"`
	}
	getInto(t, p.baseURL+"/campaigns/"+job.ID, &status)
	phases := map[string]bool{}
	for _, ph := range status.Phases {
		phases[ph.Phase] = true
	}
	for _, want := range []string{"queued", "golden_run", "trial"} {
		if !phases[want] {
			t.Errorf("phase %q missing from job status %+v", want, status.Phases)
		}
	}

	// /metrics: well-formed exposition carrying the telemetry families.
	body := getBody(t, p.baseURL+"/metrics")
	if err := telemetry.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition lint failed:\n%v", err)
	}
	for _, family := range []string{
		"shrecd_http_requests_total",
		"shrecd_http_request_seconds",
		"shrecd_jobs_total",
		"shrecd_job_duration_seconds",
		"shrecd_job_phase_seconds",
		"sim_stage_seconds",
		"shrecd_results_cached",
		"shrecd_sim_runs_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}

	// /healthz still answers (and reports an ok store).
	var health struct {
		Status string `json:"status"`
	}
	getInto(t, p.baseURL+"/healthz", &health)
	if health.Status == "" {
		t.Error("healthz returned no status")
	}

	// -pprof mounted the profile index.
	if idx := getBody(t, p.baseURL+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", idx)
	}

	// The structured logs went to stderr as JSON.
	if !strings.Contains(p.stderr.String(), `"msg":"job finished"`) {
		t.Errorf("no structured job-finished log on stderr:\n%.500s", p.stderr)
	}
}

// getBody fetches a URL and returns its body, failing the test on any
// error or non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d:\n%s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

// getInto fetches a URL and decodes its JSON body into v.
func getInto(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}
