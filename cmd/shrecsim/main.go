// Command shrecsim runs one benchmark on one machine configuration and
// prints detailed statistics.
//
// Usage:
//
//	shrecsim -bench swim -machine shrec [-n instrs] [-warmup instrs]
//	         [-stagger N] [-xscale F] [-faultrate P]
//
// Machines: ss1, ss2, ss2+<factors> (e.g. ss2+sc, ss2+xscb), shrec.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fu"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "swim", "benchmark name (see cmd/workloads for the list)")
		machine   = flag.String("machine", "shrec", "machine: ss1, ss2, ss2+<factors>, shrec")
		n         = flag.Uint64("n", 1_000_000, "measured instructions")
		warm      = flag.Uint64("warmup", 200_000, "warmup instructions")
		stagger   = flag.Int("stagger", -1, "override the SS2 maximum stagger")
		xscale    = flag.Float64("xscale", 1, "scale issue width and functional units")
		faultRate = flag.Float64("faultrate", 0, "per-instruction transient fault probability")
		faultSeed = flag.Uint64("faultseed", 1, "fault injection seed")
		prefetch  = flag.Bool("prefetch", false, "enable the stride prefetcher (what-if; off in the paper)")
	)
	flag.Parse()

	p, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrecsim:", err)
		os.Exit(1)
	}
	m, err := config.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrecsim:", err)
		os.Exit(1)
	}
	if *stagger >= 0 {
		m = m.WithStagger(*stagger)
	}
	if *xscale != 1 {
		m = m.WithXScale(*xscale)
	}
	m.FaultRate = *faultRate
	m.FaultSeed = *faultSeed
	m.Mem.Prefetch.Enable = *prefetch

	e := core.New(m, trace.New(p))
	opt := sim.Options{WarmupInstrs: *warm, MeasureInstrs: *n}
	if opt.WarmupInstrs > 0 {
		if err := e.Warmup(opt.WarmupInstrs); err != nil {
			fmt.Fprintln(os.Stderr, "shrecsim:", err)
			os.Exit(1)
		}
	}
	st, err := e.Run(opt.MeasureInstrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrecsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s (%s)\n", m.Name, p.Name, p.Class)
	fmt.Printf("  IPC               %8.3f\n", st.IPC())
	fmt.Printf("  cycles            %8d\n", st.Cycles)
	fmt.Printf("  retired           %8d\n", st.Retired)
	fmt.Printf("  wrong-path fetch  %8d\n", st.WrongPathFetched)
	fmt.Printf("  mispredict rate   %8.3f\n", st.MispredictRate())
	fmt.Printf("  BTB bubbles       %8d\n", st.BTBBubbles)
	fmt.Printf("  issued M/R/chk    %d / %d / %d\n", st.IssuedM, st.IssuedR, st.IssuedChecker)
	fmt.Printf("  load forwards     %8d\n", st.LoadForwards)
	fmt.Printf("  avg ROB/ISQ/LSQ   %.1f / %.1f / %.1f\n",
		st.AvgROBOcc(), float64(st.ISQOccSum)/float64(st.Cycles), float64(st.LSQOccSum)/float64(st.Cycles))
	fmt.Printf("  avg MLP           %8.2f\n", float64(st.MSHROccSum)/float64(st.Cycles))
	fmt.Printf("  avg stagger       %8.1f\n", st.AvgStagger())

	h := e.Mem()
	fmt.Printf("  L1I/L1D/L2 miss   %.3f / %.3f / %.3f\n",
		h.L1I().MissRate(), h.L1D().MissRate(), h.L2().MissRate())
	if pfIss, pfUse := h.PrefetchStats(); pfIss > 0 {
		fmt.Printf("  prefetch iss/use  %d / %d\n", pfIss, pfUse)
	}
	util := e.Pool().Utilization(st.Cycles)
	fmt.Printf("  FU util (IALU/IMULDIV/FADD/FMULDIV)  %.2f / %.2f / %.2f / %.2f\n",
		util[fu.IALU], util[fu.IMULDIV], util[fu.FADD], util[fu.FMULDIV])
	if *faultRate > 0 {
		fmt.Printf("  faults inj/det    %d / %d (silent: %d, exceptions: %d)\n",
			st.FaultsInjected, st.FaultsDetected, st.SilentCorruptions, st.SoftExceptions)
	}
}
