// Command tracetool captures synthetic workload traces to files and
// inspects or replays them, decoupling workload generation from timing
// simulation (the usual trace-driven methodology of the paper's era).
//
//	tracetool capture -bench swim -n 500000 -o swim.trace
//	tracetool info   swim.trace
//	tracetool run    -machine shrec swim.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool capture -bench <name> [-n instrs] [-wrong instrs] -o <file>
  tracetool info <file>
  tracetool run [-machine ss1|ss2|shrec|diva|o3rs] [-n instrs] <file>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	bench := fs.String("bench", "swim", "benchmark to capture")
	n := fs.Int("n", 500_000, "correct-path instructions")
	wrong := fs.Int("wrong", 50_000, "wrong-path instructions")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		usage()
	}
	p, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	rec, err := trace.Capture(trace.New(p), *n, *wrong)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	written, err := rec.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("captured %s: %d + %d instructions, %d bytes -> %s\n",
		*bench, rec.Len(), rec.WrongLen(), written, *out)
}

func load(path string) *trace.Recording {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := trace.ReadRecording(f)
	if err != nil {
		fatal(err)
	}
	return rec
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	rec := load(args[0])
	var counts [isa.NumOpClasses]int
	branches, taken := 0, 0
	for i := 0; i < rec.Len(); i++ {
		in := rec.Next()
		counts[in.Class]++
		if in.IsBranch() {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s: %d correct-path + %d wrong-path instructions\n",
		args[0], rec.Len(), rec.WrongLen())
	for c := 0; c < isa.NumOpClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %8d  (%.1f%%)\n", isa.OpClass(c), counts[c],
			100*float64(counts[c])/float64(rec.Len()))
	}
	if branches > 0 {
		fmt.Printf("  taken branch fraction: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	machine := fs.String("machine", "shrec", "machine model")
	n := fs.Uint64("n", 0, "instructions to simulate (default: one full lap)")
	warm := fs.Uint64("warmup", 100_000, "warmup instructions")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	rec := load(fs.Arg(0))
	m, err := machineFor(*machine)
	if err != nil {
		fatal(err)
	}
	count := *n
	if count == 0 {
		count = uint64(rec.Len())
	}
	e := core.New(m, rec)
	if *warm > 0 {
		if err := e.Warmup(*warm); err != nil {
			fatal(err)
		}
	}
	st, err := e.Run(count)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: IPC %.3f over %d instructions (%d cycles)\n",
		m.Name, fs.Arg(0), st.IPC(), st.Retired, st.Cycles)
}

func machineFor(name string) (config.Machine, error) {
	switch name {
	case "ss1":
		return config.SS1(), nil
	case "ss2":
		return config.SS2(config.Factors{}), nil
	case "shrec":
		return config.SHREC(), nil
	case "diva":
		return config.DIVA(), nil
	case "o3rs":
		return config.O3RS(), nil
	}
	return config.Machine{}, fmt.Errorf("unknown machine %q", name)
}
