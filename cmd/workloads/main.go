// Command workloads characterizes the synthetic SPEC2K-like benchmark
// suite: for each profile it reports the measured instruction mix, branch
// behavior, and cache miss rates on the SS1 baseline, so the substitution
// documented in DESIGN.md is inspectable.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		n    = flag.Uint64("n", 300_000, "instructions to characterize")
		warm = flag.Uint64("warmup", 100_000, "warmup instructions")
	)
	flag.Parse()

	type row struct {
		name  string
		cells []string
	}
	profiles := workload.All()
	rows := make([]row, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p trace.Profile) {
			defer wg.Done()
			// Measure the static mix from the generator itself.
			g := trace.New(p)
			var counts [isa.NumOpClasses]uint64
			total := 3 * int(*n) / 2
			for k := 0; k < total; k++ {
				counts[g.Next().Class]++
			}
			frac := func(c isa.OpClass) float64 {
				return float64(counts[c]) / float64(total)
			}

			e := core.New(config.SS1(), trace.New(p))
			if err := e.Warmup(*warm); err != nil {
				fmt.Fprintln(os.Stderr, "workloads:", err)
				os.Exit(1)
			}
			st, err := e.Run(*n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "workloads:", err)
				os.Exit(1)
			}
			h := e.Mem()
			class := p.Class.String()
			if p.HighIPC {
				class += "/high"
			} else {
				class += "/low"
			}
			rows[i] = row{p.Name, []string{
				class,
				fmt.Sprintf("%.2f", st.IPC()),
				fmt.Sprintf("%.2f", frac(isa.OpIALU)+frac(isa.OpIMul)+frac(isa.OpIDiv)),
				fmt.Sprintf("%.2f", frac(isa.OpFAdd)+frac(isa.OpFMul)+frac(isa.OpFDiv)),
				fmt.Sprintf("%.2f", frac(isa.OpLoad)+frac(isa.OpStore)),
				fmt.Sprintf("%.2f", frac(isa.OpBranch)),
				fmt.Sprintf("%.3f", st.MispredictRate()),
				fmt.Sprintf("%.3f", h.L1D().MissRate()),
				fmt.Sprintf("%.3f", h.L2().MissRate()),
				fmt.Sprintf("%.1f", float64(st.MSHROccSum)/float64(st.Cycles)),
			}}
		}(i, p)
	}
	wg.Wait()

	_ = sim.DefaultOptions() // keep import for future options plumbing
	tb := stats.NewTable("Synthetic SPEC2K-like workload characterization (SS1 baseline)",
		"benchmark", "class", "IPC", "int", "fp", "mem", "br", "mispred", "L1D", "L2", "MLP")
	for _, r := range rows {
		tb.AddRow(append([]string{r.name}, r.cells...)...)
	}
	fmt.Print(tb.String())
}
