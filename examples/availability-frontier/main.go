// Availability-frontier: sweep checkpoint/rollback recovery policies on
// the SHREC machine under fault injection and find the Pareto frontier
// over performance, hardware cost, detection coverage, and steady-state
// availability.
//
// The space crosses SHREC with a checkpoint-interval axis — no recovery
// at all, then geometrically spaced intervals — under one transient-fault
// rate. Every checkpointed point runs its fault campaign under the
// recovery policy: detected faults roll back to the newest preceding
// architectural checkpoint, charge restore plus re-execution, and run to
// completion, so the campaign observes rollbacks, lost work, and the
// occasional unrecoverable detection directly. From those counts each
// point gets an availability estimate with Wilson-propagated confidence
// bounds and the implied MTTF; the recovery-free point keeps coverage
// only, anchoring what availability costs in checkpoint hardware.
//
// The exploration is deterministic and resumable: rerunning after an
// interrupt resumes from the store instead of re-simulating.
//
//	go run ./examples/availability-frontier [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	bench := "crafty"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	c, err := repro.NewClient(
		repro.WithOptions(repro.Options{WarmupInstrs: 5_000, MeasureInstrs: 20_000}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "availability-frontier:", err)
		os.Exit(1)
	}
	defer c.Close()

	spec := repro.ExploreSpec{
		Space: repro.ExploreSpace{
			Bases: []string{"shrec"},
			// 0 = no recovery: the comparison point that shows what the
			// availability objective buys.
			CkptIntervals: []uint64{0, 256, 1024, 4096},
			CkptDepths:    nil, // depth 1 everywhere; add an axis to sweep it
			FaultRates:    []float64{2e-4},
		},
		Benchmarks: []string{bench},
		Trials:     12,
		Seed:       7,
	}
	// Restrict the interval axis to non-zero entries before adding a
	// depth axis: depth without an interval is rejected statically.

	res, err := c.Explore(context.Background(), spec, func(p repro.ExploreProgress) {
		if p.Done == p.Total {
			fmt.Printf("  %s pass: %d/%d evaluations\n", p.Phase, p.Done, p.Total)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "availability-frontier:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Print(res.Report().String())

	// The typed evaluations carry the availability estimates directly —
	// a dashboard would plot Avail (with AvailLo/AvailHi error bars)
	// against Cost.
	fmt.Println()
	for _, ev := range res.Evals {
		if !ev.Availed {
			fmt.Printf("  %-28s coverage %.3f, no recovery: availability undefined\n",
				ev.Spec, ev.Coverage)
			continue
		}
		fmt.Printf("  %-28s availability %.4f [%.4f, %.4f], MTTF %.3g cycles\n",
			ev.Spec, ev.Avail, ev.AvailLo, ev.AvailHi, ev.MTTFCycles)
	}
	fmt.Printf("\nfrontier of %d over a %d-point space\n", len(res.Frontier), res.Points)
}
