// Factor sweep: explore the paper's Table 2 design space on one benchmark
// — all sixteen combinations of the X (issue/FU bandwidth), S (stagger),
// C (ISQ/ROB capacity), and B (decode/retire bandwidth) factors applied to
// the SS2 redundant machine — and run the 2-k factorial analysis on the
// result, like the paper's Table 3.
//
// Demonstrates the typed experiment API end-to-end: Client.Sweep fans the
// sixteen configurations out in parallel, the results land in a
// repro.Report, and -format csv emits the tidy long-format CSV that
// spreadsheet and dataframe tooling ingests directly.
//
//	go run ./examples/factor-sweep [-format text|csv] [-o file] [benchmark]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/factorial"
)

func main() {
	format := flag.String("format", "text", "output format: text or csv")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	flag.Parse()

	bench := "swim"
	if flag.NArg() > 0 {
		bench = flag.Arg(0)
	}

	c, err := repro.NewClient(repro.WithOptions(
		repro.Options{WarmupInstrs: 300_000, MeasureInstrs: 400_000}))
	if err != nil {
		fail(err)
	}
	defer c.Close()

	p, err := repro.WorkloadByName(bench)
	if err != nil {
		fail(err)
	}

	// One batched fan-out over the sixteen factor combinations.
	combos := repro.AllFactorCombinations()
	machines := make([]repro.Machine, len(combos))
	for i, f := range combos {
		machines[i] = repro.SS2(f)
	}
	results, err := c.Sweep(context.Background(), machines, []repro.Profile{p})
	if err != nil {
		fail(err)
	}

	// Assemble the typed report: one IPC row per combination plus the
	// factorial effects, Table 3 style.
	rep := repro.NewReport("factor-sweep", "Table 2 style sweep on "+bench)
	rep.SetMeta("benchmark", bench)
	tb := rep.AddTable("IPC per factor combination (vs plain SS2)",
		"X S C B", "IPC", "change %")
	baseIPC := results[0].IPC()
	cpis := make([]float64, 16)
	for i, res := range results {
		f := combos[i]
		mask := 0
		if f.X {
			mask |= 1
		}
		if f.S {
			mask |= 2
		}
		if f.C {
			mask |= 4
		}
		if f.B {
			mask |= 8
		}
		cpis[mask] = res.CPI()
		tb.AddRow(f.String(), res.IPC(), 100*(res.IPC()-baseIPC)/baseIPC)
	}

	an, err := factorial.Analyze([]string{"X", "S", "C", "B"}, cpis)
	if err != nil {
		fail(err)
	}
	et := rep.AddTable("2-k factorial analysis (CPI decrease > 3%, Table 3 style)",
		"class", "factor", "effect %")
	et.Verb = "%.1f"
	et.ClassColumn = true
	if len(an.Significant(3)) == 0 {
		rep.AddNote("no significant factors")
	}
	for _, eff := range an.Significant(3) {
		class := "main effect"
		if eff.Order > 1 {
			class = "interaction"
		}
		et.Add(repro.ReportRow{Label: eff.Name, Class: class, Values: []float64{eff.PctDecrease}})
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "text":
		err = rep.Text(out)
	case "csv":
		err = rep.CSV(out)
	default:
		err = fmt.Errorf("unknown format %q (have text, csv)", *format)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "factor-sweep:", err)
	os.Exit(1)
}
