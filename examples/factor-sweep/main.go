// Factor sweep: explore the paper's Table 2 design space on one benchmark
// — all sixteen combinations of the X (issue/FU bandwidth), S (stagger),
// C (ISQ/ROB capacity), and B (decode/retire bandwidth) factors applied to
// the SS2 redundant machine — and run the 2-k factorial analysis on the
// result, like the paper's Table 3.
//
//	go run ./examples/factor-sweep [benchmark]
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/factorial"
)

func main() {
	bench := "swim"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	opt := repro.Options{WarmupInstrs: 300_000, MeasureInstrs: 400_000}

	fmt.Printf("Table 2 style sweep on %s (IPC change vs plain SS2)\n\n", bench)
	combos := repro.AllFactorCombinations()
	cpis := make([]float64, 16)
	var baseIPC float64
	for i, f := range combos {
		res, err := repro.Simulate(repro.SS2(f), bench, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "factor-sweep:", err)
			os.Exit(1)
		}
		ipc := res.IPC()
		mask := 0
		if f.X {
			mask |= 1
		}
		if f.S {
			mask |= 2
		}
		if f.C {
			mask |= 4
		}
		if f.B {
			mask |= 8
		}
		cpis[mask] = res.CPI()
		if i == 0 {
			baseIPC = ipc
			fmt.Printf("  %-8s IPC %5.2f  (baseline)\n", f, ipc)
			continue
		}
		fmt.Printf("  %-8s IPC %5.2f  %+5.0f%%\n", f, ipc, 100*(ipc-baseIPC)/baseIPC)
	}

	an, err := factorial.Analyze([]string{"X", "S", "C", "B"}, cpis)
	if err != nil {
		fmt.Fprintln(os.Stderr, "factor-sweep:", err)
		os.Exit(1)
	}
	fmt.Println("\n2-k factorial analysis (CPI decrease > 3% shown, Table 3 style):")
	sig := an.Significant(3)
	if len(sig) == 0 {
		fmt.Println("  no significant factors")
	}
	for _, eff := range sig {
		kind := "main effect"
		if eff.Order > 1 {
			kind = "interaction"
		}
		fmt.Printf("  %-6s %11s  %+.1f%%\n", eff.Name, kind, eff.PctDecrease)
	}
}
