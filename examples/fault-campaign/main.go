// Fault-campaign: run a Monte Carlo fault-injection campaign against
// SHREC and print the classified outcome distribution with its
// Wilson-bounded coverage estimate — the statistically grounded version
// of "does the protection actually work?".
//
// Every trial simulates the same (machine, benchmark) pair with a
// distinct derived fault seed, injecting transient result corruptions
// inside the measured region only, and is classified against a fault-free
// golden run: detected, squashed-benign, masked, silent data corruption
// (architectural-signature divergence), or hang (cycle-budget watchdog).
//
// The campaign persists per-trial results to a store, so interrupting and
// re-running this example resumes instead of re-simulating: the second
// run prints "resumed 120 of 120".
//
//	go run ./examples/fault-campaign [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	bench := "crafty"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	c, err := repro.NewClient(
		repro.WithOptions(repro.Options{WarmupInstrs: 5_000, MeasureInstrs: 20_000}),
		repro.WithStore("fault-campaign.db"), // interrupt + rerun = resume
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault-campaign:", err)
		os.Exit(1)
	}
	defer c.Close()

	spec := repro.CampaignSpec{
		Machine:   "shrec",
		Benchmark: bench,
		Trials:    120,
		FaultRate: 1e-4,
		Seed:      42,
	}

	// The progress callback streams the running coverage estimate; a
	// server would publish these snapshots (shrecd's POST /campaigns
	// does exactly that).
	res, err := c.Campaign(context.Background(), spec, func(p repro.CampaignProgress) {
		if p.Done%40 == 0 || p.Done == p.Total {
			fmt.Printf("  %3d/%d trials, coverage %.1f%% [%.1f%%, %.1f%%]\n",
				p.Done, p.Total, 100*p.Coverage.Point, 100*p.Coverage.Lo, 100*p.Coverage.Hi)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault-campaign:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Print(res.Report().String())
	fmt.Printf("\nresumed %d, executed %d (rerun this example: all %d resume)\n",
		res.Resumed, res.Executed, len(res.Trials))
}
