// Fault injection: demonstrate that the redundant machines actually detect
// and recover from transient errors, which is the entire point of paying
// the performance penalty the paper measures.
//
// The example injects single-bit-flip-style result corruptions at a given
// per-instruction rate into SS1 (no protection), SS2 (pairwise compare at
// retirement), and SHREC (in-order checker), then reports detection
// coverage and the recovery cost.
//
//	go run ./examples/fault-injection [-rate 2e-5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	rate := flag.Float64("rate", 2e-5, "per-instruction fault probability")
	bench := flag.String("bench", "crafty", "benchmark to run")
	flag.Parse()

	opt := repro.Options{WarmupInstrs: 200_000, MeasureInstrs: 600_000}
	fmt.Printf("injecting transient faults at rate %.0e on %s\n\n", *rate, *bench)
	fmt.Printf("%-8s %8s %9s %9s %7s %8s %10s\n",
		"machine", "IPC", "injected", "detected", "silent", "recover", "coverage")

	for _, base := range []repro.Machine{
		repro.SS1(),
		repro.SS2(repro.Factors{S: true}),
		repro.SHREC(),
	} {
		m := base
		m.FaultRate = *rate
		m.FaultSeed = 2004 // MICRO-37
		res, err := repro.Simulate(m, *bench, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fault-injection:", err)
			os.Exit(1)
		}
		st := res.Stats
		coverage := "n/a"
		// Faults wiped by an unrelated recovery's squash (or still in
		// flight at the end) never reach a compare, so coverage counts
		// the faults that did.
		if eligible := st.FaultsInjected - st.FaultsSquashed; eligible > 0 {
			pct := 100 * float64(st.FaultsDetected) / float64(eligible)
			if pct > 100 {
				pct = 100
			}
			coverage = fmt.Sprintf("%.0f%%", pct)
		}
		fmt.Printf("%-8s %8.2f %9d %9d %7d %8d %10s\n",
			m.Name, res.IPC(), st.FaultsInjected, st.FaultsDetected,
			st.SilentCorruptions, st.SoftExceptions, coverage)
	}

	fmt.Println("\nSS1 lets every fault escape as silent data corruption; SS2 and SHREC")
	fmt.Println("detect each one at the redundant compare and replay from the faulty")
	fmt.Println("instruction (a soft exception), losing only pipeline-refill time.")
}
