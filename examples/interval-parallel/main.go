// Interval-parallel: split one simulation's measured phase into
// independent intervals, run them concurrently, and verify the stitched
// result is byte-identical to the sequential stitch.
//
// Intervals > 1 selects the sampled interval estimator: each interval
// re-warms a fresh engine at its region of the instruction stream (in the
// SimPoint tradition), so intervals share no state and parallelism cannot
// perturb results — the wall-clock speedup is free determinism-preserving
// concurrency. The CI examples job runs this as the parallel smoke test.
//
//	go run ./examples/interval-parallel [benchmark]
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	bench := "mesa"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := repro.WorkloadByName(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interval-parallel:", err)
		os.Exit(1)
	}
	m := repro.SHREC()
	opt := repro.Options{
		WarmupInstrs:  10_000,
		MeasureInstrs: 200_000,
		Intervals:     8,
	}

	run := func(parallelism int) (repro.Result, time.Duration) {
		o := opt
		o.Parallelism = parallelism
		start := time.Now()
		res, err := repro.SimulateProfile(m, p, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "interval-parallel:", err)
			os.Exit(1)
		}
		return res, time.Since(start)
	}

	seq, seqT := run(1)
	par, parT := run(8)

	fmt.Printf("benchmark %s on %s: %d instructions in %d intervals\n\n",
		bench, m.Name, opt.MeasureInstrs, opt.Intervals)
	fmt.Printf("  sequential (1 worker):  IPC %.3f  sig %016x  %v\n", seq.IPC(), seq.Stats.ArchSig, seqT.Round(time.Millisecond))
	fmt.Printf("  parallel   (8 workers): IPC %.3f  sig %016x  %v\n", par.IPC(), par.Stats.ArchSig, parT.Round(time.Millisecond))

	if seq.Stats != par.Stats {
		fmt.Fprintln(os.Stderr, "\ninterval-parallel: PARALLEL RUN DIVERGED FROM SEQUENTIAL")
		os.Exit(1)
	}
	fmt.Println("\nstitched counters and architectural signature are byte-identical:")
	fmt.Println("parallelism changed only the wall clock, never the result.")
}
