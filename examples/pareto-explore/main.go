// Pareto-explore: search a small machine-configuration space for
// Pareto-efficient resource sharing — the exploration engine turned on
// the paper's own cast of machines, scaled up and down.
//
// The space crosses the error-detecting machines — symmetric SS2 with
// and without the paper's S/C factors, resource-sharing SHREC, and
// dedicated-checker DIVA — with three issue/FU bandwidth scales (fifteen
// points). Each point is scored on IPC, slowdown against the plain SS2
// redundant baseline, and a deterministic hardware-cost proxy; the
// report lists the configurations no other point beats on every
// objective at once. Successive halving screens the whole space at
// one-eighth run length and re-evaluates only the surviving half at full
// fidelity.
//
// Evaluations persist to a store, so interrupting and re-running this
// example resumes instead of re-evaluating: the second run prints
// "resumed" evaluations in the report notes.
//
//	go run ./examples/pareto-explore [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	bench := "swim"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	c, err := repro.NewClient(
		repro.WithOptions(repro.Options{WarmupInstrs: 5_000, MeasureInstrs: 20_000}),
		repro.WithStore("pareto-explore.db"), // interrupt + rerun = resume
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pareto-explore:", err)
		os.Exit(1)
	}
	defer c.Close()

	spec := repro.ExploreSpec{
		Space: repro.ExploreSpace{
			Bases:   []string{"ss2", "ss2+s", "ss2+sc", "shrec", "diva"},
			XScales: []float64{0.5, 1, 1.5},
		},
		Strategy:   "halving",
		Benchmarks: []string{bench},
		Seed:       42,
	}

	// The progress callback streams the evaluation phases; a server
	// would publish these snapshots (shrecd's POST /explorations does
	// exactly that).
	res, err := c.Explore(context.Background(), spec, func(p repro.ExploreProgress) {
		if p.Done == p.Total {
			fmt.Printf("  %s pass: %d/%d evaluations (%d resumed)\n",
				p.Phase, p.Done, p.Total, p.Resumed)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pareto-explore:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Print(res.Report().String())
	fmt.Printf("\nfrontier of %d over a %d-point space; resumed %d, executed %d (rerun: all resume)\n",
		len(res.Frontier), res.Points, res.Resumed, res.Executed)
}
