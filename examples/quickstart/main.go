// Quickstart: simulate one benchmark on the three execution models the
// paper compares — the SS1 baseline, symmetric redundant SS2, and SHREC —
// and print the redundant-execution performance penalty of each.
//
// Uses the repro.Client facade: one client owns one result cache, so the
// four runs here would be reused by any later sweep or experiment on the
// same client.
//
//	go run ./examples/quickstart [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	bench := "twolf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	c, err := repro.NewClient(repro.WithOptions(repro.QuickOptions()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	defer c.Close()

	machines := []repro.Machine{
		repro.SS1(),
		repro.SS2(repro.Factors{}),
		repro.SS2(repro.Factors{S: true, C: true}),
		repro.SHREC(),
	}

	fmt.Printf("benchmark %s, %d measured instructions\n\n", bench, c.Options().MeasureInstrs)
	var baseline float64
	for _, m := range machines {
		res, err := c.Simulate(context.Background(), m, bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		ipc := res.IPC()
		if m.Name == "SS1" {
			baseline = ipc
		}
		penalty := 100 * (baseline - ipc) / baseline
		fmt.Printf("  %-8s IPC %5.2f   penalty vs SS1 %5.1f%%   (mispredict %.1f%%, stagger %.0f)\n",
			m.Name, ipc, penalty,
			100*res.Stats.MispredictRate(), res.Stats.AvgStagger())
	}
	fmt.Println("\nSHREC recovers most of the redundant-execution penalty by checking")
	fmt.Println("the R-thread in order with leftover issue slots and functional units.")
}
