// Stagger study: reproduce the shape of the paper's Figure 5 on selected
// benchmarks — IPC of the SS2+S+C machine as the maximum allowed stagger
// between the redundant threads grows from lockstep to effectively
// unbounded.
//
// The paper's observation: a moderate stagger (256 instructions) captures
// nearly all of the benefit, because it is enough to hide the longest
// system latency (a main-memory access); staggers beyond that add nothing
// since pairs must still retire together through the shared ROB.
//
//	go run ./examples/stagger-study [benchmarks...]
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	benches := os.Args[1:]
	if len(benches) == 0 {
		benches = []string{"swim", "parser", "vortex-one", "apsi"}
	}
	staggers := []int{0, 64, 256, 1024, 1 << 20}

	opt := repro.Options{WarmupInstrs: 300_000, MeasureInstrs: 500_000}
	fmt.Printf("%-12s", "benchmark")
	for _, s := range staggers {
		fmt.Printf(" %9s", staggerLabel(s))
	}
	fmt.Println()

	for _, bench := range benches {
		fmt.Printf("%-12s", bench)
		for _, s := range staggers {
			m := repro.SS2(repro.Factors{S: true, C: true}).WithStagger(s)
			res, err := repro.Simulate(m, bench, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "\nstagger-study:", err)
				os.Exit(1)
			}
			fmt.Printf(" %9.2f", res.IPC())
		}
		fmt.Println()
	}
	fmt.Println("\nColumns are IPC at each maximum stagger; gains flatten by ~256")
	fmt.Println("instructions, matching the paper's Figure 5.")
}

func staggerLabel(s int) string {
	switch {
	case s == 0:
		return "lockstep"
	case s >= 1<<20:
		return "1M"
	case s >= 1024:
		return fmt.Sprintf("%dK", s/1024)
	default:
		return fmt.Sprintf("%d", s)
	}
}
