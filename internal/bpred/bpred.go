// Package bpred implements the branch prediction hardware the paper's
// Table 1 provisions: a combining (tournament) direction predictor built
// from a 64K-entry gshare and a two-level per-address (PAs) predictor with
// 16K first-level history registers and a 64K-entry second-level pattern
// table, selected by a 64K-entry meta chooser, plus a 2K-entry 4-way
// set-associative branch target buffer.
//
// All tables use 2-bit saturating counters and are indexed by word-aligned
// PCs (the low two PC bits are ignored).
package bpred

import "repro/internal/isa"

// DirPredictor predicts conditional branch directions. Implementations are
// updated with the actual outcome after the branch resolves.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// Counter2 is a 2-bit saturating counter. Values 0-1 predict not-taken,
// 2-3 predict taken.
type Counter2 uint8

// Taken reports the counter's current prediction.
func (c Counter2) Taken() bool { return c >= 2 }

// Update moves the counter toward the outcome, saturating at 0 and 3.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// WeaklyTaken is the customary initial counter state.
const WeaklyTaken Counter2 = 2

func pcIndex(pc uint64) uint64 { return pc >> 2 }

// Config describes the full predictor complex. The zero value is invalid;
// use DefaultConfig (Table 1) or populate every field.
type Config struct {
	// GshareEntries is the gshare pattern table size (power of two).
	GshareEntries int
	// GshareHistoryBits is the global history length.
	GshareHistoryBits int
	// PAsL1Entries is the number of per-address history registers.
	PAsL1Entries int
	// PAsL2Entries is the per-address pattern table size.
	PAsL2Entries int
	// PAsHistoryBits is the local history length.
	PAsHistoryBits int
	// MetaEntries is the chooser table size.
	MetaEntries int
	// BTBSets and BTBWays shape the branch target buffer.
	BTBSets, BTBWays int
	// MispredictPenalty is the pipeline recovery latency in cycles after a
	// mispredicted branch resolves (Table 1: 7 cycles).
	MispredictPenalty int
}

// DefaultConfig returns the Table 1 predictor: 64K gshare, 16K/64K PAs,
// 64K meta, 2K-entry 4-way BTB, 7-cycle misprediction recovery.
func DefaultConfig() Config {
	return Config{
		GshareEntries:     64 * 1024,
		GshareHistoryBits: 16,
		PAsL1Entries:      16 * 1024,
		PAsL2Entries:      64 * 1024,
		PAsHistoryBits:    16,
		MetaEntries:       64 * 1024,
		BTBSets:           512, // 512 sets x 4 ways = 2K entries
		BTBWays:           4,
		MispredictPenalty: 7,
	}
}

// Combining is the tournament predictor: a meta table of 2-bit counters
// picks between the gshare and PAs components per branch. Both components
// are always trained; the meta counter is trained toward whichever
// component was correct when they disagree.
type Combining struct {
	gshare *Gshare
	pas    *PAs
	meta   []Counter2
	mask   uint64

	// Stats
	lookups     uint64
	mispredicts uint64
}

// NewCombining builds the combining predictor from cfg.
func NewCombining(cfg Config) *Combining {
	if cfg.MetaEntries == 0 || cfg.MetaEntries&(cfg.MetaEntries-1) != 0 {
		panic("bpred: MetaEntries must be a nonzero power of two")
	}
	meta := make([]Counter2, cfg.MetaEntries)
	for i := range meta {
		meta[i] = WeaklyTaken // weakly prefer gshare
	}
	return &Combining{
		gshare: NewGshare(cfg.GshareEntries, cfg.GshareHistoryBits),
		pas:    NewPAs(cfg.PAsL1Entries, cfg.PAsL2Entries, cfg.PAsHistoryBits),
		meta:   meta,
		mask:   uint64(cfg.MetaEntries - 1),
	}
}

// Predict returns the chosen component's prediction for pc.
func (c *Combining) Predict(pc uint64) bool {
	c.lookups++
	if c.meta[pcIndex(pc)&c.mask].Taken() {
		return c.gshare.Predict(pc)
	}
	return c.pas.Predict(pc)
}

// Update trains both components and the chooser.
func (c *Combining) Update(pc uint64, taken bool) {
	g := c.gshare.Predict(pc)
	p := c.pas.Predict(pc)
	chosen := p
	if c.meta[pcIndex(pc)&c.mask].Taken() {
		chosen = g
	}
	if chosen != taken {
		c.mispredicts++
	}
	if g != p {
		i := pcIndex(pc) & c.mask
		c.meta[i] = c.meta[i].Update(g == taken)
	}
	c.gshare.Update(pc, taken)
	c.pas.Update(pc, taken)
}

// Stats returns lookups and mispredictions recorded by Update.
func (c *Combining) Stats() (lookups, mispredicts uint64) {
	return c.lookups, c.mispredicts
}

// Clone returns a deep copy of the whole predictor complex (used by
// simulation checkpoints).
func (c *Combining) Clone() *Combining {
	out := *c
	out.gshare = c.gshare.Clone()
	out.pas = c.pas.Clone()
	out.meta = append([]Counter2(nil), c.meta...)
	return &out
}

// MispredictRate returns the fraction of updated predictions that were
// wrong, or 0 before any update.
func (c *Combining) MispredictRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.mispredicts) / float64(c.lookups)
}

// PredictInst predicts an instruction's control-flow outcome: direction for
// conditional branches (unconditional branches are always taken). Non-branch
// instructions are not predicted.
func (c *Combining) PredictInst(in *isa.Inst) bool {
	switch in.BranchKind {
	case isa.BranchCond:
		return c.Predict(in.PC)
	case isa.BranchUncond, isa.BranchIndirect:
		return true
	default:
		return false
	}
}

// UpdateInst trains the predictor with a resolved branch. Unconditional
// branches do not train the direction tables.
func (c *Combining) UpdateInst(in *isa.Inst) {
	if in.BranchKind == isa.BranchCond {
		c.Update(in.PC, in.Taken)
	}
}
