package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestCounter2Saturates(t *testing.T) {
	c := Counter2(0)
	for i := 0; i < 10; i++ {
		c = c.Update(false)
	}
	if c != 0 {
		t.Fatalf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.Update(true)
	}
	if c != 3 {
		t.Fatalf("counter did not saturate: %d", c)
	}
	if !c.Taken() {
		t.Fatal("saturated-taken counter predicts not-taken")
	}
}

func TestCounter2Hysteresis(t *testing.T) {
	c := Counter2(3)
	c = c.Update(false)
	if !c.Taken() {
		t.Fatal("one not-taken flipped a strongly-taken counter")
	}
	c = c.Update(false)
	if c.Taken() {
		t.Fatal("two not-takens should flip the prediction")
	}
}

func TestCounter2Property(t *testing.T) {
	f := func(start uint8, outcomes []bool) bool {
		c := Counter2(start % 4)
		for _, o := range outcomes {
			c = c.Update(o)
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(1024, 8)
	pc := uint64(0x4000)
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Fatal("gshare failed to learn an always-taken branch")
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	// With history, gshare predicts a strict T/NT alternation perfectly
	// after warmup.
	g := NewGshare(4096, 8)
	pc := uint64(0x1000)
	taken := false
	wrong := 0
	for i := 0; i < 2000; i++ {
		p := g.Predict(pc)
		if i > 500 && p != taken {
			wrong++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if wrong > 0 {
		t.Fatalf("gshare mispredicted alternating pattern %d times after warmup", wrong)
	}
}

func TestGshareHistoryMasked(t *testing.T) {
	g := NewGshare(1024, 4)
	for i := 0; i < 100; i++ {
		g.Update(0x100, true)
	}
	if g.History() != 0xF {
		t.Fatalf("history = %#x, want 0xF", g.History())
	}
}

func TestPAsLearnsPerBranchPatterns(t *testing.T) {
	// Two branches with opposite biases must not destructively interfere.
	p := NewPAs(1024, 4096, 8)
	a, b := uint64(0x4000), uint64(0x4004)
	for i := 0; i < 500; i++ {
		p.Update(a, true)
		p.Update(b, false)
	}
	if !p.Predict(a) {
		t.Fatal("PAs lost branch a's taken bias")
	}
	if p.Predict(b) {
		t.Fatal("PAs lost branch b's not-taken bias")
	}
}

func TestPAsLearnsShortLoop(t *testing.T) {
	// Pattern TTTN repeating: local history captures it exactly.
	p := NewPAs(1024, 65536, 12)
	pc := uint64(0x2000)
	wrong := 0
	for i := 0; i < 4000; i++ {
		taken := i%4 != 3
		pred := p.Predict(pc)
		if i > 1000 && pred != taken {
			wrong++
		}
		p.Update(pc, taken)
	}
	if wrong > 0 {
		t.Fatalf("PAs mispredicted TTTN loop %d times after warmup", wrong)
	}
}

func TestCombiningBeatsWorseComponent(t *testing.T) {
	// A branch whose direction correlates with its own local history but
	// not global history: PAs should win and the meta should learn that.
	c := NewCombining(DefaultConfig())
	noise := rng.New(99)
	pcs := []uint64{0x100, 0x200, 0x300, 0x400}
	wrong, total := 0, 0
	for i := 0; i < 20000; i++ {
		for j, pc := range pcs {
			taken := (i+j)%3 != 0 // period-3 local pattern
			pred := c.Predict(pc)
			if i > 5000 {
				total++
				if pred != taken {
					wrong++
				}
			}
			c.Update(pc, taken)
		}
		// Interleave noisy branches to scramble global history.
		npc := uint64(0x10000 + (i%64)*4)
		c.Update(npc, noise.Bool(0.5))
	}
	rate := float64(wrong) / float64(total)
	if rate > 0.05 {
		t.Fatalf("combining mispredict rate %.3f on locally-predictable branches", rate)
	}
}

func TestCombiningStats(t *testing.T) {
	c := NewCombining(DefaultConfig())
	for i := 0; i < 100; i++ {
		c.Predict(0x40)
		c.Update(0x40, true)
	}
	lookups, _ := c.Stats()
	if lookups != 100 {
		t.Fatalf("lookups = %d", lookups)
	}
	if r := c.MispredictRate(); r < 0 || r > 1 {
		t.Fatalf("rate out of range: %v", r)
	}
}

func TestPredictInstKinds(t *testing.T) {
	c := NewCombining(DefaultConfig())
	un := &isa.Inst{PC: 0x10, Class: isa.OpBranch, BranchKind: isa.BranchUncond, Dest: isa.RegNone}
	if !c.PredictInst(un) {
		t.Fatal("unconditional branch predicted not-taken")
	}
	ind := &isa.Inst{PC: 0x14, Class: isa.OpBranch, BranchKind: isa.BranchIndirect, Dest: isa.RegNone}
	if !c.PredictInst(ind) {
		t.Fatal("indirect branch predicted not-taken")
	}
	non := &isa.Inst{PC: 0x18, Class: isa.OpIALU, Dest: 1}
	if c.PredictInst(non) {
		t.Fatal("non-branch predicted taken")
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("lookup = (%#x, %v)", tgt, ok)
	}
	if _, ok := b.Lookup(0x1004); ok {
		t.Fatal("hit on never-inserted PC")
	}
}

func TestBTBUpdateTarget(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x3000 {
		t.Fatalf("updated target = (%#x, %v)", tgt, ok)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(1, 2) // one set, two ways
	b.Insert(0x000, 0xA)
	b.Insert(0x004, 0xB)
	b.Lookup(0x000)      // make 0x000 MRU
	b.Insert(0x008, 0xC) // must evict 0x004
	if _, ok := b.Lookup(0x000); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := b.Lookup(0x004); ok {
		t.Fatal("LRU entry survived")
	}
	if tgt, ok := b.Lookup(0x008); !ok || tgt != 0xC {
		t.Fatal("new entry missing")
	}
}

func TestBTBConflictCapacity(t *testing.T) {
	b := NewBTB(64, 4)
	// Fill one set with 4 conflicting entries plus one more.
	for i := 0; i < 5; i++ {
		pc := uint64(i) << (2 + 6) // same set index, different tags
		b.Insert(pc, uint64(i))
	}
	hits := 0
	for i := 0; i < 5; i++ {
		pc := uint64(i) << (2 + 6)
		if _, ok := b.Lookup(pc); ok {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("4-way set retained %d of 5 conflicting entries", hits)
	}
}

func TestBTBHitRate(t *testing.T) {
	b := NewBTB(64, 4)
	if b.HitRate() != 0 {
		t.Fatal("hit rate before lookups must be 0")
	}
	b.Insert(0x40, 0x80)
	b.Lookup(0x40)
	b.Lookup(0x44)
	if r := b.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGshare(1000, 8) },
		func() { NewGshare(0, 8) },
		func() { NewGshare(1024, 0) },
		func() { NewPAs(1000, 1024, 8) },
		func() { NewPAs(1024, 1000, 8) },
		func() { NewPAs(1024, 1024, 70) },
		func() { NewBTB(100, 4) },
		func() { NewBTB(64, 0) },
		func() { NewCombining(Config{MetaEntries: 3}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRandomBranchesNearHalfRate(t *testing.T) {
	// On truly random outcomes no predictor beats 50%; the combining
	// predictor must not be pathologically worse either.
	c := NewCombining(DefaultConfig())
	r := rng.New(7)
	wrong, total := 0, 0
	for i := 0; i < 50000; i++ {
		pc := uint64(0x1000 + (i%256)*4)
		taken := r.Bool(0.5)
		if c.Predict(pc) != taken {
			wrong++
		}
		total++
		c.Update(pc, taken)
	}
	rate := float64(wrong) / float64(total)
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("mispredict rate on random branches = %.3f, want ~0.5", rate)
	}
}

func TestBiasedBranchesLowRate(t *testing.T) {
	c := NewCombining(DefaultConfig())
	r := rng.New(8)
	wrong, total := 0, 0
	for i := 0; i < 50000; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		taken := r.Bool(0.95)
		pred := c.Predict(pc)
		if i > 10000 {
			total++
			if pred != taken {
				wrong++
			}
		}
		c.Update(pc, taken)
	}
	rate := float64(wrong) / float64(total)
	if rate > 0.08 {
		t.Fatalf("mispredict rate on 95%%-biased branches = %.3f", rate)
	}
}

func BenchmarkCombiningPredictUpdate(b *testing.B) {
	c := NewCombining(DefaultConfig())
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%1024)*4)
		taken := r.Bool(0.7)
		c.Predict(pc)
		c.Update(pc, taken)
	}
}

func BenchmarkBTB(b *testing.B) {
	btb := NewBTB(512, 4)
	for i := 0; i < b.N; i++ {
		pc := uint64((i % 4096) * 4)
		if _, ok := btb.Lookup(pc); !ok {
			btb.Insert(pc, pc+16)
		}
	}
}
