package bpred

// BTB is a set-associative branch target buffer with true-LRU replacement.
// Table 1 provisions 2K entries, 4-way. A fetch that predicts a branch
// taken but misses in the BTB cannot redirect in the same cycle and pays a
// fetch bubble.
type BTB struct {
	sets     int
	ways     int
	setMask  uint64
	setShift uint
	tags     [][]uint64 // tag per way; 0 means invalid (tags are made nonzero)
	targets  [][]uint64
	lru      [][]uint8 // lower value = more recently used

	lookups uint64
	hits    uint64
}

// NewBTB builds a BTB with sets x ways entries. sets must be a power of two.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("bpred: BTB sets must be a nonzero power of two")
	}
	if ways <= 0 {
		panic("bpred: BTB ways must be positive")
	}
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	b := &BTB{sets: sets, ways: ways, setMask: uint64(sets - 1), setShift: shift}
	b.tags = make([][]uint64, sets)
	b.targets = make([][]uint64, sets)
	b.lru = make([][]uint8, sets)
	for i := 0; i < sets; i++ {
		b.tags[i] = make([]uint64, ways)
		b.targets[i] = make([]uint64, ways)
		b.lru[i] = make([]uint8, ways)
		for w := 0; w < ways; w++ {
			b.lru[i][w] = uint8(w)
		}
	}
	return b
}

func (b *BTB) split(pc uint64) (set uint64, tag uint64) {
	idx := pcIndex(pc)
	// Tag is made nonzero so the zero value marks an invalid way.
	return idx & b.setMask, (idx >> b.setShift) | 1<<63
}

// Lookup returns the predicted target for pc and whether it hit.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	set, tag := b.split(pc)
	for w := 0; w < b.ways; w++ {
		if b.tags[set][w] == tag {
			b.hits++
			b.touch(set, w)
			return b.targets[set][w], true
		}
	}
	return 0, false
}

// Insert records or updates the target for pc, evicting the LRU way on a
// conflict.
func (b *BTB) Insert(pc, target uint64) {
	set, tag := b.split(pc)
	victim := 0
	for w := 0; w < b.ways; w++ {
		if b.tags[set][w] == tag {
			b.targets[set][w] = target
			b.touch(set, w)
			return
		}
		if b.lru[set][w] > b.lru[set][victim] {
			victim = w
		}
	}
	b.tags[set][victim] = tag
	b.targets[set][victim] = target
	b.touch(set, victim)
}

// touch marks way w in set as most recently used.
func (b *BTB) touch(set uint64, w int) {
	old := b.lru[set][w]
	for i := 0; i < b.ways; i++ {
		if b.lru[set][i] < old {
			b.lru[set][i]++
		}
	}
	b.lru[set][w] = 0
}

// Clone returns a deep copy of the BTB's tags, targets, and LRU state.
func (b *BTB) Clone() *BTB {
	c := *b
	c.tags = make([][]uint64, b.sets)
	c.targets = make([][]uint64, b.sets)
	c.lru = make([][]uint8, b.sets)
	for i := 0; i < b.sets; i++ {
		c.tags[i] = append([]uint64(nil), b.tags[i]...)
		c.targets[i] = append([]uint64(nil), b.targets[i]...)
		c.lru[i] = append([]uint8(nil), b.lru[i]...)
	}
	return &c
}

// HitRate returns the fraction of lookups that hit, or 0 before any lookup.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}
