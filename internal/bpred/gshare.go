package bpred

// Gshare is the global-history component: a pattern table of 2-bit
// counters indexed by the XOR of the branch PC and a global history
// register (McFarling, 1993).
type Gshare struct {
	table    []Counter2
	history  uint64
	histMask uint64
	mask     uint64
}

// NewGshare builds a gshare predictor with the given pattern table size
// (power of two) and history length in bits.
func NewGshare(entries, historyBits int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a nonzero power of two")
	}
	if historyBits <= 0 || historyBits > 63 {
		panic("bpred: gshare history bits out of range")
	}
	t := make([]Counter2, entries)
	for i := range t {
		t[i] = WeaklyTaken
	}
	return &Gshare{
		table:    t,
		histMask: (1 << historyBits) - 1,
		mask:     uint64(entries - 1),
	}
}

func (g *Gshare) index(pc uint64) uint64 {
	return (pcIndex(pc) ^ g.history) & g.mask
}

// Predict returns the predicted direction for pc under the current global
// history.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)].Taken()
}

// Update trains the pattern table and shifts the outcome into the global
// history register.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].Update(taken)
	g.history = ((g.history << 1) | b2u(taken)) & g.histMask
}

// History returns the current global history register (for tests).
func (g *Gshare) History() uint64 { return g.history }

// Clone returns a deep copy of the predictor's tables and history.
func (g *Gshare) Clone() *Gshare {
	c := *g
	c.table = append([]Counter2(nil), g.table...)
	return &c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
