package bpred

// PAs is the per-address two-level component: a first-level table of
// per-branch history registers selects into a second-level pattern table of
// 2-bit counters (Yeh & Patt, 1992). Table 1 sizes this at 16K first-level
// entries and a 64K-entry second level.
type PAs struct {
	histories []uint64
	table     []Counter2
	l1Mask    uint64
	l2Mask    uint64
	histMask  uint64
}

// NewPAs builds a PAs predictor. l1Entries and l2Entries must be powers of
// two; historyBits is the local history length.
func NewPAs(l1Entries, l2Entries, historyBits int) *PAs {
	if l1Entries <= 0 || l1Entries&(l1Entries-1) != 0 {
		panic("bpred: PAs L1 entries must be a nonzero power of two")
	}
	if l2Entries <= 0 || l2Entries&(l2Entries-1) != 0 {
		panic("bpred: PAs L2 entries must be a nonzero power of two")
	}
	if historyBits <= 0 || historyBits > 63 {
		panic("bpred: PAs history bits out of range")
	}
	t := make([]Counter2, l2Entries)
	for i := range t {
		t[i] = WeaklyTaken
	}
	return &PAs{
		histories: make([]uint64, l1Entries),
		table:     t,
		l1Mask:    uint64(l1Entries - 1),
		l2Mask:    uint64(l2Entries - 1),
		histMask:  (1 << historyBits) - 1,
	}
}

func (p *PAs) index(pc uint64) (l1 uint64, l2 uint64) {
	l1 = pcIndex(pc) & p.l1Mask
	// XOR local history with the PC index to spread distinct branches
	// with similar histories across the second-level table.
	h := p.histories[l1]
	l2 = (h ^ pcIndex(pc)) & p.l2Mask
	return l1, l2
}

// Predict returns the predicted direction for pc under its local history.
func (p *PAs) Predict(pc uint64) bool {
	_, l2 := p.index(pc)
	return p.table[l2].Taken()
}

// Update trains the pattern table and the branch's local history register.
func (p *PAs) Update(pc uint64, taken bool) {
	l1, l2 := p.index(pc)
	p.table[l2] = p.table[l2].Update(taken)
	p.histories[l1] = ((p.histories[l1] << 1) | b2u(taken)) & p.histMask
}

// Clone returns a deep copy of both predictor levels.
func (p *PAs) Clone() *PAs {
	c := *p
	c.histories = append([]uint64(nil), p.histories...)
	c.table = append([]Counter2(nil), p.table...)
	return &c
}
