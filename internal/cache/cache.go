// Package cache models the memory hierarchy of the paper's Table 1: 64KB
// 2-way L1 instruction and data caches with 64-byte lines and 3-cycle hits,
// a unified 2MB 4-way L2 with 12-cycle hits, 200-cycle main memory, 32
// 8-target MSHRs, and 4 memory ports.
//
// The model is a timing model, not a functional one: accesses return the
// cycle at which data becomes available. Misses are non-blocking through a
// miss status holding register (MSHR) file; secondary misses to an
// outstanding line merge into the primary miss's MSHR. Structural refusal
// (no port, no MSHR, no target slot) is reported to the pipeline, which
// retries the access on a later cycle, exactly as sim-outorder does.
package cache

import "fmt"

// Cache is one level of set-associative cache with true-LRU replacement.
// It tracks hit/miss statistics; timing is composed by Hierarchy.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	setMask  uint64
	setShift uint

	tags  [][]uint64 // 0 = invalid (tags are forced nonzero)
	lru   [][]uint8
	dirty [][]bool

	accesses  uint64
	misses    uint64
	evictions uint64
}

// NewCache builds a cache of size bytes, assoc ways, and lineSize-byte
// lines. size must be divisible by assoc*lineSize and the resulting set
// count must be a power of two.
func NewCache(name string, size, assoc, lineSize int) *Cache {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	if lineSize&(lineSize-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if size%(assoc*lineSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by assoc*line %d", name, size, assoc*lineSize))
	}
	sets := size / (assoc * lineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	setShift := uint(0)
	for 1<<setShift < sets {
		setShift++
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     assoc,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		setShift: setShift,
	}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint8, sets)
	c.dirty = make([][]bool, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, assoc)
		c.lru[i] = make([]uint8, assoc)
		c.dirty[i] = make([]bool, assoc)
		for w := 0; w < assoc; w++ {
			c.lru[i][w] = uint8(w)
		}
	}
	return c
}

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

func (c *Cache) split(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.lineBits
	return line & c.setMask, (line >> c.setShift) | 1<<63
}

// Lookup probes the cache without filling. It updates LRU state and the
// hit/miss statistics.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.accesses++
	set, tag := c.split(addr)
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.touch(set, w)
			if write {
				c.dirty[set][w] = true
			}
			return true
		}
	}
	c.misses++
	return false
}

// Probe reports whether addr is present without perturbing LRU or
// statistics. Used by tests and by the hierarchy's inclusion checks.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.split(addr)
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if needed. It returns the
// evicted line's address and whether an eviction of a valid (and dirty, if
// dirtyOnly) line occurred.
func (c *Cache) Fill(addr uint64, write bool) (victim uint64, dirtyEvict bool) {
	set, tag := c.split(addr)
	victimWay := 0
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			// Already present (raced fills are benign).
			c.touch(set, w)
			if write {
				c.dirty[set][w] = true
			}
			return 0, false
		}
		if c.lru[set][w] > c.lru[set][victimWay] {
			victimWay = w
		}
	}
	oldTag := c.tags[set][victimWay]
	wasDirty := c.dirty[set][victimWay]
	if oldTag != 0 {
		c.evictions++
		victim = c.reconstruct(set, oldTag)
		dirtyEvict = wasDirty
	}
	c.tags[set][victimWay] = tag
	c.dirty[set][victimWay] = write
	c.touch(set, victimWay)
	return victim, dirtyEvict
}

// reconstruct rebuilds a line address from set and stored tag.
func (c *Cache) reconstruct(set uint64, tag uint64) uint64 {
	line := (tag&^(uint64(1)<<63))<<c.setShift | set
	return line << c.lineBits
}

func (c *Cache) touch(set uint64, w int) {
	old := c.lru[set][w]
	for i := 0; i < c.ways; i++ {
		if c.lru[set][i] < old {
			c.lru[set][i]++
		}
	}
	c.lru[set][w] = 0
}

// Clone returns a deep copy of the cache's tags, LRU, dirty bits, and
// counters (used by simulation checkpoints).
func (c *Cache) Clone() *Cache {
	out := *c
	out.tags = make([][]uint64, c.sets)
	out.lru = make([][]uint8, c.sets)
	out.dirty = make([][]bool, c.sets)
	for i := 0; i < c.sets; i++ {
		out.tags[i] = append([]uint64(nil), c.tags[i]...)
		out.lru[i] = append([]uint8(nil), c.lru[i]...)
		out.dirty[i] = append([]bool(nil), c.dirty[i]...)
	}
	return &out
}

// Stats returns accesses, misses, and evictions.
func (c *Cache) Stats() (accesses, misses, evictions uint64) {
	return c.accesses, c.misses, c.evictions
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// ResetStats zeroes the hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.accesses, c.misses, c.evictions = 0, 0, 0 }

// addLookups adds k repetitions of (accesses, misses) deltas without
// touching contents or LRU state — re-probes of the same blocked line are
// idempotent on tag state, so replaying their counts is all a skipped
// retry cycle needs.
func (c *Cache) addLookups(accesses, misses, k uint64) {
	c.accesses += accesses * k
	c.misses += misses * k
}
