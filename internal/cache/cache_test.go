package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	if c.Lookup(0x100, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x100, false)
	if !c.Lookup(0x100, false) {
		t.Fatal("miss after fill")
	}
	// Same line, different offset.
	if !c.Lookup(0x13F, false) {
		t.Fatal("miss within filled line")
	}
	// Adjacent line.
	if c.Lookup(0x140, false) {
		t.Fatal("hit on unfilled adjacent line")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2 ways, 8 sets of 64B lines => set stride 512.
	c := NewCache("t", 1024, 2, 64)
	const stride = 512
	c.Fill(0*stride, false)
	c.Fill(1*stride, false)
	c.Lookup(0*stride, false) // make way A MRU
	c.Fill(2*stride, false)   // evicts 1*stride
	if !c.Probe(0 * stride) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(1 * stride) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(2 * stride) {
		t.Fatal("new line missing")
	}
}

func TestCacheEvictionReturnsVictim(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	const stride = 512
	c.Fill(3*stride, true) // dirty
	c.Fill(4*stride, false)
	victim, dirty := c.Fill(5*stride, false)
	if victim != 3*stride {
		t.Fatalf("victim = %#x, want %#x", victim, uint64(3*stride))
	}
	if !dirty {
		t.Fatal("dirty eviction not flagged")
	}
}

func TestCacheDirtyTracking(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	c.Fill(0x000, false)
	c.Lookup(0x000, true) // write hit dirties the line
	c.Fill(0x200, false)
	_, dirty := c.Fill(0x400, false) // evicts 0x000
	if !dirty {
		t.Fatal("write-hit line evicted clean")
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	c.Lookup(0x0, false) // miss
	c.Fill(0x0, false)
	c.Lookup(0x0, false) // hit
	acc, miss, _ := c.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = (%d, %d)", acc, miss)
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestCacheCapacityProperty(t *testing.T) {
	// After filling n distinct lines into a cache of capacity >= n lines
	// mapped to distinct sets, all must be present.
	c := NewCache("t", 64*1024, 2, 64)
	lines := 64 * 1024 / 64
	for i := 0; i < lines; i++ {
		c.Fill(uint64(i*64), false)
	}
	missing := 0
	for i := 0; i < lines; i++ {
		if !c.Probe(uint64(i * 64)) {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d of %d resident lines missing", missing, lines)
	}
}

func TestCacheVictimReconstruction(t *testing.T) {
	// Property: the victim address returned by Fill is always a line the
	// cache previously contained.
	c := NewCache("t", 2048, 4, 64)
	r := rng.New(42)
	resident := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		addr := uint64(r.Intn(1 << 20))
		line := c.LineAddr(addr)
		victim, _ := c.Fill(addr, r.Bool(0.3))
		if victim != 0 && !resident[victim] {
			t.Fatalf("victim %#x was never resident", victim)
		}
		if victim != 0 {
			delete(resident, victim)
		}
		resident[line] = true
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewCache("t", 0, 2, 64) },
		func() { NewCache("t", 1024, 2, 60) },
		func() { NewCache("t", 1000, 2, 64) },
		func() { NewCache("t", 3*64*2, 2, 64) }, // 3 sets: not a power of two
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMSHRPrimaryAndMerge(t *testing.T) {
	m := NewMSHRFile(2, 2)
	res, ready := m.Request(0x1000, 50)
	if res != MSHRAllocated || ready != 50 {
		t.Fatalf("primary = (%v, %d)", res, ready)
	}
	res, ready = m.Request(0x1000, 99)
	if res != MSHRMerged || ready != 50 {
		t.Fatalf("merge = (%v, %d); merged requests adopt the primary's ready time", res, ready)
	}
	// Target slots: 2 per entry, both used now.
	if res, _ := m.Request(0x1000, 0); res != MSHRFull {
		t.Fatalf("third target = %v, want MSHRFull", res)
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHRFile(2, 8)
	m.Request(0x1000, 10)
	m.Request(0x2000, 10)
	if res, _ := m.Request(0x3000, 10); res != MSHRFull {
		t.Fatalf("allocation beyond capacity = %v", res)
	}
	if m.InFlight() != 2 {
		t.Fatalf("in flight = %d", m.InFlight())
	}
}

func TestMSHRExpire(t *testing.T) {
	m := NewMSHRFile(2, 8)
	m.Request(0x1000, 10)
	m.Request(0x2000, 20)
	m.Expire(10)
	if m.InFlight() != 1 {
		t.Fatalf("in flight after expire = %d", m.InFlight())
	}
	if _, out := m.Outstanding(0x1000); out {
		t.Fatal("expired entry still outstanding")
	}
	if _, out := m.Outstanding(0x2000); !out {
		t.Fatal("live entry lost")
	}
	// Register is reusable now.
	if res, _ := m.Request(0x3000, 30); res != MSHRAllocated {
		t.Fatalf("reuse after expire = %v", res)
	}
}

func TestMSHRStats(t *testing.T) {
	m := NewMSHRFile(1, 1)
	m.Request(0x1000, 10)
	m.Request(0x1000, 10) // target fail
	m.Request(0x2000, 10) // alloc fail
	p, s, af, tf := m.Stats()
	if p != 1 || s != 0 || af != 1 || tf != 1 {
		t.Fatalf("stats = (%d,%d,%d,%d)", p, s, af, tf)
	}
}

func TestHierarchyL1Hit(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.BeginCycle(0)
	// First access misses to memory.
	ready, ok := h.Load(0, 0x1000)
	if !ok {
		t.Fatal("cold load rejected")
	}
	wantMiss := int64(12 + 200)
	if ready != wantMiss {
		t.Fatalf("cold miss ready = %d, want %d", ready, wantMiss)
	}
	// After the miss completes, the line hits in L1.
	h.BeginCycle(ready + 1)
	ready2, ok := h.Load(ready+1, 0x1000)
	if !ok || ready2 != ready+1+3 {
		t.Fatalf("L1 hit ready = %d (ok=%v), want %d", ready2, ok, ready+1+3)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.BeginCycle(0)
	h.Load(0, 0x1000) // fills L1+L2
	// Evict from tiny L1 by filling conflicting lines; L1 is 64K 2-way,
	// set stride = 32K.
	h.BeginCycle(1000)
	h.Load(1000, 0x1000+32*1024)
	h.BeginCycle(2000)
	h.Load(2000, 0x1000+2*32*1024)
	// 0x1000 now misses L1 but hits L2.
	h.BeginCycle(3000)
	ready, ok := h.Load(3000, 0x1000)
	if !ok || ready != 3000+12 {
		t.Fatalf("L2 hit ready = %d (ok=%v), want %d", ready, ok, 3000+12)
	}
}

func TestHierarchyPortLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemPorts = 2
	h := NewHierarchy(cfg)
	h.BeginCycle(0)
	if _, ok := h.Load(0, 0x0); !ok {
		t.Fatal("port 1 rejected")
	}
	if _, ok := h.Load(0, 0x40); !ok {
		t.Fatal("port 2 rejected")
	}
	if _, ok := h.Load(0, 0x80); ok {
		t.Fatal("third access accepted with 2 ports")
	}
	// Next cycle the ports are free again.
	h.BeginCycle(1)
	if _, ok := h.Load(1, 0x80); !ok {
		t.Fatal("port not released at cycle boundary")
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.BeginCycle(0)
	r1, ok := h.Load(0, 0x5000)
	if !ok {
		t.Fatal("first load rejected")
	}
	// Second load to the same line merges and completes at the same time.
	h.BeginCycle(1)
	r2, ok := h.Load(1, 0x5008)
	if !ok {
		t.Fatal("merged load rejected")
	}
	if r2 != r1 {
		t.Fatalf("merged ready %d != primary ready %d", r2, r1)
	}
}

func TestHierarchyMSHRExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHREntries = 2
	cfg.MemPorts = 8
	h := NewHierarchy(cfg)
	h.BeginCycle(0)
	h.Load(0, 0x10000)
	h.Load(0, 0x20000)
	if _, ok := h.Load(0, 0x30000); ok {
		t.Fatal("third distinct miss accepted with 2 MSHRs")
	}
	_, _, _, _, mshrRejects := h.Stats()
	if mshrRejects != 1 {
		t.Fatalf("mshr rejects = %d", mshrRejects)
	}
}

func TestHierarchyBusContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BusOccupancy = 10
	h := NewHierarchy(cfg)
	h.BeginCycle(0)
	r1, _ := h.Load(0, 0x100000)
	r2, _ := h.Load(0, 0x200000)
	if r2 != r1+10 {
		t.Fatalf("second transfer ready %d, want %d (bus serialization)", r2, r1+10)
	}
}

func TestHierarchyIFetch(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.BeginCycle(0)
	r := h.IFetch(0, 0x4000)
	if r != 12+200 {
		t.Fatalf("cold ifetch ready = %d", r)
	}
	r = h.IFetch(300, 0x4000)
	if r != 303 {
		t.Fatalf("warm ifetch ready = %d", r)
	}
	// IFetch must not consume data ports.
	h.BeginCycle(400)
	for i := 0; i < 4; i++ {
		h.IFetch(400, uint64(0x8000+i*64))
	}
	if !h.PortAvailable() {
		t.Fatal("ifetch consumed data ports")
	}
}

func TestHierarchyStoreDirtiesLine(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.BeginCycle(0)
	if _, ok := h.Store(0, 0x9000); !ok {
		t.Fatal("store rejected")
	}
	loads, stores, _, _, _ := h.Stats()
	if loads != 0 || stores != 1 {
		t.Fatalf("counts = (%d, %d)", loads, stores)
	}
}

func TestHierarchyMonotonicReadyProperty(t *testing.T) {
	// Property: an accepted access never completes before now + L1 hit
	// latency, and never before now.
	h := NewHierarchy(DefaultConfig())
	r := rng.New(17)
	if err := quick.Check(func(raw uint32) bool {
		now := int64(raw % 100000)
		h.BeginCycle(now)
		addr := uint64(r.Intn(1 << 22))
		ready, ok := h.Load(now, addr)
		if !ok {
			return true
		}
		return ready >= now+3
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		now := int64(i)
		h.BeginCycle(now)
		h.Load(now, uint64(r.Intn(1<<24)))
	}
}
