package cache

// Config describes the memory hierarchy. Defaults follow the paper's
// Table 1.
type Config struct {
	LineSize int

	L1ISize, L1IAssoc int
	L1DSize, L1DAssoc int
	L1HitLat          int

	L2Size, L2Assoc int
	L2HitLat        int

	// MemLat is the main-memory access latency beyond the L2.
	MemLat int

	// MSHREntries and MSHRTargets shape the data-side MSHR file.
	MSHREntries, MSHRTargets int

	// MemPorts is the number of L1D accesses the core can start per cycle.
	MemPorts int

	// BusOccupancy is the number of cycles each off-chip transfer (L2 miss
	// fill or dirty writeback) occupies the memory bus. Transfers
	// serialize on the bus, modeling the bus contention the paper added
	// to sim-outorder.
	BusOccupancy int

	// Prefetch configures the optional stride prefetcher (disabled in the
	// paper's machines; see prefetch.go).
	Prefetch PrefetchConfig
}

// DefaultConfig returns the Table 1 memory system: 64K 2-way L1 I/D with
// 64-byte lines and 3-cycle hits, 2M 4-way unified L2 with 12-cycle hits,
// 200-cycle memory, 32 8-target MSHRs, 4 memory ports.
func DefaultConfig() Config {
	return Config{
		LineSize:     64,
		L1ISize:      64 * 1024,
		L1IAssoc:     2,
		L1DSize:      64 * 1024,
		L1DAssoc:     2,
		L1HitLat:     3,
		L2Size:       2 * 1024 * 1024,
		L2Assoc:      4,
		L2HitLat:     12,
		MemLat:       200,
		MSHREntries:  32,
		MSHRTargets:  8,
		MemPorts:     4,
		BusOccupancy: 4,
		Prefetch:     DefaultPrefetchConfig(),
	}
}

// Hierarchy composes the caches, MSHR file, memory ports, and bus into the
// timing model the pipeline calls. All methods take the current cycle; the
// pipeline must call BeginCycle once per cycle before issuing accesses.
type Hierarchy struct {
	cfg  Config
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	mshr *MSHRFile

	pf *prefetcher

	portCycle int64
	portsUsed int

	busFreeAt int64

	loads, stores, ifetches uint64
	portRejects             uint64
	mshrRejects             uint64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		l1i:  NewCache("L1I", cfg.L1ISize, cfg.L1IAssoc, cfg.LineSize),
		l1d:  NewCache("L1D", cfg.L1DSize, cfg.L1DAssoc, cfg.LineSize),
		l2:   NewCache("L2", cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
		mshr: NewMSHRFile(cfg.MSHREntries, cfg.MSHRTargets),
	}
	if cfg.Prefetch.Enable {
		h.pf = newPrefetcher(cfg.Prefetch)
	}
	return h
}

// Clone returns a deep copy of the whole hierarchy — cache contents,
// in-flight MSHR state, bus/port occupancy, prefetcher tables, and counters
// (used by simulation checkpoints).
func (h *Hierarchy) Clone() *Hierarchy {
	c := *h
	c.l1i = h.l1i.Clone()
	c.l1d = h.l1d.Clone()
	c.l2 = h.l2.Clone()
	c.mshr = h.mshr.Clone()
	if h.pf != nil {
		c.pf = h.pf.clone()
	}
	return &c
}

// BeginCycle releases completed MSHRs and resets the per-cycle port count.
func (h *Hierarchy) BeginCycle(now int64) {
	h.mshr.Expire(now)
	if h.portCycle != now {
		h.portCycle = now
		h.portsUsed = 0
	}
}

// PortAvailable reports whether a memory port remains this cycle.
func (h *Hierarchy) PortAvailable() bool { return h.portsUsed < h.cfg.MemPorts }

// busTransfer reserves the bus for one off-chip transfer starting no
// earlier than earliest and returns when the transfer completes.
func (h *Hierarchy) busTransfer(earliest int64) int64 {
	start := earliest
	if h.busFreeAt > start {
		start = h.busFreeAt
	}
	h.busFreeAt = start + int64(h.cfg.BusOccupancy)
	return start + int64(h.cfg.MemLat)
}

// dataAccess runs the common load/store timing path. It returns the cycle
// the access completes and whether it was accepted; a false return means a
// structural hazard (no port or no MSHR) and the caller must retry.
func (h *Hierarchy) dataAccess(now int64, addr uint64, write bool) (readyAt int64, ok bool) {
	if !h.PortAvailable() {
		h.portRejects++
		return 0, false
	}
	line := h.l1d.LineAddr(addr)

	// An in-flight miss to this line? Merge into it.
	if when, out := h.mshr.Outstanding(line); out {
		res, merged := h.mshr.Request(line, 0)
		switch res {
		case MSHRMerged:
			h.portsUsed++
			_ = when
			return merged, true
		default: // target slots exhausted
			h.mshrRejects++
			return 0, false
		}
	}

	if h.l1d.Lookup(addr, write) {
		h.portsUsed++
		return now + int64(h.cfg.L1HitLat), true
	}

	// L1 miss: time the fill, then try to allocate an MSHR for it.
	var fillReady int64
	if h.l2.Lookup(addr, false) {
		if h.pf != nil && h.pf.tracked[line] {
			h.pf.useful++
			delete(h.pf.tracked, line)
		}
		fillReady = now + int64(h.cfg.L2HitLat)
	} else {
		fillReady = h.busTransfer(now + int64(h.cfg.L2HitLat))
		if _, dirtyEvict := h.l2.Fill(addr, false); dirtyEvict {
			// Dirty L2 victim writeback occupies the bus.
			h.busTransfer(fillReady)
		}
	}
	res, ready := h.mshr.Request(line, fillReady)
	if res == MSHRFull {
		h.mshrRejects++
		return 0, false
	}
	h.portsUsed++
	h.l1d.Fill(addr, write)
	return ready, true
}

// Load starts a load access to addr at cycle now.
func (h *Hierarchy) Load(now int64, addr uint64) (readyAt int64, ok bool) {
	readyAt, ok = h.dataAccess(now, addr, false)
	if ok {
		h.loads++
		h.prefetch(now, addr)
	}
	return readyAt, ok
}

// prefetch feeds the demand stream to the stride prefetcher and installs
// predicted lines into the L2 (a common L2-prefetch design point: it
// avoids polluting the small L1). Prefetch fills use the bus like demand
// misses but do not consume MSHRs or ports — the hardware issues them
// from a separate queue.
func (h *Hierarchy) prefetch(now int64, addr uint64) {
	if h.pf == nil {
		return
	}
	for _, target := range h.pf.observe(h.l1d.LineAddr(addr)) {
		line := h.l1d.LineAddr(target)
		if h.l2.Probe(line) {
			continue
		}
		if _, out := h.mshr.Outstanding(line); out {
			continue
		}
		h.pf.issued++
		if h.pf.tracked != nil {
			h.pf.tracked[line] = true
		}
		h.busTransfer(now + int64(h.cfg.L2HitLat))
		h.l2.Fill(line, false)
	}
}

// PrefetchStats returns issued and useful prefetch counts (zeros when the
// prefetcher is disabled).
func (h *Hierarchy) PrefetchStats() (issued, useful uint64) {
	if h.pf == nil {
		return 0, 0
	}
	return h.pf.Stats()
}

// Store starts a store commit to addr at cycle now (called at retirement;
// the paper's pipeline writes memory in order at commit).
func (h *Hierarchy) Store(now int64, addr uint64) (readyAt int64, ok bool) {
	readyAt, ok = h.dataAccess(now, addr, true)
	if ok {
		h.stores++
		h.prefetch(now, addr)
	}
	return readyAt, ok
}

// IFetch accesses the instruction cache for the fetch block containing pc.
// Instruction fetch has a dedicated port; misses go through the L2 and bus
// like data misses but do not consume data MSHRs (the in-order front end
// sustains only one outstanding fetch miss).
func (h *Hierarchy) IFetch(now int64, pc uint64) (readyAt int64) {
	h.ifetches++
	if h.l1i.Lookup(pc, false) {
		return now + int64(h.cfg.L1HitLat)
	}
	var fillReady int64
	if h.l2.Lookup(pc, false) {
		fillReady = now + int64(h.cfg.L2HitLat)
	} else {
		fillReady = h.busTransfer(now + int64(h.cfg.L2HitLat))
		h.l2.Fill(pc, false)
	}
	h.l1i.Fill(pc, false)
	return fillReady
}

// LineAddr returns addr's line address (for fetch-block grouping).
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return h.l1d.LineAddr(addr) }

// L1I, L1D, and L2 expose the underlying caches for statistics.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the level-one data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// MSHR returns the data-side MSHR file.
func (h *Hierarchy) MSHR() *MSHRFile { return h.mshr }

// NextEvent returns the earliest cycle strictly after now at which the
// memory system changes state on its own: the earliest outstanding MSHR
// fill (which releases a register, unblocking allocation-stalled accesses
// and draining occupancy). Bus and port state schedule no standalone
// events — the bus only queues transfers started by accesses, and ports
// reset every cycle — so the MSHR file is the hierarchy's whole horizon.
// Returns math.MaxInt64 when nothing is outstanding.
func (h *Hierarchy) NextEvent(now int64) int64 { return h.mshr.NextReady(now) }

// AttemptCounters snapshots every counter a *failed* (and therefore
// retried) access attempt can move: L1D/L2 probe counts and the
// structural-rejection tallies. The cycle-skipping engine loop measures
// one stalled cycle's movement as a delta of two snapshots and replays it
// across the skipped span with AddAttempts, so attempt-rate diagnostics
// stay identical to a tick-by-tick simulation. Successful accesses always
// mark their cycle as progress, so no other hierarchy counter can move in
// a skipped cycle.
type AttemptCounters struct {
	L1DAccesses, L1DMisses        uint64
	L2Accesses, L2Misses          uint64
	PortRejects, MSHRRejects      uint64
	MSHRAllocFail, MSHRTargetFail uint64
}

// AttemptCounters returns the current snapshot.
func (h *Hierarchy) AttemptCounters() AttemptCounters {
	var c AttemptCounters
	c.L1DAccesses, c.L1DMisses, _ = h.l1d.Stats()
	c.L2Accesses, c.L2Misses, _ = h.l2.Stats()
	c.PortRejects, c.MSHRRejects = h.portRejects, h.mshrRejects
	_, _, c.MSHRAllocFail, c.MSHRTargetFail = h.mshr.Stats()
	return c
}

// Sub returns the componentwise difference c - o.
func (c AttemptCounters) Sub(o AttemptCounters) AttemptCounters {
	return AttemptCounters{
		L1DAccesses: c.L1DAccesses - o.L1DAccesses, L1DMisses: c.L1DMisses - o.L1DMisses,
		L2Accesses: c.L2Accesses - o.L2Accesses, L2Misses: c.L2Misses - o.L2Misses,
		PortRejects: c.PortRejects - o.PortRejects, MSHRRejects: c.MSHRRejects - o.MSHRRejects,
		MSHRAllocFail: c.MSHRAllocFail - o.MSHRAllocFail, MSHRTargetFail: c.MSHRTargetFail - o.MSHRTargetFail,
	}
}

// AddAttempts adds k repetitions of the per-cycle delta d.
func (h *Hierarchy) AddAttempts(d AttemptCounters, k uint64) {
	h.l1d.addLookups(d.L1DAccesses, d.L1DMisses, k)
	h.l2.addLookups(d.L2Accesses, d.L2Misses, k)
	h.portRejects += d.PortRejects * k
	h.mshrRejects += d.MSHRRejects * k
	h.mshr.addFails(d.MSHRAllocFail, d.MSHRTargetFail, k)
}

// Stats returns load, store, and instruction-fetch access counts plus the
// structural rejections seen by the pipeline.
func (h *Hierarchy) Stats() (loads, stores, ifetches, portRejects, mshrRejects uint64) {
	return h.loads, h.stores, h.ifetches, h.portRejects, h.mshrRejects
}

// ResetStats zeroes all hierarchy counters (cache contents and in-flight
// misses are preserved), so measurements can exclude warmup.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.mshr.ResetStats()
	h.loads, h.stores, h.ifetches, h.portRejects, h.mshrRejects = 0, 0, 0, 0, 0
}
