package cache

import "math"

// MSHRFile models the miss status holding registers: each register tracks
// one outstanding line miss and up to TargetsPerMSHR merged requests to
// that line. A primary miss allocates a register; secondary misses to the
// same line merge as targets. When the file (or a register's target list)
// is full, the access must be retried later — the structural hazard the
// paper's modified sim-outorder models.
//
// The file is a fixed array of registers scanned linearly, like the
// hardware. Beyond fidelity, the array keeps the steady-state request path
// allocation-free: the engine's hot loop performs no heap allocation, and
// the conformance suite (internal/core) holds every mode to exactly that.
type MSHRFile struct {
	entries int
	targets int
	slots   []mshrSlot

	// inFlight counts occupied registers, so capacity checks and the
	// per-cycle occupancy accounting skip the scan.
	inFlight int

	// minReady caches the earliest readyAt among occupied registers
	// (math.MaxInt64 when empty), so the per-cycle Expire sweep is a
	// single comparison until a fill actually lands.
	minReady int64

	allocFail  uint64
	targetFail uint64
	primary    uint64
	secondary  uint64
}

type mshrSlot struct {
	line    uint64
	readyAt int64
	targets int
	used    bool
}

// NewMSHRFile builds a file of entries registers with targets merge slots
// each.
func NewMSHRFile(entries, targets int) *MSHRFile {
	if entries <= 0 || targets <= 0 {
		panic("cache: MSHR geometry must be positive")
	}
	return &MSHRFile{
		entries:  entries,
		targets:  targets,
		slots:    make([]mshrSlot, entries),
		minReady: math.MaxInt64,
	}
}

// Result of an MSHR request.
type MSHRResult uint8

const (
	// MSHRAllocated means a new register was allocated (primary miss).
	MSHRAllocated MSHRResult = iota
	// MSHRMerged means the request merged into an outstanding miss.
	MSHRMerged
	// MSHRFull means no register (or no target slot) was available; the
	// requester must retry.
	MSHRFull
)

// Request asks for line lineAddr at cycle now; if a register is allocated
// the miss will complete at readyAt. For merged requests the returned ready
// cycle is the outstanding miss's completion. The caller supplies readyAt
// only for primary allocations (it is ignored when merging).
func (m *MSHRFile) Request(lineAddr uint64, readyAt int64) (MSHRResult, int64) {
	free := -1
	for i := range m.slots {
		s := &m.slots[i]
		if !s.used {
			if free < 0 {
				free = i
			}
			continue
		}
		if s.line == lineAddr {
			if s.targets >= m.targets {
				m.targetFail++
				return MSHRFull, 0
			}
			s.targets++
			m.secondary++
			return MSHRMerged, s.readyAt
		}
	}
	if free < 0 {
		m.allocFail++
		return MSHRFull, 0
	}
	m.slots[free] = mshrSlot{line: lineAddr, readyAt: readyAt, targets: 1, used: true}
	m.inFlight++
	if readyAt < m.minReady {
		m.minReady = readyAt
	}
	m.primary++
	return MSHRAllocated, readyAt
}

// Outstanding reports whether lineAddr has an in-flight miss and when it
// completes.
func (m *MSHRFile) Outstanding(lineAddr uint64) (int64, bool) {
	for i := range m.slots {
		if s := &m.slots[i]; s.used && s.line == lineAddr {
			return s.readyAt, true
		}
	}
	return 0, false
}

// Expire releases all registers whose miss completed at or before now. The
// hierarchy calls this once per cycle; the cached minimum makes the common
// no-fill cycle a single comparison instead of a register sweep.
func (m *MSHRFile) Expire(now int64) {
	if now < m.minReady {
		return
	}
	min := int64(math.MaxInt64)
	for i := range m.slots {
		s := &m.slots[i]
		if !s.used {
			continue
		}
		if s.readyAt <= now {
			s.used = false
			m.inFlight--
		} else if s.readyAt < min {
			min = s.readyAt
		}
	}
	m.minReady = min
}

// InFlight returns the number of occupied registers.
func (m *MSHRFile) InFlight() int { return m.inFlight }

// Clone returns a deep copy of the file, including in-flight misses.
func (m *MSHRFile) Clone() *MSHRFile {
	c := *m
	c.slots = append([]mshrSlot(nil), m.slots...)
	return &c
}

// NextReady returns the earliest completion strictly after now among the
// outstanding misses, or math.MaxInt64 when the file is idle. Entries with
// readyAt <= now have either been expired already or will be on the next
// BeginCycle, so they schedule no future event.
func (m *MSHRFile) NextReady(now int64) int64 {
	if m.minReady > now {
		return m.minReady
	}
	// Registers at or before now still occupy slots until the next
	// Expire; scan past them for the earliest genuinely-future fill.
	next := int64(math.MaxInt64)
	for i := range m.slots {
		if s := &m.slots[i]; s.used && s.readyAt > now && s.readyAt < next {
			next = s.readyAt
		}
	}
	return next
}

// addFails adds k repetitions of (allocFail, targetFail) deltas — the
// retries a per-cycle loop would have attempted during skipped idle cycles.
func (m *MSHRFile) addFails(alloc, target, k uint64) {
	m.allocFail += alloc * k
	m.targetFail += target * k
}

// Stats returns primary misses, secondary (merged) misses, allocation
// failures, and target-slot failures.
func (m *MSHRFile) Stats() (primary, secondary, allocFail, targetFail uint64) {
	return m.primary, m.secondary, m.allocFail, m.targetFail
}

// ResetStats zeroes the MSHR counters without touching in-flight state.
func (m *MSHRFile) ResetStats() {
	m.primary, m.secondary, m.allocFail, m.targetFail = 0, 0, 0, 0
}
