package cache

import "math"

// MSHRFile models the miss status holding registers: each register tracks
// one outstanding line miss and up to TargetsPerMSHR merged requests to
// that line. A primary miss allocates a register; secondary misses to the
// same line merge as targets. When the file (or a register's target list)
// is full, the access must be retried later — the structural hazard the
// paper's modified sim-outorder models.
type MSHRFile struct {
	entries int
	targets int
	lines   map[uint64]*mshrEntry

	// minReady caches the earliest readyAt among occupied registers
	// (math.MaxInt64 when empty), so the per-cycle Expire sweep is a
	// single comparison until a fill actually lands.
	minReady int64

	allocFail  uint64
	targetFail uint64
	primary    uint64
	secondary  uint64
}

type mshrEntry struct {
	readyAt int64
	targets int
}

// NewMSHRFile builds a file of entries registers with targets merge slots
// each.
func NewMSHRFile(entries, targets int) *MSHRFile {
	if entries <= 0 || targets <= 0 {
		panic("cache: MSHR geometry must be positive")
	}
	return &MSHRFile{
		entries:  entries,
		targets:  targets,
		lines:    make(map[uint64]*mshrEntry, entries),
		minReady: math.MaxInt64,
	}
}

// Result of an MSHR request.
type MSHRResult uint8

const (
	// MSHRAllocated means a new register was allocated (primary miss).
	MSHRAllocated MSHRResult = iota
	// MSHRMerged means the request merged into an outstanding miss.
	MSHRMerged
	// MSHRFull means no register (or no target slot) was available; the
	// requester must retry.
	MSHRFull
)

// Request asks for line lineAddr at cycle now; if a register is allocated
// the miss will complete at readyAt. For merged requests the returned ready
// cycle is the outstanding miss's completion. The caller supplies readyAt
// only for primary allocations (it is ignored when merging).
func (m *MSHRFile) Request(lineAddr uint64, readyAt int64) (MSHRResult, int64) {
	if e, ok := m.lines[lineAddr]; ok {
		if e.targets >= m.targets {
			m.targetFail++
			return MSHRFull, 0
		}
		e.targets++
		m.secondary++
		return MSHRMerged, e.readyAt
	}
	if len(m.lines) >= m.entries {
		m.allocFail++
		return MSHRFull, 0
	}
	m.lines[lineAddr] = &mshrEntry{readyAt: readyAt, targets: 1}
	if readyAt < m.minReady {
		m.minReady = readyAt
	}
	m.primary++
	return MSHRAllocated, readyAt
}

// Outstanding reports whether lineAddr has an in-flight miss and when it
// completes.
func (m *MSHRFile) Outstanding(lineAddr uint64) (int64, bool) {
	e, ok := m.lines[lineAddr]
	if !ok {
		return 0, false
	}
	return e.readyAt, true
}

// Expire releases all registers whose miss completed at or before now. The
// hierarchy calls this once per cycle; the cached minimum makes the common
// no-fill cycle a single comparison instead of a map sweep.
func (m *MSHRFile) Expire(now int64) {
	if now < m.minReady {
		return
	}
	min := int64(math.MaxInt64)
	for line, e := range m.lines {
		if e.readyAt <= now {
			delete(m.lines, line)
		} else if e.readyAt < min {
			min = e.readyAt
		}
	}
	m.minReady = min
}

// InFlight returns the number of occupied registers.
func (m *MSHRFile) InFlight() int { return len(m.lines) }

// Clone returns a deep copy of the file, including in-flight misses.
func (m *MSHRFile) Clone() *MSHRFile {
	c := *m
	c.lines = make(map[uint64]*mshrEntry, len(m.lines))
	for line, e := range m.lines {
		cp := *e
		c.lines[line] = &cp
	}
	return &c
}

// NextReady returns the earliest completion strictly after now among the
// outstanding misses, or math.MaxInt64 when the file is idle. Entries with
// readyAt <= now have either been expired already or will be on the next
// BeginCycle, so they schedule no future event.
func (m *MSHRFile) NextReady(now int64) int64 {
	if m.minReady > now {
		return m.minReady
	}
	// Entries at or before now still occupy registers until the next
	// Expire; scan past them for the earliest genuinely-future fill.
	next := int64(math.MaxInt64)
	for _, e := range m.lines {
		if e.readyAt > now && e.readyAt < next {
			next = e.readyAt
		}
	}
	return next
}

// addFails adds k repetitions of (allocFail, targetFail) deltas — the
// retries a per-cycle loop would have attempted during skipped idle cycles.
func (m *MSHRFile) addFails(alloc, target, k uint64) {
	m.allocFail += alloc * k
	m.targetFail += target * k
}

// Stats returns primary misses, secondary (merged) misses, allocation
// failures, and target-slot failures.
func (m *MSHRFile) Stats() (primary, secondary, allocFail, targetFail uint64) {
	return m.primary, m.secondary, m.allocFail, m.targetFail
}

// ResetStats zeroes the MSHR counters without touching in-flight state.
func (m *MSHRFile) ResetStats() {
	m.primary, m.secondary, m.allocFail, m.targetFail = 0, 0, 0, 0
}
