package cache

// Stride prefetcher: a reference-prediction table that detects constant
// strides in the data-access stream and prefetches ahead into the L2 (and
// optionally L1). It is off by default — the paper's machines do not
// prefetch — but the streaming floating-point workloads make it an
// interesting what-if: prefetching weakens the C-factor because the
// out-of-order window no longer has to expose the memory-level
// parallelism by itself.
//
// The design is a classic Chen & Baer RPT: entries are indexed by a hash
// of the access address region, track the last address and stride, and
// issue a prefetch for addr+degree*stride once the same stride is seen
// twice.

// PrefetchConfig configures the stride prefetcher.
type PrefetchConfig struct {
	// Enable turns the prefetcher on.
	Enable bool
	// TableEntries is the reference-prediction table size (power of two).
	TableEntries int
	// Degree is how many lines ahead to prefetch.
	Degree int
}

// DefaultPrefetchConfig returns a modest 256-entry, degree-2 prefetcher
// (disabled; set Enable to use it).
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{TableEntries: 256, Degree: 2}
}

type rptEntry struct {
	tag      uint64
	lastAddr uint64
	// dir is the detected stream direction in lines (+64/-64 canonical).
	dir int64
	// state: 0 = initial, 1 = direction candidate, >= 2 = confirmed
	state uint8
}

// jitterLines is the out-of-order tolerance: the issue stage reorders the
// demand stream within the instruction window, so consecutive observations
// of a streaming region arrive shuffled by up to the window's worth of
// lines. Movements within the jitter window count toward the direction;
// larger jumps reset the entry.
const jitterLines = 32

type prefetcher struct {
	cfg     PrefetchConfig
	entries []rptEntry
	mask    uint64

	issued  uint64
	useful  uint64 // lines prefetched that were later demanded
	tracked map[uint64]bool
}

func newPrefetcher(cfg PrefetchConfig) *prefetcher {
	n := cfg.TableEntries
	if n <= 0 || n&(n-1) != 0 {
		panic("cache: prefetcher table entries must be a nonzero power of two")
	}
	if cfg.Degree <= 0 {
		panic("cache: prefetch degree must be positive")
	}
	return &prefetcher{
		cfg:     cfg,
		entries: make([]rptEntry, n),
		mask:    uint64(n - 1),
		tracked: make(map[uint64]bool),
	}
}

// observe records a demand access (by its line address) and returns the
// line addresses to prefetch (nil when no confirmed stride). Tracking is
// line-granular: sub-line strides collapse onto the same line and are
// ignored until the stream crosses into a new line, so small-stride
// streams still confirm a one-line stride and prefetch usefully ahead.
func (p *prefetcher) observe(lineAddr uint64) []uint64 {
	// Index by the 4KB region so independent streams map to distinct
	// entries.
	region := lineAddr >> 12
	idx := (region ^ region>>8 ^ region>>16) & p.mask
	e := &p.entries[idx]
	tag := region | 1<<63

	if e.tag != tag {
		*e = rptEntry{tag: tag, lastAddr: lineAddr}
		return nil
	}
	const lineBytes = 64
	delta := int64(lineAddr) - int64(e.lastAddr)
	switch {
	case delta == 0:
		// Same line again: not a new observation.
		return nil
	case delta > 0 && delta <= jitterLines*lineBytes:
		if e.dir > 0 && e.state < 250 {
			e.state++
		} else {
			e.dir = lineBytes
			e.state = 1
		}
		if delta > lineBytes {
			// Keep the frontier: only advance lastAddr forward.
			e.lastAddr = lineAddr
		} else {
			e.lastAddr = lineAddr
		}
	case delta < 0 && -delta <= jitterLines*lineBytes:
		if e.dir < 0 && e.state < 250 {
			e.state++
		} else {
			e.dir = -lineBytes
			e.state = 1
		}
		e.lastAddr = lineAddr
	default:
		*e = rptEntry{tag: tag, lastAddr: lineAddr}
		return nil
	}
	if e.state < 2 {
		return nil
	}

	out := make([]uint64, 0, p.cfg.Degree)
	next := int64(lineAddr)
	for i := 0; i < p.cfg.Degree; i++ {
		next += e.dir
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}

// Stats returns issued prefetches and the number later demanded.
func (p *prefetcher) Stats() (issued, useful uint64) { return p.issued, p.useful }

// clone returns a deep copy of the reference-prediction table and tracking
// state.
func (p *prefetcher) clone() *prefetcher {
	c := *p
	c.entries = append([]rptEntry(nil), p.entries...)
	c.tracked = make(map[uint64]bool, len(p.tracked))
	for line, v := range p.tracked {
		c.tracked[line] = v
	}
	return &c
}
