package cache

import (
	"testing"

	"repro/internal/rng"
)

func prefetchingConfig() Config {
	cfg := DefaultConfig()
	cfg.Prefetch.Enable = true
	return cfg
}

func TestPrefetcherDetectsStride(t *testing.T) {
	p := newPrefetcher(DefaultPrefetchConfig())
	base := uint64(0x1000_0000)
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = p.observe(base + i*64)
	}
	if len(got) != 2 {
		t.Fatalf("confirmed stride issued %d prefetches, want degree 2", len(got))
	}
	if got[0] != base+6*64 || got[1] != base+7*64 {
		t.Fatalf("targets = %#x, %#x", got[0], got[1])
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := newPrefetcher(DefaultPrefetchConfig())
	r := rng.New(5)
	issued := 0
	for i := 0; i < 5000; i++ {
		// Random line addresses over a wide range: jumps exceed the
		// jitter window and never confirm a direction.
		if len(p.observe(0x2000_0000+uint64(r.Intn(16<<20))&^63)) > 0 {
			issued++
		}
	}
	if rate := float64(issued) / 5000; rate > 0.05 {
		t.Fatalf("random stream triggered %.1f%% prefetches", 100*rate)
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := newPrefetcher(DefaultPrefetchConfig())
	base := uint64(0x3000_0000)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.observe(base - uint64(i)*128) // line-aligned descending
	}
	if len(got) == 0 {
		t.Fatal("descending stride not detected")
	}
	if got[0] >= base {
		t.Fatal("negative-stride prefetch went the wrong way")
	}
}

func TestPrefetcherSeparatesStreams(t *testing.T) {
	p := newPrefetcher(DefaultPrefetchConfig())
	// Two interleaved streams in different 4KB regions must both confirm.
	a, b := uint64(0x4000_0000), uint64(0x5000_0000)
	var gotA, gotB []uint64
	for i := uint64(0); i < 6; i++ {
		gotA = p.observe(a + i*64)
		gotB = p.observe(b + i*128)
	}
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatalf("interleaved streams not both detected: %d/%d", len(gotA), len(gotB))
	}
}

func TestHierarchyPrefetchWarmsL2(t *testing.T) {
	h := NewHierarchy(prefetchingConfig())
	base := uint64(0x1000_0000)
	// Stream through lines; after the stride confirms, later lines should
	// be L2-resident before first touch.
	for i := uint64(0); i < 20; i++ {
		now := int64(i * 10)
		h.BeginCycle(now)
		h.Load(now, base+i*64)
	}
	issued, _ := h.PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetches issued on a pure stream")
	}
	if !h.L2().Probe(base + 21*64) {
		t.Fatal("upcoming stream line not prefetched into L2")
	}
}

func TestHierarchyPrefetchUsefulness(t *testing.T) {
	h := NewHierarchy(prefetchingConfig())
	base := uint64(0x2000_0000)
	for i := uint64(0); i < 200; i++ {
		now := int64(i * 200) // spaced out so fills complete
		h.BeginCycle(now)
		h.Load(now, base+i*64)
	}
	issued, useful := h.PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetches")
	}
	if useful == 0 {
		t.Fatal("no prefetch was ever demanded on a pure stream")
	}
	if useful > issued {
		t.Fatalf("useful %d > issued %d", useful, issued)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	for i := uint64(0); i < 50; i++ {
		now := int64(i * 10)
		h.BeginCycle(now)
		h.Load(now, 0x1000_0000+i*64)
	}
	if issued, _ := h.PrefetchStats(); issued != 0 {
		t.Fatal("prefetcher ran while disabled")
	}
}

func TestPrefetcherPanicsOnBadConfig(t *testing.T) {
	for i, cfg := range []PrefetchConfig{
		{Enable: true, TableEntries: 0, Degree: 2},
		{Enable: true, TableEntries: 100, Degree: 2},
		{Enable: true, TableEntries: 256, Degree: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			newPrefetcher(cfg)
		}()
	}
}
