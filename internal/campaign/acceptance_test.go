package campaign

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestThousandTrialCampaign is the full-tier acceptance run: a 1000-trial
// campaign on one machine/workload that is killed mid-flight, resumed
// from the store without re-running a single finished trial (verified by
// the resume counters), and reports coverage with Wilson confidence
// bounds. Roughly 12s of single-core simulation; skipped under -short.
func TestThousandTrialCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-trial campaign is full-tier only")
	}
	const trials = 1000
	spec := quickSpec("shrec", trials)
	path := filepath.Join(t.TempDir(), "campaign.jsonl")

	// Phase 1: run until ~200 trials have finished, then kill.
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var killedAt int
	_, err = New(quickSuite()).WithStore(st).Run(ctx, spec, func(p Progress) {
		if p.Done >= 200 && killedAt == 0 {
			killedAt = p.Done
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("killed campaign reported success")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume. Every trial finished before the kill must be
	// restored from the store, not re-simulated.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sims := quickSuite()
	res, err := New(sims).WithStore(st2).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed < killedAt {
		t.Fatalf("resumed %d trials, but %d had finished before the kill", res.Resumed, killedAt)
	}
	if res.Resumed+res.Executed != trials {
		t.Fatalf("resumed %d + executed %d != %d", res.Resumed, res.Executed, trials)
	}
	// The suite's own counters agree: it simulated exactly the remaining
	// trials plus the golden run.
	if got, want := sims.Runs(), uint64(res.Executed)+1; got != want {
		t.Fatalf("suite executed %d simulations, want %d (executed trials + golden)", got, want)
	}
	if len(res.Trials) != trials {
		t.Fatalf("result holds %d trials, want %d", len(res.Trials), trials)
	}
	for i, tr := range res.Trials {
		if tr.Index != i {
			t.Fatalf("trial %d carries index %d", i, tr.Index)
		}
		if tr.Seed != TrialSeed(spec.Seed, i) {
			t.Fatalf("trial %d seed drifted", i)
		}
	}

	// Statistical shape: SHREC must detect faults and never corrupt.
	c := res.Counts()
	if c.SDC != 0 || c.Hang != 0 {
		t.Fatalf("protected machine produced %d SDC / %d hangs", c.SDC, c.Hang)
	}
	if c.Detected == 0 {
		t.Fatal("campaign detected nothing")
	}
	cov := res.Coverage()
	if cov.N != c.Faulted() || cov.N == 0 {
		t.Fatalf("coverage over N=%d, faulted=%d", cov.N, c.Faulted())
	}
	if cov.Point != 1 || cov.Lo >= 1 || cov.Lo <= 0.9 {
		// ~500+ faulted trials, zero escapes: the Wilson lower bound must
		// be high but strictly below certainty.
		t.Fatalf("implausible coverage estimate: %+v", cov)
	}

	// The report carries the bounds and the resume provenance.
	text := res.Report().String()
	for _, want := range []string{"coverage lo % (Wilson 95)", "coverage hi % (Wilson 95)", "Trial outcomes"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report lacks %q:\n%s", want, text)
		}
	}
	found := false
	for _, n := range res.Report().Notes {
		if strings.Contains(n, "resumed") {
			found = true
		}
	}
	if !found {
		t.Fatal("report notes lack the resume line")
	}
}
