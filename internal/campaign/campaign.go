// Package campaign implements Monte Carlo transient-fault injection
// campaigns over the simulation engine: statistically grounded protection
// evaluation in the style of architectural vulnerability studies, rather
// than the single-run rate sweep the repository started with.
//
// A campaign is described by a Spec — machine, workload, trial count,
// fault rate, master seed, run lengths, and an injection window — and
// expands deterministically into Trials independent simulations: trial i
// runs the machine with a per-trial fault seed derived from the master
// seed (TrialSeed), injecting faults only inside the window (by default
// the measured region, so warmup state stays bit-identical to the
// fault-free golden run). Every trial outcome is classified against that
// golden run:
//
//   - detected:  the redundant machinery caught at least one fault
//   - squashed:  faults were wiped by an unrelated recovery (benign)
//   - masked:    faults were injected but left no architectural trace
//   - sdc:       the architectural retirement signature diverged from the
//     golden run — silent data corruption, detected end to end
//   - hang:      the cycle-budget watchdog fired before the trial retired
//     its instructions (a recovery livelock)
//   - clean:     the Bernoulli injector never fired in the window
//
// Trials fan out through the shared sim.Suite, so they parallelize under
// its semaphore, deduplicate via singleflight, and (with a store
// attached) persist across processes. The campaign additionally persists
// one compact Trial record per finished trial, keyed by the campaign's
// content digest — a killed campaign picks up where it left off without
// re-simulating finished trials, and Result.Resumed counts exactly how
// many trials were restored rather than run.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec describes one fault-injection campaign. The zero values of the
// optional fields are filled by normalization: run lengths default to the
// suite's options, the window to the whole measured region, the trial
// count to DefaultTrials, the fault rate to DefaultFaultRate, and the
// cycle budget to DefaultBudgetFactor times the golden run's cycles.
type Spec struct {
	// Machine names the configuration under test ("shrec", "ss2+sc", ...;
	// see config.ByName).
	Machine string `json:"machine"`
	// Benchmark names the workload ("swim", "crafty", ...).
	Benchmark string `json:"benchmark"`
	// Trials is the number of independent fault-injection runs.
	Trials int `json:"trials,omitempty"`
	// FaultRate is the per-instruction injection probability inside the
	// window.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Seed is the campaign's master seed; trial i injects with
	// TrialSeed(Seed, i), so one seed reproduces the whole campaign
	// trial by trial.
	Seed uint64 `json:"seed,omitempty"`
	// WarmupInstrs and MeasureInstrs are the per-trial run lengths
	// (0 = the suite's defaults).
	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs uint64 `json:"measure_instrs,omitempty"`
	// WindowLo and WindowHi bound injection, in correct-path fetch
	// sequence numbers relative to the start of the measured region. Both
	// zero selects the whole measured region. The campaign additionally
	// shifts the window's start past the warmup's in-flight fetch horizon
	// (ROB size plus retirement overshoot): fetch runs up to a full ROB
	// ahead of retirement, so an unshifted window would open during the
	// warmup tail and perturb the warmup state the golden comparison
	// depends on.
	WindowLo uint64 `json:"window_lo,omitempty"`
	WindowHi uint64 `json:"window_hi,omitempty"`
	// MaxCycles is the per-trial hang watchdog in measured cycles
	// (0 = DefaultBudgetFactor times the golden run's measured cycles).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Recovery selects the checkpoint/rollback policy trials run under
	// ("none", "ckpt@64k+depth2+flush8+restore64", ...; see
	// recovery.ParseMode). It overrides any checkpoint fields the named
	// machine carries; left empty with a checkpoint-bearing machine
	// ("shrec+ckpt64k") it adopts the machine's policy at default costs.
	// Normalization rewrites the field to the policy's canonical string.
	Recovery string `json:"recovery,omitempty"`
}

// Campaign defaults, applied by normalization.
const (
	// DefaultTrials is the trial count when the spec leaves it zero.
	DefaultTrials = 100
	// DefaultFaultRate is the per-instruction injection probability when
	// the spec leaves it zero.
	DefaultFaultRate = 1e-4
	// DefaultBudgetFactor scales the golden run's measured cycles into
	// the per-trial hang budget when the spec leaves MaxCycles zero.
	DefaultBudgetFactor = 4
	// DefaultRepairCycles is the repair cost charged per fatal
	// (non-recovered) failure in the availability estimate: the cycles a
	// reboot-and-restore costs relative to the pipeline clock.
	DefaultRepairCycles = 1_000_000
)

// Outcome classifies one trial (see the package comment for the classes).
type Outcome string

// The trial outcome classes, from best-covered to worst.
const (
	OutcomeDetected Outcome = "detected"
	OutcomeSquashed Outcome = "squashed"
	OutcomeMasked   Outcome = "masked"
	OutcomeSDC      Outcome = "sdc"
	OutcomeHang     Outcome = "hang"
	OutcomeClean    Outcome = "clean"
)

// Outcomes lists every trial class in report order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeDetected, OutcomeSquashed, OutcomeMasked,
		OutcomeSDC, OutcomeHang, OutcomeClean}
}

// Classify maps one trial's simulation result to its outcome class, given
// the fault-free golden run's architectural signature. Precedence runs
// worst-observable-first: a hang is terminal regardless of what else the
// trial logged; a diverged signature is corruption even if other faults
// in the same trial were detected; detection outranks the benign classes.
// On a recovery trial the engine's counters describe the committed
// timeline only — faults undone by rollback were rewound along with the
// work — so detections recorded in the recovery trace count alongside
// the committed ones.
func Classify(res sim.Result, goldenSig uint64) Outcome {
	st := res.Stats
	var rec uint64
	if res.Recovery != nil {
		rec = res.Recovery.Detected()
	}
	switch {
	case res.Hung:
		return OutcomeHang
	case st.FaultsInjected == 0 && rec == 0:
		return OutcomeClean
	case st.ArchSig != goldenSig:
		return OutcomeSDC
	case st.FaultsDetected > 0 || rec > 0:
		return OutcomeDetected
	case st.FaultsSquashed > 0:
		return OutcomeSquashed
	default:
		return OutcomeMasked
	}
}

// TrialSeed derives trial i's fault-injector seed from the campaign's
// master seed: a splitmix fork, so trials sample decorrelated fault sites
// while the whole campaign remains a pure function of (Seed, i).
func TrialSeed(seed uint64, trial int) uint64 {
	return rng.New(seed).Fork(uint64(trial) + 1).Uint64()
}

// Trial is the compact per-trial record a campaign aggregates and
// persists (one store entry per trial, keyed by campaign digest + index).
type Trial struct {
	// Index is the trial's position in the campaign ([0, Trials)).
	Index int `json:"index"`
	// Seed is the trial's derived fault-injector seed.
	Seed uint64 `json:"seed"`
	// Outcome is the trial's classification.
	Outcome Outcome `json:"outcome"`
	// Faults counts injected faults; Detected and Squashed count their
	// dispositions (Faults - Detected - Squashed were masked or escaped).
	Faults   uint64 `json:"faults"`
	Detected uint64 `json:"detected"`
	Squashed uint64 `json:"squashed"`
	// FaultsUnchecked counts injected faults that landed where the machine
	// does not check — FLEX's checking-disabled regions. A trial whose
	// every fault is unchecked says nothing about the checker; conditional
	// coverage (Result.ConditionalCoverage) excludes it.
	FaultsUnchecked uint64 `json:"faults_unchecked,omitempty"`
	// DetectLatency is the mean injection-to-detection latency in cycles
	// over the trial's detected faults (0 when none).
	DetectLatency float64 `json:"detect_latency,omitempty"`
	// IPC is the trial's measured IPC (partial for hung trials).
	IPC float64 `json:"ipc"`
	// Cycles is the trial's measured cycle count.
	Cycles int64 `json:"cycles"`
	// ArchSig is the trial's architectural retirement signature.
	ArchSig uint64 `json:"arch_sig"`

	// Recovery observables, present only under a recovery policy (see
	// internal/recovery): detected faults by recovery outcome, checkpoint
	// captures, and the cycles of work rollbacks discarded. Faults and
	// Detected above include the rolled-back detections (one injected,
	// detected fault per rollback) even though the committed counters
	// rewound past them.
	Rollbacks     uint64 `json:"rollbacks,omitempty"`
	Overruns      uint64 `json:"overruns,omitempty"`
	Unrecoverable uint64 `json:"unrecoverable,omitempty"`
	Checkpoints   uint64 `json:"checkpoints,omitempty"`
	LostWork      int64  `json:"lost_work,omitempty"`
}

// Counts tallies trials per outcome class.
type Counts struct {
	Detected int `json:"detected"`
	Squashed int `json:"squashed"`
	Masked   int `json:"masked"`
	SDC      int `json:"sdc"`
	Hang     int `json:"hang"`
	Clean    int `json:"clean"`
}

// add tallies one outcome.
func (c *Counts) add(o Outcome) {
	switch o {
	case OutcomeDetected:
		c.Detected++
	case OutcomeSquashed:
		c.Squashed++
	case OutcomeMasked:
		c.Masked++
	case OutcomeSDC:
		c.SDC++
	case OutcomeHang:
		c.Hang++
	case OutcomeClean:
		c.Clean++
	}
}

// Faulted returns the number of trials in which at least one fault was
// injected — the denominator of the coverage estimate.
func (c Counts) Faulted() int {
	return c.Detected + c.Squashed + c.Masked + c.SDC + c.Hang
}

// Estimate is a binomial proportion with its Wilson 95% confidence
// bounds over N trials.
type Estimate struct {
	Point float64 `json:"point"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	N     int     `json:"n"`
}

// wilsonZ is the standard-normal quantile of the 95% interval.
const wilsonZ = 1.96

// estimate builds a Wilson-bounded proportion.
func estimate(successes, n int) Estimate {
	e := Estimate{N: n}
	if n > 0 {
		e.Point = float64(successes) / float64(n)
	}
	e.Lo, e.Hi = stats.Wilson(successes, n, wilsonZ)
	return e
}

// coverage is the campaign's headline estimate: the fraction of faulted
// trials whose faults stayed architecturally harmless (detected, wiped by
// recovery, or masked) — everything except silent corruption and hangs.
func (c Counts) coverage() Estimate {
	return estimate(c.Detected+c.Squashed+c.Masked, c.Faulted())
}

// Progress is a running campaign snapshot, delivered to the progress
// callback after every finished trial (and once for the resumed batch).
type Progress struct {
	// Done counts finished trials (resumed included); Total is the
	// campaign's trial count.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Resumed counts trials restored from the store instead of run.
	Resumed int `json:"resumed"`
	// Counts tallies finished trials per outcome class.
	Counts Counts `json:"counts"`
	// Coverage is the running coverage estimate over faulted trials.
	Coverage Estimate `json:"coverage"`
}

// Result is one completed campaign.
type Result struct {
	// Spec is the normalized specification (defaults filled in).
	Spec Spec `json:"spec"`
	// Golden is the fault-free reference run trials are compared against.
	Golden sim.Result `json:"golden"`
	// MaxCycles is the resolved per-trial hang budget.
	MaxCycles int64 `json:"max_cycles"`
	// Trials holds every trial record, ordered by index.
	Trials []Trial `json:"trials"`
	// Resumed counts trials restored from the persistent store; Executed
	// counts trials actually simulated by this run. They sum to
	// len(Trials), which is how resumption is verified.
	Resumed  int `json:"resumed"`
	Executed int `json:"executed"`
}

// Counts tallies the campaign's trials per outcome class.
func (r *Result) Counts() Counts {
	var c Counts
	for _, t := range r.Trials {
		c.add(t.Outcome)
	}
	return c
}

// Coverage returns the campaign's protection coverage — the fraction of
// faulted trials without silent corruption or a hang — with Wilson 95%
// bounds over the faulted-trial count.
func (r *Result) Coverage() Estimate {
	return r.Counts().coverage()
}

// ConditionalCoverage is coverage given that checking applied: trials
// whose every injected fault landed where the machine does not check
// (FLEX's off regions) are excluded from the denominator, because their
// outcome says nothing about the detection hardware. A machine that
// checks everything has ConditionalCoverage == Coverage; for a
// region-gated machine the pair separates "the checker missed" from "the
// policy chose not to look" — the conditional-coverage story the
// flexible-detection papers evaluate.
func (r *Result) ConditionalCoverage() Estimate {
	covered, n := 0, 0
	for _, t := range r.Trials {
		if t.Faults == 0 || t.Faults == t.FaultsUnchecked {
			continue
		}
		n++
		switch t.Outcome {
		case OutcomeDetected, OutcomeSquashed, OutcomeMasked:
			covered++
		}
	}
	return estimate(covered, n)
}

// UncheckedOnlyTrials counts the faulted trials excluded by
// ConditionalCoverage: every injected fault landed in a
// checking-disabled region.
func (r *Result) UncheckedOnlyTrials() int {
	n := 0
	for _, t := range r.Trials {
		if t.Faults > 0 && t.Faults == t.FaultsUnchecked {
			n++
		}
	}
	return n
}

// Aggregates are the campaign-level fault and cost sums shared by every
// renderer (Result.Report, cmd/faultstudy), kept in one place so the CLI
// and the typed report cannot drift apart.
type Aggregates struct {
	// Faults and Detected total injected and detected faults over all
	// trials.
	Faults, Detected uint64
	// DetectLatency is the mean injection-to-detection latency in cycles
	// over every detected fault (0 when none was detected).
	DetectLatency float64
	// MeanIPC is the mean trial IPC over non-hung trials (hung trials
	// report partial counters) and IPCTrials their count.
	MeanIPC   float64
	IPCTrials int
	// Overhead is the IPC lost to fault recovery relative to the golden
	// run, in percent (0 when not computable).
	Overhead float64
}

// Aggregates computes the campaign's fault and cost sums.
func (r *Result) Aggregates() Aggregates {
	var a Aggregates
	var latSum, ipcSum float64
	for _, t := range r.Trials {
		a.Faults += t.Faults
		a.Detected += t.Detected
		latSum += t.DetectLatency * float64(t.Detected)
		if t.Outcome != OutcomeHang {
			ipcSum += t.IPC
			a.IPCTrials++
		}
	}
	if a.Detected > 0 {
		a.DetectLatency = latSum / float64(a.Detected)
	}
	if a.IPCTrials > 0 {
		a.MeanIPC = ipcSum / float64(a.IPCTrials)
		if g := r.Golden.IPC(); g > 0 {
			a.Overhead = 100 * (g - a.MeanIPC) / g
		}
	}
	return a
}

// RecoverySummary aggregates the campaign's recovery observables and the
// derived rates the availability estimate plugs in. The cost terms
// (checkpoint overhead, mean recovery latency) combine the policy's
// FlushCost/RestoreCost with the measured traces here, post hoc — the
// simulations themselves recorded only raw observables, so the cached
// trials serve every cost assumption.
type RecoverySummary struct {
	// Policy is the campaign's recovery policy, parsed back from the
	// normalized spec.
	Policy recovery.Policy `json:"policy"`
	// Rollbacks, Overruns, and Unrecoverable total detected faults by
	// recovery outcome over all trials; Checkpoints totals captures and
	// LostWork the cycles rollbacks discarded.
	Rollbacks     uint64 `json:"rollbacks"`
	Overruns      uint64 `json:"overruns"`
	Unrecoverable uint64 `json:"unrecoverable"`
	Checkpoints   uint64 `json:"checkpoints"`
	LostWork      int64  `json:"lost_work"`
	// Recovered is the fraction of detected faults rollback recovered,
	// with Wilson 95% bounds over the detection count.
	Recovered Estimate `json:"recovered"`
	// MeanRecoveryLatency is the expected cycles one recovered fault
	// costs: the policy's RestoreCost plus the mean re-executed lost work.
	MeanRecoveryLatency float64 `json:"mean_recovery_latency"`
	// CkptOverhead is the checkpoint capture cost amortized per committed
	// cycle: FlushCost every Interval instructions, converted to cycles
	// through the golden run's CPI.
	CkptOverhead float64 `json:"ckpt_overhead"`
	// FaultsPerCycle is the detected-fault arrival rate on the committed
	// timeline (detections per trial cycle, pooled over all trials).
	FaultsPerCycle float64 `json:"faults_per_cycle"`
	// Cycles totals the trials' committed cycles — the denominator behind
	// FaultsPerCycle, kept so summaries from several campaigns can be
	// pooled (internal/explore does).
	Cycles int64 `json:"cycles"`
}

// Detected is the summary's total detected faults.
func (s *RecoverySummary) Detected() uint64 {
	return s.Rollbacks + s.Overruns + s.Unrecoverable
}

// RecoverySummary returns the campaign's aggregated recovery observables,
// or nil when the campaign ran without a recovery policy.
func (r *Result) RecoverySummary() *RecoverySummary {
	pol, err := recovery.ParseMode(r.Spec.Recovery)
	if err != nil || !pol.Enabled() {
		return nil
	}
	s := &RecoverySummary{Policy: pol}
	for _, t := range r.Trials {
		s.Rollbacks += t.Rollbacks
		s.Overruns += t.Overruns
		s.Unrecoverable += t.Unrecoverable
		s.Checkpoints += t.Checkpoints
		s.LostWork += t.LostWork
		s.Cycles += t.Cycles
	}
	if cpi := r.Golden.CPI(); cpi > 0 {
		s.CkptOverhead = float64(pol.FlushCost) / (float64(pol.Interval) * cpi)
	}
	s.Finalize()
	return s
}

// Finalize recomputes the derived fields (Recovered, MeanRecoveryLatency,
// FaultsPerCycle) from the counter sums — called after the counters are
// filled, and again by callers that pool several summaries.
func (s *RecoverySummary) Finalize() {
	s.Recovered = estimate(int(s.Rollbacks), int(s.Detected()))
	s.MeanRecoveryLatency = float64(s.Policy.RestoreCost)
	if s.Rollbacks > 0 {
		s.MeanRecoveryLatency += float64(s.LostWork) / float64(s.Rollbacks)
	}
	s.FaultsPerCycle = 0
	if s.Cycles > 0 {
		s.FaultsPerCycle = float64(s.Detected()) / float64(s.Cycles)
	}
}

// Availability is a steady-state availability estimate with Wilson 95%
// bounds (propagated monotonically from the fatal-fraction bounds) and
// the matching MTTF.
type Availability struct {
	Point float64 `json:"point"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	// MTTFCycles is the mean cycles to an unrecovered failure; 0 means
	// unbounded (no fatal failure was observed), keeping the JSON finite.
	MTTFCycles float64 `json:"mttf_cycles,omitempty"`
}

// Availability estimates steady-state availability from the summary's
// pooled counters, charging repairCycles per fatal (non-recovered)
// failure — use DefaultRepairCycles absent a better model. The bounds
// come from the Wilson interval on the fatal fraction, which propagates
// monotonically through the renewal model.
func (s *RecoverySummary) Availability(repairCycles float64) Availability {
	det := int(s.Detected())
	fatal := int(s.Overruns + s.Unrecoverable)
	var pFatal float64
	if det > 0 {
		pFatal = float64(fatal) / float64(det)
	}
	fLo, fHi := stats.Wilson(fatal, det, wilsonZ)
	avail := func(pf float64) float64 {
		return stats.Availability(s.CkptOverhead, s.FaultsPerCycle, pf,
			repairCycles, 1-pf, s.MeanRecoveryLatency)
	}
	a := Availability{Point: avail(pFatal), Lo: avail(fHi), Hi: avail(fLo)}
	if m := stats.MTTF(s.FaultsPerCycle, pFatal); !math.IsInf(m, 1) {
		a.MTTFCycles = m
	}
	return a
}

// Availability estimates the machine's steady-state availability under
// the campaign's recovery policy (see RecoverySummary.Availability). ok
// is false when the campaign ran without a recovery policy.
func (r *Result) Availability(repairCycles float64) (Availability, bool) {
	s := r.RecoverySummary()
	if s == nil {
		return Availability{}, false
	}
	return s.Availability(repairCycles), true
}

// Report renders the campaign as a typed experiment report.
func (r *Result) Report() *report.Report {
	rep := report.New("campaign",
		fmt.Sprintf("Fault campaign: %s on %s (%d trials at rate %.2g)",
			r.Golden.Machine, r.Spec.Benchmark, len(r.Trials), r.Spec.FaultRate))

	c := r.Counts()
	total := len(r.Trials)
	ot := rep.AddTable("Trial outcomes", "outcome", "trials", "% of campaign")
	ot.Verb = "%.0f"
	share := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	for _, o := range Outcomes() {
		n := map[Outcome]int{
			OutcomeDetected: c.Detected, OutcomeSquashed: c.Squashed,
			OutcomeMasked: c.Masked, OutcomeSDC: c.SDC,
			OutcomeHang: c.Hang, OutcomeClean: c.Clean,
		}[o]
		ot.AddRow(string(o), float64(n), share(n))
	}

	cov := c.coverage()
	agg := r.Aggregates()
	st := rep.AddTable("Campaign summary", "metric", "value")
	st.Verb = "%.4g"
	st.AddRow("coverage %", 100*cov.Point)
	st.AddRow("coverage lo % (Wilson 95)", 100*cov.Lo)
	st.AddRow("coverage hi % (Wilson 95)", 100*cov.Hi)
	st.AddRow("faulted trials", float64(cov.N))
	st.AddRow("faults injected", float64(agg.Faults))
	st.AddRow("faults detected", float64(agg.Detected))
	var unchecked uint64
	for _, t := range r.Trials {
		unchecked += t.FaultsUnchecked
	}
	if unchecked > 0 {
		ccov := r.ConditionalCoverage()
		st.AddRow("conditional coverage %", 100*ccov.Point)
		st.AddRow("conditional coverage lo % (Wilson 95)", 100*ccov.Lo)
		st.AddRow("conditional coverage hi % (Wilson 95)", 100*ccov.Hi)
		st.AddRow("checked faulted trials", float64(ccov.N))
		st.AddRow("off-region-only trials", float64(r.UncheckedOnlyTrials()))
		st.AddRow("faults landed unchecked", float64(unchecked))
	}
	if agg.Detected > 0 {
		st.AddRow("mean detect latency (cycles)", agg.DetectLatency)
	}
	st.AddRow("golden IPC", r.Golden.IPC())
	if agg.IPCTrials > 0 && r.Golden.IPC() > 0 {
		st.AddRow("mean trial IPC", agg.MeanIPC)
		st.AddRow("recovery overhead %", agg.Overhead)
	}

	if rs := r.RecoverySummary(); rs != nil {
		av, _ := r.Availability(DefaultRepairCycles)
		rt := rep.AddTable("Recovery", "metric", "value")
		rt.Verb = "%.6g"
		rt.AddRow("rollbacks", float64(rs.Rollbacks))
		rt.AddRow("overruns", float64(rs.Overruns))
		rt.AddRow("unrecoverable", float64(rs.Unrecoverable))
		rt.AddRow("checkpoints", float64(rs.Checkpoints))
		rt.AddRow("lost work (cycles)", float64(rs.LostWork))
		if rs.Detected() > 0 {
			rt.AddRow("recovered % of detected", 100*rs.Recovered.Point)
			rt.AddRow("recovered lo % (Wilson 95)", 100*rs.Recovered.Lo)
			rt.AddRow("recovered hi % (Wilson 95)", 100*rs.Recovered.Hi)
		}
		rt.AddRow("mean recovery latency (cycles)", rs.MeanRecoveryLatency)
		rt.AddRow("checkpoint overhead (cycles/cycle)", rs.CkptOverhead)
		rt.AddRow("availability %", 100*av.Point)
		rt.AddRow("availability lo % (Wilson 95)", 100*av.Lo)
		rt.AddRow("availability hi % (Wilson 95)", 100*av.Hi)
		if av.MTTFCycles > 0 {
			rt.AddRow("MTTF (cycles)", av.MTTFCycles)
		}
		rep.SetMeta("recovery", rs.Policy.String())
		rep.AddNote("availability %.4f%% (Wilson 95%% CI [%.4f%%, %.4f%%]) under policy %s at repair cost %d cycles",
			100*av.Point, 100*av.Lo, 100*av.Hi, rs.Policy, int64(DefaultRepairCycles))
	}

	rep.AddNote("coverage %.2f%% (Wilson 95%% CI [%.2f%%, %.2f%%]) over %d faulted trials; %d sdc, %d hangs",
		100*cov.Point, 100*cov.Lo, 100*cov.Hi, cov.N, c.SDC, c.Hang)
	if r.Resumed > 0 {
		rep.AddNote("resumed %d of %d trials from the store (%d executed)",
			r.Resumed, total, r.Executed)
	}

	rep.SetMeta("machine", r.Golden.Machine)
	rep.SetMeta("benchmark", r.Spec.Benchmark)
	rep.SetMeta("trials", fmt.Sprint(total))
	rep.SetMeta("fault_rate", fmt.Sprintf("%g", r.Spec.FaultRate))
	rep.SetMeta("seed", fmt.Sprint(r.Spec.Seed))
	rep.SetMeta("warmup_instrs", fmt.Sprint(r.Spec.WarmupInstrs))
	rep.SetMeta("measure_instrs", fmt.Sprint(r.Spec.MeasureInstrs))
	rep.SetMeta("window", fmt.Sprintf("[%d, %d)", r.Spec.WindowLo, r.Spec.WindowHi))
	rep.SetMeta("max_cycles", fmt.Sprint(r.MaxCycles))
	rep.SetMeta("golden_arch_sig", fmt.Sprintf("%#x", r.Golden.Stats.ArchSig))
	return rep
}

// Engine runs campaigns over a shared simulation suite. All methods are
// safe for concurrent use; concurrent campaigns share the suite's result
// cache and parallelism bound.
type Engine struct {
	sims *sim.Suite
	st   *store.Store
}

// New builds a campaign engine over an existing simulation suite.
func New(sims *sim.Suite) *Engine {
	return &Engine{sims: sims}
}

// WithStore attaches a persistent store for per-trial records: finished
// trials are written through, and a later Run of the same spec restores
// them instead of re-simulating. Returns e for chaining.
func (e *Engine) WithStore(st *store.Store) *Engine {
	e.st = st
	return e
}

// Normalize validates spec the way Run will (machine and workload
// resolve, rate and window and budget in range, recovery mode parses)
// against the run-length defaults def, and returns it with every default
// filled in — without simulating anything. Servers use it to reject
// statically impossible campaigns synchronously, and to identify jobs by
// the normalized spec so that spelled-out defaults and omitted ones name
// the same campaign.
func Normalize(spec Spec, def sim.Options) (Spec, error) {
	ns, _, _, _, err := normalize(spec, def)
	return ns, err
}

// normalize fills spec defaults from def and resolves the machine,
// workload, and recovery policy (applying the policy's checkpoint fields
// to the returned machine). The returned spec is what Result records and
// what the campaign digest hashes.
func normalize(spec Spec, def sim.Options) (Spec, config.Machine, trace.Profile, recovery.Policy, error) {
	fail := func(err error) (Spec, config.Machine, trace.Profile, recovery.Policy, error) {
		return Spec{}, config.Machine{}, trace.Profile{}, recovery.Policy{}, err
	}
	m, err := config.ByName(spec.Machine)
	if err != nil {
		return fail(fmt.Errorf("campaign: %w", err))
	}
	// Record the canonical spelling: "meek", "MEEK@2", and "Meek@2" all
	// name the same machine, so they must hash to the same job identity.
	spec.Machine = m.Spec()
	p, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return fail(fmt.Errorf("campaign: %w", err))
	}
	pol, err := recovery.ParseMode(spec.Recovery)
	if err != nil {
		return fail(fmt.Errorf("campaign: %w", err))
	}
	if !pol.Enabled() && m.CkptInterval > 0 {
		// A checkpoint-bearing machine spec ("shrec+ckpt64k") implies the
		// policy at default costs.
		pol, err = (recovery.Policy{Interval: m.CkptInterval, Depth: m.CkptDepth}).Normalize()
		if err != nil {
			return fail(fmt.Errorf("campaign: %w", err))
		}
	}
	m = pol.Apply(m)
	spec.Recovery = ""
	if pol.Enabled() {
		spec.Recovery = pol.String()
	}
	if spec.Trials == 0 {
		spec.Trials = DefaultTrials
	}
	if spec.Trials < 0 {
		return fail(fmt.Errorf("campaign: negative trial count %d", spec.Trials))
	}
	if spec.FaultRate == 0 {
		spec.FaultRate = DefaultFaultRate
	}
	if spec.FaultRate < 0 || spec.FaultRate > 1 {
		return fail(fmt.Errorf("campaign: fault rate %g out of [0,1]", spec.FaultRate))
	}
	if spec.WarmupInstrs == 0 {
		spec.WarmupInstrs = def.WarmupInstrs
	}
	if spec.MeasureInstrs == 0 {
		spec.MeasureInstrs = def.MeasureInstrs
	}
	if spec.WindowLo == 0 && spec.WindowHi == 0 {
		spec.WindowHi = spec.MeasureInstrs
	}
	if spec.WindowHi <= spec.WindowLo {
		return fail(fmt.Errorf("campaign: empty injection window [%d, %d)", spec.WindowLo, spec.WindowHi))
	}
	if spec.WindowLo+fetchHorizon(m) >= spec.WindowHi {
		return fail(fmt.Errorf(
			"campaign: injection window [%d, %d) collapses inside the warmup fetch horizon (%d); raise MeasureInstrs or WindowHi",
			spec.WindowLo, spec.WindowHi, fetchHorizon(m)))
	}
	if spec.MaxCycles < 0 {
		return fail(fmt.Errorf("campaign: negative cycle budget %d", spec.MaxCycles))
	}
	return spec, m, p, pol, nil
}

// digest is the campaign's content identity: the full machine
// configuration and workload profile plus every spec field that shapes a
// trial — but not the trial count, so extending a campaign from 500 to
// 1000 trials reuses the first 500 stored records.
// The schema label is v3: v1 records predate checkpoint recovery, v2
// records predate the detection-mode zoo (the Trial schema grew
// FaultsUnchecked, and the hashed machine grew the lane/context/region
// fields).
func digest(spec Spec, m config.Machine, p trace.Profile, budget int64) string {
	return store.Digest("campaign.Trial.v3", m, p,
		spec.FaultRate, spec.Seed, spec.WarmupInstrs, spec.MeasureInstrs,
		spec.WindowLo, spec.WindowHi, budget)
}

// trialKey keys one trial record in the store.
func trialKey(digest string, i int) string {
	return fmt.Sprintf("%s/trial/%d", digest, i)
}

// fetchHorizon bounds how many correct-path fetch sequence numbers the
// front end can consume beyond the current retirement count: a full ROB
// of in-flight instructions, the retirement overshoot of the final
// warmup cycle, the fetch buffer, and margin. The injection window's
// start is shifted past it so no instruction fetched during warmup is
// ever an injection site — which is what keeps the trial's warmup
// bit-identical to the golden run's.
func fetchHorizon(m config.Machine) uint64 {
	return uint64(m.ROBSize + m.RetireWidth + 64)
}

// Run executes (or resumes) the campaign described by spec. The progress
// callback, when non-nil, is invoked serially after every finished trial
// with a running snapshot; it must return quickly. On context
// cancellation the campaign stops with an error, but every finished
// trial has already been persisted, so a later Run resumes from it.
func (e *Engine) Run(ctx context.Context, spec Spec, progress func(Progress)) (*Result, error) {
	ns, m, p, _, err := normalize(spec, e.sims.Options())
	if err != nil {
		return nil, err
	}
	opt := e.sims.Options()
	opt.WarmupInstrs = ns.WarmupInstrs
	opt.MeasureInstrs = ns.MeasureInstrs
	opt.MaxCycles = 0

	// The golden run: the machine exactly as configured, fault-free, at
	// the campaign's run lengths. It defines the architectural signature
	// trials must match and the cycle budget of the hang watchdog. Shared
	// through the suite, so repeated campaigns (and ordinary experiments
	// at the same scale) reuse it.
	goldenStart := time.Now()
	golden, err := e.sims.GetOpt(ctx, m, p, opt)
	if err != nil {
		return nil, fmt.Errorf("campaign: golden run: %w", err)
	}
	telemetry.SpanFrom(ctx).Record("golden_run", time.Since(goldenStart))
	budget := ns.MaxCycles
	if budget == 0 {
		budget = DefaultBudgetFactor * golden.Stats.Cycles
	}
	ns.MaxCycles = budget

	dg := digest(ns, m, p, budget)
	res := &Result{Spec: ns, Golden: golden, MaxCycles: budget,
		Trials: make([]Trial, ns.Trials)}
	have := make([]bool, ns.Trials)
	if e.st != nil {
		for i := range res.Trials {
			var tr Trial
			if ok, err := e.st.Get(trialKey(dg, i), &tr); err == nil && ok {
				res.Trials[i] = tr
				have[i] = true
				res.Resumed++
			}
		}
	}

	// Running progress state, shared by the trial goroutines.
	var mu sync.Mutex
	prog := Progress{Total: ns.Trials, Resumed: res.Resumed}
	for i, tr := range res.Trials {
		if have[i] {
			prog.Done++
			prog.Counts.add(tr.Outcome)
		}
	}
	prog.Coverage = prog.Counts.coverage()
	if progress != nil {
		progress(prog)
	}

	var wg sync.WaitGroup
	errs := make([]error, ns.Trials)
	for i := range res.Trials {
		if have[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mc := m
			mc.FaultRate = ns.FaultRate
			mc.FaultSeed = TrialSeed(ns.Seed, i)
			mc.FaultWindowLo = ns.WarmupInstrs + fetchHorizon(m) + ns.WindowLo
			mc.FaultWindowHi = ns.WarmupInstrs + ns.WindowHi
			topt := opt
			topt.MaxCycles = budget
			trialStart := time.Now()
			r, err := e.sims.GetOpt(ctx, mc, p, topt)
			if err != nil {
				errs[i] = fmt.Errorf("trial %d: %w", i, err)
				return
			}
			telemetry.SpanFrom(ctx).Record("trial", time.Since(trialStart))
			tr := Trial{
				Index:           i,
				Seed:            mc.FaultSeed,
				Outcome:         Classify(r, golden.Stats.ArchSig),
				Faults:          r.Stats.FaultsInjected,
				Detected:        r.Stats.FaultsDetected,
				Squashed:        r.Stats.FaultsSquashed,
				FaultsUnchecked: r.Stats.FaultsInjectedUnchecked,
				DetectLatency:   r.Stats.AvgFaultDetectLatency(),
				IPC:             r.IPC(),
				Cycles:          r.Stats.Cycles,
				ArchSig:         r.Stats.ArchSig,
			}
			if rec := r.Recovery; rec != nil {
				tr.Rollbacks, tr.Overruns, tr.Unrecoverable = rec.Rollbacks, rec.Overruns, rec.Unrecoverable
				tr.Checkpoints = rec.Checkpoints
				tr.LostWork = rec.LostWork
				// Each rollback undid exactly one injected, detected fault
				// that the rewound committed counters no longer carry.
				tr.Faults += rec.Rollbacks
				tr.Detected += rec.Rollbacks
				if n := len(rec.Events); n > 0 {
					// The committed counters lost the rolled-back detection
					// latencies; recompute over the trace's event log (which
					// covers every detection on trial-sized runs).
					var sum float64
					for _, ev := range rec.Events {
						sum += float64(ev.DetectCycle - ev.InjectCycle)
					}
					tr.DetectLatency = sum / float64(n)
				}
			}
			if e.st != nil {
				// Best effort: a failed write costs a re-simulation on
				// resume, never the campaign.
				_ = e.st.Put(trialKey(dg, i), tr)
			}
			mu.Lock()
			res.Trials[i] = tr
			res.Executed++
			prog.Done++
			prog.Counts.add(tr.Outcome)
			prog.Coverage = prog.Counts.coverage()
			if progress != nil {
				// Under the lock, so snapshots arrive serially and in
				// Done order; the callback must return quickly.
				progress(prog)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	failed := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancellation cascades into every outstanding trial; collapse
			// the noise and keep only genuine failures (cf. sim.Batch).
			real := failed[:0]
			for _, err := range failed {
				if !errors.Is(err, ctxErr) {
					real = append(real, err)
				}
			}
			return nil, errors.Join(append(real,
				fmt.Errorf("campaign: interrupted with %d of %d trials done: %w",
					countDone(errs), ns.Trials, ctxErr))...)
		}
		return nil, errors.Join(failed...)
	}
	// res.Trials is index-addressed throughout, so it is already in
	// trial order.
	return res, nil
}

// countDone counts trials without an error (finished or resumed).
func countDone(errs []error) int {
	n := 0
	for _, err := range errs {
		if err == nil {
			n++
		}
	}
	return n
}
