package campaign

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/store"
)

// quickSpec returns a small campaign spec for fast tests.
func quickSpec(machine string, trials int) Spec {
	return Spec{
		Machine:       machine,
		Benchmark:     "crafty",
		Trials:        trials,
		FaultRate:     2e-4,
		Seed:          0xC0FFEE,
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
	}
}

func quickSuite() *sim.Suite {
	return sim.NewSuite(sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000})
}

// TestClassify pins each outcome class from crafted engine results.
func TestClassify(t *testing.T) {
	const goldenSig = 0xABCD
	mk := func(hung bool, injected, detected, squashed uint64, sig uint64) sim.Result {
		return sim.Result{Hung: hung, Stats: core.Stats{
			FaultsInjected: injected,
			FaultsDetected: detected,
			FaultsSquashed: squashed,
			ArchSig:        sig,
		}}
	}
	cases := []struct {
		name string
		res  sim.Result
		want Outcome
	}{
		{"detected", mk(false, 2, 2, 0, goldenSig), OutcomeDetected},
		{"squashed-benign", mk(false, 1, 0, 1, goldenSig), OutcomeSquashed},
		{"masked (in flight at run end)", mk(false, 1, 0, 0, goldenSig), OutcomeMasked},
		{"sdc (signature divergence)", mk(false, 1, 0, 0, goldenSig^1), OutcomeSDC},
		{"sdc outranks detection", mk(false, 3, 2, 0, goldenSig^1), OutcomeSDC},
		{"hang", mk(true, 5, 1, 0, goldenSig), OutcomeHang},
		{"hang outranks sdc", mk(true, 5, 0, 0, goldenSig^1), OutcomeHang},
		{"clean (no fault materialized)", mk(false, 0, 0, 0, goldenSig), OutcomeClean},
	}
	for _, tc := range cases {
		if got := Classify(tc.res, goldenSig); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCountsAndCoverage pins the aggregate arithmetic: the coverage
// denominator excludes clean trials, and the Wilson bounds bracket the
// point estimate.
func TestCountsAndCoverage(t *testing.T) {
	r := &Result{Trials: []Trial{
		{Outcome: OutcomeDetected}, {Outcome: OutcomeDetected},
		{Outcome: OutcomeSquashed}, {Outcome: OutcomeMasked},
		{Outcome: OutcomeSDC}, {Outcome: OutcomeClean},
	}}
	c := r.Counts()
	if c.Faulted() != 5 {
		t.Fatalf("faulted = %d, want 5 (clean excluded)", c.Faulted())
	}
	cov := r.Coverage()
	if cov.N != 5 || cov.Point != 0.8 {
		t.Fatalf("coverage = %+v, want point 0.8 over 5", cov)
	}
	if !(cov.Lo < cov.Point && cov.Point < cov.Hi) {
		t.Fatalf("Wilson bounds do not bracket the point: %+v", cov)
	}
	if cov.Lo < 0 || cov.Hi > 1 {
		t.Fatalf("Wilson bounds left [0,1]: %+v", cov)
	}
}

// TestTrialSeedDerivation pins that per-trial seeds are deterministic and
// pairwise distinct over a realistic campaign size.
func TestTrialSeedDerivation(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 2000; i++ {
		s := TrialSeed(42, i)
		if s2 := TrialSeed(42, i); s2 != s {
			t.Fatalf("trial %d seed not deterministic: %#x vs %#x", i, s, s2)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %#x", i, j, s)
		}
		seen[s] = i
	}
	if TrialSeed(42, 0) == TrialSeed(43, 0) {
		t.Fatal("distinct master seeds produced the same trial seed")
	}
}

// TestCampaignDeterminism pins the core reproducibility guarantee: the
// same spec on a fresh suite reproduces identical trial-by-trial
// outcomes.
func TestCampaignDeterminism(t *testing.T) {
	spec := quickSpec("shrec", 12)
	run := func() *Result {
		res, err := New(quickSuite()).Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("trial %d differs:\n%+v\nvs\n%+v", i, a.Trials[i], b.Trials[i])
		}
	}
	if a.Golden.Stats.ArchSig != b.Golden.Stats.ArchSig {
		t.Fatal("golden signatures differ across runs")
	}
}

// TestProtectedMachineHasNoSDC pins the qualitative result the paper's
// protection claims rest on: SHREC trials never silently corrupt, while
// the unprotected SS1 run at the same sites produces SDC and detects
// nothing.
func TestProtectedMachineHasNoSDC(t *testing.T) {
	shrec, err := New(quickSuite()).Run(context.Background(), quickSpec("shrec", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := shrec.Counts()
	if c.SDC != 0 {
		t.Fatalf("SHREC campaign produced %d SDC trials", c.SDC)
	}
	if c.Detected == 0 {
		t.Fatal("SHREC campaign detected nothing; rate/window too narrow for the test")
	}

	ss1, err := New(quickSuite()).Run(context.Background(), quickSpec("ss1", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := ss1.Counts()
	if c1.Detected != 0 {
		t.Fatalf("SS1 has no redundancy but detected %d trials", c1.Detected)
	}
	if c1.SDC == 0 {
		t.Fatal("SS1 campaign produced no SDC; the signature oracle is not firing")
	}
}

// TestCampaignResume pins store-backed resumption: a second engine over
// the same store re-runs nothing and restores every trial record
// identically.
func TestCampaignResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	spec := quickSpec("shrec", 10)

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := New(quickSuite()).WithStore(st).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed != 0 || first.Executed != 10 {
		t.Fatalf("fresh campaign: resumed %d, executed %d", first.Resumed, first.Executed)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sims := quickSuite()
	second, err := New(sims).WithStore(st2).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 10 || second.Executed != 0 {
		t.Fatalf("resumed campaign: resumed %d, executed %d, want 10/0", second.Resumed, second.Executed)
	}
	// Only the golden run may simulate on resume.
	if runs := sims.Runs(); runs > 1 {
		t.Fatalf("resumed campaign re-simulated %d runs", runs)
	}
	for i := range first.Trials {
		if first.Trials[i] != second.Trials[i] {
			t.Fatalf("trial %d changed across resume:\n%+v\nvs\n%+v",
				i, first.Trials[i], second.Trials[i])
		}
	}

	// Extending the campaign reuses the stored prefix: trial params do
	// not depend on the trial count.
	bigger := spec
	bigger.Trials = 14
	third, err := New(quickSuite()).WithStore(st2).Run(context.Background(), bigger, nil)
	if err != nil {
		t.Fatal(err)
	}
	if third.Resumed != 10 || third.Executed != 4 {
		t.Fatalf("extended campaign: resumed %d, executed %d, want 10/4", third.Resumed, third.Executed)
	}
}

// TestCampaignCancellation pins that cancellation surfaces as an error
// while finished trials persist for resumption.
func TestCampaignCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := quickSpec("shrec", 30)

	ctx, cancel := context.WithCancel(context.Background())
	var cancelled bool
	_, err = New(quickSuite()).WithStore(st).Run(ctx, spec, func(p Progress) {
		if p.Done >= 5 && !cancelled {
			cancelled = true
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, err := New(quickSuite()).WithStore(st2).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed < 5 {
		t.Fatalf("only %d trials survived the cancellation", res.Resumed)
	}
	if res.Resumed+res.Executed != 30 {
		t.Fatalf("resumed %d + executed %d != 30", res.Resumed, res.Executed)
	}
}

// TestProgressSnapshots pins the progress stream: monotone Done, correct
// Total, and a final snapshot covering every trial.
func TestProgressSnapshots(t *testing.T) {
	var last Progress
	n := 0
	res, err := New(quickSuite()).Run(context.Background(), quickSpec("shrec", 8),
		func(p Progress) {
			if p.Total != 8 {
				t.Errorf("snapshot total = %d, want 8", p.Total)
			}
			if p.Done < last.Done {
				t.Errorf("Done went backwards: %d after %d", p.Done, last.Done)
			}
			last = p
			n++
		})
	if err != nil {
		t.Fatal(err)
	}
	if last.Done != 8 {
		t.Fatalf("final snapshot Done = %d, want 8", last.Done)
	}
	if got := res.Counts(); got != last.Counts {
		t.Fatalf("final snapshot counts %+v != result counts %+v", last.Counts, got)
	}
	if n == 0 {
		t.Fatal("progress callback never fired")
	}
}

// TestNormalizeErrors pins spec validation.
func TestNormalizeErrors(t *testing.T) {
	e := New(quickSuite())
	bad := []Spec{
		{Machine: "nope", Benchmark: "crafty"},
		{Machine: "shrec", Benchmark: "nope"},
		{Machine: "shrec", Benchmark: "crafty", FaultRate: 1.5},
		{Machine: "shrec", Benchmark: "crafty", Trials: -1},
		{Machine: "shrec", Benchmark: "crafty", WindowLo: 10, WindowHi: 5},
		{Machine: "shrec", Benchmark: "crafty", MaxCycles: -3},
	}
	for i, spec := range bad {
		if _, err := e.Run(context.Background(), spec, nil); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestHangClassification drives a real hang through the full stack: a
// fault rate high enough that recovery storms exceed the cycle budget.
func TestHangClassification(t *testing.T) {
	spec := quickSpec("shrec", 4)
	spec.FaultRate = 0.5 // a fault every other instruction: recovery storm
	// Replay storms burn fetch sequence numbers; widen the window far past
	// the measured region so injection cannot self-disable, and pin an
	// explicit cycle budget the storm cannot meet.
	spec.WindowHi = spec.MeasureInstrs * 1000
	spec.MaxCycles = 1_000
	res, err := New(quickSuite()).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Counts(); c.Hang != len(res.Trials) {
		t.Fatalf("expected every trial to hang at rate 0.5, got %+v", c)
	}
}
