package campaign

import (
	"context"
	"testing"
)

// TestMEEKCampaignClassification pins the MEEK protection claim at the
// campaign level: the checker-lane compare catches every materialized
// fault before it silently corrupts architectural state.
func TestMEEKCampaignClassification(t *testing.T) {
	res, err := New(quickSuite()).Run(context.Background(), quickSpec("meek@2", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c.SDC != 0 {
		t.Fatalf("MEEK campaign produced %d SDC trials", c.SDC)
	}
	if c.Detected == 0 {
		t.Fatal("MEEK campaign detected nothing; rate/window too narrow for the test")
	}
	for i, tr := range res.Trials {
		if tr.FaultsUnchecked != 0 {
			t.Fatalf("trial %d: MEEK checks everything but recorded %d unchecked faults", i, tr.FaultsUnchecked)
		}
	}
}

// TestMultiContextSHRECCampaignClassification pins that absorbing checker
// stalls into extra hardware contexts does not open a detection hole: the
// cross-context compare still catches every fault.
func TestMultiContextSHRECCampaignClassification(t *testing.T) {
	res, err := New(quickSuite()).Run(context.Background(), quickSpec("shrec+ctx4", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c.SDC != 0 {
		t.Fatalf("SHREC+ctx4 campaign produced %d SDC trials", c.SDC)
	}
	if c.Detected == 0 {
		t.Fatal("SHREC+ctx4 campaign detected nothing; rate/window too narrow for the test")
	}
}

// TestFLEXOnRegionCampaign runs FLEX with a region policy whose checking
// window covers the entire injection window (period 64k, on-region 16k:
// every fetch sequence number in a 2k-warmup/5k-measure campaign stays
// inside the on band). Checked everywhere, FLEX must match the SHREC
// protection claim, and conditional coverage must coincide with global
// coverage.
func TestFLEXOnRegionCampaign(t *testing.T) {
	res, err := New(quickSuite()).Run(context.Background(), quickSpec("flex@64k:on16k", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c.SDC != 0 {
		t.Fatalf("on-region FLEX campaign produced %d SDC trials", c.SDC)
	}
	if c.Detected == 0 {
		t.Fatal("on-region FLEX campaign detected nothing")
	}
	for i, tr := range res.Trials {
		if tr.FaultsUnchecked != 0 {
			t.Fatalf("trial %d: fault classified off-region inside the on band (%d unchecked)", i, tr.FaultsUnchecked)
		}
	}
	if cov, ccov := res.Coverage(), res.ConditionalCoverage(); cov != ccov {
		t.Fatalf("with everything checked, conditional coverage %+v != coverage %+v", ccov, cov)
	}
}

// TestFLEXOffRegionCampaign positions the same campaign entirely outside
// the checking window (on-region 1k ends before the 2k-instruction warmup
// does). Faults now sail past the disabled checker: silent corruption
// reappears globally, every fault is recorded as unchecked, and the
// conditional-coverage denominator — coverage given that checking applied
// — excludes all of these trials rather than blaming the checker for a
// region the policy chose not to look at.
func TestFLEXOffRegionCampaign(t *testing.T) {
	res, err := New(quickSuite()).Run(context.Background(), quickSpec("flex@64k:on1k", 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c.Detected != 0 {
		t.Fatalf("checking is disabled across the window but %d trials detected", c.Detected)
	}
	if c.SDC == 0 {
		t.Fatal("off-region FLEX campaign produced no SDC; faults are not landing off-region")
	}
	faulted := 0
	for i, tr := range res.Trials {
		if tr.Faults == 0 {
			continue
		}
		faulted++
		if tr.FaultsUnchecked != tr.Faults {
			t.Fatalf("trial %d: %d of %d faults counted as checked in an off band", i, tr.Faults-tr.FaultsUnchecked, tr.Faults)
		}
	}
	if got := res.UncheckedOnlyTrials(); got != faulted {
		t.Fatalf("UncheckedOnlyTrials = %d, want every faulted trial (%d)", got, faulted)
	}
	ccov := res.ConditionalCoverage()
	if ccov.N != 0 {
		t.Fatalf("conditional denominator %d, want 0: every fault landed where checking was off", ccov.N)
	}
	// Global coverage still counts program-masked off-region faults as
	// covered, so it need not be zero — but with SDC present it cannot be
	// full, while the conditional estimate above excludes the trials
	// entirely instead of averaging them in.
	if cov := res.Coverage(); cov.N != faulted || cov.Point >= 1 {
		t.Fatalf("global coverage %+v over %d faulted trials should be degraded, not full", cov, faulted)
	}
}
