package campaign

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// recoverySpec is quickSpec under a checkpoint/rollback policy tight
// enough that trial-sized runs exercise rollbacks.
func recoverySpec(trials int) Spec {
	spec := quickSpec("shrec", trials)
	spec.Recovery = "ckpt@256+depth2"
	return spec
}

// TestRecoveryCampaign pins the end-to-end recovery path: trials carry
// per-fault recovery outcomes, the summary aggregates them, and the
// campaign reports availability and MTTF with confidence bounds.
func TestRecoveryCampaign(t *testing.T) {
	res, err := New(quickSuite()).Run(context.Background(), recoverySpec(40), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Recovery != "ckpt@256+depth2" {
		t.Fatalf("normalized recovery mode %q", res.Spec.Recovery)
	}
	// The golden run itself ran under the policy (so its signature is the
	// recovery run's committed stream) but injected nothing.
	if res.Golden.Recovery == nil || res.Golden.Recovery.Detected() != 0 {
		t.Fatalf("golden recovery trace: %+v", res.Golden.Recovery)
	}

	rs := res.RecoverySummary()
	if rs == nil {
		t.Fatal("recovery campaign produced no summary")
	}
	if rs.Policy.Interval != 256 || rs.Policy.Depth != 2 {
		t.Fatalf("summary policy %+v", rs.Policy)
	}
	if rs.Rollbacks == 0 {
		t.Fatalf("campaign produced no rollbacks (summary %+v); fixture exercises nothing", rs)
	}
	if rs.LostWork <= 0 || rs.Checkpoints == 0 {
		t.Fatalf("implausible summary: %+v", rs)
	}
	if rs.MeanRecoveryLatency <= float64(rs.Policy.RestoreCost) {
		t.Errorf("mean recovery latency %g does not exceed the restore cost", rs.MeanRecoveryLatency)
	}
	if rs.CkptOverhead <= 0 || rs.FaultsPerCycle <= 0 {
		t.Errorf("degenerate rates in summary: %+v", rs)
	}

	// Trial records agree with the summary totals.
	var rollbacks, detected uint64
	for _, tr := range res.Trials {
		rollbacks += tr.Rollbacks
		detected += tr.Detected
		if tr.Rollbacks > 0 && tr.Outcome != OutcomeDetected && tr.Outcome != OutcomeSDC && tr.Outcome != OutcomeHang {
			t.Errorf("trial %d rolled back but classified %s", tr.Index, tr.Outcome)
		}
		if tr.Rollbacks > 0 && tr.DetectLatency <= 0 {
			t.Errorf("trial %d rolled back with zero detect latency", tr.Index)
		}
	}
	if rollbacks != rs.Rollbacks {
		t.Errorf("trial rollbacks sum %d != summary %d", rollbacks, rs.Rollbacks)
	}
	if detected < rs.Detected() {
		t.Errorf("trial detected sum %d < summary detections %d", detected, rs.Detected())
	}

	// SHREC never corrupts silently, but a recovery trial can legitimately
	// hang: each rollback re-randomizes the rest of the run, so a trial
	// can storm through rollbacks until its lost work exhausts the cycle
	// budget — the recovery-livelock class the watchdog exists for. Such
	// trials must carry their rollback provenance.
	c := res.Counts()
	if c.SDC != 0 {
		t.Errorf("recovery campaign produced silent corruption: %+v", c)
	}
	for _, tr := range res.Trials {
		if tr.Outcome == OutcomeHang && tr.Rollbacks == 0 {
			t.Errorf("hung trial %d carries no rollbacks; not a recovery storm: %+v", tr.Index, tr)
		}
	}
	if cov := res.Coverage(); cov.Point <= 0.9 {
		t.Errorf("recovery campaign broke coverage: %+v", cov)
	}
	av, ok := res.Availability(DefaultRepairCycles)
	if !ok {
		t.Fatal("Availability reported no recovery policy")
	}
	if av.Point <= 0 || av.Point >= 1 {
		t.Errorf("availability %g out of (0,1): overhead must degrade it without zeroing it", av.Point)
	}
	if !(av.Lo <= av.Point && av.Point <= av.Hi) {
		t.Errorf("availability bounds disordered: %+v", av)
	}
	if rs.Overruns+rs.Unrecoverable == 0 && av.MTTFCycles != 0 {
		t.Errorf("no fatal failures but finite MTTF %g", av.MTTFCycles)
	}

	text := res.Report().String()
	for _, want := range []string{"availability %", "mean recovery latency (cycles)", "rollbacks"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report lacks %q:\n%s", want, text)
		}
	}
}

// TestRecoveryCampaignMachineSpecPolicy pins the other entry point: a
// checkpoint-bearing machine spec implies the recovery policy at default
// costs.
func TestRecoveryCampaignMachineSpecPolicy(t *testing.T) {
	spec := quickSpec("shrec+ckpt256", 1)
	ns, err := Normalize(spec, quickSuite().Options())
	if err != nil {
		t.Fatal(err)
	}
	if ns.Recovery != "ckpt@256" {
		t.Fatalf("machine-implied recovery mode %q, want ckpt@256", ns.Recovery)
	}
	// And a malformed mode is rejected statically.
	bad := quickSpec("shrec", 1)
	bad.Recovery = "ckpt@64k+width2"
	if _, err := Normalize(bad, quickSuite().Options()); err == nil {
		t.Fatal("malformed recovery mode accepted")
	}
}

// TestRecoveryCampaignKillAndResume is the determinism acceptance pin: a
// recovery campaign killed mid-flight and resumed from the store is
// byte-identical to the uninterrupted campaign — rollback re-execution
// included.
func TestRecoveryCampaignKillAndResume(t *testing.T) {
	const trials = 30
	spec := recoverySpec(trials)

	whole, err := New(quickSuite()).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var killedAt int
	_, err = New(quickSuite()).WithStore(st).Run(ctx, spec, func(p Progress) {
		if p.Done >= 5 && killedAt == 0 {
			killedAt = p.Done
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("killed campaign reported success")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumed, err := New(quickSuite()).WithStore(st2).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < killedAt {
		t.Fatalf("resumed %d trials, but %d had finished before the kill", resumed.Resumed, killedAt)
	}
	if resumed.Resumed+resumed.Executed != trials {
		t.Fatalf("resumed %d + executed %d != %d", resumed.Resumed, resumed.Executed, trials)
	}
	if !reflect.DeepEqual(whole.Trials, resumed.Trials) {
		t.Fatal("resumed recovery campaign diverged from the uninterrupted one")
	}
	if !reflect.DeepEqual(whole.RecoverySummary(), resumed.RecoverySummary()) {
		t.Fatal("resumed recovery summary diverged")
	}
}
