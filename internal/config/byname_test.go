package config_test

import (
	"testing"

	"repro/internal/config"
)

func TestByName(t *testing.T) {
	cases := map[string]struct {
		mode config.Mode
		name string
	}{
		"ss1":      {config.ModeSS1, "SS1"},
		"SS1":      {config.ModeSS1, "SS1"},
		"ss2":      {config.ModeSS2, "SS2"},
		"shrec":    {config.ModeSHREC, "SHREC"},
		"diva":     {config.ModeSHREC, "DIVA"},
		"o3rs":     {config.ModeO3RS, "O3RS"},
		"ss2+s":    {config.ModeSS2, "SS2+S"},
		"ss2+xscb": {config.ModeSS2, "SS2+XSCB"},
	}
	for in, want := range cases {
		m, err := config.ByName(in)
		if err != nil {
			t.Errorf("config.ByName(%q): %v", in, err)
			continue
		}
		if m.Mode != want.mode || m.Name != want.name {
			t.Errorf("config.ByName(%q) = %s/%v, want %s/%v", in, m.Name, m.Mode, want.name, want.mode)
		}
	}
}

func TestByNameFactors(t *testing.T) {
	m, err := config.ByName("ss2+sc")
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxStagger == 0 || m.ISQSize != 256 || m.ROBSize != 1024 {
		t.Fatalf("factors not applied: %+v", m)
	}
	if m.IssueWidth != 8 || m.DecodeWidth != 8 {
		t.Fatal("unrequested factors applied")
	}
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"", "ss3", "ss2+q", "checker"} {
		if _, err := config.ByName(bad); err == nil {
			t.Errorf("config.ByName(%q) accepted", bad)
		}
	}
}
