package config_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/config"
)

func TestByName(t *testing.T) {
	cases := map[string]struct {
		mode config.Mode
		name string
	}{
		"ss1":      {config.ModeSS1, "SS1"},
		"SS1":      {config.ModeSS1, "SS1"},
		"ss2":      {config.ModeSS2, "SS2"},
		"shrec":    {config.ModeSHREC, "SHREC"},
		"diva":     {config.ModeSHREC, "DIVA"},
		"o3rs":     {config.ModeO3RS, "O3RS"},
		"ss2+s":    {config.ModeSS2, "SS2+S"},
		"ss2+xscb": {config.ModeSS2, "SS2+XSCB"},
	}
	for in, want := range cases {
		m, err := config.ByName(in)
		if err != nil {
			t.Errorf("config.ByName(%q): %v", in, err)
			continue
		}
		if m.Mode != want.mode || m.Name != want.name {
			t.Errorf("config.ByName(%q) = %s/%v, want %s/%v", in, m.Name, m.Mode, want.name, want.mode)
		}
	}
}

func TestByNameFactors(t *testing.T) {
	m, err := config.ByName("ss2+sc")
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxStagger == 0 || m.ISQSize != 256 || m.ROBSize != 1024 {
		t.Fatalf("factors not applied: %+v", m)
	}
	if m.IssueWidth != 8 || m.DecodeWidth != 8 {
		t.Fatal("unrequested factors applied")
	}
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"", "ss3", "ss2+q", "checker"} {
		if _, err := config.ByName(bad); err == nil {
			t.Errorf("config.ByName(%q) accepted", bad)
		}
	}
}

// TestByNameRejectsContradictions pins that specs combining tokens whose
// machines cannot coexist fail at parse time, each with a message naming
// the offending token — not later in Validate, and never by silently
// dropping a modifier.
func TestByNameRejectsContradictions(t *testing.T) {
	bad := []string{
		// +ctx is SHREC-mode hardware; no other base can carry it.
		"ss1+ctx4", "ss2+ctx2", "ss2+s+ctx2", "o3rs+ctx2", "meek@2+ctx2",
		"flex@64k:on16k+ctx2",
		// Base-token value ranges.
		"meek@0", "meek@9", "meek@-1", "meek@1.5",
		"flex@", "flex@64k", "flex@64k:on64k", "flex@64k:on128k",
		"flex@0:on0", "flex@1:on1", "flex@64k:on0",
		// Modifier value ranges.
		"shrec+ctx1", "shrec+ctx9", "shrec+rate2", "shrec+ckpt32",
		"shrec+depth0", "shrec+depth17", "shrec+mshr0", "shrec@x0",
		// One of each kind.
		"shrec+ctx2+ctx4", "ss1+rate1e-4+rate2e-4",
	}
	for _, spec := range bad {
		if m, err := config.ByName(spec); err == nil {
			t.Errorf("config.ByName(%q) accepted as %q", spec, m.Name)
		}
	}
}

// specCorpus builds one deterministic pseudo-random spec string per call:
// a random base (including the detection-mode bases with their value
// syntax), a random compatible modifier subset with valid values, shuffled
// token order, random casing. The properties below hold for every such
// string.
func specCorpus(rng *rand.Rand) string {
	bases := []string{
		"ss1", "ss2", "ss2+s", "ss2+sc", "ss2+xscb", "shrec", "diva", "o3rs",
		"meek", "meek@1", "meek@2", "meek@4", "meek@8",
		"flex", "flex@64k:on16k", "flex@1m:on4k", "flex@512:on128",
	}
	base := bases[rng.Intn(len(bases))]
	type tok struct {
		s    string
		vals []string
	}
	pool := []tok{
		{"@x", []string{"0.5", "1.5", "2"}},
		{"+stagger", []string{"0", "64", "256"}},
		{"+fux", []string{"0.5", "2"}},
		{"+mshr", []string{"8", "32"}},
		{"+ports", []string{"1", "2", "4"}},
		{"+rate", []string{"0.0001", "1e-4", "0.5"}},
		{"+ckpt", []string{"64", "8192", "64k", "1m"}},
		{"+depth", []string{"1", "4", "16"}},
	}
	if base == "shrec" || base == "diva" {
		pool = append(pool, tok{"+ctx", []string{"2", "4", "8"}})
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	spec := base
	for _, tk := range pool[:rng.Intn(len(pool)+1)] {
		spec += tk.s + tk.vals[rng.Intn(len(tk.vals))]
	}
	if rng.Intn(2) == 1 {
		spec = strings.ToUpper(spec)
	}
	return spec
}

// TestSpecRoundTripProperty is the grammar's property test: for thousands
// of generated specs, parsing must succeed, the canonical rendering must
// parse back to the identical machine (the Spec/ParseSpec contract), the
// canonical form must be a fixed point, and modifier order must not
// matter.
func TestSpecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		spec := specCorpus(rng)
		m, err := config.ByName(spec)
		if err != nil {
			t.Fatalf("generated spec %q rejected: %v", spec, err)
		}
		back, err := config.ParseSpec(m.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q of %q rejected: %v", m.Spec(), spec, err)
		}
		if back != m {
			t.Fatalf("round trip of %q via %q drifted:\n%+v\nvs\n%+v", spec, m.Spec(), back, m)
		}
		if back.Spec() != m.Spec() {
			t.Fatalf("canonical form of %q not a fixed point: %q -> %q", spec, m.Spec(), back.Spec())
		}
	}
}

// TestSpecOrderInsensitive pins that the same modifier set written in any
// order, any case, parses to byte-identical machines with the canonical
// name.
func TestSpecOrderInsensitive(t *testing.T) {
	cases := []struct{ a, b, canon string }{
		{"shrec+ctx4+ckpt64k", "shrec+ckpt64k+ctx4", "SHREC+ctx4+ckpt64k"},
		{"meek@4+mshr32+rate1e-4", "MEEK@4+RATE0.0001+MSHR32", "MEEK@4+mshr32+rate0.0001"},
		{"flex@1m:on4k+ports2+stagger64", "FLEX@1M:ON4K+STAGGER64+PORTS2", "FLEX@1m:on4k+stagger64+ports2"},
		{"diva+depth4+ctx2@x1.5", "diva@x1.5+ctx2+depth4", "DIVA@x1.5+ctx2+depth4"},
	}
	for _, tc := range cases {
		ma, erra := config.ByName(tc.a)
		mb, errb := config.ByName(tc.b)
		if erra != nil || errb != nil {
			t.Errorf("parse failed: %q (%v) / %q (%v)", tc.a, erra, tc.b, errb)
			continue
		}
		if ma != mb {
			t.Errorf("order changed the machine: %q vs %q", tc.a, tc.b)
		}
		if ma.Name != tc.canon {
			t.Errorf("canonical name of %q = %q, want %q", tc.a, ma.Name, tc.canon)
		}
	}
}

// FuzzSpecRoundTrip feeds arbitrary strings to the parser. The invariant
// is one-sided: anything the parser accepts must re-render canonically
// and parse back to the identical machine. (Rejection is fine — most
// inputs are garbage — but acceptance commits the grammar to a canonical
// round trip.)
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("shrec")
	f.Add("meek@4+rate1e-4")
	f.Add("flex@1m:on4k+ckpt64k+depth4")
	f.Add("SS2+XSCB@x1.5+stagger256")
	f.Add("diva+ctx8+mshr32+ports4")
	f.Add("ss1+ctx4")
	f.Add("meek@0")
	f.Add("flex@")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := config.ByName(spec)
		if err != nil {
			return
		}
		back, err := config.ParseSpec(m.Spec())
		if err != nil {
			t.Fatalf("accepted %q but canonical %q rejected: %v", spec, m.Spec(), err)
		}
		if back != m {
			t.Fatalf("accepted %q but round trip via %q drifted", spec, m.Spec())
		}
	})
}
