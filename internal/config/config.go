// Package config defines machine configurations: the SS1 baseline of the
// paper's Table 1, the SS2 symmetric redundant machine with the X/S/C/B
// factor combinations of Table 2, and the SHREC machine of Section 4.
package config

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fu"
)

// Mode selects the execution model.
type Mode uint8

const (
	// ModeSS1 is conventional single-threaded execution (no redundancy).
	ModeSS1 Mode = iota
	// ModeSS2 is symmetric redundant execution: every instruction is
	// duplicated at decode into M- and R-thread copies that each occupy
	// pipeline resources; results are compared pairwise at retirement.
	ModeSS2
	// ModeSHREC is asymmetric redundant execution: the M-thread runs on
	// the out-of-order pipeline and an in-order checker re-executes
	// completed instructions with leftover issue slots and functional
	// units before retirement.
	ModeSHREC
	// ModeO3RS is the Mendelson & Suri design the paper compares against:
	// each instruction occupies a single ISQ and ROB entry but issues
	// twice (in rapid succession) before the entry is released; the two
	// results are compared at retirement. It relieves the C and B
	// factors by construction but cannot stagger. The paper approximates
	// it as SS2+C+B; this mode implements the real mechanism.
	ModeO3RS
	// ModeMEEK is MEEK-style heterogeneous detection (arXiv 2504.01347):
	// the out-of-order M-stream is checked by a small number of narrow
	// in-order checker lanes that consume completed instructions from a
	// retirement-log FIFO. The OoO core never shares issue bandwidth or
	// functional units with the checkers; backpressure appears only when
	// the retirement log fills.
	ModeMEEK
	// ModeFLEX is FlexStep-style per-region detection (arXiv 2503.13848):
	// a SHREC-shaped shared checker that is enabled only inside selected
	// instruction windows (FlexOn out of every FlexPeriod fetched
	// instructions). Faults in checking-disabled regions escape to
	// retirement; campaigns account them against conditional, not global,
	// coverage.
	ModeFLEX
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSS1:
		return "SS1"
	case ModeSS2:
		return "SS2"
	case ModeSHREC:
		return "SHREC"
	case ModeO3RS:
		return "O3RS"
	case ModeMEEK:
		return "MEEK"
	case ModeFLEX:
		return "FLEX"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Factors are the four knobs of the paper's factorial design (Section 3).
// X, C, and B double the corresponding resources of an SS2 machine; S
// enables an elastic stagger between the redundant threads with static
// issue priority to the M-thread.
type Factors struct {
	X bool // double issue width and functional units
	S bool // allow elastic stagger (default 256 instructions)
	C bool // double ISQ and ROB capacity
	B bool // double decode and retirement bandwidth
}

// String renders the enabled factors like the paper's Table 2 rows
// ("X S C B", "- S - -", ...).
func (f Factors) String() string {
	mark := func(on bool, s string) string {
		if on {
			return s
		}
		return "-"
	}
	return strings.Join([]string{
		mark(f.X, "X"), mark(f.S, "S"), mark(f.C, "C"), mark(f.B, "B"),
	}, " ")
}

// AllFactorCombinations enumerates the sixteen Table 2 configurations in
// the paper's row order (B varies fastest, then C, S, X).
func AllFactorCombinations() []Factors {
	out := make([]Factors, 0, 16)
	for _, x := range []bool{false, true} {
		for _, s := range []bool{false, true} {
			for _, c := range []bool{false, true} {
				for _, b := range []bool{false, true} {
					out = append(out, Factors{X: x, S: s, C: c, B: b})
				}
			}
		}
	}
	return out
}

// DefaultStagger is the elastic stagger bound the paper uses for the
// S-factor (up to 256 instructions).
const DefaultStagger = 256

// Machine is a complete machine configuration.
type Machine struct {
	// Name identifies the configuration in reports.
	Name string
	// Mode selects single-threaded, symmetric redundant, or SHREC
	// execution.
	Mode Mode

	// DecodeWidth, IssueWidth, and RetireWidth are per-cycle bandwidths.
	DecodeWidth, IssueWidth, RetireWidth int
	// ISQSize, ROBSize, and LSQSize are structure capacities. In SS2 both
	// thread copies share these structures.
	ISQSize, ROBSize, LSQSize int

	// FU configures the functional unit pool.
	FU fu.Config
	// Mem configures the cache hierarchy.
	Mem cache.Config
	// Bpred configures the branch predictor complex.
	Bpred bpred.Config

	// BTBMissPenalty is the fetch bubble when a predicted-taken branch
	// misses in the BTB.
	BTBMissPenalty int

	// MaxStagger bounds how far the M-thread's dispatch may lead the
	// R-thread's in SS2 (0 = lockstep duplication at decode). Ignored in
	// other modes; SHREC staggers naturally up to the ROB size.
	MaxStagger int

	// CheckerWindow is the SHREC in-order issue window (Section 4.2:
	// eight entries, with the ISQ reduced commensurately).
	CheckerWindow int

	// CheckerDedicatedFU gives the in-order checker its own functional
	// unit pool and issue bandwidth instead of sharing the main
	// pipeline's — the DIVA design of Section 4.1, which buys back the
	// contention at a significant hardware cost (the paper notes the
	// EV8's functional units occupy area comparable to 1MB of L2).
	CheckerDedicatedFU bool

	// CheckerLanes is the number of narrow in-order checker lanes in MEEK
	// mode (1..MaxCheckerLanes); zero everywhere else.
	CheckerLanes int

	// Contexts, when 2 or more, gives the SHREC checker that many
	// hardware contexts: a scan stalled on an incomplete instruction
	// switches to the next completed region instead of idling, up to
	// Contexts-1 switches per cycle. Zero (or one) is the classic
	// single-context checker. SHREC mode only.
	Contexts int

	// FlexPeriod and FlexOn define FLEX mode's region policy: checking is
	// enabled for instructions whose fetch sequence number satisfies
	// seq%FlexPeriod < FlexOn. Both zero outside FLEX mode.
	FlexPeriod, FlexOn uint64

	// FaultRate is the per-instruction probability of injecting a
	// transient result corruption (0 disables injection). Used by the
	// fault campaign engine, the fault-injection example, and recovery
	// tests.
	FaultRate float64
	// FaultSeed seeds the fault injector. Campaigns derive a distinct
	// seed per trial, so trials sample independent fault sites.
	FaultSeed uint64
	// FaultWindowLo and FaultWindowHi bound injection to correct-path
	// instructions whose fetch sequence number lies in [Lo, Hi); both
	// zero means unbounded. Fault campaigns confine injection to the
	// measured region this way, so the warmup phase stays bit-identical
	// to the fault-free golden run it is compared against.
	FaultWindowLo, FaultWindowHi uint64

	// CkptInterval, when positive, wraps the measured phase in periodic
	// architectural checkpoints: one capture every CkptInterval retired
	// instructions, giving detected faults a rollback target (see
	// internal/recovery). Zero disables checkpointing entirely — the
	// engine's zero-allocation fast path is untouched.
	CkptInterval uint64
	// CkptDepth is how many checkpoints are retained for rollback
	// (0 = the recovery default of 1 when CkptInterval is set). Deeper
	// retention recovers faults whose detection latency crosses a
	// checkpoint boundary, at proportional capture-memory cost.
	CkptDepth int
}

// SS1 returns the paper's Table 1 baseline: an 8-wide out-of-order
// superscalar with a 128-entry ISQ, 512-entry ROB, and 64-entry LSQ.
func SS1() Machine {
	return Machine{
		Name:           "SS1",
		Mode:           ModeSS1,
		DecodeWidth:    8,
		IssueWidth:     8,
		RetireWidth:    8,
		ISQSize:        128,
		ROBSize:        512,
		LSQSize:        64,
		FU:             fu.DefaultConfig(),
		Mem:            cache.DefaultConfig(),
		Bpred:          bpred.DefaultConfig(),
		BTBMissPenalty: 2,
	}
}

// SS2 returns the symmetric redundant machine with the given factors
// applied, as enumerated in Table 2. With no factors it is the plain SS2
// of Section 2.2 (same resources as SS1, doubled workload).
func SS2(f Factors) Machine {
	m := SS1()
	m.Mode = ModeSS2
	m.Name = "SS2"
	if f != (Factors{}) {
		m.Name = "SS2+" + strings.ReplaceAll(strings.ReplaceAll(f.String(), " ", ""), "-", "")
	}
	if f.X {
		m.IssueWidth *= 2
		m.FU = m.FU.Double()
		// sim-outorder treats cache ports as functional-unit resources, so
		// the paper's X-factor (issue + FU bandwidth) scales them too.
		m.Mem.MemPorts *= 2
	}
	if f.C {
		m.ISQSize *= 2
		m.ROBSize *= 2
	}
	if f.B {
		m.DecodeWidth *= 2
		m.RetireWidth *= 2
	}
	if f.S {
		m.MaxStagger = DefaultStagger
	}
	return m
}

// SHREC returns the SHREC machine of Section 4: SS1 resources with the ISQ
// reduced to 120 entries and an 8-entry in-order checker window sharing the
// issue bandwidth and functional units.
func SHREC() Machine {
	m := SS1()
	m.Mode = ModeSHREC
	m.Name = "SHREC"
	m.CheckerWindow = 8
	m.ISQSize = 128 - 8
	return m
}

// O3RS returns the out-of-order reliable superscalar of Mendelson & Suri:
// SS1 resources with double execution from shared ISQ/ROB entries. The
// paper's Table 2 approximates this design as SS2+C+B.
func O3RS() Machine {
	m := SS1()
	m.Mode = ModeO3RS
	m.Name = "O3RS"
	return m
}

// DIVA returns the DIVA-style machine of Section 4.1: asymmetric
// re-execution like SHREC, but the in-order checker owns a dedicated set
// of functional units and issue bandwidth, so it never competes with the
// out-of-order pipeline. The ISQ keeps its full 128 entries (the checker
// is a physically separate pipeline). The paper expects DIVA to track SS1
// closely.
func DIVA() Machine {
	m := SS1()
	m.Mode = ModeSHREC
	m.Name = "DIVA"
	m.CheckerWindow = 8
	m.CheckerDedicatedFU = true
	return m
}

// Bounds on the modern-mode structural knobs, enforced by Validate and
// the spec parser. MeekLogDepth is the retirement-log FIFO capacity every
// MEEK machine shares: deep enough to ride out checker-lane latency
// bursts, small enough that a sustained checker shortfall backpressures
// retirement instead of hiding it.
const (
	MaxCheckerLanes     = 8
	MaxContexts         = 8
	DefaultCheckerLanes = 2
	MeekLogDepth        = 64
	DefaultFlexPeriod   = 64 * 1024
	DefaultFlexOn       = 16 * 1024
)

// MEEK returns a MEEK-style heterogeneous machine: the SS1 out-of-order
// core checked by n narrow in-order lanes consuming a retirement-log
// FIFO. Unlike SHREC, the checker never competes for the main pipeline's
// issue slots or functional units; unlike DIVA, each lane is a minimal
// in-order core rather than a mirrored FU pool.
func MEEK(n int) Machine {
	m := SS1()
	m.Mode = ModeMEEK
	m.Name = fmt.Sprintf("MEEK@%d", n)
	m.CheckerLanes = n
	return m
}

// FLEX returns the default FlexStep-style machine: SHREC's shared
// checker, enabled for the first 16k of every 64k fetched instructions
// ("FLEX@64k:on16k"). FlexMachine builds other region policies.
func FLEX() Machine {
	return FlexMachine(DefaultFlexPeriod, DefaultFlexOn)
}

// FlexMachine returns a FLEX machine with the given region policy:
// checking enabled for instructions with seq%period < on.
func FlexMachine(period, on uint64) Machine {
	m := SHREC()
	m.Mode = ModeFLEX
	m.Name = "FLEX@" + kmString(period) + ":on" + kmString(on)
	m.FlexPeriod, m.FlexOn = period, on
	return m
}

// WithXScale returns the machine with issue width, functional unit
// counts, and memory ports scaled by f (Figure 8's 0.5X-2X sweep), each
// rounded to the nearest integer with a floor of one. The result is named
// with the canonical "@x" spec modifier ("SHREC@x1.5"), so ByName parses
// it back.
func (m Machine) WithXScale(f float64) Machine {
	out := m.xScaled(f)
	out.Name = specName(m.Name, out, modXScale, f, true)
	return out
}

// xScaled applies the X-scaling field changes without renaming.
func (m Machine) xScaled(f float64) Machine {
	out := m
	w := int(float64(m.IssueWidth)*f + 0.5)
	if w < 1 {
		w = 1
	}
	out.IssueWidth = w
	out.FU = m.FU.Scale(f)
	p := int(float64(m.Mem.MemPorts)*f + 0.5)
	if p < 1 {
		p = 1
	}
	out.Mem.MemPorts = p
	return out
}

// WithStagger returns the machine with the given maximum stagger (Figure
// 5's sweep), named with the canonical "+stagger" spec modifier.
func (m Machine) WithStagger(n int) Machine {
	out := m
	out.MaxStagger = n
	out.Name = specName(m.Name, out, modStagger, float64(n), false)
	return out
}

// WithFUScale returns the machine with the functional unit pool alone
// scaled by f (issue width and memory ports untouched, unlike WithXScale),
// named with the canonical "+fux" spec modifier. The explorer uses it to
// separate FU-pool pressure from issue bandwidth.
func (m Machine) WithFUScale(f float64) Machine {
	out := m
	out.FU = m.FU.Scale(f)
	out.Name = specName(m.Name, out, modFUScale, f, true)
	return out
}

// modified applies one modifier's field changes without renaming; apply
// composes these, so the grammar's semantics live in exactly one place
// per kind (shared with the With* helpers where the change is one line).
func (m Machine) modified(k modKind, v float64) Machine {
	out := m
	switch k {
	case modXScale:
		out = m.xScaled(v)
	case modStagger:
		out.MaxStagger = int(v)
	case modFUScale:
		out.FU = m.FU.Scale(v)
	case modMSHR:
		out.Mem.MSHREntries = int(v)
	case modPorts:
		out.Mem.MemPorts = int(v)
	case modRate:
		out.FaultRate = v
	case modCkpt:
		out.CkptInterval = uint64(v)
	case modDepth:
		out.CkptDepth = int(v)
	case modCtx:
		out.Contexts = int(v)
	}
	return out
}

// WithContexts returns the SHREC machine with n hardware checker
// contexts, named with the canonical "+ctx" spec modifier
// ("SHREC+ctx4"). The spec parser rejects the modifier on non-SHREC
// bases.
func (m Machine) WithContexts(n int) Machine {
	out := m
	out.Contexts = n
	out.Name = specName(m.Name, out, modCtx, float64(n), false)
	return out
}

// WithCheckerLanes returns the MEEK machine with n checker lanes. The
// lane count lives in the base token ("MEEK@4"), not in a modifier, so
// the name is recomputed by re-basing rather than by specName.
func (m Machine) WithCheckerLanes(n int) Machine {
	out := m
	out.CheckerLanes = n
	out.Name = rebaseName(m.Name, out, fmt.Sprintf("meek@%d", n))
	return out
}

// WithRegionDuty returns the FLEX machine with its checking-enabled
// fraction set to d of the period (clamped to [1, period-1]
// instructions). A machine without a period yet gets the default. Like
// the lane count, the duty lives in the base token ("FLEX@64k:on16k").
func (m Machine) WithRegionDuty(d float64) Machine {
	out := m
	if out.FlexPeriod == 0 {
		out.FlexPeriod = DefaultFlexPeriod
	}
	on := uint64(d*float64(out.FlexPeriod) + 0.5)
	if on < 1 {
		on = 1
	}
	if on >= out.FlexPeriod {
		on = out.FlexPeriod - 1
	}
	out.FlexOn = on
	out.Name = rebaseName(m.Name, out, "flex@"+kmString(out.FlexPeriod)+":on"+kmString(on))
	return out
}

// WithMSHRs returns the machine with the data-side MSHR file resized to n
// entries, named with the canonical "+mshr" spec modifier.
func (m Machine) WithMSHRs(n int) Machine {
	out := m
	out.Mem.MSHREntries = n
	out.Name = specName(m.Name, out, modMSHR, float64(n), false)
	return out
}

// WithMemPorts returns the machine with n memory ports, named with the
// canonical "+ports" spec modifier.
func (m Machine) WithMemPorts(n int) Machine {
	out := m
	out.Mem.MemPorts = n
	out.Name = specName(m.Name, out, modPorts, float64(n), false)
	return out
}

// WithFaultRate returns the machine with the per-instruction fault
// injection rate set, named with the canonical "+rate" spec modifier.
// Campaigns set the rate field directly (their trial identity lives in
// the sim cache key, not the name); this helper is for explore points and
// other callers whose machines are identified by spec string.
func (m Machine) WithFaultRate(r float64) Machine {
	out := m
	out.FaultRate = r
	out.Name = specName(m.Name, out, modRate, r, false)
	return out
}

// WithCkptInterval returns the machine with periodic architectural
// checkpointing every n retired instructions (0 disables), named with the
// canonical "+ckpt" spec modifier ("shrec+ckpt64k"; 1024-multiples render
// with k/m suffixes).
func (m Machine) WithCkptInterval(n uint64) Machine {
	out := m
	out.CkptInterval = n
	out.Name = specName(m.Name, out, modCkpt, float64(n), false)
	return out
}

// WithCkptDepth returns the machine retaining n rollback checkpoints,
// named with the canonical "+depth" spec modifier. Meaningful only with a
// checkpoint interval (Validate rejects depth without one).
func (m Machine) WithCkptDepth(n int) Machine {
	out := m
	out.CkptDepth = n
	out.Name = specName(m.Name, out, modDepth, float64(n), false)
	return out
}

// ByName parses a machine specification string: a base machine — "ss1",
// "ss2", "ss2+<factors>" (e.g. "ss2+sc", "ss2+xscb"), "shrec", "diva",
// or "o3rs" — followed by optional modifiers in any order: "@x<f>"
// (issue/FU/port scaling), "+stagger<n>", "+fux<f>" (FU pool scaling),
// "+mshr<n>", "+ports<n>", "+rate<f>" (fault injection), "+ckpt<n>"
// (checkpoint interval, k/m suffixes allowed), and "+depth<n>" (retained
// checkpoints), all case-insensitive. "shrec@x1.5+stagger2" is the SHREC
// machine at 1.5X issue bandwidth with a 2-instruction stagger bound;
// "shrec+ckpt64k+depth2" checkpoints every 65536 instructions retaining
// two. It is the shared parser behind cmd/shrecsim's -machine flag,
// shrecd's request decoding, and the exploration engine's point decoding;
// Machine.Spec renders the inverse.
func ByName(name string) (Machine, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	base, mods, err := splitSpec(lower)
	if err != nil {
		return Machine{}, err
	}
	m, ok, err := baseByName(base)
	if err != nil {
		return Machine{}, err
	}
	if !ok {
		return Machine{}, fmt.Errorf("config: unknown machine %q (want ss1, ss2, ss2+<xscb>, shrec, diva, o3rs, meek@<n>, flex@<period>:on<len>, with optional @x/+stagger/+ctx/+fux/+mshr/+ports/+rate/+ckpt/+depth modifiers)", name)
	}
	return mods.apply(m)
}

// Validate reports structural configuration errors.
func (m *Machine) Validate() error {
	if m.DecodeWidth <= 0 || m.IssueWidth <= 0 || m.RetireWidth <= 0 {
		return fmt.Errorf("%s: non-positive width", m.Name)
	}
	if m.ISQSize <= 0 || m.ROBSize <= 0 || m.LSQSize <= 0 {
		return fmt.Errorf("%s: non-positive structure size", m.Name)
	}
	sharedChecker := m.Mode == ModeSHREC || m.Mode == ModeFLEX
	if sharedChecker && m.CheckerWindow <= 0 {
		return fmt.Errorf("%s: %s requires a checker window", m.Name, m.Mode)
	}
	if !sharedChecker && m.CheckerWindow != 0 {
		return fmt.Errorf("%s: checker window outside SHREC/FLEX mode", m.Name)
	}
	if m.Mode == ModeMEEK {
		if m.CheckerLanes < 1 || m.CheckerLanes > MaxCheckerLanes {
			return fmt.Errorf("%s: MEEK checker lanes %d out of [1,%d]", m.Name, m.CheckerLanes, MaxCheckerLanes)
		}
	} else if m.CheckerLanes != 0 {
		return fmt.Errorf("%s: checker lanes outside MEEK mode", m.Name)
	}
	if m.Contexts != 0 {
		if m.Mode != ModeSHREC {
			return fmt.Errorf("%s: hardware checker contexts outside SHREC mode", m.Name)
		}
		if m.Contexts < 2 || m.Contexts > MaxContexts {
			return fmt.Errorf("%s: checker contexts %d out of [2,%d]", m.Name, m.Contexts, MaxContexts)
		}
	}
	if m.Mode == ModeFLEX {
		if m.FlexPeriod < 2 || m.FlexOn < 1 || m.FlexOn >= m.FlexPeriod {
			return fmt.Errorf("%s: FLEX region policy wants 0 < on < period, got on=%d period=%d", m.Name, m.FlexOn, m.FlexPeriod)
		}
	} else if m.FlexPeriod != 0 || m.FlexOn != 0 {
		return fmt.Errorf("%s: flex region policy outside FLEX mode", m.Name)
	}
	if m.MaxStagger < 0 {
		return fmt.Errorf("%s: negative stagger", m.Name)
	}
	if m.FaultRate < 0 || m.FaultRate > 1 {
		return fmt.Errorf("%s: fault rate out of [0,1]", m.Name)
	}
	if m.FaultWindowHi > 0 && m.FaultWindowHi <= m.FaultWindowLo {
		return fmt.Errorf("%s: empty fault window [%d, %d)", m.Name, m.FaultWindowLo, m.FaultWindowHi)
	}
	if m.CkptInterval > 0 && m.CkptInterval < MinCkptInterval {
		return fmt.Errorf("%s: checkpoint interval %d below the minimum of %d", m.Name, m.CkptInterval, MinCkptInterval)
	}
	if m.CkptDepth < 0 {
		return fmt.Errorf("%s: negative checkpoint depth", m.Name)
	}
	if m.CkptDepth > MaxCkptDepth {
		return fmt.Errorf("%s: checkpoint depth %d above the maximum of %d", m.Name, m.CkptDepth, MaxCkptDepth)
	}
	if m.CkptDepth > 0 && m.CkptInterval == 0 {
		return fmt.Errorf("%s: checkpoint depth without a checkpoint interval", m.Name)
	}
	return nil
}

// Checkpoint-policy bounds enforced by Validate. The interval floor keeps
// capture frequency sane (a capture is a full engine deep-clone); the
// depth cap bounds retained-checkpoint memory.
const (
	MinCkptInterval = 64
	MaxCkptDepth    = 16
)
