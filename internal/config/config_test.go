package config

import (
	"strings"
	"testing"

	"repro/internal/fu"
)

func TestSS1MatchesTable1(t *testing.T) {
	m := SS1()
	if m.Mode != ModeSS1 {
		t.Fatal("wrong mode")
	}
	if m.ISQSize != 128 || m.ROBSize != 512 || m.LSQSize != 64 {
		t.Fatalf("structures = %d/%d/%d", m.ISQSize, m.ROBSize, m.LSQSize)
	}
	if m.DecodeWidth != 8 || m.IssueWidth != 8 || m.RetireWidth != 8 {
		t.Fatalf("widths = %d/%d/%d", m.DecodeWidth, m.IssueWidth, m.RetireWidth)
	}
	if m.FU.Counts[fu.IALU] != 8 {
		t.Fatal("FU config not Table 1")
	}
	if m.Mem.MemLat != 200 || m.Mem.MSHREntries != 32 || m.Mem.MemPorts != 4 {
		t.Fatal("memory config not Table 1")
	}
	if m.Bpred.MispredictPenalty != 7 {
		t.Fatal("mispredict penalty not 7")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSS2Factors(t *testing.T) {
	plain := SS2(Factors{})
	if plain.Mode != ModeSS2 || plain.Name != "SS2" {
		t.Fatalf("plain SS2 = %s", plain.Name)
	}
	if plain.ISQSize != 128 || plain.IssueWidth != 8 || plain.MaxStagger != 0 {
		t.Fatal("plain SS2 must share SS1 resources")
	}

	x := SS2(Factors{X: true})
	if x.IssueWidth != 16 || x.FU.Counts[fu.IALU] != 16 {
		t.Fatal("X factor not applied")
	}
	if x.ISQSize != 128 {
		t.Fatal("X factor leaked into capacity")
	}

	c := SS2(Factors{C: true})
	if c.ISQSize != 256 || c.ROBSize != 1024 {
		t.Fatal("C factor not applied")
	}
	if c.LSQSize != 64 {
		t.Fatal("C factor must not change the LSQ")
	}

	b := SS2(Factors{B: true})
	if b.DecodeWidth != 16 || b.RetireWidth != 16 {
		t.Fatal("B factor not applied")
	}
	if b.IssueWidth != 8 {
		t.Fatal("B factor leaked into issue width")
	}

	s := SS2(Factors{S: true})
	if s.MaxStagger != DefaultStagger {
		t.Fatal("S factor not applied")
	}

	all := SS2(Factors{X: true, S: true, C: true, B: true})
	if all.IssueWidth != 16 || all.ISQSize != 256 || all.DecodeWidth != 16 || all.MaxStagger != 256 {
		t.Fatal("combined factors not applied")
	}
	if !strings.Contains(all.Name, "XSCB") {
		t.Fatalf("name = %s", all.Name)
	}
}

func TestSHREC(t *testing.T) {
	m := SHREC()
	if m.Mode != ModeSHREC {
		t.Fatal("wrong mode")
	}
	// Section 4.2: 8-entry in-order window, ISQ reduced to 120 so the
	// total entries feeding issue selection stays 128.
	if m.CheckerWindow != 8 || m.ISQSize != 120 {
		t.Fatalf("checker=%d isq=%d", m.CheckerWindow, m.ISQSize)
	}
	if m.CheckerWindow+m.ISQSize != 128 {
		t.Fatal("total issue-selection entries must remain 128")
	}
	if m.IssueWidth != 8 {
		t.Fatal("SHREC must not add issue bandwidth")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllFactorCombinations(t *testing.T) {
	combos := AllFactorCombinations()
	if len(combos) != 16 {
		t.Fatalf("combinations = %d", len(combos))
	}
	if combos[0] != (Factors{}) {
		t.Fatal("first row must be plain SS2")
	}
	last := Factors{X: true, S: true, C: true, B: true}
	if combos[15] != last {
		t.Fatal("last row must be all factors")
	}
	seen := map[Factors]bool{}
	for _, f := range combos {
		if seen[f] {
			t.Fatalf("duplicate combination %v", f)
		}
		seen[f] = true
	}
}

func TestFactorsString(t *testing.T) {
	if s := (Factors{}).String(); s != "- - - -" {
		t.Fatalf("empty = %q", s)
	}
	if s := (Factors{X: true, C: true}).String(); s != "X - C -" {
		t.Fatalf("XC = %q", s)
	}
}

func TestWithXScale(t *testing.T) {
	m := SS2(Factors{}).WithXScale(0.5)
	if m.IssueWidth != 4 || m.FU.Counts[fu.IALU] != 4 {
		t.Fatalf("0.5X: width=%d ialu=%d", m.IssueWidth, m.FU.Counts[fu.IALU])
	}
	m = SHREC().WithXScale(2)
	if m.IssueWidth != 16 || m.FU.Counts[fu.FADD] != 4 {
		t.Fatal("2X scaling wrong")
	}
	// Structure sizes untouched.
	if m.ISQSize != 120 || m.ROBSize != 512 {
		t.Fatal("X scaling leaked into capacities")
	}
}

func TestWithStagger(t *testing.T) {
	m := SS2(Factors{S: true, C: true}).WithStagger(1 << 20)
	if m.MaxStagger != 1<<20 {
		t.Fatal("stagger override failed")
	}
}

func TestModeString(t *testing.T) {
	if ModeSS1.String() != "SS1" || ModeSS2.String() != "SS2" || ModeSHREC.String() != "SHREC" {
		t.Fatal("mode strings wrong")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := SS1()
	bad.IssueWidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero issue width accepted")
	}
	bad = SHREC()
	bad.CheckerWindow = 0
	if bad.Validate() == nil {
		t.Fatal("SHREC without checker accepted")
	}
	bad = SS1()
	bad.CheckerWindow = 4
	if bad.Validate() == nil {
		t.Fatal("checker window outside SHREC accepted")
	}
	bad = SS1()
	bad.FaultRate = 1.5
	if bad.Validate() == nil {
		t.Fatal("fault rate > 1 accepted")
	}
}

func TestXFactorScalesMemoryPorts(t *testing.T) {
	// sim-outorder treats cache ports as FU resources, so X doubles them.
	x := SS2(Factors{X: true})
	if x.Mem.MemPorts != 8 {
		t.Fatalf("X ports = %d, want 8", x.Mem.MemPorts)
	}
	if SS2(Factors{}).Mem.MemPorts != 4 {
		t.Fatal("plain SS2 ports changed")
	}
	half := SS1().WithXScale(0.5)
	if half.Mem.MemPorts != 2 {
		t.Fatalf("0.5X ports = %d, want 2", half.Mem.MemPorts)
	}
	tiny := SS1().WithXScale(0.01)
	if tiny.Mem.MemPorts != 1 {
		t.Fatal("port floor violated")
	}
}

func TestO3RSConfig(t *testing.T) {
	m := O3RS()
	if m.Mode != ModeO3RS || m.Name != "O3RS" {
		t.Fatalf("O3RS = %s/%v", m.Name, m.Mode)
	}
	// Same physical resources as SS1: the sharing is the mechanism.
	ss1 := SS1()
	if m.ISQSize != ss1.ISQSize || m.ROBSize != ss1.ROBSize || m.IssueWidth != ss1.IssueWidth {
		t.Fatal("O3RS must not change SS1 resources")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if ModeO3RS.String() != "O3RS" {
		t.Fatal("mode string")
	}
}
