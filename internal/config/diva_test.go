package config

import "testing"

func TestDIVA(t *testing.T) {
	m := DIVA()
	if m.Mode != ModeSHREC || !m.CheckerDedicatedFU {
		t.Fatal("DIVA misconfigured")
	}
	if m.ISQSize != 128 {
		t.Fatalf("DIVA ISQ = %d, want full 128 (separate checker pipeline)", m.ISQSize)
	}
	if m.CheckerWindow != 8 {
		t.Fatal("DIVA needs a checker window")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
