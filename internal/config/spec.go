// Machine specification strings: a canonical, parseable grammar that
// names every machine the repository can build, including the modified
// machines the With* helpers produce. Before this grammar existed,
// WithXScale and WithStagger minted display-only names ("SHREC@1.5X",
// "SS2+SC(stagger=256)") that ByName could not parse back, so derived
// machines could not be requested over HTTP, keyed in stores, or named in
// exploration reports. The grammar is
//
//	spec     := base modifier*
//	base     := "ss1" | "ss2" | "ss2+"<factors> | "shrec" | "diva" | "o3rs"
//	          | "meek" | "meek@"<int>          MEEK with that many checker
//	                                           lanes ("meek" = 2)
//	          | "flex" | "flex@"<p>":on"<l>    FLEX checking the first l of
//	                                           every p fetched instructions;
//	                                           both values take k/m suffixes
//	                                           ("flex@1m:on4k"; "flex" =
//	                                           flex@64k:on16k)
//	modifier := "@x"<float>       issue width, FU pool, and memory ports
//	                              scaled (WithXScale)
//	          | "+stagger"<int>   maximum dispatch stagger (WithStagger)
//	          | "+ctx"<int>       SHREC hardware checker contexts
//	                              (WithContexts; SHREC bases only)
//	          | "+fux"<float>     FU pool alone scaled (WithFUScale)
//	          | "+mshr"<int>      MSHR entry count (WithMSHRs)
//	          | "+ports"<int>     memory port count (WithMemPorts)
//	          | "+rate"<float>    fault-injection rate (WithFaultRate)
//	          | "+ckpt"<int>      checkpoint interval in retired
//	                              instructions (WithCkptInterval); the
//	                              value takes k/m suffixes (1024 multiples:
//	                              "+ckpt64k" = 65536) and renders with the
//	                              largest exact suffix
//	          | "+depth"<int>     retained rollback checkpoints
//	                              (WithCkptDepth)
//
// parsed case-insensitively with modifiers in any order, at most one of
// each kind. The canonical rendering — Machine.Spec — uses the upper-case
// base, lower-case modifier tokens, and the fixed order above, so two
// routes to the same configuration produce byte-identical spec strings.
package config

import (
	"fmt"
	"strconv"
	"strings"
)

// modKind indexes the modifier tokens in canonical order.
type modKind int

const (
	modXScale modKind = iota
	modStagger
	modCtx
	modFUScale
	modMSHR
	modPorts
	modRate
	modCkpt
	modDepth
	numModKinds
)

// modToken is the spec token of each modifier kind, in canonical order.
var modToken = [numModKinds]string{"@x", "+stagger", "+ctx", "+fux", "+mshr", "+ports", "+rate", "+ckpt", "+depth"}

// intMod reports whether the kind's value renders as an integer.
func (k modKind) intMod() bool {
	return k == modStagger || k == modCtx || k == modMSHR || k == modPorts || k == modCkpt || k == modDepth
}

// specMods is one parsed modifier set. present[k] guards vals[k].
type specMods struct {
	present [numModKinds]bool
	vals    [numModKinds]float64
}

// set records one modifier value (replacing any previous one).
func (m *specMods) set(k modKind, v float64) {
	m.present[k] = true
	m.vals[k] = v
}

// formatModValue renders a modifier value the canonical way: integers
// without a decimal point, floats in the shortest 'g' form (the same
// rendering strconv.ParseFloat round-trips).
func formatModValue(k modKind, v float64) string {
	if k == modCkpt {
		// Checkpoint intervals render with the largest exact 1024-multiple
		// suffix ("+ckpt64k", "+ckpt2m"), matching the k/m suffixes
		// splitSpec accepts.
		n := int(v)
		switch {
		case n > 0 && n%(1024*1024) == 0:
			return strconv.Itoa(n/(1024*1024)) + "m"
		case n > 0 && n%1024 == 0:
			return strconv.Itoa(n/1024) + "k"
		}
		return strconv.Itoa(n)
	}
	if k.intMod() {
		return strconv.Itoa(int(v))
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render produces the canonical spec string for a base name and modifier
// set.
func (m specMods) render(base string) string {
	var b strings.Builder
	b.WriteString(base)
	for k := modKind(0); k < numModKinds; k++ {
		if m.present[k] {
			b.WriteString(modToken[k])
			b.WriteString(formatModValue(k, m.vals[k]))
		}
	}
	return b.String()
}

// splitSpec separates a lower-cased spec string into its base name and
// modifier set. It scans for the earliest modifier token; everything
// before it is the base (factor suffixes like "ss2+scb" contain no
// modifier keyword, so they stay with the base).
func splitSpec(lower string) (base string, mods specMods, err error) {
	rest := lower
	cut := len(rest)
	for _, tok := range modToken {
		if i := strings.Index(rest, tok); i >= 0 && i < cut {
			cut = i
		}
	}
	base, rest = rest[:cut], rest[cut:]
	for rest != "" {
		kind := modKind(-1)
		for k := modKind(0); k < numModKinds; k++ {
			if strings.HasPrefix(rest, modToken[k]) {
				kind = k
				break
			}
		}
		if kind < 0 {
			return "", specMods{}, fmt.Errorf("config: unknown modifier at %q", rest)
		}
		if mods.present[kind] {
			return "", specMods{}, fmt.Errorf("config: duplicate %q modifier", strings.TrimLeft(modToken[kind], "@+"))
		}
		rest = rest[len(modToken[kind]):]
		// The value runs to the next modifier delimiter.
		end := len(rest)
		if i := strings.IndexAny(rest, "@+"); i >= 0 {
			end = i
		}
		val := rest[:end]
		mul := 1.0
		if kind == modCkpt {
			// Checkpoint intervals take k/m suffixes (1024 multiples).
			switch {
			case strings.HasSuffix(val, "m"):
				val, mul = val[:len(val)-1], 1024*1024
			case strings.HasSuffix(val, "k"):
				val, mul = val[:len(val)-1], 1024
			}
		}
		v, perr := strconv.ParseFloat(val, 64)
		if perr != nil {
			return "", specMods{}, fmt.Errorf("config: bad %q value %q", strings.TrimLeft(modToken[kind], "@+"), rest[:end])
		}
		v *= mul
		if kind.intMod() && v != float64(int(v)) {
			return "", specMods{}, fmt.Errorf("config: %q takes an integer, got %q", strings.TrimLeft(modToken[kind], "@+"), rest[:end])
		}
		mods.set(kind, v)
		rest = rest[end:]
	}
	return base, mods, nil
}

// validate checks one modifier value's range.
func (k modKind) validate(v float64) error {
	switch k {
	case modXScale, modFUScale:
		if v <= 0 {
			return fmt.Errorf("config: non-positive %q scale %g", strings.TrimLeft(modToken[k], "@+"), v)
		}
	case modStagger:
		if v < 0 {
			return fmt.Errorf("config: negative stagger %g", v)
		}
	case modMSHR, modPorts:
		if v < 1 {
			return fmt.Errorf("config: non-positive %q count %g", strings.TrimLeft(modToken[k], "@+"), v)
		}
	case modRate:
		if v < 0 || v > 1 {
			return fmt.Errorf("config: fault rate %g out of [0,1]", v)
		}
	case modCkpt:
		// Zero disables checkpointing; positive intervals share
		// Machine.Validate's floor so specs and helpers agree on the bound.
		if v < 0 {
			return fmt.Errorf("config: negative checkpoint interval %g", v)
		}
		if v > 0 && v < MinCkptInterval {
			return fmt.Errorf("config: checkpoint interval %g below minimum %d", v, MinCkptInterval)
		}
	case modDepth:
		if v < 1 || v > MaxCkptDepth {
			return fmt.Errorf("config: checkpoint depth %g out of [1,%d]", v, MaxCkptDepth)
		}
	case modCtx:
		if v < 2 || v > MaxContexts {
			return fmt.Errorf("config: checker contexts %g out of [2,%d]", v, MaxContexts)
		}
	}
	return nil
}

// apply builds the machine: the base machine with every present modifier
// applied in canonical order (the order the With* helpers compose in),
// named canonically.
func (m specMods) apply(base Machine) (Machine, error) {
	// Modifiers that only one mode can carry are rejected against the base
	// up front, so contradictions like "ss1+ctx4" fail at parse time with a
	// message naming the conflict rather than surfacing later in Validate.
	if m.present[modCtx] && base.Mode != ModeSHREC {
		return Machine{}, fmt.Errorf("config: %q modifier requires a SHREC-mode base (shrec or diva), not %s", "ctx", base.Mode)
	}
	out := base
	for k := modKind(0); k < numModKinds; k++ {
		if !m.present[k] {
			continue
		}
		if err := k.validate(m.vals[k]); err != nil {
			return Machine{}, err
		}
		out = out.modified(k, m.vals[k])
	}
	out.Name = m.render(base.Name)
	return out, nil
}

// kmString renders a count with the largest exact 1024-multiple suffix
// ("64k", "2m"), the inverse of parseKM. Checkpoint intervals and the
// FLEX region values share it.
func kmString(n uint64) string {
	switch {
	case n > 0 && n%(1024*1024) == 0:
		return strconv.FormatUint(n/(1024*1024), 10) + "m"
	case n > 0 && n%1024 == 0:
		return strconv.FormatUint(n/1024, 10) + "k"
	}
	return strconv.FormatUint(n, 10)
}

// parseKM parses a non-negative count with an optional k/m suffix
// (1024 multiples).
func parseKM(s string) (uint64, error) {
	mul := uint64(1)
	switch {
	case strings.HasSuffix(s, "m"):
		s, mul = s[:len(s)-1], 1024*1024
	case strings.HasSuffix(s, "k"):
		s, mul = s[:len(s)-1], 1024
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mul, nil
}

// parseFlexBase parses the value part of a "flex@<period>:on<len>" base.
func parseFlexBase(val string) (Machine, error) {
	i := strings.Index(val, ":on")
	if i < 0 {
		return Machine{}, fmt.Errorf("config: flex spec wants flex@<period>:on<len> (e.g. flex@64k:on16k), got value %q", val)
	}
	period, err := parseKM(val[:i])
	if err != nil {
		return Machine{}, fmt.Errorf("config: bad flex period %q", val[:i])
	}
	on, err := parseKM(val[i+len(":on"):])
	if err != nil {
		return Machine{}, fmt.Errorf("config: bad flex on-length %q", val[i+len(":on"):])
	}
	if period < 2 || on < 1 || on >= period {
		return Machine{}, fmt.Errorf("config: flex region policy wants 0 < on < period, got on=%d period=%d", on, period)
	}
	return FlexMachine(period, on), nil
}

// baseByName resolves the grammar's base names (no modifiers).
func baseByName(lower string) (Machine, bool, error) {
	switch {
	case lower == "ss1":
		return SS1(), true, nil
	case lower == "shrec":
		return SHREC(), true, nil
	case lower == "diva":
		return DIVA(), true, nil
	case lower == "o3rs":
		return O3RS(), true, nil
	case lower == "meek":
		return MEEK(DefaultCheckerLanes), true, nil
	case strings.HasPrefix(lower, "meek@"):
		val := lower[len("meek@"):]
		n, err := strconv.Atoi(val)
		if err != nil {
			return Machine{}, true, fmt.Errorf("config: bad meek lane count %q", val)
		}
		if n < 1 || n > MaxCheckerLanes {
			return Machine{}, true, fmt.Errorf("config: meek lane count %d out of [1,%d]", n, MaxCheckerLanes)
		}
		return MEEK(n), true, nil
	case lower == "flex":
		return FLEX(), true, nil
	case strings.HasPrefix(lower, "flex@"):
		m, err := parseFlexBase(lower[len("flex@"):])
		return m, true, err
	case lower == "ss2":
		return SS2(Factors{}), true, nil
	case strings.HasPrefix(lower, "ss2+"):
		var f Factors
		for _, c := range lower[len("ss2+"):] {
			switch c {
			case 'x':
				f.X = true
			case 's':
				f.S = true
			case 'c':
				f.C = true
			case 'b':
				f.B = true
			default:
				return Machine{}, true, fmt.Errorf("config: unknown factor %q in %q", c, lower)
			}
		}
		return SS2(f), true, nil
	}
	return Machine{}, false, nil
}

// sameShape reports whether two machines are structurally identical,
// ignoring the display name and the fault fields a spec string cannot
// carry (seed and window). The fault rate does participate: it has a
// spec token.
func sameShape(a, b Machine) bool {
	a.Name, b.Name = "", ""
	a.FaultSeed, b.FaultSeed = 0, 0
	a.FaultWindowLo, b.FaultWindowLo = 0, 0
	a.FaultWindowHi, b.FaultWindowHi = 0, 0
	return a == b
}

// specName computes a modified machine's display name: when the current
// name parses under the spec grammar, the modifier is folded in (replacing
// a previous token of the same kind; relative scales multiply into it) and
// the name re-rendered canonically — but only if the candidate name parses
// back to exactly the machine out, so a name can never claim a
// configuration it is not (repeated scaling, for example, can diverge from
// a single combined scale under integer rounding). Otherwise the token is
// appended verbatim: still descriptive, just not canonical.
func specName(cur string, out Machine, kind modKind, val float64, relative bool) string {
	if base, mods, err := splitSpec(strings.ToLower(strings.TrimSpace(cur))); err == nil {
		v := val
		if relative && mods.present[kind] {
			v = mods.vals[kind] * val
		}
		mods.set(kind, v)
		// ByName re-renders with the canonical upper-case base name.
		if got, err := ByName(mods.render(base)); err == nil && sameShape(got, out) {
			return got.Name
		}
	}
	return cur + modToken[kind] + formatModValue(kind, val)
}

// rebaseName recomputes the display name of a machine whose base token
// changed (the MEEK lane count and FLEX region policy live in the base,
// not in a modifier). Like specName, it only adopts the re-rendered name
// when that name parses back to exactly the machine; otherwise the old
// name is annotated verbatim, descriptive but non-canonical.
func rebaseName(cur string, out Machine, newBase string) string {
	if _, mods, err := splitSpec(strings.ToLower(strings.TrimSpace(cur))); err == nil {
		if got, err := ByName(mods.render(newBase)); err == nil && sameShape(got, out) {
			return got.Name
		}
	}
	return cur + "(" + newBase + ")"
}

// Spec returns the machine's canonical specification string — a name
// ByName parses back to this exact configuration (fault seed and window
// aside, which no spec can carry). Explore points, store keys, and report
// rows all use it, so every layer names the same point the same way. For
// machines whose Name does not parse (hand-built configurations with
// custom names, or helper chains whose rounding defeated canonical
// naming), Spec returns the display name unchanged; ParseSpec reports
// whether a given name is canonical.
func (m Machine) Spec() string {
	lower := strings.ToLower(strings.TrimSpace(m.Name))
	base, mods, err := splitSpec(lower)
	if err != nil {
		return m.Name
	}
	bm, ok, err := baseByName(base)
	if !ok || err != nil {
		return m.Name
	}
	built, err := mods.apply(bm)
	if err != nil || !sameShape(built, m) {
		return m.Name
	}
	return built.Name
}

// WithoutRate returns the machine with fault injection removed — the
// structural configuration golden runs and campaigns share with their
// faulted twin. The "+rate" token is dropped from the name through the
// grammar (not by string surgery), so the result's Spec is canonical
// whatever order the original's modifiers were written in; for names
// outside the grammar only the fault fields are cleared.
func (m Machine) WithoutRate() Machine {
	out := m
	out.FaultRate = 0
	out.FaultSeed = 0
	out.FaultWindowLo, out.FaultWindowHi = 0, 0
	if base, mods, err := splitSpec(strings.ToLower(strings.TrimSpace(m.Name))); err == nil && mods.present[modRate] {
		mods.present[modRate] = false
		if got, err := ByName(mods.render(base)); err == nil && sameShape(got, out) {
			out.Name = got.Name
		}
	}
	return out
}

// ParseSpec parses a canonical specification string into its machine,
// reporting an error for names outside the grammar. It is ByName under a
// name that states the contract: ParseSpec(m.Spec()) reproduces m for
// every machine the named constructors and With* helpers can build.
func ParseSpec(spec string) (Machine, error) {
	return ByName(spec)
}
