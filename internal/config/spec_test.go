package config_test

import (
	"testing"

	"repro/internal/config"
)

// TestSpecRoundTrip pins the contract of the satellite fix: every machine
// the named constructors and With* helpers build has a canonical Spec
// that ByName parses back to the identical configuration — so explore
// points, store keys, and report rows all name the same point.
func TestSpecRoundTrip(t *testing.T) {
	machines := []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{X: true, S: true, C: true, B: true}),
		config.SHREC(),
		config.DIVA(),
		config.O3RS(),
		config.SHREC().WithXScale(1.5).WithStagger(2),
		config.SHREC().WithStagger(2).WithXScale(1.5), // order-independent
		config.SS2(config.Factors{S: true, C: true}).WithStagger(0),
		config.SS2(config.Factors{}).WithXScale(0.5),
		config.SS1().WithMSHRs(16).WithMemPorts(2),
		config.DIVA().WithFUScale(0.5),
		config.SHREC().WithFaultRate(1e-4),
		// Repeated relative scaling folds into the product when truthful.
		config.SHREC().WithXScale(0.5).WithXScale(0.5),
		config.SHREC().WithCkptInterval(65536),
		config.SHREC().WithCkptInterval(65536).WithCkptDepth(2),
		config.SHREC().WithCkptDepth(2).WithCkptInterval(65536), // order-independent
		config.O3RS().WithCkptInterval(2 * 1024 * 1024),
		config.DIVA().WithCkptInterval(100), // no exact 1024 suffix
		config.SHREC().WithFaultRate(1e-4).WithCkptInterval(4096).WithCkptDepth(4),
	}
	for _, m := range machines {
		spec := m.Spec()
		got, err := config.ByName(spec)
		if err != nil {
			t.Errorf("ByName(%q) [Name %q]: %v", spec, m.Name, err)
			continue
		}
		// The parsed machine must be structurally identical (names and the
		// spec-invisible fault seed/window aside).
		a, b := m, got
		a.Name, b.Name = "", ""
		if a != b {
			t.Errorf("ByName(%q) diverged from the machine that produced it:\n got %+v\nwant %+v", spec, b, a)
		}
		if got.Spec() != spec {
			t.Errorf("Spec not idempotent: %q -> %q", spec, got.Spec())
		}
	}
}

// TestSpecCanonicalForm pins the canonical renderings the example in the
// issue promises.
func TestSpecCanonicalForm(t *testing.T) {
	cases := map[string]string{
		config.SHREC().WithXScale(1.5).WithStagger(2).Spec():               "SHREC@x1.5+stagger2",
		config.SHREC().WithStagger(2).WithXScale(1.5).Spec():               "SHREC@x1.5+stagger2",
		config.SS2(config.Factors{S: true, C: true}).WithStagger(0).Spec(): "SS2+SC+stagger0",
		config.SS1().WithMemPorts(2).WithMSHRs(16).Spec():                  "SS1+mshr16+ports2",
		// Checkpoint intervals render with the largest exact 1024 suffix.
		config.SHREC().WithCkptInterval(65536).WithCkptDepth(2).Spec():        "SHREC+ckpt64k+depth2",
		config.SHREC().WithCkptDepth(2).WithCkptInterval(65536).Spec():        "SHREC+ckpt64k+depth2",
		config.O3RS().WithCkptInterval(2 * 1024 * 1024).Spec():                "O3RS+ckpt2m",
		config.DIVA().WithCkptInterval(100).Spec():                            "DIVA+ckpt100",
		config.SHREC().WithFaultRate(1e-4).WithCkptInterval(1024 * 53).Spec(): "SHREC+rate0.0001+ckpt53k",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("canonical spec = %q, want %q", got, want)
		}
	}
}

// TestByNameModifiers pins the parsing side of the grammar.
func TestByNameModifiers(t *testing.T) {
	m, err := config.ByName("shrec@x1.5+stagger2")
	if err != nil {
		t.Fatal(err)
	}
	if m.IssueWidth != 12 || m.MaxStagger != 2 {
		t.Fatalf("shrec@x1.5+stagger2 = width %d stagger %d", m.IssueWidth, m.MaxStagger)
	}
	// Any modifier order parses to the same canonical machine.
	swapped, err := config.ByName("SHREC+stagger2@X1.5")
	if err != nil {
		t.Fatal(err)
	}
	if swapped != m {
		t.Fatalf("modifier order changed the machine:\n%+v\n%+v", swapped, m)
	}
	mp, err := config.ByName("ss1+mshr8+ports2")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Mem.MSHREntries != 8 || mp.Mem.MemPorts != 2 {
		t.Fatalf("mshr/ports not applied: %+v", mp.Mem)
	}
	fr, err := config.ByName("shrec+rate1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if fr.FaultRate != 1e-4 {
		t.Fatalf("rate not applied: %g", fr.FaultRate)
	}
	// Checkpoint modifiers: k/m suffixes are 1024 multiples, and parsing is
	// case-insensitive like everything else in the grammar.
	ck, err := config.ByName("shrec+ckpt64k+depth2")
	if err != nil {
		t.Fatal(err)
	}
	if ck.CkptInterval != 65536 || ck.CkptDepth != 2 {
		t.Fatalf("ckpt64k+depth2 = interval %d depth %d", ck.CkptInterval, ck.CkptDepth)
	}
	if ck.Name != "SHREC+ckpt64k+depth2" {
		t.Fatalf("canonical name = %q", ck.Name)
	}
	cm, err := config.ByName("SHREC+CKPT2M")
	if err != nil {
		t.Fatal(err)
	}
	if cm.CkptInterval != 2*1024*1024 {
		t.Fatalf("ckpt2m = interval %d", cm.CkptInterval)
	}
	cr, err := config.ByName("shrec+ckpt4096")
	if err != nil {
		t.Fatal(err)
	}
	if cr.CkptInterval != 4096 {
		t.Fatalf("ckpt4096 = interval %d", cr.CkptInterval)
	}
	if cr.Spec() != "SHREC+ckpt4k" {
		t.Fatalf("ckpt4096 renders %q, want the exact-suffix form", cr.Spec())
	}
	fx, err := config.ByName("diva+fux0.5")
	if err != nil {
		t.Fatal(err)
	}
	if fx.FU.Counts[0] >= config.DIVA().FU.Counts[0] {
		t.Fatal("fux scale not applied")
	}
	if fx.IssueWidth != config.DIVA().IssueWidth {
		t.Fatal("fux leaked into issue width")
	}
}

// TestByNameModifierErrors pins rejection of malformed modifiers.
func TestByNameModifierErrors(t *testing.T) {
	for _, bad := range []string{
		"shrec@x",                 // missing value
		"shrec@x0",                // non-positive scale
		"shrec@xfast",             // non-numeric
		"shrec+stagger-1",         // negative
		"shrec+stagger1.5",        // non-integer
		"shrec+stagger2+stagger4", // duplicate
		"shrec+mshr0",             // below one
		"shrec+ports0",            // below one
		"shrec+rate2",             // out of [0,1]
		"ss2+q@x1.5",              // bad factor under a modifier
		"shrec+ckpt-64",           // negative interval
		"shrec+ckpt32",            // below MinCkptInterval
		"shrec+ckpt64q",           // unknown suffix
		"shrec+depth0",            // below one
		"shrec+depth17",           // above MaxCkptDepth
		"shrec+depth1.5",          // non-integer
		"shrec+ckpt4k+ckpt8k",     // duplicate
	} {
		if _, err := config.ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

// TestSpecFallsBackOnCustomNames verifies hand-built machines keep their
// display names rather than acquiring a spec that lies about them.
func TestSpecFallsBackOnCustomNames(t *testing.T) {
	m := config.SS1()
	m.Name = "my-custom-machine"
	if m.Spec() != "my-custom-machine" {
		t.Fatalf("custom name rewritten to %q", m.Spec())
	}
	// A parseable name over a structurally edited machine must not be
	// presented as canonical either.
	edited := config.SHREC()
	edited.ROBSize = 123
	if spec := edited.Spec(); spec != "SHREC" {
		t.Fatalf("edited machine spec = %q", spec)
	}
	if _, err := config.ParseSpec(edited.Spec()); err != nil {
		t.Fatal(err)
	}
}
