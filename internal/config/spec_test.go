package config_test

import (
	"testing"

	"repro/internal/config"
)

// TestSpecRoundTrip pins the contract of the satellite fix: every machine
// the named constructors and With* helpers build has a canonical Spec
// that ByName parses back to the identical configuration — so explore
// points, store keys, and report rows all name the same point.
func TestSpecRoundTrip(t *testing.T) {
	machines := []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{X: true, S: true, C: true, B: true}),
		config.SHREC(),
		config.DIVA(),
		config.O3RS(),
		config.SHREC().WithXScale(1.5).WithStagger(2),
		config.SHREC().WithStagger(2).WithXScale(1.5), // order-independent
		config.SS2(config.Factors{S: true, C: true}).WithStagger(0),
		config.SS2(config.Factors{}).WithXScale(0.5),
		config.SS1().WithMSHRs(16).WithMemPorts(2),
		config.DIVA().WithFUScale(0.5),
		config.SHREC().WithFaultRate(1e-4),
		// Repeated relative scaling folds into the product when truthful.
		config.SHREC().WithXScale(0.5).WithXScale(0.5),
	}
	for _, m := range machines {
		spec := m.Spec()
		got, err := config.ByName(spec)
		if err != nil {
			t.Errorf("ByName(%q) [Name %q]: %v", spec, m.Name, err)
			continue
		}
		// The parsed machine must be structurally identical (names and the
		// spec-invisible fault seed/window aside).
		a, b := m, got
		a.Name, b.Name = "", ""
		if a != b {
			t.Errorf("ByName(%q) diverged from the machine that produced it:\n got %+v\nwant %+v", spec, b, a)
		}
		if got.Spec() != spec {
			t.Errorf("Spec not idempotent: %q -> %q", spec, got.Spec())
		}
	}
}

// TestSpecCanonicalForm pins the canonical renderings the example in the
// issue promises.
func TestSpecCanonicalForm(t *testing.T) {
	cases := map[string]string{
		config.SHREC().WithXScale(1.5).WithStagger(2).Spec():               "SHREC@x1.5+stagger2",
		config.SHREC().WithStagger(2).WithXScale(1.5).Spec():               "SHREC@x1.5+stagger2",
		config.SS2(config.Factors{S: true, C: true}).WithStagger(0).Spec(): "SS2+SC+stagger0",
		config.SS1().WithMemPorts(2).WithMSHRs(16).Spec():                  "SS1+mshr16+ports2",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("canonical spec = %q, want %q", got, want)
		}
	}
}

// TestByNameModifiers pins the parsing side of the grammar.
func TestByNameModifiers(t *testing.T) {
	m, err := config.ByName("shrec@x1.5+stagger2")
	if err != nil {
		t.Fatal(err)
	}
	if m.IssueWidth != 12 || m.MaxStagger != 2 {
		t.Fatalf("shrec@x1.5+stagger2 = width %d stagger %d", m.IssueWidth, m.MaxStagger)
	}
	// Any modifier order parses to the same canonical machine.
	swapped, err := config.ByName("SHREC+stagger2@X1.5")
	if err != nil {
		t.Fatal(err)
	}
	if swapped != m {
		t.Fatalf("modifier order changed the machine:\n%+v\n%+v", swapped, m)
	}
	mp, err := config.ByName("ss1+mshr8+ports2")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Mem.MSHREntries != 8 || mp.Mem.MemPorts != 2 {
		t.Fatalf("mshr/ports not applied: %+v", mp.Mem)
	}
	fr, err := config.ByName("shrec+rate1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if fr.FaultRate != 1e-4 {
		t.Fatalf("rate not applied: %g", fr.FaultRate)
	}
	fx, err := config.ByName("diva+fux0.5")
	if err != nil {
		t.Fatal(err)
	}
	if fx.FU.Counts[0] >= config.DIVA().FU.Counts[0] {
		t.Fatal("fux scale not applied")
	}
	if fx.IssueWidth != config.DIVA().IssueWidth {
		t.Fatal("fux leaked into issue width")
	}
}

// TestByNameModifierErrors pins rejection of malformed modifiers.
func TestByNameModifierErrors(t *testing.T) {
	for _, bad := range []string{
		"shrec@x",                 // missing value
		"shrec@x0",                // non-positive scale
		"shrec@xfast",             // non-numeric
		"shrec+stagger-1",         // negative
		"shrec+stagger1.5",        // non-integer
		"shrec+stagger2+stagger4", // duplicate
		"shrec+mshr0",             // below one
		"shrec+ports0",            // below one
		"shrec+rate2",             // out of [0,1]
		"ss2+q@x1.5",              // bad factor under a modifier
	} {
		if _, err := config.ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

// TestSpecFallsBackOnCustomNames verifies hand-built machines keep their
// display names rather than acquiring a spec that lies about them.
func TestSpecFallsBackOnCustomNames(t *testing.T) {
	m := config.SS1()
	m.Name = "my-custom-machine"
	if m.Spec() != "my-custom-machine" {
		t.Fatalf("custom name rewritten to %q", m.Spec())
	}
	// A parseable name over a structurally edited machine must not be
	// presented as canonical either.
	edited := config.SHREC()
	edited.ROBSize = 123
	if spec := edited.Spec(); spec != "SHREC" {
		t.Fatalf("edited machine spec = %q", spec)
	}
	if _, err := config.ParseSpec(edited.Spec()); err != nil {
		t.Fatal(err)
	}
}
