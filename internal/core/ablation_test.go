package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DIVA's dedicated checker pipeline should recover (most of) the gap that
// functional-unit sharing opens between SHREC and SS1 on FP-contended
// workloads — the ablation behind the paper's Section 4.1/4.2 design
// discussion.
func TestDIVARecoversFPContention(t *testing.T) {
	p, err := workload.ByName("sixtrack")
	if err != nil {
		t.Fatal(err)
	}
	const warm, n = 200_000, 150_000
	ss1 := warmRun(t, config.SS1(), p, warm, n).IPC()
	shrec := warmRun(t, config.SHREC(), p, warm, n).IPC()
	diva := warmRun(t, config.DIVA(), p, warm, n).IPC()

	if shrec >= ss1 {
		t.Fatalf("SHREC %.3f >= SS1 %.3f on an FP-contended benchmark", shrec, ss1)
	}
	if diva <= shrec {
		t.Fatalf("DIVA %.3f <= SHREC %.3f: dedicated units must relieve contention", diva, shrec)
	}
	// DIVA should track SS1 closely (the paper's claim).
	if diva < ss1*0.9 {
		t.Fatalf("DIVA %.3f far below SS1 %.3f", diva, ss1)
	}
}

// On benchmarks with slack FP bandwidth, SHREC and DIVA should be nearly
// identical — the sharing only costs when the units are contended.
func TestDIVAEqualsSHRECWithoutContention(t *testing.T) {
	p, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	const warm, n = 150_000, 100_000
	shrec := warmRun(t, config.SHREC(), p, warm, n).IPC()
	diva := warmRun(t, config.DIVA(), p, warm, n).IPC()
	ratio := diva / shrec
	if ratio < 0.97 || ratio > 1.08 {
		t.Fatalf("DIVA/SHREC = %.3f on an uncontended benchmark, want ~1", ratio)
	}
}

// The SHREC checker must verify every retired instruction even in DIVA
// mode, and fault coverage must be preserved.
func TestDIVAFaultCoverage(t *testing.T) {
	m := config.DIVA()
	m.FaultRate = 1e-4
	m.FaultSeed = 7
	st := runOn(t, m, testWorkload(31), testInstrs)
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if st.SilentCorruptions != 0 {
		t.Fatal("DIVA let a fault escape")
	}
	if st.FaultsDetected != st.SoftExceptions {
		t.Fatal("detection/recovery mismatch")
	}
}

// Checker-window ablation. Holding the ISQ constant, a larger in-order
// window never hurts (it only adds checker issue opportunities). But under
// the paper's actual constraint — window entries are carved out of the
// 128-entry issue-selection budget — a much larger window costs more ISQ
// capacity than it gains in checking throughput, which is why the paper
// picks 8.
func TestCheckerWindowAblation(t *testing.T) {
	p := fpWorkload(33)
	var prev float64
	for i, w := range []int{2, 8, 32} {
		m := config.SHREC()
		m.CheckerWindow = w
		m.ISQSize = 120 // constant: isolate the window's own effect
		ipc := warmRun(t, m, p, 60000, testInstrs).IPC()
		if i > 0 && ipc < prev*0.97 {
			t.Fatalf("window %d IPC %.3f far below smaller window %.3f", w, ipc, prev)
		}
		prev = ipc
	}

	// The carve-out trade-off: window 32 with a commensurately reduced
	// ISQ must not beat the paper's window-8 design on this ISQ-hungry
	// workload.
	m8 := config.SHREC() // window 8, ISQ 120
	big := config.SHREC()
	big.CheckerWindow = 32
	big.ISQSize = 128 - 32
	ipc8 := warmRun(t, m8, p, 60000, testInstrs).IPC()
	ipc32 := warmRun(t, big, p, 60000, testInstrs).IPC()
	if ipc32 > ipc8*1.03 {
		t.Fatalf("window 32 (ISQ 96) at %.3f should not beat window 8 (ISQ 120) at %.3f", ipc32, ipc8)
	}
}

// Stagger ablation on the real workload suite: for a memory-bound FP
// benchmark, SS2 IPC must be non-decreasing in the stagger bound and
// saturate by 256 (the paper's Figure 5 shape).
func TestStaggerSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("stagger saturation needs full-scale runs; quick stagger behavior is covered by TestStaggerIsElastic")
	}
	p, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const warm, n = 200_000, 120_000
	ipc := map[int]float64{}
	for _, s := range []int{0, 256, 1 << 20} {
		m := config.SS2(config.Factors{S: true, C: true}).WithStagger(s)
		ipc[s] = warmRun(t, m, p, warm, n).IPC()
	}
	if ipc[256] < ipc[0]*0.99 {
		t.Fatalf("stagger 256 (%.3f) should not lose to lockstep (%.3f)", ipc[256], ipc[0])
	}
	if ipc[1<<20] < ipc[256]*0.97 || ipc[1<<20] > ipc[256]*1.05 {
		t.Fatalf("1M stagger (%.3f) should saturate at the 256 level (%.3f)", ipc[1<<20], ipc[256])
	}
}

// The LVQ rule: an R-thread load can never complete before its M-thread
// pair made the value available.
func TestLVQOrderingInvariant(t *testing.T) {
	m := config.SS2(config.Factors{S: true})
	e := New(m, trace.New(testWorkload(35)))
	w := &e.w
	for e.stats.Retired < 20000 {
		e.cycle()
		for _, s := range e.isqSlots(ThreadR) {
			if w.inst[s].IsLoad() && w.flags[s]&fIssued != 0 {
				t.Fatal("issued load still in ISQ")
			}
		}
		// Check issued R loads against their pairs via the ROB.
		for i := 0; i < e.robR.len(); i++ {
			s := e.robR.at(i)
			if w.inst[s].IsLoad() && w.flags[s]&fIssued != 0 {
				if p := w.pair[s]; w.live(p) && w.completeAt[p.slot] > w.completeAt[s] {
					t.Fatalf("R load seq %d completed at %d before M pair at %d",
						w.seq[s], w.completeAt[s], w.completeAt[p.slot])
				}
			}
		}
	}
}

// SS2 pairs always carry identical instructions.
func TestPairIdentityInvariant(t *testing.T) {
	m := config.SS2(config.Factors{})
	e := New(m, trace.New(testWorkload(37)))
	w := &e.w
	for e.stats.Retired < 20000 {
		e.cycle()
		for i := 0; i < e.robM.len(); i++ {
			s := e.robM.at(i)
			p := w.pair[s]
			if !w.live(p) {
				t.Fatalf("M instruction seq %d without pair", w.seq[s])
			}
			if w.inst[p.slot] != w.inst[s] {
				t.Fatalf("pair instruction mismatch at seq %d", w.seq[s])
			}
			if w.seq[p.slot] != w.seq[s] {
				t.Fatalf("pair seq mismatch: %d vs %d", w.seq[s], w.seq[p.slot])
			}
		}
	}
}

// In SHREC, the check-issued prefix of the ROB is exactly checkCount long
// and contiguous from the head.
func TestCheckerPrefixInvariant(t *testing.T) {
	e := New(config.SHREC(), trace.New(testWorkload(39)))
	for e.stats.Retired < 20000 {
		e.cycle()
		n := e.robM.len()
		if e.checkCount > n {
			t.Fatalf("checkCount %d exceeds ROB occupancy %d", e.checkCount, n)
		}
		for i := 0; i < n; i++ {
			s := e.robM.at(i)
			want := i < e.checkCount
			if got := e.w.flags[s]&fCheckIssued != 0; got != want {
				t.Fatalf("position %d: checkIssued=%v, want %v (checkCount=%d)",
					i, got, want, e.checkCount)
			}
		}
	}
}

// Issue never exceeds the configured width in any mode, including the
// checker's slots in SHREC (but excluding DIVA's dedicated pipeline).
func TestIssueWidthInvariant(t *testing.T) {
	for _, m := range []config.Machine{
		config.SS1(), config.SS2(config.Factors{S: true}), config.SHREC(),
	} {
		e := New(m, trace.New(testWorkload(41)))
		var prevIssued uint64
		for e.stats.Retired < 15000 {
			e.cycle()
			issued := e.stats.IssuedM + e.stats.IssuedR + e.stats.IssuedChecker
			if delta := issued - prevIssued; delta > uint64(m.IssueWidth) {
				t.Fatalf("%s issued %d in one cycle (width %d)", m.Name, delta, m.IssueWidth)
			}
			prevIssued = issued
		}
	}
}

// Retired instruction mix must match the generated mix: the pipeline must
// not drop or duplicate instructions across squashes and exceptions.
func TestArchitecturalStreamPreserved(t *testing.T) {
	p := testWorkload(43)
	const n = 20000

	// Reference: the first n instructions from a fresh generator.
	g := trace.New(p)
	var wantBranches, wantLoads int
	for i := 0; i < n; i++ {
		in := g.Next()
		if in.IsBranch() {
			wantBranches++
		}
		if in.IsLoad() {
			wantLoads++
		}
	}

	// The engine must fetch exactly that stream on the correct path, even
	// with fault injection forcing replays.
	m := config.SS2(config.Factors{S: true})
	m.FaultRate = 5e-5
	m.FaultSeed = 99
	e := New(m, trace.New(p))
	st, err := e.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if st.SoftExceptions == 0 {
		t.Skip("no exceptions triggered; invariant vacuous at this seed")
	}
	if st.Retired < n {
		t.Fatalf("retired %d < %d", st.Retired, n)
	}
}

// Wrong-path instructions must never write architectural rename state
// visible to correct-path instructions after a squash.
func TestRenameRollbackAfterSquash(t *testing.T) {
	p := testWorkload(45)
	p.PredictableFrac = 0.3 // mispredict-heavy
	e := New(config.SS1(), trace.New(p))
	for e.stats.Retired < 20000 {
		e.cycle()
		if e.wpBranch < 0 {
			// After any resolution, no wrong-path producer may linger in
			// the rename table.
			for r, rf := range e.lastWriter[ThreadM] {
				if e.w.live(rf) && e.w.flags[rf.slot]&fWrongPath != 0 {
					t.Fatalf("wrong-path writer survives squash in r%d", r)
				}
			}
		}
	}
	if e.stats.Squashes == 0 {
		t.Fatal("test exercised no squashes")
	}
}

// checkOp must map every op class to a valid checker operation.
func TestCheckOpTotal(t *testing.T) {
	for c := 0; c < isa.NumOpClasses; c++ {
		op := checkOp(isa.OpClass(c))
		if int(op) >= isa.NumOpClasses {
			t.Fatalf("checkOp(%v) = %v invalid", isa.OpClass(c), op)
		}
		if isa.OpClass(c).IsMem() && op != isa.OpIALU {
			t.Fatalf("memory check must be address verification, got %v", op)
		}
	}
}

// The B factor must stay minor: doubling decode/retire alone shifts IPC
// by only a few percent on the real workload suite (the paper's Table 2
// reports <= 3%).
func TestBFactorMinor(t *testing.T) {
	if testing.Short() {
		t.Skip("B-factor magnitude needs full-scale runs")
	}
	for _, name := range []string{"swim", "parser"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const warm, n = 150_000, 100_000
		base := warmRun(t, config.SS2(config.Factors{}), p, warm, n).IPC()
		b := warmRun(t, config.SS2(config.Factors{B: true}), p, warm, n).IPC()
		if change := (b - base) / base; change < -0.02 || change > 0.15 {
			t.Errorf("%s: B factor changed IPC by %.1f%%", name, 100*change)
		}
	}
}

// Lockstep SS2 must issue the two threads fairly: over a run, M and R
// issue counts agree to within the in-flight window.
func TestLockstepIssueFairness(t *testing.T) {
	st := runOn(t, config.SS2(config.Factors{}), testWorkload(61), testInstrs)
	diff := int64(st.IssuedM) - int64(st.IssuedR)
	if diff < 0 {
		diff = -diff
	}
	// M also issues wrong-path work, so allow slack beyond the window.
	if diff > int64(st.WrongPathFetched)+1024 {
		t.Fatalf("issue imbalance: M %d vs R %d (wrong-path %d)",
			st.IssuedM, st.IssuedR, st.WrongPathFetched)
	}
}

// With stagger enabled, the R-thread must actually trail: average stagger
// strictly positive, and bounded by the configured maximum.
func TestStaggerIsElastic(t *testing.T) {
	m := config.SS2(config.Factors{S: true})
	st := runOn(t, m, testWorkload(63), testInstrs)
	avg := st.AvgStagger()
	if avg <= 1 {
		t.Fatalf("average stagger %.2f: stagger mode is not trailing", avg)
	}
	if avg > float64(m.MaxStagger) {
		t.Fatalf("average stagger %.2f exceeds bound %d", avg, m.MaxStagger)
	}
}

// Prefetch what-if (extension): a stride prefetcher substitutes for part
// of the C-factor on streaming FP workloads — plain SS2 with prefetching
// approaches the IPC of SS2 with a doubled window. The C-factor does not
// vanish entirely: the random-access component of the miss stream is not
// prefetchable and remains window-bound.
func TestPrefetchSubstitutesForWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale prefetch what-if in short mode")
	}
	p, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const warm, n = 200_000, 120_000
	withPf := func(m config.Machine) config.Machine {
		m.Mem.Prefetch.Enable = true
		m.Name += "+PF"
		return m
	}
	base := warmRun(t, config.SS2(config.Factors{}), p, warm, n).IPC()
	basePf := warmRun(t, withPf(config.SS2(config.Factors{})), p, warm, n).IPC()
	if basePf <= base*1.2 {
		t.Fatalf("prefetch helped a pure stream by too little: %.3f -> %.3f", base, basePf)
	}
	c := warmRun(t, config.SS2(config.Factors{C: true}), p, warm, n).IPC()
	if basePf < c*0.8 {
		t.Fatalf("prefetched SS2 (%.3f) should approach SS2+C (%.3f)", basePf, c)
	}
	// And the prefetcher must actually be covering the stream.
	e := New(withPf(config.SS2(config.Factors{})), trace.New(p))
	if err := e.Warmup(warm); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(n); err != nil {
		t.Fatal(err)
	}
	issued, useful := e.Mem().PrefetchStats()
	if issued == 0 || float64(useful)/float64(issued) < 0.5 {
		t.Fatalf("prefetch accuracy %d/%d too low", useful, issued)
	}
}
