package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestArchSigDeterministic pins that two identical runs produce the same
// architectural retirement signature, and that distinct workload seeds
// produce distinct signatures.
func TestArchSigDeterministic(t *testing.T) {
	a := runOn(t, config.SS1(), testWorkload(1), testInstrs)
	b := runOn(t, config.SS1(), testWorkload(1), testInstrs)
	if a.ArchSig != b.ArchSig {
		t.Fatalf("same run, different signatures: %#x vs %#x", a.ArchSig, b.ArchSig)
	}
	if a.ArchSig == 0 {
		t.Fatal("signature never accumulated")
	}
	c := runOn(t, config.SS1(), testWorkload(2), testInstrs)
	if a.ArchSig == c.ArchSig {
		t.Fatalf("different workloads, same signature %#x", a.ArchSig)
	}
}

// TestArchSigDivergesOnSilentCorruption is the SDC oracle: an unprotected
// SS1 run that retires corrupted results must diverge from the fault-free
// golden signature, while a SHREC run (which detects and replays every
// fault) must not.
func TestArchSigDivergesOnSilentCorruption(t *testing.T) {
	p := testWorkload(7)
	golden := runOn(t, config.SS1(), p, testInstrs)

	faulty := config.SS1()
	faulty.FaultRate = 1e-3
	faulty.FaultSeed = 0xBAD
	st := runOn(t, faulty, p, testInstrs)
	if st.SilentCorruptions == 0 {
		t.Fatal("SS1 at 1e-3 injected no escaping fault; test workload too short")
	}
	if st.ArchSig == golden.ArchSig {
		t.Fatalf("silent corruptions (%d) did not diverge the signature", st.SilentCorruptions)
	}

	goldenShrec := runOn(t, config.SHREC(), p, testInstrs)
	protected := config.SHREC()
	protected.FaultRate = 1e-3
	protected.FaultSeed = 0xBAD
	pst := runOn(t, protected, p, testInstrs)
	if pst.FaultsDetected == 0 {
		t.Fatal("SHREC detected no faults at 1e-3")
	}
	if pst.ArchSig != goldenShrec.ArchSig {
		t.Fatalf("SHREC recovered every fault but signature diverged: %#x vs %#x",
			pst.ArchSig, goldenShrec.ArchSig)
	}
}

// TestFaultWindow pins the injection window: a machine whose window
// excludes the whole run injects nothing and matches the fault-free run
// bit for bit; a window covering only the tail injects strictly fewer
// faults than an unbounded machine.
func TestFaultWindow(t *testing.T) {
	p := testWorkload(3)
	golden := runOn(t, config.SS1(), p, testInstrs)

	closed := config.SS1()
	closed.FaultRate = 1e-2
	closed.FaultSeed = 0xF00
	closed.FaultWindowLo = 10 * testInstrs // far past the run
	closed.FaultWindowHi = 11 * testInstrs
	st := runOn(t, closed, p, testInstrs)
	if st.FaultsInjected != 0 {
		t.Fatalf("window beyond the run still injected %d faults", st.FaultsInjected)
	}
	if st != golden {
		t.Fatalf("closed-window run diverged from fault-free run:\n%+v\nvs\n%+v", st, golden)
	}

	open := config.SS1()
	open.FaultRate = 1e-2
	open.FaultSeed = 0xF00
	all := runOn(t, open, p, testInstrs)

	tail := open
	tail.FaultWindowLo = testInstrs / 2
	tail.FaultWindowHi = testInstrs
	half := runOn(t, tail, p, testInstrs)
	if half.FaultsInjected == 0 || half.FaultsInjected >= all.FaultsInjected {
		t.Fatalf("tail window injected %d faults, unbounded %d", half.FaultsInjected, all.FaultsInjected)
	}
}

// TestFaultWindowValidation pins the empty-window configuration error.
func TestFaultWindowValidation(t *testing.T) {
	m := config.SS1()
	m.FaultWindowLo = 10
	m.FaultWindowHi = 10
	if err := m.Validate(); err == nil {
		t.Fatal("empty fault window passed validation")
	}
	m.FaultWindowHi = 9
	if err := m.Validate(); err == nil {
		t.Fatal("inverted fault window passed validation")
	}
	m.FaultWindowHi = 11
	if err := m.Validate(); err != nil {
		t.Fatalf("valid window rejected: %v", err)
	}
}

// TestRunBudget pins the cycle-budget watchdog: an impossible budget
// stops the run with ErrCycleBudget and partial stats, a generous budget
// changes nothing.
func TestRunBudget(t *testing.T) {
	p := testWorkload(5)
	e := New(config.SS1(), trace.New(p))
	st, err := e.RunBudget(context.Background(), testInstrs, 50)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if st.Retired >= testInstrs {
		t.Fatalf("budgeted run still retired all %d instructions", st.Retired)
	}

	ref := runOn(t, config.SS1(), p, testInstrs)
	e2 := New(config.SS1(), trace.New(p))
	st2, err := e2.RunBudget(context.Background(), testInstrs, ref.Cycles*4)
	if err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
	if st2 != ref {
		t.Fatal("generous budget changed the run's stats")
	}

	// Exact-edge budget: the step that retires the final instruction may
	// carry Cycles past the budget, and that run COMPLETED — it must not
	// be classified as hung.
	e3 := New(config.SS1(), trace.New(p))
	st3, err := e3.RunBudget(context.Background(), testInstrs, ref.Cycles-1)
	if err != nil {
		t.Fatalf("run finishing on the budget edge misclassified: %v", err)
	}
	if st3 != ref {
		t.Fatal("edge-budget run changed the run's stats")
	}
}

// TestRunBudgetAbsorbsLivelock pins the large-budget interaction with the
// engine's stall detector: a zero-retirement recovery livelock under a
// budget bigger than the stall limit must classify as ErrCycleBudget (a
// hang trial), not surface as a deadlock error that would abort a whole
// campaign.
func TestRunBudgetAbsorbsLivelock(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates >1M livelock cycles")
	}
	m := config.SHREC()
	m.FaultRate = 1 // every instruction faulty: the head can never retire
	m.FaultSeed = 1
	e := New(m, trace.New(testWorkload(9)))
	_, err := e.RunBudget(context.Background(), 1000, 2_000_000)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("livelock under a >stall-limit budget returned %v, want ErrCycleBudget", err)
	}
}
