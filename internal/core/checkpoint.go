package core

import (
	"errors"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// ErrNoCloneSource is returned by Checkpoint when the engine's instruction
// source cannot snapshot its stream position.
var ErrNoCloneSource = errors.New("core: instruction source does not implement trace.CloneSource")

// Checkpoint is a frozen deep copy of an engine mid-run: architectural and
// stream position (trace source, fetch sequence), predictor and BTB tables,
// cache contents and in-flight misses, functional-unit occupancy, and the
// whole pipeline window. A checkpoint is inert — it never advances — and a
// single checkpoint can seed any number of engines via NewEngine, which is
// what makes warmup sharing across fault-campaign trials and interval-
// parallel simulation sound: every engine spawned from the same checkpoint
// replays the identical future.
type Checkpoint struct {
	e *Engine
}

// Checkpoint captures the engine's complete state. It fails with
// ErrNoCloneSource when the instruction source cannot be cloned (a custom
// Source not implementing trace.CloneSource).
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if _, ok := e.gen.(trace.CloneSource); !ok {
		return nil, ErrNoCloneSource
	}
	return &Checkpoint{e: e.deepClone()}, nil
}

// FetchSeq returns the next correct-path fetch sequence number at the
// checkpoint — the boundary before which the checkpointed execution already
// fetched. Fault campaigns use it to decide whether a cached warmup
// checkpoint is reusable: injection windows starting at or after FetchSeq
// cannot have consumed fault randomness before the capture.
func (cp *Checkpoint) FetchSeq() uint64 { return cp.e.fetchSeq }

// Stats returns the statistics accumulated up to the checkpoint.
func (cp *Checkpoint) Stats() Stats { return cp.e.stats }

// NewEngine returns a fresh engine continuing from the checkpoint. Each
// call yields an independent engine; running one never perturbs the
// checkpoint or its siblings.
func (cp *Checkpoint) NewEngine() *Engine { return cp.e.deepClone() }

// Restore rewinds e to the checkpointed state in place. All of e's prior
// state, including any retire hook, is replaced by the checkpoint's.
func (e *Engine) Restore(cp *Checkpoint) { *e = *cp.e.deepClone() }

// SetFaultConfig reconfigures fault injection on a (typically
// checkpoint-spawned) engine: per-instruction rate, injector seed, and the
// [lo, hi) correct-path fetch-sequence window (hi == 0 disables only the
// upper bound; lo always applies, which is how recovery's re-injection
// guard advances past a rolled-back fault). The injector RNG restarts from
// the seed. Because faultEligible
// checks the rate and window before drawing randomness, a pre-checkpoint
// execution with injection disabled is bit-identical to one that never
// faults, so enabling injection after restoring a warmup checkpoint is
// exactly equivalent to having run the whole trial from cold start —
// provided the window does not reach back before the capture point (see
// Checkpoint.FetchSeq).
func (e *Engine) SetFaultConfig(rate float64, seed uint64, lo, hi uint64) {
	e.cfg.FaultRate = rate
	e.cfg.FaultSeed = seed
	e.cfg.FaultWindowLo, e.cfg.FaultWindowHi = lo, hi
	e.frng = rng.New(seed ^ 0xfa117_5eed)
}

// deepClone returns a fully independent copy of the engine.
func (e *Engine) deepClone() *Engine {
	c := *e
	c.gen = e.gen.(trace.CloneSource).CloneSource()
	c.pred = e.pred.Clone()
	c.btb = e.btb.Clone()
	c.pool = e.pool.Clone()
	if e.checkerPool != nil {
		c.checkerPool = e.checkerPool.Clone()
	}
	c.mem = e.mem.Clone()
	c.frng = e.frng.Clone()
	c.w = e.w.clone()
	c.robM = e.robM.clone()
	c.robR = e.robR.clone()
	c.lsq = e.lsq.clone()
	c.pendingR = e.pendingR.clone()
	c.meekLog = e.meekLog.clone()
	c.meekBusy = append([]int64(nil), e.meekBusy...)
	c.replay = append([]isa.Inst(nil), e.replay...)
	// Preserve the event heap's preallocated capacity so the clone stays
	// allocation-free in steady state.
	c.events = make([]int64, len(e.events), cap(e.events))
	copy(c.events, e.events)
	return &c
}

// clone returns a deep copy of the window.
func (w *window) clone() window {
	c := *w
	c.gen = append([]uint32(nil), w.gen...)
	c.seq = append([]uint64(nil), w.seq...)
	c.inst = append([]isa.Inst(nil), w.inst...)
	c.flags = append([]uint16(nil), w.flags...)
	c.dispatchedAt = append([]int64(nil), w.dispatchedAt...)
	c.completeAt = append([]int64(nil), w.completeAt...)
	c.complete2At = append([]int64(nil), w.complete2At...)
	c.checkedAt = append([]int64(nil), w.checkedAt...)
	c.faultAt = append([]int64(nil), w.faultAt...)
	c.dep1 = append([]ref(nil), w.dep1...)
	c.dep2 = append([]ref(nil), w.dep2...)
	c.pair = append([]ref(nil), w.pair...)
	c.prevWriter = append([]ref(nil), w.prevWriter...)
	c.fwdStore = append([]ref(nil), w.fwdStore...)
	c.waitCnt = append([]uint8(nil), w.waitCnt...)
	c.readyAt = append([]int64(nil), w.readyAt...)
	c.consumers = append([]uint64(nil), w.consumers...)
	c.ready = append([]uint64(nil), w.ready...)
	c.isq[0] = append([]uint64(nil), w.isq[0]...)
	c.isq[1] = append([]uint64(nil), w.isq[1]...)
	return c
}

// clone returns a deep copy of the fifo.
func (q *idxFifo) clone() idxFifo {
	c := *q
	c.buf = append([]int32(nil), q.buf...)
	return c
}
