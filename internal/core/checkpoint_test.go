package core

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// runTo drives the engine until its total retired count reaches n.
func runTo(t *testing.T, e *Engine, n uint64) Stats {
	t.Helper()
	st, err := e.Run(n)
	if err != nil {
		t.Fatalf("run to %d: %v", n, err)
	}
	return st
}

// assertSameState compares the externally visible counters of two engines
// that should have executed identical histories.
func assertSameState(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Errorf("%s: Stats diverge\n a: %+v\n b: %+v", label, sa, sb)
	}
	if ia, ib := a.Pool().Issued(), b.Pool().Issued(); ia != ib {
		t.Errorf("%s: FU issued diverge: %v vs %v", label, ia, ib)
	}
	if ma, mb := a.Mem().AttemptCounters(), b.Mem().AttemptCounters(); ma != mb {
		t.Errorf("%s: memory attempt counters diverge\n a: %+v\n b: %+v", label, ma, mb)
	}
}

// TestCheckpointRoundTrip checkpoints every equivalence machine mid-run and
// requires the original engine, a checkpoint-spawned engine, and a second
// engine spawned after the first finished to reach byte-identical state —
// proving the checkpoint is a complete capture and that running one spawn
// never perturbs the checkpoint.
func TestCheckpointRoundTrip(t *testing.T) {
	p := memWorkload(7)
	const mid, end = 4000, 16000
	for _, m := range equivalenceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			e := New(m, trace.New(p))
			runTo(t, e, mid)
			cp, err := e.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if got := cp.FetchSeq(); got < mid {
				t.Errorf("checkpoint FetchSeq %d below retired count %d", got, mid)
			}
			clone := cp.NewEngine()
			runTo(t, e, end)
			runTo(t, clone, end)
			assertSameState(t, "original vs clone", e, clone)

			// The checkpoint must be unchanged by either continuation.
			clone2 := cp.NewEngine()
			runTo(t, clone2, end)
			assertSameState(t, "clone vs late clone", clone, clone2)
		})
	}
}

// TestCheckpointRoundTripTickLoop covers the reference tick-by-tick loop:
// the checkpoint must also capture the oracle-free path's state exactly.
func TestCheckpointRoundTripTickLoop(t *testing.T) {
	p := memWorkload(9)
	m := config.SS2(config.Factors{})
	e := New(m, trace.New(p), WithTickLoop())
	runTo(t, e, 3000)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	clone := cp.NewEngine()
	runTo(t, e, 9000)
	runTo(t, clone, 9000)
	assertSameState(t, "tick-loop original vs clone", e, clone)
}

// TestCheckpointRestore rewinds an engine in place and requires the replay
// to match the first continuation exactly.
func TestCheckpointRestore(t *testing.T) {
	p := memWorkload(13)
	e := New(config.SHREC(), trace.New(p))
	runTo(t, e, 4000)
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	want := runTo(t, e, 16000)
	e.Restore(cp)
	if got := e.Stats(); got != cp.Stats() {
		t.Fatalf("restore did not rewind stats: %+v vs %+v", got, cp.Stats())
	}
	got := runTo(t, e, 16000)
	if want != got {
		t.Errorf("replay after Restore diverged\n first: %+v\nreplay: %+v", want, got)
	}
}

// noCloneSource wraps a Source while hiding its CloneSource method.
type noCloneSource struct{ s trace.Source }

func (n noCloneSource) Next() isa.Inst          { return n.s.Next() }
func (n noCloneSource) NextWrongPath() isa.Inst { return n.s.NextWrongPath() }

// TestCheckpointRequiresCloneSource pins the error contract for sources
// that cannot snapshot their stream position.
func TestCheckpointRequiresCloneSource(t *testing.T) {
	e := New(config.SS1(), noCloneSource{trace.New(testWorkload(3))})
	if _, err := e.Checkpoint(); !errors.Is(err, ErrNoCloneSource) {
		t.Fatalf("Checkpoint error = %v, want ErrNoCloneSource", err)
	}
}

// TestCheckpointFaultReinjection validates the warmup-sharing contract
// fault campaigns rely on: a fault-free engine checkpointed before the
// injection window, re-armed with SetFaultConfig, must replay the exact
// trial a cold-started faulty engine produces — because fault eligibility
// checks the window before drawing randomness, the pre-window prefix
// consumes no injector state.
func TestCheckpointFaultReinjection(t *testing.T) {
	p := memWorkload(17)
	const (
		mid, end = 4000, 16000
		rate     = 2e-4
		seed     = 123
		lo, hi   = 8000, 18000
	)

	cold := config.SHREC()
	cold.FaultRate = rate
	cold.FaultSeed = seed
	cold.FaultWindowLo, cold.FaultWindowHi = lo, hi
	ec := New(cold, trace.New(p))
	runTo(t, ec, mid)

	base := config.SHREC()
	eb := New(base, trace.New(p))
	runTo(t, eb, mid)
	cp, err := eb.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if fs := cp.FetchSeq(); fs > lo {
		t.Fatalf("test premise broken: checkpoint FetchSeq %d already past window start %d", fs, lo)
	}

	clone := cp.NewEngine()
	clone.SetFaultConfig(rate, seed, lo, hi)
	runTo(t, ec, end)
	runTo(t, clone, end)
	assertSameState(t, "cold faulty vs checkpointed+rearmed", ec, clone)
	if clone.Stats().FaultsInjected == 0 {
		t.Error("no faults injected inside the window; test exercised nothing")
	}
}
