package core

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// This file is the cross-mode conformance suite: the contract every
// execution mode — the 2004 designs and their modern successors alike —
// must satisfy before it can be trusted by the layers above. A new mode
// added to internal/core is not done until it appears in
// conformanceMachines and every test here passes:
//
//  1. byte-determinism: two runs of the same configuration produce
//     byte-identical Stats, including the architectural signature;
//  2. checkpoint/restore round-trip: the original engine, a sibling
//     spawned from a mid-run checkpoint, and an in-place restore all
//     replay byte-identical futures;
//  3. chunked-run stitch identity: RunExact boundaries compose — many
//     short exact runs equal one contiguous run in stream, signature,
//     cycles, and event counts (the core-level half of interval-parallel
//     stitching; the sim-level half lives in internal/sim's interval
//     tests);
//  4. fault-free ArchSig agreement with SS1: every mode commits the same
//     architectural stream, so redundancy must never perturb the
//     retirement signature;
//  5. steady-state zero allocation: the hot loop of every mode runs
//     without heap allocation (the bench gate enforces the same bound in
//     CI via BenchmarkCycle).
//
// The fast-forward/tick-loop equivalence and cross-machine determinism
// sweeps in equivalence_test.go and determinism_test.go extend this
// contract; conformanceMachines and equivalenceMachines must both cover
// any new mode.

// conformanceMachines returns one fault-free representative of every
// execution mode, including modifier variants with their own issue- or
// retire-stage code paths. The FLEX period is short so test-sized runs
// cross many region boundaries.
func conformanceMachines() []config.Machine {
	return []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{S: true}),
		config.SHREC(),
		config.DIVA(),
		config.O3RS(),
		config.MEEK(2),
		config.MEEK(4),
		config.SHREC().WithContexts(4),
		config.DIVA().WithContexts(2),
		config.FlexMachine(512, 128),
		config.FLEX(),
	}
}

const (
	conformWarm = 3000
	conformRun  = 15000
)

// TestConformanceDeterminism: identical construction implies
// byte-identical results, with no hidden global or time-dependent state.
func TestConformanceDeterminism(t *testing.T) {
	for _, m := range conformanceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			p := testWorkload(7)
			a := runOn(t, m, p, conformRun)
			b := runOn(t, m, p, conformRun)
			if a != b {
				t.Errorf("two identical runs diverged\n a: %+v\n b: %+v", a, b)
			}
			if a.ArchSig == 0 {
				t.Error("ArchSig is zero; the signature fold exercised nothing")
			}
		})
	}
}

// TestConformanceCheckpointRestore: a checkpoint is a complete capture —
// the original engine continuing past the capture point, a sibling
// spawned from the checkpoint, and the original restored in place must
// all replay the identical future, byte for byte. Every piece of
// mode-specific state (the MEEK retirement log and lane timers, the
// multi-context check prefix, the FLEX region position) must deep-clone,
// or the three diverge.
func TestConformanceCheckpointRestore(t *testing.T) {
	for _, m := range conformanceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			p := testWorkload(11)

			e := New(m, trace.New(p))
			if _, err := e.Run(conformRun / 3); err != nil {
				t.Fatal(err)
			}
			cp, err := e.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			// The original continues to the full target...
			want, err := e.Run(conformRun)
			if err != nil {
				t.Fatal(err)
			}

			// ...a sibling engine spawned from the checkpoint must land on
			// exactly the same stats...
			fresh := cp.NewEngine()
			got, err := fresh.Run(conformRun)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("checkpoint-spawned run diverged from the original\n want: %+v\n got:  %+v", want, got)
			}

			// ...and so must the original after an in-place rewind.
			e.Restore(cp)
			got, err = e.Run(conformRun)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("restored run diverged\n want: %+v\n got:  %+v", want, got)
			}
		})
	}
}

// dropOccupancySums zeroes the per-cycle occupancy accumulators, the one
// family of counters a chunk boundary may legitimately skew: RunExact
// pauses retirement at the boundary inside the cut cycle, so entries that
// a contiguous run would have retired that cycle are still occupying the
// ROB/LSQ when the end-of-cycle occupancy sample is taken (and retire one
// cycle later, in the next chunk). The committed stream, the signature,
// the cycle count, and every event counter are exact across the cut.
func dropOccupancySums(s Stats) Stats {
	s.ROBOccSum = 0
	s.ISQOccSum = 0
	s.LSQOccSum = 0
	s.StaggerSum = 0
	s.MSHROccSum = 0
	s.MeekLogOccSum = 0
	return s
}

// TestConformanceChunkedStitch: RunExact boundaries compose in every mode
// — a run cut into arbitrary chunks retires exactly the same stream,
// folds the same signature, and counts the same cycles and events as one
// contiguous run (occupancy integrals excepted; see dropOccupancySums).
// Interval-parallel simulation and recovery's checkpoint cadence both
// stand on this.
func TestConformanceChunkedStitch(t *testing.T) {
	ctx := context.Background()
	for _, m := range conformanceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			p := testWorkload(13)

			whole := New(m, trace.New(p))
			want, err := whole.RunExact(ctx, conformRun, 0)
			if err != nil {
				t.Fatal(err)
			}

			chunked := New(m, trace.New(p))
			var got Stats
			for _, target := range []uint64{1, conformRun / 5, conformRun / 2, conformRun - 7, conformRun} {
				if got, err = chunked.RunExact(ctx, target, 0); err != nil {
					t.Fatal(err)
				}
				if got.Retired != target {
					t.Fatalf("chunk boundary missed: retired %d, want exactly %d", got.Retired, target)
				}
			}
			if got.ArchSig != want.ArchSig {
				t.Errorf("chunked ArchSig %#x != contiguous %#x: the cut perturbed the committed stream",
					got.ArchSig, want.ArchSig)
			}
			// SS2's duplicated R-stream couples retirement backpressure
			// into issue timing: pausing M-stream retirement at a cut
			// shifts which wrong-path work issues before its squash, so
			// the duplication modes are held to the architectural clauses
			// only. Every checker mode must match cycle-for-cycle.
			if m.Mode != config.ModeSS2 && dropOccupancySums(got) != dropOccupancySums(want) {
				t.Errorf("chunked run diverged from contiguous\n want: %+v\n got:  %+v", want, got)
			}
		})
	}
}

// TestConformanceArchSigAgreesWithSS1: redundancy is microarchitecture,
// not architecture. Fault-free, every mode retires the identical
// committed instruction stream, so its signature over the first n
// retirements must equal the unprotected baseline's.
func TestConformanceArchSigAgreesWithSS1(t *testing.T) {
	p := testWorkload(17)
	base := runOn(t, config.SS1(), p, conformRun)
	if base.ArchSig == 0 {
		t.Fatal("SS1 ArchSig is zero")
	}
	for _, m := range conformanceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			st := runOn(t, m, p, conformRun)
			if st.ArchSig != base.ArchSig {
				t.Errorf("%s ArchSig %#x != SS1 %#x: the mode perturbed the committed stream",
					m.Name, st.ArchSig, base.ArchSig)
			}
			if st.Retired < conformRun {
				t.Errorf("retired %d < %d", st.Retired, conformRun)
			}
		})
	}
}

// TestConformanceZeroAlloc: after warmup, continuing a run allocates
// nothing — each mode's checker state (retirement log, lane timers,
// context scan) must live in preallocated structures. BenchmarkCycle and
// the bench gate enforce the same bound with -benchmem in CI; this test
// catches regressions in a plain `go test` run.
func TestConformanceZeroAlloc(t *testing.T) {
	for _, m := range conformanceMachines() {
		t.Run(m.Name, func(t *testing.T) {
			e := New(m, trace.New(testWorkload(19)))
			if err := e.Warmup(conformWarm); err != nil {
				t.Fatal(err)
			}
			target := uint64(0)
			allocs := testing.AllocsPerRun(5, func() {
				target += 2000
				if _, err := e.Run(target); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state run allocates %.1f times per 2000 instructions; want 0", allocs)
			}
		})
	}
}
