package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trace"
)

// An already-cancelled context stops the run at the first checkpoint,
// returning the context error with consistent partial stats.
func TestRunContextCancelled(t *testing.T) {
	e := New(config.SS1(), trace.New(testWorkload(51)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := e.RunContext(ctx, 100_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most one checkpoint interval of cycles may have elapsed.
	if st.Cycles > 2*ctxCheckInterval {
		t.Fatalf("ran %d cycles after cancellation", st.Cycles)
	}
}

// Cancellation mid-run lands promptly (within checkpoint granularity).
func TestRunContextCancelMidRun(t *testing.T) {
	e := New(config.SHREC(), trace.New(testWorkload(53)))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.RunContext(ctx, 1_000_000_000)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

// A deadline bounds WarmupContext the same way.
func TestWarmupContextDeadline(t *testing.T) {
	e := New(config.SS1(), trace.New(testWorkload(55)))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := e.WarmupContext(ctx, 1_000_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// The context plumbing must not change simulation results: a run under a
// live context is cycle-identical to the plain Run path.
func TestRunContextDeterministicVsRun(t *testing.T) {
	a := New(config.SS2(config.Factors{S: true}), trace.New(testWorkload(57)))
	b := New(config.SS2(config.Factors{S: true}), trace.New(testWorkload(57)))
	sa, err := a.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.RunContext(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("context run diverged:\n%+v\n%+v", sa, sb)
	}
}
