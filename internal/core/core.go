package core
