package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestDeterminism asserts that two freshly-built engines with the same
// machine, seed, and workload produce identical Stats after Warmup+Run.
// This guards the dyn freelist and generation recycling (and now the
// wakeup cache and event heap) against state leaking between
// instructions: any reuse bug shows up as a divergence between a fresh
// allocation pattern and a recycled one long before it corrupts an
// experiment.
func TestDeterminism(t *testing.T) {
	machines := equivalenceMachines()
	workloads := []trace.Profile{testWorkload(21), memWorkload(21)}
	if testing.Short() {
		workloads = workloads[:1]
	}
	run := func(m config.Machine, p trace.Profile) Stats {
		e := New(m, trace.New(p))
		if err := e.Warmup(4000); err != nil {
			t.Fatalf("%s on %s: warmup: %v", m.Name, p.Name, err)
		}
		st, err := e.Run(12000)
		if err != nil {
			t.Fatalf("%s on %s: %v", m.Name, p.Name, err)
		}
		return st
	}
	for _, m := range machines {
		for _, p := range workloads {
			t.Run(m.Name+"/"+p.Name, func(t *testing.T) {
				a, b := run(m, p), run(m, p)
				if a != b {
					t.Errorf("%s on %s: identical engines diverge\n first: %+v\nsecond: %+v", m.Name, p.Name, a, b)
				}
			})
		}
	}
}
