// Package core implements the paper's cycle-level out-of-order pipeline in
// its three execution models: SS1 (conventional single-threaded), SS2
// (symmetric redundant execution with an optional elastic stagger), and
// SHREC (asymmetric redundant execution with an in-order checker sharing
// the functional units).
//
// The model is trace driven and structurally accurate in the same sense as
// the modified sim-outorder the paper used: it tracks per-cycle issue
// bandwidth, functional unit occupancy (including unpipelined divides),
// ISQ/ROB/LSQ capacity, memory ports, MSHRs, bus contention, branch
// prediction with wrong-path resource consumption, and in-order retirement
// with pairwise result checking.
package core

import (
	"math"

	"repro/internal/isa"
)

// Thread identifies the main (leading) or redundant (trailing) copy of an
// instruction in redundant execution modes.
type Thread uint8

const (
	// ThreadM is the main thread: it performs memory accesses and, in
	// SHREC, runs on the out-of-order pipeline.
	ThreadM Thread = iota
	// ThreadR is the redundant copy: in SS2 it executes independently but
	// reads load values from the LVQ; in SHREC it is replaced by the
	// in-order checker.
	ThreadR
)

// String returns "M" or "R".
func (t Thread) String() string {
	if t == ThreadM {
		return "M"
	}
	return "R"
}

// notDone marks a completion time that has not been scheduled yet.
const notDone = int64(math.MaxInt64)

// depRef is a producer link captured at rename. The generation tag guards
// against the producer's dyn record being recycled after retirement: a
// mismatched generation means the producer has long since completed.
type depRef struct {
	d   *dyn
	gen uint32
}

// ready reports whether the producer's result is available at cycle now.
func (r depRef) ready(now int64) bool {
	if r.d == nil || r.d.gen != r.gen {
		return true
	}
	return r.d.issued && r.d.completeAt <= now
}

// earliest returns a lower bound on the cycle at which the producer's
// result can become available, for a reference that is not ready at now.
// An issued producer's completion time is exact. An unissued producer's
// own wake bound propagates transitively: it cannot issue before its
// wakeAt, so (with a minimum latency of one cycle) it cannot complete
// before wakeAt+1 — this is what lets a whole dependence chain behind one
// cache miss go quiescent instead of re-checking every cycle.
func (r depRef) earliest(now int64) int64 {
	if r.d.issued {
		return r.d.completeAt
	}
	if w := r.d.wakeAt + 1; w > now+1 {
		return w
	}
	return now + 1
}

// dyn is one in-flight dynamic instruction (one thread copy).
type dyn struct {
	gen    uint32 // recycling generation
	seq    uint64 // program-order index (shared by both copies of a pair)
	inst   isa.Inst
	thread Thread
	// wrongPath marks instructions fetched past an unresolved mispredicted
	// branch; they consume resources but are squashed at resolution.
	wrongPath bool

	dispatchedAt int64
	dep1, dep2   depRef

	// wakeAt caches a lower bound on the cycle this entry could issue,
	// refreshed whenever an issue attempt fails on a producer with a known
	// completion time. The issue scans skip the full dependency re-walk
	// while now < wakeAt. Zero means "no bound cached" (always check); the
	// reference tick loop never writes it.
	wakeAt int64

	issued     bool
	completeAt int64 // result availability; notDone until issued

	// checkIssued/checkedAt drive the SHREC checker (M-thread entries) or
	// record pair verification (SS2).
	checkIssued bool
	checkedAt   int64

	// pair links the two copies of an SS2 instruction.
	pair *dyn

	// issued2/complete2At/faulty2 track the second execution of an O3RS
	// instruction (both executions share this record and its ISQ/ROB
	// entry).
	issued2     bool
	complete2At int64
	faulty2     bool

	// prevWriter supports rename rollback on squash.
	prevWriter depRef

	// mispredict marks a correct-path branch whose prediction was wrong
	// (direction or indirect target); resolution triggers a squash.
	mispredict bool

	// faulty marks an injected transient error in this copy's result;
	// faultAt records the injection cycle for detection-latency stats.
	faulty  bool
	faultAt int64

	// inLSQ marks M-thread memory ops occupying an LSQ entry.
	inLSQ bool

	// fwdState/fwdStore memoize the load's store-to-load forwarding
	// source, computed on the first issue attempt. The matching-store set
	// of a load is fixed at dispatch (younger stores never match, and the
	// youngest older match leaving the LSQ means every older store has
	// retired), so one LSQ scan answers all retries; the depRef
	// generation detects the store's retirement. Unused (fwdUnknown) in
	// the reference tick loop, which re-scans every attempt.
	fwdState uint8
	fwdStore depRef
}

// Store-forwarding memo states.
const (
	fwdUnknown uint8 = iota
	fwdFromStore
	fwdNone
)

// completed reports whether the instruction's result is available.
func (d *dyn) completed(now int64) bool { return d.issued && d.completeAt <= now }

// checked reports whether verification finished (SHREC).
func (d *dyn) checked(now int64) bool { return d.checkedAt <= now }

// depsReady reports whether both source operands are available.
func (d *dyn) depsReady(now int64) bool {
	return d.dep1.ready(now) && d.dep2.ready(now)
}

// fifo is a FIFO of in-flight instructions with an amortized head index
// (used for the per-thread ROB views and the LSQ).
type fifo struct {
	buf  []*dyn
	head int
}

func (q *fifo) push(d *dyn) { q.buf = append(q.buf, d) }

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) empty() bool { return q.len() == 0 }

// front returns the oldest entry; it panics on an empty queue.
func (q *fifo) front() *dyn { return q.buf[q.head] }

// at returns the i-th oldest entry.
func (q *fifo) at(i int) *dyn { return q.buf[q.head+i] }

// pop removes and returns the oldest entry, compacting occasionally.
func (q *fifo) pop() *dyn {
	d := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 4096 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return d
}

// clear drops all entries, invoking f on each (oldest first).
func (q *fifo) clear(f func(*dyn)) {
	for i := q.head; i < len(q.buf); i++ {
		f(q.buf[i])
	}
	q.buf = q.buf[:0]
	q.head = 0
}

// removeIf deletes entries matching pred, preserving order, and calls f on
// each removed entry.
func (q *fifo) removeIf(pred func(*dyn) bool, f func(*dyn)) {
	w := q.head
	for i := q.head; i < len(q.buf); i++ {
		d := q.buf[i]
		if pred(d) {
			if f != nil {
				f(d)
			}
			continue
		}
		q.buf[w] = d
		w++
	}
	for i := w; i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:w]
}
