// Package core implements the paper's cycle-level out-of-order pipeline in
// its three execution models: SS1 (conventional single-threaded), SS2
// (symmetric redundant execution with an optional elastic stagger), and
// SHREC (asymmetric redundant execution with an in-order checker sharing
// the functional units).
//
// The model is trace driven and structurally accurate in the same sense as
// the modified sim-outorder the paper used: it tracks per-cycle issue
// bandwidth, functional unit occupancy (including unpipelined divides),
// ISQ/ROB/LSQ capacity, memory ports, MSHRs, bus contention, branch
// prediction with wrong-path resource consumption, and in-order retirement
// with pairwise result checking.
//
// In-flight instructions live in a struct-of-arrays window (see window): a
// ring arena of parallel field arrays indexed by slot, so the steady-state
// simulation loop allocates nothing and dependency wakeup is tracked with
// per-producer consumer bitmasks instead of pointer walks.
package core

import (
	"math"
	"math/bits"

	"repro/internal/isa"
)

// Thread identifies the main (leading) or redundant (trailing) copy of an
// instruction in redundant execution modes.
type Thread uint8

const (
	// ThreadM is the main thread: it performs memory accesses and, in
	// SHREC, runs on the out-of-order pipeline.
	ThreadM Thread = iota
	// ThreadR is the redundant copy: in SS2 it executes independently but
	// reads load values from the LVQ; in SHREC it is replaced by the
	// in-order checker.
	ThreadR
)

// String returns "M" or "R".
func (t Thread) String() string {
	if t == ThreadM {
		return "M"
	}
	return "R"
}

// notDone marks a completion time that has not been scheduled yet.
const notDone = int64(math.MaxInt64)

// ref names one in-flight instruction: a window slot plus the generation
// the slot held when the reference was captured. The generation tag guards
// against slot recycling after retirement or squash: a mismatched
// generation means the referent has long since left the window.
type ref struct {
	slot int32 // -1 = no referent
	gen  uint32
}

// noRef is the empty reference.
var noRef = ref{slot: -1}

// Per-slot flag bits (window.flags).
const (
	// fThread set marks the R (redundant) copy.
	fThread uint16 = 1 << iota
	// fWrongPath marks instructions fetched past an unresolved mispredicted
	// branch; they consume resources but are squashed at resolution.
	fWrongPath
	fIssued
	// fIssued2 marks the second O3RS execution as issued.
	fIssued2
	// fCheckIssued drives the SHREC checker (M-thread entries).
	fCheckIssued
	// fMispredict marks a correct-path branch whose prediction was wrong
	// (direction or indirect target); resolution triggers a squash.
	fMispredict
	// fFaulty marks an injected transient error in this copy's result;
	// fFaulty2 marks one in the second O3RS execution.
	fFaulty
	fFaulty2
	// fInLSQ marks M-thread memory ops occupying an LSQ entry.
	fInLSQ
	// fFwdFromStore/fFwdNone memoize the load's store-to-load forwarding
	// source (see Engine.forwardingStore): neither bit set means unknown.
	fFwdFromStore
	fFwdNone
)

// window is the struct-of-arrays storage for in-flight instructions. Slots
// are allocated from a ring ([head, head+n) modulo capacity), so slot order
// is age order: retirement frees at the head, wrong-path squashes rewind a
// contiguous tail, and a soft exception resets the whole ring. Capacity is
// ROBSize plus slack — every in-flight copy (robM, robR, pendingR) counts
// against the shared ROB capacity, which the dispatch guards enforce.
//
// Dependency wakeup is bitmap based. Each slot carries waitCnt, the number
// of its distinct unissued producers, and readyAt, the latest completion
// time over its issued producers. A producer's consumers row records which
// slots wait on it; when the producer issues, the row is broadcast:
// each consumer's waitCnt drops, its readyAt folds in the completion time,
// and at zero the consumer's bit sets in the ready mask. The issue stage
// scans (isq AND ready) words in ring age order with trailing-zeros bit
// iteration, so stalled dependence chains cost nothing per cycle.
type window struct {
	capacity int32
	words    int32 // uint64 words per bitmask = ceil(capacity/64)

	head, tail, n int32

	gen   []uint32
	seq   []uint64 // program-order index (shared by both copies of a pair)
	inst  []isa.Inst
	flags []uint16

	dispatchedAt []int64
	completeAt   []int64 // result availability; notDone until issued
	complete2At  []int64 // second O3RS execution
	checkedAt    []int64 // SHREC checker verification
	faultAt      []int64 // injection cycle for detection-latency stats

	// pair links the two copies of an SS2 instruction; prevWriter supports
	// rename rollback on squash; dep1/dep2 retain the rename-time producer
	// links (for unregistration on squash); fwdStore memoizes the load's
	// forwarding source.
	dep1, dep2, pair, prevWriter, fwdStore []ref

	// waitCnt counts distinct unissued producers; readyAt lower-bounds the
	// operand-availability cycle once every producer has issued.
	waitCnt []uint8
	readyAt []int64

	// consumers is capacity rows of words each: bit c of row p marks slot c
	// as waiting on producer p's issue.
	consumers []uint64

	// ready has bit s set iff waitCnt[s] == 0 (slot live); isq tracks
	// issue-queue residency per thread. isqCount mirrors the popcounts.
	ready    []uint64
	isq      [2][]uint64
	isqCount [2]int
}

func newWindow(capacity int) window {
	c := int32(capacity)
	words := (c + 63) / 64
	w := window{
		capacity:     c,
		words:        words,
		gen:          make([]uint32, c),
		seq:          make([]uint64, c),
		inst:         make([]isa.Inst, c),
		flags:        make([]uint16, c),
		dispatchedAt: make([]int64, c),
		completeAt:   make([]int64, c),
		complete2At:  make([]int64, c),
		checkedAt:    make([]int64, c),
		faultAt:      make([]int64, c),
		dep1:         make([]ref, c),
		dep2:         make([]ref, c),
		pair:         make([]ref, c),
		prevWriter:   make([]ref, c),
		fwdStore:     make([]ref, c),
		waitCnt:      make([]uint8, c),
		readyAt:      make([]int64, c),
		consumers:    make([]uint64, int(c)*int(words)),
		ready:        make([]uint64, words),
	}
	w.isq[0] = make([]uint64, words)
	w.isq[1] = make([]uint64, words)
	return w
}

// live reports whether r still names the instruction it was captured from.
func (w *window) live(r ref) bool {
	return r.slot >= 0 && w.gen[r.slot] == r.gen
}

// thread returns the slot's thread copy.
func (w *window) thread(s int32) Thread {
	if w.flags[s]&fThread != 0 {
		return ThreadR
	}
	return ThreadM
}

// completed reports whether the slot's result is available.
func (w *window) completed(s int32, now int64) bool {
	return w.flags[s]&fIssued != 0 && w.completeAt[s] <= now
}

// checked reports whether verification finished (SHREC).
func (w *window) checked(s int32, now int64) bool {
	return w.checkedAt[s] <= now
}

// alloc claims the next ring slot and resets its fields. The caller fills
// seq via the arguments and owns all further field writes; dispatch guards
// must have ensured space (overflow is a model bug).
func (w *window) alloc(seq uint64, in isa.Inst, t Thread, wrongPath bool, now int64) int32 {
	if w.n == w.capacity {
		panic("core: window overflow")
	}
	s := w.tail
	w.tail++
	if w.tail == w.capacity {
		w.tail = 0
	}
	w.n++
	w.seq[s] = seq
	w.inst[s] = in
	var f uint16
	if t == ThreadR {
		f |= fThread
	}
	if wrongPath {
		f |= fWrongPath
	}
	w.flags[s] = f
	w.dispatchedAt[s] = now
	w.completeAt[s] = notDone
	w.complete2At[s] = notDone
	w.checkedAt[s] = notDone
	w.faultAt[s] = 0
	w.dep1[s] = noRef
	w.dep2[s] = noRef
	w.pair[s] = noRef
	w.prevWriter[s] = noRef
	w.fwdStore[s] = noRef
	w.waitCnt[s] = 0
	w.readyAt[s] = 0
	return s
}

// releaseSlot invalidates one slot: outstanding producer links are
// unregistered, the slot leaves every mask, its consumers row is cleared,
// and the generation bumps so stale refs recognize the recycling. Ring
// bookkeeping (head/tail/n) belongs to the caller.
func (w *window) releaseSlot(s int32) {
	w.unregisterDeps(s)
	wi, bit := s>>6, uint64(1)<<(uint(s)&63)
	for t := range w.isq {
		if w.isq[t][wi]&bit != 0 {
			w.isq[t][wi] &^= bit
			w.isqCount[t]--
		}
	}
	w.ready[wi] &^= bit
	row := w.consumers[int(s)*int(w.words) : (int(s)+1)*int(w.words)]
	for i := range row {
		row[i] = 0
	}
	w.gen[s]++
}

// unregisterDeps clears this slot's consumer bit from every still-live,
// still-unissued producer it registered with (issued producers broadcast
// and cleared the bit already). Safe ordering holds on squash because
// consumers are younger than their producers and the tail rewind frees
// youngest-first.
func (w *window) unregisterDeps(s int32) {
	if w.waitCnt[s] == 0 {
		return
	}
	for _, r := range [4]ref{w.dep1[s], w.dep2[s], w.pair[s], w.fwdStore[s]} {
		if w.live(r) && w.flags[r.slot]&fIssued == 0 {
			w.consumers[int(r.slot)*int(w.words)+int(s>>6)] &^= 1 << (uint(s) & 63)
		}
	}
	w.waitCnt[s] = 0
}

// addDep registers r as a producer of consumer s. A dead reference (the
// producer already retired) contributes nothing; an issued producer folds
// its completion time into the consumer's readiness bound; a live unissued
// producer adds a wait and a consumer bit, balanced by its issue-time
// broadcast.
func (w *window) addDep(s int32, r ref) {
	if !w.live(r) {
		return
	}
	p := r.slot
	if w.flags[p]&fIssued != 0 {
		if w.completeAt[p] > w.readyAt[s] {
			w.readyAt[s] = w.completeAt[p]
		}
		return
	}
	w.waitCnt[s]++
	w.consumers[int(p)*int(w.words)+int(s>>6)] |= 1 << (uint(s) & 63)
}

// broadcast wakes a just-issued producer's consumers: each drops one wait
// count, folds doneAt into its operand-readiness bound, and enters the
// ready mask when its last producer has issued. The producer's consumer
// row is consumed by the broadcast (each waiter is woken exactly once).
func (w *window) broadcast(p int32, doneAt int64) {
	row := w.consumers[int(p)*int(w.words) : (int(p)+1)*int(w.words)]
	for wi, word := range row {
		if word == 0 {
			continue
		}
		row[wi] = 0
		base := int32(wi) << 6
		for word != 0 {
			c := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if doneAt > w.readyAt[c] {
				w.readyAt[c] = doneAt
			}
			if w.waitCnt[c]--; w.waitCnt[c] == 0 {
				w.setReady(c)
			}
		}
	}
}

// freeHead releases the oldest slot (retirement order).
func (w *window) freeHead(s int32) {
	if s != w.head {
		panic("core: out-of-order window free")
	}
	w.releaseSlot(s)
	w.head++
	if w.head == w.capacity {
		w.head = 0
	}
	w.n--
}

// rewindWrongPath frees the contiguous wrong-path tail of the ring (the
// only shape a wrong-path squash can have: everything allocated after the
// mispredicted branch is wrong path).
func (w *window) rewindWrongPath() {
	for w.n > 0 {
		t := w.tail - 1
		if t < 0 {
			t += w.capacity
		}
		if w.flags[t]&fWrongPath == 0 {
			break
		}
		w.releaseSlot(t)
		w.tail = t
		w.n--
	}
}

// reset empties the window (soft exception), bumping live generations and
// clearing every mask.
func (w *window) reset() {
	for i := int32(0); i < w.n; i++ {
		s := w.head + i
		if s >= w.capacity {
			s -= w.capacity
		}
		w.gen[s]++
	}
	w.head, w.tail, w.n = 0, 0, 0
	for i := range w.ready {
		w.ready[i] = 0
	}
	for t := range w.isq {
		for i := range w.isq[t] {
			w.isq[t][i] = 0
		}
		w.isqCount[t] = 0
	}
	for i := range w.consumers {
		w.consumers[i] = 0
	}
}

// ringSlot returns the i-th oldest live slot (test/debug helper).
func (w *window) ringSlot(i int32) int32 {
	s := w.head + i
	if s >= w.capacity {
		s -= w.capacity
	}
	return s
}

// setReady marks the slot operand-ready (waitCnt reached zero).
func (w *window) setReady(s int32) {
	w.ready[s>>6] |= 1 << (uint(s) & 63)
}

// clearReady removes the slot from the ready mask (a dynamic producer was
// discovered, e.g. an incomplete forwarding store).
func (w *window) clearReady(s int32) {
	w.ready[s>>6] &^= 1 << (uint(s) & 63)
}

// setISQ inserts the slot into thread t's issue queue.
func (w *window) setISQ(t Thread, s int32) {
	w.isq[t][s>>6] |= 1 << (uint(s) & 63)
	w.isqCount[t]++
}

// clearISQ removes the slot from thread t's issue queue (at issue).
func (w *window) clearISQ(t Thread, s int32) {
	w.isq[t][s>>6] &^= 1 << (uint(s) & 63)
	w.isqCount[t]--
}

// inISQ reports issue-queue residency (test helper).
func (w *window) inISQ(t Thread, s int32) bool {
	return w.isq[t][s>>6]&(1<<(uint(s)&63)) != 0
}

// forEachCandidate visits every slot set in (mask OR mask2) AND ready, in
// ring age order (oldest first), calling visit for each; visit returning
// false stops the scan. mask2 may be nil. Bits that change state during
// the scan are deliberately not re-read within the current word: a
// newly-issued producer completes no earlier than the next cycle, so a
// same-cycle wakeup cannot make a skipped entry issueable, and the only
// bit a visit clears is its own.
func (w *window) forEachCandidate(mask, mask2 []uint64, visit func(int32) bool) {
	if w.n == 0 {
		return
	}
	if w.head < w.tail {
		w.scanSeg(w.head, w.tail, mask, mask2, visit)
		return
	}
	if w.scanSeg(w.head, w.capacity, mask, mask2, visit) {
		w.scanSeg(0, w.tail, mask, mask2, visit)
	}
}

// scanSeg scans candidate bits in [lo, hi); it returns false when visit
// stopped the scan.
func (w *window) scanSeg(lo, hi int32, mask, mask2 []uint64, visit func(int32) bool) bool {
	wlo, whi := lo>>6, (hi-1)>>6
	for wi := wlo; wi <= whi; wi++ {
		word := mask[wi]
		if mask2 != nil {
			word |= mask2[wi]
		}
		word &= w.ready[wi]
		if wi == wlo {
			word &^= 1<<(uint(lo)&63) - 1
		}
		if wi == whi {
			if r := uint(hi) & 63; r != 0 {
				word &= 1<<r - 1
			}
		}
		for word != 0 {
			s := wi<<6 + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if !visit(s) {
				return false
			}
		}
	}
	return true
}

// maskCursor iterates the set bits of one queue mask in ring age order,
// pull-style, so two queues can be merged by comparing their heads (the
// lockstep issue scan). Words are snapshotted as the cursor reaches them —
// the same staleness contract as forEachCandidate: the only bit a consumer
// clears mid-scan is that of a slot the cursor has already returned.
type maskCursor struct {
	mask []uint64
	segs [2][2]int32 // ring segments [lo, hi), oldest first
	nseg int
	si   int
	wi   int32
	word uint64
	open bool
}

func (w *window) newMaskCursor(mask []uint64) maskCursor {
	c := maskCursor{mask: mask}
	if w.n == 0 {
		return c
	}
	if w.head < w.tail {
		c.segs[0] = [2]int32{w.head, w.tail}
		c.nseg = 1
	} else {
		c.segs[0] = [2]int32{w.head, w.capacity}
		c.segs[1] = [2]int32{0, w.tail}
		c.nseg = 2
	}
	return c
}

// maskedWord loads word wi of the mask, clipped to the segment [lo, hi).
func (c *maskCursor) maskedWord(wi, lo, hi int32) uint64 {
	word := c.mask[wi]
	if wi == lo>>6 {
		word &^= 1<<(uint(lo)&63) - 1
	}
	if wi == (hi-1)>>6 {
		if r := uint(hi) & 63; r != 0 {
			word &= 1<<r - 1
		}
	}
	return word
}

// next returns the next set slot in ring age order, or -1 when exhausted.
func (c *maskCursor) next() int32 {
	for {
		if c.word != 0 {
			s := c.wi<<6 + int32(bits.TrailingZeros64(c.word))
			c.word &= c.word - 1
			return s
		}
		if c.open && c.wi < (c.segs[c.si][1]-1)>>6 {
			c.wi++
			c.word = c.maskedWord(c.wi, c.segs[c.si][0], c.segs[c.si][1])
			continue
		}
		if c.open {
			c.si++
			c.open = false
		}
		if c.si >= c.nseg {
			return -1
		}
		c.open = true
		lo := c.segs[c.si][0]
		c.wi = lo >> 6
		c.word = c.maskedWord(c.wi, lo, c.segs[c.si][1])
	}
}

// idxFifo is a fixed-capacity ring FIFO of window slots (the per-thread
// ROB views, the LSQ, and the pendingR stagger queue). Capacity equals the
// window's, so pushes can never overflow and steady state allocates
// nothing.
type idxFifo struct {
	buf  []int32
	head int32
	n    int32
}

func newIdxFifo(capacity int) idxFifo {
	return idxFifo{buf: make([]int32, capacity)}
}

func (q *idxFifo) push(s int32) {
	if int(q.n) == len(q.buf) {
		panic("core: fifo overflow")
	}
	i := q.head + q.n
	if int(i) >= len(q.buf) {
		i -= int32(len(q.buf))
	}
	q.buf[i] = s
	q.n++
}

func (q *idxFifo) len() int { return int(q.n) }

func (q *idxFifo) empty() bool { return q.n == 0 }

// front returns the oldest entry; it panics on an empty queue.
func (q *idxFifo) front() int32 { return q.buf[q.head] }

// at returns the i-th oldest entry.
func (q *idxFifo) at(i int) int32 {
	j := q.head + int32(i)
	if int(j) >= len(q.buf) {
		j -= int32(len(q.buf))
	}
	return q.buf[j]
}

// pop removes and returns the oldest entry.
func (q *idxFifo) pop() int32 {
	s := q.buf[q.head]
	q.head++
	if int(q.head) == len(q.buf) {
		q.head = 0
	}
	q.n--
	return s
}

// clear drops all entries, invoking f on each (oldest first) when non-nil.
func (q *idxFifo) clear(f func(int32)) {
	if f != nil {
		for i := 0; i < q.len(); i++ {
			f(q.at(i))
		}
	}
	q.head, q.n = 0, 0
}

// removeIf deletes entries matching pred, preserving order, and calls f on
// each removed entry when non-nil.
func (q *idxFifo) removeIf(pred func(int32) bool, f func(int32)) {
	w := int32(0)
	for i := int32(0); i < q.n; i++ {
		s := q.at(int(i))
		if pred(s) {
			if f != nil {
				f(s)
			}
			continue
		}
		j := q.head + w
		if int(j) >= len(q.buf) {
			j -= int32(len(q.buf))
		}
		q.buf[j] = s
		w++
	}
	q.n = w
}
