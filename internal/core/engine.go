package core

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Engine simulates one machine configuration executing one workload.
type Engine struct {
	cfg  config.Machine
	gen  trace.Source
	pred *bpred.Combining
	btb  *bpred.BTB
	pool *fu.Pool
	// checkerPool is the checker's dedicated unit pool in DIVA mode
	// (nil when the checker shares the main pool, as in SHREC).
	checkerPool *fu.Pool
	mem         *cache.Hierarchy
	frng        *rng.RNG // fault injection stream

	now int64

	// Per-thread ROB views. robM and robR share the configured ROB
	// capacity; robR is unused outside SS2.
	robM, robR fifo
	// isqM/isqR are the issue-queue occupants in age order; entries leave
	// at issue.
	isqM, isqR []*dyn
	// lsq holds M-thread memory operations from dispatch to retirement.
	lsq fifo

	// pendingR holds decoded-but-undispatched R-thread copies (SS2 with
	// stagger). Its length is the current dispatch stagger.
	pendingR fifo

	// rename state: last writer of each architectural register, per thread.
	lastWriter [2][isa.NumArchRegs]depRef

	// fetch state
	fetchSeq      uint64 // next correct-path sequence number
	fetchResumeAt int64
	lastFetchLine uint64
	haveFetchLine bool
	fetchBuf      *fetchedInst // one-deep decoupling buffer
	replay        []isa.Inst   // re-fetch queue after a soft exception
	wpBranch      *dyn         // unresolved mispredicted correct-path branch

	// SHREC checker state: the number of check-issued but unretired
	// entries counted from the ROB head. The oldest unchecked entry is at
	// robM position checkCount. Retirement (which only retires checked
	// entries) decrements it; wrong-path squashes never remove
	// check-issued entries (the checker cannot pass an unresolved
	// branch), so squashes leave it unchanged.
	checkCount int

	// freelist recycles dyn records.
	freelist []*dyn

	stats Stats
}

// fetchedInst is an instruction fetched (and branch-predicted) but not yet
// dispatched, carried across cycles when dispatch stalls structurally.
type fetchedInst struct {
	inst      isa.Inst
	seq       uint64
	wrongPath bool

	predDone   bool
	mispredict bool
	predTaken  bool
	btbBubble  bool
}

// Stats aggregates the run's performance counters.
type Stats struct {
	Cycles  int64
	Retired uint64 // correct-path instructions retired (per program, not per copy)

	Fetched          uint64 // correct-path instructions fetched
	WrongPathFetched uint64

	CondBranches uint64
	Mispredicts  uint64
	BTBBubbles   uint64

	Squashes       uint64
	SoftExceptions uint64

	FaultsInjected    uint64
	FaultsDetected    uint64
	SilentCorruptions uint64
	// FaultDetectLatencySum accumulates cycles from injection to
	// detection over detected faults (divide by FaultsDetected).
	FaultDetectLatencySum uint64
	// FaultsSquashed counts injected faults whose instruction was
	// squashed by an unrelated soft exception before its own compare;
	// the replayed execution is clean, so these are not escapes.
	FaultsSquashed uint64

	IssuedM, IssuedR, IssuedChecker uint64
	LoadForwards                    uint64
	RetireStoreStalls               uint64

	// Occupancy accumulators (divide by Cycles for averages).
	ROBOccSum, ISQOccSum, LSQOccSum, StaggerSum uint64

	// MSHROccSum tracks outstanding data misses per cycle (MLP).
	MSHROccSum uint64

	// LoadIssueWaitSum accumulates dispatch-to-issue latency of M-thread
	// correct-path loads (with LoadCount), diagnosing whether addresses
	// arrive promptly.
	LoadIssueWaitSum uint64
	LoadCount        uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// CPI returns cycles per retired instruction.
func (s Stats) CPI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Retired)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// AvgROBOcc returns the mean ROB occupancy.
func (s Stats) AvgROBOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ROBOccSum) / float64(s.Cycles)
}

// AvgFaultDetectLatency returns the mean injection-to-detection latency
// in cycles over detected faults.
func (s Stats) AvgFaultDetectLatency() float64 {
	if s.FaultsDetected == 0 {
		return 0
	}
	return float64(s.FaultDetectLatencySum) / float64(s.FaultsDetected)
}

// AvgStagger returns the mean dispatch stagger (SS2).
func (s Stats) AvgStagger() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StaggerSum) / float64(s.Cycles)
}

// New builds an engine for machine m consuming instructions from source g
// (a synthetic trace.Generator or a replayed trace.Recording).
func New(m config.Machine, g trace.Source) *Engine {
	if err := m.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	e := &Engine{
		cfg:  m,
		gen:  g,
		pred: bpred.NewCombining(m.Bpred),
		btb:  bpred.NewBTB(m.Bpred.BTBSets, m.Bpred.BTBWays),
		pool: fu.NewPool(m.FU),
		mem:  cache.NewHierarchy(m.Mem),
		frng: rng.New(m.FaultSeed ^ 0xfa117_5eed),
	}
	if m.CheckerDedicatedFU {
		e.checkerPool = fu.NewPool(m.FU)
	}
	return e
}

// Config returns the engine's machine configuration.
func (e *Engine) Config() config.Machine { return e.cfg }

// Mem exposes the memory hierarchy for statistics.
func (e *Engine) Mem() *cache.Hierarchy { return e.mem }

// Pool exposes the functional unit pool for statistics.
func (e *Engine) Pool() *fu.Pool { return e.pool }

// Pred exposes the direction predictor for statistics.
func (e *Engine) Pred() *bpred.Combining { return e.pred }

// Stats returns the counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the performance counters while keeping all
// microarchitectural state (caches, predictors, in-flight instructions)
// warm. Call it after a warmup run so measurements exclude cold-start
// effects, mirroring the paper's use of SimPoint regions from mid-execution.
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.mem.ResetStats()
	e.pool.ResetStats()
}

// Warmup runs n instructions and then resets the counters.
func (e *Engine) Warmup(n uint64) error {
	return e.WarmupContext(context.Background(), n)
}

// WarmupContext is Warmup with cancellation checkpoints.
func (e *Engine) WarmupContext(ctx context.Context, n uint64) error {
	if _, err := e.RunContext(ctx, n); err != nil {
		return err
	}
	e.ResetStats()
	return nil
}

// alloc obtains a recycled or fresh dyn record.
func (e *Engine) alloc() *dyn {
	if n := len(e.freelist); n > 0 {
		d := e.freelist[n-1]
		e.freelist = e.freelist[:n-1]
		gen := d.gen + 1
		*d = dyn{gen: gen, completeAt: notDone, checkedAt: notDone, complete2At: notDone}
		return d
	}
	return &dyn{completeAt: notDone, checkedAt: notDone, complete2At: notDone}
}

// free returns a dyn record to the pool, bumping its generation so stale
// depRefs recognize the recycling.
func (e *Engine) free(d *dyn) {
	d.gen++
	e.freelist = append(e.freelist, d)
}

// Run simulates until n correct-path instructions have retired and returns
// the statistics. It returns an error if the pipeline deadlocks (no
// retirement progress for a long stretch), which indicates a model bug.
func (e *Engine) Run(n uint64) (Stats, error) {
	return e.RunContext(context.Background(), n)
}

// ctxCheckInterval is how many cycles run between cancellation
// checkpoints. Large enough that the ctx poll is invisible in the hot
// loop, small enough that cancellation lands within microseconds.
const ctxCheckInterval = 4096

// RunContext is Run with cancellation checkpoints: every few thousand
// simulated cycles the step loop polls ctx, so long experiments driven by
// a server request or a deadline stop promptly when the caller goes away.
// The engine's state stays consistent on cancellation (it halts between
// cycles) and the accumulated stats are returned with the context error.
func (e *Engine) RunContext(ctx context.Context, n uint64) (Stats, error) {
	const stallLimit = 1_000_000
	lastRetired := e.stats.Retired
	lastProgress := e.now
	nextCheck := e.now + ctxCheckInterval
	for e.stats.Retired < n {
		e.cycle()
		if e.stats.Retired != lastRetired {
			lastRetired = e.stats.Retired
			lastProgress = e.now
		} else if e.now-lastProgress > stallLimit {
			return e.stats, fmt.Errorf("core: %s deadlocked at cycle %d (retired %d of %d)",
				e.cfg.Name, e.now, e.stats.Retired, n)
		}
		if e.now >= nextCheck {
			nextCheck = e.now + ctxCheckInterval
			if err := ctx.Err(); err != nil {
				return e.stats, fmt.Errorf("core: %s interrupted at cycle %d: %w",
					e.cfg.Name, e.now, err)
			}
		}
	}
	return e.stats, nil
}

// cycle advances the machine by one clock.
func (e *Engine) cycle() {
	e.now++
	e.stats.Cycles++
	e.pool.BeginCycle(e.now)
	e.mem.BeginCycle(e.now)

	e.resolveBranch()
	e.retire()
	e.dispatch()
	e.issue()

	// Occupancy accounting.
	e.stats.ROBOccSum += uint64(e.robM.len() + e.robR.len())
	e.stats.ISQOccSum += uint64(len(e.isqM) + len(e.isqR))
	e.stats.LSQOccSum += uint64(e.lsq.len())
	e.stats.StaggerSum += uint64(e.pendingR.len())
	e.stats.MSHROccSum += uint64(e.mem.MSHR().InFlight())
}

// resolveBranch squashes the wrong path once the active mispredicted branch
// executes, and schedules the fetch redirect.
func (e *Engine) resolveBranch() {
	br := e.wpBranch
	if br == nil || !br.completed(e.now) {
		return
	}
	e.wpBranch = nil
	e.squashWrongPath()
	resume := br.completeAt + int64(e.cfg.Bpred.MispredictPenalty)
	if resume < e.now {
		resume = e.now
	}
	if resume > e.fetchResumeAt {
		e.fetchResumeAt = resume
	}
	e.haveFetchLine = false
	e.stats.Squashes++
}

// squashWrongPath removes every wrong-path instruction from the pipeline
// and rolls back rename state.
func (e *Engine) squashWrongPath() {
	// Roll back rename state youngest-first so lastWriter ends up at the
	// youngest surviving writer.
	rollback := func(q *fifo) {
		for i := len(q.buf) - 1; i >= q.head; i-- {
			d := q.buf[i]
			if !d.wrongPath {
				break // wrong-path entries are a contiguous young suffix
			}
			if d.inst.Dest != isa.RegNone {
				e.lastWriter[d.thread][d.inst.Dest] = d.prevWriter
			}
		}
	}
	rollback(&e.robM)
	rollback(&e.robR)

	wp := func(d *dyn) bool { return d.wrongPath }
	e.robM.removeIf(wp, e.free)
	e.robR.removeIf(wp, e.free)
	e.lsq.removeIf(wp, nil)
	e.pendingR.removeIf(wp, e.free)
	e.isqM = filterISQ(e.isqM, wp)
	e.isqR = filterISQ(e.isqR, wp)
	if e.fetchBuf != nil && e.fetchBuf.wrongPath {
		e.fetchBuf = nil
	}
}

// filterISQ removes entries matching pred, preserving age order.
func filterISQ(q []*dyn, pred func(*dyn) bool) []*dyn {
	w := 0
	for _, d := range q {
		if !pred(d) {
			q[w] = d
			w++
		}
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	return q[:w]
}

// softException squashes the entire pipeline after a detected fault and
// replays from the faulting instruction. All in-flight correct-path
// M-thread instructions (including the faulty one) are queued for re-fetch.
func (e *Engine) softException() {
	e.stats.SoftExceptions++

	// Capture correct-path instructions in program order for replay,
	// accounting in-flight faults that this squash wipes (their replays
	// execute cleanly).
	for i := e.robM.head; i < len(e.robM.buf); i++ {
		d := e.robM.buf[i]
		if !d.wrongPath {
			e.replay = append(e.replay, d.inst)
		}
		if d.faulty || d.faulty2 {
			e.stats.FaultsSquashed++
		}
	}
	for i := e.robR.head; i < len(e.robR.buf); i++ {
		if d := e.robR.buf[i]; d.faulty || d.faulty2 {
			e.stats.FaultsSquashed++
		}
	}
	if e.fetchBuf != nil && !e.fetchBuf.wrongPath {
		e.replay = append(e.replay, e.fetchBuf.inst)
	}
	e.fetchBuf = nil

	e.robM.clear(e.free)
	e.robR.clear(e.free)
	e.pendingR.clear(e.free)
	e.lsq.clear(func(*dyn) {})
	e.isqM = e.isqM[:0]
	e.isqR = e.isqR[:0]
	e.checkCount = 0
	e.wpBranch = nil
	for t := range e.lastWriter {
		for r := range e.lastWriter[t] {
			e.lastWriter[t][r] = depRef{}
		}
	}
	e.fetchResumeAt = e.now + int64(e.cfg.Bpred.MispredictPenalty)
	e.haveFetchLine = false
}
