package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Engine simulates one machine configuration executing one workload.
type Engine struct {
	cfg  config.Machine
	gen  trace.Source
	pred *bpred.Combining
	btb  *bpred.BTB
	pool *fu.Pool
	// checkerPool is the checker's dedicated unit pool in DIVA mode
	// (nil when the checker shares the main pool, as in SHREC).
	checkerPool *fu.Pool
	mem         *cache.Hierarchy
	frng        *rng.RNG // fault injection stream

	now int64

	// w is the struct-of-arrays window holding every in-flight
	// instruction; all queues below store window slots.
	w window

	// Per-thread ROB views. robM and robR share the configured ROB
	// capacity; robR is unused outside SS2.
	robM, robR idxFifo
	// lsq holds M-thread memory operations from dispatch to retirement.
	lsq idxFifo
	// pendingR holds decoded-but-undispatched R-thread copies (SS2 with
	// stagger). Its length is the current dispatch stagger.
	pendingR idxFifo

	// rename state: last writer of each architectural register, per thread.
	lastWriter [2][isa.NumArchRegs]ref

	// fetch state
	fetchSeq      uint64 // next correct-path sequence number
	fetchResumeAt int64
	lastFetchLine uint64
	haveFetchLine bool
	// fetchBuf is the one-deep decoupling buffer; fetchTmp is scratch
	// storage for the instruction currently moving through fetch, kept on
	// the engine so the hot loop never heap-allocates a fetch record.
	fetchBuf      fetchedInst
	fetchBufValid bool
	fetchTmp      fetchedInst
	replay        []isa.Inst // re-fetch queue after a soft exception
	wpBranch      int32      // unresolved mispredicted correct-path branch slot; -1 = none

	// SHREC checker state: the number of check-issued but unretired
	// entries counted from the ROB head. The oldest unchecked entry is at
	// robM position checkCount. Retirement (which only retires checked
	// entries) decrements it; wrong-path squashes never remove
	// check-issued entries (the checker cannot pass an unresolved
	// branch), so squashes leave it unchanged. Multi-context SHREC claims
	// entries beyond the prefix too; advanceCheckPrefix re-establishes
	// the prefix meaning each cycle. MEEK and FLEX reuse the same prefix
	// count for their check stages.
	checkCount int

	// MEEK checker state: the retirement-log FIFO the in-order lanes
	// consume (logical capacity config.MeekLogDepth), and each lane's
	// busy-until cycle. Both are empty/nil outside MEEK mode.
	meekLog  idxFifo
	meekBusy []int64

	// tickLoop disables the cycle-skipping fast path and the
	// store-forwarding memo, forcing the reference tick-by-tick loop (see
	// Option WithTickLoop). The equivalence suite runs both loops and
	// asserts identical results.
	tickLoop bool
	// progressed records whether the current cycle changed any
	// microarchitectural state beyond the clock: a fetch, dispatch, issue,
	// retirement, or squash. A cycle that did none of these is pure stall
	// time, and the step loop may fast-forward across the stall.
	progressed bool
	// skipped counts simulated cycles that were fast-forwarded rather
	// than executed (a host-cost diagnostic; it does not affect Stats).
	skipped int64
	// events is a min-heap of scheduled completion times (completeAt,
	// complete2At, checkedAt), pushed at issue. It may retain times of
	// squashed instructions; those only make the event horizon
	// conservative (an extra real cycle), never unsound. Unused (empty)
	// under WithTickLoop.
	events []int64
	// lsqNextFree is a lower bound on the next cycle at which the lazy
	// LSQ sweep could free an entry: the earliest completion among
	// issued resident loads, maintained by the sweep itself and at load
	// issue. While now precedes it, a full-LSQ dispatch stall skips the
	// sweep scan entirely. Unused under WithTickLoop.
	lsqNextFree int64

	// retireHook, when non-nil, observes every retiring program
	// instruction (test instrumentation for retired-stream oracles).
	retireHook func(isa.Inst)

	// faultHook, when non-nil, observes every detected fault at the moment
	// of detection (before the soft exception squashes the pipeline); a
	// true return requests that the current run stop with ErrHookStop so
	// the caller can intervene — the recovery runner uses this to roll
	// back to a checkpoint instead of letting the inline replay proceed.
	// nil for every engine outside a recovery run, so the hot path pays
	// one nil check per detection, never per cycle.
	faultHook func(seq uint64, injectAt, detectAt int64) bool
	// stopRequest is latched by a true faultHook return and consumed by
	// RunBudget at the end of the step.
	stopRequest bool

	// retireStop, when non-zero, caps retirement exactly at that total
	// retired count: the retire loop stops before committing instruction
	// retireStop+1 even with budget and completed work remaining. Chunked
	// runs (recovery's checkpoint cadence) need exact boundaries — a free
	// overshoot of up to RetireWidth-1 depends on retirement alignment,
	// which faults perturb, so overshooting chunks would make the ArchSig
	// fold sequence diverge between golden and trial runs.
	retireStop uint64

	// sigLimit bounds the ArchSig fold to the first sigLimit retirements
	// of the current run target (set by RunBudget). The final cycle of a
	// run may retire up to RetireWidth instructions past the target, and
	// how many depends on retirement alignment — which faults perturb —
	// so folding the overshoot would diverge signatures of runs whose
	// first n retirements are identical.
	sigLimit uint64

	stats Stats
}

// Option customizes engine construction.
type Option func(*Engine)

// WithTickLoop selects the reference tick-by-tick simulation loop: every
// cycle is executed individually, with no event-horizon fast-forward and
// no store-forwarding memoization. The default loop is results-identical
// (the equivalence suite enforces byte-identical Stats and component
// counters) but skips provably-dead stall cycles; this option exists as
// the oracle for that suite and as an escape hatch for debugging the skip
// logic.
func WithTickLoop() Option {
	return func(e *Engine) { e.tickLoop = true }
}

// fetchedInst is an instruction fetched (and branch-predicted) but not yet
// dispatched, carried across cycles when dispatch stalls structurally.
type fetchedInst struct {
	inst      isa.Inst
	seq       uint64
	wrongPath bool

	predDone   bool
	mispredict bool
	predTaken  bool
	btbBubble  bool
}

// Stats aggregates the run's performance counters.
type Stats struct {
	Cycles  int64
	Retired uint64 // correct-path instructions retired (per program, not per copy)

	Fetched          uint64 // correct-path instructions fetched
	WrongPathFetched uint64

	CondBranches uint64
	Mispredicts  uint64
	BTBBubbles   uint64

	Squashes       uint64
	SoftExceptions uint64

	FaultsInjected    uint64
	FaultsDetected    uint64
	SilentCorruptions uint64
	// FaultDetectLatencySum accumulates cycles from injection to
	// detection over detected faults (divide by FaultsDetected).
	FaultDetectLatencySum uint64
	// FaultsSquashed counts injected faults whose instruction was
	// squashed by an unrelated soft exception before its own compare;
	// the replayed execution is clean, so these are not escapes.
	FaultsSquashed uint64

	IssuedM, IssuedR, IssuedChecker uint64
	LoadForwards                    uint64
	RetireStoreStalls               uint64

	// Occupancy accumulators (divide by Cycles for averages).
	ROBOccSum, ISQOccSum, LSQOccSum, StaggerSum uint64

	// MSHROccSum tracks outstanding data misses per cycle (MLP).
	MSHROccSum uint64

	// LoadIssueWaitSum accumulates dispatch-to-issue latency of M-thread
	// correct-path loads (with LoadCount), diagnosing whether addresses
	// arrive promptly.
	LoadIssueWaitSum uint64
	LoadCount        uint64

	// MEEK observables: retirement-log occupancy per cycle (divide by
	// Cycles), completion-to-verification lag over lane-checked
	// instructions (divide by IssuedChecker), and cycles the full log
	// blocked an otherwise-eligible check-issue (the backpressure path).
	MeekLogOccSum uint64
	MeekLagSum    uint64
	MeekLogStalls uint64

	// CheckerCtxSwitches counts multi-context SHREC scan resumptions past
	// an incomplete instruction — the stalls a spare context absorbed.
	CheckerCtxSwitches uint64

	// FLEX observables: retirements inside checking-enabled regions, and
	// injected faults that landed in checking-disabled regions (campaigns
	// subtract these trials from conditional-coverage accounting).
	FlexOnRetired           uint64
	FaultsInjectedUnchecked uint64

	// ArchSig is a running hash of the architectural effects committed at
	// retirement: each retired program instruction folds its opcode,
	// destination register, memory address, and whether its result was
	// corrupted by an injected fault. Two runs that retire the same
	// instruction stream with the same (un)corrupted results have equal
	// signatures, so comparing a fault-injected run's signature against a
	// fault-free golden run detects silent data corruption end to end —
	// independently of the inline SilentCorruptions counter.
	ArchSig uint64
}

// Add accumulates other's counters into s field-wise. Cycle-derived sums
// add, ArchSig is NOT combined here (interval stitching folds signatures
// in order; see sim), so Add leaves s.ArchSig untouched.
func (s *Stats) Add(other Stats) {
	sig := s.ArchSig
	s.Cycles += other.Cycles
	s.Retired += other.Retired
	s.Fetched += other.Fetched
	s.WrongPathFetched += other.WrongPathFetched
	s.CondBranches += other.CondBranches
	s.Mispredicts += other.Mispredicts
	s.BTBBubbles += other.BTBBubbles
	s.Squashes += other.Squashes
	s.SoftExceptions += other.SoftExceptions
	s.FaultsInjected += other.FaultsInjected
	s.FaultsDetected += other.FaultsDetected
	s.SilentCorruptions += other.SilentCorruptions
	s.FaultDetectLatencySum += other.FaultDetectLatencySum
	s.FaultsSquashed += other.FaultsSquashed
	s.IssuedM += other.IssuedM
	s.IssuedR += other.IssuedR
	s.IssuedChecker += other.IssuedChecker
	s.LoadForwards += other.LoadForwards
	s.RetireStoreStalls += other.RetireStoreStalls
	s.ROBOccSum += other.ROBOccSum
	s.ISQOccSum += other.ISQOccSum
	s.LSQOccSum += other.LSQOccSum
	s.StaggerSum += other.StaggerSum
	s.MSHROccSum += other.MSHROccSum
	s.LoadIssueWaitSum += other.LoadIssueWaitSum
	s.LoadCount += other.LoadCount
	s.MeekLogOccSum += other.MeekLogOccSum
	s.MeekLagSum += other.MeekLagSum
	s.MeekLogStalls += other.MeekLogStalls
	s.CheckerCtxSwitches += other.CheckerCtxSwitches
	s.FlexOnRetired += other.FlexOnRetired
	s.FaultsInjectedUnchecked += other.FaultsInjectedUnchecked
	s.ArchSig = sig
}

// AvgMeekLag returns the mean completion-to-verification lag of MEEK
// lane-checked instructions.
func (s Stats) AvgMeekLag() float64 {
	if s.IssuedChecker == 0 {
		return 0
	}
	return float64(s.MeekLagSum) / float64(s.IssuedChecker)
}

// AvgMeekLogOcc returns the mean MEEK retirement-log occupancy.
func (s Stats) AvgMeekLogOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.MeekLogOccSum) / float64(s.Cycles)
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// CPI returns cycles per retired instruction.
func (s Stats) CPI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Retired)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// AvgROBOcc returns the mean ROB occupancy.
func (s Stats) AvgROBOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ROBOccSum) / float64(s.Cycles)
}

// AvgFaultDetectLatency returns the mean injection-to-detection latency
// in cycles over detected faults.
func (s Stats) AvgFaultDetectLatency() float64 {
	if s.FaultsDetected == 0 {
		return 0
	}
	return float64(s.FaultDetectLatencySum) / float64(s.FaultsDetected)
}

// AvgStagger returns the mean dispatch stagger (SS2).
func (s Stats) AvgStagger() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StaggerSum) / float64(s.Cycles)
}

// windowSlack is the window's capacity margin over ROBSize. Live slots
// (robM + robR + pendingR occupants) never exceed the ROB capacity — the
// dispatch guards enforce that — so any positive slack suffices; a few
// spare slots keep the invariant failure mode a panic instead of silent
// corruption.
const windowSlack = 8

// New builds an engine for machine m consuming instructions from source g
// (a synthetic trace.Generator or a replayed trace.Recording).
func New(m config.Machine, g trace.Source, opts ...Option) *Engine {
	if err := m.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	capacity := m.ROBSize + windowSlack
	e := &Engine{
		cfg:      m,
		gen:      g,
		pred:     bpred.NewCombining(m.Bpred),
		btb:      bpred.NewBTB(m.Bpred.BTBSets, m.Bpred.BTBWays),
		pool:     fu.NewPool(m.FU),
		mem:      cache.NewHierarchy(m.Mem),
		frng:     rng.New(m.FaultSeed ^ 0xfa117_5eed),
		w:        newWindow(capacity),
		robM:     newIdxFifo(capacity),
		robR:     newIdxFifo(capacity),
		lsq:      newIdxFifo(capacity),
		pendingR: newIdxFifo(capacity),
		wpBranch: -1,
		events:   make([]int64, 0, 4*capacity),
	}
	for t := range e.lastWriter {
		for r := range e.lastWriter[t] {
			e.lastWriter[t][r] = noRef
		}
	}
	if m.CheckerDedicatedFU {
		e.checkerPool = fu.NewPool(m.FU)
	}
	if m.Mode == config.ModeMEEK {
		e.meekLog = newIdxFifo(capacity)
		e.meekBusy = make([]int64, m.CheckerLanes)
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Config returns the engine's machine configuration.
func (e *Engine) Config() config.Machine { return e.cfg }

// Mem exposes the memory hierarchy for statistics.
func (e *Engine) Mem() *cache.Hierarchy { return e.mem }

// Pool exposes the functional unit pool for statistics.
func (e *Engine) Pool() *fu.Pool { return e.pool }

// Pred exposes the direction predictor for statistics.
func (e *Engine) Pred() *bpred.Combining { return e.pred }

// Stats returns the counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the performance counters while keeping all
// microarchitectural state (caches, predictors, in-flight instructions)
// warm. Call it after a warmup run so measurements exclude cold-start
// effects, mirroring the paper's use of SimPoint regions from mid-execution.
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.mem.ResetStats()
	e.pool.ResetStats()
}

// Warmup runs n instructions and then resets the counters.
func (e *Engine) Warmup(n uint64) error {
	return e.WarmupContext(context.Background(), n)
}

// WarmupContext is Warmup with cancellation checkpoints.
func (e *Engine) WarmupContext(ctx context.Context, n uint64) error {
	if _, err := e.RunContext(ctx, n); err != nil {
		return err
	}
	e.ResetStats()
	return nil
}

// Run simulates until n correct-path instructions have retired and returns
// the statistics. It returns an error if the pipeline deadlocks (no
// retirement progress for a long stretch), which indicates a model bug.
func (e *Engine) Run(n uint64) (Stats, error) {
	return e.RunContext(context.Background(), n)
}

// ctxCheckInterval is how many cycles run between cancellation
// checkpoints. Large enough that the ctx poll is invisible in the hot
// loop, small enough that cancellation lands within microseconds.
const ctxCheckInterval = 4096

// RunContext is Run with cancellation checkpoints: every few thousand
// simulated cycles the step loop polls ctx, so long experiments driven by
// a server request or a deadline stop promptly when the caller goes away.
// The engine's state stays consistent on cancellation (it halts between
// cycles) and the accumulated stats are returned with the context error.
func (e *Engine) RunContext(ctx context.Context, n uint64) (Stats, error) {
	return e.RunBudget(ctx, n, 0)
}

// ErrHookStop reports that a run stopped because the engine's fault hook
// (SetFaultHook) requested it on a detected fault. The engine state is the
// post-detection state — the soft exception already squashed the pipeline —
// and the accumulated stats are returned alongside, so the caller may roll
// back to a checkpoint or resume the run as it sees fit.
var ErrHookStop = errors.New("fault hook requested stop")

// SetFaultHook installs (or, with nil, removes) the detected-fault
// observer. The hook runs at detection time with the faulting
// instruction's fetch sequence number, its injection cycle, and the
// detection cycle (both on the engine's absolute clock); returning true
// stops the current Run*/RunBudget call with ErrHookStop after the
// detection's soft exception completes.
func (e *Engine) SetFaultHook(hook func(seq uint64, injectAt, detectAt int64) bool) {
	e.faultHook = hook
	e.stopRequest = false
}

// ErrCycleBudget reports that a budgeted run (RunBudget) exhausted its
// cycle allowance before retiring the requested instructions. Fault
// campaigns use it as the hang watchdog: a trial whose recovery storm
// blows past a multiple of the fault-free run's cycle count is classified
// as hung rather than simulated indefinitely.
var ErrCycleBudget = errors.New("cycle budget exhausted")

// RunBudget is RunContext with a hang watchdog: if maxCycles > 0 and
// Stats.Cycles (cycles since the last ResetStats) exceeds the budget
// before n instructions retire, the run stops with an error wrapping
// ErrCycleBudget and the stats accumulated so far. The budget is checked
// after every step, so a fast-forward may overshoot it by one skip span.
func (e *Engine) RunBudget(ctx context.Context, n uint64, maxCycles int64) (Stats, error) {
	const stallLimit = 1_000_000
	e.sigLimit = n
	lastRetired := e.stats.Retired
	lastProgress := e.now
	nextCheck := e.now + ctxCheckInterval
	for e.stats.Retired < n {
		e.step()
		if e.stopRequest {
			e.stopRequest = false
			return e.stats, ErrHookStop
		}
		// The budget only fires on an unfinished run: the step that
		// retires the n-th instruction may legitimately carry Cycles past
		// the budget, and that run completed.
		if maxCycles > 0 && e.stats.Cycles > maxCycles && e.stats.Retired < n {
			return e.stats, fmt.Errorf("core: %s retired %d of %d within %d cycles: %w",
				e.cfg.Name, e.stats.Retired, n, maxCycles, ErrCycleBudget)
		}
		if e.stats.Retired != lastRetired {
			lastRetired = e.stats.Retired
			lastProgress = e.now
		} else if e.now-lastProgress > stallLimit {
			if maxCycles > 0 {
				// Under an active hang budget a retirement-free stretch this
				// long IS the hang the watchdog exists to classify — at
				// large budgets (> stallLimit) a fault-induced livelock
				// would otherwise surface as a deadlock error and abort the
				// whole campaign instead of scoring one hung trial.
				return e.stats, fmt.Errorf("core: %s made no retirement progress for %d cycles (budget %d): %w",
					e.cfg.Name, stallLimit, maxCycles, ErrCycleBudget)
			}
			return e.stats, fmt.Errorf("core: %s deadlocked at cycle %d (retired %d of %d)",
				e.cfg.Name, e.now, e.stats.Retired, n)
		}
		if e.now >= nextCheck {
			nextCheck = e.now + ctxCheckInterval
			if err := ctx.Err(); err != nil {
				return e.stats, fmt.Errorf("core: %s interrupted at cycle %d: %w",
					e.cfg.Name, e.now, err)
			}
		}
	}
	return e.stats, nil
}

// RunExact is RunBudget with an exact retirement boundary: the run stops
// having retired exactly n instructions in total (since the last
// ResetStats), never overshooting into the free retirement slots of the
// final cycle. Chunked execution — recovery running checkpoint interval by
// checkpoint interval — needs exact boundaries so the retired instruction
// stream (and therefore the ArchSig fold) is identical to one contiguous
// run's; a plain RunBudget chunk would overshoot by an alignment-dependent
// amount that faults perturb.
func (e *Engine) RunExact(ctx context.Context, n uint64, maxCycles int64) (Stats, error) {
	e.retireStop = n
	stats, err := e.RunBudget(ctx, n, maxCycles)
	e.retireStop = 0
	return stats, err
}

// cycle advances the machine by one clock.
func (e *Engine) cycle() {
	e.now++
	e.stats.Cycles++
	e.progressed = false
	e.pool.BeginCycle(e.now)
	e.mem.BeginCycle(e.now)

	e.resolveBranch()
	e.retire()
	e.dispatch()
	e.issue()

	// Occupancy accounting.
	e.stats.ROBOccSum += uint64(e.robM.len() + e.robR.len())
	e.stats.ISQOccSum += uint64(e.w.isqCount[ThreadM] + e.w.isqCount[ThreadR])
	e.stats.LSQOccSum += uint64(e.lsq.len())
	e.stats.StaggerSum += uint64(e.pendingR.len())
	e.stats.MSHROccSum += uint64(e.mem.MSHR().InFlight())
	e.stats.MeekLogOccSum += uint64(e.meekLog.len())
}

// step advances the machine by at least one clock: one real cycle, plus —
// when that cycle was pure stall time — an analytic fast-forward across
// every following cycle that provably cannot change state either.
//
// The skip is exact, not approximate. A stalled cycle's behavior is a
// pure function of time and static machine state: every gate that could
// open does so at a completion time already scheduled somewhere — an
// in-flight instruction's completeAt/complete2At/checkedAt, a divider's
// busy-until, an MSHR fill, or the fetch-redirect timer — and nextEventAt
// takes the minimum over all of them. Until that horizon the reference
// loop would re-run byte-identical stall cycles, each adding the same
// occupancy sums and the same structural-hazard retry counts; the fast
// path adds those analytically (see fastForward) and resumes real
// execution on the horizon cycle.
func (e *Engine) step() {
	e.cycle()
	if e.progressed || e.tickLoop {
		return
	}
	e.fastForward()
}

// fastForward implements the skip after a stalled cycle. The first
// stalled cycle of an episode can still move timing state (a retried
// store's first attempt may fill the L2 and reserve the bus), so the
// steady-state per-cycle counter movement is measured over a second real
// stall cycle and only then replayed across the remaining span.
func (e *Engine) fastForward() {
	horizon := e.nextEventAt()
	if horizon == notDone || horizon <= e.now+1 {
		// No scheduled event (a deadlocked model steps cycle-by-cycle into
		// RunContext's stall detector) or the event is next cycle anyway.
		return
	}

	// Measure one steady-state stall cycle: the retry attempts it makes
	// against busy resources move only diagnostic counters, never timing
	// state, and repeat identically until the horizon.
	retireStallsBefore := e.stats.RetireStoreStalls
	meekStallsBefore := e.stats.MeekLogStalls
	ctxSwitchesBefore := e.stats.CheckerCtxSwitches
	poolBefore := e.pool.Refused()
	var checkerBefore [fu.NumClasses]uint64
	if e.checkerPool != nil {
		checkerBefore = e.checkerPool.Refused()
	}
	memBefore := e.mem.AttemptCounters()

	e.cycle()
	if e.progressed {
		return
	}
	skip := horizon - 1 - e.now
	if skip <= 0 {
		return
	}
	k := uint64(skip)

	// Engine stats advance exactly as k more stalled cycles would:
	// occupancy is frozen (nothing enters or leaves any structure, and no
	// MSHR expires before the horizon), and the per-cycle retry counters
	// repeat the measured cycle's movement.
	e.stats.Cycles += skip
	e.stats.RetireStoreStalls += k * (e.stats.RetireStoreStalls - retireStallsBefore)
	e.stats.MeekLogStalls += k * (e.stats.MeekLogStalls - meekStallsBefore)
	e.stats.CheckerCtxSwitches += k * (e.stats.CheckerCtxSwitches - ctxSwitchesBefore)
	e.stats.ROBOccSum += k * uint64(e.robM.len()+e.robR.len())
	e.stats.ISQOccSum += k * uint64(e.w.isqCount[ThreadM]+e.w.isqCount[ThreadR])
	e.stats.LSQOccSum += k * uint64(e.lsq.len())
	e.stats.StaggerSum += k * uint64(e.pendingR.len())
	e.stats.MSHROccSum += k * uint64(e.mem.MSHR().InFlight())
	e.stats.MeekLogOccSum += k * uint64(e.meekLog.len())

	poolAfter := e.pool.Refused()
	for c := range poolAfter {
		poolAfter[c] -= poolBefore[c]
	}
	e.pool.AddRefused(poolAfter, k)
	if e.checkerPool != nil {
		checkerAfter := e.checkerPool.Refused()
		for c := range checkerAfter {
			checkerAfter[c] -= checkerBefore[c]
		}
		e.checkerPool.AddRefused(checkerAfter, k)
	}
	e.mem.AddAttempts(e.mem.AttemptCounters().Sub(memBefore), k)

	e.now += skip
	e.skipped += skip
}

// SkippedCycles reports how many simulated cycles the fast-forward loop
// skipped instead of executing — a host-performance diagnostic (always
// zero under WithTickLoop).
func (e *Engine) SkippedCycles() int64 { return e.skipped }

// schedule records a future completion time in the event heap. Every
// time the machine schedules work — an execution result (which is also
// the release time of any unpipelined unit it holds), a second O3RS
// execution, or a checker verification — flows through here, so the heap
// plus the fetch timer and the MSHR file cover every gate the pipeline
// can wait on.
func (e *Engine) schedule(t int64) {
	// Next-cycle completions can never form a skip horizon: a stalled
	// cycle is always later than the issue cycle, so by the first cycle
	// that could consult them they are already past due. Filtering them
	// here keeps the heap to the long-latency minority (cache misses,
	// divides, FP ops).
	if t <= e.now+1 || e.tickLoop {
		return
	}
	// Retire up to two past-due entries per push so stall-free execution
	// phases (which never reach nextScheduled) cannot grow the heap
	// without bound: draining at twice the push rate keeps the stale
	// population shrinking whenever any exists.
	for i := 0; i < 2 && len(e.events) > 0 && e.events[0] <= e.now; i++ {
		e.popEvent()
	}
	h := append(e.events, t)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.events = h
}

// popEvent removes the heap minimum.
func (e *Engine) popEvent() {
	h := e.events
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r] < h[l] {
			l = r
		}
		if h[i] <= h[l] {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	e.events = h
}

// nextScheduled pops past-due times and returns the earliest future one,
// or notDone when none is pending.
func (e *Engine) nextScheduled() int64 {
	for len(e.events) > 0 && e.events[0] <= e.now {
		e.popEvent()
	}
	if len(e.events) == 0 {
		return notDone
	}
	return e.events[0]
}

// nextEventAt returns the earliest cycle strictly after now at which any
// scheduled event lands — the event horizon. Between a stalled cycle and
// this horizon no gate in the machine can open: operand readiness, LVQ
// and store-forwarding availability, checker completion, retirement
// eligibility, LSQ/ROB/ISQ drain, MSHR release, unpipelined-unit release,
// and fetch resumption are all driven by the event heap, the
// fetch-redirect timer, and the earliest outstanding MSHR fill. Returns
// notDone when nothing is scheduled.
func (e *Engine) nextEventAt() int64 {
	h := e.nextScheduled()
	if t := e.fetchResumeAt; t > e.now && t < h {
		h = t
	}
	if t := e.mem.NextEvent(e.now); t < h {
		h = t
	}
	// Unpipelined-unit releases are already in the heap (TryIssue's
	// completion time is the release time), but consult the pools
	// directly too so the horizon stays sound if that coupling ever
	// changes.
	if t := e.pool.NextCompletion(e.now); t < h {
		h = t
	}
	if e.checkerPool != nil {
		if t := e.checkerPool.NextCompletion(e.now); t < h {
			h = t
		}
	}
	return h
}

// resolveBranch squashes the wrong path once the active mispredicted branch
// executes, and schedules the fetch redirect.
func (e *Engine) resolveBranch() {
	br := e.wpBranch
	if br < 0 || !e.w.completed(br, e.now) {
		return
	}
	e.wpBranch = -1
	e.progressed = true
	resume := e.w.completeAt[br] + int64(e.cfg.Bpred.MispredictPenalty)
	e.squashWrongPath()
	if resume < e.now {
		resume = e.now
	}
	if resume > e.fetchResumeAt {
		e.fetchResumeAt = resume
	}
	e.haveFetchLine = false
	e.stats.Squashes++
}

// squashWrongPath removes every wrong-path instruction from the pipeline
// and rolls back rename state. Wrong-path instructions are a contiguous
// young suffix of the window ring (everything allocated after the
// mispredicted branch), so the window rewinds its tail; the queues drop
// matching slots in place.
func (e *Engine) squashWrongPath() {
	w := &e.w
	// Roll back rename state youngest-first so lastWriter ends up at the
	// youngest surviving writer. Only robM/robR entries renamed (pendingR
	// copies have not, and never touch lastWriter).
	rollback := func(q *idxFifo) {
		for i := q.len() - 1; i >= 0; i-- {
			s := q.at(i)
			if w.flags[s]&fWrongPath == 0 {
				break
			}
			if dst := w.inst[s].Dest; dst != isa.RegNone {
				e.lastWriter[w.thread(s)][dst] = w.prevWriter[s]
			}
		}
	}
	rollback(&e.robM)
	rollback(&e.robR)

	wp := func(s int32) bool { return w.flags[s]&fWrongPath != 0 }
	e.robM.removeIf(wp, nil)
	e.robR.removeIf(wp, nil)
	e.lsq.removeIf(wp, nil)
	e.pendingR.removeIf(wp, nil)
	w.rewindWrongPath()
	if e.fetchBufValid && e.fetchBuf.wrongPath {
		e.fetchBufValid = false
	}
}

// softException squashes the entire pipeline after a detected fault and
// replays from the faulting instruction. All in-flight correct-path
// M-thread instructions (including the faulty one) are queued for re-fetch.
func (e *Engine) softException() {
	e.stats.SoftExceptions++
	e.progressed = true
	w := &e.w

	// Capture correct-path instructions in program order for replay,
	// accounting in-flight faults that this squash wipes (their replays
	// execute cleanly). The capture must go in FRONT of any entries still
	// queued from a previous soft exception: in-flight ROB instructions
	// (and the fetch buffer) are strictly older than a replay remnant,
	// which has not dispatched yet — appending would scramble program
	// order whenever a second fault is detected mid-replay.
	captured := make([]isa.Inst, 0, e.robM.len()+1+len(e.replay))
	for i := 0; i < e.robM.len(); i++ {
		s := e.robM.at(i)
		if w.flags[s]&fWrongPath == 0 {
			captured = append(captured, w.inst[s])
		}
		if w.flags[s]&(fFaulty|fFaulty2) != 0 {
			e.stats.FaultsSquashed++
		}
	}
	for i := 0; i < e.robR.len(); i++ {
		if s := e.robR.at(i); w.flags[s]&(fFaulty|fFaulty2) != 0 {
			e.stats.FaultsSquashed++
		}
	}
	if e.fetchBufValid && !e.fetchBuf.wrongPath {
		captured = append(captured, e.fetchBuf.inst)
	}
	e.fetchBufValid = false
	e.replay = append(captured, e.replay...)

	e.robM.clear(nil)
	e.robR.clear(nil)
	e.pendingR.clear(nil)
	e.lsq.clear(nil)
	e.meekLog.clear(nil)
	w.reset()
	e.checkCount = 0
	e.wpBranch = -1
	for t := range e.lastWriter {
		for r := range e.lastWriter[t] {
			e.lastWriter[t][r] = noRef
		}
	}
	e.fetchResumeAt = e.now + int64(e.cfg.Bpred.MispredictPenalty)
	e.haveFetchLine = false
	e.lsqNextFree = 0
}
