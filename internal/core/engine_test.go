package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testWorkload returns a modest integer-like profile for engine tests.
func testWorkload(seed uint64) trace.Profile {
	var m [isa.NumOpClasses]float64
	m[isa.OpIALU] = 0.55
	m[isa.OpIMul] = 0.03
	m[isa.OpLoad] = 0.26
	m[isa.OpStore] = 0.12
	return trace.Profile{
		Name: "engine-test", Class: trace.IntClass, Seed: seed,
		CodeFootprint: 32 * 1024, AvgBlockLen: 6,
		LoopFrac: 0.15, UncondFrac: 0.08, IndirectFrac: 0.02,
		LoopMean: 8, PredictableFrac: 0.85, IndirectTargets: 4,
		Phases: []trace.Phase{{
			Len: 1 << 20, Mix: m,
			DepMean: 6, DepMax: 32, ChainFrac: 0.3, SrcTwoProb: 0.4,
			DataFootprint: 96 * 1024, StrideFrac: 0.6, StrideBytes: 8,
			PointerChaseFrac: 0.05,
		}},
	}
}

// fpWorkload returns an FP-heavy, memory-streaming profile.
func fpWorkload(seed uint64) trace.Profile {
	var m [isa.NumOpClasses]float64
	m[isa.OpIALU] = 0.22
	m[isa.OpFAdd] = 0.26
	m[isa.OpFMul] = 0.18
	m[isa.OpLoad] = 0.23
	m[isa.OpStore] = 0.11
	return trace.Profile{
		Name: "engine-fp-test", Class: trace.FPClass, Seed: seed,
		CodeFootprint: 24 * 1024, AvgBlockLen: 11,
		LoopFrac: 0.3, UncondFrac: 0.03, IndirectFrac: 0,
		LoopMean: 20, PredictableFrac: 0.96, IndirectTargets: 1,
		Phases: []trace.Phase{{
			Len: 1 << 20, Mix: m,
			DepMean: 9, DepMax: 36, ChainFrac: 0.18, SrcTwoProb: 0.6,
			DataFootprint: 48 * 1024 * 1024, StrideFrac: 0.8, StrideBytes: 16,
		}},
	}
}

const testInstrs = 30000

func runOn(t *testing.T, m config.Machine, p trace.Profile, n uint64) Stats {
	t.Helper()
	e := New(m, trace.New(p))
	st, err := e.Run(n)
	if err != nil {
		t.Fatalf("%s on %s: %v", m.Name, p.Name, err)
	}
	return st
}

// warmRun warms caches and predictors before measuring, as the experiment
// harness does.
func warmRun(t *testing.T, m config.Machine, p trace.Profile, warm, n uint64) Stats {
	t.Helper()
	e := New(m, trace.New(p))
	if err := e.Warmup(warm); err != nil {
		t.Fatalf("%s on %s (warmup): %v", m.Name, p.Name, err)
	}
	st, err := e.Run(n)
	if err != nil {
		t.Fatalf("%s on %s: %v", m.Name, p.Name, err)
	}
	return st
}

func TestSS1Runs(t *testing.T) {
	st := runOn(t, config.SS1(), testWorkload(1), testInstrs)
	ipc := st.IPC()
	if ipc <= 0.05 || ipc > 8 {
		t.Fatalf("SS1 IPC = %.3f, implausible", ipc)
	}
	if st.Retired < testInstrs {
		t.Fatalf("retired %d, want >= %d", st.Retired, testInstrs)
	}
}

func TestSS2Runs(t *testing.T) {
	st := runOn(t, config.SS2(config.Factors{}), testWorkload(1), testInstrs)
	if st.IPC() <= 0.05 || st.IPC() > 8 {
		t.Fatalf("SS2 IPC = %.3f", st.IPC())
	}
	if st.IssuedR == 0 {
		t.Fatal("SS2 never issued R-thread instructions")
	}
}

func TestSHRECRuns(t *testing.T) {
	st := runOn(t, config.SHREC(), testWorkload(1), testInstrs)
	if st.IPC() <= 0.05 || st.IPC() > 8 {
		t.Fatalf("SHREC IPC = %.3f", st.IPC())
	}
	if st.IssuedChecker == 0 {
		t.Fatal("SHREC checker never issued")
	}
	// Every retired instruction must have been checked.
	if st.IssuedChecker < st.Retired {
		t.Fatalf("checker issued %d < retired %d", st.IssuedChecker, st.Retired)
	}
}

// The headline ordering of the paper: redundant execution costs
// performance, and SHREC recovers most of it.
func TestModeOrdering(t *testing.T) {
	for _, p := range []trace.Profile{testWorkload(7), fpWorkload(7)} {
		ss1 := warmRun(t, config.SS1(), p, testInstrs, testInstrs).IPC()
		ss2 := warmRun(t, config.SS2(config.Factors{}), p, testInstrs, testInstrs).IPC()
		shrec := warmRun(t, config.SHREC(), p, testInstrs, testInstrs).IPC()
		if ss2 >= ss1 {
			t.Errorf("%s: SS2 IPC %.3f >= SS1 IPC %.3f", p.Name, ss2, ss1)
		}
		// SHREC may not beat SS1 beyond scheduling noise (store commits
		// shift cache timing slightly between the two machines).
		if shrec > ss1*1.02 {
			t.Errorf("%s: SHREC IPC %.3f exceeds SS1 %.3f", p.Name, shrec, ss1)
		}
		if shrec <= ss2*0.9 {
			t.Errorf("%s: SHREC IPC %.3f below SS2 %.3f", p.Name, shrec, ss2)
		}
	}
}

func TestSS2FactorsImprove(t *testing.T) {
	p := fpWorkload(5)
	const warm = 60000
	base := warmRun(t, config.SS2(config.Factors{}), p, warm, testInstrs).IPC()
	all := warmRun(t, config.SS2(config.Factors{X: true, S: true, C: true, B: true}), p, warm, testInstrs).IPC()
	if all <= base {
		t.Fatalf("all factors IPC %.3f <= plain SS2 %.3f", all, base)
	}
	// C must matter for the memory-bound FP profile.
	c := warmRun(t, config.SS2(config.Factors{C: true}), p, warm, testInstrs).IPC()
	if c <= base*1.02 {
		t.Errorf("C factor gave only %.3f vs %.3f on a memory-bound profile", c, base)
	}
}

func TestStaggerBound(t *testing.T) {
	m := config.SS2(config.Factors{S: true})
	e := New(m, trace.New(testWorkload(9)))
	// Run manually, asserting the stagger invariant every cycle.
	for e.stats.Retired < 5000 {
		e.cycle()
		if got := e.pendingR.len(); got > m.MaxStagger {
			t.Fatalf("stagger %d exceeds bound %d", got, m.MaxStagger)
		}
		if e.robM.len()+e.robR.len() > m.ROBSize {
			t.Fatalf("ROB occupancy exceeded capacity")
		}
		if e.w.isqCount[ThreadM]+e.w.isqCount[ThreadR] > m.ISQSize {
			t.Fatalf("ISQ occupancy exceeded capacity")
		}
		if e.lsq.len() > m.LSQSize {
			t.Fatalf("LSQ occupancy exceeded capacity")
		}
	}
}

func TestLockstepOccupancyInvariants(t *testing.T) {
	m := config.SS2(config.Factors{})
	e := New(m, trace.New(testWorkload(11)))
	for e.stats.Retired < 5000 {
		e.cycle()
		if e.robM.len()+e.robR.len() > m.ROBSize {
			t.Fatal("ROB over capacity")
		}
		if e.w.isqCount[ThreadM]+e.w.isqCount[ThreadR] > m.ISQSize {
			t.Fatal("ISQ over capacity")
		}
		if e.pendingR.len() != 0 {
			t.Fatal("lockstep mode must not use the stagger queue")
		}
	}
}

func TestRetirementInProgramOrder(t *testing.T) {
	for _, m := range []config.Machine{config.SS1(), config.SS2(config.Factors{S: true}), config.SHREC()} {
		e := New(m, trace.New(testWorkload(13)))
		lastSeq := int64(-1)
		// Wrap retire bookkeeping: sample the ROB head's seq each cycle
		// before retirement; retired count strictly increases in order.
		for e.stats.Retired < 3000 {
			before := e.stats.Retired
			e.cycle()
			if e.stats.Retired < before {
				t.Fatalf("%s: retired count decreased", m.Name)
			}
			if !e.robM.empty() {
				head := int64(e.w.seq[e.robM.front()])
				if head < lastSeq {
					t.Fatalf("%s: ROB head went backwards (%d after %d)", m.Name, head, lastSeq)
				}
				lastSeq = head
			}
		}
	}
}

func TestWrongPathConsumption(t *testing.T) {
	// A profile with many unpredictable branches must fetch wrong-path
	// instructions and squash them.
	p := testWorkload(15)
	p.PredictableFrac = 0.2
	st := runOn(t, config.SS1(), p, testInstrs)
	if st.Mispredicts == 0 {
		t.Fatal("no mispredictions in an unpredictable profile")
	}
	if st.WrongPathFetched == 0 {
		t.Fatal("mispredictions fetched no wrong-path instructions")
	}
	if st.Squashes == 0 {
		t.Fatal("no squashes recorded")
	}
}

func TestIPCBoundedByWidth(t *testing.T) {
	// Even a maximally parallel workload cannot beat the issue width.
	p := testWorkload(17)
	p.Phases[0].DepMean = 20
	p.Phases[0].ChainFrac = 0
	p.Phases[0].DataFootprint = 64 * 1024
	st := runOn(t, config.SS1(), p, testInstrs)
	if st.IPC() > 8 {
		t.Fatalf("IPC %.2f exceeds the 8-wide machine", st.IPC())
	}
}

func TestFaultDetectionSS2(t *testing.T) {
	m := config.SS2(config.Factors{S: true})
	m.FaultRate = 1e-4
	m.FaultSeed = 42
	st := runOn(t, m, testWorkload(19), testInstrs)
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if st.FaultsDetected == 0 {
		t.Fatal("no faults detected")
	}
	if st.SilentCorruptions != 0 {
		t.Fatalf("%d silent corruptions escaped SS2", st.SilentCorruptions)
	}
	if st.SoftExceptions != st.FaultsDetected {
		t.Fatalf("exceptions %d != detections %d", st.SoftExceptions, st.FaultsDetected)
	}
	if st.Retired < testInstrs {
		t.Fatalf("recovery lost instructions: retired %d", st.Retired)
	}
}

func TestFaultDetectionSHREC(t *testing.T) {
	m := config.SHREC()
	m.FaultRate = 1e-4
	m.FaultSeed = 43
	st := runOn(t, m, testWorkload(21), testInstrs)
	if st.FaultsInjected == 0 || st.FaultsDetected == 0 {
		t.Fatalf("injection/detection = %d/%d", st.FaultsInjected, st.FaultsDetected)
	}
	if st.SilentCorruptions != 0 {
		t.Fatal("silent corruption escaped SHREC")
	}
}

func TestSS1FaultsEscapeSilently(t *testing.T) {
	m := config.SS1()
	m.FaultRate = 1e-3
	m.FaultSeed = 44
	st := runOn(t, m, testWorkload(23), testInstrs)
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if st.FaultsDetected != 0 {
		t.Fatal("SS1 has no detection mechanism")
	}
	if st.SilentCorruptions == 0 {
		t.Fatal("injected faults must surface as silent corruptions")
	}
}

func TestAllWorkloadsAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in short mode")
	}
	machines := []config.Machine{config.SS1(), config.SS2(config.Factors{}), config.SS2(config.Factors{S: true, C: true}), config.SHREC()}
	for _, p := range workload.All() {
		for _, m := range machines {
			st := runOn(t, m, p, 8000)
			if st.IPC() <= 0.02 || st.IPC() > float64(m.IssueWidth) {
				t.Errorf("%s on %s: IPC %.3f out of range", m.Name, p.Name, st.IPC())
			}
		}
	}
}

func TestCheckerWindowLimitsIssue(t *testing.T) {
	// Every retired instruction was checked exactly once; instructions
	// still in flight at the end may have been checked but not retired.
	m := config.SHREC()
	st := runOn(t, m, testWorkload(25), testInstrs)
	if st.IssuedChecker < st.Retired {
		t.Fatalf("checker issued %d < retired %d", st.IssuedChecker, st.Retired)
	}
	if st.IssuedChecker > st.Retired+uint64(m.ROBSize) {
		t.Fatalf("checker issued %d far exceeds retired %d", st.IssuedChecker, st.Retired)
	}
}

func TestXScaleImprovesHighILP(t *testing.T) {
	p := fpWorkload(27)
	p.Phases[0].DataFootprint = 48 * 1024 // L1 resident: FU bound
	p.Phases[0].StrideFrac = 0.9
	p.Phases[0].DepMean = 24
	p.Phases[0].DepMax = 96
	p.Phases[0].ChainFrac = 0.04
	p.Phases[0].SrcTwoProb = 0.4
	// Saturate the two FP adders under redundant execution.
	p.Phases[0].Mix[isa.OpFAdd] = 0.34
	p.Phases[0].Mix[isa.OpFMul] = 0.24
	p.Phases[0].Mix[isa.OpIALU] = 0.14
	const warm = 60000
	base := warmRun(t, config.SS2(config.Factors{}), p, warm, testInstrs).IPC()
	wide := warmRun(t, config.SS2(config.Factors{X: true}), p, warm, testInstrs).IPC()
	if wide <= base*1.05 {
		t.Fatalf("doubling X helped too little on FU-bound FP: %.3f -> %.3f", base, wide)
	}
}

func BenchmarkSS1Engine(b *testing.B) {
	e := New(config.SS1(), trace.New(testWorkload(1)))
	b.ResetTimer()
	if _, err := e.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSHRECEngine(b *testing.B) {
	e := New(config.SHREC(), trace.New(testWorkload(1)))
	b.ResetTimer()
	if _, err := e.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}
