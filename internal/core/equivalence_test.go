package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// memWorkload returns a deliberately memory-bound profile: a large
// pointer-chasing footprint that misses to main memory constantly, so the
// pipeline spends most of its time in exactly the long stalls the
// cycle-skipping loop fast-forwards across.
func memWorkload(seed uint64) trace.Profile {
	var m [isa.NumOpClasses]float64
	m[isa.OpIALU] = 0.30
	m[isa.OpLoad] = 0.45
	m[isa.OpStore] = 0.15
	m[isa.OpFAdd] = 0.10
	return trace.Profile{
		Name: "engine-mem-test", Class: trace.IntClass, Seed: seed,
		CodeFootprint: 16 * 1024, AvgBlockLen: 9,
		LoopFrac: 0.2, UncondFrac: 0.05, IndirectFrac: 0.01,
		LoopMean: 12, PredictableFrac: 0.9, IndirectTargets: 4,
		Phases: []trace.Phase{{
			Len: 1 << 20, Mix: m,
			DepMean: 4, DepMax: 24, ChainFrac: 0.5, SrcTwoProb: 0.4,
			DataFootprint: 256 * 1024 * 1024, StrideFrac: 0.2, StrideBytes: 64,
			PointerChaseFrac: 0.5,
		}},
	}
}

// equivalenceMachines are the configurations the skip logic must prove
// itself on: every execution model, both SS2 duplication disciplines, the
// dedicated-checker (DIVA) pool, and fault injection with its soft
// exception squashes.
func equivalenceMachines() []config.Machine {
	withFaults := func(m config.Machine) config.Machine {
		m.Name += "+faults"
		m.FaultRate = 2e-4
		m.FaultSeed = 99
		return m
	}
	// A short-period FLEX machine flips between checked and unchecked
	// regions many times within a test-sized run, exercising both the
	// free pass-through and the shared-checker paths (and, with faults,
	// both the detect and the escape retirement paths).
	flex := config.FlexMachine(512, 128)
	return []config.Machine{
		config.SS1(),
		config.SS2(config.Factors{}),        // lockstep duplication
		config.SS2(config.Factors{S: true}), // staggered duplication
		config.SHREC(),
		config.O3RS(),
		config.DIVA(),
		config.MEEK(2),
		config.SHREC().WithContexts(4),
		flex,
		withFaults(config.SHREC()),
		withFaults(config.MEEK(2)),
		withFaults(config.SHREC().WithContexts(4)),
		withFaults(flex),
	}
}

// assertEquivalent runs the reference tick-by-tick loop and the
// fast-forward loop on identical engines and requires byte-identical
// statistics — not only the engine's Stats but the functional-unit,
// cache, and MSHR counters, which the skip path reconstructs analytically.
func assertEquivalent(t *testing.T, m config.Machine, p trace.Profile, warm, n uint64) {
	t.Helper()
	ref := New(m, trace.New(p), WithTickLoop())
	fast := New(m, trace.New(p))

	if err := ref.Warmup(warm); err != nil {
		t.Fatalf("%s on %s: reference warmup: %v", m.Name, p.Name, err)
	}
	if err := fast.Warmup(warm); err != nil {
		t.Fatalf("%s on %s: fast warmup: %v", m.Name, p.Name, err)
	}
	refStats, err := ref.Run(n)
	if err != nil {
		t.Fatalf("%s on %s: reference run: %v", m.Name, p.Name, err)
	}
	fastStats, err := fast.Run(n)
	if err != nil {
		t.Fatalf("%s on %s: fast run: %v", m.Name, p.Name, err)
	}

	if refStats != fastStats {
		t.Errorf("%s on %s: Stats diverge\n tick: %+v\n fast: %+v", m.Name, p.Name, refStats, fastStats)
	}
	if ri, fi := ref.Pool().Issued(), fast.Pool().Issued(); ri != fi {
		t.Errorf("%s on %s: FU issued diverge: tick %v fast %v", m.Name, p.Name, ri, fi)
	}
	if rr, fr := ref.Pool().Refused(), fast.Pool().Refused(); rr != fr {
		t.Errorf("%s on %s: FU refused diverge: tick %v fast %v", m.Name, p.Name, rr, fr)
	}
	if ra, fa := ref.Mem().AttemptCounters(), fast.Mem().AttemptCounters(); ra != fa {
		t.Errorf("%s on %s: memory attempt counters diverge\n tick: %+v\n fast: %+v", m.Name, p.Name, ra, fa)
	}
	rl, rs, rf, _, _ := ref.Mem().Stats()
	fl, fs, ff, _, _ := fast.Mem().Stats()
	if rl != fl || rs != fs || rf != ff {
		t.Errorf("%s on %s: memory access counts diverge: tick (%d,%d,%d) fast (%d,%d,%d)",
			m.Name, p.Name, rl, rs, rf, fl, fs, ff)
	}
	rp, rsec, _, _ := ref.Mem().MSHR().Stats()
	fp, fsec, _, _ := fast.Mem().MSHR().Stats()
	if rp != fp || rsec != fsec {
		t.Errorf("%s on %s: MSHR miss counts diverge: tick (%d,%d) fast (%d,%d)",
			m.Name, p.Name, rp, rsec, fp, fsec)
	}
}

// TestFastForwardEquivalence is the acceptance suite for the
// cycle-skipping engine: every mode on three workloads (compute-bound,
// FP-streaming, and memory-bound pointer chasing) must match the
// reference loop exactly.
func TestFastForwardEquivalence(t *testing.T) {
	workloads := []trace.Profile{testWorkload(5), fpWorkload(5), memWorkload(5)}
	machines := equivalenceMachines()
	if testing.Short() {
		// One pass per mode against the stall-heavy workload keeps the
		// CI-tier suite fast while exercising the skip path hardest.
		workloads = workloads[2:]
	}
	for _, m := range machines {
		for _, p := range workloads {
			t.Run(m.Name+"/"+p.Name, func(t *testing.T) {
				warm, n := uint64(5000), uint64(20000)
				assertEquivalent(t, m, p, warm, n)
			})
		}
	}
}

// TestFastForwardActuallySkips guards the optimization itself: on a
// memory-bound workload the fast loop must simulate the same cycle count
// while executing far fewer real cycles — otherwise the equivalence suite
// would pass trivially with the skip path dead.
func TestFastForwardActuallySkips(t *testing.T) {
	p := memWorkload(11)
	e := New(config.SS1(), trace.New(p))
	st, err := e.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if e.skipped == 0 {
		t.Fatalf("fast-forward loop never skipped a cycle over %d simulated cycles of a memory-bound run", st.Cycles)
	}
	if frac := float64(e.skipped) / float64(st.Cycles); frac < 0.10 {
		t.Errorf("fast-forward skipped only %.1f%% of %d cycles; expected a memory-bound run to be mostly skippable",
			frac*100, st.Cycles)
	}
}
