package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// dispatch runs the front end for one cycle: fetch (with branch prediction
// and I-cache timing), decode, rename, and allocation of ISQ/ROB/LSQ
// entries. In SS2 mode it also handles duplication into the R-thread,
// either in lockstep (both copies the same cycle) or through the pendingR
// stagger queue with leftover decode slots.
func (e *Engine) dispatch() {
	budget := e.cfg.DecodeWidth
	switch e.cfg.Mode {
	case config.ModeSS2:
		if e.cfg.MaxStagger == 0 {
			e.dispatchLockstep(&budget)
			return
		}
		e.dispatchM(&budget)
		e.dispatchR(&budget)
	default:
		e.dispatchM(&budget)
	}
}

// robFree returns the number of unallocated ROB entries (shared by both
// thread views).
func (e *Engine) robFree() int {
	return e.cfg.ROBSize - e.robM.len() - e.robR.len()
}

// isqFree returns the number of unallocated ISQ entries.
func (e *Engine) isqFree() int {
	return e.cfg.ISQSize - e.w.isqCount[ThreadM] - e.w.isqCount[ThreadR]
}

// lsqSpace reports whether a memory operation can allocate an LSQ entry,
// lazily releasing completed loads first. Loads hold their entry only until
// completion (the load queue is freed once the value returns); stores hold
// theirs until retirement, since they commit to the cache in order.
func (e *Engine) lsqSpace() bool {
	if e.lsq.len() < e.cfg.LSQSize {
		return true
	}
	// The sweep can only free a load once its access completes; until the
	// earliest completion among resident loads the scan is provably
	// fruitless (the bound is maintained here and at load issue).
	if !e.tickLoop && e.now < e.lsqNextFree {
		return false
	}
	w := &e.w
	now := e.now
	next := notDone
	e.lsq.removeIf(func(s int32) bool {
		if w.inst[s].IsLoad() {
			if w.completed(s, now) {
				w.flags[s] &^= fInLSQ
				return true
			}
			if w.flags[s]&fIssued != 0 && w.completeAt[s] < next {
				next = w.completeAt[s]
			}
		}
		return false
	}, nil)
	e.lsqNextFree = next
	return e.lsq.len() < e.cfg.LSQSize
}

// maxTakenPerCycle is the number of taken branches a fetch group may cross
// per cycle. The paper's EV8-derived front end fetches two blocks per
// cycle, so one taken-branch redirect does not end fetch.
const maxTakenPerCycle = 2

// dispatchM fetches and dispatches M-thread (and wrong-path) instructions.
func (e *Engine) dispatchM(budget *int) {
	stagger := e.cfg.Mode == config.ModeSS2 && e.cfg.MaxStagger > 0
	taken := 0
	for *budget > 0 {
		if e.isqFree() < 1 {
			return
		}
		if stagger {
			// Deadlock guard: the M-thread may only run ahead while the
			// ROB retains room for every undispatched R copy plus this
			// instruction's pair.
			if e.robFree() < e.pendingR.len()+2 {
				return
			}
			// Elastic stagger bound.
			if e.pendingR.len() >= e.cfg.MaxStagger {
				return
			}
		} else if e.robFree() < 1 {
			return
		}

		f := e.nextFetch()
		if f == nil {
			return
		}
		if f.inst.Class.IsMem() && !f.wrongPath && !e.lsqSpace() {
			// No LSQ entry: hold the instruction in the fetch buffer.
			e.fetchBuf = *f
			e.fetchBufValid = true
			return
		}
		if !f.predDone {
			e.predictBranch(f)
		}

		d := e.dispatchInst(f, ThreadM)
		*budget--

		if e.cfg.Mode == config.ModeSS2 && stagger {
			r := e.makeRCopy(d)
			e.pendingR.push(r)
		}

		e.postFetch(f, d)
		if f.btbBubble {
			break
		}
		if f.predTaken {
			taken++
			if taken >= maxTakenPerCycle {
				break
			}
		}
	}
}

// dispatchLockstep dispatches M and R copies of each instruction in the
// same cycle, each consuming a decode slot and an ISQ/ROB entry — the plain
// SS2 of Section 2.2.
func (e *Engine) dispatchLockstep(budget *int) {
	taken := 0
	for *budget >= 2 {
		if e.isqFree() < 2 || e.robFree() < 2 {
			return
		}
		f := e.nextFetch()
		if f == nil {
			return
		}
		if f.inst.Class.IsMem() && !f.wrongPath && !e.lsqSpace() {
			e.fetchBuf = *f
			e.fetchBufValid = true
			return
		}
		if !f.predDone {
			e.predictBranch(f)
		}

		d := e.dispatchInst(f, ThreadM)
		r := e.makeRCopy(d)
		e.dispatchRCopy(r)
		*budget -= 2

		e.postFetch(f, d)
		if f.btbBubble {
			break
		}
		if f.predTaken {
			taken++
			if taken >= maxTakenPerCycle {
				break
			}
		}
	}
}

// dispatchR dispatches queued R copies with the cycle's leftover decode
// bandwidth (SS2 stagger mode).
func (e *Engine) dispatchR(budget *int) {
	for *budget > 0 && !e.pendingR.empty() {
		if e.isqFree() < 1 || e.robFree() < 1 {
			return
		}
		r := e.pendingR.pop()
		e.dispatchRCopy(r)
		*budget--
	}
}

// postFetch applies post-dispatch fetch redirection: entering wrong-path
// mode after a mispredicted branch and charging the BTB-miss bubble.
func (e *Engine) postFetch(f *fetchedInst, d int32) {
	if f.mispredict && !f.wrongPath {
		e.w.flags[d] |= fMispredict
		e.wpBranch = d
	}
	if f.btbBubble {
		resume := e.now + int64(e.cfg.BTBMissPenalty)
		if resume > e.fetchResumeAt {
			e.fetchResumeAt = resume
		}
	}
}

// nextFetch returns the next instruction to dispatch, accounting for the
// fetch-redirect timer, the replay queue, wrong-path mode, and I-cache
// timing. A nil return means no instruction is available this cycle. The
// returned pointer aliases e.fetchTmp — engine-owned scratch, valid until
// the next nextFetch call — so the hot path heap-allocates nothing.
func (e *Engine) nextFetch() *fetchedInst {
	if e.fetchBufValid {
		e.fetchTmp = e.fetchBuf
		e.fetchBufValid = false
		return &e.fetchTmp
	}
	if e.now < e.fetchResumeAt {
		return nil
	}

	f := &e.fetchTmp
	*f = fetchedInst{}
	switch {
	case e.wpBranch >= 0:
		f.inst = e.gen.NextWrongPath()
		f.wrongPath = true
		e.stats.WrongPathFetched++
	case len(e.replay) > 0:
		f.inst = e.replay[0]
		copy(e.replay, e.replay[1:])
		e.replay = e.replay[:len(e.replay)-1]
		f.seq = e.fetchSeq
		e.fetchSeq++
		e.stats.Fetched++
	default:
		f.inst = e.gen.Next()
		f.seq = e.fetchSeq
		e.fetchSeq++
		e.stats.Fetched++
	}
	// Pulling a new instruction from the trace (or replay queue) advances
	// front-end state even when the instruction then parks on an I-cache
	// miss, so the cycle cannot be treated as repeatable dead time.
	e.progressed = true

	// I-cache: one access per new fetch line; a miss stalls fetch until
	// the fill arrives, with the instruction parked in the fetch buffer.
	line := e.mem.LineAddr(f.inst.PC)
	if !e.haveFetchLine || line != e.lastFetchLine {
		ready := e.mem.IFetch(e.now, f.inst.PC)
		e.lastFetchLine = line
		e.haveFetchLine = true
		if ready > e.now+int64(e.cfg.Mem.L1HitLat) {
			e.fetchResumeAt = ready
			e.fetchBuf = *f
			e.fetchBufValid = true
			return nil
		}
	}
	return f
}

// predictBranch consults the direction predictor and BTB exactly once per
// fetched instruction and records the outcome on the fetch record.
func (e *Engine) predictBranch(f *fetchedInst) {
	f.predDone = true
	in := &f.inst
	if !in.IsBranch() {
		return
	}
	if f.wrongPath {
		// Wrong-path branches are followed along their own synthetic
		// stream; they neither query nor train the predictor.
		f.predTaken = in.Taken
		return
	}
	switch in.BranchKind {
	case isa.BranchCond:
		e.stats.CondBranches++
		f.predTaken = e.pred.Predict(in.PC)
		if f.predTaken != in.Taken {
			f.mispredict = true
			e.stats.Mispredicts++
		} else if f.predTaken {
			// Correct taken prediction still needs the target from the
			// BTB; a miss (or stale target) costs a fetch bubble while
			// decode computes the direct target.
			if tgt, hit := e.btb.Lookup(in.PC); !hit || tgt != in.Target {
				f.btbBubble = true
				e.stats.BTBBubbles++
			}
		}
		// Train immediately: hardware updates the history registers
		// speculatively at prediction time (repairing on squash), and by
		// the time a loop body drains from the ROB-sized window every
		// iteration of its branch has already been fetched — retire-time
		// history updates would make periodic patterns unlearnable.
		e.pred.Update(in.PC, in.Taken)
	case isa.BranchUncond:
		f.predTaken = true
		if tgt, hit := e.btb.Lookup(in.PC); !hit || tgt != in.Target {
			f.btbBubble = true
			e.stats.BTBBubbles++
		}
	case isa.BranchIndirect:
		f.predTaken = true
		// Indirect targets come only from the BTB; a miss or a changed
		// target is a full misprediction resolved at execute.
		if tgt, hit := e.btb.Lookup(in.PC); !hit || tgt != in.Target {
			f.mispredict = true
			e.stats.Mispredicts++
		}
	}
	if in.Taken {
		e.btb.Insert(in.PC, in.Target)
	}
}

// dispatchInst renames and allocates one instruction into the back-end
// structures.
func (e *Engine) dispatchInst(f *fetchedInst, t Thread) int32 {
	w := &e.w
	s := w.alloc(f.seq, f.inst, t, f.wrongPath, e.now)
	e.progressed = true
	e.rename(s)
	if w.waitCnt[s] == 0 {
		w.setReady(s)
	}
	e.robM.push(s)
	w.setISQ(ThreadM, s)
	if f.inst.Class.IsMem() && !f.wrongPath {
		w.flags[s] |= fInLSQ
		e.lsq.push(s)
	}
	return s
}

// makeRCopy allocates the redundant copy of a just-dispatched M
// instruction and links the pair. The copy is renamed when it dispatches;
// allocating it immediately after its M copy keeps ring order equal to
// global (seq, M-before-R) age order.
func (e *Engine) makeRCopy(m int32) int32 {
	w := &e.w
	r := w.alloc(w.seq[m], w.inst[m], ThreadR, w.flags[m]&fWrongPath != 0, e.now)
	w.pair[r] = ref{slot: m, gen: w.gen[m]}
	w.pair[m] = ref{slot: r, gen: w.gen[r]}
	return r
}

// dispatchRCopy renames and allocates a pending R copy.
func (e *Engine) dispatchRCopy(r int32) {
	w := &e.w
	w.dispatchedAt[r] = e.now
	e.progressed = true
	e.rename(r)
	if w.inst[r].IsLoad() {
		// The R copy reads its value from the LVQ, available once the M
		// copy's access completes: register the pair as a producer.
		w.addDep(r, w.pair[r])
	}
	if w.waitCnt[r] == 0 {
		w.setReady(r)
	}
	e.robR.push(r)
	w.setISQ(ThreadR, r)
}

// rename captures producer links for the instruction's sources, registers
// the consumer with each live unissued producer (issued producers fold
// their completion time instead), and claims the destination register in
// the thread's map.
func (e *Engine) rename(s int32) {
	w := &e.w
	lw := &e.lastWriter[w.thread(s)]
	in := &w.inst[s]
	if in.Src1 != isa.RegNone {
		r := lw[in.Src1]
		w.dep1[s] = r
		w.addDep(s, r)
	}
	if in.Src2 != isa.RegNone {
		r := lw[in.Src2]
		w.dep2[s] = r
		// A shared producer registers once: one broadcast must balance
		// exactly one waitCnt increment.
		if r != w.dep1[s] {
			w.addDep(s, r)
		}
	}
	if in.Dest != isa.RegNone {
		w.prevWriter[s] = lw[in.Dest]
		lw[in.Dest] = ref{slot: s, gen: w.gen[s]}
	}
}
