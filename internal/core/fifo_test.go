package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFifoBasics(t *testing.T) {
	var q fifo
	if !q.empty() || q.len() != 0 {
		t.Fatal("zero value not empty")
	}
	a, b := &dyn{seq: 1}, &dyn{seq: 2}
	q.push(a)
	q.push(b)
	if q.len() != 2 || q.front() != a || q.at(1) != b {
		t.Fatal("push/front/at broken")
	}
	if q.pop() != a || q.pop() != b {
		t.Fatal("pop order broken")
	}
	if !q.empty() {
		t.Fatal("not empty after draining")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order.
func TestFifoOrderProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		var q fifo
		r := rng.New(seed)
		nextPush, nextPop := uint64(0), uint64(0)
		for _, isPush := range ops {
			if isPush || q.empty() {
				q.push(&dyn{seq: nextPush})
				nextPush++
			} else {
				d := q.pop()
				if d.seq != nextPop {
					return false
				}
				nextPop++
			}
			// Occasionally force extra pops to exercise compaction.
			if r.Bool(0.3) && !q.empty() {
				if q.pop().seq != nextPop {
					return false
				}
				nextPop++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Compaction at large head offsets must preserve contents.
func TestFifoCompaction(t *testing.T) {
	var q fifo
	const n = 20000
	for i := 0; i < n; i++ {
		q.push(&dyn{seq: uint64(i)})
	}
	for i := 0; i < n-10; i++ {
		if got := q.pop().seq; got != uint64(i) {
			t.Fatalf("pop %d returned seq %d", i, got)
		}
	}
	// Push after compaction and drain the remainder.
	q.push(&dyn{seq: n})
	want := uint64(n - 10)
	for !q.empty() {
		if got := q.pop().seq; got != want {
			t.Fatalf("post-compaction pop = %d, want %d", got, want)
		}
		want++
	}
	if want != n+1 {
		t.Fatalf("drained to %d, want %d", want, n+1)
	}
}

func TestFifoRemoveIf(t *testing.T) {
	var q fifo
	for i := 0; i < 10; i++ {
		q.push(&dyn{seq: uint64(i), wrongPath: i%2 == 1})
	}
	var removed []uint64
	q.removeIf(func(d *dyn) bool { return d.wrongPath },
		func(d *dyn) { removed = append(removed, d.seq) })
	if q.len() != 5 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < q.len(); i++ {
		if q.at(i).seq != uint64(2*i) {
			t.Fatalf("survivor %d has seq %d", i, q.at(i).seq)
		}
	}
	if len(removed) != 5 || removed[0] != 1 || removed[4] != 9 {
		t.Fatalf("removed = %v", removed)
	}
}

func TestFifoRemoveIfAfterPops(t *testing.T) {
	var q fifo
	for i := 0; i < 8; i++ {
		q.push(&dyn{seq: uint64(i)})
	}
	q.pop()
	q.pop()
	q.removeIf(func(d *dyn) bool { return d.seq%2 == 0 }, nil)
	// Remaining: 3, 5, 7.
	if q.len() != 3 || q.front().seq != 3 || q.at(2).seq != 7 {
		t.Fatalf("post-pop removeIf broken: len=%d", q.len())
	}
}

func TestFifoClear(t *testing.T) {
	var q fifo
	for i := 0; i < 5; i++ {
		q.push(&dyn{seq: uint64(i)})
	}
	q.pop()
	var seen []uint64
	q.clear(func(d *dyn) { seen = append(seen, d.seq) })
	if !q.empty() {
		t.Fatal("clear left entries")
	}
	if len(seen) != 4 || seen[0] != 1 || seen[3] != 4 {
		t.Fatalf("clear visited %v", seen)
	}
}

func TestDepRefReady(t *testing.T) {
	d := &dyn{gen: 5, completeAt: 100}
	ref := depRef{d: d, gen: 5}
	if ref.ready(50) {
		t.Fatal("unissued producer reported ready")
	}
	d.issued = true
	if ref.ready(99) {
		t.Fatal("ready before completion")
	}
	if !ref.ready(100) {
		t.Fatal("not ready at completion")
	}
	// Recycled producer (generation bumped) counts as ready.
	d.gen++
	d.issued = false
	if !ref.ready(0) {
		t.Fatal("recycled producer must be treated as completed")
	}
	if !(depRef{}).ready(0) {
		t.Fatal("nil producer must be ready")
	}
}

func TestThreadString(t *testing.T) {
	if ThreadM.String() != "M" || ThreadR.String() != "R" {
		t.Fatal("thread strings wrong")
	}
}
