package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

// isqSlots collects thread t's issue-queue occupants in window age order
// (test helper shared by the invariant tests).
func (e *Engine) isqSlots(t Thread) []int32 {
	var out []int32
	for i := int32(0); i < e.w.n; i++ {
		s := e.w.ringSlot(i)
		if e.w.inISQ(t, s) {
			out = append(out, s)
		}
	}
	return out
}

func TestFifoBasics(t *testing.T) {
	q := newIdxFifo(8)
	if !q.empty() || q.len() != 0 {
		t.Fatal("fresh fifo not empty")
	}
	q.push(1)
	q.push(2)
	if q.len() != 2 || q.front() != 1 || q.at(1) != 2 {
		t.Fatal("push/front/at broken")
	}
	if q.pop() != 1 || q.pop() != 2 {
		t.Fatal("pop order broken")
	}
	if !q.empty() {
		t.Fatal("not empty after draining")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order.
func TestFifoOrderProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		q := newIdxFifo(2*len(ops) + 4)
		r := rng.New(seed)
		nextPush, nextPop := int32(0), int32(0)
		for _, isPush := range ops {
			if isPush || q.empty() {
				q.push(nextPush)
				nextPush++
			} else {
				if q.pop() != nextPop {
					return false
				}
				nextPop++
			}
			// Occasionally force extra pops to exercise wrap.
			if r.Bool(0.3) && !q.empty() {
				if q.pop() != nextPop {
					return false
				}
				nextPop++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The ring must wrap cleanly: sustained push/pop traffic far beyond the
// capacity preserves order and contents.
func TestFifoWrap(t *testing.T) {
	q := newIdxFifo(7)
	next, want := int32(0), int32(0)
	for round := 0; round < 100; round++ {
		for q.len() < 5 {
			q.push(next)
			next++
		}
		for q.len() > 2 {
			if got := q.pop(); got != want {
				t.Fatalf("round %d: pop = %d, want %d", round, got, want)
			}
			want++
		}
	}
	for !q.empty() {
		if got := q.pop(); got != want {
			t.Fatalf("drain: pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to %d, want %d", want, next)
	}
}

func TestFifoRemoveIf(t *testing.T) {
	q := newIdxFifo(16)
	for i := int32(0); i < 10; i++ {
		q.push(i)
	}
	var removed []int32
	q.removeIf(func(s int32) bool { return s%2 == 1 },
		func(s int32) { removed = append(removed, s) })
	if q.len() != 5 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < q.len(); i++ {
		if q.at(i) != int32(2*i) {
			t.Fatalf("survivor %d is %d", i, q.at(i))
		}
	}
	if len(removed) != 5 || removed[0] != 1 || removed[4] != 9 {
		t.Fatalf("removed = %v", removed)
	}
}

func TestFifoRemoveIfAfterPops(t *testing.T) {
	q := newIdxFifo(8)
	for i := int32(0); i < 8; i++ {
		q.push(i)
	}
	q.pop()
	q.pop()
	q.removeIf(func(s int32) bool { return s%2 == 0 }, nil)
	// Remaining: 3, 5, 7.
	if q.len() != 3 || q.front() != 3 || q.at(2) != 7 {
		t.Fatalf("post-pop removeIf broken: len=%d", q.len())
	}
}

func TestFifoClear(t *testing.T) {
	q := newIdxFifo(8)
	for i := int32(0); i < 5; i++ {
		q.push(i)
	}
	q.pop()
	var seen []int32
	q.clear(func(s int32) { seen = append(seen, s) })
	if !q.empty() {
		t.Fatal("clear left entries")
	}
	if len(seen) != 4 || seen[0] != 1 || seen[3] != 4 {
		t.Fatalf("clear visited %v", seen)
	}
}

// Ring allocation recycles slots with generation bumps, so stale refs die
// exactly when their slot is freed.
func TestWindowRingRecycling(t *testing.T) {
	w := newWindow(4)
	var prev ref
	for i := 0; i < 10; i++ {
		s := w.alloc(uint64(i), isa.Inst{}, ThreadM, false, 0)
		r := ref{slot: s, gen: w.gen[s]}
		if !w.live(r) {
			t.Fatalf("alloc %d: fresh ref not live", i)
		}
		if i > 0 && w.live(prev) {
			t.Fatalf("alloc %d: freed ref still live", i)
		}
		if w.n != 1 {
			t.Fatalf("alloc %d: n = %d", i, w.n)
		}
		w.freeHead(s)
		prev = r
	}
	if w.live(noRef) {
		t.Fatal("noRef must never be live")
	}
}

// addDep/broadcast bookkeeping: waits balance broadcasts, completion times
// fold into readyAt, and the ready mask arms at waitCnt zero.
func TestWindowWakeup(t *testing.T) {
	w := newWindow(8)
	p := w.alloc(0, isa.Inst{}, ThreadM, false, 0)
	c := w.alloc(1, isa.Inst{}, ThreadM, false, 0)
	w.addDep(c, ref{slot: p, gen: w.gen[p]})
	if w.waitCnt[c] != 1 {
		t.Fatalf("waitCnt = %d after registering one producer", w.waitCnt[c])
	}
	if w.ready[c>>6]&(1<<uint(c&63)) != 0 {
		t.Fatal("waiting consumer must not be ready")
	}
	w.flags[p] |= fIssued
	w.completeAt[p] = 42
	w.broadcast(p, 42)
	if w.waitCnt[c] != 0 || w.readyAt[c] != 42 {
		t.Fatalf("broadcast left waitCnt=%d readyAt=%d", w.waitCnt[c], w.readyAt[c])
	}
	if w.ready[c>>6]&(1<<uint(c&63)) == 0 {
		t.Fatal("woken consumer must be ready")
	}

	// Registering against an already-issued producer folds its completion
	// time without waiting.
	d := w.alloc(2, isa.Inst{}, ThreadM, false, 0)
	w.addDep(d, ref{slot: p, gen: w.gen[p]})
	if w.waitCnt[d] != 0 || w.readyAt[d] != 42 {
		t.Fatalf("issued producer fold: waitCnt=%d readyAt=%d", w.waitCnt[d], w.readyAt[d])
	}

	// A stale reference (producer freed) contributes nothing.
	stale := ref{slot: p, gen: w.gen[p] - 1}
	w.addDep(d, stale)
	if w.waitCnt[d] != 0 {
		t.Fatal("stale producer registered a wait")
	}
}

// unregisterDeps must clear consumer bits from unissued producers so a
// squashed consumer cannot be woken into a recycled slot.
func TestWindowUnregister(t *testing.T) {
	w := newWindow(8)
	p := w.alloc(0, isa.Inst{}, ThreadM, false, 0)
	c := w.alloc(1, isa.Inst{}, ThreadM, true, 0)
	w.dep1[c] = ref{slot: p, gen: w.gen[p]}
	w.addDep(c, w.dep1[c])
	w.rewindWrongPath()
	if w.n != 1 {
		t.Fatalf("rewind left n = %d", w.n)
	}
	row := w.consumers[int(p)*int(w.words) : (int(p)+1)*int(w.words)]
	for _, word := range row {
		if word != 0 {
			t.Fatal("squashed consumer bit survived in producer row")
		}
	}
	// Broadcast after the squash must wake nobody.
	w.flags[p] |= fIssued
	w.broadcast(p, 10)
}

// forEachCandidate visits ring age order — including across the wrap seam
// — and honors early termination.
func TestWindowScanOrder(t *testing.T) {
	w := newWindow(5)
	for i := 0; i < 3; i++ {
		s := w.alloc(uint64(i), isa.Inst{}, ThreadM, false, 0)
		w.freeHead(s)
	}
	// head = tail = 3: the next four allocations wrap to 3, 4, 0, 1.
	var want []int32
	for i := 0; i < 4; i++ {
		s := w.alloc(uint64(10+i), isa.Inst{}, ThreadM, false, 0)
		w.setISQ(ThreadM, s)
		w.setReady(s)
		want = append(want, s)
	}
	var got []int32
	w.forEachCandidate(w.isq[ThreadM], nil, func(s int32) bool {
		got = append(got, s)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v (age order across wrap)", got, want)
		}
	}

	// Early stop after the first visit.
	got = got[:0]
	w.forEachCandidate(w.isq[ThreadM], nil, func(s int32) bool {
		got = append(got, s)
		return false
	})
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("early stop visited %v", got)
	}

	// Union scan (second mask) sees entries from either mask.
	extra := want[2]
	w.clearISQ(ThreadM, extra)
	w.setISQ(ThreadR, extra)
	got = got[:0]
	w.forEachCandidate(w.isq[ThreadM], w.isq[ThreadR], func(s int32) bool {
		got = append(got, s)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("union scan visited %v, want %v", got, want)
	}
}

func TestThreadString(t *testing.T) {
	if ThreadM.String() != "M" || ThreadR.String() != "R" {
		t.Fatal("thread strings wrong")
	}
}
