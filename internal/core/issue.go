package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// issue selects ready instructions from the issue queue(s) in age order, up
// to the configured issue width, gated by functional unit and memory-system
// availability. Priority rules follow the paper:
//
//   - SS1/SHREC: a single M-thread queue; in SHREC the in-order checker
//     gets whatever issue slots and functional units remain.
//   - SS2 lockstep (no stagger): the two threads compete fairly — entries
//     are considered in global age order, interleaving the pairs.
//   - SS2 with stagger: static priority to the M-thread; the R-thread uses
//     the slack.
func (e *Engine) issue() {
	budget := e.cfg.IssueWidth
	switch e.cfg.Mode {
	case config.ModeSS2:
		if e.cfg.MaxStagger > 0 {
			e.isqM = e.issueFrom(e.isqM, &budget, &e.stats.IssuedM)
			e.isqR = e.issueFrom(e.isqR, &budget, &e.stats.IssuedR)
		} else {
			e.issueMerged(&budget)
		}
	case config.ModeSHREC:
		e.isqM = e.issueFrom(e.isqM, &budget, &e.stats.IssuedM)
		e.checkerIssue(&budget)
	case config.ModeO3RS:
		e.issueO3RS(&budget)
	default:
		e.isqM = e.issueFrom(e.isqM, &budget, &e.stats.IssuedM)
	}
}

// issueO3RS implements double execution from shared ISQ entries: an entry
// issues its first execution like SS1 and stays resident; the second
// execution (re-reading the same operands, loads re-checking against the
// LVQ) may issue from the same cycle onward, and only then is the entry
// released. Both executions consume issue slots and functional units.
func (e *Engine) issueO3RS(budget *int) {
	q := e.isqM
	w := 0
	for i, d := range q {
		if *budget == 0 {
			copy(q[w:], q[i:])
			w += len(q) - i
			break
		}
		if !d.issued {
			if d.wakeAt <= e.now && e.tryIssueOne(d) {
				e.stats.IssuedM++
				*budget--
			}
		}
		if d.issued && !d.issued2 && *budget > 0 {
			if e.tryIssueSecond(d) {
				e.stats.IssuedR++
				*budget--
			}
		}
		if d.issued && d.issued2 {
			continue // release the entry
		}
		q[w] = d
		w++
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	e.isqM = q[:w]
}

// tryIssueSecond attempts the O3RS re-execution of an already-issued
// instruction.
func (e *Engine) tryIssueSecond(d *dyn) bool {
	op := d.inst.Class
	if d.inst.IsLoad() {
		// The re-execution verifies address generation and compares the
		// LVQ value, which requires the first access to have completed.
		if !d.completed(e.now) {
			return false
		}
		op = isa.OpLoad // address generation slot, no cache access
	}
	done, ok := e.pool.TryIssue(e.now, op)
	if !ok {
		return false
	}
	d.issued2 = true
	d.complete2At = done
	e.schedule(done)
	e.progressed = true
	if e.faultEligible(d) && e.frng.Bool(e.cfg.FaultRate) {
		d.faulty2 = true
		if !d.faulty {
			d.faultAt = e.now
		}
		e.stats.FaultsInjected++
	}
	return true
}

// issueFrom scans one queue in age order, issuing every ready entry until
// the budget runs out. Issued entries are removed in place.
func (e *Engine) issueFrom(q []*dyn, budget *int, counter *uint64) []*dyn {
	if *budget == 0 || len(q) == 0 {
		return q
	}
	w := 0
	for i, d := range q {
		if *budget == 0 {
			// Keep the remainder untouched.
			copy(q[w:], q[i:])
			w += len(q) - i
			break
		}
		// Hoisted wakeup gate: the dominant case during stalls is an
		// entry provably waiting on a known completion; skip it without
		// the call.
		if d.wakeAt <= e.now && e.tryIssueOne(d) {
			*counter++
			*budget--
			continue
		}
		q[w] = d
		w++
	}
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	return q[:w]
}

// issueMerged considers both thread queues in global (seq, thread) age
// order — fair competition between the lockstep threads.
func (e *Engine) issueMerged(budget *int) {
	i, j := 0, 0
	wM, wR := 0, 0
	for (i < len(e.isqM) || j < len(e.isqR)) && *budget > 0 {
		var d *dyn
		takeM := j >= len(e.isqR)
		if !takeM && i < len(e.isqM) {
			m, r := e.isqM[i], e.isqR[j]
			takeM = m.seq < r.seq || (m.seq == r.seq && m.thread == ThreadM)
		}
		if takeM {
			d = e.isqM[i]
			i++
			if d.wakeAt <= e.now && e.tryIssueOne(d) {
				e.stats.IssuedM++
				*budget--
				continue
			}
			e.isqM[wM] = d
			wM++
		} else {
			d = e.isqR[j]
			j++
			if d.wakeAt <= e.now && e.tryIssueOne(d) {
				e.stats.IssuedR++
				*budget--
				continue
			}
			e.isqR[wR] = d
			wR++
		}
	}
	// Preserve any unscanned tails.
	wM += copy(e.isqM[wM:], e.isqM[i:])
	wR += copy(e.isqR[wR:], e.isqR[j:])
	for k := wM; k < len(e.isqM); k++ {
		e.isqM[k] = nil
	}
	for k := wR; k < len(e.isqR); k++ {
		e.isqR[k] = nil
	}
	e.isqM = e.isqM[:wM]
	e.isqR = e.isqR[:wR]
}

// tryIssueOne attempts to issue one instruction, returning true on success.
// On success the instruction's completion time is scheduled and fault
// injection is applied.
func (e *Engine) tryIssueOne(d *dyn) bool {
	// Dispatch-to-issue takes at least one cycle.
	if d.dispatchedAt >= e.now {
		return false
	}
	// Wakeup gate: skip the dependency re-walk while the cached bound says
	// the entry provably cannot issue yet. The bound is refreshed by the
	// failure paths below and is always a sound lower bound on the issue
	// cycle, so skipping changes no observable behavior (the reference
	// loop would have failed the same checks without touching the pool).
	if d.wakeAt > e.now {
		return false
	}
	if !d.depsReady(e.now) {
		if !e.tickLoop {
			d.wakeAt = e.wakeBound(d)
		}
		return false
	}

	var doneAt int64
	switch {
	case d.inst.IsLoad() && d.thread == ThreadR:
		// SS2 R-thread load: no cache access; the value comes from the
		// load-value queue once the M copy's access completed.
		if !d.pair.completed(e.now) {
			if !e.tickLoop && d.pair.issued {
				d.wakeAt = d.pair.completeAt
			}
			return false
		}
		done, ok := e.pool.TryIssue(e.now, isa.OpLoad)
		if !ok {
			return false
		}
		doneAt = done
	case d.inst.IsLoad():
		var ok bool
		doneAt, ok = e.issueLoad(d)
		if !ok {
			return false
		}
	default:
		// Stores perform address generation at issue; data is committed
		// at retirement. Branches resolve on an IALU. FP/integer ops use
		// their unit class.
		done, ok := e.pool.TryIssue(e.now, d.inst.Class)
		if !ok {
			return false
		}
		doneAt = done
	}

	d.issued = true
	d.completeAt = doneAt
	e.schedule(doneAt)
	if d.inLSQ && doneAt < e.lsqNextFree && d.inst.IsLoad() {
		e.lsqNextFree = doneAt
	}
	e.progressed = true
	if d.inst.IsLoad() && d.thread == ThreadM && !d.wrongPath {
		e.stats.LoadIssueWaitSum += uint64(e.now - d.dispatchedAt)
		e.stats.LoadCount++
	}
	e.injectFault(d)
	return true
}

// wakeBound computes the earliest cycle at which d's unready source
// operands could all be available. Producers that have issued contribute
// their exact completion time; unissued producers force a re-check next
// cycle (their completion is unknown until they issue, which itself marks
// the cycle as progress).
func (e *Engine) wakeBound(d *dyn) int64 {
	w := e.now + 1
	if !d.dep1.ready(e.now) {
		if b := d.dep1.earliest(e.now); b > w {
			w = b
		}
	}
	if !d.dep2.ready(e.now) {
		if b := d.dep2.earliest(e.now); b > w {
			w = b
		}
	}
	return w
}

// issueLoad handles M-thread (and wrong-path) loads: store-to-load
// forwarding from the LSQ when possible, otherwise a cache access gated by
// memory ports and MSHRs.
func (e *Engine) issueLoad(d *dyn) (int64, bool) {
	if !d.wrongPath {
		if st, found := e.forwardingStore(d); found {
			if !st.completed(e.now) {
				// The producing store has not generated its data yet. The
				// store cannot retire (and so cannot stop matching) before
				// it completes, so its completion bounds the load's issue.
				if !e.tickLoop && st.issued {
					d.wakeAt = st.completeAt
				}
				return 0, false
			}
			done, ok := e.pool.TryIssue(e.now, isa.OpLoad)
			if !ok {
				return 0, false
			}
			e.stats.LoadForwards++
			return done + 1, true // one extra cycle for the LSQ bypass
		}
	}
	// Cache path: require an address-generation unit and a memory port
	// before committing the access.
	if !e.pool.Available(e.now, isa.OpLoad) {
		return 0, false
	}
	ready, ok := e.mem.Load(e.now, d.inst.Addr)
	if !ok {
		return 0, false
	}
	if _, ok := e.pool.TryIssue(e.now, isa.OpLoad); !ok {
		// Unreachable: Available was checked above and nothing issued in
		// between.
		panic("core: functional unit vanished between Available and TryIssue")
	}
	return ready, true
}

// forwardingStore resolves the load's store-to-load forwarding source,
// memoizing the LSQ scan across retried issue attempts (see dyn.fwdState).
func (e *Engine) forwardingStore(d *dyn) (*dyn, bool) {
	if e.tickLoop {
		return e.youngerMatchingStore(d)
	}
	switch d.fwdState {
	case fwdFromStore:
		st := d.fwdStore.d
		if st.gen == d.fwdStore.gen {
			return st, true
		}
		// The source retired, which in-order retirement only permits
		// after every older store retired too: no match can remain.
		d.fwdState = fwdNone
		return nil, false
	case fwdNone:
		return nil, false
	}
	st, found := e.youngerMatchingStore(d)
	if found {
		d.fwdState = fwdFromStore
		d.fwdStore = depRef{d: st, gen: st.gen}
	} else {
		d.fwdState = fwdNone
	}
	return st, found
}

// youngerMatchingStore returns the youngest older store in the LSQ whose
// address granule matches the load's (perfect disambiguation from trace
// addresses, as in sim-outorder).
func (e *Engine) youngerMatchingStore(d *dyn) (*dyn, bool) {
	granule := d.inst.Addr >> 3
	for i := e.lsq.len() - 1; i >= 0; i-- {
		st := e.lsq.at(i)
		if st.seq >= d.seq || !st.inst.IsStore() {
			continue
		}
		if st.inst.Addr>>3 == granule {
			return st, true
		}
	}
	return nil, false
}

// checkerIssue runs the in-order checker: it considers up to
// CheckerWindow consecutive completed-but-unchecked instructions at the
// ROB head and re-executes them. In SHREC the checker competes for the
// main pipeline's leftover issue slots and functional units; in DIVA mode
// (CheckerDedicatedFU) it has its own units and issue bandwidth. Issue is
// strictly in order: the scan stops at the first instruction that is not
// completed or cannot obtain a unit.
func (e *Engine) checkerIssue(budget *int) {
	pool := e.pool
	if e.checkerPool != nil {
		// DIVA: a dedicated checker pipeline with its own issue
		// bandwidth, sized like the window.
		pool = e.checkerPool
		pool.BeginCycle(e.now)
		dedicated := e.cfg.CheckerWindow
		budget = &dedicated
	}
	for i := 0; i < e.cfg.CheckerWindow && *budget > 0; i++ {
		pos := e.robM.head + e.checkCount
		if pos >= len(e.robM.buf) {
			return
		}
		d := e.robM.buf[pos]
		if !d.completed(e.now) {
			return
		}
		done, ok := pool.TryIssue(e.now, checkOp(d.inst.Class))
		if !ok {
			return
		}
		d.checkIssued = true
		d.checkedAt = done
		e.schedule(done)
		e.checkCount++
		e.progressed = true
		*budget--
		e.stats.IssuedChecker++
	}
}

// checkOp maps an instruction class to the operation the checker performs:
// memory operations re-verify address generation (the load value itself is
// compared against the result buffer), branches re-evaluate their
// condition, and computation re-executes on its own unit class.
func checkOp(c isa.OpClass) isa.OpClass {
	switch c {
	case isa.OpLoad, isa.OpStore, isa.OpBranch:
		return isa.OpIALU
	default:
		return c
	}
}

// injectFault corrupts the instruction's result with the configured
// probability. Faults are injected only on correct-path instructions (a
// wrong-path fault is architecturally invisible) inside the configured
// injection window.
func (e *Engine) injectFault(d *dyn) {
	if !e.faultEligible(d) {
		return
	}
	if e.frng.Bool(e.cfg.FaultRate) {
		d.faulty = true
		d.faultAt = e.now
		e.stats.FaultsInjected++
	}
}

// faultEligible reports whether d is a legal injection site: injection
// enabled, correct path, and fetch sequence number inside the machine's
// fault window. The window check precedes the rng draw, so a windowed
// machine consumes no fault-stream randomness outside its window — its
// pre-window execution is bit-identical to a fault-free machine's.
func (e *Engine) faultEligible(d *dyn) bool {
	if e.cfg.FaultRate <= 0 || d.wrongPath {
		return false
	}
	if hi := e.cfg.FaultWindowHi; hi > 0 && (d.seq < e.cfg.FaultWindowLo || d.seq >= hi) {
		return false
	}
	return true
}
