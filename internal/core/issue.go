package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// issue selects ready instructions from the issue queue(s) in age order, up
// to the configured issue width, gated by functional unit and memory-system
// availability. Priority rules follow the paper:
//
//   - SS1/SHREC: a single M-thread queue; in SHREC the in-order checker
//     gets whatever issue slots and functional units remain.
//   - SS2 lockstep (no stagger): the two threads compete fairly — entries
//     are considered in global age order, interleaving the pairs.
//   - SS2 with stagger: static priority to the M-thread; the R-thread uses
//     the slack.
//
// Candidate selection is bitmap driven: the scan walks (isq AND ready)
// words in ring age order, so entries with unissued producers cost nothing
// until their last producer's issue-time broadcast re-arms them.
func (e *Engine) issue() {
	budget := e.cfg.IssueWidth
	switch e.cfg.Mode {
	case config.ModeSS2:
		if e.cfg.MaxStagger > 0 {
			e.issueFrom(ThreadM, &budget, &e.stats.IssuedM)
			e.issueFrom(ThreadR, &budget, &e.stats.IssuedR)
		} else {
			e.issueMerged(&budget)
		}
	case config.ModeSHREC:
		e.issueFrom(ThreadM, &budget, &e.stats.IssuedM)
		if e.cfg.Contexts > 1 {
			e.checkerIssueCtx(&budget)
		} else {
			e.checkerIssue(&budget)
		}
	case config.ModeMEEK:
		e.issueFrom(ThreadM, &budget, &e.stats.IssuedM)
		e.meekCheck()
	case config.ModeFLEX:
		e.issueFrom(ThreadM, &budget, &e.stats.IssuedM)
		e.flexCheckerIssue(&budget)
	case config.ModeO3RS:
		e.issueO3RS(&budget)
	default:
		e.issueFrom(ThreadM, &budget, &e.stats.IssuedM)
	}
}

// issueO3RS implements double execution from shared ISQ entries: an entry
// issues its first execution like SS1 and stays resident; the second
// execution (re-reading the same operands, loads re-checking against the
// LVQ) may issue from the same cycle onward, and only then is the entry
// released. Both executions consume issue slots and functional units.
func (e *Engine) issueO3RS(budget *int) {
	w := &e.w
	if *budget == 0 || w.isqCount[ThreadM] == 0 {
		return
	}
	w.forEachCandidate(w.isq[ThreadM], nil, func(s int32) bool {
		if w.flags[s]&fIssued == 0 {
			if e.tryIssueOne(s) {
				e.stats.IssuedM++
				*budget--
			}
		}
		if w.flags[s]&(fIssued|fIssued2) == fIssued && *budget > 0 {
			if e.tryIssueSecond(s) {
				e.stats.IssuedR++
				*budget--
			}
		}
		if w.flags[s]&(fIssued|fIssued2) == fIssued|fIssued2 {
			w.clearISQ(ThreadM, s) // release the entry
		}
		return *budget > 0
	})
}

// tryIssueSecond attempts the O3RS re-execution of an already-issued
// instruction.
func (e *Engine) tryIssueSecond(s int32) bool {
	w := &e.w
	op := w.inst[s].Class
	if w.inst[s].IsLoad() {
		// The re-execution verifies address generation and compares the
		// LVQ value, which requires the first access to have completed.
		if !w.completed(s, e.now) {
			return false
		}
		op = isa.OpLoad // address generation slot, no cache access
	}
	done, ok := e.pool.TryIssue(e.now, op)
	if !ok {
		return false
	}
	w.flags[s] |= fIssued2
	w.complete2At[s] = done
	e.schedule(done)
	e.progressed = true
	if e.faultEligible(s) && e.frng.Bool(e.cfg.FaultRate) {
		if w.flags[s]&fFaulty == 0 {
			w.faultAt[s] = e.now
		}
		w.flags[s] |= fFaulty2
		e.stats.FaultsInjected++
	}
	return true
}

// issueFrom scans one thread's issue queue in age order, issuing every
// ready entry until the budget runs out. Issued entries leave the queue
// mask.
func (e *Engine) issueFrom(t Thread, budget *int, counter *uint64) {
	w := &e.w
	if *budget == 0 || w.isqCount[t] == 0 {
		return
	}
	w.forEachCandidate(w.isq[t], nil, func(s int32) bool {
		if e.tryIssueOne(s) {
			*counter++
			*budget--
			w.clearISQ(t, s)
		}
		return *budget > 0
	})
}

// issueMerged considers both thread queues in global (seq, thread) age
// order — fair competition between the lockstep threads. Each queue is
// walked as a stream in dispatch order and the streams merge by comparing
// head seqs, M winning ties. The comparison is between stream HEADS, not a
// global sort: wrong-path entries carry seq 0, so once the older M entries
// ahead of one drain, it outranks every resident correct-path R copy.
func (e *Engine) issueMerged(budget *int) {
	w := &e.w
	if *budget == 0 || w.isqCount[ThreadM]+w.isqCount[ThreadR] == 0 {
		return
	}
	mc := w.newMaskCursor(w.isq[ThreadM])
	rc := w.newMaskCursor(w.isq[ThreadR])
	m, r := mc.next(), rc.next()
	for (m >= 0 || r >= 0) && *budget > 0 {
		takeM := r < 0 || (m >= 0 && w.seq[m] <= w.seq[r])
		if takeM {
			s := m
			m = mc.next()
			if w.ready[s>>6]&(1<<(uint(s)&63)) != 0 && e.tryIssueOne(s) {
				e.stats.IssuedM++
				*budget--
				w.clearISQ(ThreadM, s)
			}
		} else {
			s := r
			r = rc.next()
			if w.ready[s>>6]&(1<<(uint(s)&63)) != 0 && e.tryIssueOne(s) {
				e.stats.IssuedR++
				*budget--
				w.clearISQ(ThreadR, s)
			}
		}
	}
}

// tryIssueOne attempts to issue one instruction, returning true on success.
// On success the instruction's completion time is scheduled, fault
// injection is applied, and dependent consumers are woken by broadcast.
func (e *Engine) tryIssueOne(s int32) bool {
	w := &e.w
	// Dispatch-to-issue takes at least one cycle.
	if w.dispatchedAt[s] >= e.now {
		return false
	}
	// Readiness gates. The candidate scan already filters on the ready
	// mask (waitCnt == 0); readyAt defers entries whose producers have all
	// issued but not yet completed. The waitCnt check re-arms the entry
	// defensively if a dynamic producer was registered mid-scan.
	if w.waitCnt[s] != 0 || w.readyAt[s] > e.now {
		return false
	}

	in := &w.inst[s]
	var doneAt int64
	switch {
	case in.IsLoad() && w.flags[s]&fThread != 0:
		// SS2 R-thread load: no cache access; the value comes from the
		// load-value queue. The pair dependence registered at dispatch
		// guarantees the M copy's access has completed by now.
		done, ok := e.pool.TryIssue(e.now, isa.OpLoad)
		if !ok {
			return false
		}
		doneAt = done
	case in.IsLoad():
		var ok bool
		doneAt, ok = e.issueLoad(s)
		if !ok {
			return false
		}
	default:
		// Stores perform address generation at issue; data is committed
		// at retirement. Branches resolve on an IALU. FP/integer ops use
		// their unit class.
		done, ok := e.pool.TryIssue(e.now, in.Class)
		if !ok {
			return false
		}
		doneAt = done
	}

	w.flags[s] |= fIssued
	w.completeAt[s] = doneAt
	e.schedule(doneAt)
	if w.flags[s]&fInLSQ != 0 && doneAt < e.lsqNextFree && in.IsLoad() {
		e.lsqNextFree = doneAt
	}
	e.progressed = true
	if in.IsLoad() && w.flags[s]&(fThread|fWrongPath) == 0 {
		e.stats.LoadIssueWaitSum += uint64(e.now - w.dispatchedAt[s])
		e.stats.LoadCount++
	}
	e.injectFault(s)
	w.broadcast(s, doneAt)
	return true
}

// issueLoad handles M-thread (and wrong-path) loads: store-to-load
// forwarding from the LSQ when possible, otherwise a cache access gated by
// memory ports and MSHRs.
func (e *Engine) issueLoad(s int32) (int64, bool) {
	w := &e.w
	if w.flags[s]&fWrongPath == 0 {
		if st, found := e.forwardingStore(s); found {
			if !w.completed(st, e.now) {
				// The producing store has not generated its data yet. The
				// store cannot retire (and so cannot stop matching) before
				// it completes, so it is a dynamic producer of this load:
				// register it and sleep until its issue broadcast (or,
				// when already issued, until its completion time).
				if !e.tickLoop {
					if w.flags[st]&fIssued != 0 {
						if w.completeAt[st] > w.readyAt[s] {
							w.readyAt[s] = w.completeAt[st]
						}
					} else {
						w.waitCnt[s]++
						w.consumers[int(st)*int(w.words)+int(s>>6)] |= 1 << (uint(s) & 63)
						w.clearReady(s)
					}
				}
				return 0, false
			}
			done, ok := e.pool.TryIssue(e.now, isa.OpLoad)
			if !ok {
				return 0, false
			}
			e.stats.LoadForwards++
			return done + 1, true // one extra cycle for the LSQ bypass
		}
	}
	// Cache path: require an address-generation unit and a memory port
	// before committing the access.
	if !e.pool.Available(e.now, isa.OpLoad) {
		return 0, false
	}
	ready, ok := e.mem.Load(e.now, w.inst[s].Addr)
	if !ok {
		return 0, false
	}
	if _, ok := e.pool.TryIssue(e.now, isa.OpLoad); !ok {
		// Unreachable: Available was checked above and nothing issued in
		// between.
		panic("core: functional unit vanished between Available and TryIssue")
	}
	return ready, true
}

// forwardingStore resolves the load's store-to-load forwarding source,
// memoizing the LSQ scan across retried issue attempts (the fFwdFromStore
// and fFwdNone flag bits).
func (e *Engine) forwardingStore(s int32) (int32, bool) {
	w := &e.w
	if e.tickLoop {
		return e.youngerMatchingStore(s)
	}
	switch {
	case w.flags[s]&fFwdFromStore != 0:
		st := w.fwdStore[s]
		if w.live(st) {
			return st.slot, true
		}
		// The source retired, which in-order retirement only permits
		// after every older store retired too: no match can remain.
		w.flags[s] = w.flags[s]&^fFwdFromStore | fFwdNone
		w.fwdStore[s] = noRef
		return -1, false
	case w.flags[s]&fFwdNone != 0:
		return -1, false
	}
	st, found := e.youngerMatchingStore(s)
	if found {
		w.flags[s] |= fFwdFromStore
		w.fwdStore[s] = ref{slot: st, gen: w.gen[st]}
	} else {
		w.flags[s] |= fFwdNone
	}
	return st, found
}

// youngerMatchingStore returns the youngest older store in the LSQ whose
// address granule matches the load's (perfect disambiguation from trace
// addresses, as in sim-outorder).
func (e *Engine) youngerMatchingStore(s int32) (int32, bool) {
	w := &e.w
	granule := w.inst[s].Addr >> 3
	seq := w.seq[s]
	for i := e.lsq.len() - 1; i >= 0; i-- {
		st := e.lsq.at(i)
		if w.seq[st] >= seq || !w.inst[st].IsStore() {
			continue
		}
		if w.inst[st].Addr>>3 == granule {
			return st, true
		}
	}
	return -1, false
}

// checkerIssue runs the in-order checker: it considers up to
// CheckerWindow consecutive completed-but-unchecked instructions at the
// ROB head and re-executes them. In SHREC the checker competes for the
// main pipeline's leftover issue slots and functional units; in DIVA mode
// (CheckerDedicatedFU) it has its own units and issue bandwidth. Issue is
// strictly in order: the scan stops at the first instruction that is not
// completed or cannot obtain a unit.
func (e *Engine) checkerIssue(budget *int) {
	w := &e.w
	pool := e.pool
	if e.checkerPool != nil {
		// DIVA: a dedicated checker pipeline with its own issue
		// bandwidth, sized like the window.
		pool = e.checkerPool
		pool.BeginCycle(e.now)
		dedicated := e.cfg.CheckerWindow
		budget = &dedicated
	}
	for i := 0; i < e.cfg.CheckerWindow && *budget > 0; i++ {
		if e.checkCount >= e.robM.len() {
			return
		}
		s := e.robM.at(e.checkCount)
		if !w.completed(s, e.now) {
			return
		}
		done, ok := pool.TryIssue(e.now, checkOp(w.inst[s].Class))
		if !ok {
			return
		}
		w.flags[s] |= fCheckIssued
		w.checkedAt[s] = done
		e.schedule(done)
		e.checkCount++
		e.progressed = true
		*budget--
		e.stats.IssuedChecker++
	}
}

// checkOp maps an instruction class to the operation the checker performs:
// memory operations re-verify address generation (the load value itself is
// compared against the result buffer), branches re-evaluate their
// condition, and computation re-executes on its own unit class.
func checkOp(c isa.OpClass) isa.OpClass {
	switch c {
	case isa.OpLoad, isa.OpStore, isa.OpBranch:
		return isa.OpIALU
	default:
		return c
	}
}

// injectFault corrupts the instruction's result with the configured
// probability. Faults are injected only on correct-path instructions (a
// wrong-path fault is architecturally invisible) inside the configured
// injection window.
func (e *Engine) injectFault(s int32) {
	if !e.faultEligible(s) {
		return
	}
	if e.frng.Bool(e.cfg.FaultRate) {
		e.w.flags[s] |= fFaulty
		e.w.faultAt[s] = e.now
		e.stats.FaultsInjected++
		if e.cfg.Mode == config.ModeFLEX && !e.flexOn(e.w.seq[s]) {
			e.stats.FaultsInjectedUnchecked++
		}
	}
}

// faultEligible reports whether the slot is a legal injection site:
// injection enabled, correct path, and fetch sequence number inside the
// machine's fault window. The window check precedes the rng draw, so a
// windowed machine consumes no fault-stream randomness outside its window
// — its pre-window execution is bit-identical to a fault-free machine's.
func (e *Engine) faultEligible(s int32) bool {
	w := &e.w
	if e.cfg.FaultRate <= 0 || w.flags[s]&fWrongPath != 0 {
		return false
	}
	// The bounds apply independently: lo alone gives a half-open window
	// [lo, ∞) — recovery's re-injection guard bumps lo past a rolled-back
	// fault even on machines with no upper bound configured.
	if w.seq[s] < e.cfg.FaultWindowLo {
		return false
	}
	if hi := e.cfg.FaultWindowHi; hi > 0 && w.seq[s] >= hi {
		return false
	}
	return true
}
