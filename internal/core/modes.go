package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// This file holds the issue- and retire-stage mechanics of the modern
// detection modes (config.ModeMEEK, SHREC with hardware contexts, and
// config.ModeFLEX). The classic 2004 modes live in issue.go/retire.go.

// meekCheck runs MEEK's heterogeneous checker machinery for one cycle.
// Completed M-stream instructions enter a retirement-log FIFO in program
// order; each of the CheckerLanes narrow in-order lanes consumes the log
// head when free. The lanes never touch the main pipeline's issue slots
// or functional units — the only coupling back into the OoO core is
// backpressure: a full log blocks further check-issue, which blocks
// retirement (retireChecked requires verification), which fills the ROB.
func (e *Engine) meekCheck() {
	w := &e.w
	// Enqueue stage: move the completed, in-order ROB prefix into the log.
	// Stopping at the first incomplete entry keeps wrong-path work out —
	// any wrong-path suffix sits behind its unresolved (incomplete)
	// mispredicted branch, and resolveBranch squashes it before issue the
	// cycle that branch completes.
	for e.checkCount < e.robM.len() {
		s := e.robM.at(e.checkCount)
		if !w.completed(s, e.now) {
			break
		}
		if e.meekLog.len() >= config.MeekLogDepth {
			e.stats.MeekLogStalls++
			break
		}
		w.flags[s] |= fCheckIssued
		e.meekLog.push(s)
		e.checkCount++
		e.progressed = true
	}
	// Lane stage: each free lane verifies the oldest logged instruction.
	for l := range e.meekBusy {
		if e.meekBusy[l] > e.now || e.meekLog.empty() {
			continue
		}
		s := e.meekLog.pop()
		done := e.now + meekCheckLatency(w.inst[s].Class)
		e.meekBusy[l] = done
		w.checkedAt[s] = done
		e.schedule(done)
		e.progressed = true
		e.stats.IssuedChecker++
		e.stats.MeekLagSum += uint64(done - w.completeAt[s])
	}
}

// meekCheckLatency is a checker lane's verification latency per
// operation class. The lanes are minimal in-order cores: single-cycle
// simple ops, modestly slower complex arithmetic (they carry no wide
// multiplier or FP pipeline), and single-cycle memory checks (the value
// is compared against the logged result; only address generation is
// redone).
func meekCheckLatency(c isa.OpClass) int64 {
	switch c {
	case isa.OpIMul:
		return 3
	case isa.OpIDiv:
		return 8
	case isa.OpFAdd, isa.OpFMul:
		return 4
	case isa.OpFDiv:
		return 12
	default:
		return 1
	}
}

// advanceCheckPrefix extends checkCount over the contiguous check-issued
// prefix at the ROB head. Multi-context scans claim entries beyond the
// prefix; once the gap entries are claimed too, the prefix absorbs them,
// preserving the retire-time invariant that a retiring (check-issued)
// head is always counted inside the prefix.
func (e *Engine) advanceCheckPrefix() {
	w := &e.w
	for e.checkCount < e.robM.len() && w.flags[e.robM.at(e.checkCount)]&fCheckIssued != 0 {
		e.checkCount++
	}
}

// checkerIssueCtx is checkerIssue generalized to Contexts hardware
// checker contexts: where the classic in-order scan stops dead at the
// first incomplete instruction (head-of-line blocking behind every cache
// miss), a spare context resumes the scan past it, up to Contexts-1
// switches per cycle. Total check-issue bandwidth per cycle is unchanged
// (CheckerWindow); contexts only hide stalls, exactly like SMT absorbing
// R-stream work. The scan span is bounded to CheckerWindow*Contexts
// positions so a deep ROB cannot make the stage superlinear.
func (e *Engine) checkerIssueCtx(budget *int) {
	w := &e.w
	pool := e.pool
	if e.checkerPool != nil {
		// DIVA with contexts: the dedicated checker pipeline gains the
		// same stall-hiding.
		pool = e.checkerPool
		pool.BeginCycle(e.now)
		dedicated := e.cfg.CheckerWindow
		budget = &dedicated
	}
	e.advanceCheckPrefix()
	issued, switches := 0, 0
	limit := e.checkCount + e.cfg.CheckerWindow*e.cfg.Contexts
	for i := e.checkCount; i < e.robM.len() && i < limit && issued < e.cfg.CheckerWindow && *budget > 0; i++ {
		s := e.robM.at(i)
		if w.flags[s]&fCheckIssued != 0 {
			continue // claimed by an earlier cycle; verification in flight
		}
		if w.flags[s]&fWrongPath != 0 {
			// Unlike the classic scan, skipping incomplete entries can
			// carry the walk past an unresolved mispredicted branch into
			// its wrong-path shadow; never verify (or claim) that work.
			break
		}
		if !w.completed(s, e.now) {
			switches++
			if switches >= e.cfg.Contexts {
				break
			}
			e.stats.CheckerCtxSwitches++
			continue
		}
		done, ok := pool.TryIssue(e.now, checkOp(w.inst[s].Class))
		if !ok {
			break
		}
		w.flags[s] |= fCheckIssued
		w.checkedAt[s] = done
		e.schedule(done)
		if i == e.checkCount {
			e.checkCount++
		}
		e.progressed = true
		*budget--
		issued++
		e.stats.IssuedChecker++
	}
	e.advanceCheckPrefix()
}

// flexOn reports whether checking is enabled for the instruction with
// the given fetch sequence number under the machine's region policy.
func (e *Engine) flexOn(seq uint64) bool {
	return seq%e.cfg.FlexPeriod < e.cfg.FlexOn
}

// flexCheckerIssue is the FLEX checker: the classic in-order SHREC scan,
// except instructions in checking-disabled regions pass the check stage
// for free — no issue slot, no functional unit, verified the same cycle
// they are reached. Requiring completion even for pass-throughs keeps
// the scan stopping at the first incomplete entry, which (as in SHREC)
// is what keeps wrong-path work out of the check stage.
func (e *Engine) flexCheckerIssue(budget *int) {
	w := &e.w
	issued := 0
	for e.checkCount < e.robM.len() {
		s := e.robM.at(e.checkCount)
		if !w.completed(s, e.now) {
			return
		}
		if !e.flexOn(w.seq[s]) {
			w.flags[s] |= fCheckIssued
			w.checkedAt[s] = e.now
			e.checkCount++
			e.progressed = true
			continue
		}
		if issued >= e.cfg.CheckerWindow || *budget <= 0 {
			return
		}
		done, ok := e.pool.TryIssue(e.now, checkOp(w.inst[s].Class))
		if !ok {
			return
		}
		w.flags[s] |= fCheckIssued
		w.checkedAt[s] = done
		e.schedule(done)
		e.checkCount++
		e.progressed = true
		*budget--
		issued++
		e.stats.IssuedChecker++
	}
}

// retireFlex retires one FLEX instruction. In-region instructions carry
// SHREC's guarantee — a corrupted result is caught by the checker compare
// and raises a soft exception. Out-of-region instructions were never
// verified: a corrupted result escapes to architectural state, counted as
// a silent corruption (and visible in the ArchSig divergence), which is
// precisely the conditional-coverage story campaigns account for.
func (e *Engine) retireFlex(budget *int) bool {
	if e.robM.empty() {
		return false
	}
	w := &e.w
	s := e.robM.front()
	if !w.completed(s, e.now) || w.flags[s]&fCheckIssued == 0 || !w.checked(s, e.now) {
		return false
	}
	if w.flags[s]&fWrongPath != 0 {
		panic("core: wrong-path instruction reached FLEX retirement")
	}
	if w.flags[s]&fFaulty != 0 {
		if e.flexOn(w.seq[s]) {
			e.recordDetection(s, -1)
			e.softException()
			return false
		}
		e.stats.SilentCorruptions++
	}
	if !e.commitStore(s) {
		return false
	}
	if e.flexOn(w.seq[s]) {
		e.stats.FlexOnRetired++
	}
	e.finishRetire(s)
	e.robM.pop()
	e.checkCount--
	w.freeHead(s)
	e.stats.Retired++
	*budget--
	return true
}
