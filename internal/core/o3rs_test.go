package core

import (
	"repro/internal/trace"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func TestO3RSRuns(t *testing.T) {
	st := runOn(t, config.O3RS(), testWorkload(51), testInstrs)
	if st.IPC() <= 0.05 || st.IPC() > 8 {
		t.Fatalf("O3RS IPC = %.3f", st.IPC())
	}
	// Every retired instruction executed twice.
	if st.IssuedR < st.Retired {
		t.Fatalf("second executions %d < retired %d", st.IssuedR, st.Retired)
	}
	if st.IssuedM < st.Retired {
		t.Fatalf("first executions %d < retired %d", st.IssuedM, st.Retired)
	}
}

// O3RS shares ISQ/ROB entries, so it should beat plain SS2 (which halves
// the window) on window-sensitive workloads, and lose to SS1 (it still
// doubles issue/FU demand).
func TestO3RSOrdering(t *testing.T) {
	p := fpWorkload(53)
	const warm = 60000
	ss1 := warmRun(t, config.SS1(), p, warm, testInstrs).IPC()
	ss2 := warmRun(t, config.SS2(config.Factors{}), p, warm, testInstrs).IPC()
	o3rs := warmRun(t, config.O3RS(), p, warm, testInstrs).IPC()
	if o3rs <= ss2 {
		t.Fatalf("O3RS %.3f <= SS2 %.3f on a window-bound workload", o3rs, ss2)
	}
	if o3rs > ss1*1.02 {
		t.Fatalf("O3RS %.3f exceeds SS1 %.3f", o3rs, ss1)
	}
}

// The paper approximates O3RS as SS2+C+B. On real workloads the real
// mechanism should land in the same neighborhood (within ~15%).
func TestO3RSApproximationClaim(t *testing.T) {
	for _, name := range []string{"swim", "parser"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const warm, n = 200_000, 120_000
		o3rs := warmRun(t, config.O3RS(), p, warm, n).IPC()
		approx := warmRun(t, config.SS2(config.Factors{C: true, B: true}), p, warm, n).IPC()
		ratio := o3rs / approx
		if ratio < 0.85 || ratio > 1.25 {
			t.Errorf("%s: O3RS %.3f vs SS2+CB %.3f (ratio %.2f) — approximation claim violated",
				name, o3rs, approx, ratio)
		}
	}
}

func TestO3RSFaultCoverage(t *testing.T) {
	m := config.O3RS()
	m.FaultRate = 1e-4
	m.FaultSeed = 17
	st := runOn(t, m, testWorkload(55), testInstrs)
	if st.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if st.SilentCorruptions != 0 {
		t.Fatal("O3RS let a fault escape")
	}
	if st.FaultsDetected != st.SoftExceptions {
		t.Fatal("detection/recovery mismatch")
	}
	if st.Retired < testInstrs {
		t.Fatal("recovery lost instructions")
	}
}

// Invariant: an O3RS entry leaves the ISQ only after both executions, and
// retirement requires both completions in program order.
func TestO3RSIssueInvariants(t *testing.T) {
	e := New(config.O3RS(), trace.New(testWorkload(57)))
	for e.stats.Retired < 15000 {
		e.cycle()
		for _, s := range e.isqSlots(ThreadM) {
			fl := e.w.flags[s]
			if fl&fIssued2 != 0 && fl&fIssued != 0 {
				t.Fatal("fully issued entry still resident in ISQ")
			}
			if fl&fIssued2 != 0 && fl&fIssued == 0 {
				t.Fatal("second execution before first")
			}
		}
	}
}
