package core

import (
	"fmt"

	"repro/internal/config"
)

// retire commits instructions in program order, up to the configured
// retirement width per cycle.
//
//   - SS1 retires each completed instruction at the ROB head.
//   - SS2 retires a pair per program instruction, comparing the redundant
//     results: both copies must be completed, and together they consume
//     two retirement slots (the B-factor contention).
//   - SHREC retires an instruction only after the in-order checker has
//     verified it.
//
// Stores commit to the data cache at retirement and need a memory port; a
// busy port stalls retirement for the cycle. A detected fault raises a
// soft exception: the pipeline squashes and execution replays from the
// faulting instruction.
func (e *Engine) retire() {
	budget := e.cfg.RetireWidth
	for budget > 0 {
		// An exact run boundary (RunExact) caps retirement at the target
		// even when width and completed instructions remain.
		if e.retireStop != 0 && e.stats.Retired >= e.retireStop {
			return
		}
		switch e.cfg.Mode {
		case config.ModeSS2:
			if !e.retirePair(&budget) {
				return
			}
		case config.ModeSHREC, config.ModeMEEK:
			// MEEK shares SHREC's retirement contract: the head retires
			// only once verified (fCheckIssued + checked), with a compare
			// mismatch raising a soft exception — only the verifying agent
			// differs (checker lanes fed by the retirement log).
			if !e.retireChecked(&budget) {
				return
			}
		case config.ModeFLEX:
			if !e.retireFlex(&budget) {
				return
			}
		case config.ModeO3RS:
			if !e.retireDouble(&budget) {
				return
			}
		default:
			if !e.retireSingle(&budget) {
				return
			}
		}
	}
}

// retireDouble retires one O3RS instruction: both executions must have
// completed, and their results are compared in program order.
func (e *Engine) retireDouble(budget *int) bool {
	if e.robM.empty() {
		return false
	}
	w := &e.w
	s := e.robM.front()
	if !w.completed(s, e.now) || w.flags[s]&fIssued2 == 0 || w.complete2At[s] > e.now {
		return false
	}
	if w.flags[s]&fWrongPath != 0 {
		panic(fmt.Sprintf("core: wrong-path instruction reached O3RS retirement (seq %d)", w.seq[s]))
	}
	if w.flags[s]&(fFaulty|fFaulty2) != 0 {
		e.recordDetection(s, -1)
		e.softException()
		return false
	}
	if !e.commitStore(s) {
		return false
	}
	e.finishRetire(s)
	e.robM.pop()
	w.freeHead(s)
	e.stats.Retired++
	*budget--
	return true
}

// retireSingle retires one SS1 instruction; it returns false when
// retirement must stop for this cycle.
func (e *Engine) retireSingle(budget *int) bool {
	if e.robM.empty() {
		return false
	}
	w := &e.w
	s := e.robM.front()
	if !w.completed(s, e.now) {
		return false
	}
	if w.flags[s]&fWrongPath != 0 {
		panic(fmt.Sprintf("core: wrong-path instruction reached retirement (seq %d)", w.seq[s]))
	}
	if !e.commitStore(s) {
		return false
	}
	if w.flags[s]&fFaulty != 0 {
		// SS1 has no redundancy: the corruption escapes silently.
		e.stats.SilentCorruptions++
	}
	e.finishRetire(s)
	e.robM.pop()
	w.freeHead(s)
	e.stats.Retired++
	*budget--
	return true
}

// retirePair retires one SS2 program instruction (both copies).
func (e *Engine) retirePair(budget *int) bool {
	if *budget < 2 {
		return false
	}
	if e.robM.empty() || e.robR.empty() {
		return false
	}
	w := &e.w
	m, r := e.robM.front(), e.robR.front()
	if w.seq[m] != w.seq[r] {
		panic(fmt.Sprintf("core: ROB heads desynchronized (M seq %d, R seq %d)", w.seq[m], w.seq[r]))
	}
	if w.flags[m]&fWrongPath != 0 {
		panic(fmt.Sprintf("core: wrong-path pair reached retirement (seq %d)", w.seq[m]))
	}
	if !w.completed(m, e.now) || !w.completed(r, e.now) {
		return false
	}
	// Compare the redundant results in program order.
	if (w.flags[m]|w.flags[r])&fFaulty != 0 {
		e.recordDetection(m, r)
		e.softException()
		return false
	}
	if !e.commitStore(m) {
		return false
	}
	e.finishRetire(m)
	e.robM.pop()
	e.robR.pop()
	// The pair occupies adjacent ring slots (the R copy is allocated
	// immediately after its M copy), so both frees land on the ring head.
	w.freeHead(m)
	w.freeHead(r)
	e.stats.Retired++
	*budget -= 2
	return true
}

// retireChecked retires one SHREC instruction after verification.
func (e *Engine) retireChecked(budget *int) bool {
	if e.robM.empty() {
		return false
	}
	w := &e.w
	s := e.robM.front()
	if !w.completed(s, e.now) || w.flags[s]&fCheckIssued == 0 || !w.checked(s, e.now) {
		return false
	}
	if w.flags[s]&fWrongPath != 0 {
		panic(fmt.Sprintf("core: wrong-path instruction reached SHREC retirement (seq %d)", w.seq[s]))
	}
	// The checker's recomputed result is compared against the result
	// buffer; a mismatch means the main execution was corrupted.
	if w.flags[s]&fFaulty != 0 {
		e.recordDetection(s, -1)
		e.softException()
		return false
	}
	if !e.commitStore(s) {
		return false
	}
	e.finishRetire(s)
	e.robM.pop()
	e.checkCount--
	w.freeHead(s)
	e.stats.Retired++
	*budget--
	return true
}

// commitStore writes a retiring store to the data cache. It returns false
// (stalling retirement) when no memory port or MSHR is available.
func (e *Engine) commitStore(s int32) bool {
	if !e.w.inst[s].IsStore() {
		return true
	}
	if _, ok := e.mem.Store(e.now, e.w.inst[s].Addr); !ok {
		e.stats.RetireStoreStalls++
		return false
	}
	return true
}

// finishRetire performs in-order bookkeeping common to all modes: LSQ
// release, the architectural-state signature fold, and the retire hook.
// Every retirement path runs through here, so it also marks the cycle as
// having made forward progress for the cycle-skipping loop.
func (e *Engine) finishRetire(s int32) {
	w := &e.w
	e.progressed = true
	// Fold this instruction's committed architectural effect into the
	// retirement signature (see Stats.ArchSig). One FNV-1a-style fold over
	// PC, opcode, destination, address, and the corruption flags: a faulty
	// result that escapes to retirement (SS1's silent corruptions) makes
	// the trial's signature diverge from the fault-free golden run's.
	// Only the run target's first sigLimit retirements fold: the final
	// cycle may overshoot the target by up to RetireWidth, and the
	// overshoot depends on retirement alignment rather than architecture.
	if e.stats.Retired < e.sigLimit {
		in := &w.inst[s]
		x := in.PC ^ in.Addr<<16 ^
			uint64(in.Class)<<56 ^ uint64(uint8(in.Dest))<<48
		if w.flags[s]&(fFaulty|fFaulty2) != 0 {
			x ^= 1 << 63
		}
		e.stats.ArchSig = (e.stats.ArchSig ^ x) * 1099511628211
	}
	if e.retireHook != nil {
		e.retireHook(w.inst[s])
	}
	if w.flags[s]&fInLSQ != 0 {
		// Completed loads may already have been swept from the LSQ; any
		// still-resident older loads are completed by in-order
		// retirement, so drop them together with this entry.
		for !e.lsq.empty() {
			h := e.lsq.pop()
			w.flags[h] &^= fInLSQ
			if h == s {
				break
			}
			if !w.inst[h].IsLoad() {
				panic("core: store left the LSQ out of order")
			}
		}
	}
	// Branch predictor and BTB training happen at fetch (see
	// predictBranch); retirement has no predictor bookkeeping left.
}

// recordDetection accounts one detected fault and its injection-to-
// detection latency. For SS2 pairs either copy may carry the fault; pass
// -1 for an absent copy.
func (e *Engine) recordDetection(a, b int32) {
	w := &e.w
	e.stats.FaultsDetected++
	at := int64(-1)
	if a >= 0 && w.flags[a]&(fFaulty|fFaulty2) != 0 {
		at = w.faultAt[a]
	}
	if b >= 0 && w.flags[b]&(fFaulty|fFaulty2) != 0 && (at < 0 || w.faultAt[b] < at) {
		at = w.faultAt[b]
	}
	if at >= 0 && e.now >= at {
		e.stats.FaultDetectLatencySum += uint64(e.now - at)
	}
	if e.faultHook != nil {
		// Both of an SS2 pair's copies carry the same sequence number, so
		// either flagged slot names the faulting program instruction.
		s := a
		if s < 0 || w.flags[s]&(fFaulty|fFaulty2) == 0 {
			s = b
		}
		if e.faultHook(w.seq[s], at, e.now) {
			e.stopRequest = true
		}
	}
	// Clear the flags so the imminent softException does not double-count
	// this fault as squashed.
	if a >= 0 {
		w.flags[a] &^= fFaulty | fFaulty2
	}
	if b >= 0 {
		w.flags[b] &^= fFaulty | fFaulty2
	}
}
