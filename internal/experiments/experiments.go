// Package experiments regenerates every table and figure of the paper's
// evaluation: Figure 2 (SS1 vs SS2), Table 2 (the sixteen factor
// combinations), Table 3 (2-k factorial analysis), Figure 3 (C-factor),
// Figure 4 (S-factor), Figure 5 (stagger sweep), Figure 7 (SHREC), and
// Figure 8 (X-scaling), plus two extensions (ablation, o3rs).
//
// Each experiment builds a typed report.Report — tables of labelled
// float64 rows — that downstream tools render as text, JSON, or CSV.
// The text rendering is byte-identical to the historical string API
// (pinned by the golden tests). Simulations are cached in a sim.Suite,
// so experiments that share configurations (most of them) reuse runs.
package experiments

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/config"
	"repro/internal/factorial"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Suite evaluates experiments over the full workload set.
type Suite struct {
	sims     *sim.Suite
	ints     []trace.Profile
	fps      []trace.Profile
	profiles []trace.Profile
}

// NewSuite builds an experiment suite with the given run options.
func NewSuite(opt sim.Options) *Suite {
	return NewSuiteWith(sim.NewSuite(opt))
}

// NewSuiteWith builds an experiment suite over an existing simulation
// suite, sharing its result cache (and any attached persistent store)
// with other users — the shrecd server serves /simulate and
// /experiments/{name} from one cache this way.
func NewSuiteWith(sims *sim.Suite) *Suite {
	return &Suite{
		sims:     sims,
		ints:     workload.Integer(),
		fps:      workload.FloatingPoint(),
		profiles: workload.All(),
	}
}

// Sims exposes the underlying simulation cache.
func (s *Suite) Sims() *sim.Suite { return s.sims }

// Info describes one runnable experiment.
type Info struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// Doc is a short prose description of what the experiment measures
	// and what result to expect — the source of the generated
	// docs/EXPERIMENTS.md catalog, so it can never drift from dispatch.
	Doc string `json:"doc"`
}

// registry is the single source of truth for experiment names, titles,
// and docs, in paper order: Names, Catalog, Run, the repro facade docs,
// the shrecd catalog endpoint, the cmd/experiments flag help, and the
// generated docs/EXPERIMENTS.md all derive from it.
var registry = []Info{
	{"fig2", "Figure 2: IPC of SS2 vs SS1",
		"Per-benchmark IPC of the plain symmetric redundant machine (SS2, lockstep " +
			"duplication) against the SS1 baseline, over all 25 workloads with the paper's " +
			"harmonic-mean aggregates. Establishes the headline cost of naive redundancy: " +
			"roughly a one-third IPC loss, worst on high-IPC benchmarks."},
	{"table2", "Table 2: % IPC increase of the sixteen factor combinations",
		"The full 2^4 factorial sweep of the X (issue/FU bandwidth), S (elastic dispatch " +
			"stagger), C (doubled ISQ/ROB), and B (doubled decode/retire) factors on SS2, " +
			"reported as % IPC gain over plain SS2 for integer and floating-point classes. " +
			"Shows which resources buy back redundant-execution loss."},
	{"table3", "Table 3: significant 2-k factorial effects on CPI",
		"A 2^k factorial analysis of mean CPI over the sixteen SS2 configurations: main " +
			"effects and interactions ranked by significance. Reproduces the paper's " +
			"finding that X dominates, with S and C the useful cheap factors."},
	{"fig3", "Figure 3: the C factor (doubled ISQ/ROB, ~O3RS)",
		"Isolates the C factor: SS2 with doubled window structures, the approximation of " +
			"Mendelson & Suri's O3RS. Window capacity alone recovers little at fixed issue " +
			"bandwidth."},
	{"fig4", "Figure 4: the S factor (256-instruction elastic stagger, ~SRT)",
		"Isolates the S factor: elastic dispatch stagger between the two redundant " +
			"threads, the mechanism SRT-style designs rely on. Stagger converts redundant " +
			"fetch into slack that hides structural conflicts."},
	{"fig5", "Figure 5: IPC of SS2+S+C vs maximum stagger",
		"Sweeps the maximum dispatch stagger of SS2+S+C from 0 to 512 instructions, " +
			"locating the knee where additional slack stops paying."},
	{"fig7", "Figure 7: SHREC vs SS2, SS2+SCB, and SS1",
		"The paper's headline result: SHREC's asymmetric in-order checker, sharing issue " +
			"bandwidth and functional units with the out-of-order pipeline, tracks SS1 " +
			"within a few percent — matching SS2+SCB at none of its hardware cost."},
	{"fig8", "Figure 8: IPC vs issue/FU scaling (0.5X-2X)",
		"Scales issue width, functional units, and memory ports from 0.5X to 2X for SS1, " +
			"SS2, and SHREC, showing how each design's penalty responds to raw bandwidth."},
	{"ablation", "Ablation (extension): shared vs dedicated checker units",
		"Extension beyond the paper: gives the SHREC checker dedicated functional units " +
			"(the DIVA design point) and compares against resource sharing, isolating the " +
			"contention cost that SHREC's scheduling hides."},
	{"o3rs", "O3RS validation (extension): real mechanism vs SS2+CB approximation",
		"Extension beyond the paper: implements O3RS's actual double-execution-from-" +
			"shared-entries mechanism and validates the paper's claim that SS2+C+B " +
			"approximates it."},
}

// runners maps each registry entry to its implementation. Populated in
// init (not in the declaration) because the methods reference the
// registry through newReport, which would otherwise be an
// initialization cycle; init also asserts the two stay in sync.
var runners map[string]func(*Suite, context.Context) (*report.Report, error)

func init() {
	runners = map[string]func(*Suite, context.Context) (*report.Report, error){
		"fig2":     (*Suite).Figure2,
		"table2":   (*Suite).Table2,
		"table3":   (*Suite).Table3,
		"fig3":     (*Suite).Figure3,
		"fig4":     (*Suite).Figure4,
		"fig5":     (*Suite).Figure5,
		"fig7":     (*Suite).Figure7,
		"fig8":     (*Suite).Figure8,
		"ablation": (*Suite).Ablation,
		"o3rs":     (*Suite).O3RS,
	}
	if len(runners) != len(registry) {
		panic("experiments: registry and runners disagree")
	}
	for _, e := range registry {
		if runners[e.Name] == nil {
			panic("experiments: no runner for " + e.Name)
		}
	}
}

// Names lists the runnable experiments in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// Catalog lists every experiment with its title, in paper order.
func Catalog() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Known reports whether name is a runnable experiment.
func Known(name string) bool {
	_, ok := runners[name]
	return ok
}

// Run dispatches one experiment by name. The context cancels or
// deadline-bounds every simulation the experiment triggers.
func (s *Suite) Run(ctx context.Context, name string) (*report.Report, error) {
	if run, ok := runners[name]; ok {
		return run(s, ctx)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// newReport starts a report for the named experiment, stamped with the
// registry title and the suite's run lengths.
func (s *Suite) newReport(name string) *report.Report {
	title := ""
	for _, e := range registry {
		if e.Name == name {
			title = e.Title
		}
	}
	r := report.New(name, title)
	opt := s.sims.Options()
	r.SetMeta("warmup_instrs", strconv.FormatUint(opt.WarmupInstrs, 10))
	r.SetMeta("measure_instrs", strconv.FormatUint(opt.MeasureInstrs, 10))
	return r
}

// addPerBenchmarkTable appends one of the paper's per-benchmark IPC bar
// charts (Figures 2, 3, 4, 7) as a table: one row per benchmark plus the
// three harmonic-mean aggregate rows, one column per machine.
func (s *Suite) addPerBenchmarkTable(ctx context.Context, rep *report.Report, title string, machines []config.Machine, profiles []trace.Profile) error {
	if err := s.sims.Batch(ctx, machines, profiles); err != nil {
		return err
	}
	tb := rep.AddTable(title, append([]string{"benchmark"}, machineNames(machines)...)...)
	for _, p := range profiles {
		row := report.Row{
			Label:  p.Name,
			Class:  p.Class.String(),
			High:   p.HighIPC,
			Values: make([]float64, len(machines)),
		}
		for i, m := range machines {
			ipc, err := s.sims.IPC(ctx, m, p)
			if err != nil {
				return err
			}
			row.Values[i] = ipc
		}
		tb.Add(row)
	}
	tb.AddRule()
	for _, agg := range []string{"Average", "Average (Low only)", "Average (High only)"} {
		row := report.Row{Label: agg, Aggregate: true, Values: make([]float64, len(machines))}
		for i, m := range machines {
			av, err := s.sims.Averages(ctx, m, profiles)
			if err != nil {
				return err
			}
			switch agg {
			case "Average":
				row.Values[i] = av.All
			case "Average (Low only)":
				row.Values[i] = av.Low
			default:
				row.Values[i] = av.High
			}
		}
		tb.Add(row)
	}
	return nil
}

func machineNames(ms []config.Machine) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

// Figure2 reproduces the SS1-versus-SS2 IPC comparison.
func (s *Suite) Figure2(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("fig2")
	machines := []config.Machine{config.SS2(config.Factors{}), config.SS1()}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 2(a): Integer IPC, SS2 vs SS1", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 2(b): Floating-point IPC, SS2 vs SS1", machines, s.fps); err != nil {
		return nil, err
	}
	if err := s.addPenaltyNotes(ctx, rep, config.SS1(), config.SS2(config.Factors{})); err != nil {
		return nil, err
	}
	return rep, nil
}

// addPenaltyNotes appends the headline "SS2 loses N% vs SS1" lines.
func (s *Suite) addPenaltyNotes(ctx context.Context, rep *report.Report, base, m config.Machine) error {
	for _, cls := range []struct {
		name     string
		profiles []trace.Profile
	}{{"integer", s.ints}, {"floating-point", s.fps}} {
		b1, err := s.sims.Averages(ctx, base, cls.profiles)
		if err != nil {
			return err
		}
		m1, err := s.sims.Averages(ctx, m, cls.profiles)
		if err != nil {
			return err
		}
		rep.AddNote("%s penalty vs %s on %s: %.0f%%",
			m.Name, base.Name, cls.name, stats.PctPenalty(b1.All, m1.All))
	}
	return nil
}

// Table2 reproduces the sixteen-configuration factor study: percentage IPC
// increase relative to plain SS2 for integer and floating-point benchmark
// classes, overall and split by high/low IPC.
func (s *Suite) Table2(ctx context.Context) (*report.Report, error) {
	combos := config.AllFactorCombinations()
	machines := make([]config.Machine, len(combos))
	for i, f := range combos {
		machines[i] = config.SS2(f)
	}
	if err := s.sims.Batch(ctx, machines, s.profiles); err != nil {
		return nil, err
	}
	base := machines[0] // plain SS2
	baseInt, err := s.sims.Averages(ctx, base, s.ints)
	if err != nil {
		return nil, err
	}
	baseFP, err := s.sims.Averages(ctx, base, s.fps)
	if err != nil {
		return nil, err
	}

	rep := s.newReport("table2")
	tb := rep.AddTable("Table 2: % IPC increase relative to SS2",
		"X S C B", "Int All", "Int High", "Int Low", "FP All", "FP High", "FP Low")
	tb.Verb = "%.0f"
	for i, m := range machines {
		avInt, err := s.sims.Averages(ctx, m, s.ints)
		if err != nil {
			return nil, err
		}
		avFP, err := s.sims.Averages(ctx, m, s.fps)
		if err != nil {
			return nil, err
		}
		tb.AddRow(combos[i].String(),
			stats.PctChange(baseInt.All, avInt.All),
			stats.PctChange(baseInt.High, avInt.High),
			stats.PctChange(baseInt.Low, avInt.Low),
			stats.PctChange(baseFP.All, avFP.All),
			stats.PctChange(baseFP.High, avFP.High),
			stats.PctChange(baseFP.Low, avFP.Low),
		)
	}
	return rep, nil
}

// classProfiles returns the paper's four benchmark classes.
func (s *Suite) classProfiles() []struct {
	name     string
	profiles []trace.Profile
} {
	split := func(ps []trace.Profile, high bool) []trace.Profile {
		var out []trace.Profile
		for _, p := range ps {
			if p.HighIPC == high {
				out = append(out, p)
			}
		}
		return out
	}
	return []struct {
		name     string
		profiles []trace.Profile
	}{
		{"Integer: High", split(s.ints, true)},
		{"Integer: Low", split(s.ints, false)},
		{"Floating-point: High", split(s.fps, true)},
		{"Floating-point: Low", split(s.fps, false)},
	}
}

// Table3 reproduces the 2-k factorial analysis: the main factors and
// interactions whose CPI effect exceeds 3%, per benchmark class.
func (s *Suite) Table3(ctx context.Context) (*report.Report, error) {
	combos := config.AllFactorCombinations()
	machines := make([]config.Machine, len(combos))
	for i, f := range combos {
		machines[i] = config.SS2(f)
	}
	if err := s.sims.Batch(ctx, machines, s.profiles); err != nil {
		return nil, err
	}

	factors := []string{"X", "S", "C", "B"}
	rep := s.newReport("table3")
	tb := rep.AddTable("Table 3: significant factorial effects on CPI (>3% decrease shown)",
		"class", "factor", "effect %")
	tb.Verb = "%.1f"
	tb.ClassColumn = true
	for _, cls := range s.classProfiles() {
		// Build the 16 responses indexed by factor bitmask.
		resp := make([]float64, 16)
		for i, f := range combos {
			var mask uint
			if f.X {
				mask |= 1
			}
			if f.S {
				mask |= 2
			}
			if f.C {
				mask |= 4
			}
			if f.B {
				mask |= 8
			}
			cpi, err := s.sims.MeanCPI(ctx, machines[i], cls.profiles)
			if err != nil {
				return nil, err
			}
			resp[mask] = cpi
		}
		an, err := factorial.Analyze(factors, resp)
		if err != nil {
			return nil, err
		}
		for _, eff := range an.Significant(3) {
			tb.Add(report.Row{
				Class:  cls.name,
				Label:  eff.Name,
				Values: []float64{eff.PctDecrease},
			})
		}
		tb.AddRule()
	}
	return rep, nil
}

// Figure3 reproduces the C-factor study (SS2 with doubled ISQ/ROB ~ O3RS).
func (s *Suite) Figure3(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("fig3")
	machines := []config.Machine{
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{C: true}),
		config.SS1(),
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 3(a): Integer IPC, C-factor", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 3(b): Floating-point IPC, C-factor", machines, s.fps); err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure4 reproduces the S-factor study (SS2 with a 256-instruction
// elastic stagger ~ SRT).
func (s *Suite) Figure4(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("fig4")
	machines := []config.Machine{
		config.SS2(config.Factors{}),
		config.SS2(config.Factors{S: true}),
		config.SS1(),
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 4(a): Integer IPC, S-factor", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 4(b): Floating-point IPC, S-factor", machines, s.fps); err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure5 reproduces the stagger-degree sweep on SS2+S+C: maximum staggers
// of 0, 256, 1K, and 1M instructions over the four benchmark classes.
func (s *Suite) Figure5(ctx context.Context) (*report.Report, error) {
	staggers := []int{0, 256, 1024, 1 << 20}
	labels := []string{"0 Stagger", "256 Stagger", "1K Stagger", "1M Stagger"}
	machines := make([]config.Machine, len(staggers))
	for i, n := range staggers {
		machines[i] = config.SS2(config.Factors{S: true, C: true}).WithStagger(n)
	}
	if err := s.sims.Batch(ctx, machines, s.profiles); err != nil {
		return nil, err
	}
	rep := s.newReport("fig5")
	tb := rep.AddTable("Figure 5: IPC of SS2+S+C vs maximum stagger",
		append([]string{"class"}, labels...)...)
	for _, cls := range []struct {
		name     string
		profiles []trace.Profile
		high     bool
	}{
		{"Integer Low", s.ints, false},
		{"Integer High", s.ints, true},
		{"Floating-point Low", s.fps, false},
		{"Floating-point High", s.fps, true},
	} {
		row := make([]float64, len(machines))
		for i, m := range machines {
			av, err := s.sims.Averages(ctx, m, cls.profiles)
			if err != nil {
				return nil, err
			}
			if cls.high {
				row[i] = av.High
			} else {
				row[i] = av.Low
			}
		}
		tb.AddRow(cls.name, row...)
	}
	return rep, nil
}

// Figure7 reproduces the headline SHREC comparison: SS2, SHREC, the
// idealized SS2+S+C+B, and SS1.
func (s *Suite) Figure7(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("fig7")
	machines := []config.Machine{
		config.SS2(config.Factors{}),
		config.SHREC(),
		config.SS2(config.Factors{S: true, C: true, B: true}),
		config.SS1(),
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 7(a): Integer IPC, SHREC", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Figure 7(b): Floating-point IPC, SHREC", machines, s.fps); err != nil {
		return nil, err
	}
	if err := s.addPenaltyNotes(ctx, rep, config.SS1(), config.SHREC()); err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure8 reproduces the X-scaling sweep: IPC of SHREC and SS2 with 0.5X
// to 2X issue bandwidth and functional units, per benchmark class.
func (s *Suite) Figure8(ctx context.Context) (*report.Report, error) {
	scales := []float64{0.5, 1, 1.5, 2}
	type series struct {
		label string
		base  config.Machine
		high  bool
		fp    bool
	}
	all := []series{
		{"SHREC - Int High", config.SHREC(), true, false},
		{"SS2 - Int High", config.SS2(config.Factors{}), true, false},
		{"SHREC - Int Low", config.SHREC(), false, false},
		{"SS2 - Int Low", config.SS2(config.Factors{}), false, false},
		{"SHREC - FP High", config.SHREC(), true, true},
		{"SS2 - FP High", config.SS2(config.Factors{}), true, true},
		{"SHREC - FP Low", config.SHREC(), false, true},
		{"SS2 - FP Low", config.SS2(config.Factors{}), false, true},
	}
	var machines []config.Machine
	for _, sc := range scales {
		machines = append(machines,
			config.SHREC().WithXScale(sc), config.SS2(config.Factors{}).WithXScale(sc))
	}
	if err := s.sims.Batch(ctx, machines, s.profiles); err != nil {
		return nil, err
	}
	rep := s.newReport("fig8")
	tb := rep.AddTable("Figure 8: IPC vs issue/FU scaling (0.5X-2X)",
		"series", "0.5X", "1X", "1.5X", "2X")
	for _, sr := range all {
		row := make([]float64, len(scales))
		for i, sc := range scales {
			m := sr.base.WithXScale(sc)
			profiles := s.ints
			if sr.fp {
				profiles = s.fps
			}
			av, err := s.sims.Averages(ctx, m, profiles)
			if err != nil {
				return nil, err
			}
			if sr.high {
				row[i] = av.High
			} else {
				row[i] = av.Low
			}
		}
		tb.AddRow(sr.label, row...)
	}
	return rep, nil
}

// ss1Machine, ss2Machine, and shrecMachine are tiny helpers for tests.
func ss1Machine() config.Machine   { return config.SS1() }
func ss2Machine() config.Machine   { return config.SS2(config.Factors{}) }
func shrecMachine() config.Machine { return config.SHREC() }

// Ablation is an extension beyond the paper's figures: it compares SS1,
// SHREC (shared functional units), DIVA (dedicated checker pipeline,
// Section 4.1), and SS2+X+C (which the paper's Table 2 notes approximates
// both SS1 and DIVA). It quantifies exactly what SHREC's unit sharing
// costs and confirms the paper's claim that DIVA tracks SS1.
func (s *Suite) Ablation(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("ablation")
	machines := []config.Machine{
		config.SS1(),
		config.DIVA(),
		config.SHREC(),
		config.SS2(config.Factors{X: true, C: true}),
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Ablation (extension): shared vs dedicated checker units, integer", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "Ablation (extension): shared vs dedicated checker units, floating-point", machines, s.fps); err != nil {
		return nil, err
	}
	return rep, nil
}

// O3RS is an extension beyond the paper's figures: it runs the real
// Mendelson & Suri double-execution mechanism next to the SS2+C+B
// configuration the paper uses to approximate it (Table 2's note), plus
// the SS2 and SS1 anchors. If the approximation is sound, the O3RS and
// SS2+CB columns should track each other.
func (s *Suite) O3RS(ctx context.Context) (*report.Report, error) {
	rep := s.newReport("o3rs")
	machines := []config.Machine{
		config.SS2(config.Factors{}),
		config.O3RS(),
		config.SS2(config.Factors{C: true, B: true}),
		config.SS1(),
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "O3RS validation (extension): real mechanism vs SS2+CB approximation, integer", machines, s.ints); err != nil {
		return nil, err
	}
	if err := s.addPerBenchmarkTable(ctx, rep, "O3RS validation (extension): real mechanism vs SS2+CB approximation, floating-point", machines, s.fps); err != nil {
		return nil, err
	}
	return rep, nil
}
