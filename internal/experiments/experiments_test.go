package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tinySuite uses very short runs: these tests validate harness plumbing
// and output structure, not the paper's numbers (see docs/EXPERIMENTS.md
// and the full-scale cmd/experiments run for those). In -short mode (CI)
// the runs shrink further: structure assertions hold at any scale.
func tinySuite() *Suite {
	opt := sim.Options{WarmupInstrs: 2000, MeasureInstrs: 5000, Parallelism: 16}
	if testing.Short() {
		opt.WarmupInstrs = 500
		opt.MeasureInstrs = 1500
	}
	return NewSuite(opt)
}

func TestNamesComplete(t *testing.T) {
	want := []string{"fig2", "table2", "table3", "fig3", "fig4", "fig5", "fig7", "fig8", "ablation", "o3rs"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestCatalogDocs pins that every registry entry carries the prose the
// generated docs/EXPERIMENTS.md catalog is built from.
func TestCatalogDocs(t *testing.T) {
	for _, e := range Catalog() {
		if e.Doc == "" {
			t.Errorf("%s: empty Doc", e.Name)
		}
		if e.Title == "" {
			t.Errorf("%s: empty Title", e.Name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := tinySuite().Run(context.Background(), "fig42"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFigure2Structure(t *testing.T) {
	rep, err := tinySuite().Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"Figure 2(a)", "Figure 2(b)", "SS2", "SS1",
		"gap", "vortex-one [high]", "equake", "apsi [high]",
		"Average", "Average (Low only)", "Average (High only)",
		"penalty vs SS1 on integer", "penalty vs SS1 on floating-point",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
	if n := strings.Count(out, "gap"); n != 1 {
		t.Errorf("gap appears %d times in fig2, want 1", n)
	}
}

func TestTable2Structure(t *testing.T) {
	rep, err := tinySuite().Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "X S C B") {
		t.Fatal("missing header")
	}
	// Sixteen data rows: one per factor combination.
	if n := strings.Count(out, "\n"); n < 18 {
		t.Fatalf("table2 has %d lines", n)
	}
	for _, row := range []string{"- - - -", "X S C B", "- S C B", "X - C -"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing row %q", row)
		}
	}
	// The baseline row must be all zeros.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "- - - -") {
			fields := strings.Fields(line)
			for _, f := range fields[4:] {
				if f != "0" && f != "-0" {
					t.Fatalf("baseline row not zero: %q", line)
				}
			}
		}
	}
}

func TestTable3Structure(t *testing.T) {
	rep, err := tinySuite().Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "factor") {
		t.Fatalf("table3 header malformed:\n%s", out)
	}
	if testing.Short() {
		// At short-mode run lengths some classes legitimately have no
		// >3% effects; the per-class rows are asserted at full scale.
		return
	}
	for _, want := range []string{
		"Integer: High", "Integer: Low",
		"Floating-point: High", "Floating-point: Low",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing class %q", want)
		}
	}
}

func TestFigure5Structure(t *testing.T) {
	rep, err := tinySuite().Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"0 Stagger", "256 Stagger", "1K Stagger", "1M Stagger",
		"Integer Low", "Floating-point High"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestFigure7Structure(t *testing.T) {
	rep, err := tinySuite().Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"SHREC", "SS2+SCB", "Figure 7(a)", "Figure 7(b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFigure8Structure(t *testing.T) {
	rep, err := tinySuite().Figure8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"0.5X", "2X", "SHREC - FP High", "SS2 - Int Low"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q", want)
		}
	}
}

func TestSharedCacheAcrossExperiments(t *testing.T) {
	// Figures 3 and 4 share SS1 and SS2 runs with Figure 2: running all
	// three must not blow up and should reuse the cache (observable as a
	// much smaller second cost, but here we just assert correctness).
	s := tinySuite()
	if _, err := s.Figure2(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Figure3(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Figure4(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Even at tiny scale, the first-order qualitative results must hold:
// SS2 slower than SS1, SHREC between them on average.
func TestQualitativeOrderingAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("qualitative ordering needs run lengths beyond short mode")
	}
	s := NewSuite(sim.Options{WarmupInstrs: 10000, MeasureInstrs: 30000, Parallelism: 16})
	if _, err := s.Figure7(context.Background()); err != nil {
		t.Fatal(err)
	}
	ss1, err := s.sims.Averages(context.Background(), ss1Machine(), s.profiles)
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := s.sims.Averages(context.Background(), ss2Machine(), s.profiles)
	if err != nil {
		t.Fatal(err)
	}
	shrec, err := s.sims.Averages(context.Background(), shrecMachine(), s.profiles)
	if err != nil {
		t.Fatal(err)
	}
	if !(ss2.All < shrec.All && shrec.All <= ss1.All*1.02) {
		t.Fatalf("ordering violated: SS2 %.3f, SHREC %.3f, SS1 %.3f",
			ss2.All, shrec.All, ss1.All)
	}
}
