package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// TestGoldenTextAtQuickOptions pins the Text rendering of the report API
// to the output of the pre-report string API: the testdata files were
// captured from the seed implementation (stats.NewTable string
// concatenation) under sim.QuickOptions, and the typed reports must
// reproduce them byte-for-byte. fig2 covers the per-benchmark layout
// with aggregate rows, "[high]" labels, and penalty notes; table3 covers
// the class-grouped factorial layout with rules between groups.
//
// The two experiments share one suite (table3's plain-SS2 column reuses
// fig2's runs). Roughly 425 QuickOptions simulations — skipped in
// -short mode, exercised by the full `go test ./...` tier.
func TestGoldenTextAtQuickOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickOptions golden render is minutes of simulation; full tier only")
	}
	s := NewSuite(sim.QuickOptions())
	for _, name := range []string{"fig2", "table3"} {
		rep, err := s.Run(context.Background(), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", name+".quick.golden"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := rep.String(); got != string(want) {
			t.Errorf("%s text rendering diverged from the seed output\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}
}
