package explore

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

// accSpace is the acceptance space: 8 bases x 3 X-scales x 2 MSHR sizes
// = 48 points spanning every execution mode, issue/FU bandwidth, and
// memory-system pressure.
func accSpace() Space {
	return Space{
		Bases:   []string{"ss1", "ss2", "ss2+s", "ss2+c", "ss2+sc", "shrec", "diva", "o3rs"},
		XScales: []float64{0.5, 1, 1.5},
		MSHRs:   []int{16, 32},
	}
}

// accSpec is the pinned, seeded acceptance spec over accSpace.
func accSpec() Spec {
	return Spec{
		Space:         accSpace(),
		Benchmarks:    []string{"crafty"},
		Seed:          0xC0FFEE,
		WarmupInstrs:  2_000,
		MeasureInstrs: 8_000,
	}
}

// frontierBySpec indexes a result's frontier evaluations by spec string.
func frontierBySpec(r *Result) map[string]Eval {
	out := make(map[string]Eval, len(r.Frontier))
	for _, ev := range r.FrontierEvals() {
		out[ev.Spec] = ev
	}
	return out
}

// TestHalvingMatchesGridFrontier is the acceptance pin for the halving
// strategy over a >=48-point space, fully deterministic (simulations are
// pure functions of (machine, workload, options) and the halving
// tie-break derives from the spec seed):
//
//  1. halving reproduces exactly the Pareto frontier that an exhaustive
//     grid over its full-fidelity survivors computes — the survivor
//     specs are fed back as grid bases through the canonical spec
//     grammar, so this also round-trips every survivor through
//     config.ByName;
//  2. the screen can never lose the space's best-IPC configuration: the
//     exhaustive grid's IPC-maximal frontier point survives into the
//     halving frontier;
//  3. a second halving run reproduces the identical evaluation set
//     (seeded determinism).
func TestHalvingMatchesGridFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("~100 short simulations; full tier only")
	}
	if got := accSpace().Size(); got < 48 {
		t.Fatalf("acceptance space has %d points, want >= 48", got)
	}

	gridSpec := accSpec()
	gridSpec.Strategy = StrategyGrid
	grid, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), gridSpec, nil)
	if err != nil {
		t.Fatal(err)
	}

	halvSpec := accSpec()
	halvSpec.Strategy = StrategyHalving
	halv, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), halvSpec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Halving screened everything and fully evaluated at most half.
	if len(halv.Screen) != grid.Points {
		t.Fatalf("halving screened %d of %d points", len(halv.Screen), grid.Points)
	}
	if len(halv.Evals) > (grid.Points+1)/2 {
		t.Fatalf("halving ran %d full evaluations over a %d-point space", len(halv.Evals), grid.Points)
	}

	// (1) An exhaustive grid over exactly the survivor set — named by
	// their canonical specs — must reproduce halving's frontier, spec
	// for spec and score for score.
	survivors := make([]string, len(halv.Evals))
	for i, ev := range halv.Evals {
		survivors[i] = ev.Spec
	}
	subSpec := accSpec()
	subSpec.Space = Space{Bases: survivors}
	subSpec.Strategy = StrategyGrid
	sub, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), subSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	hf, sf := frontierBySpec(halv), frontierBySpec(sub)
	if len(hf) != len(sf) {
		t.Fatalf("halving frontier (%d) != grid-over-survivors frontier (%d)", len(hf), len(sf))
	}
	for spec, h := range hf {
		s, ok := sf[spec]
		if !ok {
			t.Fatalf("halving frontier point %q missing from the survivors grid", spec)
		}
		if h.IPC != s.IPC || h.Cost != s.Cost || h.Slowdown != s.Slowdown {
			t.Fatalf("frontier point %q scored differently: halving %+v vs grid %+v", spec, h, s)
		}
	}

	// (2) The space's IPC-maximal point survives the screen and lands on
	// the halving frontier.
	best := grid.Evals[0]
	for _, ev := range grid.Evals {
		if ev.IPC > best.IPC {
			best = ev
		}
	}
	if _, ok := hf[best.Spec]; !ok {
		t.Fatalf("best-IPC point %q (IPC %.3f) lost by the screen; halving frontier %v",
			best.Spec, best.IPC, survivors)
	}

	// (3) Seeded determinism: a rerun reproduces the evaluation set.
	again, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), halvSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Evals) != len(halv.Evals) {
		t.Fatalf("halving not deterministic: %d vs %d full evaluations", len(again.Evals), len(halv.Evals))
	}
	for i, ev := range again.Evals {
		if ev != halv.Evals[i] {
			t.Fatalf("halving eval %d drifted: %+v vs %+v", i, ev, halv.Evals[i])
		}
	}
}

// TestStrategiesShareEvaluations pins the cross-strategy resume design:
// the exploration digest excludes the strategy and budget, so a grid run
// after a halving run of the same spec restores every survivor's
// full-fidelity evaluation from the store instead of re-simulating it.
func TestStrategiesShareEvaluations(t *testing.T) {
	if testing.Short() {
		t.Skip("~100 short simulations; full tier only")
	}
	path := filepath.Join(t.TempDir(), "explore.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	halvSpec := accSpec()
	halvSpec.Strategy = StrategyHalving
	halv, err := New(sim.NewSuite(quickOpts())).WithStore(st).Run(context.Background(), halvSpec, nil)
	if err != nil {
		t.Fatal(err)
	}

	gridSpec := accSpec()
	gridSpec.Strategy = StrategyGrid
	grid, err := New(sim.NewSuite(quickOpts())).WithStore(st).Run(context.Background(), gridSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Resumed != len(halv.Evals) {
		t.Fatalf("grid resumed %d evaluations, want every one of halving's %d survivors",
			grid.Resumed, len(halv.Evals))
	}
	if grid.Resumed+grid.Executed != grid.Points {
		t.Fatalf("resumed %d + executed %d != %d", grid.Resumed, grid.Executed, grid.Points)
	}
	// And the shared evaluations are byte-identical to fresh ones.
	fresh, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), gridSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range grid.Evals {
		if ev != fresh.Evals[i] {
			t.Fatalf("restored eval %d drifted from a fresh run: %+v vs %+v", i, ev, fresh.Evals[i])
		}
	}
}
