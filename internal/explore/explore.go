// Package explore implements design-space exploration over the
// simulation engine: instead of replaying the paper's handful of preset
// machines, an exploration searches an enumerable parameter space of
// machine configurations (Space) for the resource-sharing points that
// are Pareto-efficient — maximum IPC (and, with fault injection, maximum
// detection coverage) at minimum hardware cost.
//
// An exploration is described by a Spec: the space, the benchmarks to
// score on, run lengths, a master seed, a search strategy, and a budget
// of full-fidelity evaluations. Two strategies share one interface:
//
//   - grid evaluates every point of the space at full fidelity (and
//     refuses spaces larger than the budget);
//   - halving runs a cheap screening pass first — every point at run
//     lengths divided by ScreenDiv — ranks the screened points by
//     Pareto dominance (stats.ParetoRanks, with a seeded deterministic
//     tie-break), and re-evaluates only the surviving half (capped by
//     the budget) at full fidelity.
//
// Every evaluation scores the point's harmonic-mean IPC over the
// benchmarks, its slowdown against the plain SS2 redundant baseline at
// the same fidelity, a deterministic hardware-cost proxy (Cost), and —
// when the point carries a fault rate — Monte Carlo detection coverage
// through internal/campaign. Evaluations flow through the shared
// sim.Suite, so concurrent and repeated explorations reuse runs, and
// each finished evaluation persists through internal/store keyed by the
// exploration's content digest plus point index: a killed exploration
// resumes without re-evaluating finished points.
//
// The result is the Pareto frontier (stats.ParetoFront) over the
// full-fidelity evaluations, rendered as a typed report.Report.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Spec describes one exploration. Zero values of the optional fields are
// filled by normalization (see the constants below and Normalize).
type Spec struct {
	// Space is the parameter space to search.
	Space Space `json:"space"`
	// Strategy selects the search: "grid" (default) or "halving".
	Strategy string `json:"strategy,omitempty"`
	// Benchmarks are the workloads each point is scored on (harmonic
	// mean IPC; default DefaultBenchmark).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Seed drives the halving tie-break and the per-point campaign
	// seeds, so one seed reproduces the whole exploration.
	Seed uint64 `json:"seed,omitempty"`
	// WarmupInstrs and MeasureInstrs are the full-fidelity run lengths
	// (0 = the suite's defaults).
	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs uint64 `json:"measure_instrs,omitempty"`
	// ScreenDiv divides the run lengths for the halving screen
	// (default DefaultScreenDiv).
	ScreenDiv int `json:"screen_div,omitempty"`
	// Budget caps full-fidelity point evaluations. Grid requires the
	// whole space to fit (its default is the space size); halving keeps
	// at most Budget survivors (its default is half the space, rounded
	// up).
	Budget int `json:"budget,omitempty"`
	// Trials is the campaign trial count behind each faulted point's
	// coverage estimate (default DefaultTrials).
	Trials int `json:"trials,omitempty"`
}

// Exploration defaults, applied by normalization.
const (
	// DefaultBenchmark scores points when the spec names no workloads.
	DefaultBenchmark = "crafty"
	// DefaultScreenDiv is the fidelity divisor of the halving screen.
	DefaultScreenDiv = 8
	// DefaultTrials is the per-point campaign size for faulted points.
	DefaultTrials = 24
	// minScreenInstrs floors the screened run lengths so a screen is
	// still a simulation, not noise.
	minScreenInstrs = 1000
)

// The search strategies.
const (
	StrategyGrid    = "grid"
	StrategyHalving = "halving"
)

// Strategies lists the selectable search strategies.
func Strategies() []string { return []string{StrategyGrid, StrategyHalving} }

// Eval is one point's scored evaluation — the unit the store persists
// and the report tabulates. All fields are finite (coverage is guarded
// by Covered rather than NaN) so the record always serializes.
type Eval struct {
	// Index is the point's position in the space enumeration.
	Index int `json:"index"`
	// Spec is the point's canonical specification string.
	Spec string `json:"spec"`
	// Rate is the point's fault-injection rate (0 = performance only).
	Rate float64 `json:"rate,omitempty"`
	// Screen marks a screening-fidelity evaluation.
	Screen bool `json:"screen,omitempty"`
	// IPC is the harmonic-mean fault-free IPC over the benchmarks.
	IPC float64 `json:"ipc"`
	// Slowdown is the SS2 baseline's IPC divided by this point's
	// (>1 = slower than plain SS2) at the same fidelity.
	Slowdown float64 `json:"slowdown"`
	// Cost is the deterministic hardware-cost proxy (Cost).
	Cost float64 `json:"cost"`
	// Covered reports that the coverage fields are meaningful (the
	// point has a fault rate and its campaigns ran).
	Covered bool `json:"covered,omitempty"`
	// Coverage is the pooled campaign coverage estimate with its Wilson
	// 95% bounds, and SDC/Hangs the pooled escape counts.
	Coverage   float64 `json:"coverage,omitempty"`
	CoverageLo float64 `json:"coverage_lo,omitempty"`
	CoverageHi float64 `json:"coverage_hi,omitempty"`
	SDC        int     `json:"sdc,omitempty"`
	Hangs      int     `json:"hangs,omitempty"`
	// Availed reports that the availability fields are meaningful (the
	// point checkpoints under fault injection, so its campaigns carried a
	// recovery policy).
	Availed bool `json:"availed,omitempty"`
	// Avail is the point's steady-state availability estimate with its
	// Wilson-propagated 95% bounds, pooled over the benchmarks' campaign
	// summaries at campaign.DefaultRepairCycles; MTTFCycles is the
	// matching mean cycles to fatal failure (0 = none observed).
	Avail      float64 `json:"avail,omitempty"`
	AvailLo    float64 `json:"avail_lo,omitempty"`
	AvailHi    float64 `json:"avail_hi,omitempty"`
	MTTFCycles float64 `json:"mttf_cycles,omitempty"`
}

// Progress is a running exploration snapshot, delivered serially to the
// progress callback after every finished evaluation.
type Progress struct {
	// Phase is the evaluation pass currently running: "screen" or
	// "full".
	Phase string `json:"phase"`
	// Done and Total count finished and planned evaluations within the
	// phase (halving's full-phase Total is known only after the screen).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Resumed counts evaluations restored from the store, both phases.
	Resumed int `json:"resumed"`
}

// Result is one completed exploration.
type Result struct {
	// Spec is the normalized specification.
	Spec Spec `json:"spec"`
	// Points is the size of the explored space.
	Points int `json:"points"`
	// BaselineIPC is the plain-SS2 harmonic-mean IPC at full fidelity
	// that Slowdown is measured against.
	BaselineIPC float64 `json:"baseline_ipc"`
	// Screen holds the screening-fidelity evaluations (halving only),
	// in point-index order.
	Screen []Eval `json:"screen,omitempty"`
	// Evals holds the full-fidelity evaluations, in point-index order.
	Evals []Eval `json:"evals"`
	// Frontier holds the indices into Evals of the Pareto-efficient
	// points (maximize IPC and coverage, minimize cost), in index
	// order.
	Frontier []int `json:"frontier"`
	// Resumed counts evaluations restored from the persistent store;
	// Executed counts evaluations computed by this run.
	Resumed  int `json:"resumed"`
	Executed int `json:"executed"`
}

// FrontierEvals returns the frontier's evaluations.
func (r *Result) FrontierEvals() []Eval {
	out := make([]Eval, len(r.Frontier))
	for i, k := range r.Frontier {
		out[i] = r.Evals[k]
	}
	return out
}

// Cost is the deterministic hardware-cost proxy explorations minimize: a
// rough relative area in "ALU equivalents", weighting each functional
// unit class by latency-derived complexity (IALU 1, IMULDIV 3, FADD 2,
// FMULDIV 4; doubled when the checker owns a dedicated pool, the DIVA
// trade), pipeline widths at one unit per slot, window capacities scaled
// to SS1's contribution, and the memory-side ports and MSHRs. The
// absolute numbers are a proxy, not an area model; what matters is that
// the measure is deterministic, monotone in every resource an axis can
// scale, and shared by every report row.
func Cost(m config.Machine) float64 {
	weights := [fu.NumClasses]float64{1, 3, 2, 4}
	fuCost := 0.0
	for c, n := range m.FU.Counts {
		fuCost += weights[c] * float64(n)
	}
	if m.CheckerDedicatedFU {
		fuCost *= 2
	}
	widths := float64(m.DecodeWidth + m.IssueWidth + m.RetireWidth)
	windows := float64(m.ISQSize)/16 + float64(m.ROBSize)/64 +
		float64(m.LSQSize)/16 + float64(m.CheckerWindow)/2
	mem := 2*float64(m.Mem.MemPorts) + float64(m.Mem.MSHREntries)/4
	// The modern detection modes trade different hardware for checking:
	// MEEK buys narrow in-order lanes plus the retirement-log FIFO (1.5
	// ALU-equivalents per lane); multi-context SHREC buys per-context scan
	// state on top of the shared checker window (0.75 per context); FLEX
	// adds only the region-policy sequencing over the SHREC substrate it
	// keeps.
	det := 1.5*float64(m.CheckerLanes) + 0.75*float64(m.Contexts)
	if m.Mode == config.ModeFLEX {
		det++
	}
	ckpt := 0.0
	if m.CkptInterval > 0 {
		// Checkpoint recovery buys availability with hardware: shadow
		// state for each retained architectural checkpoint plus capture
		// sequencing, charged per ring slot.
		depth := m.CkptDepth
		if depth < 1 {
			depth = 1
		}
		ckpt = 2 + 3*float64(depth)
	}
	return fuCost + widths + windows + mem + det + ckpt
}

// Normalize validates spec the way Run will against the run-length
// defaults def and returns it with every default filled in, without
// simulating anything. Servers use it to reject impossible explorations
// synchronously and to identify jobs by normalized spec.
func Normalize(spec Spec, def sim.Options) (Spec, error) {
	if err := spec.Space.validate(); err != nil {
		return Spec{}, err
	}
	switch spec.Strategy {
	case "":
		spec.Strategy = StrategyGrid
	case StrategyGrid, StrategyHalving:
	default:
		return Spec{}, fmt.Errorf("explore: unknown strategy %q (have %v)", spec.Strategy, Strategies())
	}
	if len(spec.Benchmarks) == 0 {
		spec.Benchmarks = []string{DefaultBenchmark}
	}
	for _, b := range spec.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			return Spec{}, fmt.Errorf("explore: %w", err)
		}
	}
	if spec.WarmupInstrs == 0 {
		spec.WarmupInstrs = def.WarmupInstrs
	}
	if spec.MeasureInstrs == 0 {
		spec.MeasureInstrs = def.MeasureInstrs
	}
	if spec.ScreenDiv == 0 {
		spec.ScreenDiv = DefaultScreenDiv
	}
	if spec.ScreenDiv < 2 {
		return Spec{}, fmt.Errorf("explore: screen divisor %d below 2", spec.ScreenDiv)
	}
	if spec.Trials == 0 {
		spec.Trials = DefaultTrials
	}
	if spec.Trials < 0 {
		return Spec{}, fmt.Errorf("explore: negative trial count %d", spec.Trials)
	}
	size := spec.Space.Size()
	if spec.Budget == 0 {
		if spec.Strategy == StrategyHalving {
			spec.Budget = (size + 1) / 2
		} else {
			spec.Budget = size
		}
	}
	if spec.Budget < 1 {
		return Spec{}, fmt.Errorf("explore: non-positive budget %d", spec.Budget)
	}
	if spec.Strategy == StrategyGrid && size > spec.Budget {
		return Spec{}, fmt.Errorf("explore: grid over %d points exceeds the budget of %d full-fidelity evaluations (shrink the space, raise the budget, or use -strategy halving)", size, spec.Budget)
	}
	return spec, nil
}

// Engine runs explorations over a shared simulation suite. All methods
// are safe for concurrent use; concurrent explorations share the
// suite's result cache and parallelism bound.
type Engine struct {
	sims *sim.Suite
	st   *store.Store
}

// New builds an exploration engine over an existing simulation suite.
func New(sims *sim.Suite) *Engine {
	return &Engine{sims: sims}
}

// WithStore attaches a persistent store: finished point evaluations (and
// the campaign trials behind their coverage) are written through, and a
// later Run of the same exploration restores them instead of
// re-evaluating. Returns e for chaining.
func (e *Engine) WithStore(st *store.Store) *Engine {
	e.st = st
	return e
}

// digest is the exploration's content identity: everything that shapes
// an evaluation except the strategy and budget, which only select WHICH
// points are evaluated — so a halving exploration and a grid over the
// same space share evaluations, and extending the budget reuses every
// finished point.
func (s Spec) digest() string {
	return store.Digest("explore.Eval.v1", s.Space, s.Benchmarks, s.Seed)
}

// evalKey keys one point's evaluation at one fidelity in the store.
// trials must be the count that actually shaped the evaluation: the
// spec's for a full-fidelity faulted point, zero otherwise — a
// performance-only or screened evaluation does not depend on the trial
// count, and keying it by Trials anyway would needlessly invalidate
// resume whenever the caller refines it.
func evalKey(digest string, index int, opt sim.Options, trials int) string {
	return fmt.Sprintf("%s/point/%d/w%d-m%d-t%d", digest, index,
		opt.WarmupInstrs, opt.MeasureInstrs, trials)
}

// pointSeed derives the campaign master seed of point i — a splitmix
// fork, like campaign.TrialSeed, so points sample decorrelated fault
// sites while the exploration remains a pure function of (Seed, i).
func pointSeed(seed uint64, index int) uint64 {
	return rng.New(seed).Fork(uint64(index) + 1).Uint64()
}

// run carries one exploration's shared state across the strategy and
// evaluation passes.
type run struct {
	eng      *Engine
	spec     Spec
	points   []Point
	digest   string
	progress func(Progress)

	mu       sync.Mutex
	resumed  int
	executed int
	screen   []Eval
}

// options returns the run lengths of the given fidelity.
func (r *run) options(screen bool) sim.Options {
	opt := r.eng.sims.Options()
	opt.WarmupInstrs = r.spec.WarmupInstrs
	opt.MeasureInstrs = r.spec.MeasureInstrs
	opt.MaxCycles = 0
	if screen {
		div := uint64(r.spec.ScreenDiv)
		opt.WarmupInstrs /= div
		if opt.MeasureInstrs /= div; opt.MeasureInstrs < minScreenInstrs {
			opt.MeasureInstrs = minScreenInstrs
		}
	}
	return opt
}

// baselineIPC scores the plain SS2 redundant machine — the slowdown
// reference — over the spec's benchmarks at the given options.
func (r *run) baselineIPC(ctx context.Context, opt sim.Options) (float64, error) {
	return r.meanIPC(ctx, config.SS2(config.Factors{}), opt)
}

// meanIPC is the harmonic-mean IPC of machine m over the benchmarks.
func (r *run) meanIPC(ctx context.Context, m config.Machine, opt sim.Options) (float64, error) {
	ipcs := make([]float64, 0, len(r.spec.Benchmarks))
	for _, b := range r.spec.Benchmarks {
		p, err := workload.ByName(b)
		if err != nil {
			return 0, err
		}
		res, err := r.eng.sims.GetOpt(ctx, m, p, opt)
		if err != nil {
			return 0, err
		}
		ipcs = append(ipcs, res.IPC())
	}
	return stats.HarmonicMean(ipcs), nil
}

// evalPoint scores one point at one fidelity, consulting the store
// first. The returned bool reports a store restore.
func (r *run) evalPoint(ctx context.Context, pt Point, opt sim.Options, screen bool, baseIPC float64) (Eval, bool, error) {
	// Campaigns (and therefore the trial count) only shape full-fidelity
	// evaluations of faulted points (see the coverage block below and
	// evalKey's contract).
	keyTrials := 0
	if pt.Rate > 0 && !screen {
		keyTrials = r.spec.Trials
	}
	key := evalKey(r.digest, pt.Index, opt, keyTrials)
	if r.eng.st != nil {
		var ev Eval
		if ok, err := r.eng.st.Get(key, &ev); err == nil && ok && ev.Spec == pt.Spec {
			return ev, true, nil
		}
	}
	ipc, err := r.meanIPC(ctx, pt.Machine, opt)
	if err != nil {
		return Eval{}, false, err
	}
	ev := Eval{
		Index:    pt.Index,
		Spec:     pt.Spec,
		Rate:     pt.Rate,
		Screen:   screen,
		IPC:      ipc,
		Slowdown: baseIPC / ipc,
		Cost:     Cost(pt.Machine),
	}
	// Coverage: one campaign per benchmark, outcomes pooled. The screen
	// pass skips campaigns — short screened runs can collapse the
	// injection window inside the warmup fetch horizon, and coverage is
	// re-measured on every survivor at full fidelity anyway.
	if pt.Rate > 0 && !screen && r.spec.Trials > 0 {
		camp := campaign.New(r.eng.sims)
		if r.eng.st != nil {
			camp.WithStore(r.eng.st)
		}
		var counts campaign.Counts
		var pooled *campaign.RecoverySummary
		var ckptOvWeighted float64
		for _, b := range r.spec.Benchmarks {
			cres, err := camp.Run(ctx, campaign.Spec{
				Machine:       pt.Machine.Spec(),
				Benchmark:     b,
				Trials:        r.spec.Trials,
				FaultRate:     pt.Rate,
				Seed:          pointSeed(r.spec.Seed, pt.Index),
				WarmupInstrs:  opt.WarmupInstrs,
				MeasureInstrs: opt.MeasureInstrs,
			}, nil)
			if err != nil {
				return Eval{}, false, fmt.Errorf("coverage of %s on %s: %w", pt.Spec, b, err)
			}
			c := cres.Counts()
			counts.Detected += c.Detected
			counts.Squashed += c.Squashed
			counts.Masked += c.Masked
			counts.SDC += c.SDC
			counts.Hang += c.Hang
			counts.Clean += c.Clean
			if rs := cres.RecoverySummary(); rs != nil {
				// Pool the recovery counters over the benchmarks; the
				// checkpoint overhead (a per-benchmark CPI ratio) pools as
				// a cycle-weighted mean.
				if pooled == nil {
					pooled = &campaign.RecoverySummary{Policy: rs.Policy}
				}
				pooled.Rollbacks += rs.Rollbacks
				pooled.Overruns += rs.Overruns
				pooled.Unrecoverable += rs.Unrecoverable
				pooled.Checkpoints += rs.Checkpoints
				pooled.LostWork += rs.LostWork
				pooled.Cycles += rs.Cycles
				ckptOvWeighted += rs.CkptOverhead * float64(rs.Cycles)
			}
		}
		covered := counts.Detected + counts.Squashed + counts.Masked
		ev.Covered = true
		ev.SDC = counts.SDC
		ev.Hangs = counts.Hang
		if n := counts.Faulted(); n > 0 {
			ev.Coverage = float64(covered) / float64(n)
			ev.CoverageLo, ev.CoverageHi = stats.Wilson(covered, n, 1.96)
		} else {
			// No trial sampled a fault; nothing is known.
			ev.CoverageLo, ev.CoverageHi = 0, 1
		}
		if pooled != nil {
			if pooled.Cycles > 0 {
				pooled.CkptOverhead = ckptOvWeighted / float64(pooled.Cycles)
			}
			pooled.Finalize()
			av := pooled.Availability(campaign.DefaultRepairCycles)
			ev.Availed = true
			ev.Avail, ev.AvailLo, ev.AvailHi = av.Point, av.Lo, av.Hi
			ev.MTTFCycles = av.MTTFCycles
		}
	}
	if r.eng.st != nil {
		// Best effort: a failed write costs a re-evaluation on resume,
		// never the exploration.
		_ = r.eng.st.Put(key, ev)
	}
	return ev, false, nil
}

// evalAll scores every point concurrently at the given fidelity,
// returning evaluations in point order. Failures are joined; on context
// cancellation the cascade collapses to one error (finished evaluations
// have already been persisted).
func (r *run) evalAll(ctx context.Context, points []Point, screen bool) ([]Eval, error) {
	opt := r.options(screen)
	baseStart := time.Now()
	baseIPC, err := r.baselineIPC(ctx, opt)
	if err != nil {
		return nil, fmt.Errorf("explore: SS2 baseline: %w", err)
	}
	telemetry.SpanFrom(ctx).Record("baseline_run", time.Since(baseStart))
	phase := "full"
	if screen {
		phase = "screen"
	}
	evals := make([]Eval, len(points))
	errs := make([]error, len(points))
	done := 0
	var wg sync.WaitGroup
	for i, pt := range points {
		wg.Add(1)
		go func(i int, pt Point) {
			defer wg.Done()
			evalStart := time.Now()
			ev, restored, err := r.evalPoint(ctx, pt, opt, screen, baseIPC)
			telemetry.SpanFrom(ctx).Record(phase+"_eval", time.Since(evalStart))
			r.mu.Lock()
			defer r.mu.Unlock()
			if err != nil {
				errs[i] = fmt.Errorf("point %d (%s): %w", pt.Index, pt.Spec, err)
				return
			}
			evals[i] = ev
			if restored {
				r.resumed++
			} else {
				r.executed++
			}
			done++
			if r.progress != nil {
				// Under the lock, so snapshots arrive serially; the
				// callback must return quickly.
				r.progress(Progress{Phase: phase, Done: done,
					Total: len(points), Resumed: r.resumed})
			}
		}(i, pt)
	}
	wg.Wait()

	failed := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		if ctxErr := ctx.Err(); ctxErr != nil {
			real := failed[:0]
			for _, err := range failed {
				if !errors.Is(err, ctxErr) {
					real = append(real, err)
				}
			}
			return nil, errors.Join(append(real,
				fmt.Errorf("explore: interrupted with %d of %d %s evaluations done: %w",
					done, len(points), phase, ctxErr))...)
		}
		return nil, errors.Join(failed...)
	}
	return evals, nil
}

// objectives maps an evaluation to its maximization vector: IPC,
// coverage (when the exploration measures any; uncovered points
// contribute zero), availability (when the space sweeps recovery;
// recovery-free points contribute zero), and negated cost.
func objectives(e Eval, withCoverage, withAvail bool) []float64 {
	out := []float64{e.IPC}
	if withCoverage {
		cov := 0.0
		if e.Covered {
			cov = e.Coverage
		}
		out = append(out, cov)
	}
	if withAvail {
		av := 0.0
		if e.Availed {
			av = e.Avail
		}
		out = append(out, av)
	}
	return append(out, -e.Cost)
}

// hasCoverage reports whether any point of the space injects faults.
func (s Spec) hasCoverage() bool {
	for _, r := range s.Space.FaultRates {
		if r > 0 {
			return true
		}
	}
	return false
}

// hasAvailability reports whether the exploration measures availability:
// some point both checkpoints and injects faults.
func (s Spec) hasAvailability() bool {
	if !s.hasCoverage() {
		return false
	}
	for _, n := range s.Space.CkptIntervals {
		if n > 0 {
			return true
		}
	}
	return false
}

// Run executes (or resumes) the exploration described by spec. The
// progress callback, when non-nil, is invoked serially after every
// finished evaluation; it must return quickly. On context cancellation
// the exploration stops with an error, but every finished evaluation has
// already been persisted, so a later Run resumes from it.
func (e *Engine) Run(ctx context.Context, spec Spec, progress func(Progress)) (*Result, error) {
	ns, err := Normalize(spec, e.sims.Options())
	if err != nil {
		return nil, err
	}
	points, err := ns.Space.Points()
	if err != nil {
		return nil, err
	}
	r := &run{eng: e, spec: ns, points: points, digest: ns.digest(), progress: progress}

	strat, err := strategyFor(ns.Strategy)
	if err != nil {
		return nil, err
	}
	survivors, err := strat.plan(ctx, r)
	if err != nil {
		return nil, err
	}
	if len(survivors) > ns.Budget {
		// Strategies cap themselves; this is a belt-and-suspenders
		// invariant, not a reachable branch.
		return nil, fmt.Errorf("explore: strategy %s planned %d evaluations over the budget of %d", ns.Strategy, len(survivors), ns.Budget)
	}
	evals, err := r.evalAll(ctx, survivors, false)
	if err != nil {
		return nil, err
	}
	sort.Slice(evals, func(a, b int) bool { return evals[a].Index < evals[b].Index })

	withCov := ns.hasCoverage()
	withAvail := ns.hasAvailability()
	vecs := make([][]float64, len(evals))
	for i, ev := range evals {
		vecs[i] = objectives(ev, withCov, withAvail)
	}
	baseIPC, err := r.baselineIPC(ctx, r.options(false))
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec:        ns,
		Points:      len(points),
		BaselineIPC: baseIPC,
		Screen:      r.screen,
		Evals:       evals,
		Frontier:    stats.ParetoFront(vecs),
		Resumed:     r.resumed,
		Executed:    r.executed,
	}, nil
}

// Report renders the exploration as a typed experiment report.
func (r *Result) Report() *report.Report {
	withCov := r.Spec.hasCoverage()
	withAvail := r.Spec.hasAvailability()
	rep := report.New("explore",
		fmt.Sprintf("Design-space exploration: %d-point space, %s strategy, %d on the Pareto frontier",
			r.Points, r.Spec.Strategy, len(r.Frontier)))

	cols := []string{"spec", "IPC", "slowdown", "cost"}
	if withCov {
		cols = []string{"spec", "IPC", "slowdown", "cov%", "lo%", "hi%", "odds", "cost"}
	}
	if withAvail {
		cols = []string{"spec", "IPC", "slowdown", "cov%", "lo%", "hi%", "odds", "avail%", "aLo%", "aHi%", "cost"}
	}
	onFrontier := make(map[int]bool, len(r.Frontier))
	for _, i := range r.Frontier {
		onFrontier[i] = true
	}
	rowValues := func(ev Eval) []float64 {
		if !withCov {
			return []float64{ev.IPC, ev.Slowdown, ev.Cost}
		}
		// Performance-only points in a mixed space carry no coverage
		// estimate: NaN, not zero — zero would claim certainty of
		// failure. Odds are coverage/(1-coverage): +Inf at total
		// coverage, the common case for the protected machines.
		cov, lo, hi, odds := math.NaN(), math.NaN(), math.NaN(), math.NaN()
		if ev.Covered {
			cov, lo, hi = 100*ev.Coverage, 100*ev.CoverageLo, 100*ev.CoverageHi
			odds = ev.Coverage / (1 - ev.Coverage)
		}
		out := []float64{ev.IPC, ev.Slowdown, cov, lo, hi, odds}
		if withAvail {
			// Recovery-free points carry no availability estimate either:
			// NaN for the same reason.
			av, alo, ahi := math.NaN(), math.NaN(), math.NaN()
			if ev.Availed {
				av, alo, ahi = 100*ev.Avail, 100*ev.AvailLo, 100*ev.AvailHi
			}
			out = append(out, av, alo, ahi)
		}
		return append(out, ev.Cost)
	}

	obj := "maximize IPC"
	if withCov {
		obj += ", coverage"
	}
	if withAvail {
		obj += ", availability"
	}
	ft := rep.AddTable("Pareto frontier ("+obj+"; minimize cost)", cols...)
	ft.Verb = "%.4g"
	for _, i := range r.Frontier {
		ft.AddRow(r.Evals[i].Spec, rowValues(r.Evals[i])...)
	}

	at := rep.AddTable("All full-fidelity points", append(cols, "frontier")...)
	at.Verb = "%.4g"
	for i, ev := range r.Evals {
		fl := 0.0
		if onFrontier[i] {
			fl = 1
		}
		at.AddRow(ev.Spec, append(rowValues(ev), fl)...)
	}

	rep.AddNote("%d of %d evaluated points on the frontier (space of %d; SS2 baseline IPC %.3f)",
		len(r.Frontier), len(r.Evals), r.Points, r.BaselineIPC)
	if len(r.Screen) > 0 {
		rep.AddNote("halving screen: %d points at 1/%d run length; %d survivors re-evaluated at full fidelity",
			len(r.Screen), r.Spec.ScreenDiv, len(r.Evals))
	}
	if r.Resumed > 0 {
		rep.AddNote("resumed %d evaluations from the store (%d executed)", r.Resumed, r.Executed)
	}

	rep.SetMeta("strategy", r.Spec.Strategy)
	rep.SetMeta("seed", fmt.Sprint(r.Spec.Seed))
	rep.SetMeta("points", fmt.Sprint(r.Points))
	rep.SetMeta("budget", fmt.Sprint(r.Spec.Budget))
	rep.SetMeta("benchmarks", fmt.Sprint(r.Spec.Benchmarks))
	rep.SetMeta("warmup_instrs", fmt.Sprint(r.Spec.WarmupInstrs))
	rep.SetMeta("measure_instrs", fmt.Sprint(r.Spec.MeasureInstrs))
	if r.Spec.Strategy == StrategyHalving {
		rep.SetMeta("screen_div", fmt.Sprint(r.Spec.ScreenDiv))
	}
	if withCov {
		rep.SetMeta("trials", fmt.Sprint(r.Spec.Trials))
	}
	return rep
}
