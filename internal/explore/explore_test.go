package explore

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/store"
)

// quickOpts are tiny run lengths for fast tests (~10ms per simulation).
func quickOpts() sim.Options {
	return sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
}

func TestSpaceEnumeration(t *testing.T) {
	s := Space{
		Bases:   []string{"ss1", "shrec"},
		XScales: []float64{0.5, 1},
		MSHRs:   []int{16, 32},
	}
	if got := s.Size(); got != 8 {
		t.Fatalf("size = %d, want 8", got)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d carries index %d", i, pt.Index)
		}
		if seen[pt.Spec] {
			t.Fatalf("duplicate spec %q", pt.Spec)
		}
		seen[pt.Spec] = true
		// Encode/decode round-trip: the spec string reproduces the
		// structural machine and rate.
		m, rate, err := DecodeSpec(pt.Spec)
		if err != nil {
			t.Fatalf("DecodeSpec(%q): %v", pt.Spec, err)
		}
		if rate != pt.Rate {
			t.Fatalf("%q: rate %g != %g", pt.Spec, rate, pt.Rate)
		}
		a, b := m, pt.Machine
		a.Name, b.Name = "", ""
		if a != b {
			t.Fatalf("%q decoded to a different machine", pt.Spec)
		}
	}
	// Bases vary slowest: the first half of the enumeration is ss1.
	for i := 0; i < 4; i++ {
		if !strings.HasPrefix(pts[i].Spec, "SS1") {
			t.Fatalf("point %d = %q, want an SS1 point", i, pts[i].Spec)
		}
	}
}

func TestSpaceWithRates(t *testing.T) {
	s := Space{
		Bases:      []string{"shrec"},
		FaultRates: []float64{0, 1e-4},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("size = %d", len(pts))
	}
	if pts[0].Rate != 0 || pts[0].Spec != "SHREC" {
		t.Fatalf("rate-free point = %+v", pts[0])
	}
	if pts[1].Rate != 1e-4 || pts[1].Spec != "SHREC+rate0.0001" {
		t.Fatalf("faulted point = %+v", pts[1])
	}
	m, rate, err := DecodeSpec(pts[1].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 1e-4 || m.FaultRate != 0 || m.Name != "SHREC" {
		t.Fatalf("DecodeSpec = %q rate %g faultrate %g", m.Name, rate, m.FaultRate)
	}
}

// TestSpaceRejectsModifierCollisions pins the canonical-spec contract: a
// base that already carries a modifier an axis re-applies would produce
// points whose names cannot round-trip (chained rounding defeats
// canonical naming), so the space is rejected up front instead of
// failing mid-exploration when a campaign re-parses the spec.
func TestSpaceRejectsModifierCollisions(t *testing.T) {
	s := Space{Bases: []string{"shrec@x1.4"}, XScales: []float64{1.2}}
	if _, err := s.Points(); err == nil {
		t.Fatal("colliding base+axis accepted")
	}
	// The faulted variant must be rejected the same way.
	s.FaultRates = []float64{1e-3}
	if _, err := s.Points(); err == nil {
		t.Fatal("colliding faulted base+axis accepted")
	}
	// A modified base is fine when no axis re-applies its modifier.
	ok := Space{Bases: []string{"shrec@x1.5"}, MSHRs: []int{16, 32}}
	pts, err := ok.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Spec != "SHREC@x1.5+mshr16" {
		t.Fatalf("modified base mis-enumerated: %+v", pts)
	}
}

func TestSpaceValidation(t *testing.T) {
	bad := []Space{
		{},                       // no bases
		{Bases: []string{"ss9"}}, // unknown base
		{Bases: []string{"ss1"}, XScales: []float64{0}},    // zero scale
		{Bases: []string{"ss1"}, Staggers: []int{-1}},      // negative stagger
		{Bases: []string{"ss1"}, MSHRs: []int{0}},          // zero mshrs
		{Bases: []string{"ss1"}, MemPorts: []int{0}},       // zero ports
		{Bases: []string{"ss1"}, FaultRates: []float64{2}}, // rate > 1
	}
	for i, s := range bad {
		if _, err := s.Points(); err == nil {
			t.Errorf("space %d accepted: %+v", i, s)
		}
	}
}

func TestNormalize(t *testing.T) {
	def := quickOpts()
	ns, err := Normalize(Spec{Space: Space{Bases: []string{"shrec"}}}, def)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Strategy != StrategyGrid || ns.Benchmarks[0] != DefaultBenchmark ||
		ns.WarmupInstrs != def.WarmupInstrs || ns.MeasureInstrs != def.MeasureInstrs ||
		ns.ScreenDiv != DefaultScreenDiv || ns.Trials != DefaultTrials || ns.Budget != 1 {
		t.Fatalf("defaults not filled: %+v", ns)
	}
	// Halving defaults to half the space.
	hs, err := Normalize(Spec{Space: Space{Bases: []string{"ss1", "ss2", "shrec"}}, Strategy: StrategyHalving}, def)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Budget != 2 {
		t.Fatalf("halving budget = %d, want 2", hs.Budget)
	}
	// Grid over a space larger than the budget is a static error.
	if _, err := Normalize(Spec{Space: Space{Bases: []string{"ss1", "ss2"}}, Budget: 1}, def); err == nil {
		t.Fatal("grid over budget accepted")
	}
	for _, bad := range []Spec{
		{Space: Space{Bases: []string{"shrec"}}, Strategy: "random"},
		{Space: Space{Bases: []string{"shrec"}}, Benchmarks: []string{"no-such-bench"}},
		{Space: Space{Bases: []string{"shrec"}}, ScreenDiv: 1},
		{Space: Space{Bases: []string{"shrec"}}, Trials: -1},
		{Space: Space{Bases: []string{"shrec"}}, Budget: -1},
	} {
		if _, err := Normalize(bad, def); err == nil {
			t.Errorf("normalize accepted %+v", bad)
		}
	}
}

func TestCostMonotone(t *testing.T) {
	base := Cost(config.SS1())
	if base <= 0 {
		t.Fatalf("SS1 cost %g", base)
	}
	if x := Cost(config.SS2(config.Factors{X: true})); x <= base {
		t.Fatalf("X-doubled cost %g not above base %g", x, base)
	}
	if d := Cost(config.DIVA()); d <= Cost(config.SHREC()) {
		t.Fatalf("DIVA cost %g not above SHREC %g (dedicated checker FUs are the point)", d, Cost(config.SHREC()))
	}
	if c := Cost(config.SS2(config.Factors{C: true})); c <= base {
		t.Fatalf("C-doubled cost %g not above base %g", c, base)
	}
	if p := Cost(config.SS1().WithMemPorts(8)); p <= base {
		t.Fatalf("extra ports cost %g not above base %g", p, base)
	}
}

// TestGridExploration runs a small grid end to end and checks the
// frontier's defining property plus the report rendering.
func TestGridExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; full tier only")
	}
	eng := New(sim.NewSuite(quickOpts()))
	res, err := eng.Run(context.Background(), Spec{
		Space: Space{Bases: []string{"ss1", "ss2", "shrec", "diva"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 4 || len(res.Evals) != 4 {
		t.Fatalf("evaluated %d of %d", len(res.Evals), res.Points)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// SS1 has the best IPC of the four (no redundancy): it must be on
	// the frontier.
	found := false
	for _, ev := range res.FrontierEvals() {
		if ev.Spec == "SS1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SS1 not on the frontier: %+v", res.FrontierEvals())
	}
	if res.BaselineIPC <= 0 {
		t.Fatalf("baseline IPC %g", res.BaselineIPC)
	}
	for _, ev := range res.Evals {
		if ev.IPC <= 0 || ev.Cost <= 0 || ev.Slowdown <= 0 {
			t.Fatalf("degenerate eval %+v", ev)
		}
	}
	text := res.Report().String()
	for _, want := range []string{"Pareto frontier", "All full-fidelity points", "SS1", "SHREC"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report lacks %q:\n%s", want, text)
		}
	}
}

// TestCoverageObjective verifies a faulted point carries a campaign
// coverage estimate and that the protected machine's coverage beats the
// unprotected one's.
func TestCoverageObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fault campaigns; full tier only")
	}
	eng := New(sim.NewSuite(quickOpts()))
	res, err := eng.Run(context.Background(), Spec{
		Space: Space{
			Bases:      []string{"ss1", "shrec"},
			FaultRates: []float64{2e-4},
		},
		Trials: 16,
		Seed:   7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byspec := map[string]Eval{}
	for _, ev := range res.Evals {
		byspec[ev.Spec] = ev
	}
	ss1, ok1 := byspec["SS1+rate0.0002"]
	shrec, ok2 := byspec["SHREC+rate0.0002"]
	if !ok1 || !ok2 {
		t.Fatalf("point specs drifted: %v", res.Evals)
	}
	if !ss1.Covered || !shrec.Covered {
		t.Fatalf("faulted points lack coverage: %+v / %+v", ss1, shrec)
	}
	if shrec.Coverage <= ss1.Coverage {
		t.Fatalf("SHREC coverage %.3f not above SS1 %.3f", shrec.Coverage, ss1.Coverage)
	}
	if shrec.SDC != 0 {
		t.Fatalf("protected machine leaked %d SDCs", shrec.SDC)
	}
	if ss1.SDC == 0 {
		t.Fatal("unprotected machine shows no SDC; the coverage axis is vacuous")
	}
}

// TestExploreResume is the kill-and-resume test of the acceptance
// criteria, gated the same way as the campaign acceptance test: an
// exploration killed mid-flight must resume from the store without
// re-evaluating a single finished point, verified by both the resume
// counters and the suite's own run counter.
func TestExploreResume(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-and-resume runs simulations; full tier only")
	}
	spec := Spec{
		Space: Space{
			Bases:   []string{"shrec", "ss1"},
			XScales: []float64{0.75, 1},
			MSHRs:   []int{16, 32},
		},
		Seed: 42,
	}
	path := filepath.Join(t.TempDir(), "explore.jsonl")

	// Phase 1: run until a few evaluations land, then kill.
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	killedAt := 0
	_, err = New(sim.NewSuite(quickOpts())).WithStore(st).Run(ctx, spec, func(p Progress) {
		if p.Done >= 3 && killedAt == 0 {
			killedAt = p.Done
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("killed exploration reported success")
	}
	if killedAt == 0 {
		t.Fatal("exploration finished before the kill fired")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume on a fresh suite. Every evaluation that finished
	// before the kill must be restored, not re-run.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sims := sim.NewSuite(quickOpts())
	res, err := New(sims).WithStore(st2).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed < killedAt {
		t.Fatalf("resumed %d evaluations, but %d had finished before the kill", res.Resumed, killedAt)
	}
	if res.Resumed+res.Executed != res.Points {
		t.Fatalf("resumed %d + executed %d != %d points", res.Resumed, res.Executed, res.Points)
	}
	// The suite's counter agrees: one simulation per executed evaluation
	// (one benchmark each) plus the SS2 slowdown baseline. Resumed
	// evaluations run nothing.
	if got, want := sims.Runs(), uint64(res.Executed)+1; got != want {
		t.Fatalf("suite executed %d simulations, want %d (executed evals + baseline)", got, want)
	}
	if len(res.Evals) != res.Points || len(res.Frontier) == 0 {
		t.Fatalf("degenerate result: %d evals, %d frontier", len(res.Evals), len(res.Frontier))
	}
	// The report carries the resume provenance.
	found := false
	for _, n := range res.Report().Notes {
		if strings.Contains(n, "resumed") {
			found = true
		}
	}
	if !found {
		t.Fatal("report notes lack the resume line")
	}
}

// TestTrialsIgnoredByUnfaultedKeys pins the store-key scoping fix: the
// trial count only keys evaluations it can influence (full-fidelity
// faulted points), so rerunning a performance-only exploration with a
// different Trials resumes every evaluation instead of invalidating the
// store.
func TestTrialsIgnoredByUnfaultedKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; full tier only")
	}
	st, err := store.Open(filepath.Join(t.TempDir(), "evals.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	spec := Spec{Space: Space{Bases: []string{"ss1", "shrec"}}, Seed: 3}
	first, err := New(sim.NewSuite(quickOpts())).WithStore(st).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 2 {
		t.Fatalf("first run executed %d", first.Executed)
	}
	spec.Trials = 100 // irrelevant to fault-free points
	again, err := New(sim.NewSuite(quickOpts())).WithStore(st).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != 2 || again.Executed != 0 {
		t.Fatalf("changed Trials invalidated fault-free evaluations: resumed %d, executed %d",
			again.Resumed, again.Executed)
	}
}

// TestProgressSerialized checks the progress stream: serial snapshots,
// monotone Done, and a correct final state.
func TestProgressSerialized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; full tier only")
	}
	eng := New(sim.NewSuite(quickOpts()))
	last := Progress{}
	n := 0
	_, err := eng.Run(context.Background(), Spec{
		Space: Space{Bases: []string{"ss1", "shrec"}},
	}, func(p Progress) {
		n++
		if p.Done != last.Done+1 {
			t.Errorf("progress skipped: %+v after %+v", p, last)
		}
		last = p
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || last.Done != 2 || last.Total != 2 || last.Phase != "full" {
		t.Fatalf("final progress %+v after %d callbacks", last, n)
	}
}
