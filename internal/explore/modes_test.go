package explore

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// TestSpaceModeAxes enumerates the detection-mode axes: MEEK checker
// lanes, SHREC hardware contexts (including the classic single-context
// entry), and FLEX region duty cycles. Every point's spec must
// round-trip, like any other axis.
func TestSpaceModeAxes(t *testing.T) {
	cases := []struct {
		space Space
		specs []string
	}{
		{
			Space{Bases: []string{"meek"}, CheckerLanes: []int{1, 2, 4}},
			[]string{"MEEK@1", "MEEK@2", "MEEK@4"},
		},
		{
			Space{Bases: []string{"shrec"}, Contexts: []int{1, 2, 4}},
			[]string{"SHREC", "SHREC+ctx2", "SHREC+ctx4"},
		},
		{
			Space{Bases: []string{"flex@64k:on16k"}, RegionDuties: []float64{0.125, 0.5}},
			[]string{"FLEX@64k:on8k", "FLEX@64k:on32k"},
		},
	}
	for _, tc := range cases {
		pts, err := tc.space.Points()
		if err != nil {
			t.Errorf("space %+v: %v", tc.space, err)
			continue
		}
		for i, pt := range pts {
			if pt.Spec != tc.specs[i] {
				t.Errorf("space %+v point %d = %q, want %q", tc.space, i, pt.Spec, tc.specs[i])
			}
			m, rate, err := DecodeSpec(pt.Spec)
			if err != nil {
				t.Errorf("DecodeSpec(%q): %v", pt.Spec, err)
				continue
			}
			a, b := m, pt.Machine
			a.Name, b.Name = "", ""
			if a != b || rate != pt.Rate {
				t.Errorf("%q decoded to a different machine", pt.Spec)
			}
		}
	}
}

// TestSpaceModeAxisCompat pins that a mode-specific axis over an
// incompatible base rejects the whole space with the conflict named, and
// that out-of-range entries are static errors.
func TestSpaceModeAxisCompat(t *testing.T) {
	bad := []Space{
		{Bases: []string{"ss1"}, CheckerLanes: []int{2}},           // lanes need meek
		{Bases: []string{"meek", "shrec"}, CheckerLanes: []int{2}}, // ... on every base
		{Bases: []string{"meek"}, Contexts: []int{2}},              // contexts need shrec/diva
		{Bases: []string{"ss2"}, Contexts: []int{2}},               // ... not duplication
		{Bases: []string{"shrec"}, RegionDuties: []float64{0.5}},   // duties need flex
		{Bases: []string{"meek"}, CheckerLanes: []int{0}},          // lane count floor
		{Bases: []string{"meek"}, CheckerLanes: []int{99}},         // lane count ceiling
		{Bases: []string{"shrec"}, Contexts: []int{0}},             // context floor
		{Bases: []string{"shrec"}, Contexts: []int{99}},            // context ceiling
		{Bases: []string{"flex"}, RegionDuties: []float64{0}},      // duty in (0,1)
		{Bases: []string{"flex"}, RegionDuties: []float64{1}},      // duty in (0,1)
	}
	for i, s := range bad {
		if _, err := s.Points(); err == nil {
			t.Errorf("space %d accepted: %+v", i, s)
		}
	}
	// DIVA is a SHREC-mode base: the contexts axis applies.
	pts, err := (Space{Bases: []string{"diva"}, Contexts: []int{2}}).Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Spec != "DIVA+ctx2" {
		t.Fatalf("diva+ctx mis-enumerated: %+v", pts)
	}
}

// TestDecodeSpecOrders pins DecodeSpec against hand-written specs in
// non-canonical modifier orders. The decoder strips the rate through the
// grammar, so the written order must never matter; the old string-excision
// implementation depended on where "+rate" rendered relative to the other
// tokens.
func TestDecodeSpecOrders(t *testing.T) {
	cases := []struct {
		spec string
		name string // canonical structural name
		rate float64
	}{
		{"shrec", "SHREC", 0},
		{"shrec+rate0.0001", "SHREC", 1e-4},
		{"shrec+rate1e-4+ckpt64k", "SHREC+ckpt64k", 1e-4},
		{"shrec+ckpt64k+rate1e-4", "SHREC+ckpt64k", 1e-4}, // rate written last
		{"shrec+rate2e-4+ctx4", "SHREC+ctx4", 2e-4},
		{"shrec+ctx4+rate2e-4", "SHREC+ctx4", 2e-4},
		{"SHREC+CKPT64K+DEPTH4+RATE0.001", "SHREC+ckpt64k+depth4", 1e-3},
		{"meek@4+rate1e-4", "MEEK@4", 1e-4},
		{"flex@1m:on4k+rate5e-4", "FLEX@1m:on4k", 5e-4},
		{"diva+ctx2+mshr32+rate1e-3", "DIVA+ctx2+mshr32", 1e-3},
	}
	for _, tc := range cases {
		m, rate, err := DecodeSpec(tc.spec)
		if err != nil {
			t.Errorf("DecodeSpec(%q): %v", tc.spec, err)
			continue
		}
		if m.Name != tc.name || rate != tc.rate || m.FaultRate != 0 {
			t.Errorf("DecodeSpec(%q) = (%q, %g, faultrate %g), want (%q, %g, 0)",
				tc.spec, m.Name, rate, m.FaultRate, tc.name, tc.rate)
		}
		// The structural machine re-encodes canonically with the rate.
		if tc.rate > 0 {
			back := m.WithFaultRate(tc.rate).Spec()
			if m2, r2, err := DecodeSpec(back); err != nil || m2.Name != tc.name || r2 != tc.rate {
				t.Errorf("re-encode of %q = %q did not round-trip (err %v)", tc.spec, back, err)
			}
		}
	}
}

// TestCostModeTerms pins the detection-hardware cost terms: each MEEK
// lane and each SHREC context has a price, FLEX pays a flat region-logic
// charge over its SHREC substrate — and two checker lanes undercut
// SHREC's shared checker window, which is what puts MEEK on the
// cost-coverage frontier.
func TestCostModeTerms(t *testing.T) {
	shrec := Cost(config.SHREC())
	if meek2 := Cost(config.MEEK(2)); meek2 >= shrec {
		t.Errorf("MEEK@2 cost %g not below SHREC %g", meek2, shrec)
	}
	if Cost(config.MEEK(4)) <= Cost(config.MEEK(2)) {
		t.Error("lane count does not price in")
	}
	if Cost(config.SHREC().WithContexts(4)) <= shrec {
		t.Error("contexts do not price in")
	}
	if Cost(config.SHREC().WithContexts(4)) <= Cost(config.SHREC().WithContexts(2)) {
		t.Error("cost not monotone in contexts")
	}
	if Cost(config.FLEX()) <= shrec {
		t.Error("FLEX region logic does not price in")
	}
	if Cost(config.DIVA().WithContexts(2)) <= Cost(config.DIVA()) {
		t.Error("contexts do not price in on DIVA")
	}
}

// TestMEEKDominatesSHRECOnCostCoverage is the acceptance test for the new
// detection modes as exploration citizens: in a faulted grid over classic
// SHREC and two-lane MEEK, the MEEK point must dominate SHREC on the
// cost x coverage plane — full detection at strictly lower hardware cost —
// and must appear on the exploration's Pareto frontier.
func TestMEEKDominatesSHRECOnCostCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fault campaigns; full tier only")
	}
	eng := New(sim.NewSuite(quickOpts()))
	res, err := eng.Run(context.Background(), Spec{
		Space: Space{
			Bases:      []string{"shrec", "meek@2"},
			FaultRates: []float64{3e-4},
		},
		Trials: 12,
		Seed:   11,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byspec := map[string]Eval{}
	for _, ev := range res.Evals {
		byspec[ev.Spec] = ev
	}
	shrec, ok1 := byspec["SHREC+rate0.0003"]
	meek, ok2 := byspec["MEEK@2+rate0.0003"]
	if !ok1 || !ok2 {
		t.Fatalf("point specs drifted: %+v", res.Evals)
	}
	if !shrec.Covered || !meek.Covered {
		t.Fatalf("faulted points lack coverage: %+v / %+v", shrec, meek)
	}
	if meek.SDC != 0 {
		t.Fatalf("MEEK leaked %d silent corruptions", meek.SDC)
	}
	if meek.Coverage < shrec.Coverage {
		t.Fatalf("MEEK coverage %.3f below SHREC %.3f", meek.Coverage, shrec.Coverage)
	}
	if meek.Cost >= shrec.Cost {
		t.Fatalf("MEEK cost %.2f not below SHREC %.2f", meek.Cost, shrec.Cost)
	}
	onFrontier := false
	for _, ev := range res.FrontierEvals() {
		if ev.Spec == meek.Spec {
			onFrontier = true
		}
	}
	if !onFrontier {
		t.Fatalf("dominating MEEK point missing from the frontier: %+v", res.FrontierEvals())
	}
}
