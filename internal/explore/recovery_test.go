package explore

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// TestSpaceCkptEnumeration pins the checkpoint axes: enumeration order
// (depths vary faster than intervals, rates fastest of all), canonical
// spec strings with the k-suffix rendering, and the DecodeSpec
// round-trip that campaigns rely on for rate+ckpt combinations.
func TestSpaceCkptEnumeration(t *testing.T) {
	s := Space{
		Bases:         []string{"shrec"},
		CkptIntervals: []uint64{256, 1024},
		CkptDepths:    []int{1, 4},
		FaultRates:    []float64{0, 2e-4},
	}
	if got := s.Size(); got != 8 {
		t.Fatalf("size = %d, want 8", got)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"SHREC+ckpt256+depth1",
		"SHREC+rate0.0002+ckpt256+depth1",
		"SHREC+ckpt256+depth4",
		"SHREC+rate0.0002+ckpt256+depth4",
		"SHREC+ckpt1k+depth1",
		"SHREC+rate0.0002+ckpt1k+depth1",
		"SHREC+ckpt1k+depth4",
		"SHREC+rate0.0002+ckpt1k+depth4",
	}
	for i, pt := range pts {
		if pt.Spec != want[i] {
			t.Fatalf("point %d spec %q, want %q", i, pt.Spec, want[i])
		}
		m, rate, err := DecodeSpec(pt.Spec)
		if err != nil {
			t.Fatalf("DecodeSpec(%q): %v", pt.Spec, err)
		}
		if rate != pt.Rate || m.FaultRate != 0 {
			t.Fatalf("%q: rate %g (machine %g), want %g and 0", pt.Spec, rate, m.FaultRate, pt.Rate)
		}
		if m.CkptInterval != pt.Machine.CkptInterval || m.CkptDepth != pt.Machine.CkptDepth {
			t.Fatalf("%q decoded to ckpt %d/%d, want %d/%d", pt.Spec,
				m.CkptInterval, m.CkptDepth, pt.Machine.CkptInterval, pt.Machine.CkptDepth)
		}
	}
	// A zero interval enumerates the recovery-free comparison point.
	free := Space{Bases: []string{"shrec"}, CkptIntervals: []uint64{0, 4096}}
	pts, err = free.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Spec != "SHREC" || pts[1].Spec != "SHREC+ckpt4k" {
		t.Fatalf("zero-interval enumeration drifted: %+v", pts)
	}
}

// TestSpaceCkptValidation pins the static rejections for the checkpoint
// axes.
func TestSpaceCkptValidation(t *testing.T) {
	bad := []Space{
		// Interval below the capture floor.
		{Bases: []string{"shrec"}, CkptIntervals: []uint64{32}},
		// Depth without an interval axis is meaningless.
		{Bases: []string{"shrec"}, CkptDepths: []int{2}},
		// Depth crossed with a zero interval would duplicate the
		// recovery-free point once per depth.
		{Bases: []string{"shrec"}, CkptIntervals: []uint64{0, 1024}, CkptDepths: []int{2}},
		// Depth outside the ring bound.
		{Bases: []string{"shrec"}, CkptIntervals: []uint64{1024}, CkptDepths: []int{0}},
		{Bases: []string{"shrec"}, CkptIntervals: []uint64{1024}, CkptDepths: []int{config.MaxCkptDepth + 1}},
	}
	for i, s := range bad {
		if _, err := s.Points(); err == nil {
			t.Errorf("space %d accepted: %+v", i, s)
		}
	}
}

// TestCostCkptTerm pins that checkpoint hardware is charged: a
// checkpointed machine costs more than its base, and retaining more
// checkpoints costs more still.
func TestCostCkptTerm(t *testing.T) {
	base := Cost(config.SHREC())
	one := Cost(config.SHREC().WithCkptInterval(1024))
	deep := Cost(config.SHREC().WithCkptInterval(1024).WithCkptDepth(8))
	if one <= base {
		t.Fatalf("checkpointed cost %g not above base %g", one, base)
	}
	if deep <= one {
		t.Fatalf("depth-8 cost %g not above depth-1 %g", deep, one)
	}
}

// TestAvailabilityObjective is the frontier-with-availability acceptance
// test: a grid over a checkpoint-interval axis crossed with a fault rate
// yields availability estimates with confidence bounds on checkpointed
// points, leaves the recovery-free point without one, and reports the
// extra objective.
func TestAvailabilityObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fault campaigns; full tier only")
	}
	spec := Spec{
		Space: Space{
			Bases:         []string{"shrec"},
			CkptIntervals: []uint64{0, 256, 1024},
			FaultRates:    []float64{2e-4},
		},
		Trials: 12,
		Seed:   7,
	}
	if !spec.hasAvailability() {
		t.Fatal("spec sweeps recovery under fault injection but hasAvailability is false")
	}
	res, err := New(sim.NewSuite(quickOpts())).Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 3 {
		t.Fatalf("evaluated %d points, want 3", len(res.Evals))
	}
	byspec := map[string]Eval{}
	for _, ev := range res.Evals {
		byspec[ev.Spec] = ev
	}
	plain, ok := byspec["SHREC+rate0.0002"]
	if !ok {
		t.Fatalf("recovery-free point spec drifted: %+v", res.Evals)
	}
	if plain.Availed || plain.Avail != 0 {
		t.Fatalf("recovery-free point carries an availability estimate: %+v", plain)
	}
	for _, name := range []string{"SHREC+rate0.0002+ckpt256", "SHREC+rate0.0002+ckpt1k"} {
		ev, ok := byspec[name]
		if !ok {
			t.Fatalf("checkpointed point %q missing: %+v", name, res.Evals)
		}
		if !ev.Availed {
			t.Fatalf("checkpointed faulted point %q carries no availability", name)
		}
		if !(0 < ev.AvailLo && ev.AvailLo <= ev.Avail && ev.Avail <= ev.AvailHi && ev.AvailHi <= 1) {
			t.Fatalf("%q availability bounds disordered: %g [%g, %g]",
				name, ev.Avail, ev.AvailLo, ev.AvailHi)
		}
		if !ev.Covered {
			t.Fatalf("checkpointed faulted point %q lacks coverage", name)
		}
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// A checkpointed point must make the frontier: it is the only kind
	// with a non-zero availability objective, so it cannot be dominated.
	onFrontier := false
	for _, ev := range res.FrontierEvals() {
		if ev.Availed {
			onFrontier = true
		}
	}
	if !onFrontier {
		t.Fatalf("no checkpointed point on the frontier: %+v", res.FrontierEvals())
	}
	text := res.Report().String()
	for _, want := range []string{"avail%", "availability"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report lacks %q:\n%s", want, text)
		}
	}
}
