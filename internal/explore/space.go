package explore

import (
	"fmt"

	"repro/internal/config"
)

// Space is a typed, enumerable parameter space over config.Machine: the
// cross product of a set of base machines with optional modifier axes.
// An empty axis means "keep the base machine's value", so the zero axes
// contribute nothing to the product. The enumeration order is fixed —
// bases vary slowest, then CheckerLanes, Contexts, RegionDuties, XScales,
// Staggers, FUScales, MSHRs, MemPorts, CkptIntervals, CkptDepths, and
// FaultRates fastest — so point index i names the same configuration on
// every run, which is what lets an interrupted exploration resume from
// the store. (Axes left empty consume no digit, so adding an axis family
// to the type never renumbers existing spaces.)
type Space struct {
	// Bases are machine specification strings (config.ByName): named
	// machines ("ss1", "shrec", "ss2+sc") or full specs with modifiers.
	Bases []string `json:"bases"`
	// CheckerLanes sweeps the MEEK checker-lane count
	// (Machine.WithCheckerLanes). The axis requires every base to be a
	// MEEK machine — lanes mean nothing elsewhere, and a silent skip
	// would enumerate duplicate points.
	CheckerLanes []int `json:"checker_lanes,omitempty"`
	// Contexts sweeps the SHREC hardware checker contexts
	// (Machine.WithContexts); it requires SHREC-mode bases (shrec or
	// diva). An entry of 1 keeps the point's classic single-context
	// checker, so one axis can compare stall-absorbing contexts against
	// the baseline scan.
	Contexts []int `json:"contexts,omitempty"`
	// RegionDuties sweeps the FLEX checked-region duty cycle in (0,1)
	// (Machine.WithRegionDuty, holding the base's period); it requires
	// FLEX bases.
	RegionDuties []float64 `json:"region_duties,omitempty"`
	// XScales scales issue width, the FU pool, and memory ports together
	// (Machine.WithXScale; the paper's X factor as a continuum).
	XScales []float64 `json:"xscales,omitempty"`
	// Staggers sweeps the maximum dispatch stagger (Machine.WithStagger).
	Staggers []int `json:"staggers,omitempty"`
	// FUScales scales the functional-unit pool alone
	// (Machine.WithFUScale), separating FU pressure from issue bandwidth.
	FUScales []float64 `json:"fu_scales,omitempty"`
	// MSHRs sweeps the data-side MSHR file size (Machine.WithMSHRs).
	MSHRs []int `json:"mshrs,omitempty"`
	// MemPorts sweeps the memory port count (Machine.WithMemPorts).
	MemPorts []int `json:"mem_ports,omitempty"`
	// CkptIntervals sweeps the recovery checkpoint interval in retired
	// instructions (Machine.WithCkptInterval). A zero entry keeps the
	// point recovery-free, so one axis can compare "no recovery" against
	// policies; non-zero entries must clear config.MinCkptInterval.
	// Crossed with FaultRates, checkpointed points gain an availability
	// objective from their campaigns.
	CkptIntervals []uint64 `json:"ckpt_intervals,omitempty"`
	// CkptDepths sweeps the retained-checkpoint ring depth
	// (Machine.WithCkptDepth). It requires a CkptIntervals axis with only
	// non-zero entries — depth without an interval is meaningless, and a
	// zero-interval entry would enumerate duplicate recovery-free points.
	CkptDepths []int `json:"ckpt_depths,omitempty"`
	// FaultRates sweeps the per-instruction fault-injection rate. A
	// non-zero rate gives the point a campaign-derived coverage
	// objective; zero keeps the point performance-only.
	FaultRates []float64 `json:"fault_rates,omitempty"`
}

// Point is one enumerated machine configuration of a Space.
type Point struct {
	// Index is the point's position in the space's enumeration order.
	Index int
	// Machine is the structural configuration (fault-free; a point's
	// fault rate lives in Rate so golden runs and campaigns can share
	// the same structural machine).
	Machine config.Machine
	// Rate is the point's fault-injection rate (0 = no injection).
	Rate float64
	// Spec is the point's canonical specification string: the machine's
	// spec, with a "+rate" modifier when Rate is non-zero. It is
	// accepted by config.ByName / DecodeSpec, keys the point's persisted
	// evaluation, and labels its report rows.
	Spec string
}

// axisLen treats an empty axis as the single "keep base" element.
func axisLen(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// Size returns the number of points in the space.
func (s Space) Size() int {
	n := len(s.Bases)
	for _, l := range []int{len(s.CheckerLanes), len(s.Contexts), len(s.RegionDuties),
		len(s.XScales), len(s.Staggers), len(s.FUScales),
		len(s.MSHRs), len(s.MemPorts), len(s.CkptIntervals), len(s.CkptDepths),
		len(s.FaultRates)} {
		n *= axisLen(l)
	}
	return n
}

// validate checks the axes without building any point.
func (s Space) validate() error {
	if len(s.Bases) == 0 {
		return fmt.Errorf("explore: space has no base machines")
	}
	for _, b := range s.Bases {
		m, err := config.ByName(b)
		if err != nil {
			return fmt.Errorf("explore: base %q: %w", b, err)
		}
		// The mode-specific axes bind to every base; an incompatible base
		// would enumerate duplicate (or impossible) points, so the whole
		// space is rejected with the conflict named.
		if len(s.CheckerLanes) > 0 && m.Mode != config.ModeMEEK {
			return fmt.Errorf("explore: checker_lanes axis requires MEEK bases; base %q is %s", b, m.Mode)
		}
		if len(s.Contexts) > 0 && m.Mode != config.ModeSHREC {
			return fmt.Errorf("explore: contexts axis requires SHREC-mode bases (shrec or diva); base %q is %s", b, m.Mode)
		}
		if len(s.RegionDuties) > 0 && m.Mode != config.ModeFLEX {
			return fmt.Errorf("explore: region_duties axis requires FLEX bases; base %q is %s", b, m.Mode)
		}
	}
	for _, n := range s.CheckerLanes {
		if n < 1 || n > config.MaxCheckerLanes {
			return fmt.Errorf("explore: checker lane count %d out of [1,%d]", n, config.MaxCheckerLanes)
		}
	}
	for _, n := range s.Contexts {
		if n < 1 || n > config.MaxContexts {
			return fmt.Errorf("explore: context count %d out of [1,%d]", n, config.MaxContexts)
		}
	}
	for _, d := range s.RegionDuties {
		if d <= 0 || d >= 1 {
			return fmt.Errorf("explore: region duty %g outside (0,1)", d)
		}
	}
	for _, x := range s.XScales {
		if x <= 0 {
			return fmt.Errorf("explore: non-positive xscale %g", x)
		}
	}
	for _, n := range s.Staggers {
		if n < 0 {
			return fmt.Errorf("explore: negative stagger %d", n)
		}
	}
	for _, f := range s.FUScales {
		if f <= 0 {
			return fmt.Errorf("explore: non-positive fu scale %g", f)
		}
	}
	for _, n := range s.MSHRs {
		if n < 1 {
			return fmt.Errorf("explore: non-positive mshr count %d", n)
		}
	}
	for _, n := range s.MemPorts {
		if n < 1 {
			return fmt.Errorf("explore: non-positive port count %d", n)
		}
	}
	for _, n := range s.CkptIntervals {
		if n > 0 && n < config.MinCkptInterval {
			return fmt.Errorf("explore: checkpoint interval %d below minimum %d", n, config.MinCkptInterval)
		}
	}
	if len(s.CkptDepths) > 0 {
		if len(s.CkptIntervals) == 0 {
			return fmt.Errorf("explore: ckpt_depths axis requires a ckpt_intervals axis")
		}
		for _, n := range s.CkptIntervals {
			if n == 0 {
				return fmt.Errorf("explore: ckpt_depths axis forbids a zero checkpoint interval (it would enumerate duplicate recovery-free points)")
			}
		}
		for _, d := range s.CkptDepths {
			if d < 1 || d > config.MaxCkptDepth {
				return fmt.Errorf("explore: checkpoint depth %d out of [1,%d]", d, config.MaxCkptDepth)
			}
		}
	}
	for _, r := range s.FaultRates {
		if r < 0 || r > 1 {
			return fmt.Errorf("explore: fault rate %g out of [0,1]", r)
		}
	}
	return nil
}

// Point builds the i-th point of the enumeration. The index decodes as a
// mixed-radix number over the axes, bases slowest.
func (s Space) Point(i int) (Point, error) {
	if i < 0 || i >= s.Size() {
		return Point{}, fmt.Errorf("explore: point %d outside space of %d", i, s.Size())
	}
	// Peel digits fastest-axis-first.
	rem := i
	digit := func(n int) int {
		if n == 0 {
			return 0
		}
		d := rem % n
		rem /= n
		return d
	}
	ri := digit(len(s.FaultRates))
	di := digit(len(s.CkptDepths))
	ci := digit(len(s.CkptIntervals))
	pi := digit(len(s.MemPorts))
	mi := digit(len(s.MSHRs))
	fi := digit(len(s.FUScales))
	si := digit(len(s.Staggers))
	xi := digit(len(s.XScales))
	gi := digit(len(s.RegionDuties))
	ki := digit(len(s.Contexts))
	li := digit(len(s.CheckerLanes))
	bi := rem

	m, err := config.ByName(s.Bases[bi])
	if err != nil {
		return Point{}, fmt.Errorf("explore: base %q: %w", s.Bases[bi], err)
	}
	if len(s.CheckerLanes) > 0 {
		m = m.WithCheckerLanes(s.CheckerLanes[li])
	}
	if len(s.Contexts) > 0 && s.Contexts[ki] > 1 {
		// An entry of 1 is the classic single-context checker: the base
		// machine unchanged.
		m = m.WithContexts(s.Contexts[ki])
	}
	if len(s.RegionDuties) > 0 {
		m = m.WithRegionDuty(s.RegionDuties[gi])
	}
	if len(s.XScales) > 0 {
		m = m.WithXScale(s.XScales[xi])
	}
	if len(s.Staggers) > 0 {
		m = m.WithStagger(s.Staggers[si])
	}
	if len(s.FUScales) > 0 {
		m = m.WithFUScale(s.FUScales[fi])
	}
	if len(s.MSHRs) > 0 {
		m = m.WithMSHRs(s.MSHRs[mi])
	}
	if len(s.MemPorts) > 0 {
		m = m.WithMemPorts(s.MemPorts[pi])
	}
	if len(s.CkptIntervals) > 0 && s.CkptIntervals[ci] > 0 {
		m = m.WithCkptInterval(s.CkptIntervals[ci])
		if len(s.CkptDepths) > 0 {
			m = m.WithCkptDepth(s.CkptDepths[di])
		}
	}
	if err := m.Validate(); err != nil {
		return Point{}, fmt.Errorf("explore: point %d: %w", i, err)
	}
	pt := Point{Index: i, Machine: m, Spec: m.Spec()}
	if len(s.FaultRates) > 0 && s.FaultRates[ri] > 0 {
		pt.Rate = s.FaultRates[ri]
		pt.Spec = m.WithFaultRate(pt.Rate).Spec()
	}
	// Every point must honor the canonical-spec contract: the spec string
	// round-trips to exactly this configuration, because campaigns, store
	// keys, and shrecd responses all re-parse it. The one way to break it
	// is a base that already carries a modifier an axis re-applies
	// ("shrec@x1.4" crossed with XScales), whose chained rounding defeats
	// canonical naming — reject the space rather than fail mid-run.
	dm, drate, err := DecodeSpec(pt.Spec)
	if err == nil {
		a, b := dm, m
		a.Name, b.Name = "", ""
		if a != b || drate != pt.Rate {
			err = fmt.Errorf("explore: spec %q does not reproduce the machine", pt.Spec)
		}
	}
	if err != nil {
		return Point{}, fmt.Errorf("explore: point %d (%q) has no canonical spec — the base %q already carries a modifier an axis re-applies: %w",
			i, pt.Spec, s.Bases[bi], err)
	}
	return pt, nil
}

// Points enumerates the whole space in index order.
func (s Space) Points() ([]Point, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out := make([]Point, s.Size())
	for i := range out {
		pt, err := s.Point(i)
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}

// DecodeSpec parses a point's canonical specification string back into
// its structural machine and fault rate — the inverse of Point.Spec. The
// rate is stripped through the grammar (config.Machine.WithoutRate), so
// any modifier order parses and the returned machine's name is canonical;
// an earlier version excised the "+rate" substring by hand and broke
// whenever another token rendered after it.
func DecodeSpec(spec string) (config.Machine, float64, error) {
	full, err := config.ByName(spec)
	if err != nil {
		return config.Machine{}, 0, fmt.Errorf("explore: %w", err)
	}
	return full.WithoutRate(), full.FaultRate, nil
}
