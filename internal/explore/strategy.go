package explore

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// strategy is the one interface both searches implement: given the run,
// decide — running whatever cheaper passes it needs — which points
// receive a full-fidelity evaluation. The engine evaluates the returned
// points and extracts the frontier; a strategy never returns more points
// than the spec's budget.
type strategy interface {
	// name is the spec string selecting this strategy.
	name() string
	// plan returns the points to evaluate at full fidelity.
	plan(ctx context.Context, r *run) ([]Point, error)
}

// strategyFor resolves a normalized strategy name.
func strategyFor(name string) (strategy, error) {
	switch name {
	case StrategyGrid:
		return gridStrategy{}, nil
	case StrategyHalving:
		return halvingStrategy{}, nil
	}
	return nil, fmt.Errorf("explore: unknown strategy %q (have %v)", name, Strategies())
}

// gridStrategy evaluates the whole space exhaustively. Normalization has
// already verified the space fits the budget.
type gridStrategy struct{}

func (gridStrategy) name() string { return StrategyGrid }

func (gridStrategy) plan(_ context.Context, r *run) ([]Point, error) {
	return r.points, nil
}

// halvingStrategy is seeded successive halving: every point is screened
// at run lengths divided by ScreenDiv, the screened evaluations are
// ranked by Pareto dominance (stats.ParetoRanks over the same objectives
// the frontier uses, so a cheap-but-slow frontier candidate is never
// starved out by a single scalar score), and the top half — capped by
// the budget — graduates to full fidelity. Ties within a rank break by
// a permutation derived from the exploration seed, so the survivor set
// is a pure function of (spec, seed).
type halvingStrategy struct{}

func (halvingStrategy) name() string { return StrategyHalving }

func (halvingStrategy) plan(ctx context.Context, r *run) ([]Point, error) {
	screen, err := r.evalAll(ctx, r.points, true)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.screen = screen
	r.mu.Unlock()

	// The screen skips campaigns, so its objectives are IPC and cost
	// even when the space injects faults; coverage is measured on the
	// survivors at full fidelity.
	vecs := make([][]float64, len(screen))
	for i, ev := range screen {
		vecs[i] = objectives(ev, false, false)
	}
	ranks := stats.ParetoRanks(vecs)

	// Seeded deterministic tie-break within each rank.
	perm := seededPerm(len(screen), r.spec.Seed)
	order := make([]int, len(screen))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if ranks[ia] != ranks[ib] {
			return ranks[ia] < ranks[ib]
		}
		return perm[ia] < perm[ib]
	})

	keep := (len(r.points) + 1) / 2
	if keep > r.spec.Budget {
		keep = r.spec.Budget
	}
	if keep > len(order) {
		keep = len(order)
	}
	survivors := make([]Point, keep)
	for i := 0; i < keep; i++ {
		survivors[i] = r.points[order[i]]
	}
	return survivors, nil
}

// seededPerm returns a deterministic pseudo-random permutation priority
// for n elements (Fisher-Yates over the splitmix stream).
func seededPerm(n int, seed uint64) []int {
	r := rng.New(seed ^ 0x5EEDED)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Invert: priority[point] = position in the shuffled order.
	prio := make([]int, n)
	for pos, p := range perm {
		prio[p] = pos
	}
	return prio
}
