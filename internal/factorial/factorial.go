// Package factorial implements the 2^k full factorial analysis of
// Box, Hunter & Hunter ("Statistics for Experimenters") that the paper's
// Section 3.3 applies to the sixteen SS2 configurations.
//
// Given a response (CPI) measured at every combination of k two-level
// factors, the analysis separates the average effect of each factor from
// the effects of factor interactions. Responses are indexed by bitmask:
// bit i set means factor i is at its high level.
package factorial

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Analysis holds the decomposed effects of one 2^k design.
type Analysis struct {
	// Factors are the factor names, index-aligned with response bitmasks.
	Factors []string
	// GrandMean is the mean response over all 2^k configurations.
	GrandMean float64
	// Effects maps each non-empty factor subset (bitmask) to its effect
	// in response units: the average change in response when the subset's
	// factors move from low to high (for interactions, the standard
	// Box-Hunter contrast).
	Effects map[uint]float64
}

// Analyze runs the 2^k factorial decomposition. responses must have length
// 2^len(factors), indexed by factor bitmask.
func Analyze(factors []string, responses []float64) (*Analysis, error) {
	k := len(factors)
	if k == 0 || k > 16 {
		return nil, fmt.Errorf("factorial: %d factors unsupported", k)
	}
	n := 1 << k
	if len(responses) != n {
		return nil, fmt.Errorf("factorial: need %d responses for %d factors, got %d", n, k, len(responses))
	}
	a := &Analysis{
		Factors: append([]string(nil), factors...),
		Effects: make(map[uint]float64, n-1),
	}
	var sum float64
	for _, y := range responses {
		sum += y
	}
	a.GrandMean = sum / float64(n)

	// Effect of subset S: (2/n) * sum over configs c of y(c) * sign(c,S),
	// where sign is +1 when an even number of S's factors are at the low
	// level... equivalently product over i in S of (+1 if bit set else -1).
	half := float64(n) / 2
	for s := uint(1); s < uint(n); s++ {
		var contrast float64
		for c := 0; c < n; c++ {
			if bits.OnesCount(uint(c)&s)%2 == bits.OnesCount(s)%2 {
				contrast += responses[c]
			} else {
				contrast -= responses[c]
			}
		}
		a.Effects[s] = contrast / half
	}
	return a, nil
}

// EffectPct returns the effect of subset mask as a percentage of the grand
// mean response. For a CPI response, a negative percentage is a speedup;
// the paper reports the magnitude of the CPI decrease, which is
// -EffectPct for beneficial factors.
func (a *Analysis) EffectPct(mask uint) float64 {
	if a.GrandMean == 0 {
		return 0
	}
	return 100 * a.Effects[mask] / a.GrandMean
}

// MaskFor returns the bitmask for a named subset like "X" or "X+S".
func (a *Analysis) MaskFor(names ...string) (uint, error) {
	var mask uint
	for _, want := range names {
		found := false
		for i, f := range a.Factors {
			if f == want {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("factorial: unknown factor %q", want)
		}
	}
	return mask, nil
}

// SubsetName renders a bitmask like "X+S".
func (a *Analysis) SubsetName(mask uint) string {
	var parts []string
	for i, f := range a.Factors {
		if mask&(1<<uint(i)) != 0 {
			parts = append(parts, f)
		}
	}
	return strings.Join(parts, "+")
}

// Effect is one named effect, used for sorted reporting.
type Effect struct {
	Mask uint
	Name string
	// PctDecrease is the percentage CPI decrease (performance increase)
	// attributed to enabling the subset: positive is beneficial.
	PctDecrease float64
	// Order is the number of factors in the subset (1 = main effect).
	Order int
}

// Significant returns all effects whose magnitude exceeds thresholdPct,
// sorted by descending benefit, matching the paper's Table 3 presentation
// (it reports effects > 3%).
func (a *Analysis) Significant(thresholdPct float64) []Effect {
	var out []Effect
	for mask := range a.Effects {
		pct := -a.EffectPct(mask) // CPI decrease = negative effect on CPI
		if pct >= thresholdPct || pct <= -thresholdPct {
			out = append(out, Effect{
				Mask:        mask,
				Name:        a.SubsetName(mask),
				PctDecrease: pct,
				Order:       bits.OnesCount(mask),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PctDecrease != out[j].PctDecrease {
			return out[i].PctDecrease > out[j].PctDecrease
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}
