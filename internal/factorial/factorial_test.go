package factorial

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Planting a purely additive model must recover exactly the planted main
// effects and zero interactions.
func TestRecoversAdditiveModel(t *testing.T) {
	factors := []string{"X", "S", "C", "B"}
	// CPI = 10 - 2*X - 1*S - 3*C - 0.5*B
	resp := make([]float64, 16)
	for c := 0; c < 16; c++ {
		y := 10.0
		if c&1 != 0 {
			y -= 2
		}
		if c&2 != 0 {
			y -= 1
		}
		if c&4 != 0 {
			y -= 3
		}
		if c&8 != 0 {
			y -= 0.5
		}
		resp[c] = y
	}
	a, err := Analyze(factors, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.GrandMean, 10-1-0.5-1.5-0.25, 1e-12) {
		t.Fatalf("grand mean = %v", a.GrandMean)
	}
	wantMain := map[string]float64{"X": -2, "S": -1, "C": -3, "B": -0.5}
	for name, want := range wantMain {
		mask, err := a.MaskFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Effects[mask]; !approx(got, want, 1e-9) {
			t.Errorf("effect[%s] = %v, want %v", name, got, want)
		}
	}
	// All interactions must vanish.
	for mask, eff := range a.Effects {
		if a.SubsetName(mask) != "X" && a.SubsetName(mask) != "S" &&
			a.SubsetName(mask) != "C" && a.SubsetName(mask) != "B" {
			if !approx(eff, 0, 1e-9) {
				t.Errorf("interaction %s = %v, want 0", a.SubsetName(mask), eff)
			}
		}
	}
}

// Planting a pure two-factor interaction must recover it and nothing else.
func TestRecoversInteraction(t *testing.T) {
	factors := []string{"A", "B"}
	// y = 5 + 1.5*(A xor-interaction B): contributes +1.5 when both or
	// neither are high with the standard coding y = mean + (eff/2)*sA*sB.
	resp := make([]float64, 4)
	for c := 0; c < 4; c++ {
		sA, sB := -1.0, -1.0
		if c&1 != 0 {
			sA = 1
		}
		if c&2 != 0 {
			sB = 1
		}
		resp[c] = 5 + 1.5/2*sA*sB
	}
	a, err := Analyze(factors, resp)
	if err != nil {
		t.Fatal(err)
	}
	maskAB, _ := a.MaskFor("A", "B")
	if got := a.Effects[maskAB]; !approx(got, 1.5, 1e-9) {
		t.Fatalf("interaction = %v, want 1.5", got)
	}
	maskA, _ := a.MaskFor("A")
	if got := a.Effects[maskA]; !approx(got, 0, 1e-9) {
		t.Fatalf("main effect A = %v, want 0", got)
	}
}

// The full model must reconstruct every response:
// y(c) = mean + sum over subsets S of eff(S)/2^|S| * prod sign... with
// standard orthogonal coding, y(c) = mean + 1/2 * sum eff(S)*sign(c,S).
func TestModelReconstruction(t *testing.T) {
	r := rng.New(77)
	factors := []string{"X", "S", "C", "B"}
	f := func(seed uint32) bool {
		r.Seed(uint64(seed))
		resp := make([]float64, 16)
		for i := range resp {
			resp[i] = 1 + 9*r.Float64()
		}
		a, err := Analyze(factors, resp)
		if err != nil {
			return false
		}
		for c := 0; c < 16; c++ {
			y := a.GrandMean
			for s := uint(1); s < 16; s++ {
				sign := 1.0
				if popcount(uint(c)&s)%2 != popcount(s)%2 {
					sign = -1
				}
				y += a.Effects[s] / 2 * sign
			}
			if !approx(y, resp[c], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestSignificantSortingAndThreshold(t *testing.T) {
	factors := []string{"X", "C"}
	// X lowers CPI by 4 (40% of mean 10), C by 1 (10%), interaction 0.
	resp := []float64{12.5, 8.5, 11.5, 7.5}
	a, err := Analyze(factors, resp)
	if err != nil {
		t.Fatal(err)
	}
	sig := a.Significant(15)
	if len(sig) != 1 || sig[0].Name != "X" {
		t.Fatalf("significant(15%%) = %+v", sig)
	}
	sig = a.Significant(5)
	if len(sig) != 2 || sig[0].Name != "X" || sig[1].Name != "C" {
		t.Fatalf("significant(5%%) = %+v", sig)
	}
	if sig[0].PctDecrease < sig[1].PctDecrease {
		t.Fatal("not sorted by benefit")
	}
	if sig[0].Order != 1 {
		t.Fatal("main effect order wrong")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Fatal("no factors accepted")
	}
	if _, err := Analyze([]string{"A"}, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong response count accepted")
	}
}

func TestMaskFor(t *testing.T) {
	a, _ := Analyze([]string{"X", "S"}, []float64{1, 2, 3, 4})
	if _, err := a.MaskFor("nope"); err == nil {
		t.Fatal("unknown factor accepted")
	}
	m, err := a.MaskFor("X", "S")
	if err != nil || m != 3 {
		t.Fatalf("mask = %d, err=%v", m, err)
	}
	if a.SubsetName(3) != "X+S" {
		t.Fatalf("subset name = %q", a.SubsetName(3))
	}
}

func TestEffectPct(t *testing.T) {
	a, _ := Analyze([]string{"X"}, []float64{10, 5})
	mask, _ := a.MaskFor("X")
	// Effect = -5, grand mean = 7.5 -> -66.7%.
	if got := a.EffectPct(mask); !approx(got, -100*5/7.5, 1e-9) {
		t.Fatalf("pct = %v", got)
	}
}
