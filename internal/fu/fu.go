// Package fu models the functional units of the paper's Table 1: 8 integer
// ALUs (1-cycle), 2 integer multiply/divide units (3-cycle multiply,
// 19-cycle unpipelined divide), 2 floating-point adders (2-cycle), and 2
// floating-point multiply/divide units (4-cycle multiply, 12-cycle
// unpipelined divide). All units are pipelined except the divides, which
// occupy their unit for the full latency.
//
// The pool arbitrates per cycle: each pipelined unit accepts one new
// operation per cycle; an unpipelined operation blocks its unit until done.
// The SHREC checker and the out-of-order pipeline share one pool, which is
// exactly the contention the paper studies.
package fu

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Class identifies a functional unit type. Note that several op classes
// share a unit class (multiply and divide share IMULDIV; FP multiply and
// divide share FMULDIV), matching Table 1.
type Class uint8

const (
	// IALU executes integer ALU ops, branch resolution, and address
	// generation.
	IALU Class = iota
	// IMULDIV executes integer multiplies (pipelined) and divides
	// (unpipelined).
	IMULDIV
	// FADD executes floating-point adds.
	FADD
	// FMULDIV executes floating-point multiplies (pipelined) and divides
	// (unpipelined).
	FMULDIV
	// NumClasses is the number of functional unit classes.
	NumClasses = int(FMULDIV) + 1
)

var classNames = [NumClasses]string{"IALU", "IMULDIV", "FADD", "FMULDIV"}

// String returns the unit class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("fuclass(%d)", uint8(c))
}

// ClassFor maps an operation class to the functional unit class that
// executes it. Loads and stores use an IALU for address generation (their
// memory timing is handled by the cache hierarchy).
func ClassFor(op isa.OpClass) Class {
	switch op {
	case isa.OpIALU, isa.OpLoad, isa.OpStore, isa.OpBranch:
		return IALU
	case isa.OpIMul, isa.OpIDiv:
		return IMULDIV
	case isa.OpFAdd:
		return FADD
	case isa.OpFMul, isa.OpFDiv:
		return FMULDIV
	}
	panic(fmt.Sprintf("fu: unmapped op class %v", op))
}

// Config gives the unit count per class and execution latencies per op
// class.
type Config struct {
	// Counts is the number of units per class.
	Counts [NumClasses]int
	// Latency is the execution latency per op class in cycles. Loads and
	// stores use the address-generation latency here; cache time is added
	// by the memory model.
	Latency [isa.NumOpClasses]int
}

// DefaultConfig returns the Table 1 functional units.
func DefaultConfig() Config {
	var c Config
	c.Counts[IALU] = 8
	c.Counts[IMULDIV] = 2
	c.Counts[FADD] = 2
	c.Counts[FMULDIV] = 2
	c.Latency[isa.OpIALU] = 1
	c.Latency[isa.OpIMul] = 3
	c.Latency[isa.OpIDiv] = 19
	c.Latency[isa.OpFAdd] = 2
	c.Latency[isa.OpFMul] = 4
	c.Latency[isa.OpFDiv] = 12
	c.Latency[isa.OpLoad] = 1  // address generation
	c.Latency[isa.OpStore] = 1 // address generation
	c.Latency[isa.OpBranch] = 1
	return c
}

// Scale returns a copy of the config with unit counts multiplied by f and
// rounded to the nearest integer, with a floor of one unit per class. The
// paper's Figure 8 sweeps 0.5X to 2X.
func (c Config) Scale(f float64) Config {
	out := c
	for i := range out.Counts {
		n := int(float64(c.Counts[i])*f + 0.5)
		if n < 1 {
			n = 1
		}
		out.Counts[i] = n
	}
	return out
}

// Double returns the config with all unit counts doubled (the X-factor).
func (c Config) Double() Config { return c.Scale(2) }

// Pool tracks per-cycle and multi-cycle unit occupancy. The pipeline calls
// BeginCycle each cycle, then TryIssue for each candidate instruction.
type Pool struct {
	cfg Config
	// busyUntil holds, per unit, the cycle after which the unit can
	// accept a new operation (for unpipelined ops). Pipelined units are
	// limited only by the per-cycle issue reservation below.
	busyUntil [NumClasses][]int64
	// usedThisCycle counts per-class issues this cycle; each unit accepts
	// at most one new op per cycle.
	usedThisCycle [NumClasses]int
	cycle         int64

	issued  [NumClasses]uint64
	refused [NumClasses]uint64
}

// NewPool builds a pool from cfg.
func NewPool(cfg Config) *Pool {
	p := &Pool{cfg: cfg}
	for c := 0; c < NumClasses; c++ {
		if cfg.Counts[c] <= 0 {
			panic(fmt.Sprintf("fu: class %v has no units", Class(c)))
		}
		p.busyUntil[c] = make([]int64, cfg.Counts[c])
	}
	return p
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

// Clone returns a deep copy of the pool, including in-flight unpipelined
// occupancy and statistics (used by simulation checkpoints).
func (p *Pool) Clone() *Pool {
	c := *p
	for cl := range c.busyUntil {
		c.busyUntil[cl] = append([]int64(nil), p.busyUntil[cl]...)
	}
	return &c
}

// BeginCycle resets per-cycle issue reservations.
func (p *Pool) BeginCycle(now int64) {
	if now != p.cycle {
		p.cycle = now
		for c := range p.usedThisCycle {
			p.usedThisCycle[c] = 0
		}
	}
}

// Available reports whether a unit of the class executing op could accept a
// new operation this cycle, without reserving it.
func (p *Pool) Available(now int64, op isa.OpClass) bool {
	c := ClassFor(op)
	_, ok := p.findFree(now, c)
	return ok
}

// findFree returns the first unit of class c not held by an unpipelined
// operation, and whether a new op may start this cycle. Units within a
// class are interchangeable: each unit not held by an unpipelined op can
// accept one new operation per cycle, so the per-cycle budget is the free
// unit count. usedThisCycle counts pipelined issues only; unpipelined
// issues shrink the free set directly via busyUntil.
func (p *Pool) findFree(now int64, c Class) (unit int, ok bool) {
	freeCount := 0
	firstFree := -1
	for u, until := range p.busyUntil[c] {
		if until <= now {
			if firstFree < 0 {
				firstFree = u
			}
			freeCount++
		}
	}
	if p.usedThisCycle[c] >= freeCount {
		return -1, false
	}
	return firstFree, true
}

// TryIssue attempts to claim a unit for op at cycle now. On success it
// returns the completion cycle. Unpipelined ops (divides) hold the unit
// until completion.
func (p *Pool) TryIssue(now int64, op isa.OpClass) (doneAt int64, ok bool) {
	c := ClassFor(op)
	u, free := p.findFree(now, c)
	if !free {
		p.refused[c]++
		return 0, false
	}
	p.issued[c]++
	lat := int64(p.cfg.Latency[op])
	done := now + lat
	if op.IsLongLatency() {
		p.busyUntil[c][u] = done
	} else {
		p.usedThisCycle[c]++
	}
	return done, true
}

// Latency returns the configured execution latency for op.
func (p *Pool) Latency(op isa.OpClass) int { return p.cfg.Latency[op] }

// NextCompletion returns the earliest cycle strictly after now at which a
// unit held by an unpipelined operation frees up, or math.MaxInt64 when no
// unit is held. Pipelined units are never held across cycles (their
// per-cycle reservations reset every cycle), so this is the pool's only
// self-scheduled future event — the cycle-skipping engine loop folds it
// into its event horizon.
func (p *Pool) NextCompletion(now int64) int64 {
	next := int64(math.MaxInt64)
	for c := range p.busyUntil {
		for _, until := range p.busyUntil[c] {
			if until > now && until < next {
				next = until
			}
		}
	}
	return next
}

// AddRefused adds k repetitions of the per-class refusal deltas d. The
// cycle-skipping engine loop uses it to account the issue attempts the
// reference per-cycle loop would have made during provably-idle stall
// cycles, keeping the refusal counters identical between the two loops.
func (p *Pool) AddRefused(d [NumClasses]uint64, k uint64) {
	for c := range d {
		p.refused[c] += d[c] * k
	}
}

// Issued returns the number of operations issued per class.
func (p *Pool) Issued() [NumClasses]uint64 { return p.issued }

// Refused returns the number of issue attempts refused per class.
func (p *Pool) Refused() [NumClasses]uint64 { return p.refused }

// Utilization returns, per class, issued operations divided by
// units*cycles — the average fraction of issue opportunities used over
// cycles cycles.
func (p *Pool) Utilization(cycles int64) [NumClasses]float64 {
	var out [NumClasses]float64
	if cycles <= 0 {
		return out
	}
	for c := 0; c < NumClasses; c++ {
		out[c] = float64(p.issued[c]) / (float64(p.cfg.Counts[c]) * float64(cycles))
	}
	return out
}

// ResetStats zeroes the issue counters without touching occupancy.
func (p *Pool) ResetStats() {
	p.issued = [NumClasses]uint64{}
	p.refused = [NumClasses]uint64{}
}
