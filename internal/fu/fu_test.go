package fu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestClassFor(t *testing.T) {
	cases := map[isa.OpClass]Class{
		isa.OpIALU:   IALU,
		isa.OpLoad:   IALU,
		isa.OpStore:  IALU,
		isa.OpBranch: IALU,
		isa.OpIMul:   IMULDIV,
		isa.OpIDiv:   IMULDIV,
		isa.OpFAdd:   FADD,
		isa.OpFMul:   FMULDIV,
		isa.OpFDiv:   FMULDIV,
	}
	for op, want := range cases {
		if got := ClassFor(op); got != want {
			t.Errorf("ClassFor(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Counts[IALU] != 8 || c.Counts[IMULDIV] != 2 || c.Counts[FADD] != 2 || c.Counts[FMULDIV] != 2 {
		t.Fatalf("counts = %v", c.Counts)
	}
	wantLat := map[isa.OpClass]int{
		isa.OpIALU: 1, isa.OpIMul: 3, isa.OpIDiv: 19,
		isa.OpFAdd: 2, isa.OpFMul: 4, isa.OpFDiv: 12,
	}
	for op, want := range wantLat {
		if got := c.Latency[op]; got != want {
			t.Errorf("latency[%v] = %d, want %d", op, got, want)
		}
	}
}

func TestScale(t *testing.T) {
	c := DefaultConfig()
	d := c.Double()
	if d.Counts[IALU] != 16 || d.Counts[FADD] != 4 {
		t.Fatalf("double = %v", d.Counts)
	}
	h := c.Scale(0.5)
	if h.Counts[IALU] != 4 || h.Counts[IMULDIV] != 1 {
		t.Fatalf("half = %v", h.Counts)
	}
	// Floor of one unit.
	tiny := c.Scale(0.01)
	for cl, n := range tiny.Counts {
		if n != 1 {
			t.Fatalf("scale floor violated for %v: %d", Class(cl), n)
		}
	}
	// Latencies unchanged.
	if d.Latency[isa.OpIDiv] != 19 {
		t.Fatal("scaling changed latency")
	}
}

func TestPerCyclePipelinedThroughput(t *testing.T) {
	p := NewPool(DefaultConfig())
	p.BeginCycle(0)
	// 8 IALUs accept exactly 8 ops in one cycle.
	for i := 0; i < 8; i++ {
		if _, ok := p.TryIssue(0, isa.OpIALU); !ok {
			t.Fatalf("IALU %d refused", i)
		}
	}
	if _, ok := p.TryIssue(0, isa.OpIALU); ok {
		t.Fatal("ninth IALU op accepted")
	}
	// Next cycle the pipelined units accept again.
	p.BeginCycle(1)
	if _, ok := p.TryIssue(1, isa.OpIALU); !ok {
		t.Fatal("IALU refused after cycle boundary")
	}
}

func TestUnpipelinedDivideBlocksUnit(t *testing.T) {
	p := NewPool(DefaultConfig())
	p.BeginCycle(0)
	done, ok := p.TryIssue(0, isa.OpFDiv)
	if !ok || done != 12 {
		t.Fatalf("fdiv = (%d, %v)", done, ok)
	}
	if _, ok := p.TryIssue(0, isa.OpFDiv); !ok {
		t.Fatal("second FMULDIV unit refused a divide")
	}
	// Both units now blocked: no FP multiply can start until cycle 12.
	for cyc := int64(1); cyc < 12; cyc++ {
		p.BeginCycle(cyc)
		if _, ok := p.TryIssue(cyc, isa.OpFMul); ok {
			t.Fatalf("fmul issued at cycle %d while both units divide", cyc)
		}
	}
	p.BeginCycle(12)
	if _, ok := p.TryIssue(12, isa.OpFMul); !ok {
		t.Fatal("fmul refused after divides completed")
	}
}

func TestMixedPipelinedUnpipelinedBudget(t *testing.T) {
	// One multiply then one divide in the same cycle: both fit on the two
	// IMULDIV units; a third op must be refused.
	p := NewPool(DefaultConfig())
	p.BeginCycle(0)
	if _, ok := p.TryIssue(0, isa.OpIMul); !ok {
		t.Fatal("imul refused")
	}
	if _, ok := p.TryIssue(0, isa.OpIDiv); !ok {
		t.Fatal("idiv refused with a second unit free")
	}
	if _, ok := p.TryIssue(0, isa.OpIMul); ok {
		t.Fatal("third op accepted on two units")
	}
	// Next cycle: divide holds one unit, so only one multiply fits.
	p.BeginCycle(1)
	if _, ok := p.TryIssue(1, isa.OpIMul); !ok {
		t.Fatal("imul refused with one unit free")
	}
	if _, ok := p.TryIssue(1, isa.OpIMul); ok {
		t.Fatal("second imul accepted while divide occupies a unit")
	}
}

func TestLatencies(t *testing.T) {
	p := NewPool(DefaultConfig())
	cases := map[isa.OpClass]int64{
		isa.OpIALU: 1, isa.OpIMul: 3, isa.OpFAdd: 2, isa.OpFMul: 4,
		isa.OpLoad: 1, isa.OpStore: 1, isa.OpBranch: 1,
	}
	cyc := int64(0)
	for op, lat := range cases {
		p.BeginCycle(cyc)
		done, ok := p.TryIssue(cyc, op)
		if !ok || done != cyc+lat {
			t.Errorf("%v: done=%d ok=%v, want %d", op, done, ok, cyc+lat)
		}
		cyc += 100
	}
}

func TestAvailableDoesNotReserve(t *testing.T) {
	p := NewPool(DefaultConfig())
	p.BeginCycle(0)
	for i := 0; i < 100; i++ {
		if !p.Available(0, isa.OpFAdd) {
			t.Fatal("Available consumed capacity")
		}
	}
}

func TestStats(t *testing.T) {
	p := NewPool(DefaultConfig())
	p.BeginCycle(0)
	p.TryIssue(0, isa.OpFAdd)
	p.TryIssue(0, isa.OpFAdd)
	p.TryIssue(0, isa.OpFAdd) // refused
	iss, ref := p.Issued(), p.Refused()
	if iss[FADD] != 2 || ref[FADD] != 1 {
		t.Fatalf("issued=%d refused=%d", iss[FADD], ref[FADD])
	}
	util := p.Utilization(1)
	if util[FADD] != 1.0 {
		t.Fatalf("FADD utilization = %v", util[FADD])
	}
	if p.Utilization(0)[FADD] != 0 {
		t.Fatal("zero-cycle utilization must be 0")
	}
}

func TestNewPoolPanicsOnEmptyClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var cfg Config
	cfg.Counts[IALU] = 0
	NewPool(cfg)
}

// Property: over any random issue sequence, per-class issues in one cycle
// never exceed the unit count, and unpipelined ops never overlap more than
// the unit count.
func TestIssueNeverExceedsCapacity(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPool(cfg)
	r := rng.New(11)
	ops := []isa.OpClass{
		isa.OpIALU, isa.OpIMul, isa.OpIDiv, isa.OpFAdd, isa.OpFMul, isa.OpFDiv,
	}
	for cyc := int64(0); cyc < 2000; cyc++ {
		p.BeginCycle(cyc)
		var perClass [NumClasses]int
		for try := 0; try < 20; try++ {
			op := ops[r.Intn(len(ops))]
			if _, ok := p.TryIssue(cyc, op); ok {
				perClass[ClassFor(op)]++
			}
		}
		for c := 0; c < NumClasses; c++ {
			if perClass[c] > cfg.Counts[c] {
				t.Fatalf("cycle %d: class %v issued %d > %d units",
					cyc, Class(c), perClass[c], cfg.Counts[c])
			}
		}
	}
}

func BenchmarkTryIssue(b *testing.B) {
	p := NewPool(DefaultConfig())
	for i := 0; i < b.N; i++ {
		now := int64(i / 8)
		p.BeginCycle(now)
		p.TryIssue(now, isa.OpIALU)
	}
}
