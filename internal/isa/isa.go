// Package isa defines the abstract instruction set used by the simulator.
//
// The simulator is trace driven: workloads are streams of dynamic
// instruction records rather than encoded machine instructions. Each record
// carries everything the timing model needs — an operation class (which
// selects a functional unit and latency), architectural register operands
// (which establish data dependencies at rename), and, for memory and
// control operations, the effective address or branch outcome.
//
// The operation classes mirror the Alpha-flavored mix the paper's Table 1
// provisions functional units for: integer ALU, integer multiply/divide,
// floating-point add, floating-point multiply/divide, loads, stores, and
// branches.
package isa

import "fmt"

// OpClass identifies the kind of operation an instruction performs. It
// determines which functional unit class executes it and with what latency.
type OpClass uint8

const (
	// OpIALU is a single-cycle integer operation (add, logical, shift,
	// compare). Branch condition evaluation and address generation also
	// use this class of unit.
	OpIALU OpClass = iota
	// OpIMul is a pipelined integer multiply.
	OpIMul
	// OpIDiv is an unpipelined integer divide.
	OpIDiv
	// OpFAdd is a pipelined floating-point add/subtract/convert/compare.
	OpFAdd
	// OpFMul is a pipelined floating-point multiply.
	OpFMul
	// OpFDiv is an unpipelined floating-point divide or square root.
	OpFDiv
	// OpLoad reads memory. Address generation occupies an issue slot and a
	// memory port; the access then proceeds through the cache hierarchy.
	OpLoad
	// OpStore writes memory. The address is generated at issue; the data
	// is committed to the cache at retirement.
	OpStore
	// OpBranch is a conditional or unconditional control transfer.
	OpBranch
	// NumOpClasses is the number of operation classes.
	NumOpClasses = int(OpBranch) + 1
)

var opNames = [NumOpClasses]string{
	"ialu", "imul", "idiv", "fadd", "fmul", "fdiv", "load", "store", "branch",
}

// String returns the lower-case mnemonic for the class.
func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMem reports whether the class accesses memory.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// IsFP reports whether the class executes on a floating-point unit.
func (c OpClass) IsFP() bool { return c == OpFAdd || c == OpFMul || c == OpFDiv }

// IsLongLatency reports whether the class is unpipelined in the baseline
// machine (divides block their functional unit for the full latency).
func (c OpClass) IsLongLatency() bool { return c == OpIDiv || c == OpFDiv }

// NumArchRegs is the size of the architectural register name space visible
// to the dependency model. Integer and floating-point names share one flat
// space for simplicity (the Alpha ISA the paper simulates has 32 integer
// plus 32 floating-point registers; exposing the combined 64-wide space —
// plus headroom the generator uses to express long dependency distances —
// keeps rename pressure realistic without modeling two register files).
const NumArchRegs = 128

// RegNone marks an absent register operand.
const RegNone int8 = -1

// Inst is one dynamic instruction in a workload trace.
//
// Register fields name architectural registers in [0, NumArchRegs) or
// RegNone. The rename stage converts them into producer links, so the
// timing model never consults register values — only availability times.
type Inst struct {
	// PC is the instruction's address, used for I-cache accesses and as
	// the branch predictor index.
	PC uint64
	// Class selects the functional unit and latency.
	Class OpClass
	// Dest is the destination register, or RegNone (stores, branches).
	Dest int8
	// Src1, Src2 are source registers, or RegNone.
	Src1, Src2 int8
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Taken is the actual outcome for branches.
	Taken bool
	// Target is the actual target address for taken branches (the
	// fall-through address otherwise).
	Target uint64
	// BranchKind distinguishes branch flavors for the predictor model.
	BranchKind BranchKind
}

// BranchKind classifies control transfers.
type BranchKind uint8

const (
	// BranchNone marks non-branch instructions.
	BranchNone BranchKind = iota
	// BranchCond is a conditional direct branch.
	BranchCond
	// BranchUncond is an unconditional direct branch or call.
	BranchUncond
	// BranchIndirect is an indirect jump, call, or return.
	BranchIndirect
)

// String returns a short name for the branch kind.
func (k BranchKind) String() string {
	switch k {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncond:
		return "uncond"
	case BranchIndirect:
		return "indirect"
	}
	return fmt.Sprintf("branchkind(%d)", uint8(k))
}

// IsBranch reports whether the instruction is a control transfer.
func (in Inst) IsBranch() bool { return in.Class == OpBranch }

// IsLoad reports whether the instruction reads memory.
func (in Inst) IsLoad() bool { return in.Class == OpLoad }

// IsStore reports whether the instruction writes memory.
func (in Inst) IsStore() bool { return in.Class == OpStore }

// String formats the instruction for debugging.
func (in Inst) String() string {
	switch {
	case in.IsBranch():
		dir := "nt"
		if in.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: %s/%s %s -> %#x", in.PC, in.Class, in.BranchKind, dir, in.Target)
	case in.Class.IsMem():
		return fmt.Sprintf("%#x: %s r%d, r%d, [%#x]", in.PC, in.Class, in.Dest, in.Src1, in.Addr)
	default:
		return fmt.Sprintf("%#x: %s r%d <- r%d, r%d", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}

// Validate checks structural well-formedness of a trace record and returns
// a descriptive error for generator bugs. It is used by tests and by the
// trace generator's self-checks, not on the simulator fast path.
func (in Inst) Validate() error {
	if int(in.Class) >= NumOpClasses {
		return fmt.Errorf("invalid op class %d", in.Class)
	}
	checkReg := func(name string, r int8) error {
		if r != RegNone && (r < 0 || int(r) >= NumArchRegs) {
			return fmt.Errorf("%s register %d out of range", name, r)
		}
		return nil
	}
	if err := checkReg("dest", in.Dest); err != nil {
		return err
	}
	if err := checkReg("src1", in.Src1); err != nil {
		return err
	}
	if err := checkReg("src2", in.Src2); err != nil {
		return err
	}
	if in.IsBranch() != (in.BranchKind != BranchNone) {
		return fmt.Errorf("branch kind %s inconsistent with class %s", in.BranchKind, in.Class)
	}
	if in.IsBranch() && in.Dest != RegNone {
		return fmt.Errorf("branch with destination register r%d", in.Dest)
	}
	if in.IsStore() && in.Dest != RegNone {
		return fmt.Errorf("store with destination register r%d", in.Dest)
	}
	return nil
}
