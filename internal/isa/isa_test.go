package isa

import (
	"strings"
	"testing"
)

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		OpIALU:   "ialu",
		OpIMul:   "imul",
		OpIDiv:   "idiv",
		OpFAdd:   "fadd",
		OpFMul:   "fmul",
		OpFDiv:   "fdiv",
		OpLoad:   "load",
		OpStore:  "store",
		OpBranch: "branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := OpClass(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("load/store must be memory ops")
	}
	if OpIALU.IsMem() || OpBranch.IsMem() {
		t.Error("ialu/branch must not be memory ops")
	}
	for _, c := range []OpClass{OpFAdd, OpFMul, OpFDiv} {
		if !c.IsFP() {
			t.Errorf("%s should be FP", c)
		}
	}
	for _, c := range []OpClass{OpIALU, OpIMul, OpIDiv, OpLoad, OpStore, OpBranch} {
		if c.IsFP() {
			t.Errorf("%s should not be FP", c)
		}
	}
	if !OpIDiv.IsLongLatency() || !OpFDiv.IsLongLatency() {
		t.Error("divides are long latency")
	}
	if OpIMul.IsLongLatency() || OpFMul.IsLongLatency() {
		t.Error("multiplies are pipelined")
	}
}

func TestInstPredicates(t *testing.T) {
	br := Inst{Class: OpBranch, BranchKind: BranchCond, Dest: RegNone}
	if !br.IsBranch() || br.IsLoad() || br.IsStore() {
		t.Error("branch predicates wrong")
	}
	ld := Inst{Class: OpLoad, Dest: 3}
	if !ld.IsLoad() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	st := Inst{Class: OpStore, Dest: RegNone}
	if !st.IsStore() {
		t.Error("store predicate wrong")
	}
}

func TestBranchKindString(t *testing.T) {
	for k, want := range map[BranchKind]string{
		BranchNone:     "none",
		BranchCond:     "cond",
		BranchUncond:   "uncond",
		BranchIndirect: "indirect",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", k, got, want)
		}
	}
	if got := BranchKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	good := []Inst{
		{Class: OpIALU, Dest: 1, Src1: 2, Src2: 3},
		{Class: OpIALU, Dest: 1, Src1: RegNone, Src2: RegNone},
		{Class: OpLoad, Dest: 5, Src1: 6, Src2: RegNone, Addr: 0x1000},
		{Class: OpStore, Dest: RegNone, Src1: 6, Src2: 7, Addr: 0x1000},
		{Class: OpBranch, BranchKind: BranchCond, Dest: RegNone, Src1: 4, Src2: RegNone},
		{Class: OpFDiv, Dest: 32, Src1: 33, Src2: 34},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Inst{
		{Class: OpClass(42)},
		{Class: OpIALU, Dest: Inst{}.Dest + 127 + 1},
		{Class: OpIALU, Dest: 1, Src1: -2},
		{Class: OpIALU, Dest: 1, Src2: 127 - 127 - 2},            // -2: negative but not RegNone
		{Class: OpBranch, BranchKind: BranchNone, Dest: RegNone}, // branch without kind
		{Class: OpIALU, BranchKind: BranchCond, Dest: 1},         // kind without branch
		{Class: OpBranch, BranchKind: BranchCond, Dest: 2},       // branch writing a register
		{Class: OpStore, Dest: 2, Src1: 1, Src2: 3},              // store writing a register
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, in)
		}
	}
}

func TestInstString(t *testing.T) {
	br := Inst{PC: 0x400, Class: OpBranch, BranchKind: BranchCond, Dest: RegNone, Taken: true, Target: 0x500}
	if s := br.String(); !strings.Contains(s, "branch") || !strings.Contains(s, "0x500") {
		t.Errorf("branch string = %q", s)
	}
	ld := Inst{PC: 0x404, Class: OpLoad, Dest: 3, Src1: 4, Addr: 0xbeef}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0xbeef") {
		t.Errorf("load string = %q", s)
	}
	alu := Inst{PC: 0x408, Class: OpIALU, Dest: 3, Src1: 4, Src2: 5}
	if s := alu.String(); !strings.Contains(s, "ialu") {
		t.Errorf("alu string = %q", s)
	}
}
