// Package recovery models checkpoint/rollback recovery on top of the
// engine's architectural checkpoints, turning fault detection into fault
// *handling*: a simulation wrapped by this package periodically captures
// deep-clone checkpoints (core.Engine.Checkpoint), and when the machine
// detects a fault the runner rolls back to the newest checkpoint that
// predates the injection, re-arms injection past the handled fault, and
// re-executes — measuring the work the rollback discarded. Fault campaigns
// aggregate those measurements into recovery latency, lost-work, and
// availability/MTTF estimates (see internal/campaign and internal/stats).
//
// # Determinism and caching
//
// A recovery run is a pure function of the machine, workload, and policy
// interval/depth: checkpoint captures never perturb the engine, rollback
// restores a deep clone, and the re-injection guard advances the fault
// window deterministically (the injector restarts from the trial seed with
// the window lower bound bumped past the handled fault). Two runs of the
// same trial are byte-identical, so recovered trials cache and resume by
// digest exactly like plain ones.
//
// Flush and restore *costs* are deliberately not part of the simulated
// run: Run takes only the interval and depth, and the Trace records raw
// observables (checkpoints taken, rollbacks, lost-work cycles). Cost
// parameters are applied after the fact by the campaign and exploration
// layers, so one cached simulation serves every cost assumption.
package recovery

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
)

// Defaults for policy fields left unset by a mode string.
const (
	// DefaultDepth is the number of retained checkpoints when a mode names
	// an interval without a depth.
	DefaultDepth = 1
	// DefaultFlushCost is the modeled cycles to capture one checkpoint
	// (register/state flush), charged per capture by the cost layers.
	DefaultFlushCost = 8
	// DefaultRestoreCost is the modeled cycles to restore a checkpoint on
	// rollback, charged per rollback by the cost layers.
	DefaultRestoreCost = 64
)

// Policy is one recovery configuration. Interval and Depth shape the
// simulated run (checkpoint cadence and retained history); FlushCost and
// RestoreCost are modeled costs applied after simulation when deriving
// recovery latency and availability. The zero Policy means no recovery
// ("none").
type Policy struct {
	// Interval is the checkpoint cadence in retired instructions; zero
	// disables recovery entirely.
	Interval uint64 `json:"interval,omitempty"`
	// Depth is how many checkpoints are retained for rollback.
	Depth int `json:"depth,omitempty"`
	// FlushCost is the modeled per-capture cost in cycles.
	FlushCost int64 `json:"flushCost,omitempty"`
	// RestoreCost is the modeled per-rollback cost in cycles.
	RestoreCost int64 `json:"restoreCost,omitempty"`
}

// Enabled reports whether the policy actually checkpoints.
func (p Policy) Enabled() bool { return p.Interval > 0 }

// Normalize fills defaulted fields (depth, costs) of an enabled policy and
// canonicalizes a disabled one to the zero Policy, then validates against
// the machine-level bounds shared with the spec grammar.
func (p Policy) Normalize() (Policy, error) {
	if p.Interval == 0 {
		if p.Depth != 0 || p.FlushCost != 0 || p.RestoreCost != 0 {
			return Policy{}, fmt.Errorf("recovery: depth/cost fields without a checkpoint interval")
		}
		return Policy{}, nil
	}
	if p.Interval < config.MinCkptInterval {
		return Policy{}, fmt.Errorf("recovery: checkpoint interval %d below minimum %d", p.Interval, config.MinCkptInterval)
	}
	if p.Depth == 0 {
		p.Depth = DefaultDepth
	}
	if p.Depth < 0 || p.Depth > config.MaxCkptDepth {
		return Policy{}, fmt.Errorf("recovery: checkpoint depth %d out of [1,%d]", p.Depth, config.MaxCkptDepth)
	}
	if p.FlushCost == 0 {
		p.FlushCost = DefaultFlushCost
	}
	if p.RestoreCost == 0 {
		p.RestoreCost = DefaultRestoreCost
	}
	if p.FlushCost < 0 || p.RestoreCost < 0 {
		return Policy{}, fmt.Errorf("recovery: negative cost in %+v", p)
	}
	return p, nil
}

// Apply returns the machine with the policy's checkpoint interval and
// depth folded in (canonically renamed, e.g. "SHREC+ckpt64k+depth2"); a
// disabled policy clears both fields. Costs do not touch the machine —
// they are not simulated state.
func (p Policy) Apply(m config.Machine) config.Machine {
	if !p.Enabled() {
		m.CkptInterval, m.CkptDepth = 0, 0
		return m
	}
	m = m.WithCkptInterval(p.Interval)
	if p.Depth > 0 && p.Depth != DefaultDepth {
		m = m.WithCkptDepth(p.Depth)
	} else {
		m.CkptDepth = 0
	}
	return m
}

// String renders the canonical mode string: "none" for a disabled policy,
// otherwise "ckpt@<interval>" with "+depth<n>"/"+flush<n>"/"+restore<n>"
// for fields that differ from the defaults. Intervals render with the
// largest exact 1024-multiple suffix ("ckpt@64k"), matching the machine
// spec grammar. ParseMode inverts String for every normalized policy.
func (p Policy) String() string {
	if !p.Enabled() {
		return "none"
	}
	var b strings.Builder
	b.WriteString("ckpt@")
	b.WriteString(renderInterval(p.Interval))
	if p.Depth > 0 && p.Depth != DefaultDepth {
		fmt.Fprintf(&b, "+depth%d", p.Depth)
	}
	if p.FlushCost > 0 && p.FlushCost != DefaultFlushCost {
		fmt.Fprintf(&b, "+flush%d", p.FlushCost)
	}
	if p.RestoreCost > 0 && p.RestoreCost != DefaultRestoreCost {
		fmt.Fprintf(&b, "+restore%d", p.RestoreCost)
	}
	return b.String()
}

func renderInterval(n uint64) string {
	switch {
	case n%(1024*1024) == 0:
		return strconv.FormatUint(n/(1024*1024), 10) + "m"
	case n%1024 == 0:
		return strconv.FormatUint(n/1024, 10) + "k"
	}
	return strconv.FormatUint(n, 10)
}

// ParseMode parses a recovery mode string: "none" (or "") disables
// recovery; "ckpt@<interval>" enables it, with the interval taking k/m
// suffixes (1024 multiples) and optional "+depth<n>", "+flush<cycles>",
// and "+restore<cycles>" modifiers in any order, at most once each.
// Unspecified fields take the package defaults. The result is normalized:
// ParseMode(p.String()) == p for every policy Normalize accepts.
func ParseMode(mode string) (Policy, error) {
	s := strings.ToLower(strings.TrimSpace(mode))
	if s == "" || s == "none" {
		return Policy{}, nil
	}
	rest, ok := strings.CutPrefix(s, "ckpt@")
	if !ok {
		return Policy{}, fmt.Errorf("recovery: unknown mode %q (want \"none\" or \"ckpt@<interval>[+depth<n>][+flush<c>][+restore<c>]\")", mode)
	}
	var p Policy
	cut := strings.IndexByte(rest, '+')
	if cut < 0 {
		cut = len(rest)
	}
	iv, err := parseInterval(rest[:cut])
	if err != nil {
		return Policy{}, fmt.Errorf("recovery: mode %q: %v", mode, err)
	}
	p.Interval = iv
	rest = rest[cut:]
	seen := map[string]bool{}
	for rest != "" {
		rest = rest[1:] // leading '+'
		end := strings.IndexByte(rest, '+')
		if end < 0 {
			end = len(rest)
		}
		tok := rest[:end]
		rest = rest[end:]
		var key, val string
		for _, k := range []string{"depth", "flush", "restore"} {
			if v, ok := strings.CutPrefix(tok, k); ok {
				key, val = k, v
				break
			}
		}
		if key == "" {
			return Policy{}, fmt.Errorf("recovery: mode %q: unknown modifier %q", mode, tok)
		}
		if seen[key] {
			return Policy{}, fmt.Errorf("recovery: mode %q: duplicate %q modifier", mode, key)
		}
		seen[key] = true
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return Policy{}, fmt.Errorf("recovery: mode %q: bad %q value %q", mode, key, val)
		}
		switch key {
		case "depth":
			p.Depth = int(n)
		case "flush":
			p.FlushCost = n
		case "restore":
			p.RestoreCost = n
		}
	}
	return p.Normalize()
}

func parseInterval(s string) (uint64, error) {
	mul := uint64(1)
	switch {
	case strings.HasSuffix(s, "m"):
		s, mul = s[:len(s)-1], 1024*1024
	case strings.HasSuffix(s, "k"):
		s, mul = s[:len(s)-1], 1024
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad checkpoint interval %q", s)
	}
	return n * mul, nil
}
