package recovery_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/recovery"
	"repro/internal/trace"
)

// testWorkload is a modest integer-like profile (mirrors the core engine
// tests' fixture).
func testWorkload(seed uint64) trace.Profile {
	var m [isa.NumOpClasses]float64
	m[isa.OpIALU] = 0.55
	m[isa.OpIMul] = 0.03
	m[isa.OpLoad] = 0.26
	m[isa.OpStore] = 0.12
	return trace.Profile{
		Name: "recovery-test", Class: trace.IntClass, Seed: seed,
		CodeFootprint: 32 * 1024, AvgBlockLen: 6,
		LoopFrac: 0.15, UncondFrac: 0.08, IndirectFrac: 0.02,
		LoopMean: 8, PredictableFrac: 0.85, IndirectTargets: 4,
		Phases: []trace.Phase{{
			Len: 1 << 20, Mix: m,
			DepMean: 6, DepMax: 32, ChainFrac: 0.3, SrcTwoProb: 0.4,
			DataFootprint: 96 * 1024, StrideFrac: 0.6, StrideBytes: 8,
			PointerChaseFrac: 0.05,
		}},
	}
}

// TestModeRoundTrip pins ParseMode/String as inverses over normalized
// policies, with defaults filled and canonical interval suffixes.
func TestModeRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want recovery.Policy
		str  string
	}{
		{"none", recovery.Policy{}, "none"},
		{"", recovery.Policy{}, "none"},
		{"ckpt@64k", recovery.Policy{Interval: 65536, Depth: 1, FlushCost: 8, RestoreCost: 64}, "ckpt@64k"},
		{"CKPT@64K", recovery.Policy{Interval: 65536, Depth: 1, FlushCost: 8, RestoreCost: 64}, "ckpt@64k"},
		{"ckpt@2m+depth2", recovery.Policy{Interval: 2 * 1024 * 1024, Depth: 2, FlushCost: 8, RestoreCost: 64}, "ckpt@2m+depth2"},
		{"ckpt@100", recovery.Policy{Interval: 100, Depth: 1, FlushCost: 8, RestoreCost: 64}, "ckpt@100"},
		{"ckpt@4k+depth4+flush16+restore256",
			recovery.Policy{Interval: 4096, Depth: 4, FlushCost: 16, RestoreCost: 256},
			"ckpt@4k+depth4+flush16+restore256"},
		{"ckpt@4k+restore256+depth4+flush16", // any modifier order
			recovery.Policy{Interval: 4096, Depth: 4, FlushCost: 16, RestoreCost: 256},
			"ckpt@4k+depth4+flush16+restore256"},
	}
	for _, c := range cases {
		got, err := recovery.ParseMode(c.in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMode(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.String() != c.str {
			t.Errorf("ParseMode(%q).String() = %q, want %q", c.in, got.String(), c.str)
		}
		again, err := recovery.ParseMode(got.String())
		if err != nil || again != got {
			t.Errorf("round trip of %q: %+v, %v", got.String(), again, err)
		}
	}
}

// TestModeErrors pins rejection of malformed modes.
func TestModeErrors(t *testing.T) {
	for _, bad := range []string{
		"rollback",               // unknown mode
		"ckpt",                   // missing interval
		"ckpt@",                  // empty interval
		"ckpt@0",                 // zero interval
		"ckpt@32",                // below config.MinCkptInterval
		"ckpt@64x",               // bad suffix
		"ckpt@64k+depth17",       // above config.MaxCkptDepth
		"ckpt@64k+width2",        // unknown modifier
		"ckpt@64k+depth2+depth3", // duplicate
		"ckpt@64k+flush-1",       // negative cost
	} {
		if _, err := recovery.ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}

// TestPolicyApply pins the machine-spec integration: an enabled policy
// renames the machine canonically, a disabled one clears the fields.
func TestPolicyApply(t *testing.T) {
	p, err := recovery.ParseMode("ckpt@64k+depth2+flush16")
	if err != nil {
		t.Fatal(err)
	}
	m := p.Apply(config.SHREC())
	if m.CkptInterval != 65536 || m.CkptDepth != 2 {
		t.Fatalf("Apply: interval %d depth %d", m.CkptInterval, m.CkptDepth)
	}
	if m.Name != "SHREC+ckpt64k+depth2" {
		t.Fatalf("Apply name = %q", m.Name)
	}
	// Default depth stays out of the machine (and its name).
	p1, _ := recovery.ParseMode("ckpt@4k")
	m1 := p1.Apply(config.SHREC())
	if m1.CkptDepth != 0 || m1.Name != "SHREC+ckpt4k" {
		t.Fatalf("Apply default depth: depth %d name %q", m1.CkptDepth, m1.Name)
	}
	none := recovery.Policy{}.Apply(m)
	if none.CkptInterval != 0 || none.CkptDepth != 0 {
		t.Fatalf("disabled Apply left %d/%d", none.CkptInterval, none.CkptDepth)
	}
}

// TestFaultFreeChunkingInvariant is the signature-soundness invariant the
// campaign oracle depends on: a fault-free run chunked into checkpoint
// intervals retires the identical instruction stream as one contiguous
// run, so its ArchSig is byte-identical (exact chunk boundaries via
// RunExact — a free-overshoot chunking would diverge).
func TestFaultFreeChunkingInvariant(t *testing.T) {
	const n = 20000
	p := testWorkload(11)
	m := config.SHREC()

	plain := core.New(m, trace.New(p))
	want, err := plain.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	e := core.New(m, trace.New(p))
	got, tr, err := recovery.Run(context.Background(), e, n, 0, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Retired != n || got.ArchSig != want.ArchSig {
		t.Errorf("chunked fault-free run diverged: retired %d sig %#x, want %d %#x",
			got.Retired, got.ArchSig, want.Retired, want.ArchSig)
	}
	if tr.Detected() != 0 || tr.LostWork != 0 {
		t.Errorf("fault-free trace recorded recovery: %+v", tr)
	}
	if wantCaps := uint64(n/1024 + 1); tr.Checkpoints != wantCaps {
		t.Errorf("checkpoints = %d, want %d (every 1024 retirements plus the initial capture)", tr.Checkpoints, wantCaps)
	}
}

// faultyRun executes one recovery trial with injection enabled and returns
// its stats and trace.
func faultyRun(t *testing.T, interval uint64, depth int) (core.Stats, recovery.Trace) {
	t.Helper()
	m := config.SHREC()
	m.FaultRate = 3e-4
	m.FaultSeed = 7
	m.FaultWindowLo, m.FaultWindowHi = 2000, 14000
	e := core.New(m, trace.New(testWorkload(11)))
	st, tr, err := recovery.Run(context.Background(), e, 16000, 0, interval, depth)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	return st, tr
}

// TestRollbackRecovers drives detected faults through rollback and checks
// the trace observables.
func TestRollbackRecovers(t *testing.T) {
	st, tr := faultyRun(t, 1024, 2)
	if tr.Rollbacks == 0 {
		t.Fatalf("no rollbacks occurred (trace %+v); fixture exercises nothing", tr)
	}
	if tr.LostWork <= 0 {
		t.Errorf("rollbacks without lost work: %+v", tr)
	}
	if st.Retired != 16000 {
		t.Errorf("run finished at %d retired, want 16000", st.Retired)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events logged")
	}
	for _, ev := range tr.Events {
		if ev.DetectCycle < ev.InjectCycle {
			t.Errorf("event %+v detects before injection", ev)
		}
		if ev.Outcome == recovery.OutcomeRecovered && ev.LostWork <= 0 {
			t.Errorf("recovered event without lost work: %+v", ev)
		}
	}
	// A recovered run's committed timeline is clean: the faults it rolled
	// back were discarded along with the work, so the final counters carry
	// no detections that were recovered by rollback.
	if st.SilentCorruptions != 0 {
		t.Errorf("recovered run committed corruptions: %+v", st)
	}
}

// TestRecoveredRunMatchesGoldenSig pins end-to-end soundness: a trial whose
// every detection was recovered by rollback commits the same architectural
// stream as the fault-free golden run.
func TestRecoveredRunMatchesGoldenSig(t *testing.T) {
	st, tr := faultyRun(t, 1024, 2)
	if tr.Rollbacks == 0 {
		t.Skip("fixture produced no rollbacks")
	}
	if tr.Fatal() != 0 {
		t.Skipf("fixture produced non-recovered outcomes: %+v", tr)
	}
	golden := core.New(config.SHREC(), trace.New(testWorkload(11)))
	want, _, err := recovery.Run(context.Background(), golden, 16000, 0, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.ArchSig != want.ArchSig {
		t.Errorf("recovered trial sig %#x != golden %#x", st.ArchSig, want.ArchSig)
	}
}

// TestRecoveryDeterminism requires byte-identical stats and traces across
// re-runs — the property that makes recovered trials cacheable and
// resumable by digest.
func TestRecoveryDeterminism(t *testing.T) {
	s1, t1 := faultyRun(t, 1024, 2)
	s2, t2 := faultyRun(t, 1024, 2)
	if s1 != s2 {
		t.Errorf("stats diverged across identical runs\n a: %+v\n b: %+v", s1, s2)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Errorf("traces diverged across identical runs\n a: %+v\n b: %+v", t1, t2)
	}
}

// TestDepthChangesOutcomes sanity-checks the retention model: depth 1
// cannot produce fewer non-recovered outcomes than a deeper ring on the
// same trial stream prefix (more history can only help), and the runs
// stay deterministic per depth.
func TestDepthChangesOutcomes(t *testing.T) {
	_, shallow := faultyRun(t, 512, 1)
	_, deep := faultyRun(t, 512, 8)
	if shallow.Detected() == 0 {
		t.Skip("fixture produced no detections")
	}
	if deep.Rollbacks == 0 && shallow.Rollbacks == 0 {
		t.Errorf("no depth produced a rollback: shallow %+v deep %+v", shallow, deep)
	}
}
