package recovery

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Outcome classifies what recovery did about one detected fault.
type Outcome uint8

const (
	// OutcomeRecovered: a retained checkpoint predated the injection; the
	// run rolled back to it and re-executed.
	OutcomeRecovered Outcome = iota
	// OutcomeOverrun: the checkpoint ring was at full depth but even the
	// oldest retained checkpoint postdated the injection — the detection
	// latency outran Depth×Interval of retained history.
	OutcomeOverrun
	// OutcomeUnrecoverable: no retained checkpoint predated the injection
	// and the ring was not full (earlier faults consumed the history), so
	// deeper retention alone could not have helped at this point.
	OutcomeUnrecoverable
)

// String names the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeRecovered:
		return "recovered"
	case OutcomeOverrun:
		return "overrun"
	case OutcomeUnrecoverable:
		return "unrecoverable"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// maxEvents caps the per-run event log; the Trace counters always carry
// the full totals.
const maxEvents = 64

// Event records one detected fault and recovery's response.
type Event struct {
	// Seq is the faulting instruction's correct-path fetch sequence number.
	Seq uint64 `json:"seq"`
	// InjectCycle and DetectCycle are on the engine's absolute clock
	// (monotone across warmup and rollbacks), so DetectCycle-InjectCycle
	// is the detection latency.
	InjectCycle int64   `json:"injectCycle"`
	DetectCycle int64   `json:"detectCycle"`
	Outcome     Outcome `json:"outcome"`
	// LostWork is the measured cycles of execution the rollback discarded
	// (detection point minus restored checkpoint); zero for non-recovered
	// outcomes, which continue forward without rolling back.
	LostWork int64 `json:"lostWork,omitempty"`
}

// Trace is the raw recovery record of one simulated run: checkpoint and
// rollback counts, discarded work, and a capped event log. It contains no
// cost-derived quantities — FlushCost/RestoreCost are applied by the
// campaign and exploration layers — so a cached Trace serves every cost
// assumption.
type Trace struct {
	Interval uint64 `json:"interval"`
	Depth    int    `json:"depth"`
	// Checkpoints counts captures taken (including the initial capture at
	// the measure start).
	Checkpoints uint64 `json:"checkpoints"`
	// Rollbacks, Overruns, and Unrecoverable count detected faults by
	// outcome.
	Rollbacks     uint64 `json:"rollbacks"`
	Overruns      uint64 `json:"overruns,omitempty"`
	Unrecoverable uint64 `json:"unrecoverable,omitempty"`
	// LostWork is the total cycles discarded by rollbacks.
	LostWork int64 `json:"lostWork"`
	// Events logs the first maxEvents detections in order.
	Events []Event `json:"events,omitempty"`
}

// Detected is the total detected faults the trace classified.
func (t Trace) Detected() uint64 { return t.Rollbacks + t.Overruns + t.Unrecoverable }

// Fatal is the count of detections recovery could not roll back.
func (t Trace) Fatal() uint64 { return t.Overruns + t.Unrecoverable }

// ringEntry stamps one retained checkpoint with the stream and clock
// positions rollback decisions need.
type ringEntry struct {
	cp *core.Checkpoint
	// fetchSeq is the next unfetched sequence number at capture: the
	// checkpoint is a safe rollback target for any fault injected at
	// fetchSeq or later (the faulting instruction is not yet in flight in
	// the captured state).
	fetchSeq uint64
	// cycles/retired are Stats values at capture (the clock rollback
	// rewinds to).
	cycles  int64
	retired uint64
}

// Run executes e until n total instructions have retired (counted from the
// last ResetStats, like Engine.RunBudget), capturing a checkpoint every
// interval retired instructions and retaining the newest depth of them.
// When the machine detects a fault, the run rolls back to the newest
// retained checkpoint predating the injection (re-arming injection past
// the handled fault) or — when no such checkpoint survives — classifies
// the detection as overrun/unrecoverable and continues forward on the
// engine's inline replay. maxCycles, when positive, bounds the *total*
// simulated effort including discarded work, so recovery storms trip the
// same hang watchdog as plain runs.
//
// The returned stats are the engine's at completion; the trace holds the
// recovery observables. Run requires a cloneable instruction source (see
// core.ErrNoCloneSource) and interval ≥ 1; depth < 1 defaults to 1.
func Run(ctx context.Context, e *core.Engine, n uint64, maxCycles int64, interval uint64, depth int) (core.Stats, Trace, error) {
	if interval == 0 {
		stats, err := e.RunBudget(ctx, n, maxCycles)
		return stats, Trace{}, err
	}
	if depth < 1 {
		depth = DefaultDepth
	}
	tr := Trace{Interval: interval, Depth: depth}

	// The hook latches the detection and stops the run (ErrHookStop) so
	// the rollback decision happens here, outside the engine.
	var det struct {
		seq                uint64
		injectAt, detectAt int64
	}
	e.SetFaultHook(func(seq uint64, injectAt, detectAt int64) bool {
		det.seq, det.injectAt, det.detectAt = seq, injectAt, detectAt
		return true
	})
	defer e.SetFaultHook(nil)

	// The fault window's lower bound ratchets past every rolled-back fault
	// so the restored execution cannot re-inject it; strict monotonicity in
	// the sequence number is what bounds the number of rollbacks.
	mc := e.Config()
	rate, seed := mc.FaultRate, mc.FaultSeed
	lo, hi := mc.FaultWindowLo, mc.FaultWindowHi

	ring := make([]ringEntry, 0, depth)
	capture := func() error {
		cp, err := e.Checkpoint()
		if err != nil {
			return err
		}
		if len(ring) == depth {
			copy(ring, ring[1:])
			ring = ring[:depth-1]
		}
		st := e.Stats()
		ring = append(ring, ringEntry{cp: cp, fetchSeq: cp.FetchSeq(), cycles: st.Cycles, retired: st.Retired})
		tr.Checkpoints++
		return nil
	}

	// Initial capture: faults detected inside the first interval need a
	// rollback target too.
	if err := capture(); err != nil {
		return e.Stats(), tr, err
	}
	next := e.Stats().Retired + interval
	for {
		target := min(next, n)
		budget := maxCycles
		if maxCycles > 0 {
			// The engine's cycle counter rewinds with each rollback; the
			// discarded cycles still happened on the host and still count
			// against the watchdog.
			budget = maxCycles - tr.LostWork
			if budget <= 0 {
				return e.Stats(), tr, fmt.Errorf("recovery: %s lost-work cycles exhausted the %d-cycle budget: %w",
					mc.Name, maxCycles, core.ErrCycleBudget)
			}
		}
		_, err := e.RunExact(ctx, target, budget)
		if err == nil {
			if target == n {
				return e.Stats(), tr, nil
			}
			if err := capture(); err != nil {
				return e.Stats(), tr, err
			}
			next = target + interval
			continue
		}
		if !errors.Is(err, core.ErrHookStop) {
			// Hang, deadlock, or cancellation: the caller classifies.
			return e.Stats(), tr, err
		}

		ev := Event{Seq: det.seq, InjectCycle: det.injectAt, DetectCycle: det.detectAt}
		idx := -1
		for i := len(ring) - 1; i >= 0; i-- {
			if ring[i].fetchSeq <= det.seq {
				idx = i
				break
			}
		}
		if idx >= 0 {
			// Roll back. Checkpoints newer than the target were captured
			// with the faulty instruction in flight — drop them.
			ent := ring[idx]
			ev.Outcome = OutcomeRecovered
			ev.LostWork = e.Stats().Cycles - ent.cycles
			tr.Rollbacks++
			tr.LostWork += ev.LostWork
			ring = ring[:idx+1]
			// Wall-clock restore time goes to the context's telemetry (span
			// + stage histograms), never into the Trace: traces are
			// deterministic, compared byte-for-byte in tests, and persisted.
			restore := time.Now()
			e.Restore(ent.cp)
			telemetry.ObserveStage(ctx, "recovery_rollback", time.Since(restore))
			if det.seq+1 > lo {
				lo = det.seq + 1
			}
			e.SetFaultConfig(rate, seed, lo, hi)
			next = ent.retired + interval
		} else {
			// No retained checkpoint predates the injection; every retained
			// capture carried the faulty instruction in flight, so all are
			// tainted. Continue forward on the engine's inline replay (the
			// soft exception already squashed and queued a clean re-fetch).
			if len(ring) == depth {
				ev.Outcome = OutcomeOverrun
				tr.Overruns++
			} else {
				ev.Outcome = OutcomeUnrecoverable
				tr.Unrecoverable++
			}
			ring = ring[:0]
		}
		if len(tr.Events) < maxEvents {
			tr.Events = append(tr.Events, ev)
		}
	}
}
