package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGoldens rewrites the testdata files from the current renderers:
//
//	go test ./internal/report -run Golden -update-report-goldens
var updateGoldens = flag.Bool("update-report-goldens", false, "rewrite internal/report/testdata goldens")

// paretoLike builds a multi-table report with every awkward shape the
// exploration Pareto report produces: non-ASCII labels, NaN cells
// (coverage of points without fault injection), and ±Inf cells
// (protection odds at total coverage, negated cost deltas).
func paretoLike() *Report {
	r := New("pareto", "Exploration Pareto frontier — résumé")
	ft := r.AddTable("Frontière de Pareto", "configuração", "IPC", "coverage %", "odds", "cost")
	ft.Verb = "%.4g"
	ft.AddRow("SHREC@x1.5+stagger2", 2.25, 100, math.Inf(1), 96)
	ft.AddRow("SS2+SC — baseline «étendu»", 1.75, math.NaN(), math.NaN(), 120)
	ft.Add(Row{Label: "覆盖率-point", Class: "fp", High: true, Values: []float64{1.5, 97.5, 39, 80}})
	ft.AddRule()
	ft.Add(Row{Label: "harmonic µ", Aggregate: true, Values: []float64{1.8, 98.75, math.Inf(-1), 98.67}})

	at := r.AddTable("All points – Δ vs SS2", "spec", "slowdown", "Δcost")
	at.AddRow("DIVA+fux0.5", 1.08, -26)
	at.AddRow("naïve Ω-point", math.Inf(1), math.Inf(-1))

	r.AddNote("2 of 4 points on the frontier; NaN coverage = no injection (λ=0)")
	r.SetMeta("stratégie", "halving")
	return r
}

// golden compares got with the named testdata file.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update-report-goldens after intentional renderer changes): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestJSONGoldenNonFinite pins the JSON rendering of a multi-table
// report with non-ASCII labels and NaN/Inf cells: non-finite values must
// encode as the strings "NaN"/"+Inf"/"-Inf" instead of failing the whole
// encode (encoding/json rejects non-finite numbers).
func TestJSONGoldenNonFinite(t *testing.T) {
	var b bytes.Buffer
	if err := paretoLike().JSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "pareto.json.golden", b.Bytes())
}

// TestCSVGoldenNonFinite pins the tidy CSV rendering of the same report:
// strconv renders the non-finite cells as NaN/+Inf/-Inf tokens and the
// non-ASCII labels pass through as UTF-8.
func TestCSVGoldenNonFinite(t *testing.T) {
	var b bytes.Buffer
	if err := paretoLike().CSV(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "pareto.csv.golden", b.Bytes())
}

// TestJSONRoundTripNonFinite verifies a report with non-finite cells
// decodes back to the same values (NaN compared by IsNaN).
func TestJSONRoundTripNonFinite(t *testing.T) {
	var b bytes.Buffer
	orig := paretoLike()
	if err := orig.JSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Tables) != len(orig.Tables) {
		t.Fatalf("tables: %d != %d", len(back.Tables), len(orig.Tables))
	}
	for ti, tab := range orig.Tables {
		for ri, row := range tab.Rows {
			got := back.Tables[ti].Rows[ri]
			if got.Label != row.Label || got.Class != row.Class || got.High != row.High || got.Aggregate != row.Aggregate {
				t.Fatalf("table %d row %d metadata diverged: %+v != %+v", ti, ri, got, row)
			}
			for vi, v := range row.Values {
				g := got.Values[vi]
				if math.IsNaN(v) != math.IsNaN(g) || (!math.IsNaN(v) && g != v) {
					t.Fatalf("table %d row %d value %d: %g != %g", ti, ri, vi, g, v)
				}
			}
		}
	}
}

// TestJSONFiniteEncodingUnchanged guards the wire format: for reports
// without non-finite cells the custom Row encoder must be byte-identical
// to the plain struct encoding clients already parse.
func TestJSONFiniteEncodingUnchanged(t *testing.T) {
	r := New("plain", "finite")
	tb := r.AddTable("t", "label", "v1", "v2")
	tb.Add(Row{Label: "a", Class: "int", High: true, Values: []float64{1.25, -3}})
	tb.Add(Row{Label: "b", Aggregate: true, Values: []float64{0, 2e-9}})

	var b bytes.Buffer
	if err := r.JSON(&b); err != nil {
		t.Fatal(err)
	}
	// The shadow encoding mirrors Row's fields exactly; re-encoding the
	// decoded generic structure with the same field set must reproduce it.
	type plainRow struct {
		Label     string    `json:"label"`
		Class     string    `json:"class,omitempty"`
		High      bool      `json:"high,omitempty"`
		Aggregate bool      `json:"aggregate,omitempty"`
		Values    []float64 `json:"values"`
	}
	want, err := json.Marshal(plainRow{Label: "a", Class: "int", High: true, Values: []float64{1.25, -3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), string(want)) {
		// Indentation differs between the two encodings; compare compacted.
		var compact bytes.Buffer
		if err := json.Compact(&compact, b.Bytes()); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(compact.String(), string(want)) {
			t.Fatalf("finite row encoding drifted:\nwant fragment %s\nin %s", want, compact.String())
		}
	}
}

// TestTextRenderingNonFinite confirms the fixed-width text renderer
// prints non-finite cells as NaN/ +Inf/-Inf rather than panicking.
func TestTextRenderingNonFinite(t *testing.T) {
	s := paretoLike().String()
	for _, want := range []string{"NaN", "+Inf", "-Inf", "覆盖率-point [high]", "Frontière"} {
		if !strings.Contains(s, want) {
			t.Fatalf("text rendering lacks %q:\n%s", want, s)
		}
	}
}
