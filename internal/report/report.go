// Package report defines the typed result model of the experiment
// harness. An experiment produces a Report — named tables of labelled
// float64 rows plus free-form notes — instead of pre-rendered text, so
// downstream tools can compare, plot, and diff results programmatically.
//
// Three renderers serialize a Report:
//
//   - Text writes the fixed-width tables the CLI has always printed
//     (byte-identical to the pre-report string API; the golden tests in
//     internal/experiments pin this).
//   - JSON writes the report as one structured object.
//   - CSV writes tidy long-format rows (one value per line), the shape
//     spreadsheet and dataframe tooling ingests directly.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Report is the typed outcome of one experiment.
type Report struct {
	// Name is the experiment identifier ("fig2", "table3", ...).
	Name string `json:"name"`
	// Title is the human-readable experiment title.
	Title string `json:"title"`
	// Tables holds the report's data tables in display order.
	Tables []*Table `json:"tables"`
	// Notes are free-form summary lines printed after the tables
	// (for example the "SHREC penalty vs SS1" headlines).
	Notes []string `json:"notes,omitempty"`
	// Meta records run provenance (run lengths, extra context).
	Meta map[string]string `json:"meta,omitempty"`
}

// Table is one rectangular data series: Columns[0] names the row-label
// column and Columns[1:] name the value columns of each Row.
type Table struct {
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`

	// Verb is the fmt verb rendering Values in text ("%.2f" when empty).
	Verb string `json:"-"`
	// ClassColumn switches the layout to lead with each row's Class
	// (blanked in text when it repeats the previous row's), then Label,
	// then Values — the layout of the paper's Table 3. Columns[0] then
	// names the class column and Columns[1] the label column, so Values
	// align with Columns[2:] instead of Columns[1:]. Encoded in JSON so
	// structured consumers can align values with columns.
	ClassColumn bool `json:"class_column,omitempty"`
	// rules are row indices before which the text renderer draws a
	// horizontal rule (len(Rows) means after the final row). Kept out of
	// the structured encodings: rules are presentation, not data.
	rules []int
}

// Row is one labelled series of values aligned with the parent table's
// value columns.
type Row struct {
	Label string `json:"label"`
	// Class tags the row's grouping (benchmark class, factor class).
	Class string `json:"class,omitempty"`
	// High marks a high-IPC benchmark row (rendered as "name [high]").
	High bool `json:"high,omitempty"`
	// Aggregate marks summary rows (harmonic means) as opposed to
	// per-benchmark data rows.
	Aggregate bool      `json:"aggregate,omitempty"`
	Values    []float64 `json:"values"`
}

// jsonFloat is a float64 whose JSON encoding tolerates non-finite
// values: finite values are ordinary JSON numbers, while NaN and ±Inf —
// which encoding/json rejects outright — encode as the strings "NaN",
// "+Inf", and "-Inf". Reports legitimately carry both (the Pareto
// exploration report renders NaN coverage for points without fault
// injection and +Inf protection odds for fully covered ones), and a
// report that cannot be serialized would take the whole shrecd response
// down with it.
type jsonFloat float64

// MarshalJSON encodes the value as a number, or as a string when
// non-finite.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes a number or one of the non-finite strings.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	case `"+Inf"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// rowEncoding mirrors Row for JSON with non-finite-safe values. Field
// names and order match Row exactly, so reports without non-finite cells
// encode byte-identically to the plain struct encoding.
type rowEncoding struct {
	Label     string      `json:"label"`
	Class     string      `json:"class,omitempty"`
	High      bool        `json:"high,omitempty"`
	Aggregate bool        `json:"aggregate,omitempty"`
	Values    []jsonFloat `json:"values"`
}

// MarshalJSON encodes the row with non-finite values as strings (see
// jsonFloat).
func (r Row) MarshalJSON() ([]byte, error) {
	enc := rowEncoding{Label: r.Label, Class: r.Class, High: r.High,
		Aggregate: r.Aggregate, Values: make([]jsonFloat, len(r.Values))}
	for i, v := range r.Values {
		enc.Values[i] = jsonFloat(v)
	}
	return json.Marshal(enc)
}

// UnmarshalJSON is the inverse of MarshalJSON, so structured consumers
// round-trip reports containing non-finite cells.
func (r *Row) UnmarshalJSON(b []byte) error {
	var enc rowEncoding
	if err := json.Unmarshal(b, &enc); err != nil {
		return err
	}
	r.Label, r.Class, r.High, r.Aggregate = enc.Label, enc.Class, enc.High, enc.Aggregate
	r.Values = make([]float64, len(enc.Values))
	for i, v := range enc.Values {
		r.Values[i] = float64(v)
	}
	return nil
}

// New builds an empty report.
func New(name, title string) *Report {
	return &Report{Name: name, Title: title}
}

// AddTable appends an empty table with the given title and column
// headers and returns it for row building.
func (r *Report) AddTable(title string, columns ...string) *Table {
	t := &Table{Title: title, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}

// AddNote appends a formatted summary line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SetMeta records one provenance key.
func (r *Report) SetMeta(key, value string) {
	if r.Meta == nil {
		r.Meta = map[string]string{}
	}
	r.Meta[key] = value
}

// Add appends one row.
func (t *Table) Add(row Row) {
	t.Rows = append(t.Rows, row)
}

// AddRow appends a plain labelled row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// AddRule draws a horizontal rule (text rendering only) after the rows
// added so far.
func (t *Table) AddRule() {
	t.rules = append(t.rules, len(t.Rows))
}

// verb returns the table's value format verb.
func (t *Table) verb() string {
	if t.Verb == "" {
		return "%.2f"
	}
	return t.Verb
}

// label returns the row's display label (" [high]" suffix included).
func (r Row) label() string {
	if r.High {
		return r.Label + " [high]"
	}
	return r.Label
}

// Text renders the report as fixed-width tables followed by the notes —
// the exact output of the pre-report string API.
func (r *Report) Text(w io.Writer) error {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		t.text(&b)
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			b.WriteString(n)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	_ = r.Text(&b) // strings.Builder never errors
	return b.String()
}

// text renders one table through the shared fixed-width layout engine.
func (t *Table) text(b *strings.Builder) {
	tb := stats.NewTable(t.Title, t.Columns...)
	rule := 0
	prevClass := "\x00" // matches no real class, so the first row prints its class
	for i, row := range t.Rows {
		for rule < len(t.rules) && t.rules[rule] <= i {
			tb.AddSeparator()
			rule++
		}
		cells := make([]string, 0, len(row.Values)+2)
		if t.ClassColumn {
			class := row.Class
			if class == prevClass {
				class = ""
			} else {
				prevClass = row.Class
			}
			cells = append(cells, class)
		}
		cells = append(cells, row.label())
		for _, v := range row.Values {
			cells = append(cells, fmt.Sprintf(t.verb(), v))
		}
		tb.AddRow(cells...)
	}
	for rule < len(t.rules) {
		tb.AddSeparator()
		rule++
	}
	b.WriteString(tb.String())
}

// JSON writes the report as one indented JSON object.
func (r *Report) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONArray writes any number of reports as one indented JSON
// array, the multi-experiment analogue of Report.JSON.
func WriteJSONArray(w io.Writer, reports ...*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if reports == nil {
		reports = []*Report{} // encode as [], not null
	}
	return enc.Encode(reports)
}

// csvHeader is the tidy long-format CSV column set shared by every
// report: one (experiment, table, row, column) value per line. The
// label column carries the raw Label (matching the JSON encoding and
// workload names); the high flag has its own column.
var csvHeader = []string{"experiment", "table", "label", "class", "high", "aggregate", "column", "value"}

// CSV writes the report in tidy long format, header included.
func (r *Report) CSV(w io.Writer) error {
	return WriteCSV(w, r)
}

// WriteCSV writes any number of reports as one tidy CSV stream with a
// single header row, so multi-experiment runs concatenate cleanly.
func WriteCSV(w io.Writer, reports ...*Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range reports {
		for _, t := range r.Tables {
			// The value columns: all headers past the label column (and
			// past the class column in Table 3-style layouts).
			first := 1
			if t.ClassColumn {
				first = 2
			}
			for _, row := range t.Rows {
				for i, v := range row.Values {
					col := ""
					if first+i < len(t.Columns) {
						col = t.Columns[first+i]
					}
					rec := []string{
						r.Name, t.Title, row.Label, row.Class,
						strconv.FormatBool(row.High),
						strconv.FormatBool(row.Aggregate), col,
						strconv.FormatFloat(v, 'g', -1, 64),
					}
					if err := cw.Write(rec); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
