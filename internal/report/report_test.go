package report

import (
	"encoding/json"
	"strings"
	"testing"
)

// demo builds a small two-table report exercising every layout feature:
// high-IPC labels, aggregate rows with a rule, a class-grouped table,
// and notes.
func demo() *Report {
	r := New("demo", "Demo report")
	tb := r.AddTable("Per-benchmark", "benchmark", "SS1", "SS2")
	tb.Add(Row{Label: "gap", Class: "int", Values: []float64{1.25, 0.9}})
	tb.Add(Row{Label: "gcc", Class: "int", High: true, Values: []float64{2, 1.5}})
	tb.AddRule()
	tb.Add(Row{Label: "Average", Aggregate: true, Values: []float64{1.5, 1.1}})

	t3 := r.AddTable("Effects", "class", "factor", "effect %")
	t3.Verb = "%.1f"
	t3.ClassColumn = true
	t3.Add(Row{Class: "Integer", Label: "C", Values: []float64{16.07}})
	t3.Add(Row{Class: "Integer", Label: "X", Values: []float64{4.2}})
	t3.AddRule()
	t3.AddRule() // empty group renders consecutive rules
	r.AddNote("penalty: %d%%", 28)
	r.SetMeta("measure_instrs", "100")
	return r
}

func TestTextRendering(t *testing.T) {
	got := demo().String()
	want := `Per-benchmark
benchmark    SS1   SS2
----------------------
gap         1.25  0.90
gcc [high]  2.00  1.50
----------------------
Average     1.50  1.10

Effects
class    factor  effect %
-------------------------
Integer       C      16.1
              X       4.2
-------------------------
-------------------------

penalty: 28%
`
	if got != want {
		t.Errorf("text rendering:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestJSONShape(t *testing.T) {
	var b strings.Builder
	if err := demo().JSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "demo" || len(back.Tables) != 2 || len(back.Notes) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Meta["measure_instrs"] != "100" {
		t.Fatalf("meta lost: %+v", back.Meta)
	}
	r0 := back.Tables[0].Rows[1]
	if r0.Label != "gcc" || !r0.High || r0.Values[0] != 2 {
		t.Fatalf("row = %+v", r0)
	}
	if !back.Tables[0].Rows[2].Aggregate {
		t.Fatal("aggregate flag lost")
	}
	// ClassColumn is part of the data contract: JSON consumers need it to
	// know Values align with Columns[2:] rather than Columns[1:].
	if back.Tables[0].ClassColumn || !back.Tables[1].ClassColumn {
		t.Fatal("class_column flag lost")
	}
	// Rules and verbs are presentation-only: they must not leak into JSON.
	if strings.Contains(b.String(), "rules") || strings.Contains(b.String(), "Verb") {
		t.Fatalf("presentation state leaked into JSON:\n%s", b.String())
	}
}

func TestCSVTidyFormat(t *testing.T) {
	var b strings.Builder
	if err := demo().CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "experiment,table,label,class,high,aggregate,column,value" {
		t.Fatalf("header = %q", lines[0])
	}
	// 3 rows x 2 values in table 1, 2 rows x 1 value in table 2.
	if len(lines) != 1+6+2 {
		t.Fatalf("%d lines:\n%s", len(lines), b.String())
	}
	// Labels stay raw (no " [high]" suffix): the high flag is a column,
	// so CSV rows join against JSON output and workload names.
	for _, want := range []string{
		"demo,Per-benchmark,gap,int,false,false,SS1,1.25",
		"demo,Per-benchmark,gcc,int,true,false,SS2,1.5",
		"demo,Per-benchmark,Average,,false,true,SS2,1.1",
		"demo,Effects,C,Integer,false,false,effect %,16.07",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestWriteJSONArray(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONArray(&b, demo(), demo()); err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("array len = %d", len(back))
	}
	b.Reset()
	if err := WriteJSONArray(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("empty array = %q", b.String())
	}
}

func TestEmptyReport(t *testing.T) {
	r := New("empty", "")
	if got := r.String(); got != "" {
		t.Fatalf("empty report renders %q", got)
	}
	var b strings.Builder
	if err := r.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != strings.Join(csvHeader, ",") {
		t.Fatalf("empty CSV = %q", b.String())
	}
}
