// Package retry implements deadline-aware retries with jittered
// exponential backoff, used at the system's edges: HTTP calls from the
// repro.Remote client to shrecd (honoring 429/Retry-After), and
// persistent-store opens in the CLIs, where a transiently-busy path
// (NFS hiccup, a compaction finishing in another process) should not
// fail a long campaign before it starts.
//
// The policy retries transient errors only: an error wrapped with
// Permanent stops immediately, and an error wrapped with After carries
// a server-directed delay (Retry-After) that overrides the computed
// backoff. Every sleep is bounded by the caller's context, so a
// deadline cuts the retry loop short instead of sleeping past it.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Counters accumulates what a policy's retry loops actually did, for
// observability at the call site (repro.Remote surfaces them as client
// metrics). All fields are atomics, so one Counters value can be shared
// by concurrent Do loops.
type Counters struct {
	// Attempts counts every op invocation, first tries included.
	Attempts atomic.Uint64
	// Retries counts re-invocations after a transient failure (attempts
	// beyond each loop's first).
	Retries atomic.Uint64
	// Permanent counts loops that stopped on a Permanent error.
	Permanent atomic.Uint64
	// Exhausted counts loops that ran out of MaxAttempts.
	Exhausted atomic.Uint64
}

// Policy configures the retry loop. The zero value is usable: Do fills
// in the defaults below.
type Policy struct {
	// MaxAttempts bounds total tries, the first included (<=0 means 5).
	MaxAttempts int
	// BaseDelay is the first backoff; each subsequent retry doubles it
	// (<=0 means 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (<=0 means 5s).
	MaxDelay time.Duration
	// Jitter randomizes each delay down by up to this fraction, in
	// [0, 1], so synchronized clients spread out instead of retrying in
	// lockstep (0 means 0.5; negative disables jitter).
	Jitter float64
	// Counters, when non-nil, receives attempt/retry/outcome counts from
	// every Do loop run under this policy.
	Counters *Counters

	// rand and sleep are test seams; nil means math/rand and a
	// context-bounded timer.
	rand  func() float64
	sleep func(ctx context.Context, d time.Duration) error
}

// Default returns the policy used when callers have no opinion.
func Default() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Jitter: 0.5}
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns it unwrapped:
// validation failures, 4xx responses, anything a retry cannot fix.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// afterError carries a server-directed retry delay (Retry-After).
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps a retryable err with the delay the server asked for; Do
// sleeps exactly that long (still jittered down, still deadline-bounded)
// instead of the computed backoff.
func After(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: delay}
}

// Do runs op until it succeeds, returns a Permanent error, the context
// ends, or MaxAttempts is exhausted. The returned error is the last
// attempt's, wrapped with the attempt count when attempts ran out, or
// joined with the context's error when the deadline cut the loop short.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	rnd := p.rand
	if rnd == nil {
		rnd = rand.Float64
	}
	sleep := p.sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := base << (attempt - 1)
			if d > maxd {
				d = maxd
			}
			var ae *afterError
			if errors.As(last, &ae) && ae.delay > 0 {
				d = ae.delay
			}
			if jitter > 0 {
				d = time.Duration(float64(d) * (1 - jitter*rnd()))
			}
			if err := sleep(ctx, d); err != nil {
				return errors.Join(err, last)
			}
			if p.Counters != nil {
				p.Counters.Retries.Add(1)
			}
		}
		if p.Counters != nil {
			p.Counters.Attempts.Add(1)
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			if p.Counters != nil {
				p.Counters.Permanent.Add(1)
			}
			return pe.err
		}
		last = err
	}
	if p.Counters != nil {
		p.Counters.Exhausted.Add(1)
	}
	return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, last)
}

// sleepCtx sleeps for d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
