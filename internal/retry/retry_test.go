package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordingPolicy returns a policy with instant, recorded sleeps and
// deterministic jitter.
func recordingPolicy(p Policy, slept *[]time.Duration) Policy {
	p.rand = func() float64 { return 1 } // maximum jitter reduction, deterministic
	p.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return p
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	p := recordingPolicy(Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Jitter: -1}, &slept)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Exponential: 100ms then 200ms (jitter disabled).
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != 200*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	p := recordingPolicy(Policy{MaxAttempts: 3, Jitter: -1}, &slept)
	calls := 0
	base := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return base })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("exhausted error %v does not wrap the last failure", err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	var slept []time.Duration
	p := recordingPolicy(Policy{MaxAttempts: 5}, &slept)
	calls := 0
	bad := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(bad)
	})
	if calls != 1 {
		t.Fatalf("permanent error was retried: %d calls", calls)
	}
	if err != bad {
		t.Fatalf("err = %v, want the unwrapped permanent error", err)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v before a permanent error", slept)
	}
}

func TestDoHonorsRetryAfter(t *testing.T) {
	var slept []time.Duration
	p := recordingPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}, &slept)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return After(errors.New("429"), 7*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The server-directed delay overrides the 1ms computed backoff.
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want the server-directed 7s", slept)
	}
}

func TestDoJitterReducesDelay(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	p.rand = func() float64 { return 1 }
	p.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	_ = p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want 50ms (100ms reduced by full 0.5 jitter)", slept)
	}
}

func TestDoDeadlineCutsRetryShort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	fail := errors.New("down")
	err := p.Do(ctx, func(context.Context) error { calls++; return fail })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (sleep must observe the dead context)", calls)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, fail) {
		t.Fatalf("err = %v, want both the context error and the last failure", err)
	}
}

func TestDefaultsAreFilledIn(t *testing.T) {
	// A zero policy must not spin without backoff; verify via the sleep
	// seam that delays are the documented defaults.
	var slept []time.Duration
	p := Policy{}
	p.rand = func() float64 { return 0 } // no jitter reduction
	p.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("attempt %d", calls)
	})
	if calls != 5 {
		t.Fatalf("calls = %d, want the default 5", calls)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestCountersAccumulateOutcomes(t *testing.T) {
	var c Counters
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Counters: &c}
	p.sleep = func(context.Context, time.Duration) error { return nil }

	// Two transient failures, then success: 3 attempts, 2 retries.
	calls := 0
	if err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	// A permanent failure on the first try: 1 attempt, no retries.
	_ = p.Do(context.Background(), func(context.Context) error {
		return Permanent(errors.New("bad request"))
	})
	// Exhaustion: MaxAttempts transient failures.
	_ = p.Do(context.Background(), func(context.Context) error {
		return errors.New("down")
	})

	if got, want := c.Attempts.Load(), uint64(3+1+3); got != want {
		t.Errorf("Attempts = %d, want %d", got, want)
	}
	if got, want := c.Retries.Load(), uint64(2+0+2); got != want {
		t.Errorf("Retries = %d, want %d", got, want)
	}
	if got := c.Permanent.Load(); got != 1 {
		t.Errorf("Permanent = %d, want 1", got)
	}
	if got := c.Exhausted.Load(); got != 1 {
		t.Errorf("Exhausted = %d, want 1", got)
	}
}
