// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must produce bit-identical workload traces across runs and
// across Go releases, so it cannot depend on math/rand (whose stream is not
// guaranteed stable between versions). The implementation is splitmix64
// (Steele, Lea, Flood; public domain), which passes BigCrush and is more
// than random enough for workload synthesis.
package rng

// RNG is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Clone returns an independent generator that continues r's stream from its
// current position (used by simulation checkpoints).
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full float53 resolution.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean mean
// (support {1, 2, 3, ...}). Used for dependency distances and run lengths.
// mean must be >= 1; values are capped at max if max > 0.
func (r *RNG) Geometric(mean float64, max int) int {
	if mean <= 1 {
		return 1
	}
	// P(success) per trial so that E = 1/p = mean.
	p := 1 / mean
	n := 1
	for !r.Bool(p) {
		n++
		if max > 0 && n >= max {
			return max
		}
	}
	return n
}

// Range returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to the weights. Weights must be non-negative and not all zero.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork returns a new generator whose stream is decorrelated from r but is a
// deterministic function of r's seed and the label. Use it to derive
// independent sub-streams (for example a wrong-path stream) from one seed.
func (r *RNG) Fork(label uint64) *RNG {
	// Hash the current state with the label through one splitmix round.
	z := r.state ^ (label * 0xda942042e4dd58b5)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(z ^ (z >> 31))
}
