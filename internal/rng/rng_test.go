package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds collided %d times in 1000 draws", same)
	}
}

func TestKnownValues(t *testing.T) {
	// Golden values pin the splitmix64 stream so workloads stay
	// reproducible forever. Reference: Vigna's splitmix64.c with seed 0.
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const buckets, n = 10, 500000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.02 {
			t.Fatalf("bucket %d count %d deviates >2%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const n = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) rate = %v", p, got)
		}
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const n = 200000
	for _, mean := range []float64{1, 2, 8, 32} {
		var sum int
		for i := 0; i < n; i++ {
			sum += r.Geometric(mean, 0)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.03 && mean > 1 {
			t.Fatalf("Geometric(%v) mean = %v", mean, got)
		}
		if mean == 1 && got != 1 {
			t.Fatalf("Geometric(1) mean = %v, want exactly 1", got)
		}
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.Geometric(100, 5); v > 5 || v < 1 {
			t.Fatalf("Geometric cap violated: %d", v)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	if v := r.Range(4, 4); v != 4 {
		t.Fatalf("Range(4,4) = %d", v)
	}
}

func TestPickWeights(t *testing.T) {
	r := New(23)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.1 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestForkDecorrelated(t *testing.T) {
	r := New(31)
	a := r.Fork(1)
	b := r.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(31).Fork(7)
	b := New(31).Fork(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork is not deterministic")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
