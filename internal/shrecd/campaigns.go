package shrecd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Campaign job states (aliases of the shared job states, kept for
// readability at the call sites and in the tests).
const (
	campaignRunning = jobRunning
	campaignDone    = jobDone
	campaignFailed  = jobFailed
)

// campaignJob is one asynchronous campaign in the shared job table.
type campaignJob = asyncJob[campaign.Spec, campaign.Progress, *campaign.Result]

// campaignStatus is the GET /campaigns/{id} (and list-entry) shape.
type campaignStatus struct {
	ID    string        `json:"id"`
	State string        `json:"state"`
	Spec  campaign.Spec `json:"spec"`
	// Progress carries trials done/total, resume provenance, the running
	// outcome counts, and the running Wilson-bounded coverage estimate.
	Progress campaign.Progress `json:"progress"`
	Error    string            `json:"error,omitempty"`
	// Phases is the job's accumulated phase timing breakdown (queue wait,
	// golden run, trials, and the sim stages underneath), in
	// first-recorded order.
	Phases []telemetry.PhaseStat `json:"phases,omitempty"`
	// Report is the typed campaign report, present once the job is done.
	Report    json.RawMessage `json:"report,omitempty"`
	StartedAt time.Time       `json:"started_at"`
	ElapsedS  float64         `json:"elapsed_s"`
}

// campaignStatusOf snapshots the job for serving.
func campaignStatusOf(j *campaignJob, withReport bool) campaignStatus {
	snap := j.snapshot()
	s := campaignStatus{
		ID:        j.id,
		State:     snap.State,
		Spec:      j.spec,
		Progress:  snap.Progress,
		Error:     snap.Err,
		Phases:    snap.Phases,
		StartedAt: j.started,
		ElapsedS:  snap.ElapsedS,
	}
	if withReport && snap.Result != nil {
		if raw, err := json.Marshal(snap.Result.Report()); err == nil {
			s.Report = raw
		}
	}
	return s
}

// campaignID derives the job identity from the normalized spec, so
// POSTing the same campaign twice — defaults spelled out or omitted —
// joins the running (or finished) job instead of spawning a duplicate.
func campaignID(spec campaign.Spec) string {
	return store.Digest("shrecd.campaign.v1", spec)[:16]
}

// handleCampaignStart serves POST /campaigns: validate the spec, cap its
// cost, and start (or join) the asynchronous job. The response is 202
// with the job id and a polling URL; trials run detached from the request
// context under the server's lifetime context, bounded by the suite's
// simulation parallelism rather than the request worker pool.
func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<10)
	var raw campaign.Spec
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Normalize first: statically impossible specs (unknown machine or
	// benchmark, bad rate or window) fail with 400 instead of burning an
	// async job slot on a campaign that can only fail, the cost caps
	// apply to the values as they will run (a zero Trials defaults to
	// campaign.DefaultTrials, which must not slip past an operator cap
	// below the default), and the job id hashes the normalized spec so
	// spelled-out defaults and omitted ones join the same job.
	spec, err := campaign.Normalize(raw, s.cfg.DefaultOptions)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("trials %d outside [1, %d]", spec.Trials, s.cfg.MaxTrials))
		return
	}
	if cap := s.cfg.MaxInstrs; cap > 0 {
		if spec.WarmupInstrs > uint64(cap) || spec.MeasureInstrs > uint64(cap) ||
			spec.WarmupInstrs+spec.MeasureInstrs > uint64(cap) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("requested instruction count exceeds the server cap of %d", cap))
			return
		}
		// The hang budget is a cost cap of the same kind: an uncapped
		// client-supplied MaxCycles would let one trial simulate
		// arbitrarily many cycles regardless of the instruction caps.
		// Cycle counts are the same order as instruction counts, so a
		// generous multiple of MaxInstrs bounds it without constraining
		// legitimate watchdog headroom.
		if maxBudget := 64 * cap; spec.MaxCycles > maxBudget {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("max_cycles %d exceeds the server cap of %d", spec.MaxCycles, maxBudget))
			return
		}
	}

	id := campaignID(spec)
	job, started, err := s.campaigns.startOrJoin(id, spec)
	if err != nil {
		s.shedRequests.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	if started {
		// Journal before the goroutine starts: once the 202 leaves, the
		// accepted job survives a crash. A journal write failure degrades
		// to the pre-journal behavior (the job runs, but is not resumed
		// after a crash) rather than rejecting the request.
		_ = s.journal.record("campaign", id, job.spec)
		go s.runCampaign(job)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "state": job.snapshot().State, "url": "/campaigns/" + id,
	})
}

// runCampaign drives one job to completion under its own cancelable
// child of the server's lifetime context (so the watchdog can stop just
// this job). The journal entry is settled only when the job finished on
// purpose: a run cut short by server shutdown stays pending, so the next
// process re-adopts it — exactly what a kill -9 leaves behind.
func (s *Server) runCampaign(job *campaignJob) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.setCancel(cancel)
	defer cancel()
	ctx, done := s.startJobTelemetry(ctx, "campaign", job.id, job, job.started)
	res, err := s.camp.Run(ctx, job.spec, job.setProgress)
	done(err)
	if job.finish(res, err) && !s.interrupted(err) {
		s.journal.finish("campaign", job.id, err)
	}
}

// handleCampaignGet serves GET /campaigns/{id}: the job status with
// progress, plus the typed report once done. ?format=text|csv renders
// just the finished report instead (409 while still running).
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.campaigns.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, campaignStatusOf(job, true))
	case "text", "csv":
		snap := job.snapshot()
		if snap.Result == nil {
			httpError(w, http.StatusConflict,
				fmt.Errorf("campaign %q is %s; no report yet", id, snap.State))
			return
		}
		rep := snap.Result.Report()
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_ = rep.CSV(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rep.Text(w)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have text, csv)", format))
	}
}

// handleCampaignList serves GET /campaigns: every job, newest first,
// without the (potentially large) reports.
func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	jobs := s.campaigns.all()
	out := make([]campaignStatus, len(jobs))
	for i, j := range jobs {
		out[i] = campaignStatusOf(j, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "campaigns": out})
}

// Close stops the server's background jobs (campaigns and explorations).
// In-flight work halts at the next engine checkpoint; finished trials
// and point evaluations have already been persisted (when a store is
// attached), so a restarted server resumes them.
func (s *Server) Close() {
	s.baseStop()
}
