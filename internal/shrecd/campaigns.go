package shrecd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/store"
)

// Campaign job states.
const (
	campaignRunning = "running"
	campaignDone    = "done"
	campaignFailed  = "failed"
)

// campaignJob tracks one asynchronous campaign from POST to completion.
type campaignJob struct {
	id      string
	spec    campaign.Spec
	started time.Time

	mu       sync.Mutex
	state    string
	progress campaign.Progress
	result   *campaign.Result
	errText  string
	finished time.Time
}

// campaignStatus is the GET /campaigns/{id} (and list-entry) shape.
type campaignStatus struct {
	ID    string        `json:"id"`
	State string        `json:"state"`
	Spec  campaign.Spec `json:"spec"`
	// Progress carries trials done/total, resume provenance, the running
	// outcome counts, and the running Wilson-bounded coverage estimate.
	Progress campaign.Progress `json:"progress"`
	Error    string            `json:"error,omitempty"`
	// Report is the typed campaign report, present once the job is done.
	Report    json.RawMessage `json:"report,omitempty"`
	StartedAt time.Time       `json:"started_at"`
	ElapsedS  float64         `json:"elapsed_s"`
}

// status snapshots the job for serving.
func (j *campaignJob) status(withReport bool) campaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := campaignStatus{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Progress:  j.progress,
		Error:     j.errText,
		StartedAt: j.started,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	s.ElapsedS = end.Sub(j.started).Seconds()
	if withReport && j.result != nil {
		if raw, err := json.Marshal(j.result.Report()); err == nil {
			s.Report = raw
		}
	}
	return s
}

// campaignID derives the job identity from the normalized spec, so
// POSTing the same campaign twice — defaults spelled out or omitted —
// joins the running (or finished) job instead of spawning a duplicate.
func campaignID(spec campaign.Spec) string {
	return store.Digest("shrecd.campaign.v1", spec)[:16]
}

// handleCampaignStart serves POST /campaigns: validate the spec, cap its
// cost, and start (or join) the asynchronous job. The response is 202
// with the job id and a polling URL; trials run detached from the request
// context under the server's lifetime context, bounded by the suite's
// simulation parallelism rather than the request worker pool.
func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<10)
	var raw campaign.Spec
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Normalize first: statically impossible specs (unknown machine or
	// benchmark, bad rate or window) fail with 400 instead of burning an
	// async job slot on a campaign that can only fail, the cost caps
	// apply to the values as they will run (a zero Trials defaults to
	// campaign.DefaultTrials, which must not slip past an operator cap
	// below the default), and the job id hashes the normalized spec so
	// spelled-out defaults and omitted ones join the same job.
	spec, err := campaign.Normalize(raw, s.cfg.DefaultOptions)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("trials %d outside [1, %d]", spec.Trials, s.cfg.MaxTrials))
		return
	}
	if cap := s.cfg.MaxInstrs; cap > 0 {
		if spec.WarmupInstrs > uint64(cap) || spec.MeasureInstrs > uint64(cap) ||
			spec.WarmupInstrs+spec.MeasureInstrs > uint64(cap) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("requested instruction count exceeds the server cap of %d", cap))
			return
		}
		// The hang budget is a cost cap of the same kind: an uncapped
		// client-supplied MaxCycles would let one trial simulate
		// arbitrarily many cycles regardless of the instruction caps.
		// Cycle counts are the same order as instruction counts, so a
		// generous multiple of MaxInstrs bounds it without constraining
		// legitimate watchdog headroom.
		if maxBudget := 64 * cap; spec.MaxCycles > maxBudget {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("max_cycles %d exceeds the server cap of %d", spec.MaxCycles, maxBudget))
			return
		}
	}

	id := campaignID(spec)
	s.jobsMu.Lock()
	job, ok := s.jobs[id]
	if ok {
		// Join the existing job unless it failed, in which case a fresh
		// POST retries it in place — reusing its own table slot (finished
		// trials resume from the store).
		job.mu.Lock()
		failed := job.state == campaignFailed
		job.mu.Unlock()
		if !failed {
			s.jobsMu.Unlock()
			writeJSON(w, http.StatusAccepted, map[string]any{
				"id": id, "state": job.status(false).State, "url": "/campaigns/" + id,
			})
			return
		}
	} else if !s.reserveJobSlotLocked() {
		// Only a new id needs a slot.
		s.jobsMu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("campaign job table full (%d running); retry when one finishes", s.cfg.MaxCampaigns))
		return
	}
	job = &campaignJob{id: id, spec: spec, started: time.Now(), state: campaignRunning}
	s.jobs[id] = job
	s.jobsMu.Unlock()

	go s.runCampaign(job)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "state": campaignRunning, "url": "/campaigns/" + id,
	})
}

// reserveJobSlotLocked bounds the jobs table (jobsMu held): when it is
// full, the oldest finished job is evicted to make room — its trial
// records persist in the store, so its campaign remains resumable by a
// fresh POST. With every slot occupied by a running job the table cannot
// shrink, and the caller must reject the request instead.
func (s *Server) reserveJobSlotLocked() bool {
	if len(s.jobs) < s.cfg.MaxCampaigns {
		return true
	}
	var oldest *campaignJob
	for _, j := range s.jobs {
		j.mu.Lock()
		done := j.state != campaignRunning
		j.mu.Unlock()
		if done && (oldest == nil || j.started.Before(oldest.started)) {
			oldest = j
		}
	}
	if oldest == nil {
		return false
	}
	delete(s.jobs, oldest.id)
	return true
}

// runCampaign drives one job to completion under the server's lifetime
// context.
func (s *Server) runCampaign(job *campaignJob) {
	res, err := s.camp.Run(s.baseCtx, job.spec, func(p campaign.Progress) {
		job.mu.Lock()
		job.progress = p
		job.mu.Unlock()
	})
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if err != nil {
		job.state = campaignFailed
		job.errText = err.Error()
		return
	}
	job.state = campaignDone
	job.result = res
}

// handleCampaignGet serves GET /campaigns/{id}: the job status with
// progress, plus the typed report once done. ?format=text|csv renders
// just the finished report instead (409 while still running).
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	job, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, job.status(true))
	case "text", "csv":
		job.mu.Lock()
		res := job.result
		job.mu.Unlock()
		if res == nil {
			httpError(w, http.StatusConflict,
				fmt.Errorf("campaign %q is %s; no report yet", id, job.status(false).State))
			return
		}
		rep := res.Report()
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_ = rep.CSV(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rep.Text(w)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have text, csv)", format))
	}
}

// handleCampaignList serves GET /campaigns: every job, newest first,
// without the (potentially large) reports.
func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	jobs := make([]*campaignJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobsMu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].started.After(jobs[b].started) })
	out := make([]campaignStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "campaigns": out})
}

// Close stops the server's background campaigns. In-flight trials halt at
// their next engine checkpoint; finished trials have already been
// persisted (when a store is attached), so a restarted server resumes
// them.
func (s *Server) Close() {
	s.baseStop()
}
