package shrecd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// campaignServer builds a server at tiny run lengths for campaign tests.
func campaignServer(t *testing.T) *Server {
	t.Helper()
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := NewWith(Config{DefaultOptions: opt, MaxConcurrent: 4}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	return s
}

// getJSON decodes a GET response into v.
func getJSON(t *testing.T, h http.Handler, path string, v any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, w.Body.String())
		}
	}
	return w.Code
}

func TestCampaignEndpointLifecycle(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()

	body := `{"machine":"shrec","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7}`
	w := postJSON(t, h, "/campaigns", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /campaigns = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	if started.ID == "" || started.URL != "/campaigns/"+started.ID {
		t.Fatalf("bad start response: %+v", started)
	}

	// A duplicate POST joins the same job instead of spawning a second —
	// including a normalized-equivalent spec with the defaults spelled
	// out explicitly.
	w2 := postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7,`+
			`"warmup_instrs":2000,"measure_instrs":5000,"window_hi":5000}`)
	var dup struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != started.ID {
		t.Fatalf("duplicate POST spawned a new job: %q vs %q", dup.ID, started.ID)
	}

	// Poll until done; the snapshot carries progress and, at the end, the
	// typed report with the Wilson-bounded coverage estimate.
	deadline := time.Now().Add(30 * time.Second)
	var status campaignStatus
	for {
		if code := getJSON(t, h, started.URL, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", started.URL, code)
		}
		if status.State == campaignDone {
			break
		}
		if status.State == campaignFailed {
			t.Fatalf("campaign failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish; last status %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.Progress.Done != 8 || status.Progress.Total != 8 {
		t.Fatalf("final progress %+v", status.Progress)
	}
	if status.Progress.Coverage.N == 0 && status.Progress.Counts.Clean != 8 {
		t.Fatalf("no coverage estimate in %+v", status.Progress)
	}
	if len(status.Report) == 0 || !strings.Contains(string(status.Report), "Wilson") {
		t.Fatalf("done status lacks the report: %s", status.Report)
	}

	// The text rendering is served directly once done.
	req := httptest.NewRequest(http.MethodGet, started.URL+"?format=text", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Trial outcomes") {
		t.Fatalf("text report = %d:\n%s", rec.Code, rec.Body.String())
	}

	// The list endpoint names the job.
	var list struct {
		Count     int              `json:"count"`
		Campaigns []campaignStatus `json:"campaigns"`
	}
	if code := getJSON(t, h, "/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET /campaigns = %d", code)
	}
	if list.Count != 1 || list.Campaigns[0].ID != started.ID {
		t.Fatalf("bad list: %+v", list)
	}
}

// TestCampaignEndpointRecovery pins the recovery wiring over HTTP: a
// campaign POSTed with a recovery mode normalizes it into the job
// identity, runs under the policy, and reports availability.
func TestCampaignEndpointRecovery(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()

	body := `{"machine":"shrec","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7,` +
		`"recovery":"ckpt@256+depth2"}`
	w := postJSON(t, h, "/campaigns", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /campaigns = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	// The recovery policy is part of the job identity: the same campaign
	// without it is a different job.
	w2 := postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7}`)
	var plain struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.ID == started.ID {
		t.Fatal("recovery policy did not split the job identity")
	}

	deadline := time.Now().Add(30 * time.Second)
	var status campaignStatus
	for {
		if code := getJSON(t, h, started.URL, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", started.URL, code)
		}
		if status.State == campaignDone {
			break
		}
		if status.State == campaignFailed {
			t.Fatalf("campaign failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish; last status %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.Spec.Recovery != "ckpt@256+depth2" {
		t.Fatalf("served spec lost the recovery mode: %+v", status.Spec)
	}
	for _, want := range []string{"availability %", "rollbacks"} {
		if !strings.Contains(string(status.Report), want) {
			t.Fatalf("recovery report lacks %q: %s", want, status.Report)
		}
	}
	// A malformed recovery mode is rejected synchronously.
	bad := postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":1,"recovery":"ckpt@64k+width2"}`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("malformed recovery mode = %d, want 400: %s", bad.Code, bad.Body.String())
	}
}

func TestCampaignValidation(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()
	for _, body := range []string{
		`{"machine":"nope","benchmark":"crafty"}`,                              // unknown machine: rejected synchronously
		`{"machine":"shrec","benchmark":"nope"}`,                               // unknown benchmark
		`{"machine":"shrec","benchmark":"crafty","fault_rate":1.5}`,            // rate out of range
		`{"machine":"shrec","benchmark":"crafty","trials":999999}`,             // over MaxTrials
		`{"machine":"shrec","benchmark":"crafty","warmup_instrs":99999999999}`, // over MaxInstrs
		`not json`,
	} {
		if w := postJSON(t, h, "/campaigns", body); w.Code != http.StatusBadRequest {
			t.Fatalf("bad body %q = %d, want 400: %s", body, w.Code, w.Body.String())
		}
	}
	// No job-table slot was burned by any rejected spec.
	var list struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, h, "/campaigns", &list); code != http.StatusOK || list.Count != 0 {
		t.Fatalf("rejected specs occupy the job table: code %d, count %d", code, list.Count)
	}
	if code := func() int {
		req := httptest.NewRequest(http.MethodGet, "/campaigns/doesnotexist", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}(); code != http.StatusNotFound {
		t.Fatalf("unknown campaign id = %d, want 404", code)
	}
}

// TestCampaignCaps pins the cost caps: the trial cap applies to the
// normalized (defaulted) trial count, the hang budget is bounded, and
// the job table evicts finished jobs but rejects when saturated with
// running ones.
func TestCampaignCaps(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := NewWith(Config{DefaultOptions: opt, MaxTrials: 50, MaxCampaigns: 2}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	h := s.Handler()

	// Omitting trials must not bypass a cap below DefaultTrials (100).
	w := postJSON(t, h, "/campaigns", `{"machine":"shrec","benchmark":"crafty"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("defaulted trials over cap accepted: %d %s", w.Code, w.Body.String())
	}

	// An absurd client-supplied hang budget is rejected.
	w = postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":1,"max_cycles":4611686018427387904}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unbounded max_cycles accepted: %d %s", w.Code, w.Body.String())
	}

	// Fill the job table with two tiny campaigns and let them finish.
	for _, seed := range []string{"1", "2"} {
		w := postJSON(t, h, "/campaigns",
			`{"machine":"shrec","benchmark":"crafty","trials":2,"seed":`+seed+`}`)
		if w.Code != http.StatusAccepted {
			t.Fatalf("tiny campaign rejected: %d %s", w.Code, w.Body.String())
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var list struct {
			Campaigns []campaignStatus `json:"campaigns"`
		}
		getJSON(t, h, "/campaigns", &list)
		done := 0
		for _, c := range list.Campaigns {
			if c.State == campaignDone {
				done++
			}
		}
		if done == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaigns did not finish: %+v", list)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A third campaign evicts the oldest finished job rather than being
	// rejected.
	w = postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":2,"seed":3}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("eviction did not make room: %d %s", w.Code, w.Body.String())
	}
	var list struct {
		Count int `json:"count"`
	}
	getJSON(t, h, "/campaigns", &list)
	if list.Count != 2 {
		t.Fatalf("job table holds %d entries, want 2 (bounded)", list.Count)
	}
}
