package shrecd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/explore"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// explorationJob is one asynchronous design-space exploration in the
// shared job table.
type explorationJob = asyncJob[explore.Spec, explore.Progress, *explore.Result]

// explorationStatus is the GET /explorations/{id} (and list-entry)
// shape.
type explorationStatus struct {
	ID    string       `json:"id"`
	State string       `json:"state"`
	Spec  explore.Spec `json:"spec"`
	// Progress carries the evaluation phase (screen/full), evaluations
	// done/total within it, and resume provenance.
	Progress explore.Progress `json:"progress"`
	Error    string           `json:"error,omitempty"`
	// Phases is the job's accumulated phase timing breakdown (queue wait,
	// baseline run, screen/full evaluations, and the sim stages
	// underneath), in first-recorded order.
	Phases []telemetry.PhaseStat `json:"phases,omitempty"`
	// Frontier summarizes the result once done: the Pareto-efficient
	// point specs in space order.
	Frontier []string `json:"frontier,omitempty"`
	// Report is the typed Pareto report, present once the job is done.
	Report    json.RawMessage `json:"report,omitempty"`
	StartedAt time.Time       `json:"started_at"`
	ElapsedS  float64         `json:"elapsed_s"`
}

// explorationStatusOf snapshots the job for serving.
func explorationStatusOf(j *explorationJob, withReport bool) explorationStatus {
	snap := j.snapshot()
	s := explorationStatus{
		ID:        j.id,
		State:     snap.State,
		Spec:      j.spec,
		Progress:  snap.Progress,
		Error:     snap.Err,
		Phases:    snap.Phases,
		StartedAt: j.started,
		ElapsedS:  snap.ElapsedS,
	}
	if snap.Result != nil {
		for _, ev := range snap.Result.FrontierEvals() {
			s.Frontier = append(s.Frontier, ev.Spec)
		}
		if withReport {
			if raw, err := json.Marshal(snap.Result.Report()); err == nil {
				s.Report = raw
			}
		}
	}
	return s
}

// explorationID derives the job identity from the normalized spec, so
// POSTing the same exploration twice — defaults spelled out or omitted —
// joins the running (or finished) job instead of spawning a duplicate.
func explorationID(spec explore.Spec) string {
	return store.Digest("shrecd.exploration.v1", spec)[:16]
}

// handleExplorationStart serves POST /explorations: validate and
// normalize the spec, cap its cost (space size, budget, trials, run
// lengths), and start (or join) the asynchronous job. The response is
// 202 with the job id and a polling URL; evaluations run detached from
// the request context under the server's lifetime context, bounded by
// the suite's simulation parallelism.
func (s *Server) handleExplorationStart(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 256<<10)
	var raw explore.Spec
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Normalize first, for the same reasons as campaigns: impossible
	// specs fail synchronously with 400, the caps apply to the values as
	// they will run, and the job id hashes the normalized spec.
	spec, err := explore.Normalize(raw, s.cfg.DefaultOptions)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if size := spec.Space.Size(); size > s.cfg.MaxPoints {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("space of %d points exceeds the server cap of %d", size, s.cfg.MaxPoints))
		return
	}
	// Enumerate the (capped) space once: a base whose modifiers collide
	// with an axis produces points without a canonical spec, which must
	// fail here with 400 rather than land the async job in "failed".
	if _, err := spec.Space.Points(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Budget > s.cfg.MaxPoints {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("budget %d exceeds the server cap of %d", spec.Budget, s.cfg.MaxPoints))
		return
	}
	if spec.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("trials %d outside [1, %d]", spec.Trials, s.cfg.MaxTrials))
		return
	}
	if cap := s.cfg.MaxInstrs; cap > 0 {
		if spec.WarmupInstrs > uint64(cap) || spec.MeasureInstrs > uint64(cap) ||
			spec.WarmupInstrs+spec.MeasureInstrs > uint64(cap) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("requested instruction count exceeds the server cap of %d", cap))
			return
		}
	}

	id := explorationID(spec)
	job, started, err := s.explorations.startOrJoin(id, spec)
	if err != nil {
		s.shedRequests.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	if started {
		// Journal before the goroutine starts (see handleCampaignStart).
		_ = s.journal.record("exploration", id, job.spec)
		go s.runExploration(job)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "state": job.snapshot().State, "url": "/explorations/" + id,
	})
}

// runExploration drives one job to completion under its own cancelable
// child of the server's lifetime context; journal settlement follows the
// same interrupted-stays-pending rule as runCampaign.
func (s *Server) runExploration(job *explorationJob) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.setCancel(cancel)
	defer cancel()
	ctx, done := s.startJobTelemetry(ctx, "exploration", job.id, job, job.started)
	res, err := s.expl.Run(ctx, job.spec, job.setProgress)
	done(err)
	if job.finish(res, err) && !s.interrupted(err) {
		s.journal.finish("exploration", job.id, err)
	}
}

// handleExplorationGet serves GET /explorations/{id}: the job status
// with progress, the frontier specs, and the typed report once done.
// ?format=text|csv renders just the finished report instead (409 while
// still running).
func (s *Server) handleExplorationGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.explorations.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown exploration %q", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, explorationStatusOf(job, true))
	case "text", "csv":
		snap := job.snapshot()
		if snap.Result == nil {
			httpError(w, http.StatusConflict,
				fmt.Errorf("exploration %q is %s; no report yet", id, snap.State))
			return
		}
		rep := snap.Result.Report()
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_ = rep.CSV(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rep.Text(w)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have text, csv)", format))
	}
}

// handleExplorationList serves GET /explorations: every job, newest
// first, without the (potentially large) reports.
func (s *Server) handleExplorationList(w http.ResponseWriter, r *http.Request) {
	jobs := s.explorations.all()
	out := make([]explorationStatus, len(jobs))
	for i, j := range jobs {
		out[i] = explorationStatusOf(j, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "explorations": out})
}
