package shrecd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestExplorationEndpointLifecycle(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()

	body := `{"space":{"bases":["ss1","ss2","shrec","diva"]},"seed":7}`
	w := postJSON(t, h, "/explorations", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /explorations = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	if started.ID == "" || started.URL != "/explorations/"+started.ID {
		t.Fatalf("bad start response: %+v", started)
	}

	// A duplicate POST joins the same job — including a
	// normalized-equivalent spec with the defaults spelled out.
	w2 := postJSON(t, h, "/explorations",
		`{"space":{"bases":["ss1","ss2","shrec","diva"]},"seed":7,"strategy":"grid",`+
			`"benchmarks":["crafty"],"warmup_instrs":2000,"measure_instrs":5000,`+
			`"screen_div":8,"budget":4,"trials":24}`)
	var dup struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != started.ID {
		t.Fatalf("duplicate POST spawned a new job: %q vs %q", dup.ID, started.ID)
	}

	// Poll until done; the snapshot carries phase progress and, at the
	// end, the frontier specs and the typed Pareto report.
	deadline := time.Now().Add(30 * time.Second)
	var status explorationStatus
	for {
		if code := getJSON(t, h, started.URL, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", started.URL, code)
		}
		if status.State == jobDone {
			break
		}
		if status.State == jobFailed {
			t.Fatalf("exploration failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration did not finish; last status %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.Progress.Done != 4 || status.Progress.Total != 4 || status.Progress.Phase != "full" {
		t.Fatalf("final progress %+v", status.Progress)
	}
	if len(status.Frontier) == 0 {
		t.Fatal("done status lacks the frontier")
	}
	if len(status.Report) == 0 || !strings.Contains(string(status.Report), "Pareto frontier") {
		t.Fatalf("done status lacks the report: %s", status.Report)
	}

	// The text rendering is served directly once done.
	req := httptest.NewRequest(http.MethodGet, started.URL+"?format=text", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "All full-fidelity points") {
		t.Fatalf("text report = %d:\n%s", rec.Code, rec.Body.String())
	}

	// The list endpoint names the job.
	var list struct {
		Count        int                 `json:"count"`
		Explorations []explorationStatus `json:"explorations"`
	}
	if code := getJSON(t, h, "/explorations", &list); code != http.StatusOK {
		t.Fatalf("GET /explorations = %d", code)
	}
	if list.Count != 1 || list.Explorations[0].ID != started.ID {
		t.Fatalf("bad list: %+v", list)
	}
}

// TestExplorationValidation pins synchronous rejection: statically
// impossible or over-cap specs must fail with 400 without burning a job
// slot.
func TestExplorationValidation(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := NewWith(Config{DefaultOptions: opt, MaxPoints: 8, MaxTrials: 50}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	h := s.Handler()
	for _, body := range []string{
		`{"space":{"bases":[]}}`,                                          // empty space
		`{"space":{"bases":["nope"]}}`,                                    // unknown base
		`{"space":{"bases":["ss1"]},"strategy":"random"}`,                 // unknown strategy
		`{"space":{"bases":["ss1"]},"benchmarks":["nope"]}`,               // unknown benchmark
		`{"space":{"bases":["ss1"],"xscales":[0]}}`,                       // bad axis
		`{"space":{"bases":["shrec@x1.4"],"xscales":[1.2]}}`,              // base+axis modifier collision
		`{"space":{"bases":["ss1","ss2","shrec"],"xscales":[0.5,1,1.5]}}`, // 9 points > MaxPoints 8
		`{"space":{"bases":["ss1"]},"budget":9999}`,                       // budget over cap
		`{"space":{"bases":["ss1"],"fault_rates":[0.0001]},"trials":51}`,  // trials over cap
		`{"space":{"bases":["ss1"]},"warmup_instrs":99999999999}`,         // over MaxInstrs
		`not json`,
	} {
		if w := postJSON(t, h, "/explorations", body); w.Code != http.StatusBadRequest {
			t.Fatalf("bad body %q = %d, want 400: %s", body, w.Code, w.Body.String())
		}
	}
	var list struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, h, "/explorations", &list); code != http.StatusOK || list.Count != 0 {
		t.Fatalf("rejected specs occupy the job table: code %d, count %d", code, list.Count)
	}
	if code := func() int {
		req := httptest.NewRequest(http.MethodGet, "/explorations/doesnotexist", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}(); code != http.StatusNotFound {
		t.Fatalf("unknown exploration id = %d, want 404", code)
	}
}

// TestExplorationJobTableBounds pins the shared job-table behavior for
// explorations: finished jobs are evicted to make room, and the list
// stays bounded.
func TestExplorationJobTableBounds(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := NewWith(Config{DefaultOptions: opt, MaxExplorations: 2}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	h := s.Handler()

	for _, seed := range []string{"1", "2"} {
		w := postJSON(t, h, "/explorations", `{"space":{"bases":["ss1"]},"seed":`+seed+`}`)
		if w.Code != http.StatusAccepted {
			t.Fatalf("tiny exploration rejected: %d %s", w.Code, w.Body.String())
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var list struct {
			Explorations []explorationStatus `json:"explorations"`
		}
		getJSON(t, h, "/explorations", &list)
		done := 0
		for _, e := range list.Explorations {
			if e.State == jobDone {
				done++
			}
		}
		if done == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("explorations did not finish: %+v", list)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A third exploration evicts the oldest finished job.
	w := postJSON(t, h, "/explorations", `{"space":{"bases":["ss1"]},"seed":3}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("eviction did not make room: %d %s", w.Code, w.Body.String())
	}
	var list struct {
		Count int `json:"count"`
	}
	getJSON(t, h, "/explorations", &list)
	if list.Count != 2 {
		t.Fatalf("job table holds %d entries, want 2 (bounded)", list.Count)
	}
}
