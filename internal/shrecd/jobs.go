package shrecd

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Shared asynchronous-job machinery behind POST /campaigns and
// POST /explorations: a bounded job table keyed by normalized-spec
// digest, so duplicate submissions join the running (or finished) job, a
// failed job is retried in place by a fresh POST, the oldest finished
// job is evicted when the table fills, and a table saturated with
// running jobs rejects new work (the handlers map that to 429). It was
// extracted from the campaign endpoints when explorations arrived, so
// both job kinds share one implementation instead of two copies.

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// asyncJob tracks one asynchronous job from POST to completion: spec S,
// progress snapshots P, and result R (a pointer type; nil until done).
type asyncJob[S, P, R any] struct {
	id      string
	spec    S
	started time.Time

	mu       sync.Mutex
	state    string
	progress P
	result   R
	errText  string
	finished time.Time
	lastBeat time.Time          // last progress report, for the watchdog
	cancel   context.CancelFunc // stops the job's context (watchdog kill)
	span     *telemetry.Span    // phase timings; nil until the run starts
}

// setProgress records a progress snapshot and refreshes the watchdog
// heartbeat.
func (j *asyncJob[S, P, R]) setProgress(p P) {
	j.mu.Lock()
	j.progress = p
	j.lastBeat = time.Now()
	j.mu.Unlock()
}

// setCancel attaches the job's context cancel so the watchdog can stop
// a wedged job's work, not just relabel it.
func (j *asyncJob[S, P, R]) setCancel(c context.CancelFunc) {
	j.mu.Lock()
	j.cancel = c
	j.mu.Unlock()
}

// setSpan attaches the job's telemetry span; status snapshots read its
// phase breakdown from then on.
func (j *asyncJob[S, P, R]) setSpan(sp *telemetry.Span) {
	j.mu.Lock()
	j.span = sp
	j.mu.Unlock()
}

// finish records the job's outcome. It is idempotent — the first
// outcome wins — so a watchdog kill racing the job's own completion
// cannot flip a finished job's state. Reports whether this call settled
// the job.
func (j *asyncJob[S, P, R]) finish(res R, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobRunning {
		return false
	}
	j.finished = time.Now()
	if err != nil {
		j.state = jobFailed
		j.errText = err.Error()
		return true
	}
	j.state = jobDone
	j.result = res
	return true
}

// jobSnapshot is a consistent read of a job's mutable fields.
type jobSnapshot[P, R any] struct {
	State    string
	Progress P
	Result   R
	Err      string
	ElapsedS float64
	Phases   []telemetry.PhaseStat
}

// snapshot reads the job under its lock.
func (j *asyncJob[S, P, R]) snapshot() jobSnapshot[P, R] {
	j.mu.Lock()
	span := j.span
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	snap := jobSnapshot[P, R]{
		State:    j.state,
		Progress: j.progress,
		Result:   j.result,
		Err:      j.errText,
		ElapsedS: end.Sub(j.started).Seconds(),
	}
	j.mu.Unlock()
	// Breakdown takes the span's own lock; nil spans return nil.
	snap.Phases = span.Breakdown()
	return snap
}

// jobTable is a bounded map of asynchronous jobs keyed by
// normalized-spec digest. All methods are safe for concurrent use.
type jobTable[S, P, R any] struct {
	kind string // "campaign", "exploration": error text only
	max  int

	mu   sync.Mutex
	jobs map[string]*asyncJob[S, P, R]
}

// newJobTable builds a table bounded at max jobs.
func newJobTable[S, P, R any](kind string, max int) *jobTable[S, P, R] {
	return &jobTable[S, P, R]{kind: kind, max: max,
		jobs: make(map[string]*asyncJob[S, P, R])}
}

// startOrJoin resolves the job for id: an existing live job is joined
// (started false); a failed job is replaced in its own slot by a fresh
// one, so a retrying POST resumes it from whatever the store kept
// (started true); a new id reserves a slot, evicting the oldest finished
// job when the table is full. With every slot running, err is non-nil
// and the caller must reject the request (429).
func (t *jobTable[S, P, R]) startOrJoin(id string, spec S) (job *asyncJob[S, P, R], started bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.jobs[id]; ok {
		j.mu.Lock()
		failed := j.state == jobFailed
		j.mu.Unlock()
		if !failed {
			return j, false, nil
		}
		// Retry in place: reuse the failed job's slot.
	} else if !t.reserveSlotLocked() {
		return nil, false, fmt.Errorf("%s job table full (%d running); retry when one finishes", t.kind, t.max)
	}
	now := time.Now()
	j := &asyncJob[S, P, R]{id: id, spec: spec, started: now, state: jobRunning, lastBeat: now}
	t.jobs[id] = j
	return j, true, nil
}

// reserveSlotLocked bounds the table (t.mu held): when full, the oldest
// finished job is evicted to make room — its persisted records outlive
// the slot, so its work remains resumable by a fresh POST. With every
// slot occupied by a running job the table cannot shrink.
func (t *jobTable[S, P, R]) reserveSlotLocked() bool {
	if len(t.jobs) < t.max {
		return true
	}
	var oldest *asyncJob[S, P, R]
	for _, j := range t.jobs {
		j.mu.Lock()
		done := j.state != jobRunning
		j.mu.Unlock()
		if done && (oldest == nil || j.started.Before(oldest.started)) {
			oldest = j
		}
	}
	if oldest == nil {
		return false
	}
	delete(t.jobs, oldest.id)
	return true
}

// failWedged sweeps the table for running jobs whose last progress
// report is older than timeout, cancels their work, and marks them
// failed so their slot can be reclaimed (and a fresh POST can retry
// them from whatever the store kept). Returns the ids it killed.
func (t *jobTable[S, P, R]) failWedged(timeout time.Duration) []string {
	t.mu.Lock()
	jobs := make([]*asyncJob[S, P, R], 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()

	var killed []string
	cutoff := time.Now().Add(-timeout)
	for _, j := range jobs {
		j.mu.Lock()
		wedged := j.state == jobRunning && j.lastBeat.Before(cutoff)
		cancel := j.cancel
		j.mu.Unlock()
		if !wedged {
			continue
		}
		if cancel != nil {
			cancel()
		}
		var zero R
		if j.finish(zero, fmt.Errorf("watchdog: no progress in %v; job marked wedged", timeout)) {
			killed = append(killed, j.id)
		}
	}
	return killed
}

// get returns the job for id.
func (t *jobTable[S, P, R]) get(id string) (*asyncJob[S, P, R], bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// all returns every job, newest first.
func (t *jobTable[S, P, R]) all() []*asyncJob[S, P, R] {
	t.mu.Lock()
	jobs := make([]*asyncJob[S, P, R], 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].started.After(jobs[b].started) })
	return jobs
}
