package shrecd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/store"
)

// errTableFull distinguishes "no slot for this job right now" (the
// journal entry stays pending and replays at the next startup) from
// permanent replay failures (the entry is marked failed).
var errTableFull = errors.New("job table full")

// The write-ahead job journal makes accepted work survive a crash:
// POST /campaigns and POST /explorations append the normalized spec to
// the journal store *before* the job starts (and before the 202 leaves
// the server), and the entry is only marked done/failed when the job
// finishes on purpose. A shrecd killed mid-job therefore leaves the
// entry pending, and the next startup replays the journal, re-adopts
// every pending job, and restarts it through the engines' per-digest
// trial/point resume — finished work is read back from the result
// store, so only the trials in flight at the kill are re-executed.
// That turns kill -9 into a bounded-lost-work event, exactly the
// checkpoint discipline the simulated machines use.
//
// The journal rides on the same segmented store format as results
// (open it with store.SyncAlways: a journal whose entries can be lost
// to a power cut is just a log). Entries are keyed by job id, so a
// resubmitted spec overwrites its own entry rather than growing the
// journal, and compaction prunes superseded states.

// Journal entry states.
const (
	journalPending = "pending"
	journalDone    = "done"
	journalFailed  = "failed"
)

// journalEntry is the stored shape of one accepted job.
type journalEntry struct {
	Kind  string          `json:"kind"` // "campaign" | "exploration"
	ID    string          `json:"id"`
	Spec  json.RawMessage `json:"spec"`
	State string          `json:"state"`
	Error string          `json:"error,omitempty"`
}

// journalKeyPrefix namespaces journal records; the version bumps if the
// entry schema ever changes shape incompatibly.
const journalKeyPrefix = "shrecd.journal.v1."

func journalKey(kind, id string) string { return journalKeyPrefix + kind + "." + id }

// jobJournal wraps the journal store. A nil receiver is a no-op
// journal, so the server code never branches on "journaling enabled".
type jobJournal struct {
	st *store.Store
}

func newJobJournal(st *store.Store) *jobJournal {
	if st == nil {
		return nil
	}
	return &jobJournal{st: st}
}

// record journals an accepted job as pending. Called before the job's
// goroutine starts: if this write fails the caller still runs the job
// (availability over durability), it just won't be resumed after a
// crash.
func (j *jobJournal) record(kind, id string, spec any) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("journal: encoding %s %s: %w", kind, id, err)
	}
	return j.st.Put(journalKey(kind, id), journalEntry{
		Kind: kind, ID: id, Spec: raw, State: journalPending,
	})
}

// finish marks a job's entry done or failed. The entry is kept (not
// deleted) so operators can audit outcomes; compaction keeps the
// superseded pending record from accumulating.
func (j *jobJournal) finish(kind, id string, jobErr error) {
	if j == nil {
		return
	}
	var e journalEntry
	ok, err := j.st.Get(journalKey(kind, id), &e)
	if err != nil || !ok {
		e = journalEntry{Kind: kind, ID: id}
	}
	if jobErr != nil {
		e.State = journalFailed
		e.Error = jobErr.Error()
	} else {
		e.State = journalDone
		e.Error = ""
	}
	_ = j.st.Put(journalKey(kind, id), e)
}

// pending returns every journaled job that never finished, in stable
// (store-range) order.
func (j *jobJournal) pending() []journalEntry {
	if j == nil {
		return nil
	}
	var out []journalEntry
	j.st.Range(func(key string, raw json.RawMessage) bool {
		if len(key) < len(journalKeyPrefix) || key[:len(journalKeyPrefix)] != journalKeyPrefix {
			return true
		}
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return true // a corrupt entry must never fail replay
		}
		if e.State == journalPending {
			out = append(out, e)
		}
		return true
	})
	return out
}

// depth counts pending entries (the /healthz journal depth).
func (j *jobJournal) depth() int {
	return len(j.pending())
}

// replayJournal re-adopts every pending journaled job at startup:
// decode its spec, re-reserve its slot in the job table, and restart it
// through the normal run path (whose engines resume finished trials and
// points from the result store). Corrupt or undecodable entries are
// marked failed and skipped — replay must never prevent the server from
// coming up.
func (s *Server) replayJournal() {
	for _, e := range s.journal.pending() {
		s.journalReplayed.Add(1)
		var err error
		switch e.Kind {
		case "campaign":
			err = s.readoptCampaign(e)
		case "exploration":
			err = s.readoptExploration(e)
		default:
			err = fmt.Errorf("unknown journal kind %q", e.Kind)
		}
		if errors.Is(err, errTableFull) {
			s.log.Warn("journal replay deferred: job table full", "kind", e.Kind, "job_id", e.ID)
			continue // stays pending; replays at the next startup
		}
		if err != nil {
			// Journal the failure so the entry does not replay forever.
			s.log.Warn("journal replay failed", "kind", e.Kind, "job_id", e.ID, "error", err.Error())
			s.journal.finish(e.Kind, e.ID, fmt.Errorf("replay: %w", err))
			continue
		}
		s.log.Info("re-adopted journaled job", "kind", e.Kind, "job_id", e.ID)
		s.jobsReadopted.Add(1)
	}
}

// readoptCampaign restarts one journaled campaign.
func (s *Server) readoptCampaign(e journalEntry) error {
	var spec campaign.Spec
	if err := json.Unmarshal(e.Spec, &spec); err != nil {
		return fmt.Errorf("decoding campaign spec: %w", err)
	}
	job, started, err := s.campaigns.startOrJoin(e.ID, spec)
	if err != nil {
		return fmt.Errorf("%w: %v", errTableFull, err)
	}
	if started {
		go s.runCampaign(job)
	}
	return nil
}

// readoptExploration restarts one journaled exploration.
func (s *Server) readoptExploration(e journalEntry) error {
	var spec explore.Spec
	if err := json.Unmarshal(e.Spec, &spec); err != nil {
		return fmt.Errorf("decoding exploration spec: %w", err)
	}
	job, started, err := s.explorations.startOrJoin(e.ID, spec)
	if err != nil {
		return fmt.Errorf("%w: %v", errTableFull, err)
	}
	if started {
		go s.runExploration(job)
	}
	return nil
}

// interrupted reports whether a job error means "the server is shutting
// down" rather than "the job failed": in that case the journal entry
// must stay pending so the next process re-adopts the job, mirroring
// what a kill -9 (which writes nothing at all) leaves behind.
func (s *Server) interrupted(err error) bool {
	return err != nil && errors.Is(err, context.Canceled) && s.baseCtx.Err() != nil
}
