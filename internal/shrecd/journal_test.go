package shrecd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/sim"
	"repro/internal/store"
)

// crashSpec is the campaign used by the kill-and-rejoin tests: enough
// trials that the server can be killed mid-run with work both behind
// and ahead of it.
const crashSpec = `{"machine":"shrec","benchmark":"crafty","trials":256,"fault_rate":2e-4,"seed":11}`

// openJournalStores opens the result store and the fsync-always journal
// under dir, as cmd/shrecd does.
func openJournalStores(t *testing.T, dir string) (results, journal *store.Store) {
	t.Helper()
	rs, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	js, err := store.OpenWith(filepath.Join(dir, "journal"), store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return rs, js
}

// waitCampaignDone polls the job table until the campaign finishes.
func waitCampaignDone(t *testing.T, s *Server, id string, within time.Duration) *campaign.Result {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if job, ok := s.campaigns.get(id); ok {
			snap := job.snapshot()
			switch snap.State {
			case jobDone:
				return snap.Result
			case jobFailed:
				t.Fatalf("campaign %s failed: %s", id, snap.Err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s did not finish within %v", id, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashRejoinResumesCampaign is the in-process kill-and-rejoin
// acceptance test: a campaign killed mid-run (the server closed between
// two trial writes, exactly what kill -9 leaves behind: a pending
// journal entry and a partial result store) is re-adopted by the next
// server from the journal alone — no client re-POST — finishes with
// strictly fewer trials re-executed, and produces trial records
// byte-identical to an uninterrupted run.
func TestCrashRejoinResumesCampaign(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}

	// Golden: the same campaign, uninterrupted, no stores.
	gs := NewWith(Config{DefaultOptions: opt}, sim.NewSuite(opt))
	t.Cleanup(gs.Close)
	w := postJSON(t, gs.Handler(), "/campaigns", crashSpec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("golden POST = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	golden := waitCampaignDone(t, gs, started.ID, 60*time.Second)

	// Run 1: the same campaign over a journal + result store.
	dir := t.TempDir()
	rs1, js1 := openJournalStores(t, dir)
	s1 := NewWith(Config{DefaultOptions: opt, Store: rs1, Journal: js1}, sim.NewSuite(opt))
	if w := postJSON(t, s1.Handler(), "/campaigns", crashSpec); w.Code != http.StatusAccepted {
		t.Fatalf("run-1 POST = %d: %s", w.Code, w.Body.String())
	}

	// Kill the server once some — but not all — trials are done. Close
	// cancels the lifetime context mid-run; every finished trial is
	// already persisted, and the journal entry stays pending.
	killAt := time.Now().Add(30 * time.Second)
	for {
		job, ok := s1.campaigns.get(started.ID)
		if !ok {
			t.Fatal("run-1 job missing")
		}
		snap := job.snapshot()
		if snap.State == jobDone {
			t.Fatal("campaign finished before it could be killed; raise trials in crashSpec")
		}
		if snap.Progress.Done >= 2 {
			break
		}
		if time.Now().After(killAt) {
			t.Fatalf("no progress to kill at; last %+v", snap.Progress)
		}
		time.Sleep(200 * time.Microsecond)
	}
	s1.Close()
	// Wait for the run goroutine to observe the cancel (its finish call
	// is the last thing it does), then verify the journal still holds the
	// job as pending: an interrupted run must not be settled.
	waitFailed := time.Now().Add(30 * time.Second)
	for {
		job, _ := s1.campaigns.get(started.ID)
		if snap := job.snapshot(); snap.State == jobFailed {
			break
		} else if snap.State == jobDone {
			t.Fatal("campaign finished despite the kill")
		}
		if time.Now().After(waitFailed) {
			t.Fatal("killed campaign never settled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := s1.journal.depth(); d != 1 {
		t.Fatalf("journal depth after kill = %d, want 1 (entry must stay pending)", d)
	}
	if err := rs1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := js1.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 2: a fresh server over the same stores re-adopts the job from
	// the journal alone — no POST — and finishes it.
	rs2, js2 := openJournalStores(t, dir)
	s2 := NewWith(Config{DefaultOptions: opt, Store: rs2, Journal: js2}, sim.NewSuite(opt))
	t.Cleanup(s2.Close)
	if got := s2.journalReplayed.Load(); got != 1 {
		t.Fatalf("journal_replayed = %d, want 1", got)
	}
	if got := s2.jobsReadopted.Load(); got != 1 {
		t.Fatalf("jobs_readopted = %d, want 1", got)
	}
	res := waitCampaignDone(t, s2, started.ID, 60*time.Second)

	// Bounded lost work: finished trials were restored, not re-run.
	if res.Resumed < 2 || res.Executed >= len(res.Trials) {
		t.Fatalf("resume did not bound lost work: resumed %d, executed %d of %d",
			res.Resumed, res.Executed, len(res.Trials))
	}
	if res.Resumed+res.Executed != len(res.Trials) {
		t.Fatalf("resumed %d + executed %d != %d trials", res.Resumed, res.Executed, len(res.Trials))
	}

	// Byte-identical science: the recovered run's trial records match the
	// uninterrupted run exactly.
	gotTrials, _ := json.Marshal(res.Trials)
	wantTrials, _ := json.Marshal(golden.Trials)
	if string(gotTrials) != string(wantTrials) {
		t.Fatalf("recovered trials differ from uninterrupted run:\n got %s\nwant %s", gotTrials, wantTrials)
	}
	if res.Counts() != golden.Counts() {
		t.Fatalf("recovered counts %+v != golden %+v", res.Counts(), golden.Counts())
	}

	// The journal settled the entry as done, and /metrics shows the
	// recovery counters.
	var e journalEntry
	if ok, err := js2.Get(journalKey("campaign", started.ID), &e); err != nil || !ok || e.State != journalDone {
		t.Fatalf("journal entry after recovery: ok=%v err=%v state=%q", ok, err, e.State)
	}
	if d := s2.journal.depth(); d != 0 {
		t.Fatalf("journal depth after recovery = %d, want 0", d)
	}
	metrics := metricsText(t, s2)
	for _, want := range []string{"shrecd_journal_replayed_total 1", "shrecd_jobs_readopted_total 1", "shrecd_journal_depth 0"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics lack %q:\n%s", want, metrics)
		}
	}
}

// metricsText fetches /metrics as text.
func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	return w.Body.String()
}

// TestReplayStartsJobsAcceptedButNeverRun covers the other crash window:
// the journal write landed but the process died before (or just after)
// the job goroutine started. Replay must start both kinds from their
// journaled specs alone.
func TestReplayStartsJobsAcceptedButNeverRun(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	dir := t.TempDir()
	_, js := openJournalStores(t, dir)

	var craw campaign.Spec
	if err := json.Unmarshal([]byte(`{"machine":"shrec","benchmark":"crafty","trials":4,"seed":3}`), &craw); err != nil {
		t.Fatal(err)
	}
	cspec, err := campaign.Normalize(craw, opt)
	if err != nil {
		t.Fatal(err)
	}
	var eraw explore.Spec
	if err := json.Unmarshal([]byte(`{"space":{"bases":["ss1","ss2"]},"seed":7}`), &eraw); err != nil {
		t.Fatal(err)
	}
	espec, err := explore.Normalize(eraw, opt)
	if err != nil {
		t.Fatal(err)
	}
	cid, eid := campaignID(cspec), explorationID(espec)
	j := newJobJournal(js)
	if err := j.record("campaign", cid, cspec); err != nil {
		t.Fatal(err)
	}
	if err := j.record("exploration", eid, espec); err != nil {
		t.Fatal(err)
	}

	s := NewWith(Config{DefaultOptions: opt, Journal: js}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	if got := s.jobsReadopted.Load(); got != 2 {
		t.Fatalf("jobs_readopted = %d, want 2", got)
	}
	waitCampaignDone(t, s, cid, 60*time.Second)
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, ok := s.explorations.get(eid)
		if !ok {
			t.Fatal("exploration job not re-adopted")
		}
		snap := job.snapshot()
		if snap.State == jobDone {
			break
		}
		if snap.State == jobFailed {
			t.Fatalf("re-adopted exploration failed: %s", snap.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("re-adopted exploration did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := j.depth(); d != 0 {
		t.Fatalf("journal depth = %d, want 0 after both jobs finished", d)
	}
}

// TestReplayUnknownKindMarkedFailed pins that a corrupt or
// unrecognizable journal entry cannot wedge startup or replay forever:
// it is marked failed once and skipped.
func TestReplayUnknownKindMarkedFailed(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	dir := t.TempDir()
	_, js := openJournalStores(t, dir)
	if err := js.Put(journalKey("bogus", "x"), journalEntry{
		Kind: "bogus", ID: "x", State: journalPending,
	}); err != nil {
		t.Fatal(err)
	}
	s := NewWith(Config{DefaultOptions: opt, Journal: js}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	if got := s.jobsReadopted.Load(); got != 0 {
		t.Fatalf("jobs_readopted = %d, want 0", got)
	}
	var e journalEntry
	if ok, err := js.Get(journalKey("bogus", "x"), &e); err != nil || !ok || e.State != journalFailed {
		t.Fatalf("unknown-kind entry: ok=%v err=%v state=%q", ok, err, e.State)
	}
	if d := s.journal.depth(); d != 0 {
		t.Fatalf("journal depth = %d, want 0", d)
	}
}

// TestSheddingBoundsQueueWait pins load shedding: with the worker pool
// saturated, a POST /simulate queues at most ShedAfter and is shed with
// 429 + Retry-After, while /healthz (which never queues) keeps serving.
func TestSheddingBoundsQueueWait(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := NewWith(Config{DefaultOptions: opt, MaxConcurrent: 1, ShedAfter: 20 * time.Millisecond}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	h := s.Handler()

	s.sem <- struct{}{} // saturate the only worker slot
	defer func() { <-s.sem }()

	w := postJSON(t, h, "/simulate", `{"machine":"shrec","benchmark":"swim"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated POST /simulate = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	if got := s.shedRequests.Load(); got != 1 {
		t.Fatalf("shed_requests = %d, want 1", got)
	}

	// Reads stay responsive while the pool is saturated.
	var health map[string]any
	if code := getJSON(t, h, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz while saturated = %d", code)
	}
	if !strings.Contains(metricsText(t, s), "shrecd_shed_requests_total 1") {
		t.Fatal("metrics lack shrecd_shed_requests_total")
	}
}

// TestWatchdogFailsWedgedJob pins the watchdog: a running job whose
// progress heartbeat goes stale is cancelled, marked failed with a
// watchdog error, journaled as failed, and its finish is idempotent
// against a late result racing in.
func TestWatchdogFailsWedgedJob(t *testing.T) {
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	dir := t.TempDir()
	_, js := openJournalStores(t, dir)
	s := NewWith(Config{DefaultOptions: opt, Journal: js, Watchdog: 100 * time.Millisecond}, sim.NewSuite(opt))
	t.Cleanup(s.Close)

	var raw campaign.Spec
	if err := json.Unmarshal([]byte(`{"machine":"shrec","benchmark":"crafty","trials":4,"seed":5}`), &raw); err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.Normalize(raw, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := campaignID(spec)
	if err := s.journal.record("campaign", id, spec); err != nil {
		t.Fatal(err)
	}
	// Reserve the job but never drive it: a perfectly wedged job.
	job, startedNew, err := s.campaigns.startOrJoin(id, spec)
	if err != nil || !startedNew {
		t.Fatalf("startOrJoin: started=%v err=%v", startedNew, err)
	}
	job.mu.Lock()
	job.lastBeat = time.Now().Add(-time.Hour)
	job.mu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := job.snapshot()
		if snap.State == jobFailed {
			if !strings.Contains(snap.Err, "watchdog") {
				t.Fatalf("wedged job error %q lacks watchdog attribution", snap.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never killed the wedged job; state %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.jobsWedged.Load(); got != 1 {
		t.Fatalf("jobs_wedged = %d, want 1", got)
	}
	var e journalEntry
	if ok, _ := js.Get(journalKey("campaign", id), &e); !ok || e.State != journalFailed {
		t.Fatalf("wedged job journal state %q, want failed", e.State)
	}
	// A late completion racing the watchdog must not flip the outcome.
	if job.finish(&campaign.Result{}, nil) {
		t.Fatal("finish after watchdog kill reported it settled the job")
	}
	if snap := job.snapshot(); snap.State != jobFailed {
		t.Fatalf("late finish flipped state to %q", snap.State)
	}
}
