package shrecd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestMetricsExpositionLint drives real traffic through the server —
// a synchronous simulation, a full tiny campaign, and a 404 — then
// scrapes /metrics and holds the output to the Prometheus text
// exposition format via telemetry.Lint, line by line. This is the
// regression fence for the registry-rendered endpoint: a malformed
// HELP/TYPE pair, a broken histogram invariant, or an unescaped label
// fails here, not in a scraper.
func TestMetricsExpositionLint(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()

	if w := postJSON(t, h, "/simulate", `{"machine":"shrec","benchmark":"swim"}`); w.Code != http.StatusOK {
		t.Fatalf("POST /simulate = %d: %s", w.Code, w.Body.String())
	}
	w := postJSON(t, h, "/campaigns",
		`{"machine":"shrec","benchmark":"crafty","trials":4,"fault_rate":2e-4,"seed":11}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /campaigns = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	var status campaignStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, h, started.URL, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", started.URL, code)
		}
		if status.State == campaignDone {
			break
		}
		if status.State == campaignFailed || time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// One unmatched route, so the middleware's fallback label shows up.
	req := httptest.NewRequest(http.MethodGet, "/no/such/route", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body := rec.Body.String()
	if err := telemetry.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition lint failed:\n%v", err)
	}

	// The families the telemetry layer added, plus a sample of the legacy
	// counters that must have survived the registry rewrite.
	for _, family := range []string{
		"shrecd_http_requests_total",
		"shrecd_http_request_seconds",
		"shrecd_http_in_flight",
		"shrecd_jobs_running",
		"shrecd_jobs_total",
		"shrecd_job_duration_seconds",
		"shrecd_job_phase_seconds",
		"sim_stage_seconds",
		"shrecd_results_cached",
		"shrecd_sim_runs_total",
		"shrecd_sim_cache_hits_total",
		"shrecd_shed_requests_total",
		"shrecd_journal_replayed_total",
	} {
		if !strings.Contains(body, "\n"+family) && !strings.HasPrefix(body, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	// Series-level spot checks: routes are labeled by pattern (bounded
	// cardinality), jobs by kind and outcome, stages by name.
	for _, series := range []string{
		`shrecd_http_requests_total{route="POST /simulate",code="2xx"}`,
		`shrecd_http_requests_total{route="unmatched",code="4xx"}`,
		`shrecd_jobs_total{kind="campaign",outcome="done"}`,
		`sim_stage_seconds_bucket{stage="engine_run",`,
		`shrecd_job_phase_seconds_bucket{kind="campaign",phase="trial",`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("series %s missing from /metrics", series)
		}
	}

	// The campaign status must expose the per-phase breakdown the same
	// span fed into shrecd_job_phase_seconds.
	if len(status.Phases) == 0 {
		t.Fatal("finished campaign status has no phases")
	}
	phases := map[string]telemetry.PhaseStat{}
	for _, p := range status.Phases {
		phases[p.Phase] = p
	}
	for _, want := range []string{"queued", "golden_run", "trial"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phase %q missing from status phases %+v", want, status.Phases)
		}
	}
	if tr := phases["trial"]; tr.Count != 4 || tr.Seconds <= 0 {
		t.Errorf("trial phase = %+v, want 4 timed trials", tr)
	}
}

// TestMetricsResultsCachedGauge pins satellite semantics: the
// shrecd_results_cached gauge counts cached results without copying
// them (Suite.Len), and grows as distinct simulations land.
func TestMetricsResultsCachedGauge(t *testing.T) {
	s := testServer()
	h := s.Handler()
	for _, b := range []string{"swim", "mgrid"} {
		if w := postJSON(t, h, "/simulate", `{"machine":"ss1","benchmark":"`+b+`"}`); w.Code != http.StatusOK {
			t.Fatalf("simulate %s = %d", b, w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "shrecd_results_cached 2") {
		t.Fatalf("shrecd_results_cached != 2:\n%s", rec.Body.String())
	}
}
