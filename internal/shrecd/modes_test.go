package shrecd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startCampaign POSTs a campaign body and returns the 202 id and URL.
func startCampaign(t *testing.T, h http.Handler, body string) (id, url string) {
	t.Helper()
	w := postJSON(t, h, "/campaigns", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /campaigns %s = %d: %s", body, w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	return started.ID, started.URL
}

// waitCampaign polls a campaign job URL until done and returns the final
// status.
func waitCampaign(t *testing.T, h http.Handler, url string) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var status campaignStatus
	for {
		if code := getJSON(t, h, url, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", url, code)
		}
		if status.State == campaignDone {
			return status
		}
		if status.State == campaignFailed {
			t.Fatalf("campaign failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish; last status %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCampaignEndpointNewModes runs one small campaign per new detection
// mode over HTTP — checker-lane MEEK, multi-context SHREC, region-gated
// FLEX — and pins that each finishes with a coverage estimate and a
// report. The flex machine's checking window covers the injection window
// here, so it must report like any fully-checked machine.
func TestCampaignEndpointNewModes(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()
	for _, machine := range []string{"meek@2", "shrec+ctx4", "flex@64k:on16k"} {
		_, url := startCampaign(t, h,
			`{"machine":"`+machine+`","benchmark":"crafty","trials":6,"fault_rate":2e-4,"seed":7}`)
		status := waitCampaign(t, h, url)
		if status.Progress.Done != 6 {
			t.Fatalf("%s: final progress %+v", machine, status.Progress)
		}
		if status.Progress.Counts.SDC != 0 {
			t.Fatalf("%s: campaign leaked %d SDC trials", machine, status.Progress.Counts.SDC)
		}
		if len(status.Report) == 0 || !strings.Contains(string(status.Report), "Wilson") {
			t.Fatalf("%s: done status lacks the report: %s", machine, status.Report)
		}
	}
}

// TestCampaignEndpointNewModeDedup pins job identity under the grammar:
// "meek", "MEEK@2", and "Meek@2" name the same machine, so POSTing any
// spelling joins the same job rather than re-running the campaign.
func TestCampaignEndpointNewModeDedup(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()
	first, _ := startCampaign(t, h,
		`{"machine":"meek","benchmark":"crafty","trials":4,"fault_rate":2e-4,"seed":7}`)
	for _, spelling := range []string{"MEEK@2", "Meek@2", "meek@2"} {
		id, _ := startCampaign(t, h,
			`{"machine":"`+spelling+`","benchmark":"crafty","trials":4,"fault_rate":2e-4,"seed":7}`)
		if id != first {
			t.Fatalf("spelling %q spawned job %q, want join of %q", spelling, id, first)
		}
	}
	// A different lane count is a different machine, hence a different job.
	other, _ := startCampaign(t, h,
		`{"machine":"meek@4","benchmark":"crafty","trials":4,"fault_rate":2e-4,"seed":7}`)
	if other == first {
		t.Fatal("meek@4 joined the meek@2 job")
	}
}

// TestCampaignEndpointFlexConditionalCoverage runs a FLEX campaign whose
// checking window ends before the warmup does, so every fault lands in a
// disabled region: the served report must carry the conditional-coverage
// rows that separate policy blindness from checker failure.
func TestCampaignEndpointFlexConditionalCoverage(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()
	_, url := startCampaign(t, h,
		`{"machine":"flex@64k:on1k","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7}`)
	status := waitCampaign(t, h, url)
	if status.Progress.Counts.SDC == 0 {
		t.Fatalf("off-region FLEX produced no SDC over HTTP: %+v", status.Progress.Counts)
	}
	for _, want := range []string{"conditional coverage", "faults landed unchecked"} {
		if !strings.Contains(string(status.Report), want) {
			t.Fatalf("report lacks %q:\n%s", want, status.Report)
		}
	}
}

// TestCampaignEndpointMalformedModeSpecs pins that malformed mode specs
// fail synchronously with 400 and a message naming the problem — not
// asynchronously in a job that can only fail — and burn no job slot.
func TestCampaignEndpointMalformedModeSpecs(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()
	cases := []struct{ machine, wantMsg string }{
		{"meek@0", "lane count"},
		{"meek@99", "lane count"},
		{"flex@", "flex"},
		{"flex@64k:on64k", "region policy"},
		{"ss1+ctx4", "SHREC-mode base"},
	}
	for _, tc := range cases {
		w := postJSON(t, h, "/campaigns",
			`{"machine":"`+tc.machine+`","benchmark":"crafty","trials":1}`)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("machine %q = %d, want 400: %s", tc.machine, w.Code, w.Body.String())
		}
		if !strings.Contains(w.Body.String(), tc.wantMsg) {
			t.Fatalf("machine %q error does not name the problem (%q):\n%s", tc.machine, tc.wantMsg, w.Body.String())
		}
	}
	var list struct {
		Count int `json:"count"`
	}
	if code := getJSON(t, h, "/campaigns", &list); code != http.StatusOK || list.Count != 0 {
		t.Fatalf("rejected specs occupy the job table: code %d, count %d", code, list.Count)
	}
}

// TestExplorationEndpointModeAxes drives an exploration over the MEEK
// checker-lane axis end to end over HTTP, and pins that a mode-incompatible
// axis is rejected synchronously with 400.
func TestExplorationEndpointModeAxes(t *testing.T) {
	s := campaignServer(t)
	h := s.Handler()

	body := `{"space":{"bases":["meek"],"checker_lanes":[1,2]},"seed":7}`
	w := postJSON(t, h, "/explorations", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /explorations = %d: %s", w.Code, w.Body.String())
	}
	var started struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &started); err != nil {
		t.Fatal(err)
	}
	// The identical space joins the same job.
	if w2 := postJSON(t, h, "/explorations", body); !strings.Contains(w2.Body.String(), started.ID) {
		t.Fatalf("duplicate POST spawned a new job: %s", w2.Body.String())
	}

	deadline := time.Now().Add(30 * time.Second)
	var status explorationStatus
	for {
		if code := getJSON(t, h, started.URL, &status); code != http.StatusOK {
			t.Fatalf("GET %s = %d", started.URL, code)
		}
		if status.State == jobDone {
			break
		}
		if status.State == jobFailed {
			t.Fatalf("exploration failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration did not finish; last status %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.Progress.Done != 2 || len(status.Frontier) == 0 {
		t.Fatalf("final status %+v", status)
	}
	for _, spec := range status.Frontier {
		if !strings.HasPrefix(spec, "MEEK@") {
			t.Fatalf("frontier spec %q did not come from the lane axis", spec)
		}
	}

	// A lane axis over a non-MEEK base cannot enumerate; the POST must
	// fail synchronously naming the conflict.
	bad := postJSON(t, h, "/explorations", `{"space":{"bases":["ss1"],"checker_lanes":[2]}}`)
	if bad.Code != http.StatusBadRequest || !strings.Contains(bad.Body.String(), "checker_lanes") {
		t.Fatalf("incompatible axis = %d, want 400 naming checker_lanes: %s", bad.Code, bad.Body.String())
	}
}
