// Package shrecd implements the HTTP serving layer over the batch
// simulation engine: POST /simulate runs one (machine, benchmark) pair,
// GET /experiments/{name} regenerates one of the paper's tables or
// figures as a typed report (negotiated as JSON, CSV, or text),
// GET /experiments lists the catalog, POST /campaigns starts an
// asynchronous Monte Carlo fault-injection campaign (polled via
// GET /campaigns/{id} for trials done/total and running coverage),
// POST /explorations starts an asynchronous design-space exploration
// (polled via GET /explorations/{id} for the evaluation phase and the
// Pareto frontier), GET /results lists every cached result, and
// GET /metrics exposes the cache counters. All endpoints are backed by
// one sharded, deduplicating sim.Suite, so duplicate in-flight requests
// for the same (machine, benchmark, options) key execute the simulation
// once, and request cancellation propagates into the engine's step loop.
// A bounded worker pool caps concurrently-served simulation requests
// independently of the suite's own run parallelism; campaigns and
// explorations run in the background under the suite's parallelism
// alone, each kind tracked in a bounded job table (jobs.go) with
// normalized-spec dedup and cost caps.
package shrecd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config tunes the server.
type Config struct {
	// DefaultOptions are the run lengths used when a request does not
	// override them (zero value: sim.DefaultOptions).
	DefaultOptions sim.Options
	// MaxConcurrent bounds simultaneously-served simulation requests
	// (<=0 means 16).
	MaxConcurrent int
	// MaxInstrs caps request-supplied warmup+measure lengths so one
	// request cannot monopolize the pool (default 10M, <0 disables).
	MaxInstrs int64
	// MaxTrials caps the trial count of POST /campaigns requests and the
	// per-point coverage trials of POST /explorations (<=0 means 10000).
	MaxTrials int
	// MaxCampaigns bounds the campaign job table (<=0 means 64). When it
	// fills, the oldest finished job is evicted; with every slot running,
	// new campaigns are rejected with 429.
	MaxCampaigns int
	// MaxExplorations bounds the exploration job table the same way
	// (<=0 means 16).
	MaxExplorations int
	// MaxPoints caps the space size and full-fidelity budget of
	// POST /explorations requests (<=0 means 1024).
	MaxPoints int
	// Store, when non-nil, persists per-trial campaign records so killed
	// campaigns resume across server restarts. Attach the same store to
	// the suite for simulation-level persistence.
	Store *store.Store
	// Journal, when non-nil, is the write-ahead job journal: accepted
	// campaign/exploration specs are journaled before they run, and a
	// restarted server replays pending entries, re-adopting every job a
	// crash interrupted. Open it with store.SyncAlways so accepted jobs
	// survive power loss, and keep it separate from Store (different
	// durability needs, and journal compaction churn should not touch
	// result segments).
	Journal *store.Store
	// ShedAfter bounds how long a POST /simulate may queue for a worker
	// slot before the server sheds it with 429 + Retry-After. Status and
	// metrics reads never queue, so a saturated server stays observable.
	// Zero means 5s; negative queues indefinitely (pre-shedding
	// behavior).
	ShedAfter time.Duration
	// Watchdog is the no-progress timeout after which a running
	// campaign/exploration job is cancelled and marked failed instead of
	// occupying its table slot forever (<=0 disables the watchdog).
	Watchdog time.Duration
	// Registry, when non-nil, is the metrics registry the server renders
	// at GET /metrics and attaches to the suite's stage histograms; nil
	// builds a private one. Share a registry to merge the server's
	// families with a host process's own.
	Registry *telemetry.Registry
	// Logger receives the server's structured logs (request access lines
	// at debug, job lifecycle at info, watchdog kills at warn); nil
	// discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ on the
	// server's own mux (never the default mux), for CPU/heap profiling of
	// a live server. Off by default: the endpoints expose internals and
	// belong behind the -pprof flag.
	EnablePprof bool
}

// Server serves simulation, experiment, and fault-campaign requests over
// one shared result cache.
type Server struct {
	cfg   Config
	sims  *sim.Suite
	exp   *experiments.Suite
	camp  *campaign.Engine
	expl  *explore.Engine
	sem   chan struct{}
	start time.Time

	// baseCtx bounds background jobs (campaigns, explorations) to the
	// server's lifetime (Close cancels it); the tables track them for
	// the status endpoints.
	baseCtx      context.Context
	baseStop     context.CancelFunc
	campaigns    *jobTable[campaign.Spec, campaign.Progress, *campaign.Result]
	explorations *jobTable[explore.Spec, explore.Progress, *explore.Result]

	// journal is the write-ahead job journal (nil-safe no-op when
	// Config.Journal is unset); the counters feed /metrics.
	journal         *jobJournal
	journalReplayed atomic.Uint64 // pending entries scanned at startup
	jobsReadopted   atomic.Uint64 // journaled jobs restarted at startup
	shedRequests    atomic.Uint64 // requests rejected for load (429)
	jobsWedged      atomic.Uint64 // jobs the watchdog marked failed

	// Telemetry: every family /metrics serves lives in reg (the counters
	// above are exported through CounterFunc samplers, so the atomics stay
	// the single source of truth); httpm wraps the mux with per-route
	// request metrics and request IDs.
	reg         *telemetry.Registry
	log         *slog.Logger
	httpm       *telemetry.HTTPMetrics
	jobsRunning *telemetry.Gauge        // shrecd_jobs_running
	jobsTotal   *telemetry.CounterVec   // shrecd_jobs_total{kind, outcome}
	jobDur      *telemetry.HistogramVec // shrecd_job_duration_seconds{kind}
	jobPhase    *telemetry.HistogramVec // shrecd_job_phase_seconds{kind, phase}
}

// New builds a server with a fresh sim.Suite.
func New(cfg Config) *Server {
	if cfg.DefaultOptions == (sim.Options{}) {
		cfg.DefaultOptions = sim.DefaultOptions()
	}
	return NewWith(cfg, sim.NewSuite(cfg.DefaultOptions))
}

// NewWith builds a server over an existing simulation suite (so callers
// can attach a persistent store or share the cache with other drivers).
func NewWith(cfg Config, sims *sim.Suite) *Server {
	if cfg.DefaultOptions == (sim.Options{}) {
		cfg.DefaultOptions = sims.Options()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 10_000_000
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 10_000
	}
	if cfg.MaxCampaigns <= 0 {
		cfg.MaxCampaigns = 64
	}
	if cfg.MaxExplorations <= 0 {
		cfg.MaxExplorations = 16
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 1024
	}
	// The cap bounds per-request overrides; the operator-configured
	// defaults must always be servable, so raise the cap to cover them.
	if sum := cfg.DefaultOptions.WarmupInstrs + cfg.DefaultOptions.MeasureInstrs; cfg.MaxInstrs > 0 && sum > uint64(cfg.MaxInstrs) {
		cfg.MaxInstrs = int64(sum)
	}
	if cfg.ShedAfter == 0 {
		cfg.ShedAfter = 5 * time.Second
	}
	camp := campaign.New(sims)
	expl := explore.New(sims)
	if cfg.Store != nil {
		camp.WithStore(cfg.Store)
		expl.WithStore(cfg.Store)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NopLogger()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		sims:         sims,
		exp:          experiments.NewSuiteWith(sims),
		camp:         camp,
		expl:         expl,
		sem:          make(chan struct{}, cfg.MaxConcurrent),
		start:        time.Now(),
		baseCtx:      ctx,
		baseStop:     stop,
		campaigns:    newJobTable[campaign.Spec, campaign.Progress, *campaign.Result]("campaign", cfg.MaxCampaigns),
		explorations: newJobTable[explore.Spec, explore.Progress, *explore.Result]("exploration", cfg.MaxExplorations),
		journal:      newJobJournal(cfg.Journal),
		reg:          cfg.Registry,
		log:          cfg.Logger,
	}
	sims.WithTelemetry(s.reg)
	s.registerMetrics()
	s.httpm = telemetry.NewHTTPMetrics(s.reg, "shrecd", s.log)
	// Crash recovery: re-adopt every journaled job a previous process
	// never finished, before the listener can accept new work.
	s.replayJournal()
	if cfg.Watchdog > 0 {
		go s.watchdogLoop()
	}
	return s
}

// registerMetrics declares every /metrics family on the registry. The
// pre-existing atomics are exported through Func samplers read at scrape
// time, so the hot paths keep their plain atomic increments; the job and
// HTTP histograms are registered here and observed by the job goroutines
// and middleware.
func (s *Server) registerMetrics() {
	r := s.reg
	r.CounterFunc("shrecd_sim_runs_total",
		"Simulations actually executed (cache misses).", s.sims.Runs)
	r.CounterFunc("shrecd_sim_hits_total",
		"Requests served from memory, store, or an in-flight duplicate.", s.sims.Hits)
	r.CounterFunc("shrecd_sim_cache_hits_total",
		"Requests served from the in-memory striped result cache.", s.sims.CacheHits)
	r.CounterFunc("shrecd_sim_cache_misses_total",
		"Requests that found neither a cached result nor an in-flight duplicate.", s.sims.CacheMisses)
	r.CounterFunc("shrecd_sim_dedup_waits_total",
		"Requests coalesced onto an in-flight duplicate run (singleflight).", s.sims.DedupWaits)
	r.CounterFunc("shrecd_sim_store_hits_total",
		"Cache misses served from the persistent store.", s.sims.StoreHits)
	r.CounterFunc("shrecd_sim_store_errors_total",
		"Failed persistent-store writes.", s.sims.StoreErrors)
	r.CounterFunc("shrecd_sim_warmup_shares_total",
		"Runs that resumed from a shared warmup checkpoint instead of re-warming.", s.sims.WarmupShares)
	r.CounterFunc("shrecd_sim_interval_runs_total",
		"Runs executed interval-parallel.", s.sims.IntervalRuns)
	r.CounterFunc("shrecd_sim_recovery_runs_total",
		"Runs executed under a checkpoint/rollback recovery policy.", s.sims.RecoveryRuns)
	r.CounterFunc("shrecd_sim_rollbacks_total",
		"Checkpoint rollbacks across all recovery runs.", s.sims.Rollbacks)
	// Shard sizes are summed without copying any results, so scrapes stay
	// cheap no matter how large the cache grows.
	r.GaugeFunc("shrecd_results_cached",
		"Results currently held in the in-memory cache.",
		func() float64 { return float64(s.sims.Len()) })
	r.GaugeFunc("shrecd_uptime_seconds",
		"Seconds since server start.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.CounterFunc("shrecd_store_quarantined_total",
		"Corrupt store records detected and quarantined (result store + journal).",
		func() uint64 {
			var q uint64
			if s.cfg.Store != nil {
				q += s.cfg.Store.Stats().Quarantined
			}
			if s.journal != nil {
				q += s.journal.st.Stats().Quarantined
			}
			return q
		})
	r.CounterFunc("shrecd_journal_replayed_total",
		"Pending journal entries replayed at startup.", s.journalReplayed.Load)
	r.CounterFunc("shrecd_jobs_readopted_total",
		"Journaled jobs successfully restarted at startup.", s.jobsReadopted.Load)
	r.CounterFunc("shrecd_shed_requests_total",
		"Requests rejected with 429 for load (queue-wait expired or job table saturated).", s.shedRequests.Load)
	r.CounterFunc("shrecd_jobs_wedged_total",
		"Jobs the watchdog cancelled for reporting no progress.", s.jobsWedged.Load)
	r.GaugeFunc("shrecd_journal_depth",
		"Journaled jobs not yet finished.",
		func() float64 { return float64(s.journal.depth()) })
	s.jobsRunning = r.Gauge("shrecd_jobs_running",
		"Campaign and exploration jobs currently executing.")
	s.jobsTotal = r.CounterVec("shrecd_jobs_total",
		"Asynchronous jobs finished, by kind and outcome (done, failed, interrupted).",
		"kind", "outcome")
	s.jobDur = r.HistogramVec("shrecd_job_duration_seconds",
		"Asynchronous job run durations by kind, from goroutine start to completion.",
		telemetry.WideTimeBuckets(), "kind")
	s.jobPhase = r.HistogramVec("shrecd_job_phase_seconds",
		"Per-phase job timings by kind: queued, golden_run, trial, baseline_run, screen_eval, full_eval, and the sim stages recorded under the job span.",
		telemetry.DefTimeBuckets(), "kind", "phase")
}

// startJobTelemetry instruments one job goroutine: a span attached to
// the job (for the status JSON phase breakdown) and teed into
// shrecd_job_phase_seconds, the queue wait as the first phase, the
// running gauge, and the lifecycle log lines. It returns the context to
// run under (span attached, so campaign/explore/sim layers record into
// it) and a done hook for the job's terminal error.
func (s *Server) startJobTelemetry(ctx context.Context, kind, id string, job interface {
	setSpan(*telemetry.Span)
},
	queued time.Time) (context.Context, func(error)) {
	span := telemetry.NewSpan().Tee(func(phase string, seconds float64) {
		s.jobPhase.With(kind, phase).Observe(seconds)
	})
	span.Record("queued", time.Since(queued))
	job.setSpan(span)
	s.jobsRunning.Add(1)
	s.log.Info("job started", "kind", kind, "job_id", id)
	runStart := time.Now()
	return telemetry.WithSpan(ctx, span), func(err error) {
		elapsed := time.Since(runStart)
		s.jobsRunning.Add(-1)
		s.jobDur.With(kind).Observe(elapsed.Seconds())
		outcome := "done"
		lv := slog.LevelInfo
		switch {
		case s.interrupted(err):
			outcome = "interrupted"
		case err != nil:
			outcome = "failed"
			lv = slog.LevelWarn
		}
		s.jobsTotal.With(kind, outcome).Inc()
		attrs := []any{"kind", kind, "job_id", id, "outcome", outcome, "elapsed_s", elapsed.Seconds()}
		if err != nil {
			attrs = append(attrs, "error", err.Error())
		}
		s.log.Log(context.Background(), lv, "job finished", attrs...)
	}
}

// watchdogLoop periodically fails jobs that stopped reporting progress,
// so a wedged engine cannot pin a table slot (and its journal entry)
// forever. Killed jobs are journaled as failed: re-adopting a job that
// already wedged once would just wedge the next process too.
func (s *Server) watchdogLoop() {
	tick := s.cfg.Watchdog / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			for _, id := range s.campaigns.failWedged(s.cfg.Watchdog) {
				s.jobsWedged.Add(1)
				s.log.Warn("watchdog killed wedged job", "kind", "campaign", "job_id", id)
				s.journal.finish("campaign", id, fmt.Errorf("watchdog: wedged"))
			}
			for _, id := range s.explorations.failWedged(s.cfg.Watchdog) {
				s.jobsWedged.Add(1)
				s.log.Warn("watchdog killed wedged job", "kind", "exploration", "job_id", id)
				s.journal.finish("exploration", id, fmt.Errorf("watchdog: wedged"))
			}
		}
	}
}

// Sims exposes the underlying suite (metrics, tests).
func (s *Server) Sims() *sim.Suite { return s.sims }

// Registry exposes the server's metrics registry (embedders, tests).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler returns the server's routing table, wrapped in the HTTP
// metrics middleware (per-route request counts, latency histograms,
// in-flight gauge, request IDs, access log). With EnablePprof set, the
// net/http/pprof endpoints mount under /debug/pprof/ on this mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /simulate", s.handleSimulate)
	mux.HandleFunc("GET /experiments", s.handleCatalog)
	mux.HandleFunc("GET /experiments/{name}", s.handleExperiment)
	mux.HandleFunc("POST /experiments/{name}", s.handleExperimentLegacy)
	mux.HandleFunc("POST /campaigns", s.handleCampaignStart)
	mux.HandleFunc("GET /campaigns", s.handleCampaignList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignGet)
	mux.HandleFunc("POST /explorations", s.handleExplorationStart)
	mux.HandleFunc("GET /explorations", s.handleExplorationList)
	mux.HandleFunc("GET /explorations/{id}", s.handleExplorationGet)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// Index serves the named profiles (heap, goroutine, ...) via the
		// trailing-slash pattern; the four below need their own handlers.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.httpm.Wrap(mux)
}

// errShed marks a request rejected by load shedding (the bounded queue
// wait expired before a worker slot freed); handlers map it to 429 with
// Retry-After, distinct from 503 for a client deadline expiring.
var errShed = errors.New("server saturated: no worker slot freed within the shed window")

// acquire takes a worker-pool slot. When the pool is saturated the
// request queues at most ShedAfter before being shed with errShed, so a
// flood of expensive POSTs cannot pile up unbounded waiters — status and
// metrics reads never pass through here and stay responsive regardless.
// A negative ShedAfter queues until the client's context expires.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.ShedAfter < 0 {
		select {
		case s.sem <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	t := time.NewTimer(s.cfg.ShedAfter)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		s.shedRequests.Add(1)
		return errShed
	}
}

func (s *Server) release() { <-s.sem }

// queueError writes the response for a failed acquire: shed requests get
// 429 + Retry-After (back off and retry), client-deadline expiries get
// 503 (the client already gave up waiting).
func queueError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShed) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	httpError(w, http.StatusServiceUnavailable, fmt.Errorf("queued past deadline: %w", err))
}

// simulateRequest is the POST /simulate body.
type simulateRequest struct {
	Machine   string `json:"machine"`
	Benchmark string `json:"benchmark"`
	// Optional per-request run lengths; zero means the server default.
	WarmupInstrs  uint64 `json:"warmup_instrs"`
	MeasureInstrs uint64 `json:"measure_instrs"`
}

// simulateResponse is the POST /simulate reply: the identifying fields
// flattened once, plus the run's raw counters (not the full sim.Result,
// which would duplicate every identifying field).
type simulateResponse struct {
	Machine   string      `json:"machine"`
	Benchmark string      `json:"benchmark"`
	Class     string      `json:"class"`
	HighIPC   bool        `json:"high_ipc"`
	IPC       float64     `json:"ipc"`
	CPI       float64     `json:"cpi"`
	Options   sim.Options `json:"options"`
	Stats     core.Stats  `json:"stats"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// A simulate request is a few short fields; refuse oversized bodies
	// before the decoder buffers them.
	r.Body = http.MaxBytesReader(w, r.Body, 64<<10)
	var req simulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := config.ByName(req.Machine)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := workload.ByName(req.Benchmark)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opt := s.cfg.DefaultOptions
	if req.WarmupInstrs > 0 {
		opt.WarmupInstrs = req.WarmupInstrs
	}
	if req.MeasureInstrs > 0 {
		opt.MeasureInstrs = req.MeasureInstrs
	}
	// Bound each length before summing so huge values cannot wrap the
	// uint64 sum (or the int64 conversion) past the cap.
	if cap := s.cfg.MaxInstrs; cap > 0 {
		if opt.WarmupInstrs > uint64(cap) || opt.MeasureInstrs > uint64(cap) ||
			opt.WarmupInstrs+opt.MeasureInstrs > uint64(cap) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("requested instruction count exceeds the server cap of %d", cap))
			return
		}
	}

	if err := s.acquire(r.Context()); err != nil {
		queueError(w, err)
		return
	}
	defer s.release()

	res, err := s.sims.GetOpt(r.Context(), m, p, opt)
	if err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, simulateResponse{
		Machine:   res.Machine,
		Benchmark: res.Benchmark,
		Class:     res.Class.String(),
		HighIPC:   res.HighIPC,
		IPC:       res.IPC(),
		CPI:       res.CPI(),
		Options:   res.Options,
		Stats:     res.Stats,
	})
}

// handleCatalog lists every runnable experiment with its title.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": experiments.Catalog(),
	})
}

// pickFormat resolves the response encoding of GET /experiments/{name}:
// an explicit ?format=text|json|csv query wins, then the Accept header,
// then JSON.
func pickFormat(r *http.Request) (string, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		switch f {
		case "text", "json", "csv":
			return f, nil
		}
		return "", fmt.Errorf("unknown format %q (have text, json, csv)", f)
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch mediaType {
		case "application/json":
			return "json", nil
		case "text/csv":
			return "csv", nil
		case "text/plain":
			return "text", nil
		}
	}
	return "json", nil
}

// runExperiment produces the named experiment's report under the worker
// pool, writing the error response itself when it fails.
func (s *Server) runExperiment(w http.ResponseWriter, r *http.Request, name string) (*report.Report, bool) {
	if !experiments.Known(name) {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("unknown experiment %q (have %v)", name, experiments.Names()))
		return nil, false
	}
	if err := s.acquire(r.Context()); err != nil {
		queueError(w, err)
		return nil, false
	}
	defer s.release()

	rep, err := s.exp.Run(r.Context(), name)
	if err != nil {
		httpError(w, errStatus(err), err)
		return nil, false
	}
	return rep, true
}

// handleExperiment serves GET /experiments/{name}: the typed report,
// rendered per content negotiation (?format= or Accept; default JSON).
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	format, err := pickFormat(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rep, ok := s.runExperiment(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = rep.JSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		_ = rep.CSV(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = rep.Text(w)
	}
}

// handleExperimentLegacy serves the pre-report POST /experiments/{name}
// shape: a JSON wrapper around the text rendering.
//
// Deprecated: clients should move to GET /experiments/{name}.
func (s *Server) handleExperimentLegacy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rep, ok := s.runExperiment(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"experiment": rep.Name,
		"elapsed_s":  time.Since(start).Seconds(),
		"output":     rep.String(),
	})
}

// resultSummary is one GET /results row. Run lengths are included so
// rows for the same (machine, benchmark) at different request-scoped
// scales stay distinguishable.
type resultSummary struct {
	Machine       string  `json:"machine"`
	Benchmark     string  `json:"benchmark"`
	WarmupInstrs  uint64  `json:"warmup_instrs"`
	MeasureInstrs uint64  `json:"measure_instrs"`
	IPC           float64 `json:"ipc"`
	CPI           float64 `json:"cpi"`
	Cycles        int64   `json:"cycles"`
	Retired       uint64  `json:"retired"`
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	cached := s.sims.Results()
	out := make([]resultSummary, len(cached))
	for i, res := range cached {
		out[i] = resultSummary{
			Machine:       res.Machine,
			Benchmark:     res.Benchmark,
			WarmupInstrs:  res.Options.WarmupInstrs,
			MeasureInstrs: res.Options.MeasureInstrs,
			IPC:           res.IPC(),
			CPI:           res.CPI(),
			Cycles:        res.Stats.Cycles,
			Retired:       res.Stats.Retired,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(out),
		"runs":    s.sims.Runs(),
		"hits":    s.sims.Hits(),
		"results": out,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	health := map[string]any{
		"status":         "ok",
		"uptime_s":       time.Since(s.start).Seconds(),
		"runs":           s.sims.Runs(),
		"hits":           s.sims.Hits(),
		"cache_hits":     s.sims.CacheHits(),
		"cache_misses":   s.sims.CacheMisses(),
		"dedup_waits":    s.sims.DedupWaits(),
		"store_hits":     s.sims.StoreHits(),
		"store_errors":   s.sims.StoreErrors(),
		"warmup_shares":  s.sims.WarmupShares(),
		"interval_runs":  s.sims.IntervalRuns(),
		"recovery_runs":  s.sims.RecoveryRuns(),
		"rollbacks":      s.sims.Rollbacks(),
		"max_concurrent": s.cfg.MaxConcurrent,
		"shed_requests":  s.shedRequests.Load(),
	}
	// Store integrity: a scrape that shows quarantined records climbing
	// (or compaction stalled) flags a disk going bad before reads fail.
	if s.cfg.Store != nil {
		health["store"] = s.cfg.Store.Stats()
	}
	if s.journal != nil {
		health["journal"] = map[string]any{
			"depth":     s.journal.depth(),
			"replayed":  s.journalReplayed.Load(),
			"readopted": s.jobsReadopted.Load(),
			"wedged":    s.jobsWedged.Load(),
			"store":     s.journal.st.Stats(),
		}
	}
	writeJSON(w, http.StatusOK, health)
}

// handleMetrics serves GET /metrics: the whole exposition is rendered
// from the telemetry registry — suite counters, cache gauges, journal
// state, HTTP route latencies, job durations and phases, and sim stage
// histograms — in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errStatus classifies a simulation error: cancellation/deadline errors
// become 499 (client closed request); anything else — including engine
// failures that happen to race a client disconnect — stays 500 so model
// bugs are never misfiled as disconnects.
func errStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusInternalServerError
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
