package shrecd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// testServer returns a server with tiny run lengths so handler tests
// finish in milliseconds.
func testServer() *Server {
	return New(Config{
		DefaultOptions: sim.Options{WarmupInstrs: 2000, MeasureInstrs: 5000, Parallelism: 8},
		MaxConcurrent:  8,
	})
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestSimulateEndpoint(t *testing.T) {
	h := testServer().Handler()
	w := postJSON(t, h, "/simulate", `{"machine":"shrec","benchmark":"swim"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Machine   string  `json:"machine"`
		Benchmark string  `json:"benchmark"`
		IPC       float64 `json:"ipc"`
		CPI       float64 `json:"cpi"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "SHREC" || resp.Benchmark != "swim" {
		t.Fatalf("labels = %s/%s", resp.Machine, resp.Benchmark)
	}
	if resp.IPC <= 0 || resp.CPI <= 0 {
		t.Fatalf("IPC=%v CPI=%v", resp.IPC, resp.CPI)
	}
}

func TestSimulateValidation(t *testing.T) {
	h := testServer().Handler()
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"bad machine", `{"machine":"ss9","benchmark":"swim"}`, http.StatusBadRequest},
		{"bad benchmark", `{"machine":"ss1","benchmark":"nope"}`, http.StatusBadRequest},
		{"instr cap", `{"machine":"ss1","benchmark":"swim","measure_instrs":999999999}`, http.StatusBadRequest},
		{"instr cap uint64 wrap", `{"machine":"ss1","benchmark":"swim","warmup_instrs":9223372036854775808,"measure_instrs":9223372036854775808}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := postJSON(t, h, "/simulate", c.body); w.Code != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.status, w.Body)
		}
	}
	// GET on a POST route must not dispatch.
	req := httptest.NewRequest(http.MethodGet, "/simulate", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate status = %d, want 405", w.Code)
	}
}

// Duplicate concurrent requests for the same key execute one simulation.
func TestSimulateDeduplicatesConcurrentRequests(t *testing.T) {
	srv := testServer()
	h := srv.Handler()
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postJSON(t, h, "/simulate", `{"machine":"ss1","benchmark":"parser"}`)
			if w.Code != http.StatusOK {
				t.Errorf("status = %d: %s", w.Code, w.Body)
			}
		}()
	}
	wg.Wait()
	if runs := srv.Sims().Runs(); runs != 1 {
		t.Fatalf("%d duplicate requests ran %d simulations, want 1", callers, runs)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment endpoint runs 100 simulations; skipped in short mode")
	}
	// One server throughout: after the legacy POST fills the cache, every
	// content-negotiated GET re-renders from cached results in
	// milliseconds.
	h := testServer().Handler()
	w := postJSON(t, h, "/experiments/fig7", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Experiment string `json:"experiment"`
		Output     string `json:"output"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "fig7" || !strings.Contains(resp.Output, "SHREC") {
		t.Fatalf("malformed experiment response: %+v", resp)
	}

	get := func(path, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	// Default format is JSON: a structured report whose text rendering
	// matches the legacy output field.
	w = get("/experiments/fig7", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("GET json: %d %s", w.Code, w.Header().Get("Content-Type"))
	}
	var rep struct {
		Name   string `json:"name"`
		Title  string `json:"title"`
		Tables []struct {
			Title   string   `json:"title"`
			Columns []string `json:"columns"`
			Rows    []struct {
				Label  string    `json:"label"`
				Values []float64 `json:"values"`
			} `json:"rows"`
		} `json:"tables"`
		Notes []string          `json:"notes"`
		Meta  map[string]string `json:"meta"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "fig7" || len(rep.Tables) != 2 || len(rep.Notes) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if got := rep.Tables[0].Columns; len(got) != 5 || got[0] != "benchmark" || got[2] != "SHREC" {
		t.Fatalf("columns = %v", got)
	}
	if len(rep.Tables[0].Rows) != 11+3 { // 11 integer benchmarks + 3 aggregates
		t.Fatalf("%d rows", len(rep.Tables[0].Rows))
	}
	if rep.Meta["measure_instrs"] != "5000" {
		t.Fatalf("meta = %v", rep.Meta)
	}

	// ?format=text reproduces the legacy output byte-for-byte.
	w = get("/experiments/fig7?format=text", "")
	if w.Code != http.StatusOK || w.Body.String() != resp.Output {
		t.Fatalf("text format diverges from legacy output (%d)", w.Code)
	}

	// CSV via Accept-header negotiation.
	w = get("/experiments/fig7", "text/csv")
	if w.Code != http.StatusOK || !strings.Contains(w.Header().Get("Content-Type"), "text/csv") {
		t.Fatalf("GET csv: %d %s", w.Code, w.Header().Get("Content-Type"))
	}
	if !strings.HasPrefix(w.Body.String(), "experiment,table,label,class,high,aggregate,column,value\n") {
		t.Fatalf("csv header: %q", w.Body.String()[:80])
	}
	if !strings.Contains(w.Body.String(), "fig7,") {
		t.Fatal("csv missing fig7 rows")
	}

	// Unknown format is a 400 before any simulation runs.
	if w = get("/experiments/fig7?format=xml", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("format=xml status = %d", w.Code)
	}
}

func TestExperimentCatalog(t *testing.T) {
	h := testServer().Handler()
	req := httptest.NewRequest(http.MethodGet, "/experiments", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Experiments []struct {
			Name  string `json:"name"`
			Title string `json:"title"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Experiments) != 10 {
		t.Fatalf("catalog = %+v", resp.Experiments)
	}
	if resp.Experiments[0].Name != "fig2" || resp.Experiments[0].Title == "" {
		t.Fatalf("catalog[0] = %+v", resp.Experiments[0])
	}
}

func TestExperimentUnknown(t *testing.T) {
	h := testServer().Handler()
	if w := postJSON(t, h, "/experiments/fig99", ``); w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
}

func TestResultsEndpoint(t *testing.T) {
	srv := testServer()
	h := srv.Handler()
	for _, b := range []string{"swim", "parser"} {
		w := postJSON(t, h, "/simulate", fmt.Sprintf(`{"machine":"ss1","benchmark":%q}`, b))
		if w.Code != http.StatusOK {
			t.Fatalf("simulate %s: %d", b, w.Code)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/results", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Count   int `json:"count"`
		Runs    int `json:"runs"`
		Results []struct {
			Machine   string  `json:"machine"`
			Benchmark string  `json:"benchmark"`
			IPC       float64 `json:"ipc"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || resp.Runs != 2 || len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp)
	}
	// Sorted by machine then benchmark: parser before swim.
	if resp.Results[0].Benchmark != "parser" || resp.Results[1].Benchmark != "swim" {
		t.Fatalf("unsorted results: %+v", resp.Results)
	}
}

func TestHealthz(t *testing.T) {
	h := testServer().Handler()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body)
	}
	for _, key := range []string{
		`"runs"`, `"hits"`, `"store_errors"`,
		`"cache_hits"`, `"cache_misses"`, `"dedup_waits"`, `"store_hits"`,
		`"warmup_shares"`, `"interval_runs"`, `"recovery_runs"`, `"rollbacks"`,
	} {
		if !strings.Contains(w.Body.String(), key) {
			t.Errorf("healthz missing %s: %s", key, w.Body)
		}
	}
}

func TestMetrics(t *testing.T) {
	srv := testServer()
	h := srv.Handler()
	// One miss plus one duplicate make the counters observable.
	for i := 0; i < 2; i++ {
		if w := postJSON(t, h, "/simulate", `{"machine":"ss1","benchmark":"swim"}`); w.Code != http.StatusOK {
			t.Fatalf("simulate: %d", w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"shrecd_sim_runs_total 1",
		"shrecd_sim_hits_total 1",
		"shrecd_sim_cache_hits_total 1",
		"shrecd_sim_cache_misses_total 1",
		"shrecd_sim_dedup_waits_total 0",
		"shrecd_sim_store_hits_total 0",
		"shrecd_sim_store_errors_total 0",
		"shrecd_sim_warmup_shares_total 0",
		"shrecd_sim_interval_runs_total 0",
		"shrecd_sim_recovery_runs_total 0",
		"shrecd_sim_rollbacks_total 0",
		"shrecd_results_cached 1",
		"shrecd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
