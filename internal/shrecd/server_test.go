package shrecd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// testServer returns a server with tiny run lengths so handler tests
// finish in milliseconds.
func testServer() *Server {
	return New(Config{
		DefaultOptions: sim.Options{WarmupInstrs: 2000, MeasureInstrs: 5000, Parallelism: 8},
		MaxConcurrent:  8,
	})
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestSimulateEndpoint(t *testing.T) {
	h := testServer().Handler()
	w := postJSON(t, h, "/simulate", `{"machine":"shrec","benchmark":"swim"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Machine   string  `json:"machine"`
		Benchmark string  `json:"benchmark"`
		IPC       float64 `json:"ipc"`
		CPI       float64 `json:"cpi"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "SHREC" || resp.Benchmark != "swim" {
		t.Fatalf("labels = %s/%s", resp.Machine, resp.Benchmark)
	}
	if resp.IPC <= 0 || resp.CPI <= 0 {
		t.Fatalf("IPC=%v CPI=%v", resp.IPC, resp.CPI)
	}
}

func TestSimulateValidation(t *testing.T) {
	h := testServer().Handler()
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"bad machine", `{"machine":"ss9","benchmark":"swim"}`, http.StatusBadRequest},
		{"bad benchmark", `{"machine":"ss1","benchmark":"nope"}`, http.StatusBadRequest},
		{"instr cap", `{"machine":"ss1","benchmark":"swim","measure_instrs":999999999}`, http.StatusBadRequest},
		{"instr cap uint64 wrap", `{"machine":"ss1","benchmark":"swim","warmup_instrs":9223372036854775808,"measure_instrs":9223372036854775808}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := postJSON(t, h, "/simulate", c.body); w.Code != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.status, w.Body)
		}
	}
	// GET on a POST route must not dispatch.
	req := httptest.NewRequest(http.MethodGet, "/simulate", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate status = %d, want 405", w.Code)
	}
}

// Duplicate concurrent requests for the same key execute one simulation.
func TestSimulateDeduplicatesConcurrentRequests(t *testing.T) {
	srv := testServer()
	h := srv.Handler()
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postJSON(t, h, "/simulate", `{"machine":"ss1","benchmark":"parser"}`)
			if w.Code != http.StatusOK {
				t.Errorf("status = %d: %s", w.Code, w.Body)
			}
		}()
	}
	wg.Wait()
	if runs := srv.Sims().Runs(); runs != 1 {
		t.Fatalf("%d duplicate requests ran %d simulations, want 1", callers, runs)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment endpoint runs 100 simulations; skipped in short mode")
	}
	h := testServer().Handler()
	w := postJSON(t, h, "/experiments/fig7", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Experiment string `json:"experiment"`
		Output     string `json:"output"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "fig7" || !strings.Contains(resp.Output, "SHREC") {
		t.Fatalf("malformed experiment response: %+v", resp)
	}
}

func TestExperimentUnknown(t *testing.T) {
	h := testServer().Handler()
	if w := postJSON(t, h, "/experiments/fig99", ``); w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
}

func TestResultsEndpoint(t *testing.T) {
	srv := testServer()
	h := srv.Handler()
	for _, b := range []string{"swim", "parser"} {
		w := postJSON(t, h, "/simulate", fmt.Sprintf(`{"machine":"ss1","benchmark":%q}`, b))
		if w.Code != http.StatusOK {
			t.Fatalf("simulate %s: %d", b, w.Code)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/results", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Count   int `json:"count"`
		Runs    int `json:"runs"`
		Results []struct {
			Machine   string  `json:"machine"`
			Benchmark string  `json:"benchmark"`
			IPC       float64 `json:"ipc"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || resp.Runs != 2 || len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp)
	}
	// Sorted by machine then benchmark: parser before swim.
	if resp.Results[0].Benchmark != "parser" || resp.Results[1].Benchmark != "swim" {
		t.Fatalf("unsorted results: %+v", resp.Results)
	}
}

func TestHealthz(t *testing.T) {
	h := testServer().Handler()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body)
	}
}
