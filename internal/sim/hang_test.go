package sim

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestHungResult pins the watchdog path: a cycle budget far too small for
// the requested instructions yields a Hung result (not an error) with
// partial counters, and the result is served from cache on re-request.
func TestHungResult(t *testing.T) {
	p, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{WarmupInstrs: 0, MeasureInstrs: 50_000, MaxCycles: 64}
	s := NewSuite(opt)
	res, err := s.Get(context.Background(), config.SS1(), p)
	if err != nil {
		t.Fatalf("budgeted run errored: %v", err)
	}
	if !res.Hung {
		t.Fatalf("50k instructions in 64 cycles did not hang: %+v", res.Stats)
	}
	if res.Stats.Retired >= opt.MeasureInstrs {
		t.Fatal("hung result claims full retirement")
	}
	if _, err := s.Get(context.Background(), config.SS1(), p); err != nil {
		t.Fatal(err)
	}
	if got := s.Runs(); got != 1 {
		t.Fatalf("hung result was not cached: %d runs", got)
	}
}

// TestFaultConfigsDoNotCollide pins the cache key: two machines that
// differ only in fault-injection fields (same display name) must not
// share a cache entry — a campaign's trials all carry the same name.
func TestFaultConfigsDoNotCollide(t *testing.T) {
	p, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(Options{WarmupInstrs: 1000, MeasureInstrs: 5000})
	a := config.SHREC()
	a.FaultRate = 1e-3
	a.FaultSeed = 1
	b := a
	b.FaultSeed = 2

	ra, err := s.Get(context.Background(), a, p)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.Get(context.Background(), b, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Runs(); got != 2 {
		t.Fatalf("distinct fault seeds collided in the cache: %d runs", got)
	}
	// Different seeds sample different fault sites; the runs should not be
	// byte-identical (detection timings differ).
	if ra.Stats == rb.Stats {
		t.Log("warning: distinct seeds produced identical stats (possible but unlikely)")
	}
}
