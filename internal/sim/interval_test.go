package sim

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// normalizeParallelism strips the one Options field that legitimately
// differs between a sequential and a parallel run of the same simulation.
func normalizeParallelism(r Result) Result {
	r.Options.Parallelism = 0
	return r
}

// TestIntervalParallelMatchesSequential is the acceptance test for
// interval-parallel simulation: the stitched result — every counter and
// the order-folded architectural signature — must be byte-identical
// whether the intervals run one at a time or concurrently.
func TestIntervalParallelMatchesSequential(t *testing.T) {
	p, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	machines := []config.Machine{
		config.SS1(),
		config.SHREC(),
		config.MEEK(2),
		config.SHREC().WithContexts(4),
		config.FlexMachine(512, 128),
	}
	for _, m := range machines {
		t.Run(m.Name, func(t *testing.T) {
			opt := Options{WarmupInstrs: 3000, MeasureInstrs: 20000, Intervals: 4}
			seq := opt
			seq.Parallelism = 1
			par := opt
			par.Parallelism = 8

			a, err := Run(m, p, seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(m, p, par)
			if err != nil {
				t.Fatal(err)
			}
			if normalizeParallelism(a) != normalizeParallelism(b) {
				t.Errorf("interval-parallel result diverged from sequential\n seq: %+v\n par: %+v", a, b)
			}
			// Each interval's final cycle may overshoot by up to the retire
			// width, exactly like a classic run's final cycle.
			if r := a.Stats.Retired; r < opt.MeasureInstrs || r > opt.MeasureInstrs+64 {
				t.Errorf("stitched run retired %d, want %d (+ retire-width slack)", r, opt.MeasureInstrs)
			}
			if a.Stats.ArchSig == 0 {
				t.Error("stitched ArchSig is zero; signature fold exercised nothing")
			}
		})
	}
}

// TestIntervalRemainderDistribution pins that a measure length not
// divisible by the interval count still retires exactly MeasureInstrs
// (the last interval absorbs the remainder).
func TestIntervalRemainderDistribution(t *testing.T) {
	p, _ := workload.ByName("gzip-graphic")
	opt := Options{WarmupInstrs: 2000, MeasureInstrs: 10001, Intervals: 3, Parallelism: 3}
	res, err := Run(config.SS1(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.Retired; r < opt.MeasureInstrs || r > opt.MeasureInstrs+64 {
		t.Fatalf("retired %d, want %d (+ retire-width slack)", r, opt.MeasureInstrs)
	}
}

// TestIntervalCountTooHigh pins the error for more intervals than
// measured instructions.
func TestIntervalCountTooHigh(t *testing.T) {
	p, _ := workload.ByName("gzip-graphic")
	opt := Options{MeasureInstrs: 3, Intervals: 5}
	if _, err := Run(config.SS1(), p, opt); err == nil {
		t.Fatal("expected an error for Intervals > MeasureInstrs")
	}
}

// TestIntervalKeySemantics pins the cache-key contract: Intervals 0 and 1
// are both the classic run and share entries; a sampled split never
// collides with the classic run or with a different split.
func TestIntervalKeySemantics(t *testing.T) {
	m, p := config.SS1(), workload.All()[0]
	opt := tinyOpts()
	zero, one := opt, opt
	one.Intervals = 1
	four, eight := opt, opt
	four.Intervals = 4
	eight.Intervals = 8
	if key(m, p, zero) != key(m, p, one) {
		t.Error("Intervals 0 and 1 must share a cache key")
	}
	if key(m, p, zero) == key(m, p, four) || key(m, p, four) == key(m, p, eight) {
		t.Error("distinct interval splits must not collide")
	}
	if digest(m, p, zero) != digest(m, p, one) {
		t.Error("Intervals 0 and 1 must share a store digest")
	}
	if digest(m, p, zero) == digest(m, p, four) {
		t.Error("distinct interval splits must not collide in the store")
	}
}

// TestSuiteWarmupSharing pins the fault-campaign fast path: two trials
// that differ only in their injection seed must both resume the shared
// warmup checkpoint, and each must be byte-identical to its cold run.
func TestSuiteWarmupSharing(t *testing.T) {
	p, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{WarmupInstrs: 4000, MeasureInstrs: 12000, Parallelism: 4}
	trial := func(seed uint64) config.Machine {
		m := config.SHREC()
		m.FaultRate = 2e-4
		m.FaultSeed = seed
		// The window must start past the warmup's fetch frontier for the
		// shared checkpoint to be sound; leave generous slack.
		m.FaultWindowLo, m.FaultWindowHi = 8000, 16000
		return m
	}

	s := NewSuite(opt)
	ctx := context.Background()
	for _, seed := range []uint64{1, 2} {
		m := trial(seed)
		warm, err := s.GetOpt(ctx, m, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := RunContext(ctx, m, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Stats != cold.Stats || warm.Hung != cold.Hung {
			t.Errorf("seed %d: checkpoint-resumed trial diverged from cold run\nwarm: %+v\ncold: %+v",
				seed, warm.Stats, cold.Stats)
		}
	}
	if got := s.WarmupShares(); got != 2 {
		t.Errorf("WarmupShares = %d, want 2 (both trials must resume the shared checkpoint)", got)
	}
}

// TestWarmupSharingRefusedWhenWindowOverlaps pins the soundness guard: a
// trial whose injection window opens before the warmup's fetch frontier
// must run cold rather than resume a checkpoint that may already have
// needed fault randomness.
func TestWarmupSharingRefusedWhenWindowOverlaps(t *testing.T) {
	p, _ := workload.ByName("parser")
	opt := Options{WarmupInstrs: 4000, MeasureInstrs: 8000}
	m := config.SHREC()
	m.FaultRate = 2e-4
	m.FaultSeed = 7
	m.FaultWindowLo, m.FaultWindowHi = 1000, 16000

	s := NewSuite(opt)
	warm, err := s.GetOpt(context.Background(), m, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunContext(context.Background(), m, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats != cold.Stats {
		t.Errorf("overlapping-window trial diverged from cold run\ngot:  %+v\ncold: %+v", warm.Stats, cold.Stats)
	}
	if got := s.WarmupShares(); got != 0 {
		t.Errorf("WarmupShares = %d, want 0 (window overlaps warmup)", got)
	}
}
