package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// recoveryTrial is a SHREC machine with checkpoint recovery and an
// injection window opening after the warmup, so the warmup-share fast
// path applies.
func recoveryTrial(seed uint64) config.Machine {
	m := config.SHREC().WithCkptInterval(1024).WithCkptDepth(2)
	m.FaultRate = 2e-4
	m.FaultSeed = seed
	m.FaultWindowLo, m.FaultWindowHi = 8000, 16000
	return m
}

// TestRecoveryRunProducesTrace pins the Result wiring: a machine with a
// checkpoint interval gets a Recovery trace, completes the measured
// length, and keeps a clean committed timeline.
func TestRecoveryRunProducesTrace(t *testing.T) {
	p, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{WarmupInstrs: 4000, MeasureInstrs: 12000}
	res, err := Run(recoveryTrial(1), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil {
		t.Fatal("recovery machine produced no trace")
	}
	if res.Recovery.Interval != 1024 || res.Recovery.Depth != 2 {
		t.Errorf("trace policy %d/%d, want 1024/2", res.Recovery.Interval, res.Recovery.Depth)
	}
	if res.Recovery.Checkpoints == 0 {
		t.Error("no checkpoints captured")
	}
	if res.Stats.Retired != opt.MeasureInstrs {
		t.Errorf("retired %d, want exactly %d (recovery runs use exact chunking)",
			res.Stats.Retired, opt.MeasureInstrs)
	}
	// And a fault-free machine must not grow a trace.
	plain, err := Run(config.SHREC(), p, Options{WarmupInstrs: 2000, MeasureInstrs: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Recovery != nil {
		t.Errorf("checkpoint-free machine produced a trace: %+v", plain.Recovery)
	}
}

// TestRecoveryWarmupSharing pins that recovery trials ride the shared
// warmup checkpoint and stay byte-identical to a cold run — trace
// included — and that recovery machines with different policies share one
// warmup checkpoint with plain trials over the same base machine.
func TestRecoveryWarmupSharing(t *testing.T) {
	p, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{WarmupInstrs: 4000, MeasureInstrs: 12000, Parallelism: 4}
	s := NewSuite(opt)
	ctx := context.Background()
	for _, seed := range []uint64{1, 2} {
		m := recoveryTrial(seed)
		warm, err := s.GetOpt(ctx, m, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := RunContext(ctx, m, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Stats != cold.Stats || warm.Hung != cold.Hung {
			t.Errorf("seed %d: checkpoint-resumed recovery trial diverged from cold run\nwarm: %+v\ncold: %+v",
				seed, warm.Stats, cold.Stats)
		}
		if !reflect.DeepEqual(warm.Recovery, cold.Recovery) {
			t.Errorf("seed %d: recovery traces diverged\nwarm: %+v\ncold: %+v",
				seed, warm.Recovery, cold.Recovery)
		}
	}
	if got := s.WarmupShares(); got != 2 {
		t.Errorf("WarmupShares = %d, want 2", got)
	}
	if got := s.RecoveryRuns(); got != 2 {
		t.Errorf("RecoveryRuns = %d, want 2", got)
	}
}

// TestRecoveryKeySemantics pins that trials differing only in recovery
// policy get distinct cache entries even under an identical display name.
func TestRecoveryKeySemantics(t *testing.T) {
	p := workload.All()[0]
	a := recoveryTrial(1)
	b := a.WithCkptInterval(2048)
	b.Name = a.Name // force a name collision; the key must still split
	if key(a, p, tinyOpts()) == key(b, p, tinyOpts()) {
		t.Error("distinct checkpoint intervals collided on the cache key")
	}
	c := a
	c.CkptDepth = 4
	c.Name = a.Name
	if key(a, p, tinyOpts()) == key(c, p, tinyOpts()) {
		t.Error("distinct checkpoint depths collided on the cache key")
	}
}

// TestIntervalParallelRejectsRecovery pins the guard: rollback cannot
// cross independently simulated interval boundaries, so the combination
// is an error, not an approximation.
func TestIntervalParallelRejectsRecovery(t *testing.T) {
	p := workload.All()[0]
	opt := Options{WarmupInstrs: 1000, MeasureInstrs: 8000, Intervals: 4}
	_, err := Run(recoveryTrial(1), p, opt)
	if err == nil {
		t.Fatal("interval-parallel run with checkpoint recovery was accepted")
	}
	if !strings.Contains(err.Error(), "checkpoint recovery") {
		t.Errorf("unhelpful error: %v", err)
	}
}
