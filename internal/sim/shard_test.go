package sim

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Concurrent callers requesting the same (machine, benchmark, options)
// key must share exactly one underlying run (singleflight), and all
// observe identical results. Run with -race in CI.
func TestConcurrentGetSingleflight(t *testing.T) {
	s := NewSuite(tinyOpts())
	m := config.SHREC()
	p, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 64
	results := make([]Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Get(context.Background(), m, p)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := s.Runs(); got != 1 {
		t.Fatalf("%d concurrent callers triggered %d runs, want exactly 1", callers, got)
	}
	if got := s.Hits(); got != callers-1 {
		t.Fatalf("hits = %d, want %d", got, callers-1)
	}
	// The split counters must agree: exactly one cache miss (the owner),
	// and every other caller either joined the in-flight run or hit the
	// cache after it finished.
	if got := s.CacheMisses(); got != 1 {
		t.Fatalf("cache misses = %d, want 1", got)
	}
	if hits, waits := s.CacheHits(), s.DedupWaits(); hits+waits != callers-1 {
		t.Fatalf("cache hits %d + dedup waits %d != %d", hits, waits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i].Stats != results[0].Stats {
			t.Fatalf("caller %d observed a different result", i)
		}
	}
}

// The cache-effectiveness counters must classify each serving path:
// in-memory hit, miss-to-run, and miss-to-store.
func TestCacheCounterSplit(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	s := NewSuite(tinyOpts()).WithStore(st)
	m := config.SS1()
	p, _ := workload.ByName("gzip-graphic")
	ctx := context.Background()

	if _, err := s.Get(ctx, m, p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, m, p); err != nil {
		t.Fatal(err)
	}
	if s.CacheMisses() != 1 || s.CacheHits() != 1 || s.Runs() != 1 || s.StoreHits() != 0 {
		t.Fatalf("after warm get: misses=%d hits=%d runs=%d storeHits=%d, want 1/1/1/0",
			s.CacheMisses(), s.CacheHits(), s.Runs(), s.StoreHits())
	}

	// A fresh suite over the same store must classify the serve as a
	// cache miss satisfied by the store, not a run.
	s2 := NewSuite(tinyOpts()).WithStore(st)
	if _, err := s2.Get(ctx, m, p); err != nil {
		t.Fatal(err)
	}
	if s2.CacheMisses() != 1 || s2.StoreHits() != 1 || s2.Runs() != 0 {
		t.Fatalf("store-backed get: misses=%d storeHits=%d runs=%d, want 1/1/0",
			s2.CacheMisses(), s2.StoreHits(), s2.Runs())
	}
	if s2.Hits() != 1 {
		t.Fatalf("aggregate hits = %d, want 1", s2.Hits())
	}
}

// Different options must not share a run: the key includes run lengths.
func TestDistinctOptionsDistinctRuns(t *testing.T) {
	s := NewSuite(tinyOpts())
	m := config.SS1()
	p, _ := workload.ByName("gzip-graphic")
	ctx := context.Background()

	short := tinyOpts()
	long := tinyOpts()
	long.MeasureInstrs *= 2

	a, err := s.GetOpt(ctx, m, p, short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.GetOpt(ctx, m, p, long)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 2 {
		t.Fatalf("runs = %d, want 2 (distinct options)", s.Runs())
	}
	if a.Stats.Retired >= b.Stats.Retired {
		t.Fatalf("longer run retired fewer instructions: %d vs %d",
			a.Stats.Retired, b.Stats.Retired)
	}
}

// Concurrent Batch and Get callers over overlapping pairs must still run
// each pair exactly once.
func TestBatchGetDeduplication(t *testing.T) {
	s := NewSuite(tinyOpts())
	machines := []config.Machine{config.SS1(), config.SHREC()}
	profiles := workload.Integer()[:3]
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Batch(ctx, machines, profiles); err != nil {
				t.Error(err)
			}
		}()
	}
	for _, m := range machines {
		for _, p := range profiles {
			wg.Add(1)
			go func(m config.Machine, p trace.Profile) {
				defer wg.Done()
				if _, err := s.Get(ctx, m, p); err != nil {
					t.Error(err)
				}
			}(m, p)
		}
	}
	wg.Wait()

	want := uint64(len(machines) * len(profiles))
	if got := s.Runs(); got != want {
		t.Fatalf("runs = %d, want %d (one per unique pair)", got, want)
	}
}

// Batch must aggregate every worker failure, not just the first.
func TestBatchAggregatesAllErrors(t *testing.T) {
	s := NewSuite(tinyOpts())
	badA := config.SS1()
	badA.Name = "badA"
	badA.IssueWidth = 0
	badB := config.SS1()
	badB.Name = "badB"
	badB.ROBSize = 0
	machines := []config.Machine{badA, config.SS1(), badB}
	profiles := workload.Integer()[:1]

	err := s.Batch(context.Background(), machines, profiles)
	if err == nil {
		t.Fatal("invalid machines accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "badA") || !strings.Contains(msg, "badB") {
		t.Fatalf("error dropped a failure: %v", err)
	}
	// The valid machine's result must still have been computed and cached.
	if _, err := s.Get(context.Background(), config.SS1(), profiles[0]); err != nil {
		t.Fatalf("healthy run poisoned by sibling errors: %v", err)
	}
	if s.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", s.Runs())
	}
}

// A cancelled context stops Batch and surfaces the context error.
func TestBatchCancellation(t *testing.T) {
	s := NewSuite(Options{WarmupInstrs: 100_000, MeasureInstrs: 10_000_000, Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Batch(ctx, []config.Machine{config.SS1(), config.SHREC()}, workload.Integer()[:4])
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled batch reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not carry cancellation: %v", err)
		}
		// The cancellation cascade must collapse to one error, not one
		// "context canceled" line per outstanding job.
		if n := strings.Count(err.Error(), "context canceled"); n != 1 {
			t.Fatalf("cancellation error mentions the context %d times:\n%v", n, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not stop after cancellation")
	}
}

// A waiter whose own context expires while joined to another caller's
// in-flight run must return promptly with its own context error.
func TestWaiterCancellation(t *testing.T) {
	s := NewSuite(Options{WarmupInstrs: 100_000, MeasureInstrs: 50_000_000, Parallelism: 2})
	m := config.SS1()
	p, _ := workload.ByName("swim")

	bg, bgCancel := context.WithCancel(context.Background())
	defer bgCancel()
	owner := make(chan struct{})
	go func() {
		defer close(owner)
		_, _ = s.Get(bg, m, p) // long run, cancelled at test end
	}()

	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := s.Get(ctx, m, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want deadline exceeded", err)
	}
	bgCancel()
	<-owner
}

// Results persisted through a store must be reused by a second suite
// (simulating a second process) without re-running.
func TestSuiteStoreReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	m := config.SHREC()
	p, _ := workload.ByName("parser")
	ctx := context.Background()

	st1, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite(tinyOpts()).WithStore(st1)
	res1, err := s1.Get(ctx, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Runs() != 1 {
		t.Fatalf("first suite runs = %d", s1.Runs())
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := NewSuite(tinyOpts()).WithStore(st2)
	res2, err := s2.Get(ctx, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Runs() != 0 {
		t.Fatalf("second suite re-ran a stored result (%d runs)", s2.Runs())
	}
	if res1.Stats != res2.Stats {
		t.Fatal("stored result does not round-trip")
	}
}

// Results returns a stable, sorted snapshot of everything cached.
func TestResultsSnapshot(t *testing.T) {
	s := NewSuite(tinyOpts())
	ctx := context.Background()
	profiles := workload.Integer()[:2]
	if err := s.Batch(ctx, []config.Machine{config.SS1(), config.SHREC()}, profiles); err != nil {
		t.Fatal(err)
	}
	out := s.Results()
	if len(out) != 4 {
		t.Fatalf("results = %d, want 4", len(out))
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.Machine > b.Machine || (a.Machine == b.Machine && a.Benchmark > b.Benchmark) {
			t.Fatalf("results unsorted at %d: %s/%s after %s/%s",
				i, b.Machine, b.Benchmark, a.Machine, a.Benchmark)
		}
	}
}
