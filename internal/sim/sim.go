// Package sim drives simulations: it runs (machine, workload) pairs with
// cache/predictor warmup, caches results, parallelizes across cores, and
// aggregates IPCs the way the paper does (harmonic means over benchmark
// classes).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options controls simulation length.
type Options struct {
	// WarmupInstrs are executed before counters reset, hiding cold-start
	// effects (the paper measures SimPoint regions from mid-execution).
	WarmupInstrs uint64
	// MeasureInstrs are executed with counters enabled.
	MeasureInstrs uint64
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int
}

// DefaultOptions returns the experiment-scale run lengths.
func DefaultOptions() Options {
	return Options{WarmupInstrs: 500_000, MeasureInstrs: 1_000_000}
}

// QuickOptions returns short runs for smoke tests.
func QuickOptions() Options {
	return Options{WarmupInstrs: 30_000, MeasureInstrs: 100_000}
}

// Result is the outcome of one simulation.
type Result struct {
	Benchmark string
	Class     trace.Class
	HighIPC   bool
	Machine   string
	Stats     core.Stats
}

// IPC returns the run's instructions per cycle.
func (r Result) IPC() float64 { return r.Stats.IPC() }

// CPI returns the run's cycles per instruction.
func (r Result) CPI() float64 { return r.Stats.CPI() }

// Run simulates one machine on one workload.
func Run(m config.Machine, p trace.Profile, opt Options) (Result, error) {
	e := core.New(m, trace.New(p))
	if opt.WarmupInstrs > 0 {
		if err := e.Warmup(opt.WarmupInstrs); err != nil {
			return Result{}, fmt.Errorf("sim: warmup: %w", err)
		}
	}
	st, err := e.Run(opt.MeasureInstrs)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	return Result{
		Benchmark: p.Name,
		Class:     p.Class,
		HighIPC:   p.HighIPC,
		Machine:   m.Name,
		Stats:     st,
	}, nil
}

// Suite runs and memoizes simulations so experiments that share
// configurations (for example Table 2 and Figures 3/4) reuse results.
type Suite struct {
	opt Options

	mu    sync.Mutex
	cache map[string]Result // key: machine name + "\x00" + benchmark
}

// NewSuite builds a suite with the given options.
func NewSuite(opt Options) *Suite {
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Suite{opt: opt, cache: make(map[string]Result)}
}

// Options returns the suite's run options.
func (s *Suite) Options() Options { return s.opt }

func key(m config.Machine, p trace.Profile) string { return m.Name + "\x00" + p.Name }

// Batch runs every (machine, profile) pair, in parallel, reusing cached
// results. It returns the first error encountered.
func (s *Suite) Batch(machines []config.Machine, profiles []trace.Profile) error {
	type job struct {
		m config.Machine
		p trace.Profile
	}
	var jobs []job
	s.mu.Lock()
	for _, m := range machines {
		for _, p := range profiles {
			if _, ok := s.cache[key(m, p)]; !ok {
				jobs = append(jobs, job{m, p})
			}
		}
	}
	s.mu.Unlock()
	if len(jobs) == 0 {
		return nil
	}

	sem := make(chan struct{}, s.opt.Parallelism)
	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Run(j.m, j.p, s.opt)
			if err != nil {
				errCh <- fmt.Errorf("%s on %s: %w", j.m.Name, j.p.Name, err)
				return
			}
			s.mu.Lock()
			s.cache[key(j.m, j.p)] = res
			s.mu.Unlock()
		}(j)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// Get returns the cached result, running the simulation if needed.
func (s *Suite) Get(m config.Machine, p trace.Profile) (Result, error) {
	s.mu.Lock()
	res, ok := s.cache[key(m, p)]
	s.mu.Unlock()
	if ok {
		return res, nil
	}
	res, err := Run(m, p, s.opt)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	s.cache[key(m, p)] = res
	s.mu.Unlock()
	return res, nil
}

// IPC is a convenience accessor.
func (s *Suite) IPC(m config.Machine, p trace.Profile) (float64, error) {
	res, err := s.Get(m, p)
	if err != nil {
		return 0, err
	}
	return res.IPC(), nil
}

// ClassAverages holds the paper's three harmonic-mean aggregates for one
// benchmark class (integer or floating point).
type ClassAverages struct {
	All, High, Low float64
}

// Averages computes harmonic-mean IPCs over profiles for one machine,
// split into the paper's overall/high-IPC/low-IPC aggregates.
func (s *Suite) Averages(m config.Machine, profiles []trace.Profile) (ClassAverages, error) {
	var all, high, low []float64
	for _, p := range profiles {
		res, err := s.Get(m, p)
		if err != nil {
			return ClassAverages{}, err
		}
		ipc := res.IPC()
		all = append(all, ipc)
		if p.HighIPC {
			high = append(high, ipc)
		} else {
			low = append(low, ipc)
		}
	}
	return ClassAverages{
		All:  stats.HarmonicMean(all),
		High: stats.HarmonicMean(high),
		Low:  stats.HarmonicMean(low),
	}, nil
}

// MeanCPI returns the arithmetic-mean CPI over profiles for one machine.
// CPI is additive across equal instruction counts, so arithmetic means are
// the correct aggregate for factorial analysis (the paper analyzes CPI for
// the same reason).
func (s *Suite) MeanCPI(m config.Machine, profiles []trace.Profile) (float64, error) {
	var sum float64
	for _, p := range profiles {
		res, err := s.Get(m, p)
		if err != nil {
			return 0, err
		}
		sum += res.CPI()
	}
	return sum / float64(len(profiles)), nil
}
