// Package sim drives simulations: it runs (machine, workload) pairs with
// cache/predictor warmup, caches results, parallelizes across cores, and
// aggregates IPCs the way the paper does (harmonic means over benchmark
// classes).
//
// The Suite is built for heavy concurrent use: its result cache is
// lock-striped across shards, duplicate in-flight requests for the same
// (machine, benchmark, options) key are coalesced into one underlying run
// (singleflight), every entry point accepts a context.Context for
// cancellation and deadlines, and results can be persisted across
// processes through an optional store.Store.
package sim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options controls simulation length.
type Options struct {
	// WarmupInstrs are executed before counters reset, hiding cold-start
	// effects (the paper measures SimPoint regions from mid-execution).
	WarmupInstrs uint64
	// MeasureInstrs are executed with counters enabled.
	MeasureInstrs uint64
	// Intervals, when > 1, splits the measured phase into that many
	// consecutive regions of the instruction stream, each simulated by an
	// independent engine (fresh microarchitectural state, own
	// WarmupInstrs warmup) and stitched back together in stream order.
	// The intervals are independent, so they run concurrently under
	// Parallelism — this is the interval-parallel mode. It is a sampled
	// estimator in the SimPoint tradition, not the contiguous run: each
	// interval re-warms instead of inheriting state, so results differ
	// slightly from Intervals <= 1 (which is the exact classic path) and
	// the two never share cache entries. Stitched results are fully
	// deterministic and independent of Parallelism. MaxCycles, when set,
	// is divided evenly across intervals.
	Intervals int
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// It does not affect results and is excluded from cache keys.
	Parallelism int
	// MaxCycles, when positive, is a hang watchdog on the measured phase:
	// a run that exceeds this many cycles before retiring MeasureInstrs
	// stops early and returns a Result with Hung set instead of an error.
	// Fault campaigns use it to classify recovery livelocks.
	MaxCycles int64
}

// intervalCount returns the effective interval count: 0 and 1 both select
// the classic contiguous run.
func (o Options) intervalCount() int {
	if o.Intervals > 1 {
		return o.Intervals
	}
	return 1
}

// parallelism returns the effective worker bound.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultOptions returns the experiment-scale run lengths.
func DefaultOptions() Options {
	return Options{WarmupInstrs: 500_000, MeasureInstrs: 1_000_000}
}

// QuickOptions returns short runs for smoke tests.
func QuickOptions() Options {
	return Options{WarmupInstrs: 30_000, MeasureInstrs: 100_000}
}

// Result is the outcome of one simulation.
type Result struct {
	// Benchmark is the workload's name ("swim", "gcc-166", ...).
	Benchmark string
	// Class is the workload's benchmark class (integer or floating point).
	Class trace.Class
	// HighIPC marks workloads the paper groups into its high-IPC
	// aggregate.
	HighIPC bool
	// Machine is the machine configuration's display name.
	Machine string
	// Options records the run lengths that produced this result, so rows
	// for the same (machine, benchmark) at different scales stay
	// distinguishable in listings.
	Options Options
	// Hung reports that the run exhausted Options.MaxCycles before
	// retiring the requested instructions; Stats then holds the partial
	// counters accumulated up to the watchdog.
	Hung bool
	// Stats holds the run's detailed performance counters. On a recovery
	// run they describe the committed timeline: rollbacks rewind the
	// counters along with the machine, so work discarded by recovery
	// appears only in the Recovery trace.
	Stats core.Stats
	// Recovery holds the checkpoint/rollback observables when the machine
	// has a checkpoint interval configured (see internal/recovery); nil
	// otherwise.
	Recovery *recovery.Trace `json:",omitempty"`
}

// IPC returns the run's instructions per cycle.
func (r Result) IPC() float64 { return r.Stats.IPC() }

// CPI returns the run's cycles per instruction.
func (r Result) CPI() float64 { return r.Stats.CPI() }

// Run simulates one machine on one workload.
func Run(m config.Machine, p trace.Profile, opt Options) (Result, error) {
	return RunContext(context.Background(), m, p, opt)
}

// RunContext simulates one machine on one workload, checking ctx for
// cancellation between engine step batches.
func RunContext(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if opt.intervalCount() > 1 {
		if m.CkptInterval > 0 {
			// Rollback would need to cross interval boundaries that were
			// simulated independently; the combination is rejected rather
			// than silently approximated.
			return Result{}, fmt.Errorf("sim: %s: interval-parallel simulation cannot model checkpoint recovery", m.Name)
		}
		return runIntervals(ctx, m, p, opt)
	}
	e := core.New(m, trace.New(p))
	if opt.WarmupInstrs > 0 {
		if err := e.WarmupContext(ctx, opt.WarmupInstrs); err != nil {
			return Result{}, fmt.Errorf("sim: warmup: %w", err)
		}
	}
	st, tr, hung, err := measureOrRecover(ctx, e, m, opt.MeasureInstrs, opt.MaxCycles)
	if err != nil {
		return Result{}, err
	}
	return newResult(m, p, opt, st, tr, hung), nil
}

// measure runs the counted phase on a warmed engine and classifies a blown
// cycle budget as a hang rather than a driver failure: the partial
// counters return with hung set, so the result caches and persists like
// any other and a resumed campaign never re-simulates the hang.
func measure(ctx context.Context, e *core.Engine, n uint64, maxCycles int64) (core.Stats, bool, error) {
	st, err := e.RunBudget(ctx, n, maxCycles)
	if err != nil {
		if !errors.Is(err, core.ErrCycleBudget) {
			return core.Stats{}, false, fmt.Errorf("sim: %w", err)
		}
		return st, true, nil
	}
	return st, false, nil
}

// measureOrRecover is measure for machines with a checkpoint interval
// configured: the counted phase runs under recovery.Run, which wraps it in
// periodic checkpoints and rolls detected faults back. The returned trace
// is nil exactly when recovery is disabled.
func measureOrRecover(ctx context.Context, e *core.Engine, m config.Machine, n uint64, maxCycles int64) (core.Stats, *recovery.Trace, bool, error) {
	if m.CkptInterval == 0 {
		st, hung, err := measure(ctx, e, n, maxCycles)
		return st, nil, hung, err
	}
	st, tr, err := recovery.Run(ctx, e, n, maxCycles, m.CkptInterval, m.CkptDepth)
	if err != nil {
		if !errors.Is(err, core.ErrCycleBudget) {
			return core.Stats{}, nil, false, fmt.Errorf("sim: %w", err)
		}
		return st, &tr, true, nil
	}
	return st, &tr, false, nil
}

func newResult(m config.Machine, p trace.Profile, opt Options, st core.Stats, tr *recovery.Trace, hung bool) Result {
	return Result{
		Benchmark: p.Name,
		Class:     p.Class,
		HighIPC:   p.HighIPC,
		Machine:   m.Name,
		Options:   opt,
		Hung:      hung,
		Stats:     st,
		Recovery:  tr,
	}
}

// sigOffsetBasis seeds the interval-signature fold (the FNV-1a offset
// basis; the multiplier below is the FNV-1a prime).
const (
	sigOffsetBasis = 14695981039346656037
	sigPrime       = 1099511628211
)

// runIntervals is the interval-parallel simulation path: the measured
// phase splits into opt.Intervals consecutive regions of the instruction
// stream, each simulated by an independent engine over a fresh generator
// fast-skipped to the region start, warmed for WarmupInstrs, and measured
// for its share. Intervals run concurrently under opt.Parallelism, then
// stitch in stream order: counters via Stats.Add, architectural
// signatures via an order-sensitive fold, Hung by OR. Because intervals
// share no state, the stitched result is byte-identical no matter how
// many workers ran — the equivalence tests pin parallel == sequential.
func runIntervals(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, error) {
	k := opt.intervalCount()
	per := opt.MeasureInstrs / uint64(k)
	if per == 0 {
		return Result{}, fmt.Errorf("sim: %d intervals need at least %d measured instructions, have %d",
			k, k, opt.MeasureInstrs)
	}
	budget := opt.MaxCycles
	if budget > 0 {
		if budget /= int64(k); budget == 0 {
			budget = 1
		}
	}

	stats := make([]core.Stats, k)
	hungs := make([]bool, k)
	errs := make([]error, k)
	par := opt.parallelism()
	if par > k {
		par = k
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			n := per
			if i == k-1 {
				// The last interval absorbs the division remainder so the
				// stitched run measures exactly MeasureInstrs.
				n = opt.MeasureInstrs - per*uint64(k-1)
			}
			stats[i], hungs[i], errs[i] = runInterval(ctx, m, p, uint64(i)*per, opt.WarmupInstrs, n, budget)
		}(i)
	}
	wg.Wait()

	var agg core.Stats
	sig := uint64(sigOffsetBasis)
	hung := false
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			return Result{}, fmt.Errorf("sim: interval %d of %d: %w", i, k, errs[i])
		}
		agg.Add(stats[i])
		sig = (sig ^ stats[i].ArchSig) * sigPrime
		hung = hung || hungs[i]
	}
	agg.ArchSig = sig
	return newResult(m, p, opt, agg, nil, hung), nil
}

// runInterval simulates one region: fast-skip the generator to the region
// start, warm, measure.
func runInterval(ctx context.Context, m config.Machine, p trace.Profile, skip, warm, n uint64, budget int64) (core.Stats, bool, error) {
	src := trace.New(p)
	for j := uint64(0); j < skip; j++ {
		src.Next()
		if j&0xffff == 0xffff && ctx.Err() != nil {
			return core.Stats{}, false, ctx.Err()
		}
	}
	e := core.New(m, src)
	if warm > 0 {
		if err := e.WarmupContext(ctx, warm); err != nil {
			return core.Stats{}, false, fmt.Errorf("sim: warmup: %w", err)
		}
	}
	return measure(ctx, e, n, budget)
}

// numShards stripes the result cache. A modest power of two keeps the
// striping cheap while making lock contention negligible even with
// hundreds of concurrent callers.
const numShards = 32

// call is one in-flight simulation shared by every caller that requested
// the same key while it ran (singleflight).
type call struct {
	done chan struct{} // closed when res/err are valid
	res  Result
	err  error
}

// shard is one stripe of the result cache.
type shard struct {
	mu       sync.Mutex
	results  map[string]Result
	inflight map[string]*call
}

// Suite runs and memoizes simulations so experiments that share
// configurations (for example Table 2 and Figures 3/4) reuse results.
// All methods are safe for concurrent use.
type Suite struct {
	opt    Options
	shards [numShards]shard
	sem    chan struct{} // bounds concurrently executing simulations

	disk *store.Store // optional cross-process persistence (nil = off)

	// cps caches warmup checkpoints shared across fault-campaign trials:
	// trials differ only in FaultSeed and window, and fault eligibility
	// consults the window before drawing randomness, so every trial whose
	// window starts after the warmup replays one shared checkpoint instead
	// of re-simulating the warmup (see core.Checkpoint).
	cpMu sync.Mutex
	cps  map[string]*cpEntry

	runs         atomic.Uint64 // underlying simulations actually executed
	cacheHits    atomic.Uint64 // requests served from the in-memory striped cache
	cacheMiss    atomic.Uint64 // requests that found neither a result nor an in-flight run
	dedupWaits   atomic.Uint64 // requests served by joining an in-flight duplicate run
	storeHits    atomic.Uint64 // cache misses served from the persistent store
	storeErrs    atomic.Uint64 // failed persistent-store writes (results still served)
	warmupShares atomic.Uint64 // runs served from a shared warmup checkpoint
	intervalRuns atomic.Uint64 // executed runs that used the interval-parallel path
	recoveryRuns atomic.Uint64 // executed runs simulated under checkpoint recovery
	rollbacks    atomic.Uint64 // total rollbacks across all recovery runs

	// stages, when telemetry is attached, holds the sim_stage_seconds{stage}
	// histogram family. All stage timing rides run boundaries — cache
	// lookups, store round-trips, whole engine runs — never the cycle
	// loop, so the engine core stays allocation-free.
	stages *telemetry.HistogramVec
}

// cpEntry is one warmup checkpoint, built once by the first requester
// while duplicates wait on the sync.Once.
type cpEntry struct {
	once sync.Once
	cp   *core.Checkpoint
	err  error
}

// NewSuite builds a suite with the given options.
func NewSuite(opt Options) *Suite {
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	s := &Suite{opt: opt, sem: make(chan struct{}, opt.Parallelism), cps: make(map[string]*cpEntry)}
	for i := range s.shards {
		s.shards[i].results = make(map[string]Result)
		s.shards[i].inflight = make(map[string]*call)
	}
	return s
}

// WithStore attaches a persistent result store: cache misses consult the
// store before simulating, and fresh results are written back, so repeated
// experiment runs reuse results across processes. Returns s for chaining.
func (s *Suite) WithStore(st *store.Store) *Suite {
	s.disk = st
	return s
}

// WithTelemetry attaches a metrics registry: the suite registers
// sim_stage_seconds{stage} and times each pipeline stage into it —
// cache_lookup, dedup_wait, store_fetch, store_write, warmup_share,
// engine_run, and (via the context observer threaded into recovery)
// recovery_rollback. Returns s for chaining.
func (s *Suite) WithTelemetry(reg *telemetry.Registry) *Suite {
	s.stages = reg.HistogramVec("sim_stage_seconds",
		"Simulation pipeline stage durations: cache_lookup, dedup_wait, store_fetch, store_write, warmup_share, engine_run, recovery_rollback.",
		telemetry.DefTimeBuckets(), "stage")
	return s
}

// StageSnapshots returns the per-stage histogram snapshots (nil when no
// telemetry is attached), for facades that summarize stage timing.
func (s *Suite) StageSnapshots() []telemetry.LabeledHistogram {
	if s.stages == nil {
		return nil
	}
	return s.stages.Snapshots()
}

// observeStage records one stage duration into the registry histogram
// (when telemetry is attached) and the context's span (when one rides the
// request), so job status JSON and /metrics see the same timings.
func (s *Suite) observeStage(ctx context.Context, stage string, start time.Time) {
	d := time.Since(start)
	if s.stages != nil {
		s.stages.With(stage).Observe(d.Seconds())
	}
	telemetry.SpanFrom(ctx).Record(stage, d)
}

// Options returns the suite's run options.
func (s *Suite) Options() Options { return s.opt }

// Runs reports how many simulations the suite actually executed (cache
// misses that were not deduplicated or served from disk).
func (s *Suite) Runs() uint64 { return s.runs.Load() }

// Hits reports how many requests were served without a fresh simulation:
// from the in-memory cache, the persistent store, or by joining an
// in-flight duplicate run.
func (s *Suite) Hits() uint64 {
	return s.cacheHits.Load() + s.dedupWaits.Load() + s.storeHits.Load()
}

// CacheHits reports requests served directly from the in-memory striped
// result cache.
func (s *Suite) CacheHits() uint64 { return s.cacheHits.Load() }

// CacheMisses reports requests that found neither a cached result nor an
// in-flight duplicate and went on to the store or a fresh simulation.
func (s *Suite) CacheMisses() uint64 { return s.cacheMiss.Load() }

// DedupWaits reports requests served by waiting on an in-flight duplicate
// run (singleflight coalescing) instead of executing their own.
func (s *Suite) DedupWaits() uint64 { return s.dedupWaits.Load() }

// StoreHits reports cache misses that were served from the persistent
// store rather than a fresh simulation.
func (s *Suite) StoreHits() uint64 { return s.storeHits.Load() }

// StoreErrors reports how many results failed to persist to the attached
// store (they were still computed and served from memory).
func (s *Suite) StoreErrors() uint64 { return s.storeErrs.Load() }

// WarmupShares reports how many simulations skipped their warmup by
// resuming a shared fault-free warmup checkpoint (fault-campaign trials
// whose injection window starts after the warmup).
func (s *Suite) WarmupShares() uint64 { return s.warmupShares.Load() }

// IntervalRuns reports how many executed simulations took the
// interval-parallel path (Options.Intervals > 1).
func (s *Suite) IntervalRuns() uint64 { return s.intervalRuns.Load() }

// RecoveryRuns reports how many executed simulations ran under checkpoint
// recovery (a machine with CkptInterval set).
func (s *Suite) RecoveryRuns() uint64 { return s.recoveryRuns.Load() }

// Rollbacks reports the total rollbacks performed across every executed
// recovery run.
func (s *Suite) Rollbacks() uint64 { return s.rollbacks.Load() }

// key identifies one (machine, benchmark, options) simulation. Run
// lengths and the cycle budget are part of the key so one suite can serve
// requests at several scales (the shrecd server does) without conflating
// their results, and so are the machine's fault-injection and checkpoint
// fields: a campaign fans out hundreds of trials that differ only in
// FaultSeed and window (or only in recovery policy), which must not
// collide on the shared display name.
// The interval count is keyed through intervalCount, so 0 and 1 (both the
// classic contiguous run) share entries while sampled splits stay apart.
func key(m config.Machine, p trace.Profile, opt Options) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%d\x00%g\x00%d\x00%d\x00%d\x00%d\x00%d\x00%d",
		m.Name, p.Name, opt.WarmupInstrs, opt.MeasureInstrs, opt.MaxCycles,
		m.FaultRate, m.FaultSeed, m.FaultWindowLo, m.FaultWindowHi,
		opt.intervalCount(), m.CkptInterval, m.CkptDepth)
}

func (s *Suite) shardFor(k string) *shard {
	h := fnv.New32a()
	h.Write([]byte(k))
	return &s.shards[h.Sum32()%numShards]
}

// digest builds the persistent-store key. Unlike the in-memory key it
// hashes the full machine configuration and workload profile, so renamed
// or edited configurations never collide across processes. Only the run
// lengths and cycle budget of the options participate: Parallelism does
// not affect results, and hashing it would make store lookups miss across
// machines with different core counts. The schema label is v5: v3
// results predate checkpoint recovery, v4 results predate the detection
// mode zoo — the hashed machine grew the lane/context/region fields and
// Stats grew the MEEK and FLEX counters, so v4 records would resolve to
// Results missing those fields.
func digest(m config.Machine, p trace.Profile, opt Options) string {
	return store.Digest("sim.Result.v5", m, p, opt.WarmupInstrs, opt.MeasureInstrs, opt.MaxCycles,
		opt.intervalCount())
}

// Get returns the cached result, running the simulation if needed.
func (s *Suite) Get(ctx context.Context, m config.Machine, p trace.Profile) (Result, error) {
	return s.GetOpt(ctx, m, p, s.opt)
}

// GetOpt is Get with per-call run lengths, used by servers that accept
// request-scoped options. Concurrent callers requesting the same
// (machine, benchmark, options) key share one underlying run.
func (s *Suite) GetOpt(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, error) {
	k := key(m, p, opt)
	sh := s.shardFor(k)
	for {
		look := time.Now()
		sh.mu.Lock()
		if res, ok := sh.results[k]; ok {
			sh.mu.Unlock()
			s.observeStage(ctx, "cache_lookup", look)
			s.cacheHits.Add(1)
			return res, nil
		}
		if c, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			s.observeStage(ctx, "cache_lookup", look)
			wait := time.Now()
			select {
			case <-c.done:
				s.observeStage(ctx, "dedup_wait", wait)
				if c.err == nil {
					s.dedupWaits.Add(1)
					return c.res, nil
				}
				// The owning caller was cancelled; if we are still live,
				// retry so our request is not poisoned by their deadline.
				if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
					if ctx.Err() != nil {
						return Result{}, ctx.Err()
					}
					continue
				}
				return Result{}, c.err
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		sh.inflight[k] = c
		sh.mu.Unlock()
		s.observeStage(ctx, "cache_lookup", look)
		s.cacheMiss.Add(1)

		c.res, c.err = s.execute(ctx, m, p, opt)
		sh.mu.Lock()
		if c.err == nil {
			sh.results[k] = c.res
		}
		delete(sh.inflight, k)
		sh.mu.Unlock()
		close(c.done)
		return c.res, c.err
	}
}

// execute performs one cache-missing simulation: consult the persistent
// store, otherwise run under the parallelism bound and write back.
func (s *Suite) execute(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, error) {
	var dk string
	if s.disk != nil {
		dk = digest(m, p, opt)
		fetch := time.Now()
		var res Result
		ok, err := s.disk.Get(dk, &res)
		s.observeStage(ctx, "store_fetch", fetch)
		if err == nil && ok {
			s.storeHits.Add(1)
			return res, nil
		}
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	if s.stages != nil {
		// Layers below the suite (recovery rollbacks) report through the
		// context observer so they feed sim_stage_seconds without importing
		// this package.
		ctx = telemetry.WithStageObserver(ctx, func(stage string, seconds float64) {
			s.stages.With(stage).Observe(seconds)
		})
	}
	res, err := s.simulate(ctx, m, p, opt)
	if err != nil {
		return Result{}, err
	}
	s.runs.Add(1)
	if opt.intervalCount() > 1 {
		s.intervalRuns.Add(1)
	}
	if res.Recovery != nil {
		s.recoveryRuns.Add(1)
		s.rollbacks.Add(res.Recovery.Rollbacks)
	}
	if s.disk != nil {
		// A persistence failure (disk full, closed store) must not discard
		// a successfully computed result: keep serving it from memory and
		// count the failure for observability.
		write := time.Now()
		if err := s.disk.Put(dk, res); err != nil {
			s.storeErrs.Add(1)
		}
		s.observeStage(ctx, "store_write", write)
	}
	return res, nil
}

// simulate performs one underlying run, routing fault-campaign trials
// through the shared warmup-checkpoint cache when that is provably
// equivalent to a cold start, and everything else through RunContext.
func (s *Suite) simulate(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, error) {
	// Sharing is sound only for the classic contiguous path, with a warmup
	// to share, for machines that inject faults (fault-free runs dedupe on
	// the result key already), whose window cannot open during the warmup.
	// FetchSeq runs ahead of the retired count, so the precise bound is
	// rechecked against the built checkpoint below.
	if opt.intervalCount() == 1 && opt.WarmupInstrs > 0 &&
		m.FaultRate > 0 && m.FaultWindowLo >= opt.WarmupInstrs {
		if res, ok, err := s.runFromWarmup(ctx, m, p, opt); err != nil || ok {
			return res, err
		}
	}
	run := time.Now()
	res, err := RunContext(ctx, m, p, opt)
	s.observeStage(ctx, "engine_run", run)
	return res, err
}

// runFromWarmup serves one fault trial from the shared warmup checkpoint.
// ok reports whether sharing applied; on ok == false (checkpoint build
// failed, or its fetch frontier already overlaps the fault window) the
// caller falls back to a cold run.
func (s *Suite) runFromWarmup(ctx context.Context, m config.Machine, p trace.Profile, opt Options) (Result, bool, error) {
	if err := m.Validate(); err != nil {
		return Result{}, false, fmt.Errorf("sim: %w", err)
	}
	// The warmup is fault-free and checkpoint-free regardless of the trial's
	// injection and recovery settings, and the display name tracks those
	// settings — zero all three so one warmup checkpoint serves every trial
	// and every recovery policy over the same base machine.
	base := m
	base.Name = ""
	base.FaultRate, base.FaultSeed = 0, 0
	base.FaultWindowLo, base.FaultWindowHi = 0, 0
	base.CkptInterval, base.CkptDepth = 0, 0
	// v3: the machine hash gained the detection-mode-zoo fields, so v2
	// checkpoint keys no longer correspond to any current machine.
	ck := store.Digest("sim.warmup.v3", base, p, opt.WarmupInstrs)

	share := time.Now()
	s.cpMu.Lock()
	entry, ok := s.cps[ck]
	if !ok {
		entry = &cpEntry{}
		s.cps[ck] = entry
	}
	s.cpMu.Unlock()
	entry.once.Do(func() {
		e := core.New(base, trace.New(p))
		if err := e.WarmupContext(ctx, opt.WarmupInstrs); err != nil {
			entry.err = err
			return
		}
		entry.cp, entry.err = e.Checkpoint()
	})
	if entry.err != nil {
		// Drop the failed entry (it may have died on this caller's
		// context) so a later trial rebuilds; this trial runs cold.
		s.cpMu.Lock()
		if s.cps[ck] == entry {
			delete(s.cps, ck)
		}
		s.cpMu.Unlock()
		return Result{}, false, nil
	}
	if m.FaultWindowLo < entry.cp.FetchSeq() {
		return Result{}, false, nil
	}
	s.observeStage(ctx, "warmup_share", share)

	run := time.Now()
	e := entry.cp.NewEngine()
	e.SetFaultConfig(m.FaultRate, m.FaultSeed, m.FaultWindowLo, m.FaultWindowHi)
	st, tr, hung, err := measureOrRecover(ctx, e, m, opt.MeasureInstrs, opt.MaxCycles)
	s.observeStage(ctx, "engine_run", run)
	if err != nil {
		return Result{}, false, err
	}
	s.warmupShares.Add(1)
	return newResult(m, p, opt, st, tr, hung), true, nil
}

// Batch runs every (machine, profile) pair, in parallel, reusing cached
// and in-flight results. Unlike a first-error fan-out, it waits for every
// worker and returns all failures joined with errors.Join, so one bad
// configuration does not hide the others.
func (s *Suite) Batch(ctx context.Context, machines []config.Machine, profiles []trace.Profile) error {
	type job struct {
		m config.Machine
		p trace.Profile
	}
	var jobs []job
	for _, m := range machines {
		for _, p := range profiles {
			// Skip pairs already cached so a warm batch spawns no
			// goroutines and does not inflate the hit counter; races with
			// concurrent fills are still covered by GetOpt's singleflight.
			k := key(m, p, s.opt)
			sh := s.shardFor(k)
			sh.mu.Lock()
			_, ok := sh.results[k]
			sh.mu.Unlock()
			if ok {
				continue
			}
			jobs = append(jobs, job{m, p})
		}
	}
	if len(jobs) == 0 {
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			if _, err := s.GetOpt(ctx, j.m, j.p, s.opt); err != nil {
				errs[i] = fmt.Errorf("%s on %s: %w", j.m.Name, j.p.Name, err)
			}
		}(i, j)
	}
	wg.Wait()
	failed := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) == 0 {
		// Every job completed; a context that expired in the final window
		// is irrelevant to the (fully computed) results.
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Cancellation cascades into every outstanding job; collapse that
		// noise into one error and keep only genuine failures.
		real := failed[:0]
		for _, err := range failed {
			if !errors.Is(err, ctxErr) {
				real = append(real, err)
			}
		}
		return errors.Join(append(real, fmt.Errorf("sim: batch interrupted: %w", ctxErr))...)
	}
	return errors.Join(failed...)
}

// Lookup returns the cached result for (m, p) at the suite's options
// without running anything and without counting a cache hit — for
// callers collecting results they just computed via Batch, where a hit
// increment would misstate cache effectiveness.
func (s *Suite) Lookup(m config.Machine, p trace.Profile) (Result, bool) {
	k := key(m, p, s.opt)
	sh := s.shardFor(k)
	sh.mu.Lock()
	res, ok := sh.results[k]
	sh.mu.Unlock()
	return res, ok
}

// Len reports how many results are cached, summing shard sizes without
// copying any entries — the cheap gauge behind shrecd_results_cached
// (Results would copy the whole cache on every scrape).
func (s *Suite) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.results)
		sh.mu.Unlock()
	}
	return n
}

// Results returns a snapshot of every cached result, sorted by machine
// then benchmark for stable output (the shrecd GET /results endpoint).
func (s *Suite) Results() []Result {
	var out []Result
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, r := range sh.results {
			out = append(out, r)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Options.WarmupInstrs != b.Options.WarmupInstrs {
			return a.Options.WarmupInstrs < b.Options.WarmupInstrs
		}
		return a.Options.MeasureInstrs < b.Options.MeasureInstrs
	})
	return out
}

// IPC is a convenience accessor.
func (s *Suite) IPC(ctx context.Context, m config.Machine, p trace.Profile) (float64, error) {
	res, err := s.Get(ctx, m, p)
	if err != nil {
		return 0, err
	}
	return res.IPC(), nil
}

// ClassAverages holds the paper's three harmonic-mean aggregates for one
// benchmark class (integer or floating point).
type ClassAverages struct {
	// All is the harmonic-mean IPC over every profile in the class; High
	// and Low restrict it to the paper's high- and low-IPC groups.
	All, High, Low float64
}

// Averages computes harmonic-mean IPCs over profiles for one machine,
// split into the paper's overall/high-IPC/low-IPC aggregates.
func (s *Suite) Averages(ctx context.Context, m config.Machine, profiles []trace.Profile) (ClassAverages, error) {
	var all, high, low []float64
	for _, p := range profiles {
		res, err := s.Get(ctx, m, p)
		if err != nil {
			return ClassAverages{}, err
		}
		ipc := res.IPC()
		all = append(all, ipc)
		if p.HighIPC {
			high = append(high, ipc)
		} else {
			low = append(low, ipc)
		}
	}
	return ClassAverages{
		All:  stats.HarmonicMean(all),
		High: stats.HarmonicMean(high),
		Low:  stats.HarmonicMean(low),
	}, nil
}

// MeanCPI returns the arithmetic-mean CPI over profiles for one machine.
// CPI is additive across equal instruction counts, so arithmetic means are
// the correct aggregate for factorial analysis (the paper analyzes CPI for
// the same reason).
func (s *Suite) MeanCPI(ctx context.Context, m config.Machine, profiles []trace.Profile) (float64, error) {
	var sum float64
	for _, p := range profiles {
		res, err := s.Get(ctx, m, p)
		if err != nil {
			return 0, err
		}
		sum += res.CPI()
	}
	return sum / float64(len(profiles)), nil
}
