package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func tinyOpts() Options {
	return Options{WarmupInstrs: 5000, MeasureInstrs: 10000, Parallelism: 8}
}

func TestRunProducesResult(t *testing.T) {
	p, err := workload.ByName("gzip-graphic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(config.SS1(), p, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip-graphic" || res.Machine != "SS1" {
		t.Fatalf("labels = %s/%s", res.Benchmark, res.Machine)
	}
	if res.IPC() <= 0 || res.CPI() <= 0 {
		t.Fatalf("IPC=%v CPI=%v", res.IPC(), res.CPI())
	}
	if res.Stats.Retired < tinyOpts().MeasureInstrs {
		t.Fatal("run shorter than requested")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := workload.ByName("parser")
	a, err := Run(config.SHREC(), p, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(config.SHREC(), p, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatal("identical runs diverged")
	}
}

func TestSuiteBatchAndCache(t *testing.T) {
	s := NewSuite(tinyOpts())
	machines := []config.Machine{config.SS1(), config.SS2(config.Factors{})}
	profiles := workload.Integer()[:3]
	if err := s.Batch(context.Background(), machines, profiles); err != nil {
		t.Fatal(err)
	}
	// Cached access must return identical values.
	r1, err := s.Get(context.Background(), machines[0], profiles[0])
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Get(context.Background(), machines[0], profiles[0])
	if r1.Stats != r2.Stats {
		t.Fatal("cache returned different results")
	}
	// Batch again is a no-op (all cached) and must not error.
	if err := s.Batch(context.Background(), machines, profiles); err != nil {
		t.Fatal(err)
	}
}

func TestAverages(t *testing.T) {
	s := NewSuite(tinyOpts())
	profiles := workload.Integer()
	av, err := s.Averages(context.Background(), config.SS1(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	if av.All <= 0 || av.High <= 0 || av.Low <= 0 {
		t.Fatalf("averages = %+v", av)
	}
	// Harmonic mean over all must lie between the subset means.
	lo, hi := av.Low, av.High
	if lo > hi {
		lo, hi = hi, lo
	}
	if av.All < lo || av.All > hi {
		t.Fatalf("overall %v outside [%v, %v]", av.All, lo, hi)
	}
	// The high-IPC subset must in fact be faster.
	if av.High <= av.Low {
		t.Fatalf("high %v <= low %v", av.High, av.Low)
	}
}

func TestMeanCPI(t *testing.T) {
	s := NewSuite(tinyOpts())
	profiles := workload.Integer()[:2]
	cpi, err := s.MeanCPI(context.Background(), config.SS1(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	if cpi <= 0 || cpi > 50 {
		t.Fatalf("mean CPI = %v", cpi)
	}
}

func TestErrorsPropagate(t *testing.T) {
	p, _ := workload.ByName("swim")
	bad := config.SS1()
	bad.Name = "bad"
	bad.IssueWidth = 0
	if _, err := Run(bad, p, tinyOpts()); err == nil {
		t.Fatal("invalid machine not rejected")
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d, q := DefaultOptions(), QuickOptions()
	if d.MeasureInstrs <= q.MeasureInstrs {
		t.Fatal("default must measure more than quick")
	}
	if d.WarmupInstrs == 0 || q.WarmupInstrs == 0 {
		t.Fatal("warmup must be enabled in both presets")
	}
}

func TestKeyUniqueness(t *testing.T) {
	opt := tinyOpts()
	a := key(config.SS1(), workload.All()[0], opt)
	b := key(config.SS2(config.Factors{}), workload.All()[0], opt)
	c := key(config.SS1(), workload.All()[1], opt)
	big := opt
	big.MeasureInstrs *= 2
	d := key(config.SS1(), workload.All()[0], big)
	if a == b || a == c || a == d || !strings.Contains(a, "\x00") {
		t.Fatal("cache keys collide")
	}
}
