package stats

// Pareto-dominance helpers for the design-space exploration engine: a
// machine configuration is interesting when no other configuration beats
// it on every objective at once (IPC, coverage, hardware cost), and the
// set of such configurations — the Pareto frontier — is what an
// exploration reports.

// Dominates reports whether point a dominates point b: a is at least as
// good on every objective and strictly better on at least one. All
// objectives are maximized; negate minimized objectives (cost) before
// calling. The vectors must have equal length and finite values. Equal
// points do not dominate each other.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic("stats: Dominates with mismatched objective counts")
	}
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated points, in input
// order. Each point is a vector of objectives, all maximized (negate
// minimized objectives before calling); values must be finite. Duplicate
// points are all kept — neither dominates the other — so callers that
// want one representative per configuration must deduplicate first.
func ParetoFront(points [][]float64) []int {
	front := make([]int, 0, len(points))
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// ParetoRanks peels the point set into successive frontiers: rank 0 is
// the Pareto frontier, rank 1 the frontier once rank 0 is removed, and so
// on (non-dominated sorting). The successive-halving explorer promotes
// survivors rank by rank, so cheap-but-slow frontier candidates are never
// starved out by a single scalar score.
func ParetoRanks(points [][]float64) []int {
	ranks := make([]int, len(points))
	for i := range ranks {
		ranks[i] = -1
	}
	remaining := len(points)
	for rank := 0; remaining > 0; rank++ {
		// The frontier of the not-yet-ranked points. Collect first, assign
		// after: tagging mid-sweep would hide a frontier point from the
		// dominance checks of later points in the same sweep.
		var front []int
		for i, p := range points {
			if ranks[i] >= 0 {
				continue
			}
			dominated := false
			for j, q := range points {
				if ranks[j] < 0 && i != j && Dominates(q, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		for _, i := range front {
			ranks[i] = rank
		}
		remaining -= len(front)
	}
	return ranks
}
