package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, true},
		{[]float64{2, 1}, []float64{1, 1}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict gain
		{[]float64{2, 0}, []float64{1, 1}, false}, // trade-off
		{[]float64{1, 1}, []float64{2, 2}, false},
		{[]float64{3}, []float64{2}, true},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestParetoFrontKnown(t *testing.T) {
	// A classic two-objective set: (ipc, -cost).
	points := [][]float64{
		{1.0, -10}, // 0: cheap, slow — frontier
		{2.0, -20}, // 1: frontier
		{1.5, -25}, // 2: dominated by 1 (slower AND dearer)
		{3.0, -40}, // 3: frontier
		{2.0, -20}, // 4: duplicate of 1 — kept
		{0.5, -15}, // 5: dominated by 0
	}
	got := ParetoFront(points)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

func TestParetoFrontEmptyAndSingle(t *testing.T) {
	if f := ParetoFront(nil); len(f) != 0 {
		t.Fatalf("frontier of nothing = %v", f)
	}
	if f := ParetoFront([][]float64{{1, 2, 3}}); len(f) != 1 || f[0] != 0 {
		t.Fatalf("frontier of one point = %v", f)
	}
}

// randomPoints builds a deterministic pseudo-random point set. Values are
// drawn from a small grid so duplicates and ties actually occur.
func randomPoints(r *rng.RNG, n, dims int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dims)
		for d := range pts[i] {
			pts[i][d] = float64(r.Uint64() % 8)
		}
	}
	return pts
}

// TestParetoFrontProperties is the property test of the satellite: over
// seeded random point sets, (1) no frontier point dominates another
// frontier point, (2) every excluded point is dominated by some frontier
// point, and (3) the frontier is idempotent.
func TestParetoFrontProperties(t *testing.T) {
	r := rng.New(0xA7E70)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(r.Uint64()%40)
		dims := 1 + int(r.Uint64()%4)
		pts := randomPoints(r, n, dims)
		front := ParetoFront(pts)
		if len(front) == 0 {
			t.Fatalf("trial %d: empty frontier over %d points", trial, n)
		}
		onFront := make(map[int]bool, len(front))
		for _, i := range front {
			onFront[i] = true
		}
		// (1) Mutual non-dominance on the frontier.
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(pts[i], pts[j]) {
					t.Fatalf("trial %d: frontier point %d dominates frontier point %d", trial, i, j)
				}
			}
		}
		// (2) Every excluded point is dominated by a frontier member.
		for i := range pts {
			if onFront[i] {
				continue
			}
			covered := false
			for _, j := range front {
				if Dominates(pts[j], pts[i]) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: excluded point %d dominated by no frontier member", trial, i)
			}
		}
		// (3) Idempotence: the frontier of the frontier is itself.
		sub := make([][]float64, len(front))
		for k, i := range front {
			sub[k] = pts[i]
		}
		again := ParetoFront(sub)
		if len(again) != len(front) {
			t.Fatalf("trial %d: frontier not idempotent: %d -> %d", trial, len(front), len(again))
		}
	}
}

// TestParetoRanks verifies non-dominated sorting: rank 0 is the frontier,
// each later rank is the frontier of what remains, and ranks cover every
// point.
func TestParetoRanks(t *testing.T) {
	r := rng.New(0x4A11C5)
	for trial := 0; trial < 30; trial++ {
		n := 1 + int(r.Uint64()%30)
		pts := randomPoints(r, n, 1+int(r.Uint64()%3))
		ranks := ParetoRanks(pts)
		if len(ranks) != n {
			t.Fatalf("trial %d: %d ranks for %d points", trial, len(ranks), n)
		}
		maxRank := 0
		for i, rk := range ranks {
			if rk < 0 {
				t.Fatalf("trial %d: point %d unranked", trial, i)
			}
			if rk > maxRank {
				maxRank = rk
			}
		}
		// Peeling ranks one at a time must reproduce ParetoFront at each
		// level.
		remaining := make([]int, 0, n)
		for i := range pts {
			remaining = append(remaining, i)
		}
		for rk := 0; rk <= maxRank; rk++ {
			sub := make([][]float64, len(remaining))
			for k, i := range remaining {
				sub[k] = pts[i]
			}
			front := ParetoFront(sub)
			inFront := make(map[int]bool)
			for _, k := range front {
				inFront[remaining[k]] = true
			}
			next := remaining[:0]
			for _, i := range remaining {
				if inFront[i] != (ranks[i] == rk) {
					t.Fatalf("trial %d: point %d rank %d disagrees with peeled frontier %d", trial, i, ranks[i], rk)
				}
				if !inFront[i] {
					next = append(next, i)
				}
			}
			remaining = next
		}
		if len(remaining) != 0 {
			t.Fatalf("trial %d: %d points past the last rank", trial, len(remaining))
		}
	}
}

// TestWilsonEdgeCases pins the interval at the boundaries the campaign
// and exploration estimates actually hit: no data, zero successes, and
// total success.
func TestWilsonEdgeCases(t *testing.T) {
	const z = 1.96
	// n = 0: nothing is known; the interval is all of [0, 1].
	if lo, hi := Wilson(0, 0, z); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0, 0) = [%g, %g], want [0, 1]", lo, hi)
	}
	if lo, hi := Wilson(0, -1, z); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0, -1) = [%g, %g], want [0, 1]", lo, hi)
	}
	// k = 0: the lower bound collapses to 0 but the upper bound stays
	// strictly positive and shrinks as n grows.
	lo10, hi10 := Wilson(0, 10, z)
	if lo10 != 0 || hi10 <= 0 || hi10 >= 1 {
		t.Fatalf("Wilson(0, 10) = [%g, %g]", lo10, hi10)
	}
	_, hi100 := Wilson(0, 100, z)
	if hi100 >= hi10 {
		t.Fatalf("upper bound did not shrink with n: %g -> %g", hi10, hi100)
	}
	// k = n: mirror image — upper bound 1, lower bound strictly inside.
	lo, hi := Wilson(10, 10, z)
	if hi != 1 || lo <= 0 || lo >= 1 {
		t.Fatalf("Wilson(10, 10) = [%g, %g]", lo, hi)
	}
	loBig, _ := Wilson(400, 400, z)
	if loBig <= lo || loBig >= 1 {
		t.Fatalf("lower bound did not tighten with n: %g -> %g", lo, loBig)
	}
	// Symmetry: the k=0 and k=n intervals mirror around 1/2.
	lo0, hi0 := Wilson(0, 25, z)
	loN, hiN := Wilson(25, 25, z)
	if math.Abs(hi0-(1-loN)) > 1e-12 || math.Abs(lo0-(1-hiN)) > 1e-12 {
		t.Fatalf("Wilson not symmetric: [%g, %g] vs mirrored [%g, %g]", lo0, hi0, 1-hiN, 1-loN)
	}
}
