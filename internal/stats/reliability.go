package stats

import "math"

// MTTF returns the mean cycles to an unrecovered (fatal) failure given an
// architectural fault arrival rate (faults per cycle on the committed
// instruction stream) and the probability that a fault proves fatal —
// escapes as silent corruption, hangs the machine, or outruns recovery's
// retained checkpoints. With a zero rate or a zero fatal probability the
// machine never fails fatally and MTTF is +Inf; report layers clamp the
// infinity for JSON.
func MTTF(faultsPerCycle, pFatal float64) float64 {
	if faultsPerCycle <= 0 || pFatal <= 0 {
		return math.Inf(1)
	}
	return 1 / (faultsPerCycle * pFatal)
}

// Availability returns the steady-state fraction of cycles spent on useful
// forward progress under a renewal model: every useful cycle carries
// amortized overheads — ckptOverhead (checkpoint capture cost per useful
// cycle, i.e. FlushCost/Interval in retired-cycle terms), plus the fault
// rate times the expected cycles each fault costs: recoverable faults
// (probability pRecover) cost recoveryCycles (restore + lost re-execution),
// fatal ones (probability pFatal) cost repairCycles (reboot/repair).
//
//	A = 1 / (1 + ckptOverhead + λ·(pRecover·recoveryCycles + pFatal·repairCycles))
//
// Degenerate inputs degrade safely: a zero fault rate leaves only the
// checkpoint overhead, and all-zero inputs give availability 1.
func Availability(ckptOverhead, faultsPerCycle, pFatal, repairCycles, pRecover, recoveryCycles float64) float64 {
	if ckptOverhead < 0 {
		ckptOverhead = 0
	}
	if faultsPerCycle < 0 {
		faultsPerCycle = 0
	}
	denom := 1 + ckptOverhead + faultsPerCycle*(pRecover*recoveryCycles+pFatal*repairCycles)
	if math.IsNaN(denom) || denom < 1 {
		return 0
	}
	return 1 / denom
}
