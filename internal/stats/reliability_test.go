package stats

import (
	"math"
	"testing"
)

// TestMTTF pins the estimator and its edge cases.
func TestMTTF(t *testing.T) {
	// Nominal: 1e-6 faults/cycle, 10% fatal → 1e7 cycles between failures.
	if got := MTTF(1e-6, 0.1); math.Abs(got-1e7) > 1 {
		t.Errorf("MTTF(1e-6, 0.1) = %g, want 1e7", got)
	}
	// Zero detected faults in the campaign → pFatal estimate 0 → no fatal
	// failures observed: MTTF is unbounded, not NaN or zero.
	if got := MTTF(1e-6, 0); !math.IsInf(got, 1) {
		t.Errorf("MTTF with pFatal 0 = %g, want +Inf", got)
	}
	// Degenerate rate: a fault-free machine never fails.
	if got := MTTF(0, 1); !math.IsInf(got, 1) {
		t.Errorf("MTTF with rate 0 = %g, want +Inf", got)
	}
	if got := MTTF(-1, 0.5); !math.IsInf(got, 1) {
		t.Errorf("MTTF with negative rate = %g, want +Inf", got)
	}
}

// TestAvailability pins the renewal model and its edge cases.
func TestAvailability(t *testing.T) {
	// No overhead, no faults: fully available.
	if got := Availability(0, 0, 0, 0, 0, 0); got != 1 {
		t.Errorf("idle availability = %g, want 1", got)
	}
	// Pure checkpoint overhead: 8-cycle flush every 64 useful cycles.
	want := 1 / (1 + 8.0/64.0)
	if got := Availability(8.0/64.0, 0, 0, 0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("checkpoint-only availability = %g, want %g", got, want)
	}
	// All-unrecoverable campaign: pRecover 0, pFatal 1 — availability is
	// governed entirely by the repair cost.
	got := Availability(0, 1e-6, 1, 1e6, 0, 0)
	want = 1 / (1 + 1e-6*1e6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("all-unrecoverable availability = %g, want %g", got, want)
	}
	// Recoverable faults cost their recovery latency.
	got = Availability(0.01, 1e-5, 0.1, 1e6, 0.9, 1e3)
	want = 1 / (1 + 0.01 + 1e-5*(0.9*1e3+0.1*1e6))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed availability = %g, want %g", got, want)
	}
	// Monotonicity: more fatal probability can only hurt (the property that
	// makes plugging Wilson bounds in monotone).
	lo := Availability(0.01, 1e-5, 0.5, 1e6, 0.5, 1e3)
	hi := Availability(0.01, 1e-5, 0.1, 1e6, 0.9, 1e3)
	if lo >= hi {
		t.Errorf("availability not monotone in pFatal: %g !< %g", lo, hi)
	}
	// Degenerate inputs clamp instead of producing NaN.
	if got := Availability(-1, -1, 0, 0, 0, 0); got != 1 {
		t.Errorf("negative inputs = %g, want 1", got)
	}
	if got := Availability(0, 1, 1, math.NaN(), 0, 0); got != 0 {
		t.Errorf("NaN repair cost = %g, want 0", got)
	}
}
