// Package stats provides the small statistical toolkit the paper's
// methodology requires: harmonic means for IPC aggregation (CPI is additive
// across equal instruction counts, so IPCs combine harmonically), percentage
// changes, and simple descriptive statistics used by tests and the workload
// characterizer.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Wilson returns the Wilson score interval for a binomial proportion:
// successes out of n trials, at the confidence whose standard-normal
// quantile is z (1.96 for 95%). Unlike the naive normal approximation it
// never leaves [0, 1] and stays informative at proportions near 0 or 1 —
// exactly where fault-campaign coverage estimates live (a campaign that
// detects 400 of 400 faults has a lower bound meaningfully below 100%).
// With n == 0 nothing is known and the interval is the whole [0, 1].
func Wilson(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	pm := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - pm) / denom
	hi = (center + pm) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HarmonicMean returns the harmonic mean of xs. It returns 0 for an empty
// slice and panics if any value is not strictly positive, because a zero or
// negative IPC indicates a simulator bug rather than a degenerate average.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: HarmonicMean of non-positive value %v", x))
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// PctChange returns the percentage change from base to v: positive when v
// is larger. It panics if base is zero.
func PctChange(base, v float64) float64 {
	if base == 0 {
		panic("stats: PctChange with zero base")
	}
	return 100 * (v - base) / base
}

// PctPenalty returns how many percent v falls below base (a positive
// "performance penalty"): PctPenalty(4.0, 3.0) = 25.
func PctPenalty(base, v float64) float64 { return -PctChange(base, v) }

// WeightedMean returns the weighted arithmetic mean of xs with the given
// weights. The slices must have equal length and the weights must sum to a
// positive value.
func WeightedMean(xs, weights []float64) float64 {
	if len(xs) != len(weights) {
		panic("stats: WeightedMean with mismatched lengths")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += x * weights[i]
		wsum += weights[i]
	}
	if wsum <= 0 {
		panic("stats: WeightedMean with non-positive total weight")
	}
	return sum / wsum
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Running accumulates a stream of observations with Welford's online
// algorithm, giving mean and variance without storing the samples. The
// zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 if fewer than two observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Stddev returns the population standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }
