package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2, 2}); !approx(got, 2, 1e-12) {
		t.Fatalf("constant = %v", got)
	}
	// H(1,2) = 2/(1+0.5) = 4/3.
	if got := HarmonicMean([]float64{1, 2}); !approx(got, 4.0/3, 1e-12) {
		t.Fatalf("H(1,2) = %v", got)
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero value")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

// Harmonic mean of IPCs equals instructions/total-cycles when every
// benchmark runs the same instruction count — the reason the paper uses it.
func TestHarmonicMeanIsCPIAdditive(t *testing.T) {
	ipcs := []float64{0.5, 1.25, 4.0}
	const instrs = 1e6
	var cycles float64
	for _, ipc := range ipcs {
		cycles += instrs / ipc
	}
	want := 3 * instrs / cycles
	if got := HarmonicMean(ipcs); !approx(got, want, 1e-9) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestHarmonicLEGeoLEArith(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a%100) + 1, float64(b%100) + 1, float64(c%100) + 1}
		h, g, m := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-9 && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !approx(got, 2, 1e-12) {
		t.Fatalf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !approx(got, 2, 1e-12) {
		t.Fatalf("G(1,4) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestPctChange(t *testing.T) {
	if got := PctChange(2, 3); !approx(got, 50, 1e-12) {
		t.Fatalf("PctChange(2,3) = %v", got)
	}
	if got := PctChange(4, 3); !approx(got, -25, 1e-12) {
		t.Fatalf("PctChange(4,3) = %v", got)
	}
	if got := PctPenalty(4, 3); !approx(got, 25, 1e-12) {
		t.Fatalf("PctPenalty(4,3) = %v", got)
	}
}

func TestPctChangePanicsOnZeroBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PctChange(0, 1)
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if !approx(got, 2, 1e-12) {
		t.Fatalf("equal weights = %v", got)
	}
	got = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if !approx(got, 1.5, 1e-12) {
		t.Fatalf("weighted = %v", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("min/max wrong")
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !approx(got, 2.5, 1e-12) {
		t.Fatalf("median even = %v", got)
	}
	// Median must not mutate its argument.
	if xs[0] != 3 || xs[4] != 5 {
		t.Fatal("Median mutated input")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != int64(len(xs)) {
		t.Fatalf("N = %d", r.N())
	}
	if !approx(r.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", r.Mean())
	}
	if !approx(r.Var(), 4, 1e-9) {
		t.Fatalf("var = %v", r.Var())
	}
	if !approx(r.Stddev(), 2, 1e-9) {
		t.Fatalf("stddev = %v", r.Stddev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Fatal("zero value not neutral")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var r Running
		var xs []float64
		for _, v := range raw {
			x := float64(v)
			r.Add(x)
			xs = append(xs, x)
		}
		return approx(r.Mean(), Mean(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "SS1", "SS2")
	tb.AddRowf("gap", "%.2f", 1.0, 0.9)
	tb.AddSeparator()
	tb.AddRow("avg", "1.00", "0.90")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "gap") || !strings.Contains(out, "0.90") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, row, rule, row
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Error("trailing whitespace in table output")
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x")
	tb.AddRow("y", "1", "2") // extends beyond header
	out := tb.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "2") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}
