package stats

import (
	"fmt"
	"strings"
)

// Table builds fixed-width text tables for the experiment harness. Columns
// are right-aligned except the first, which is left-aligned (row labels).
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row of preformatted cells. Short rows are padded with
// empty cells; long rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row with a label followed by numeric cells formatted
// with the given verb (for example "%.2f").
func (t *Table) AddRowf(label, verb string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.rows = append(t.rows, cells)
}

// AddSeparator inserts a horizontal rule before the next row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		// Trim trailing spaces so output is stable under diffing.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	rule := func() {
		total := 0
		for i, w := range widths {
			total += w
			if i > 0 {
				total += 2
			}
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule()
	}
	for _, r := range t.rows {
		if r == nil {
			rule()
			continue
		}
		writeRow(r)
	}
	return b.String()
}
