package store

// The store's corruption matrix: every failure class a crashed or
// bit-rotted writer can leave behind must be detected, contained to the
// affected record(s), and survived — no corruption may fail Open or
// poison later records. These are the storage half of the chaos
// harness; internal/shrecd layers journal and process-kill chaos on top.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fill populates a fresh store and returns it with its directory.
func fill(t *testing.T, n int) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(Digest("chaos", i), payload{Name: fmt.Sprint(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return s, path
}

// verify checks that keys [0,n) except those in missing survive.
func verify(t *testing.T, s *Store, n int, missing map[int]bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		var out payload
		ok, err := s.Get(Digest("chaos", i), &out)
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if missing[i] {
			if ok {
				t.Fatalf("key %d: corrupt record decoded anyway", i)
			}
			continue
		}
		if !ok || out.Value != float64(i) {
			t.Fatalf("key %d lost: ok=%v %+v", i, ok, out)
		}
	}
}

// TestChaosTornTail cuts an append mid-record (a crashed writer) and
// pins that Open truncates the tear, keeps every complete record, and
// leaves the file appendable.
func TestChaosTornTail(t *testing.T) {
	s, path := fill(t, 16)
	victim := Digest("chaos", 3)
	seg := s.ActiveSegment(victim)
	s.Close()

	// Tear: append a record prefix — header plus part of the payload.
	rec := EncodeRecord(9999, "torn-key", []byte(`{"name":"torn"}`))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(rec[:len(rec)-5])
	f.Close()
	preSize := fileSize(t, seg)

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail failed Open: %v", err)
	}
	defer s2.Close()
	verify(t, s2, 16, nil)
	st := s2.Stats()
	if st.TornTails != 1 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
	if got := fileSize(t, seg); got != preSize-int64(len(rec)-5) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", got, preSize-int64(len(rec)-5))
	}
	// The shard must accept appends on the clean boundary.
	if err := s2.Put(victim, payload{Value: 333}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if ok, _ := s2.Get(victim, &out); !ok || out.Value != 333 {
		t.Fatal("post-recovery append lost")
	}
}

// TestChaosBitflipMidRecord flips one byte in the middle of a segment
// and pins skip-and-quarantine: only the hit record is lost, every
// record after it in the same file still loads, and the quarantine is
// counted and logged.
func TestChaosBitflipMidRecord(t *testing.T) {
	// One shard forces every record into a single file, so "records
	// after the corrupt one" is guaranteed non-empty.
	path := filepath.Join(t.TempDir(), "s")
	s, err := OpenWith(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := s.Put(Digest("chaos", i), payload{Name: fmt.Sprint(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seg := s.ActiveSegment(Digest("chaos", 0))
	s.Close()

	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // bitrot in some mid-file record's bytes
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenWith(path, Options{Shards: 1})
	if err != nil {
		t.Fatalf("bitflip failed Open: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Quarantined == 0 {
		t.Fatalf("bitflip not quarantined: %+v", st)
	}
	if lost := 16 - st.Keys; lost < 1 || lost > 2 {
		// The flip lands in one record; two can only die if it hit the
		// boundary bytes between records.
		t.Fatalf("bitflip took out %d records, want 1-2: %+v", lost, st)
	}
	// Survivors must all decode; count them against the index.
	alive := 0
	for i := 0; i < 16; i++ {
		var out payload
		if ok, err := s2.Get(Digest("chaos", i), &out); err != nil {
			t.Fatalf("key %d: %v", i, err)
		} else if ok {
			if out.Value != float64(i) {
				t.Fatalf("key %d corrupted silently: %+v", i, out)
			}
			alive++
		}
	}
	if alive != st.Keys {
		t.Fatalf("index size mismatch: %d alive vs %d keys", alive, st.Keys)
	}
	if _, err := os.Stat(filepath.Join(path, "quarantine.log")); err != nil {
		t.Fatalf("quarantine.log missing: %v", err)
	}
	// Compaction scrubs the corrupt bytes; a further reopen is clean.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenWith(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Quarantined != 0 || st.Keys != alive {
		t.Fatalf("compaction did not scrub corruption: %+v", st)
	}
}

// TestChaosDuplicateKeyAcrossSegments hand-crafts two segment
// generations holding the same key and pins last-write-wins by sequence
// number, whichever file order the opener visits.
func TestChaosDuplicateKeyAcrossSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	s, err := OpenWith(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("seed", payload{Value: 0}) // create shard-00-000001.seg
	s.Close()

	old := EncodeRecord(100, "dup", []byte(`{"name":"old","value":1}`))
	newer := EncodeRecord(200, "dup", []byte(`{"name":"new","value":2}`))
	// Older generation carries the NEWER sequence's record too: LWW must
	// follow sequence numbers, not just file order.
	gen1 := filepath.Join(path, SegName(0, 1))
	f, err := os.OpenFile(gen1, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(newer)
	f.Close()
	if err := os.WriteFile(filepath.Join(path, SegName(0, 2)), old, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenWith(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var out payload
	if ok, _ := s2.Get("dup", &out); !ok || out.Name != "new" {
		t.Fatalf("LWW across segments broken: %+v", out)
	}
	if st := s2.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
}

// TestChaosEmptySegmentFile pins that a zero-byte segment (creat
// succeeded, every append lost) neither fails Open nor perturbs other
// shards.
func TestChaosEmptySegmentFile(t *testing.T) {
	s, path := fill(t, 8)
	s.Close()
	// An empty file for a shard that already has data, and one for a
	// shard generation that never got records.
	if err := os.WriteFile(filepath.Join(path, SegName(0, 7)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("empty segment failed Open: %v", err)
	}
	defer s2.Close()
	verify(t, s2, 8, nil)
	if st := s2.Stats(); st.Quarantined != 0 || st.TornTails != 0 {
		t.Fatalf("empty file miscounted as corruption: %+v", st)
	}
}

// TestChaosGarbageSegment fills a segment with bytes that never frame a
// record (pure garbage, no magic) and pins that Open quarantines and
// truncates it without touching the rest of the store.
func TestChaosGarbageSegment(t *testing.T) {
	s, path := fill(t, 8)
	s.Close()
	garbage := make([]byte, 4096)
	for i := range garbage {
		garbage[i] = byte(i*7 + 1)
	}
	if err := os.WriteFile(filepath.Join(path, SegName(1, 5)), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("garbage segment failed Open: %v", err)
	}
	defer s2.Close()
	verify(t, s2, 8, nil)
	if st := s2.Stats(); st.Quarantined == 0 {
		t.Fatalf("garbage not quarantined: %+v", st)
	}
}

// TestChaosConcurrentPutsUnderContention hammers one store from many
// goroutines (shared and distinct keys, enough volume to cross the
// auto-compaction threshold) and pins that nothing is lost. Run under
// -race in CI.
func TestChaosConcurrentPutsUnderContention(t *testing.T) {
	const (
		workers = 8
		keys    = 32
		rounds  = 30
	)
	path := filepath.Join(t.TempDir(), "s")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					key := Digest("cc", k)
					if err := s.Put(key, payload{Name: fmt.Sprintf("w%d", w), Value: float64(k)}); err != nil {
						t.Error(err)
						return
					}
					var out payload
					if ok, err := s.Get(key, &out); !ok || err != nil || out.Value != float64(k) {
						t.Errorf("get %d: ok=%v err=%v %+v", k, ok, err, out)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != keys {
		t.Fatalf("len = %d, want %d", s.Len(), keys)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != keys {
		t.Fatalf("reloaded %d keys, want %d", s2.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		var out payload
		if ok, _ := s2.Get(Digest("cc", k), &out); !ok || out.Value != float64(k) {
			t.Fatalf("key %d lost under contention", k)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
