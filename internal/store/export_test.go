package store

// Test-only access to internals: failpoints and framing helpers for the
// corruption-matrix and chaos tests.

// FailNextAppend arms a failpoint on key's shard: the next append writes
// only n bytes of the record (a torn write) and reports an error.
func (s *Store) FailNextAppend(key string, n int) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	sh.testFail = n + 1
	sh.mu.Unlock()
}

// ShardIndex exposes the key → shard mapping so tests can craft segment
// files for a specific key.
func (s *Store) ShardIndex(key string) int {
	for i, sh := range s.shards {
		if s.shardOf(key) == sh {
			return i
		}
	}
	return -1
}

// ActiveSegment returns the path of the segment file currently receiving
// key's appends ("" before the first append).
func (s *Store) ActiveSegment(key string) string {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.path
}

// EncodeRecord exposes the on-disk framing so tests can hand-craft
// segment files (duplicate keys across generations, bitrot targets).
func EncodeRecord(seq uint64, key string, value []byte) []byte {
	return encodeRecord(seq, key, value)
}

// SegName exposes segment-file naming for hand-crafted layouts.
func SegName(shard, gen int) string { return segName(shard, gen) }

// HeaderSize exposes the record header length for corruption targeting.
const HeaderSize = headerSize
