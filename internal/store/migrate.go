package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Stores written before the segment format were a single JSON-lines
// file: one {"key":..., "value":...} object per line, last line per key
// winning. Open detects such a file where the store directory should be
// and imports it exactly once — every line becomes a checksummed segment
// record — then leaves the original beside the directory as
// <path>.pre-segments for manual recovery. Completion is recorded in an
// imported.json marker inside the store, so a crash mid-import replays
// the (idempotent) import at the next Open, while a finished import is
// never repeated — the backup can no longer stomp newer segment writes.
// Unparseable lines (a torn tail from the old format's crash story) are
// skipped, matching the old opener.

// legacyRecord is the old on-disk line format.
type legacyRecord struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// legacyBackupSuffix is appended to an imported JSONL file's name, and
// importMarker records that its import completed.
const (
	legacyBackupSuffix = ".pre-segments"
	importMarker       = "imported.json"
)

// relocateLegacy moves a single-file store out of the directory path's
// way, returning the backup path ("" when path is absent or already a
// directory). Called before the store directory is created.
func relocateLegacy(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil || fi.IsDir() {
		return "", nil
	}
	backup := path + legacyBackupSuffix
	if err := os.Rename(path, backup); err != nil {
		return "", fmt.Errorf("store: renaming legacy file: %w", err)
	}
	return backup, nil
}

// pendingLegacy reports a backup whose import never completed (a crash
// between relocation and the marker write), or "" when there is nothing
// to do.
func pendingLegacy(path string) string {
	backup := path + legacyBackupSuffix
	if _, err := os.Stat(backup); err != nil {
		return ""
	}
	if _, err := os.Stat(filepath.Join(path, importMarker)); err == nil {
		return "" // already imported
	}
	return backup
}

// importLegacy reads the backup and writes its records through the
// normal append path, preserving line order so last-write-wins is
// unchanged, then marks the import complete.
func (s *Store) importLegacy(backup string) error {
	f, err := os.Open(backup)
	if err != nil {
		return fmt.Errorf("store: opening legacy backup: %w", err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r legacyRecord
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn or corrupt line: recompute, as the old format did
		}
		if err := s.putRaw(r.Key, r.Value); err != nil {
			return fmt.Errorf("store: importing legacy record %q: %w", r.Key, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading legacy backup: %w", err)
	}
	// Records first, marker last: the marker's durability implies the
	// records'.
	if err := s.Sync(); err != nil {
		return err
	}
	raw, _ := json.Marshal(map[string]any{
		"source": filepath.Base(backup), "records": n, "time": time.Now().UTC().Format(time.RFC3339),
	})
	if err := os.WriteFile(filepath.Join(s.dir, importMarker), raw, 0o644); err != nil {
		return fmt.Errorf("store: writing import marker: %w", err)
	}
	syncDir(s.dir)
	s.statMu.Lock()
	s.migrated = true
	s.statMu.Unlock()
	return nil
}
