package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// On-disk record framing: a fixed header followed by a checksummed
// payload.
//
//	header : magic u32 | payloadLen u32 | crc u32      (little-endian)
//	payload: seq u64 | keyLen u32 | key | value-JSON
//
// The CRC is CRC32C (Castagnoli) over the payload. The magic makes
// records locatable again after a corrupt region: the opener scans
// forward for the next header that frames a complete, checksum-valid
// record and quarantines whatever it skipped. The sequence number is a
// store-wide monotonic counter, so "last write wins" is exact even when
// one key's records span segment generations.
const (
	recMagic   = 0x53454731 // "SEG1"
	headerSize = 12
	maxPayload = 1 << 28 // sanity bound on payloadLen in a header
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames one key/value pair.
func encodeRecord(seq uint64, key string, value []byte) []byte {
	plen := 8 + 4 + len(key) + len(value)
	rec := make([]byte, headerSize+plen)
	payload := rec[headerSize:]
	binary.LittleEndian.PutUint64(payload[0:], seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(key)))
	copy(payload[12:], key)
	copy(payload[12+len(key):], value)
	binary.LittleEndian.PutUint32(rec[0:], recMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(plen))
	binary.LittleEndian.PutUint32(rec[8:], crc32.Checksum(payload, crcTable))
	return rec
}

// decodeRecordAt frames the record starting at data[off:], returning its
// total length. ok is false when the bytes at off do not hold a
// complete, checksum-valid record; torn reports the special case of a
// record whose header is sane but whose bytes run past the end of data
// (an interrupted append at the tail).
func decodeRecordAt(data []byte, off int) (seq uint64, key string, value []byte, size int, ok, torn bool) {
	rest := data[off:]
	if len(rest) < headerSize {
		// Too short even for a header: torn only if the magic prefix
		// matches as far as it goes (otherwise it's just garbage).
		return 0, "", nil, 0, false, prefixMatchesMagic(rest)
	}
	if binary.LittleEndian.Uint32(rest[0:]) != recMagic {
		return 0, "", nil, 0, false, false
	}
	plen := binary.LittleEndian.Uint32(rest[4:])
	if plen > maxPayload {
		return 0, "", nil, 0, false, false
	}
	if len(rest) < headerSize+int(plen) {
		return 0, "", nil, 0, false, true
	}
	payload := rest[headerSize : headerSize+int(plen)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[8:]) {
		return 0, "", nil, 0, false, false
	}
	if plen < 12 {
		return 0, "", nil, 0, false, false
	}
	klen := binary.LittleEndian.Uint32(payload[8:])
	if uint64(12)+uint64(klen) > uint64(plen) {
		return 0, "", nil, 0, false, false
	}
	seq = binary.LittleEndian.Uint64(payload[0:])
	key = string(payload[12 : 12+klen])
	value = payload[12+klen:]
	return seq, key, value, headerSize + int(plen), true, false
}

// prefixMatchesMagic reports whether b is a (possibly empty) prefix of
// the magic bytes — the signature of an append cut off mid-header.
func prefixMatchesMagic(b []byte) bool {
	var m [4]byte
	binary.LittleEndian.PutUint32(m[:], recMagic)
	return bytes.HasPrefix(m[:], b) || bytes.HasPrefix(b, m[:])
}

// segName renders a segment filename.
func segName(shard, gen int) string {
	return fmt.Sprintf("shard-%02d-%06d.seg", shard, gen)
}

// parseSegName extracts (shard, gen) from a segment filename.
func parseSegName(name string) (shardID, gen int, ok bool) {
	var s, g int
	if n, err := fmt.Sscanf(name, "shard-%d-%d.seg", &s, &g); err != nil || n != 2 {
		return 0, 0, false
	}
	return s, g, true
}

// maxShardInNames infers a lost shard count from segment filenames.
func maxShardInNames(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	max := 0
	for _, e := range ents {
		if s, _, ok := parseSegName(e.Name()); ok && s+1 > max {
			max = s + 1
		}
	}
	return max
}

// loadSegments scans every segment file: good records build the index
// (highest sequence number wins), torn tails are truncated, and corrupt
// regions are skipped and quarantined. No corruption class fails the
// open — the worst case for a record is that it must be recomputed.
func (s *Store) loadSegments() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type seg struct {
		shard, gen int
		path       string
	}
	var segs []seg
	for _, e := range ents {
		shardID, gen, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		if shardID >= s.nshard {
			// A file from a wider layout than meta records; still scan it
			// (keys re-shard by hash), grouped with its modulo shard so it
			// is owned — and eventually compacted away — by somebody.
			shardID %= s.nshard
		}
		segs = append(segs, seg{shardID, gen, filepath.Join(s.dir, e.Name())})
	}
	// Generation order, then shard: within a shard this is write order,
	// which the per-record sequence numbers then refine exactly.
	sort.Slice(segs, func(a, b int) bool {
		if segs[a].gen != segs[b].gen {
			return segs[a].gen < segs[b].gen
		}
		return segs[a].shard < segs[b].shard
	})
	var maxSeq uint64
	for _, sg := range segs {
		sh := s.shards[sg.shard]
		top, err := s.scanSegment(sh, sg.path, &maxSeq)
		if err != nil {
			return err
		}
		sh.files = append(sh.files, sg.path)
		if sg.gen >= sh.gen {
			sh.gen = sg.gen
			sh.path = sg.path
			sh.size = top
		}
	}
	s.seqMu.Lock()
	if s.seq <= maxSeq {
		s.seq = maxSeq + 1
	}
	s.seqMu.Unlock()
	return nil
}

// scanSegment reads one segment file into the index, returning the
// file's size after any torn-tail truncation. fileShard is the shard
// owning the file (for dead-byte accounting of quarantined regions);
// records themselves index into their key's hash shard.
func (s *Store) scanSegment(fileShard *shard, path string, maxSeq *uint64) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: reading %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		seq, key, value, size, ok, torn := decodeRecordAt(data, off)
		if ok {
			if seq > *maxSeq {
				*maxSeq = seq
			}
			s.insertLoaded(key, value, seq, int64(size))
			off += size
			continue
		}
		// Corruption at off. If a complete valid record exists further
		// on, this is a mid-file corrupt region: skip to it and
		// quarantine the gap. Otherwise everything from off is a torn
		// tail (or trailing garbage): truncate so future appends start at
		// a record boundary.
		if next := nextValidRecord(data, off+1); next >= 0 {
			s.quarantine(path, off, next-off, "corrupt record (checksum or framing)")
			// The skipped bytes stay in the file as dead weight until
			// compaction scrubs them.
			fileShard.mu.Lock()
			fileShard.total += int64(next - off)
			fileShard.mu.Unlock()
			off = next
			continue
		}
		if err := os.Truncate(path, int64(off)); err != nil {
			return 0, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		s.statMu.Lock()
		if torn {
			s.tornTails++
		} else {
			// Unreadable to the end without a clean tear signature:
			// count it as quarantined corruption (the bytes are gone
			// either way, but the distinction matters for diagnosis).
			s.quarantined++
		}
		s.statMu.Unlock()
		if !torn {
			s.logQuarantine(path, off, len(data)-off, "corrupt trailing region (truncated)")
		}
		data = data[:off]
	}
	return int64(len(data)), nil
}

// insertLoaded adds a scanned record to its hash shard, last write
// (highest seq) winning.
func (s *Store) insertLoaded(key string, value []byte, seq uint64, size int64) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.total += size
	old, exists := sh.index[key]
	if exists && old.seq >= seq {
		return // this record is superseded: dead bytes
	}
	if exists {
		sh.live -= old.size
	}
	sh.live += size
	// Copy the value out of the scan buffer so the index does not pin
	// whole segment files in memory.
	raw := make(json.RawMessage, len(value))
	copy(raw, value)
	sh.index[key] = entry{raw: raw, seq: seq, size: size}
}

// nextValidRecord scans data from off for the next offset framing a
// complete, checksum-valid record, or -1.
func nextValidRecord(data []byte, off int) int {
	var m [4]byte
	binary.LittleEndian.PutUint32(m[:], recMagic)
	for off < len(data) {
		i := bytes.Index(data[off:], m[:])
		if i < 0 {
			return -1
		}
		cand := off + i
		if _, _, _, _, ok, _ := decodeRecordAt(data, cand); ok {
			return cand
		}
		off = cand + 1
	}
	return -1
}

// quarantine records a skipped corrupt region: counted for /healthz and
// logged to quarantine.log for diagnosis.
func (s *Store) quarantine(path string, off, length int, reason string) {
	s.statMu.Lock()
	s.quarantined++
	s.statMu.Unlock()
	s.logQuarantine(path, off, length, reason)
}

// logQuarantine appends one JSON line to quarantine.log (best effort:
// quarantine bookkeeping must never fail the store).
func (s *Store) logQuarantine(path string, off, length int, reason string) {
	f, err := os.OpenFile(filepath.Join(s.dir, "quarantine.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	line, _ := json.Marshal(map[string]any{
		"file": filepath.Base(path), "offset": off, "length": length, "reason": reason,
	})
	f.Write(append(line, '\n'))
}

// openActiveLocked opens (or creates) the shard's append segment. Caller
// holds sh.mu.
func (s *Store) openActiveLocked(sh *shard) error {
	if sh.path == "" {
		sh.gen = 1
		sh.path = filepath.Join(s.dir, segName(sh.id, sh.gen))
		sh.files = append(sh.files, sh.path)
		sh.size = 0
	}
	f, err := os.OpenFile(sh.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sh.active = f
	return nil
}

// Compact rewrites every shard that carries dead bytes or spans multiple
// segment files, dropping superseded records and scrubbing quarantined
// regions. Put triggers the same rewrite per shard automatically once
// dead bytes outweigh live ones.
func (s *Store) Compact() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.total != sh.live || len(sh.files) > 1 {
			if err := s.compactShardLocked(sh); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// compactShardLocked rewrites the shard's live records into a fresh
// segment generation and removes the old files. Crash-safe ordering:
// the new segment is written and synced under a temporary name, renamed
// into place, and only then are the old files removed — a crash at any
// point leaves either the old files or a complete new one (duplicate
// records across old and new resolve by sequence number at the next
// open). Caller holds sh.mu.
func (s *Store) compactShardLocked(sh *shard) error {
	newGen := sh.gen + 1
	newPath := filepath.Join(s.dir, segName(sh.id, newGen))
	tmp := newPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting shard %d: %w", sh.id, err)
	}
	// Rewrite in sequence order so the compacted file preserves write
	// order (and byte-for-byte determinism for a given index state).
	keys := make([]string, 0, len(sh.index))
	for k := range sh.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return sh.index[keys[a]].seq < sh.index[keys[b]].seq })
	var written int64
	for _, k := range keys {
		e := sh.index[k]
		rec := encodeRecord(e.seq, k, e.raw)
		if _, err := f.Write(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compacting shard %d: %w", sh.id, err)
		}
		e.size = int64(len(rec))
		sh.index[k] = e
		written += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compacting shard %d: %w", sh.id, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compacting shard %d: %w", sh.id, err)
	}
	if err := os.Rename(tmp, newPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compacting shard %d: %w", sh.id, err)
	}
	syncDir(s.dir)

	// The new generation is durable; retire the old files.
	if sh.active != nil {
		sh.active.Close()
		sh.active = nil
	}
	for _, old := range sh.files {
		if old != newPath {
			os.Remove(old)
		}
	}
	sh.files = []string{newPath}
	sh.gen = newGen
	sh.path = newPath
	sh.size = written
	sh.total = written
	sh.live = written

	s.statMu.Lock()
	s.compactions++
	s.lastCompaction = time.Now()
	s.statMu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and removals within it are
// durable (best effort; not all platforms support it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}
