// Package store is a persistent result store: digest-keyed JSON values
// in checksummed, length-prefixed records appended to sharded segment
// files. It lets repeated experiment runs — e.g. cmd/experiments
// regenerating every table, or a restarted shrecd resuming a killed
// campaign — reuse finished work across processes, and it is built to
// survive the failures that actually happen to append-only files:
//
//   - Every record carries a CRC32C over its payload; a torn tail from a
//     crashed writer is truncated at open, and a corrupt record in the
//     middle of a segment (bitrot, a buried partial append) is skipped
//     and quarantined instead of failing the store.
//   - Keys are sharded across segment files by hash, so concurrent
//     writers in one process never contend on a single file descriptor.
//   - Rewritten keys append a new record; the record with the highest
//     sequence number wins on reload, so files never need in-place edits.
//   - When a shard accumulates more dead (superseded or quarantined)
//     bytes than live ones, it is compacted in place: live records are
//     rewritten into a fresh segment generation and the old files
//     removed. Compaction also scrubs quarantined byte ranges.
//   - A configurable fsync policy (SyncNever for result caches whose
//     entries can be recomputed, SyncAlways for write-ahead journals)
//     bounds how much a power failure can lose.
//
// Stores created by earlier versions — a single JSON-lines file — are
// detected at Open and imported into segment format once; the original
// file is kept beside the store directory with a ".pre-segments" suffix.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Digest hashes the JSON encodings of vs into a stable hex key. Include a
// schema label as the first value so format changes invalidate old
// entries instead of misdecoding them.
func Digest(vs ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, v := range vs {
		if err := enc.Encode(v); err != nil {
			// Hash the error text instead: the key is still deterministic,
			// it just never matches a successfully encoded entry.
			fmt.Fprintf(h, "!enc-error:%v", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS: a power failure can lose the
	// most recent appends, which is fine for result caches whose entries
	// are recomputable. Torn records from the failure are still detected
	// and truncated at the next Open. The default.
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every Put: once Put returns, the record
	// survives power loss. Use for write-ahead journals whose entries
	// gate externally-visible promises.
	SyncAlways
)

// Options tunes OpenWith.
type Options struct {
	// Shards is the number of hash shards (segment-file groups) new
	// stores are created with (<=0 means 8). Existing stores keep the
	// shard count they were created with, recorded in meta.json.
	Shards int
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// NoAutoCompact disables the dead-bytes-triggered compaction on Put
	// (Compact can still be called explicitly). Mainly for tests that
	// pin exact on-disk layouts.
	NoAutoCompact bool
}

// compactMinDead sizes auto-compaction: a shard is rewritten when its
// files hold more than this many superseded bytes and the dead bytes
// outweigh the live ones.
const compactMinDead = 64 << 10

// entry is one live key in the in-memory index.
type entry struct {
	raw  json.RawMessage
	seq  uint64
	size int64 // on-disk record bytes, for dead-space accounting
}

// shard is one hash shard: its own index, active segment file, and
// lock, so writers to different shards never contend.
type shard struct {
	id     int
	mu     sync.Mutex
	index  map[string]entry
	active *os.File // highest-generation segment, opened for append
	path   string   // active file path
	gen    int      // active file generation
	size   int64    // active file size (append offset)
	files  []string // every segment file of this shard, oldest first
	live   int64    // bytes of live records across files
	total  int64    // bytes of all records across files

	// testFail, when >0, makes the next append write only testFail-1
	// bytes and report a write error (failpoint for rollback tests).
	testFail int
}

// Store is a digest-keyed persistent map over sharded segment files.
// Safe for concurrent use within one process. Across processes, appends
// by concurrent writers stay record-atomic (O_APPEND), but compaction
// assumes a single writing process.
type Store struct {
	dir    string
	opt    Options
	nshard int
	shards []*shard

	seqMu sync.Mutex
	seq   uint64 // next record sequence number

	statMu         sync.Mutex
	quarantined    uint64 // corrupt records skipped (open-time + lifetime)
	tornTails      uint64 // torn tails truncated at open
	compactions    uint64
	lastCompaction time.Time
	migrated       bool // legacy JSONL imported at this Open
}

// storeMeta is the meta.json shape pinning the shard layout.
type storeMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Open loads (or creates) the store at path with default options. The
// path names a directory; a pre-existing single-file JSON-lines store at
// the same path is imported into segment format first.
func Open(path string) (*Store, error) {
	return OpenWith(path, Options{})
}

// OpenWith loads (or creates) the store at path.
func OpenWith(path string, opt Options) (*Store, error) {
	if opt.Shards <= 0 {
		opt.Shards = 8
	}
	// A pre-segments store is a regular file of JSON lines where the
	// store directory should be. Move it aside before creating the
	// directory; it is imported below, after the scan.
	if _, err := relocateLegacy(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	nshard, err := loadOrInitMeta(path, opt.Shards)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: path, opt: opt, nshard: nshard, seq: 1}
	s.shards = make([]*shard, nshard)
	for i := range s.shards {
		s.shards[i] = &shard{id: i, index: make(map[string]entry)}
	}
	if err := s.loadSegments(); err != nil {
		s.Close()
		return nil, err
	}
	if backup := pendingLegacy(path); backup != "" {
		if err := s.importLegacy(backup); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Path returns the store directory.
func (s *Store) Path() string { return s.dir }

// Len returns the number of distinct live keys.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// shardOf hashes key to its shard. The mapping is pinned by meta.json,
// so a key always lands in the same file group across runs.
func (s *Store) shardOf(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(s.nshard)]
}

// Get decodes the stored value for key into v, reporting whether the key
// was present.
func (s *Store) Get(key string, v any) (bool, error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.index[key]
	sh.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(e.raw, v); err != nil {
		return false, fmt.Errorf("store: decoding %s: %w", key, err)
	}
	return true, nil
}

// Range calls fn for every live key (in stable per-shard sorted order)
// with its raw JSON value, stopping early when fn returns false. The
// walk snapshots each shard, so entries written concurrently may or may
// not be visited.
func (s *Store) Range(fn func(key string, value json.RawMessage) bool) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		keys := make([]string, 0, len(sh.index))
		for k := range sh.index {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snap := make([]json.RawMessage, len(keys))
		for i, k := range keys {
			snap[i] = sh.index[k].raw
		}
		sh.mu.Unlock()
		for i, k := range keys {
			if !fn(k, snap[i]) {
				return
			}
		}
	}
}

// nextSeq allocates a record sequence number.
func (s *Store) nextSeq() uint64 {
	s.seqMu.Lock()
	n := s.seq
	s.seq++
	s.seqMu.Unlock()
	return n
}

// Put stores v under key, appending a checksummed record to the key's
// shard segment. A failed or short append is rolled back — the file is
// truncated to its pre-write length and the index left untouched — so
// the index and the file can never disagree.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	return s.putRaw(key, raw)
}

func (s *Store) putRaw(key string, raw json.RawMessage) error {
	sh := s.shardOf(key)
	seq := s.nextSeq()
	rec := encodeRecord(seq, key, raw)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.active == nil {
		if err := s.openActiveLocked(sh); err != nil {
			return err
		}
	}
	off := sh.size
	n, werr := sh.append(rec)
	if werr == nil && s.opt.Sync == SyncAlways {
		// An fsync failure leaves durability unknown; treat it like a
		// failed write so the caller retries from a clean slate.
		werr = sh.active.Sync()
	}
	if werr != nil {
		// Roll back: drop the partial record so the next append starts at
		// a record boundary and the file agrees with the index. If even
		// the truncate fails, the torn bytes remain but the CRC framing
		// quarantines them at the next Open.
		_ = sh.active.Truncate(off)
		sh.size = off
		return fmt.Errorf("store: appending to %s (%d/%d bytes): %w", sh.path, n, len(rec), werr)
	}
	sh.size = off + int64(len(rec))
	sh.total += int64(len(rec))
	if old, ok := sh.index[key]; ok {
		sh.live -= old.size
	}
	sh.live += int64(len(rec))
	sh.index[key] = entry{raw: raw, seq: seq, size: int64(len(rec))}

	if !s.opt.NoAutoCompact {
		if dead := sh.total - sh.live; dead > compactMinDead && dead > sh.live {
			// The Put itself succeeded; compaction trouble is not the
			// caller's write failing, and the next Put will retry it.
			_ = s.compactShardLocked(sh)
		}
	}
	return nil
}

// append writes rec to the active file, honoring the test failpoint.
func (sh *shard) append(rec []byte) (int, error) {
	if sh.testFail > 0 {
		short := sh.testFail - 1
		sh.testFail = 0
		if short > len(rec) {
			short = len(rec)
		}
		n, _ := sh.active.Write(rec[:short])
		return n, fmt.Errorf("injected append failure after %d bytes", short)
	}
	return sh.active.Write(rec)
}

// Sync flushes every shard's active segment to stable storage.
func (s *Store) Sync() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.active != nil {
			if err := sh.active.Sync(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("store: sync %s: %w", sh.path, err)
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Close releases every segment file. The store must not be used after.
func (s *Store) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.active != nil {
			if err := sh.active.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.active = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Stats is a point-in-time integrity summary, served by shrecd's
// /healthz.
type Stats struct {
	// Keys is the number of distinct live keys.
	Keys int `json:"keys"`
	// Shards is the store's hash-shard count (fixed at creation).
	Shards int `json:"shards"`
	// Segments is the current number of segment files.
	Segments int `json:"segments"`
	// LiveBytes and DeadBytes split the on-disk record bytes into
	// current values and superseded/quarantined residue awaiting
	// compaction.
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	// Quarantined counts corrupt records skipped (and logged to
	// quarantine.log) since this process opened the store, including the
	// open-time scan.
	Quarantined uint64 `json:"quarantined"`
	// TornTails counts incomplete trailing records truncated at open.
	TornTails uint64 `json:"torn_tails"`
	// Compactions counts segment rewrites since open; LastCompaction is
	// zero until the first one.
	Compactions    uint64    `json:"compactions"`
	LastCompaction time.Time `json:"last_compaction,omitzero"`
	// Migrated reports whether this Open imported a pre-segments
	// JSON-lines store.
	Migrated bool `json:"migrated,omitempty"`
}

// Stats summarizes the store's integrity state.
func (s *Store) Stats() Stats {
	st := Stats{Shards: s.nshard}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Keys += len(sh.index)
		st.Segments += len(sh.files)
		st.LiveBytes += sh.live
		st.DeadBytes += sh.total - sh.live
		sh.mu.Unlock()
	}
	s.statMu.Lock()
	st.Quarantined = s.quarantined
	st.TornTails = s.tornTails
	st.Compactions = s.compactions
	st.LastCompaction = s.lastCompaction
	st.Migrated = s.migrated
	s.statMu.Unlock()
	return st
}

// loadOrInitMeta reads meta.json (writing it on first creation) and
// returns the store's shard count. A missing or corrupt meta file falls
// back to the highest shard index present in segment filenames, so a
// store whose meta was lost still opens with the right layout.
func loadOrInitMeta(dir string, wantShards int) (int, error) {
	metaPath := filepath.Join(dir, "meta.json")
	if raw, err := os.ReadFile(metaPath); err == nil {
		var m storeMeta
		if json.Unmarshal(raw, &m) == nil && m.Shards > 0 {
			return m.Shards, nil
		}
		// Corrupt meta: infer below and rewrite.
	}
	shards := wantShards
	if inferred := maxShardInNames(dir); inferred > 0 {
		shards = inferred
	}
	raw, _ := json.Marshal(storeMeta{Version: 1, Shards: shards})
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		return 0, fmt.Errorf("store: writing %s: %w", metaPath, err)
	}
	return shards, nil
}
